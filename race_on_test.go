//go:build race

package identxx_bench

// raceEnabled reports that this binary was built with -race, which makes
// sync.Pool intentionally shed entries at random — allocation-count tests
// skip themselves under it.
const raceEnabled = true
