package identxx_bench

import (
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/wire"
)

// refusingLower fails every exchange; a header-only decision must never
// reach it, so any call is a test failure by way of the engine counters.
type refusingLower struct{}

func (refusingLower) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	return nil, 0, core.ErrNoDaemon
}

// TestHeaderOnlyFlowKeepsQueryPlaneIdle is the acceptance check for the
// header-only pre-pass at the full stack: a controller wired to the real
// asynchronous query plane decides a header-only flow with zero queries
// enqueued — decisions_headeronly increments and every engine_* counter
// stays flat.
func TestHeaderOnlyFlowKeepsQueryPlaneIdle(t *testing.T) {
	eng := query.NewEngine(query.Config{Lower: refusingLower{}})
	t.Cleanup(eng.Close)
	ctl := core.New(core.Config{
		Name: "ho-e2e",
		Policy: pf.MustCompile("ho", `
block all
pass from 10.0.0.0/8 to any port 80 keep state
pass from any to any port 443 with eq(@src[name], web)
`),
		Transport:      eng,
		Topology:       &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries: true,
		AsyncQueries:   true,
	})
	ctl.AddDatapath(&m7Datapath{id: 1})

	ev := openflow.PacketIn{
		SwitchID: 1, BufferID: openflow.BufferNone, InPort: 1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   netaddr.MustParseIP("10.1.2.3"),
			DstIP:   netaddr.MustParseIP("8.8.8.8"),
			Proto:   netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80,
		},
	}
	const events = 50
	for i := 0; i < events; i++ {
		ev.Tuple.SrcPort = netaddr.Port(40000 + i)
		ctl.HandleEvent(ev)
	}

	if got := ctl.Counters.Get("decisions_headeronly"); got != events {
		t.Errorf("decisions_headeronly = %d, want %d", got, events)
	}
	if got := ctl.Counters.Get("flows_allowed"); got != events {
		t.Errorf("flows_allowed = %d, want %d", got, events)
	}
	for _, counter := range []string{
		"engine_queries_sent", "engine_coalesce_hits", "engine_negcache_hits",
		"engine_retries", "engine_breaker_opens", "engine_breaker_fastfails",
		"engine_timeouts",
	} {
		if got := eng.Counters.Get(counter); got != 0 {
			t.Errorf("%s = %d, want 0 (query plane must stay idle)", counter, got)
		}
	}
	if got := eng.InFlight.Get(); got != 0 {
		t.Errorf("engine in-flight gauge = %d, want 0", got)
	}

	// The same controller still uses the plane for key-dependent flows —
	// the pre-pass narrows, it does not disable.
	ev.Tuple.DstPort = 443
	ctl.HandleEvent(ev)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Counters.Get("engine_queries_sent") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("key-dependent flow never reached the query plane")
		}
		time.Sleep(time.Millisecond)
	}
}
