package identxx_bench

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"identxx/internal/daemon"
	"identxx/internal/openflow"
	"identxx/internal/packet"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// Every parser that consumes bytes an attacker can author — frames off the
// wire, ident++ payloads from end-hosts, secure-channel messages from
// switches, configuration pasted by users — must reject garbage with an
// error, never a panic. These tests drive each one with adversarial and
// random inputs.

func TestPacketDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = packet.Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPacketDecodeBitflips(t *testing.T) {
	// Take a valid frame and flip every single bit: decode must return a
	// frame or an error, never panic, and checksummed corruption in the
	// header region must not yield a silently different tuple.
	base := packet.TCPFrame(0x0a, 0x0b, mustFive(t), packet.TCPSyn, []byte("payload"))
	for i := 0; i < len(base)*8; i++ {
		mutated := append([]byte(nil), base...)
		mutated[i/8] ^= 1 << (i % 8)
		_, _ = packet.Decode(mutated)
	}
}

func TestWireDecodeNeverPanics(t *testing.T) {
	f := func(b []byte, src, dst uint32) bool {
		_, _ = wire.DecodeQuery(b, 0, 0)
		_, _ = wire.DecodeResponse(b, 0, 0)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWireFrameReaderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = wire.ReadFrame(bytes.NewReader(b))
	}
}

func TestOpenflowMsgReaderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(96)
		b := make([]byte, n)
		rng.Read(b)
		// Force a plausible header sometimes so body decoders get exercised.
		if n >= 8 && i%2 == 0 {
			b[0] = openflow.ProtoVersion
			b[2] = 0
			b[3] = byte(n)
		}
		m, err := openflow.ReadMsg(bytes.NewReader(b))
		if err != nil {
			continue
		}
		_, _ = openflow.DecodeFlowMod(m)
		_, _ = openflow.DecodePacketIn(m)
		_, _ = openflow.DecodePacketOut(m)
		_, _ = openflow.DecodeFlowRemoved(m)
	}
}

func TestPFParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = pf.Parse("fuzz", src)
		_, _ = pf.ParseRules("fuzz", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Structured near-misses around real syntax.
	for _, src := range []string{
		"pass from any to any with eq(@src[", "table <", "dict <d> { a :",
		"pass \\", "pass from { { { ", "block all with verify(",
		"pass from any to any with eq(*@", "\\\\\\", "pass port",
	} {
		_, _ = pf.Parse("nearmiss", src)
	}
}

func TestDaemonConfigParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = daemon.ParseConfig("fuzz", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMaliciousRequirementsCannotCrashController feeds hostile strings
// through the full allowed()/verify() path: an end-host controls these
// values completely and must get a block, not a crash or a pass.
func TestMaliciousRequirementsCannotCrashController(t *testing.T) {
	policy := pf.MustCompile("p", `
block all
pass from any to any with allowed(@src[requirements])
`)
	hostile := []string{
		"",
		"pass all with allowed(@src[requirements])", // self-recursion
		"table <x> { 0.0.0.0/0 } pass all",          // definition smuggling
		"pass all with verify(a, b, c)",             // garbage crypto
		"pass from { 1.1.1.1 to any",                // unterminated
		"block all \\",                              // dangling continuation
		"pass all with eq(@src[requirements], @src[requirements])",
		string(make([]byte, 1024)), // NULs
	}
	for _, req := range hostile {
		f := mustFive(t)
		r := wire.NewResponse(f)
		r.Add(wire.KeyRequirements, req)
		d := policy.Evaluate(pf.Input{Flow: f, Src: r})
		if d.Action != pf.Block && req != "pass all with eq(@src[requirements], @src[requirements])" {
			// The reflexive-equality case legitimately passes: the embedded
			// rule is valid and its predicate holds. Everything else blocks.
			t.Errorf("hostile requirements %.40q produced %v", req, d.Action)
		}
	}
}
