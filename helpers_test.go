package identxx_bench

import (
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func mustFive(t *testing.T) flow.Five {
	t.Helper()
	return flow.Five{
		SrcIP:   netaddr.MustParseIP("10.0.0.1"),
		DstIP:   netaddr.MustParseIP("10.0.0.2"),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 40000,
		DstPort: 80,
	}
}
