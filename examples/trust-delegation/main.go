// trust-delegation reenacts Figures 6-7: a third-party security company
// ("Secur") publishes signed firewall rules for applications; the
// administrator's whole policy is "trust Secur's key". Users run whatever
// Secur has vetted — here thunderbird, which Secur's rules confine to
// email servers.
package main

import (
	_ "embed"
	"fmt"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

// The administrator's rule ships as a real .control file (checked by
// CI's pfcheck pass); only the trusted key is injected at startup, the
// way a deployment would append a site-local dict override.
//
//go:embed 30-secur.control
var securControl string

func main() {
	securPub, securPriv := sig.MustGenerateKey()

	// Figure 6: Secur's signed per-application rule file, shipped to
	// end-hosts with the software.
	requirements := "block all pass from any with eq(@src[name], thunderbird) to any with eq(@dst[type], email-server)"
	signature := sig.Sign(securPriv,
		workload.Thunderbird.Exe().Hash(), "thunderbird", requirements)
	thunderbirdConf := fmt.Sprintf(`
@app /usr/bin/thunderbird {
	name : thunderbird
	type : email-client
	rule-maker : Secur
	requirements : %s
	req-sig : %s
}
`, requirements, signature)

	// Figure 7: the administrator's rule — anything Secur approved runs
	// under Secur's rules. The rule file is static; the deployment's real
	// key arrives as a dict override in a later fragment (later
	// definitions win under §3.4 concatenation).
	policy, err := compileWithKey(securControl, securPub)
	if err != nil {
		panic(err)
	}

	n := netsim.New()
	sw := n.AddSwitch("office", 0)
	desktop := n.AddHost("desktop", netaddr.MustParseIP("10.0.0.10"))
	mail := n.AddHost("mail", netaddr.MustParseIP("10.0.0.25"))
	web := n.AddHost("web", netaddr.MustParseIP("10.0.0.80"))
	for _, h := range []*netsim.Host{desktop, mail, web} {
		n.ConnectHost(h, sw, 0)
	}
	carol := workload.Populate(desktop, "carol", []string{"users"}, workload.Thunderbird)
	workload.Populate(mail, "postmaster", nil, workload.SMTPD)
	workload.Populate(web, "webmaster", nil, workload.HTTPD)

	cf, err := daemon.ParseConfig("thunderbird.conf", thunderbirdConf)
	if err != nil {
		panic(err)
	}
	desktop.Daemon.InstallConfig(cf, true)

	ctl := core.New(core.Config{
		Name: "office", Policy: policy, Transport: n.Transport(sw, nil),
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctl, sw)

	try := func(desc string, dst *netsim.Host, port netaddr.Port) {
		dst.ClearReceived()
		if err := carol.StartFlow("thunderbird", dst.IP(), port); err != nil {
			panic(err)
		}
		n.Run(0)
		verdict := "BLOCKED"
		if dst.ReceivedCount() > 0 {
			verdict = "delivered"
		}
		fmt.Printf("%-52s %s\n", desc, verdict)
	}

	try("thunderbird -> mail:25 (Secur's rules allow email)", mail, 25)
	try("thunderbird -> web:80 (not an email server)", web, 80)

	fmt.Printf("\ndecisions: %s\n", ctl.Counters)
	fmt.Println("\nThe administrator never mentioned thunderbird: dict <pubkeys> { Secur : ... } is the entire trust decision.")
}

// compileWithKey compiles the static rule file plus a generated dict
// fragment carrying the deployment's real public key; the fragment is
// compiled after the rule file, so its <pubkeys> entry wins.
func compileWithKey(control string, pub sig.PublicKey) (*pf.Policy, error) {
	base, err := pf.Parse("30-secur.control", control)
	if err != nil {
		return nil, err
	}
	keys, err := pf.Parse("90-keys.control",
		fmt.Sprintf("dict <pubkeys> { Secur : %s }", pub))
	if err != nil {
		return nil, err
	}
	return pf.Compile(base, keys)
}
