// trust-delegation reenacts Figures 6-7: a third-party security company
// ("Secur") publishes signed firewall rules for applications; the
// administrator's whole policy is "trust Secur's key". Users run whatever
// Secur has vetted — here thunderbird, which Secur's rules confine to
// email servers.
package main

import (
	"fmt"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

func main() {
	securPub, securPriv := sig.MustGenerateKey()

	// Figure 6: Secur's signed per-application rule file, shipped to
	// end-hosts with the software.
	requirements := "block all pass from any with eq(@src[name], thunderbird) to any with eq(@dst[type], email-server)"
	signature := sig.Sign(securPriv,
		workload.Thunderbird.Exe().Hash(), "thunderbird", requirements)
	thunderbirdConf := fmt.Sprintf(`
@app /usr/bin/thunderbird {
	name : thunderbird
	type : email-client
	rule-maker : Secur
	requirements : %s
	req-sig : %s
}
`, requirements, signature)

	// Figure 7: the administrator's rule — anything Secur approved runs
	// under Secur's rules.
	policy := pf.MustCompile("30-secur.control", fmt.Sprintf(`
dict <pubkeys> { Secur : %s }
block all
pass from any \
     with eq(@src[rule-maker], Secur) \
     with allowed(@src[requirements]) \
     with verify(@src[req-sig], @pubkeys[Secur], \
                 @src[exe-hash], @src[app-name], @src[requirements]) \
     to any
`, securPub))

	n := netsim.New()
	sw := n.AddSwitch("office", 0)
	desktop := n.AddHost("desktop", netaddr.MustParseIP("10.0.0.10"))
	mail := n.AddHost("mail", netaddr.MustParseIP("10.0.0.25"))
	web := n.AddHost("web", netaddr.MustParseIP("10.0.0.80"))
	for _, h := range []*netsim.Host{desktop, mail, web} {
		n.ConnectHost(h, sw, 0)
	}
	carol := workload.Populate(desktop, "carol", []string{"users"}, workload.Thunderbird)
	workload.Populate(mail, "postmaster", nil, workload.SMTPD)
	workload.Populate(web, "webmaster", nil, workload.HTTPD)

	cf, err := daemon.ParseConfig("thunderbird.conf", thunderbirdConf)
	if err != nil {
		panic(err)
	}
	desktop.Daemon.InstallConfig(cf, true)

	ctl := core.New(core.Config{
		Name: "office", Policy: policy, Transport: n.Transport(sw, nil),
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctl, sw)

	try := func(desc string, dst *netsim.Host, port netaddr.Port) {
		dst.ClearReceived()
		if err := carol.StartFlow("thunderbird", dst.IP(), port); err != nil {
			panic(err)
		}
		n.Run(0)
		verdict := "BLOCKED"
		if dst.ReceivedCount() > 0 {
			verdict = "delivered"
		}
		fmt.Printf("%-52s %s\n", desc, verdict)
	}

	try("thunderbird -> mail:25 (Secur's rules allow email)", mail, 25)
	try("thunderbird -> web:80 (not an email server)", web, 80)

	fmt.Printf("\ndecisions: %s\n", ctl.Counters)
	fmt.Println("\nThe administrator never mentioned thunderbird: dict <pubkeys> { Secur : ... } is the entire trust decision.")
}
