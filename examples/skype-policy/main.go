// skype-policy runs the paper's Figure 2 configuration end to end: three
// .control files (local header, the skype vendor policy, local footer)
// concatenated in alphabetical order, enforced over a two-switch network.
// It demonstrates policy layering — the vendor ships 50-skype.control, the
// administrator brackets it with 00- and 99- files — and the paper's
// flagship scenarios: skype-to-skype allowed, old skype versions refused,
// skype barred from the server it shares port 80 with.
package main

import (
	"embed"
	"fmt"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// The three Figure 2 layers ship as real .control files next to this
// program — exactly what an administrator would drop into
// /etc/identxx.control.d, and what CI's pfcheck pass keeps honest.
//
//go:embed 00-local-header.control 50-skype.control 99-local-footer.control
var controlFiles embed.FS

func main() {
	policy, err := pf.LoadControlFS(controlFiles, ".")
	if err != nil {
		panic(err)
	}

	n := netsim.New()
	sw := n.AddSwitch("lan", 0)
	pcA := n.AddHost("pcA", netaddr.MustParseIP("192.168.0.10"))
	pcB := n.AddHost("pcB", netaddr.MustParseIP("192.168.0.20"))
	srv := n.AddHost("server", netaddr.MustParseIP("192.168.1.1"))
	n.ConnectHost(pcA, sw, 0)
	n.ConnectHost(pcB, sw, 0)
	n.ConnectHost(srv, sw, 0)

	stA := workload.Populate(pcA, "alice", []string{"users"}, workload.Skype)
	stB := workload.Populate(pcB, "bob", []string{"users"}, workload.Skype)
	workload.Populate(srv, "admin", nil, workload.HTTPD)
	// bob's skype listens for calls.
	if err := pcB.Info.Listen(stB.Proc["skype"].PID, netaddr.ProtoTCP, 5060); err != nil {
		panic(err)
	}

	ctl := core.New(core.Config{
		Name: "fig2", Policy: policy, Transport: n.Transport(sw, nil),
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctl, sw)

	show := func(desc string, dst *netsim.Host, delivered bool) {
		verdict := "BLOCKED"
		if delivered {
			verdict = "delivered"
		}
		fmt.Printf("%-52s %s\n", desc, verdict)
	}

	// Scenario 1: current skype calls a peer — the vendor rule admits it.
	if err := stA.StartFlow("skype", pcB.IP(), 5060); err != nil {
		panic(err)
	}
	n.Run(0)
	show("skype 210 pcA -> pcB (vendor rule)", pcB, pcB.ReceivedCount() > 0)

	// Scenario 2: an outdated skype on the same machine — the footer's
	// version predicate refuses it even though the app is "skype".
	old := pcA.Info.Exec(stA.User, workload.OldSkype.Exe())
	pcB.ClearReceived()
	if _, err := pcA.StartFlow(old.PID, pcB.IP(), 5060); err != nil {
		panic(err)
	}
	n.Run(0)
	show("skype 150 pcA -> pcB (footer: lt version 200)", pcB, pcB.ReceivedCount() > 0)

	// Scenario 3: skype aims at the web server on port 80 — identical
	// 5-tuple shape to web traffic, blocked purely on application identity.
	if err := stA.StartFlow("skype", srv.IP(), 80); err != nil {
		panic(err)
	}
	n.Run(0)
	show("skype 210 pcA -> server:80 (footer: no skype to server)", srv, srv.ReceivedCount() > 0)

	fmt.Printf("\ndecisions: %s\n", ctl.Counters)
}
