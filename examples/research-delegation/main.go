// research-delegation reenacts Figures 3-5: a researcher signs her
// application's network requirements; the administrator's single rule
// delegates to that signature. No per-application firewall tickets, and
// tampering with the requirements kills the delegation.
package main

import (
	_ "embed"
	"fmt"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

// The delegation rule ships as a real .control file (checked by CI's
// pfcheck pass); the group's key is appended as a dict override at
// startup — and swapped for revocation.
//
//go:embed 30-research.control
var researchControl string

// compileWithKey compiles the static rule file plus a generated dict
// fragment with the research group's current public key.
func compileWithKey(pub sig.PublicKey) *pf.Policy {
	base, err := pf.Parse("30-research.control", researchControl)
	if err != nil {
		panic(err)
	}
	keys, err := pf.Parse("90-keys.control",
		fmt.Sprintf("dict <pubkeys> { research : %s }", pub))
	if err != nil {
		panic(err)
	}
	p, err := pf.Compile(base, keys)
	if err != nil {
		panic(err)
	}
	return p
}

func main() {
	// The research group's signing key. The public half is the only thing
	// the administrator needs to know about the group's software.
	pub, priv := sig.MustGenerateKey()

	// Figure 4: the researcher writes (and signs) what her app may do.
	requirements := "block all pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)"
	hash := workload.ResearchApp.Exe().Hash()
	signature := sig.Sign(priv, hash, "research-app", requirements)
	daemonConf := fmt.Sprintf(`
@app /usr/bin/research-app {
	name : research-app
	requirements : %s
	req-sig : %s
}
`, requirements, signature)

	// Figure 5: the administrator's rule — researchers may run whatever
	// they have signed, anywhere except production.
	policy := compileWithKey(pub)

	n := netsim.New()
	sw := n.AddSwitch("lab", 0)
	r1 := n.AddHost("lab1", netaddr.MustParseIP("10.1.0.1"))
	r2 := n.AddHost("lab2", netaddr.MustParseIP("10.1.0.2"))
	prod := n.AddHost("prod", netaddr.MustParseIP("10.2.0.1"))
	for _, h := range []*netsim.Host{r1, r2, prod} {
		n.ConnectHost(h, sw, 0)
	}
	st1 := workload.Populate(r1, "ryan", []string{"research"}, workload.ResearchApp)
	st2 := workload.Populate(r2, "jad", []string{"research"}, workload.ResearchApp)
	stP := workload.Populate(prod, "ops", []string{"production"}, workload.ResearchApp)
	for _, st := range []*workload.Station{st1, st2, stP} {
		cf, err := daemon.ParseConfig("research-app.conf", daemonConf)
		if err != nil {
			panic(err)
		}
		st.Host.Daemon.InstallConfig(cf, false)
		if err := st.Host.Info.Listen(st.Proc["research-app"].PID, netaddr.ProtoTCP, 7777); err != nil {
			panic(err)
		}
	}

	ctl := core.New(core.Config{
		Name: "lab", Policy: policy, Transport: n.Transport(sw, nil),
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctl, sw)

	try := func(desc string, src *workload.Station, dst *netsim.Host) {
		dst.ClearReceived()
		if err := src.StartFlow("research-app", dst.IP(), 7777); err != nil {
			panic(err)
		}
		n.Run(0)
		verdict := "BLOCKED"
		if dst.ReceivedCount() > 0 {
			verdict = "delivered"
		}
		fmt.Printf("%-48s %s\n", desc, verdict)
	}

	try("research-app lab1 -> lab2 (signed delegation)", st1, r2)
	try("research-app lab1 -> prod (production fence)", st1, prod)

	// Revocation: the group's key is withdrawn — the same rule file is
	// recompiled with a different dict override, so signatures under the
	// old key no longer verify. Cached verdicts are flushed with the
	// policy, so the very next packet re-evaluates and fails.
	other, _ := sig.MustGenerateKey()
	ctl.SetPolicy(compileWithKey(other))
	try("research-app lab1 -> lab2 after key revocation", st1, r2)

	fmt.Printf("\ndecisions: %s\n", ctl.Counters)
}
