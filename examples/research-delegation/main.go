// research-delegation reenacts Figures 3-5: a researcher signs her
// application's network requirements; the administrator's single rule
// delegates to that signature. No per-application firewall tickets, and
// tampering with the requirements kills the delegation.
package main

import (
	"fmt"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

func main() {
	// The research group's signing key. The public half is the only thing
	// the administrator needs to know about the group's software.
	pub, priv := sig.MustGenerateKey()

	// Figure 4: the researcher writes (and signs) what her app may do.
	requirements := "block all pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)"
	hash := workload.ResearchApp.Exe().Hash()
	signature := sig.Sign(priv, hash, "research-app", requirements)
	daemonConf := fmt.Sprintf(`
@app /usr/bin/research-app {
	name : research-app
	requirements : %s
	req-sig : %s
}
`, requirements, signature)

	// Figure 5: the administrator's rule — researchers may run whatever
	// they have signed, anywhere except production.
	policy := pf.MustCompile("30-research.control", fmt.Sprintf(`
table <research-machines> { 10.1.0.0/16 }
table <production-machines> { 10.2.0.0/16 }
dict <pubkeys> { research : %s }
block all
pass from <research-machines> \
     with member(@src[groupID], research) \
     to !<production-machines> \
     with member(@dst[groupID], research) \
     with allowed(@dst[requirements]) \
     with verify(@dst[req-sig], @pubkeys[research], \
                 @dst[exe-hash], @dst[app-name], @dst[requirements])
`, pub))

	n := netsim.New()
	sw := n.AddSwitch("lab", 0)
	r1 := n.AddHost("lab1", netaddr.MustParseIP("10.1.0.1"))
	r2 := n.AddHost("lab2", netaddr.MustParseIP("10.1.0.2"))
	prod := n.AddHost("prod", netaddr.MustParseIP("10.2.0.1"))
	for _, h := range []*netsim.Host{r1, r2, prod} {
		n.ConnectHost(h, sw, 0)
	}
	st1 := workload.Populate(r1, "ryan", []string{"research"}, workload.ResearchApp)
	st2 := workload.Populate(r2, "jad", []string{"research"}, workload.ResearchApp)
	stP := workload.Populate(prod, "ops", []string{"production"}, workload.ResearchApp)
	for _, st := range []*workload.Station{st1, st2, stP} {
		cf, err := daemon.ParseConfig("research-app.conf", daemonConf)
		if err != nil {
			panic(err)
		}
		st.Host.Daemon.InstallConfig(cf, false)
		if err := st.Host.Info.Listen(st.Proc["research-app"].PID, netaddr.ProtoTCP, 7777); err != nil {
			panic(err)
		}
	}

	ctl := core.New(core.Config{
		Name: "lab", Policy: policy, Transport: n.Transport(sw, nil),
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctl, sw)

	try := func(desc string, src *workload.Station, dst *netsim.Host) {
		dst.ClearReceived()
		if err := src.StartFlow("research-app", dst.IP(), 7777); err != nil {
			panic(err)
		}
		n.Run(0)
		verdict := "BLOCKED"
		if dst.ReceivedCount() > 0 {
			verdict = "delivered"
		}
		fmt.Printf("%-48s %s\n", desc, verdict)
	}

	try("research-app lab1 -> lab2 (signed delegation)", st1, r2)
	try("research-app lab1 -> prod (production fence)", st1, prod)

	// Revocation: the group's key is withdrawn; cached verdicts are flushed
	// with the policy, so the very next packet re-evaluates and fails.
	other, _ := sig.MustGenerateKey()
	revoked := pf.MustCompile("30-research.control", fmt.Sprintf(`
table <research-machines> { 10.1.0.0/16 }
table <production-machines> { 10.2.0.0/16 }
dict <pubkeys> { research : %s }
block all
pass from <research-machines> to !<production-machines> \
     with verify(@dst[req-sig], @pubkeys[research], \
                 @dst[exe-hash], @dst[app-name], @dst[requirements])
`, other))
	ctl.SetPolicy(revoked)
	try("research-app lab1 -> lab2 after key revocation", st1, r2)

	fmt.Printf("\ndecisions: %s\n", ctl.Counters)
}
