// branch-collab reenacts §4 "Network Collaboration": branch B's controller
// augments ident++ responses crossing its network with the rules B is
// willing to accept, and branch A enforces them *before* traffic crosses
// the slow inter-branch link. Doomed traffic never leaves branch A.
package main

import (
	_ "embed"
	"fmt"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/packet"
	"identxx/internal/pf"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

// Each branch's policy ships as a real .control file next to this
// program; CI's pfcheck pass keeps them compiling.
//
//go:embed branch-a.control
var branchAControl string

//go:embed branch-b.control
var branchBControl string

func main() {
	n := netsim.New()
	swA := n.AddSwitch("branchA", 0)
	swB := n.AddSwitch("branchB", 0)
	bottleneckPort, _ := n.ConnectSwitches(swA, swB, 0)

	a1 := n.AddHost("a1", netaddr.MustParseIP("10.1.0.1"))
	b1 := n.AddHost("b1", netaddr.MustParseIP("10.2.0.1"))
	n.ConnectHost(a1, swA, 0)
	n.ConnectHost(b1, swB, 0)
	stA := workload.Populate(a1, "alice", []string{"users"},
		workload.Firefox,
		workload.App{Name: "bulk", Path: "/usr/bin/bulk", Version: "1", DstPort: 9999})
	workload.Populate(b1, "bsvc", nil, workload.HTTPD)

	// Branch B accepts only web traffic and advertises that by augmenting
	// every ident++ response that leaves its network (§3.4).
	ctlB := core.New(core.Config{
		Name:      "B",
		Policy:    pf.MustCompile("branch-b.control", branchBControl),
		Transport: n.Transport(swB, nil), Topology: n,
		InstallEntries: true, Clock: n.Clock.Now,
	})
	ctlB.SetAugmenter(func(q wire.Query, resp *wire.Response) {
		resp.Augment("controller:B").Add("branch-rules",
			"block all pass from any to any port 80")
	})
	n.AttachController(ctlB, swB)

	// Branch A defers to whatever the destination branch advertises.
	ctlA := core.New(core.Config{
		Name:      "A",
		Policy:    pf.MustCompile("branch-a.control", branchAControl),
		Transport: n.Transport(swA, nil), Topology: n,
		InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctlA, swA)

	payload := make([]byte, 1000)
	send := func(app string, port netaddr.Port) {
		five, err := stA.Open(app, b1.IP(), port)
		if err != nil {
			panic(err)
		}
		n.Run(0)
		a1.SendTCP(five, packet.TCPAck, payload)
		n.Run(0)
	}
	for i := 0; i < 5; i++ {
		send("firefox", 80) // B accepts these
	}
	webBytes := swA.Stats(bottleneckPort).Bytes
	for i := 0; i < 5; i++ {
		send("bulk", 9999) // B would reject these
	}
	total := swA.Stats(bottleneckPort).Bytes

	fmt.Printf("flows delivered at branch B:        %d\n", len(b1.ReceivedFlows()))
	fmt.Printf("bottleneck bytes (web flows):       %d\n", webBytes)
	fmt.Printf("bottleneck bytes (doomed bulk):     %d\n", total-webBytes)
	fmt.Printf("branch A denials on B's behalf:     %d\n", ctlA.Counters.Get("flows_denied"))
	fmt.Printf("responses augmented by branch B:    %d\n", ctlB.Counters.Get("responses_augmented"))
	fmt.Println("\nBulk traffic died at branch A's edge switch: zero doomed bytes crossed the WAN.")
}
