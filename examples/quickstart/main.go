// Quickstart: the smallest complete ident++ deployment — one switch, two
// hosts, one application-aware rule. It shows the Figure 1 pipeline in
// about sixty lines: the first packet of a flow punts to the controller,
// the controller queries both end-host daemons, evaluates PF+=2 over the
// responses, and the verdict is cached in the switch.
package main

import (
	_ "embed"
	"fmt"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// The policy ships as a real .control file next to this program (CI runs
// pfcheck over every example's .control files, so it cannot rot).
//
//go:embed quickstart.control
var quickstartControl string

func main() {
	// A network: one switch, a laptop and a server.
	n := netsim.New()
	sw := n.AddSwitch("office", 0)
	laptop := n.AddHost("laptop", netaddr.MustParseIP("10.0.0.10"))
	server := n.AddHost("server", netaddr.MustParseIP("10.0.0.80"))
	n.ConnectHost(laptop, sw, 0)
	n.ConnectHost(server, sw, 0)

	// Populate the hosts: alice runs firefox and dropbox; the server runs
	// httpd. Each host's ident++ daemon answers for its OS state.
	alice := workload.Populate(laptop, "alice", []string{"users"},
		workload.Firefox, workload.Dropbox)
	workload.Populate(server, "admin", nil, workload.HTTPD)

	// The administrator's policy names applications, not ports: browsers
	// may reach the web server; nothing else may (§1's port-80 dilemma,
	// solved by asking the end-host what is actually talking).
	policy := pf.MustCompile("quickstart.control", quickstartControl)

	// The ident++ controller: queries daemons through the simulated
	// network, computes paths from its topology, installs verdicts.
	ctl := core.New(core.Config{
		Name:           "quickstart",
		Policy:         policy,
		Transport:      n.Transport(sw, nil),
		Topology:       n,
		Latency:        n.LatencyModel(),
		InstallEntries: true,
		Clock:          n.Clock.Now,
	})
	n.AttachController(ctl, sw)

	// Firefox and dropbox both dial the server on port 80 —
	// indistinguishable to a port-based firewall.
	check := func(app string) {
		server.ClearReceived()
		if err := alice.StartFlow(app, server.IP(), 80); err != nil {
			panic(err)
		}
		n.Run(0)
		verdict := "BLOCKED"
		if server.ReceivedCount() > 0 {
			verdict = "delivered"
		}
		fmt.Printf("%-8s -> server:80  %s\n", app, verdict)
	}
	check("firefox")
	check("dropbox")

	fmt.Printf("\ncontroller counters: %s\n", ctl.Counters)
	fmt.Println("\naudit trail:")
	for _, e := range ctl.Audit.Entries() {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("\nflow-setup latency: %s\n", ctl.Setup.Total.Summary())
}
