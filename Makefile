GO ?= go

# The CI gate: everything a fresh clone must pass. `test` runs without the
# race detector on purpose: the allocation-budget guards (alloc_test.go)
# skip themselves under -race, so both flavors are needed.
.PHONY: ci
ci: fmt-check vet build test race race-query bench-smoke check-examples check-docs

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

.PHONY: vet
vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI pins the tool versions (see
# .github/workflows/ci.yml); locally the steps degrade to a notice when a
# tool is not installed, so `make lint` never needs network access.
.PHONY: lint
lint: fmt-check vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@v0.6.1)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipped (go install golang.org/x/vuln/cmd/govulncheck@v1.1.4)"; fi

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The concurrency suite (internal/core stress tests included) under the
# race detector.
.PHONY: race
race:
	$(GO) test -race ./...

# The query plane is the most concurrency-dense package (pipelined
# connections, coalesced flights, async completions); run it repeatedly
# under the race detector so interleavings get more than one roll.
.PHONY: race-query
race-query:
	$(GO) test -race -count=2 ./internal/query/

# One iteration of every benchmark as a smoke check: catches benchmarks
# that no longer compile or crash without paying for a measurement run.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full measurement run of the paper's E/M benchmark suite.
.PHONY: bench
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Sharded fast-path throughput across shard counts (compare shards=1 to
# shards=16 on a multi-core host).
.PHONY: bench-m7
bench-m7:
	$(GO) test -run=NONE -bench=BenchmarkM7 -benchtime=2s .

# Compare the steady-state benchmarks (M7-M12) against a base ref and
# enforce the allocation budget, exactly as CI's bench-compare job does.
# Requires a clean-enough tree for `git worktree add` of BASE (default
# main). benchstat (golang.org/x/perf) enriches the report when installed;
# the budget gate itself is the in-repo cmd/benchdiff, so no network or
# extra tools are needed to run the check. Besides the text report, the
# run leaves BENCH_$(BENCH_COUNT).json in the repo root — the full
# comparison serialized by benchdiff -json, written even when the gate
# fails; CI uploads the same file as the job's artifact.
BASE ?= main
BENCH_COUNT ?= 3
BENCH_TIME ?= 20000x
BENCH_OUT ?= BENCH_$(BENCH_COUNT).json
.PHONY: bench-compare
bench-compare:
	@tmp=$$(mktemp -d); \
	set -e; \
	git worktree add --detach $$tmp/base $(BASE) >/dev/null; \
	trap 'git worktree remove --force '"$$tmp"'/base >/dev/null 2>&1; rm -rf '"$$tmp" EXIT; \
	echo "== base ($(BASE)) =="; \
	(cd $$tmp/base && $(GO) test -run=NONE -bench='M7_|M8_|M9_|M10_|M11_|M12_|M13_|M14_|M15_' -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) .) | tee $$tmp/base.txt; \
	echo "== head =="; \
	$(GO) test -run=NONE -bench='M7_|M8_|M9_|M10_|M11_|M12_|M13_|M14_|M15_' -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) . | tee $$tmp/head.txt; \
	if command -v benchstat >/dev/null 2>&1; then benchstat $$tmp/base.txt $$tmp/head.txt || true; fi; \
	$(GO) run ./cmd/benchdiff \
		-max-allocs 'BenchmarkM7_ShardedHandleEvent=2' \
		-max-allocs 'BenchmarkM8_AllocProfile=2' \
		-max-allocs 'BenchmarkM9_QueryPlane/hit=2' \
		-max-allocs 'BenchmarkM10_PolicyEval/compiled=2' \
		-max-allocs 'BenchmarkM11_Revocation/no-subscribers=2' \
		-max-allocs 'BenchmarkM12_Megaflow/member-hit=2' \
		-max-allocs 'BenchmarkM13_CredentialedSession/steady=2' \
		-max-allocs 'BenchmarkM14_Cluster/owned-hit=2' \
		-max-allocs 'BenchmarkM15_Trace/off=2' \
		-json $(BENCH_OUT) \
		$$tmp/base.txt $$tmp/head.txt

# Documentation gates. The drift tests pin docs/metrics.md to the wired
# telemetry registry (and counter literals in source to the wiring
# tables); the link check walks every relative markdown link in README.md
# and docs/ and fails on targets that do not exist. No external tools.
.PHONY: check-docs
check-docs:
	$(GO) test -run 'TestMetricsDocMatchesRegistry|TestSourceCountersAreDeclared' ./internal/telemetry/
	@fail=0; \
	for f in README.md docs/*.md; do \
		dir=$$(dirname "$$f"); \
		for link in $$(grep -oE '\]\([^)#[:space:]]+' "$$f" | sed 's/](//'); do \
			case "$$link" in http://*|https://*) continue;; esac; \
			if [ ! -e "$$dir/$$link" ]; then echo "$$f: broken link -> $$link"; fail=1; fi; \
		done; \
	done; \
	if [ "$$fail" -ne 0 ]; then exit 1; fi; \
	echo "check-docs: links ok"

# Short bursts of every fuzz target; regression seeds live in testdata/.
FUZZTIME ?= 30s
.PHONY: fuzz
fuzz:
	$(GO) test -fuzz=FuzzParseFive -fuzztime=$(FUZZTIME) ./internal/flow/
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeResponse -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzParsePolicy -fuzztime=$(FUZZTIME) ./internal/pf/
	$(GO) test -fuzz=FuzzDecodeHello -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzParseCredential -fuzztime=$(FUZZTIME) ./internal/cred/

# Compile every example's .control files through pfcheck (with -explain,
# so the compiler's lowering and key analysis run too): example configs
# cannot silently rot. branch-collab's two files are independent
# per-controller policies, checked one by one exactly as the example
# deploys them; every other example is a §3.4 concatenated directory.
.PHONY: check-examples
check-examples:
	@for d in examples/quickstart examples/skype-policy examples/trust-delegation examples/research-delegation; do \
		echo "pfcheck -explain -dir $$d"; \
		$(GO) run ./cmd/pfcheck -explain -dir $$d >/dev/null || exit 1; \
	done
	@for f in examples/branch-collab/*.control; do \
		echo "pfcheck -explain $$f"; \
		$(GO) run ./cmd/pfcheck -explain $$f >/dev/null || exit 1; \
	done
