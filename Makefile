GO ?= go

# The CI gate: everything a fresh clone must pass.
.PHONY: ci
ci: fmt-check vet build race bench-smoke

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The concurrency suite (internal/core stress tests included) under the
# race detector.
.PHONY: race
race:
	$(GO) test -race ./...

# One iteration of every benchmark as a smoke check: catches benchmarks
# that no longer compile or crash without paying for a measurement run.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full measurement run of the paper's E/M benchmark suite.
.PHONY: bench
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Sharded fast-path throughput across shard counts (compare shards=1 to
# shards=16 on a multi-core host).
.PHONY: bench-m7
bench-m7:
	$(GO) test -run=NONE -bench=BenchmarkM7 -benchtime=2s .

# Short bursts of every fuzz target; regression seeds live in testdata/.
FUZZTIME ?= 30s
.PHONY: fuzz
fuzz:
	$(GO) test -fuzz=FuzzParseFive -fuzztime=$(FUZZTIME) ./internal/flow/
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeResponse -fuzztime=$(FUZZTIME) ./internal/wire/
