package identxx_bench

import (
	"context"
	"sync"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/openflow"
	"identxx/internal/packet"
	"identxx/internal/pf"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

// tcpTopo is a single-switch topology for the all-TCP integration test.
type tcpTopo struct {
	ports map[netaddr.IP]uint16
}

func (t *tcpTopo) Path(src, dst netaddr.IP) ([]core.Hop, error) {
	return []core.Hop{{Datapath: 1, OutPort: t.ports[dst]}}, nil
}

// tcpQueryTransport queries a real daemon.Server over loopback TCP.
type tcpQueryTransport struct {
	addrs map[netaddr.IP]string
}

func (t *tcpQueryTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	addr, ok := t.addrs[host]
	if !ok {
		return nil, 0, core.ErrNoDaemon
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := daemon.Query(ctx, addr, q)
	return resp, time.Since(start), err
}

// recordingSink collects frames a switch transmits, keyed by port.
type recordingSink struct {
	mu sync.Mutex
	tx map[uint16]int
}

func (r *recordingSink) Transmit(_ *openflow.Switch, port uint16, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tx == nil {
		r.tx = make(map[uint16]int)
	}
	r.tx[port]++
}

func (r *recordingSink) count(port uint16) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tx[port]
}

// TestAllTCPIntegration exercises the complete real-socket stack: an
// OpenFlow switch attached to the controller over the binary TCP secure
// channel, and end-host daemons answering ident++ queries over TCP port
// assignments on loopback. No simulator components are involved.
func TestAllTCPIntegration(t *testing.T) {
	clientIP := netaddr.MustParseIP("10.0.0.1")
	serverIP := netaddr.MustParseIP("10.0.0.2")

	// End hosts: real hostinfo + real TCP daemons.
	clientHost := hostinfo.New("client", clientIP, 0x0a)
	serverHost := hostinfo.New("server", serverIP, 0x0b)
	alice := clientHost.AddUser("alice", "users")
	skypeProc := clientHost.Exec(alice, workload.Skype.Exe())
	exfilProc := clientHost.Exec(alice, hostinfo.Executable{Path: "/tmp/exfil", Name: "exfil", Version: "1"})
	web := serverHost.AddSystemUser("www")
	webProc := serverHost.Exec(web, workload.HTTPD.Exe())
	if err := serverHost.Listen(webProc.PID, netaddr.ProtoTCP, 80); err != nil {
		t.Fatal(err)
	}
	dClient := daemon.NewServer(daemon.New(clientHost))
	aClient, err := dClient.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dClient.Close()
	dServer := daemon.NewServer(daemon.New(serverHost))
	aServer, err := dServer.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dServer.Close()

	// Controller behind a TCP channel server.
	ctl := core.New(core.Config{
		Name: "integration",
		Policy: pf.MustCompile("p", `
block all
pass from any to any with eq(@src[name], skype) keep state
`),
		Transport: &tcpQueryTransport{addrs: map[netaddr.IP]string{
			clientIP: aClient.String(),
			serverIP: aServer.String(),
		}},
		Topology:       &tcpTopo{ports: map[netaddr.IP]uint16{clientIP: 1, serverIP: 2}},
		InstallEntries: true,
	})
	handler := &integrationHandler{ctl: ctl}
	chSrv := openflow.NewChannelServer(handler)
	chAddr, err := chSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer chSrv.Close()

	// The switch, connected over the secure channel.
	sink := &recordingSink{}
	sw := openflow.NewSwitch(1, "s1", 0)
	sw.AddPort(1)
	sw.AddPort(2)
	sw.SetTransmitter(sink)
	agent, err := openflow.Connect(sw, chAddr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// An allowed flow: skype's connection, registered in the client OS.
	five, err := clientHost.Connect(skypeProc.PID, flow.Five{
		DstIP: serverIP, Proto: netaddr.ProtoTCP, DstPort: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := packet.TCPFrame(clientHost.MAC, serverHost.MAC, five, packet.TCPSyn, nil)
	sw.Receive(1, frame)

	waitFor(t, "allowed flow forwarded", func() bool { return sink.count(2) == 1 })
	if got := ctl.Counters.Get("flows_allowed"); got != 1 {
		t.Fatalf("flows_allowed = %d; counters: %s", got, ctl.Counters)
	}

	// Cached: a second packet is forwarded without another packet-in.
	punts := sw.Stats.PacketIns.Load()
	sw.Receive(1, packet.TCPFrame(clientHost.MAC, serverHost.MAC, five, packet.TCPAck, []byte("hi")))
	waitFor(t, "cached flow forwarded", func() bool { return sink.count(2) == 2 })
	if sw.Stats.PacketIns.Load() != punts {
		t.Error("cached flow still punted")
	}

	// A denied flow: the exfil tool from the same user and host.
	five2, err := clientHost.Connect(exfilProc.PID, flow.Five{
		DstIP: serverIP, Proto: netaddr.ProtoTCP, DstPort: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw.Receive(1, packet.TCPFrame(clientHost.MAC, serverHost.MAC, five2, packet.TCPSyn, nil))
	waitFor(t, "denied flow decided", func() bool { return ctl.Counters.Get("flows_denied") == 1 })
	if sink.count(2) != 2 {
		t.Errorf("denied flow leaked: port-2 tx = %d", sink.count(2))
	}
}

type integrationHandler struct {
	ctl *core.Controller
}

func (h *integrationHandler) SwitchConnected(sw *openflow.RemoteSwitch) {
	h.ctl.AddDatapath(sw)
}

func (h *integrationHandler) PacketIn(sw *openflow.RemoteSwitch, ev openflow.PacketIn) {
	if p, err := packet.Decode(ev.Frame); err == nil {
		ev.Tuple = p.Ten(ev.InPort)
	}
	h.ctl.HandleEvent(ev)
}

func (h *integrationHandler) FlowRemoved(sw *openflow.RemoteSwitch, ev openflow.FlowRemoved) {
	h.ctl.HandleFlowRemoved(nil, ev)
}

func (h *integrationHandler) SwitchDisconnected(*openflow.RemoteSwitch) {}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestEnterpriseScale drives a 3x5-station enterprise tree with the Figure 2
// policy family through 300 generated flows and checks global invariants:
// deterministic outcomes across runs, no policy diagnostics, audit/counter
// consistency, and denied flows never reaching servers.
func TestEnterpriseScale(t *testing.T) {
	run := func() (allowed, denied int64, audits int64) {
		n := netsim.New()
		tree := workload.BuildTree(n, 3, 5)
		policy := pf.MustCompile("enterprise", `
table <net> { 10.0.0.0/8 }
block all
pass from <net> to <net> with eq(@src[name], skype) with eq(@dst[name], skype) keep state
pass from <net> to <net> port 80 with eq(@src[name], firefox) keep state
pass from <net> to <net> port 22 with eq(@src[name], ssh) keep state
pass from <net> to <net> port 25 with eq(@src[name], thunderbird) keep state
`)
		ctl := core.New(core.Config{
			Name: "enterprise", Policy: policy,
			Transport: n.Transport(tree.Root, nil), Topology: n,
			InstallEntries: true, ResponseCacheTTL: time.Second, Clock: n.Clock.Now,
		})
		n.AttachController(ctl, tree.AllSwitches()...)

		gen := workload.NewGenerator(tree, 2009)
		for i := 0; i < 300; i++ {
			if err := gen.Open(gen.Next()); err != nil {
				t.Fatal(err)
			}
			n.Run(0)
		}
		return ctl.Counters.Get("flows_allowed"), ctl.Counters.Get("flows_denied"), ctl.Audit.Total()
	}
	a1, d1, t1 := run()
	a2, d2, t2 := run()
	if a1 != a2 || d1 != d2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, d1, t1, a2, d2, t2)
	}
	if a1 == 0 {
		t.Error("no flows allowed — policy or workload broken")
	}
	if d1 == 0 {
		t.Error("no flows denied — dropbox traffic should be blocked")
	}
	if t1 != a1+d1 {
		t.Errorf("audit total %d != allowed %d + denied %d", t1, a1, d1)
	}
}
