package identxx_bench

import (
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// allocBudget is the per-event allocation contract on the steady-state
// packet-in → policy-decision → verdict path (see README "Allocation
// budget"). The budget is deliberately above the measured steady state
// (zero) so incidental runtime noise does not flake the gate, and low
// enough that any real regression — a new per-event slice, closure, or
// boxed value — trips it.
const allocBudget = 2

// allocsPerEvent measures steady-state allocations of one HandleEvent
// variant. testing.AllocsPerRun's own warm-up call fills the scratch,
// eval-context, and response-view pools before counting starts.
func allocsPerEvent(ctl *core.Controller, ev func()) float64 {
	return testing.AllocsPerRun(2000, ev)
}

// TestAllocBudgetCacheHit pins the M7 fast path — warm response cache,
// PF+=2 evaluation, audit, one-hop install — to the allocation budget.
// This is the enforcement half of the budget: BenchmarkM8_AllocProfile
// reports, this test fails.
func TestAllocBudgetCacheHit(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds entries randomly under -race; allocation counts are nondeterministic")
	}
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
		srcIP: {"name": "skype"},
		dstIP: {"name": "skype"},
	}}
	ctl := core.New(core.Config{
		Name:             "budget",
		Policy:           pf.MustCompile("budget", m8Policy),
		Transport:        tr,
		Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
	})
	ctl.AddDatapath(&m7Datapath{id: 1})
	ev := m8Event(srcIP, dstIP)

	got := allocsPerEvent(ctl, func() { ctl.HandleEvent(ev) })
	if got > allocBudget {
		t.Fatalf("cache-hit HandleEvent allocates %.1f objects/op, budget is %d", got, allocBudget)
	}
	if ctl.Counters.Get("response_cache_hits") == 0 {
		t.Fatal("cache-hit path not exercised")
	}
}

// TestAllocBudgetMegaflowHit pins the megaflow member-hit path — one
// class-table probe resolving the verdict, install under the class
// cookie, path publication to the entry's teardown set — to the same
// budget as the exact-cache hit. Each measured event is a different
// member tuple (cycling source ports), so the probe, not a per-tuple
// cache line, is what serves it.
func TestAllocBudgetMegaflowHit(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds entries randomly under -race; allocation counts are nondeterministic")
	}
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
		srcIP: {"name": "skype"},
		dstIP: {"name": "skype"},
	}}
	ctl := core.New(core.Config{
		Name:             "budget",
		Policy:           pf.MustCompile("budget", m12Policy),
		Transport:        tr,
		Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Megaflow:         true,
	})
	ctl.AddDatapath(&m7Datapath{id: 1})

	const class = 512
	for i := 0; i < class; i++ { // founder decision + one warm lap
		ctl.HandleEvent(m12Event(srcIP, dstIP, i))
	}
	sp := 0
	got := allocsPerEvent(ctl, func() {
		ctl.HandleEvent(m12Event(srcIP, dstIP, sp%class))
		sp++
	})
	if got > allocBudget {
		t.Fatalf("megaflow-hit HandleEvent allocates %.1f objects/op, budget is %d", got, allocBudget)
	}
	if _, hits, _, _ := ctl.MegaflowStats(); hits == 0 {
		t.Fatal("megaflow-hit path not exercised")
	}
}

// TestAllocBudgetMissLocalAnswer pins the cache-miss path where both ends
// are answered from the controller's answer-on-behalf table: the full
// two-ended query fan-out, pooled response-view construction, evaluation,
// audit, and install — still within the budget.
func TestAllocBudgetMissLocalAnswer(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool sheds entries randomly under -race; allocation counts are nondeterministic")
	}
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	ctl := core.New(core.Config{
		Name:           "budget",
		Policy:         pf.MustCompile("budget", m8Policy),
		Transport:      m8NoDaemonTransport{},
		Topology:       &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries: true,
	})
	ctl.AddDatapath(&m7Datapath{id: 1})
	ctl.AnswerForHost(srcIP, wire.KV{Key: wire.KeyName, Value: "skype"})
	ctl.AnswerForHost(dstIP, wire.KV{Key: wire.KeyName, Value: "skype"})
	ev := m8Event(srcIP, dstIP)

	got := allocsPerEvent(ctl, func() { ctl.HandleEvent(ev) })
	if got > allocBudget {
		t.Fatalf("miss-local-answer HandleEvent allocates %.1f objects/op, budget is %d", got, allocBudget)
	}
	if ctl.Counters.Get("answered_on_behalf") == 0 {
		t.Fatal("answer-on-behalf path not exercised")
	}
	if ctl.Counters.Get("flows_allowed") == 0 {
		t.Fatal("no flows decided")
	}
}
