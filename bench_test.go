// Package identxx_bench regenerates every evaluation artifact of the paper
// (E1-E8, one per figure/section — see DESIGN.md's per-experiment index)
// and the implied microbenchmarks (M1-M6). Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks execute the full scenario per iteration, so their ns/op
// is the cost of the whole experiment; their correctness is asserted by the
// experiment's own table checks (run via internal/experiments tests and
// cmd/identxx-bench).
package identxx_bench

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/cluster"
	"identxx/internal/core"
	"identxx/internal/cred"
	"identxx/internal/daemon"
	"identxx/internal/experiments"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/sig"
	"identxx/internal/trace"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

func benchExperiment(b *testing.B, run func(w io.Writer) *experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run(io.Discard)
	}
}

func BenchmarkE1_FlowSetup(b *testing.B)          { benchExperiment(b, experiments.RunE1) }
func BenchmarkE2_SkypePolicy(b *testing.B)        { benchExperiment(b, experiments.RunE2) }
func BenchmarkE3_ResearchDelegation(b *testing.B) { benchExperiment(b, experiments.RunE3) }
func BenchmarkE4_TrustDelegation(b *testing.B)    { benchExperiment(b, experiments.RunE4) }
func BenchmarkE5_PatchGate(b *testing.B)          { benchExperiment(b, experiments.RunE5) }
func BenchmarkE6_Compromise(b *testing.B)         { benchExperiment(b, experiments.RunE6) }
func BenchmarkE7_BranchCollab(b *testing.B)       { benchExperiment(b, experiments.RunE7) }
func BenchmarkE8_Incremental(b *testing.B)        { benchExperiment(b, experiments.RunE8) }
func BenchmarkE9_Revocation(b *testing.B)         { benchExperiment(b, experiments.RunE9) }

// BenchmarkM1_SetupVsPolicySize sweeps flow-setup cost against policy size
// and topology diameter: the Ethane-lineage scalability question. The
// reported virtual_setup_us metric is the p50 end-to-end setup latency in
// simulated time; ns/op is the controller's real compute cost.
func BenchmarkM1_SetupVsPolicySize(b *testing.B) {
	for _, rules := range []int{10, 100, 1000} {
		for _, diameter := range []int{1, 4, 8} {
			name := ""
			switch {
			case rules < 100:
				name = "rules=10"
			case rules < 1000:
				name = "rules=100"
			default:
				name = "rules=1000"
			}
			b.Run(name+"/diameter="+itoa(diameter), func(b *testing.B) {
				sb := experiments.NewSetupBench(diameter, rules)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sb.OneFlow(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(sb.Ctl.Setup.Total.Quantile(0.5))/1e3, "virtual_setup_us")
			})
		}
	}
}

// BenchmarkM2_PFEval measures PF+=2 evaluation throughput against rule
// count, with the `quick` ablation showing what short-circuiting buys.
func BenchmarkM2_PFEval(b *testing.B) {
	f := flow.Five{
		SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 5060,
	}
	in := pf.Input{Flow: f}
	src := wire.NewResponse(f)
	src.Add(wire.KeyName, "skype")
	dst := wire.NewResponse(f)
	dst.Add(wire.KeyName, "skype")
	in.Src, in.Dst = src, dst
	for _, rules := range []int{10, 100, 1000} {
		for _, quick := range []bool{false, true} {
			name := "rules=" + itoa(rules)
			if quick {
				name += "/quick"
			} else {
				name += "/scan"
			}
			b.Run(name, func(b *testing.B) {
				p := experiments.SyntheticPolicy(rules, quick)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if d := p.Evaluate(in); d.Action != pf.Pass {
						b.Fatal("wrong decision")
					}
				}
			})
		}
	}
}

// BenchmarkM3_FlowTable measures the switch datapath: exact-match lookup
// (the hot path for cached verdicts) and flow-mod installation throughput.
// The wildcard-scan variant lives in internal/openflow's benches.
func BenchmarkM3_FlowTable(b *testing.B) {
	b.Run("lookup-exact-1k-entries", func(b *testing.B) {
		tb := openflow.NewTable(0)
		now := time.Now()
		var ten flow.Ten
		ten.EthType = flow.EthTypeIPv4
		ten.Proto = netaddr.ProtoTCP
		for i := 0; i < 1000; i++ {
			ten.DstPort = netaddr.Port(i)
			e := &openflow.Entry{Match: flow.ExactMatch(ten), Actions: openflow.Output(1)}
			if err := tb.Insert(e, now); err != nil {
				b.Fatal(err)
			}
		}
		ten.DstPort = 500
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tb.Lookup(ten, 64, now) == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("flow-mod-install", func(b *testing.B) {
		sw := openflow.NewSwitch(1, "bench", 0)
		sw.AddPort(1)
		var ten flow.Ten
		ten.EthType = flow.EthTypeIPv4
		ten.Proto = netaddr.ProtoTCP
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ten.DstPort = netaddr.Port(i)
			ten.SrcPort = netaddr.Port(i >> 16)
			err := sw.Apply(openflow.FlowMod{
				Match:    flow.ExactMatch(ten),
				Actions:  openflow.Output(1),
				BufferID: openflow.BufferNone,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkM4_WireRTT measures a full ident++ exchange over a real TCP
// loopback socket: dial, framed query, daemon lookup, framed response.
func BenchmarkM4_WireRTT(b *testing.B) {
	client := hostinfo.New("pc", netaddr.MustParseIP("10.0.0.1"), 1)
	alice := client.AddUser("alice", "users")
	proc := client.Exec(alice, workload.Skype.Exe())
	five, err := client.Connect(proc.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		b.Fatal(err)
	}
	d := daemon.New(client)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	q := wire.Query{Flow: five, Keys: []string{wire.KeyUserID, wire.KeyName}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := daemon.Query(ctx, addr.String(), q)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
			b.Fatal("wrong response")
		}
	}
}

// BenchmarkM5_CacheAblation compares decision caching in switch tables
// (the paper's design) against per-packet controller involvement: the
// punts_per_flow metric is the ablation's cost for a 20-packet flow.
func BenchmarkM5_CacheAblation(b *testing.B) {
	for _, install := range []bool{true, false} {
		name := "install-entries"
		if !install {
			name = "ablated-no-cache"
		}
		b.Run(name, func(b *testing.B) {
			sb := experiments.NewSetupBench(2, 10)
			if !install {
				// Rebuild with caching off.
				sb = experiments.NewSetupBenchNoCache(2, 10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			totalFlows := 0
			for i := 0; i < b.N; i++ {
				if err := sb.PacketTrain(20); err != nil {
					b.Fatal(err)
				}
				totalFlows++
			}
			b.StopTimer()
			punts := float64(sb.Ctl.Counters.Get("packet_ins"))
			b.ReportMetric(punts/float64(totalFlows), "punts_per_flow")
		})
	}
}

// BenchmarkM6_SigCost measures what Ed25519 verification adds to the
// decision path (Figures 5/7's verify), against the same policy without it.
func BenchmarkM6_SigCost(b *testing.B) {
	for _, withVerify := range []bool{false, true} {
		name := "no-verify"
		if withVerify {
			name = "verify"
		}
		b.Run(name, func(b *testing.B) {
			policy, in := experiments.VerifyPolicy(withVerify)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := policy.Evaluate(in); d.Action != pf.Pass {
					b.Fatalf("wrong decision: %+v", d.Diags)
				}
			}
		})
	}
}

// m7Transport serves one canned response per host with zero latency, so
// the benchmark measures the controller, not the daemons.
type m7Transport struct {
	responses map[netaddr.IP]map[string]string
}

func (t *m7Transport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	kv, ok := t.responses[host]
	if !ok {
		return nil, 0, core.ErrNoDaemon
	}
	r := wire.NewResponse(q.Flow)
	for k, v := range kv {
		r.Add(k, v)
	}
	return r, 0, nil
}

// m7Topo returns a fixed one-hop path.
type m7Topo struct{ hops []core.Hop }

func (t *m7Topo) Path(src, dst netaddr.IP) ([]core.Hop, error) { return t.hops, nil }

// m7Datapath is a sink: the benchmark target is the controller's decision
// pipeline, so the switch side costs one atomic add and nothing else.
type m7Datapath struct {
	id   uint64
	mods atomic.Int64
}

func (d *m7Datapath) DatapathID() uint64                  { return d.id }
func (d *m7Datapath) Apply(openflow.FlowMod) error        { d.mods.Add(1); return nil }
func (d *m7Datapath) PacketOut(port uint16, frame []byte) {}
func (d *m7Datapath) ReleaseBuffer(id uint32)             {}

// BenchmarkM7_ShardedHandleEvent measures packet-in throughput on the
// sharded fast path under b.RunParallel, across shard counts. Every
// goroutine cycles its own working set of flows with the response cache
// warm, so an iteration is the full Figure 1 pipeline minus daemon RTTs:
// snapshot load, shard claim, cache hit, PF+=2 evaluation, audit, and a
// one-hop install. shards=1 approximates the old single-lock controller;
// the spread to shards=16 is what the sharding buys on a multi-core host.
func BenchmarkM7_ShardedHandleEvent(b *testing.B) {
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	for _, shards := range []int{1, 4, 16} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
				srcIP: {"name": "skype", "version": "210"},
				dstIP: {"name": "skype"},
			}}
			dp := &m7Datapath{id: 1}
			ctl := core.New(core.Config{
				Name:             "m7",
				Policy:           pf.MustCompile("m7", "block all\npass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)"),
				Transport:        tr,
				Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
				InstallEntries:   true,
				ResponseCacheTTL: time.Hour,
				Shards:           shards,
			})
			ctl.AddDatapath(dp)
			var gid atomic.Uint32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct per-goroutine flows: parallelism without
				// duplicate-suppression collisions.
				g := gid.Add(1)
				const working = 128
				i := 0
				for pb.Next() {
					ev := openflow.PacketIn{
						SwitchID: 1,
						BufferID: openflow.BufferNone,
						InPort:   1,
						Tuple: flow.Ten{
							EthType: flow.EthTypeIPv4,
							SrcIP:   srcIP, DstIP: dstIP,
							Proto:   netaddr.ProtoTCP,
							SrcPort: netaddr.Port(g),
							DstPort: netaddr.Port(1 + i%working),
						},
					}
					ctl.HandleEvent(ev)
					i++
				}
			})
			b.StopTimer()
			if ctl.Counters.Get("flows_allowed") == 0 {
				b.Fatal("no flows decided")
			}
		})
	}
}

// m8NoDaemonTransport fails every query, forcing the controller onto the
// answer-on-behalf path (§4 incremental deployment) with zero transport
// allocations, so the benchmark isolates the controller's own cost.
type m8NoDaemonTransport struct{}

func (m8NoDaemonTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	return nil, 0, core.ErrNoDaemon
}

// m8Policy is the M7 policy: a deny-all opener and one pass rule with two
// dictionary predicates, the paper's canonical shape.
const m8Policy = "block all\npass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)"

// m8Event builds the canonical single-flow packet-in for the allocation
// benchmarks and budget guards.
func m8Event(srcIP, dstIP netaddr.IP) openflow.PacketIn {
	return openflow.PacketIn{
		SwitchID: 1,
		BufferID: openflow.BufferNone,
		InPort:   1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   srcIP, DstIP: dstIP,
			Proto:   netaddr.ProtoTCP,
			SrcPort: 40000, DstPort: 80,
		},
	}
}

// BenchmarkM8_AllocProfile measures per-event allocations on the two
// steady-state decision paths the ≤ 2 allocs/op budget covers (see
// TestAllocBudget and README "Allocation budget"):
//
//   - cache-hit: warm response cache, the M7 fast path.
//   - miss-local-answer: cache disabled, no daemons anywhere, both ends
//     answered from the controller's answer-on-behalf table — the full
//     query fan-out and pooled response-view cycle every event.
//
// CI's bench-compare job runs this with -benchmem on base and head and
// fails on allocs/op regressions.
func BenchmarkM8_AllocProfile(b *testing.B) {
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")

	b.Run("cache-hit", func(b *testing.B) {
		tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
			srcIP: {"name": "skype"},
			dstIP: {"name": "skype"},
		}}
		ctl := core.New(core.Config{
			Name:             "m8",
			Policy:           pf.MustCompile("m8", m8Policy),
			Transport:        tr,
			Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
			InstallEntries:   true,
			ResponseCacheTTL: time.Hour,
		})
		ctl.AddDatapath(&m7Datapath{id: 1})
		ev := m8Event(srcIP, dstIP)
		ctl.HandleEvent(ev) // warm the cache and the pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
	})

	b.Run("miss-local-answer", func(b *testing.B) {
		ctl := core.New(core.Config{
			Name:           "m8",
			Policy:         pf.MustCompile("m8", m8Policy),
			Transport:      m8NoDaemonTransport{},
			Topology:       &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
			InstallEntries: true,
			// No response cache: every event runs the full two-ended query
			// fan-out and builds (and releases) both response views.
		})
		ctl.AddDatapath(&m7Datapath{id: 1})
		ctl.AnswerForHost(srcIP, wire.KV{Key: wire.KeyName, Value: "skype"})
		ctl.AnswerForHost(dstIP, wire.KV{Key: wire.KeyName, Value: "skype"})
		ev := m8Event(srcIP, dstIP)
		ctl.HandleEvent(ev) // warm the pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
		b.StopTimer()
		if ctl.Counters.Get("flows_allowed") == 0 {
			b.Fatal("no flows decided")
		}
		if ctl.Counters.Get("answered_on_behalf") == 0 {
			b.Fatal("answer-on-behalf path not exercised")
		}
	})
}

// m9Host builds one daemon'd end-host serving skype on a loopback socket.
func m9Host(b *testing.B, name, ip string) (netaddr.IP, string, flow.Five) {
	b.Helper()
	hostIP := netaddr.MustParseIP(ip)
	h := hostinfo.New(name, hostIP, 1)
	alice := h.AddUser("alice", "users")
	proc := h.Exec(alice, workload.Skype.Exe())
	five, err := h.Connect(proc.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.4.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		b.Fatal(err)
	}
	d := daemon.New(h)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return hostIP, addr.String(), five
}

// BenchmarkM9_QueryPlane measures the asynchronous query plane end to end
// over real loopback sockets (engine → pooled pipelined transport →
// daemon.Server):
//
//   - hit: the controller's steady state with the async transport wired in —
//     warm response cache, so the query plane is never touched. This variant
//     carries the same ≤ 2 allocs/op budget as M8 (CI gates it): adopting
//     the async pipeline must not cost the cache-hit path anything.
//   - miss: one full wire round trip per op through the pipelined
//     connection — the per-flow price of a cold cache.
//   - coalesced: every goroutine asks for the same (host, flow, keys)
//     concurrently; the engine shares wire exchanges between them
//     (wire_queries_per_op reported; well under 1 means coalescing works).
//   - daemon-down: the host's port answers nothing — after the first
//     refused dial the negative cache absorbs every subsequent miss.
func BenchmarkM9_QueryPlane(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		srcIP, srcAddr, five := m9Host(b, "pc", "10.4.0.1")
		dstIP, dstAddr, _ := m9Host(b, "server", "10.4.0.2")
		pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{
			srcIP: srcAddr, dstIP: dstAddr,
		}})
		b.Cleanup(func() { pool.Close() })
		eng := query.NewEngine(query.Config{Lower: pool})
		b.Cleanup(eng.Close)
		ctl := core.New(core.Config{
			Name: "m9",
			// The rule must read an endpoint key: a header-only policy
			// would be decided by the pre-pass and never warm the response
			// cache this variant measures.
			Policy:           pf.MustCompile("m9", "block all\npass from any to any with eq(@src[name], skype)"),
			Transport:        eng,
			Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
			InstallEntries:   true,
			AsyncQueries:     true,
			ResponseCacheTTL: time.Hour,
		})
		ctl.AddDatapath(&m7Datapath{id: 1})
		ev := openflow.PacketIn{
			SwitchID: 1, BufferID: openflow.BufferNone, InPort: 1,
			Tuple: flow.Ten{
				EthType: flow.EthTypeIPv4,
				SrcIP:   five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
				SrcPort: five.SrcPort, DstPort: five.DstPort,
			},
		}
		ctl.HandleEvent(ev) // decide once: warm cache and pools
		deadline := time.Now().Add(5 * time.Second)
		for ctl.Counters.Get("flows_allowed") == 0 {
			if time.Now().After(deadline) {
				b.Fatal("warm-up decision never completed")
			}
			time.Sleep(time.Millisecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
		b.StopTimer()
		if ctl.Counters.Get("response_cache_hits") < int64(b.N) {
			b.Fatal("cache-hit path not exercised")
		}
	})

	b.Run("miss", func(b *testing.B) {
		srcIP, srcAddr, five := m9Host(b, "pc", "10.4.1.1")
		pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{srcIP: srcAddr}})
		b.Cleanup(func() { pool.Close() })
		eng := query.NewEngine(query.Config{Lower: pool})
		b.Cleanup(eng.Close)
		q := wire.Query{Flow: five, Keys: []string{wire.KeyUserID, wire.KeyName}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, _, err := eng.Query(srcIP, q)
			if err != nil {
				b.Fatal(err)
			}
			if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
				b.Fatal("wrong response")
			}
		}
	})

	b.Run("coalesced", func(b *testing.B) {
		srcIP, srcAddr, five := m9Host(b, "pc", "10.4.2.1")
		pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{srcIP: srcAddr}})
		b.Cleanup(func() { pool.Close() })
		eng := query.NewEngine(query.Config{Lower: pool})
		b.Cleanup(eng.Close)
		q := wire.Query{Flow: five, Keys: []string{wire.KeyName}}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := eng.Query(srcIP, q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(pool.Counters.Get("pool_queries_sent"))/float64(b.N), "wire_queries_per_op")
	})

	b.Run("daemon-down", func(b *testing.B) {
		// A host that resolves to a dead port: one refused dial, then the
		// negative cache answers for the whole TTL.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		deadAddr := l.Addr().String()
		l.Close()
		downIP := netaddr.MustParseIP("10.4.3.1")
		pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{downIP: deadAddr}})
		b.Cleanup(func() { pool.Close() })
		eng := query.NewEngine(query.Config{Lower: pool, NegativeTTL: time.Hour, Retries: -1})
		b.Cleanup(eng.Close)
		q := wire.Query{Flow: flow.Five{
			SrcIP: downIP, DstIP: netaddr.MustParseIP("10.4.3.2"),
			Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 631,
		}}
		eng.Query(downIP, q) // pay the one refused dial up front
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Query(downIP, q); err == nil {
				b.Fatal("dead host answered")
			}
		}
		b.StopTimer()
		if eng.Counters.Get("engine_negcache_hits") < int64(b.N) {
			b.Fatal("negative cache not exercised")
		}
	})
}

// m10Policy builds a mixed synthetic policy for the compiler benchmarks:
// a deny-all opener, `rules` port-scoped key-dependent rules (none of
// which header-match the benchmark flows), one pure header rule, and one
// key-dependent rule the key flow hits. Header-only flows aim at the
// header rule's port; key flows at the key rule's.
func m10Policy(rules int) *pf.Policy {
	var sb []byte
	sb = append(sb, "block all\n"...)
	for i := 0; i < rules; i++ {
		sb = append(sb, ("pass from any to any port " + itoa(20000+i%5000) + " with eq(@src[name], app" + itoa(i) + ")\n")...)
	}
	sb = append(sb, "pass from 10.0.0.0/8 to any port 80 keep state\n"...)
	sb = append(sb, "pass from any to any port 443 with eq(@src[name], web) with eq(@dst[name], httpd)\n"...)
	return pf.MustCompile("m10", string(sb))
}

// BenchmarkM10_PolicyEval measures PF+=2 decision cost across the two
// execution engines (tree-walking interpreter vs. compiled flat program),
// policy sizes, and the two flow classes the compiler distinguishes:
//
//   - keys: the flow hits the key-dependent rule and evaluation reads
//     both responses — the classic decision.
//   - headeronly: the flow is decidable from the header alone; the
//     compiled engine additionally runs the Prepass the controller uses
//     to skip the query plane entirely.
//
// CI's bench-compare gates the compiled variants at ≤ 2 allocs/op (they
// measure 0): the steady-state compiled path must never regress into
// allocating.
func BenchmarkM10_PolicyEval(b *testing.B) {
	for _, size := range []struct {
		name  string
		rules int
	}{{"small", 8}, {"large", 500}} {
		p := m10Policy(size.rules)
		prog := p.Program()

		keyFlow := flow.Five{
			SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
			Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 443,
		}
		src := wire.NewResponse(keyFlow)
		src.Add(wire.KeyName, "web")
		dst := wire.NewResponse(keyFlow)
		dst.Add(wire.KeyName, "httpd")
		keyIn := pf.Input{Flow: keyFlow, Src: src, Dst: dst}

		headerFlow := keyFlow
		headerFlow.DstPort = 80
		headerIn := pf.Input{Flow: headerFlow}

		b.Run("interpreted/"+size.name+"/keys", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := p.EvaluateInterpreted(keyIn); d.Action != pf.Pass {
					b.Fatal("wrong decision")
				}
			}
		})
		b.Run("compiled/"+size.name+"/keys", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := p.EvaluateCompiled(keyIn); d.Action != pf.Pass {
					b.Fatal("wrong decision")
				}
			}
		})
		b.Run("interpreted/"+size.name+"/headeronly", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := p.EvaluateInterpreted(headerIn); d.Action != pf.Pass {
					b.Fatal("wrong decision")
				}
			}
		})
		b.Run("compiled/"+size.name+"/headeronly", func(b *testing.B) {
			// The controller's actual header-only path: Prepass decides and
			// yields the hints, no full evaluation at all.
			srcKeys := make([]string, 0, 16)
			dstKeys := make([]string, 0, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, ok, s2, d2 := prog.Prepass(headerFlow, srcKeys[:0], dstKeys[:0])
				if !ok || d.Action != pf.Pass {
					b.Fatal("flow should be header-only decidable")
				}
				srcKeys, dstKeys = s2, d2
			}
		})
	}
}

// BenchmarkM11_Revocation measures the revocation plane (PR 5):
//
//   - no-subscribers: the M8 cache-hit path with Revocation enabled but no
//     updates arriving — the proof that adopting the plane costs the
//     packet-in hot path nothing. Carries the same ≤ 2 allocs/op budget as
//     M8/M9-hit in the CI bench-compare gate (measures 0).
//   - teardown: one full revocation cycle per op — decide+install a flow,
//     then a flow-scoped endpoint-state update tears it down (cache drop,
//     index unlink, path deletes). 1/ns-op is flows-torn-down/sec.
//   - fanin-64: one key-scoped update revokes 64 dependent flows through
//     the fact-dependency index; flows_torn_per_op reports the fan-in.
func BenchmarkM11_Revocation(b *testing.B) {
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	mkCtl := func(shards int) *core.Controller {
		tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
			srcIP: {"name": "skype"},
			dstIP: {"name": "skype"},
		}}
		ctl := core.New(core.Config{
			Name:             "m11",
			Policy:           pf.MustCompile("m11", m8Policy),
			Transport:        tr,
			Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
			InstallEntries:   true,
			ResponseCacheTTL: time.Hour,
			Revocation:       true,
			Shards:           shards,
		})
		ctl.AddDatapath(&m7Datapath{id: 1})
		return ctl
	}
	flowAt := func(sp int) flow.Five {
		return flow.Five{SrcIP: srcIP, DstIP: dstIP, Proto: netaddr.ProtoTCP,
			SrcPort: netaddr.Port(sp), DstPort: 80}
	}
	eventAt := func(sp int) openflow.PacketIn {
		ev := m8Event(srcIP, dstIP)
		ev.Tuple.SrcPort = netaddr.Port(sp)
		return ev
	}

	b.Run("no-subscribers", func(b *testing.B) {
		ctl := mkCtl(0)
		ev := m8Event(srcIP, dstIP)
		ctl.HandleEvent(ev) // warm cache, pools, and the one registration
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
		b.StopTimer()
		if ctl.Counters.Get("response_cache_hits") < int64(b.N) {
			b.Fatal("cache-hit path not exercised")
		}
	})

	b.Run("teardown", func(b *testing.B) {
		ctl := mkCtl(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := 1 + i%30000
			ctl.HandleEvent(eventAt(sp))
			ctl.HandleUpdate(srcIP, wire.Update{Flow: flowAt(sp), Key: "name", Serial: uint64(i + 1)})
		}
		b.StopTimer()
		if got := ctl.Counters.Get("revocations_flows"); got < int64(b.N) {
			b.Fatalf("revocations_flows = %d, want >= %d", got, b.N)
		}
	})

	b.Run("fanin-64", func(b *testing.B) {
		const fan = 64
		ctl := mkCtl(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < fan; j++ {
				ctl.HandleEvent(eventAt(1 + j))
			}
			ctl.HandleUpdate(srcIP, wire.Update{Key: "name", Serial: uint64(i + 1)})
		}
		b.StopTimer()
		b.ReportMetric(float64(ctl.Counters.Get("revocations_flows"))/float64(b.N), "flows_torn_per_op")
		if got := ctl.Counters.Get("revocations_flows"); got < int64(b.N)*fan {
			b.Fatalf("revocations_flows = %d, want >= %d", got, int64(b.N)*fan)
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// m12Policy reads endpoint state from the destination only, so the
// field-use trace masks SrcIP/SrcPort away and every client of the
// service lands in one traffic equivalence class.
const m12Policy = "block all\npass from any to any port 5060 with eq(@dst[name], skype)"

// m12Event is one member of the M12 class: fixed service tuple, varying
// source port.
func m12Event(srcIP, dstIP netaddr.IP, sp int) openflow.PacketIn {
	return openflow.PacketIn{
		SwitchID: 1, BufferID: openflow.BufferNone, InPort: 1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   srcIP, DstIP: dstIP, Proto: netaddr.ProtoTCP,
			SrcPort: netaddr.Port(10000 + sp), DstPort: 5060,
		},
	}
}

// BenchmarkM12_Megaflow measures the megaflow wildcard cache (PR 6):
//
//   - member-hit: steady-state decision cost for flows inside an
//     already-widened class, cycling 512 distinct source ports — one
//     class-table probe instead of query+eval, and no exact-cache line
//     per member. CI enforces ≤ 2 allocs/op on this path.
//   - exact-baseline: the same 512-tuple workload with the megaflow
//     layer off — every distinct tuple pays one full decision, then
//     exact-cache hits; the per-tuple cache footprint this PR removes.
//   - widen-install: the founder path — traced evaluation plus class
//     insert and wide registration — against the plain decision above.
func BenchmarkM12_Megaflow(b *testing.B) {
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	mkCtl := func(mega bool) *core.Controller {
		tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
			srcIP: {"name": "skype"},
			dstIP: {"name": "skype"},
		}}
		ctl := core.New(core.Config{
			Name:             "m12",
			Policy:           pf.MustCompile("m12", m12Policy),
			Transport:        tr,
			Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
			InstallEntries:   true,
			ResponseCacheTTL: time.Hour,
			Revocation:       true,
			Megaflow:         mega,
		})
		ctl.AddDatapath(&m7Datapath{id: 1})
		return ctl
	}
	eventAt := func(sp int) openflow.PacketIn { return m12Event(srcIP, dstIP, sp) }
	const class = 512

	b.Run("member-hit", func(b *testing.B) {
		ctl := mkCtl(true)
		for i := 0; i < class; i++ { // founder + one warm lap
			ctl.HandleEvent(eventAt(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(eventAt(i % class))
		}
		b.StopTimer()
		if _, hits, _, _ := ctl.MegaflowStats(); hits < int64(b.N) {
			b.Fatalf("megaflow hits = %d, want >= %d", hits, b.N)
		}
	})

	b.Run("exact-baseline", func(b *testing.B) {
		ctl := mkCtl(false)
		for i := 0; i < class; i++ {
			ctl.HandleEvent(eventAt(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(eventAt(i % class))
		}
	})

	b.Run("widen-install", func(b *testing.B) {
		ctl := mkCtl(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(eventAt(i % class))
			if i%class == class-1 {
				b.StopTimer()
				ctl.SetPolicy(pf.MustCompile("m12", m12Policy)) // flush: next lap re-widens
				b.StartTimer()
			}
		}
	})
}

// m13Host is m9Host returning the daemon too, so credential-plane
// benchmarks can install and rotate credentials on it.
func m13Host(b *testing.B, name, ip string) (netaddr.IP, string, flow.Five, *daemon.Daemon) {
	b.Helper()
	hostIP := netaddr.MustParseIP(ip)
	h := hostinfo.New(name, hostIP, 1)
	alice := h.AddUser("alice", "users")
	proc := h.Exec(alice, workload.Skype.Exe())
	five, err := h.Connect(proc.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.4.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		b.Fatal(err)
	}
	d := daemon.New(h)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return hostIP, addr.String(), five, d
}

// BenchmarkM13_CredentialedSession measures the credential plane (PR 8):
//
//   - hello-verify: the once-per-session price — parse the credential
//     blob, check the authority signature, check the hello transcript
//     signature. This is ~two Ed25519 verifications and is paid exactly
//     once per daemon session (and once per rotation re-hello), never per
//     query.
//   - steady: the controller's steady state over a fully credentialed
//     query plane (RequireCredentials, both daemons verified) with a warm
//     response cache. The credential plane must cost this path nothing:
//     CI enforces the same ≤ 2 allocs/op budget as the insecure M9 hit
//     variant, and the subtest asserts no re-verification happened during
//     the timed loop.
func BenchmarkM13_CredentialedSession(b *testing.B) {
	authPub, authPriv := sig.MustGenerateKey()

	b.Run("hello-verify", func(b *testing.B) {
		host := netaddr.MustParseIP("10.4.2.1")
		ic, err := cred.Issue(authPriv, host, nil, time.Now().Add(time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		blob := ic.Encode()
		helloSig := ic.SignHello(host, 7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := cred.Parse(blob)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Verify(authPub, time.Now()); err != nil {
				b.Fatal(err)
			}
			if err := c.VerifyHello(host, 7, helloSig); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("steady", func(b *testing.B) {
		srcIP, srcAddr, five, srcD := m13Host(b, "pc", "10.4.0.1")
		dstIP, dstAddr, _, dstD := m13Host(b, "server", "10.4.0.2")
		issue := func(d *daemon.Daemon, host netaddr.IP) {
			ic, err := cred.Issue(authPriv, host, nil, time.Now().Add(time.Hour))
			if err != nil {
				b.Fatal(err)
			}
			d.SetCredential(ic)
		}
		issue(srcD, srcIP)
		issue(dstD, dstIP)
		pool := query.NewPool(query.PoolConfig{
			Resolver:     query.StaticResolver{srcIP: srcAddr, dstIP: dstAddr},
			AuthorityKey: authPub,
		})
		b.Cleanup(func() { pool.Close() })
		eng := query.NewEngine(query.Config{Lower: pool})
		b.Cleanup(eng.Close)
		ctl := core.New(core.Config{
			Name:               "m13",
			Policy:             pf.MustCompile("m13", "block all\npass from any to any with eq(@src[name], skype)"),
			Transport:          eng,
			Topology:           &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
			InstallEntries:     true,
			AsyncQueries:       true,
			ResponseCacheTTL:   time.Hour,
			RequireCredentials: true,
		})
		ctl.AddDatapath(&m7Datapath{id: 1})
		ev := openflow.PacketIn{
			SwitchID: 1, BufferID: openflow.BufferNone, InPort: 1,
			Tuple: flow.Ten{
				EthType: flow.EthTypeIPv4,
				SrcIP:   five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
				SrcPort: five.SrcPort, DstPort: five.DstPort,
			},
		}
		ctl.HandleEvent(ev) // decide once: hellos verify, cache warms
		deadline := time.Now().Add(5 * time.Second)
		for ctl.Counters.Get("flows_allowed") == 0 || pool.Counters.Get("pool_cred_verified") < 2 {
			if time.Now().After(deadline) {
				b.Fatal("credentialed warm-up never completed")
			}
			time.Sleep(time.Millisecond)
		}
		verifiedBefore := pool.Counters.Get("pool_cred_verified")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
		b.StopTimer()
		if ctl.Counters.Get("response_cache_hits") < int64(b.N) {
			b.Fatal("cache-hit path not exercised")
		}
		if got := pool.Counters.Get("pool_cred_verified"); got != verifiedBefore {
			b.Fatalf("re-verified during steady state (%d -> %d): crypto leaked onto the hot path", verifiedBefore, got)
		}
		if ctl.Counters.Get("cred_unauthorized") != 0 {
			b.Fatal("credentialed session rejected during steady state")
		}
	})
}

// m14Replica is one in-process controller replica for the cluster
// benchmarks: the M8 steady-state configuration (warmable response cache,
// entries installed at a sink datapath).
func m14Replica(name string) *core.Controller {
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	ctl := core.New(core.Config{
		Name:   name,
		Policy: pf.MustCompile(name, m8Policy),
		Transport: &m7Transport{responses: map[netaddr.IP]map[string]string{
			srcIP: {"name": "skype"},
			dstIP: {"name": "skype"},
		}},
		Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
	})
	ctl.AddDatapath(&m7Datapath{id: 1})
	return ctl
}

// m14Event is m8Event with a chosen source port (the ownership hash keys
// on the 5-tuple, so ports steer flows between replicas).
func m14Event(port netaddr.Port) openflow.PacketIn {
	ev := m8Event(netaddr.MustParseIP("10.0.0.1"), netaddr.MustParseIP("10.0.0.2"))
	ev.Tuple.SrcPort = port
	return ev
}

// BenchmarkM14_Cluster prices the consistent-hash ownership layer
// (internal/cluster) in front of the controller:
//
//   - owned-hit: the M8 cache-hit fast path through the Router for a flow
//     this replica owns — one ring lookup of added work. Carries the same
//     ≤ 2 allocs/op budget as M8/M9-hit (CI gates it): single-replica
//     deployments must not pay for the cluster layer.
//   - forwarded: a non-owned flow handed to its owner over an in-process
//     link and decided there — the per-event price of getting ownership
//     wrong at the ingress switch (wire cost excluded; see the query-plane
//     benchmarks for socket round-trip pricing).
//   - rebalance: a full ring rebuild — membership swap plus the takeover
//     sweep scanning a 256-flow switch table for orphaned entries.
//   - aggregate/replicas=N: total decision throughput of N in-process
//     replicas each decides its owned slice of a warmed flow population.
//     On a multi-core runner this is the scale-out headline (4 replicas
//     ≥ 3x one); on a single-core runner it reports the ownership layer's
//     overhead instead, since the replicas share the core.
func BenchmarkM14_Cluster(b *testing.B) {
	b.Run("owned-hit", func(b *testing.B) {
		rt := cluster.NewRouter(m14Replica("m14"), cluster.Member{ID: "r1"}, cluster.Options{})
		ev := m14Event(40000) // single-member ring: every flow is owned
		rt.HandleEvent(ev)    // warm the cache and the pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.HandleEvent(ev)
		}
		b.StopTimer()
		if rt.Counters.Get("cluster_events_owned") < int64(b.N) {
			b.Fatal("events did not take the owned path")
		}
	})

	b.Run("forwarded", func(b *testing.B) {
		var ra, rb *cluster.Router
		ra = cluster.NewRouter(m14Replica("m14a"), cluster.Member{ID: "r1"}, cluster.Options{
			Dial: func(m cluster.Member) (cluster.Link, error) { return cluster.Loopback{Peer: rb}, nil },
		})
		rb = cluster.NewRouter(m14Replica("m14b"), cluster.Member{ID: "r2"}, cluster.Options{
			Dial: func(m cluster.Member) (cluster.Link, error) { return cluster.Loopback{Peer: ra}, nil },
		})
		members := []cluster.Member{{ID: "r1"}, {ID: "r2"}}
		if err := ra.SetMembers(members); err != nil {
			b.Fatal(err)
		}
		if err := rb.SetMembers(members); err != nil {
			b.Fatal(err)
		}
		ev := m14Event(40000)
		for p := netaddr.Port(40000); ra.Owns(ev.Tuple.Five()); p++ {
			ev = m14Event(p)
		}
		ra.HandleEvent(ev) // warm the owner's cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ra.HandleEvent(ev)
		}
		b.StopTimer()
		if rb.Counters.Get("cluster_events_received") < int64(b.N) {
			b.Fatal("events were not forwarded to the owner")
		}
	})

	b.Run("rebalance", func(b *testing.B) {
		ctl := m14Replica("m14")
		sw := openflow.NewSwitch(1, "s1", 0)
		ctl.AddDatapath(sw)
		for p := netaddr.Port(0); p < 256; p++ {
			ctl.HandleEvent(m14Event(40000 + p))
		}
		var rt *cluster.Router
		rt = cluster.NewRouter(ctl, cluster.Member{ID: "r1"}, cluster.Options{
			Dial: func(m cluster.Member) (cluster.Link, error) { return cluster.Loopback{Peer: rt}, nil },
		})
		one := []cluster.Member{{ID: "r1"}}
		two := []cluster.Member{{ID: "r1"}, {ID: "r2"}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				rt.SetMembers(two)
			} else {
				rt.SetMembers(one)
			}
		}
	})

	for _, replicas := range []int{1, 2, 4} {
		b.Run("aggregate/replicas="+itoa(replicas), func(b *testing.B) {
			members := make([]cluster.Member, replicas)
			for i := range members {
				members[i] = cluster.Member{ID: "r" + itoa(i)}
			}
			rts := make([]*cluster.Router, replicas)
			for i := range rts {
				i := i
				rts[i] = cluster.NewRouter(m14Replica("m14-"+itoa(i)), members[i], cluster.Options{
					// Peers are never consulted: each goroutine drives only
					// events its replica owns.
					Dial: func(m cluster.Member) (cluster.Link, error) { return cluster.Loopback{Peer: rts[i]}, nil },
				})
			}
			for _, rt := range rts {
				if err := rt.SetMembers(members); err != nil {
					b.Fatal(err)
				}
			}
			// Per-replica owned, warmed working sets.
			const working = 64
			events := make([][]openflow.PacketIn, replicas)
			for p := netaddr.Port(40000); ; p++ {
				ev := m14Event(p)
				for i, rt := range rts {
					if rt.Owns(ev.Tuple.Five()) && len(events[i]) < working {
						rt.HandleEvent(ev)
						events[i] = append(events[i], ev)
					}
				}
				done := 0
				for i := range events {
					if len(events[i]) == working {
						done++
					}
				}
				if done == replicas {
					break
				}
			}
			var gid atomic.Uint32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := int(gid.Add(1)) % replicas
				rt, evs := rts[r], events[r]
				i := 0
				for pb.Next() {
					rt.HandleEvent(evs[i%working])
					i++
				}
			})
			b.StopTimer()
			var fwd int64
			for _, rt := range rts {
				fwd += rt.Counters.Get("cluster_events_forwarded")
			}
			if fwd != 0 {
				b.Fatalf("%d events left their replica (owned sets wrong)", fwd)
			}
		})
	}
}

// m15Controller builds the M8 cache-hit controller with an optional
// flight recorder attached, the configuration the M15 benchmark prices.
func m15Controller(rec *trace.Recorder) (*core.Controller, openflow.PacketIn) {
	srcIP := netaddr.MustParseIP("10.0.0.1")
	dstIP := netaddr.MustParseIP("10.0.0.2")
	tr := &m7Transport{responses: map[netaddr.IP]map[string]string{
		srcIP: {"name": "skype"},
		dstIP: {"name": "skype"},
	}}
	ctl := core.New(core.Config{
		Name:             "m15",
		Policy:           pf.MustCompile("m15", m8Policy),
		Transport:        tr,
		Topology:         &m7Topo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Trace:            rec,
	})
	ctl.AddDatapath(&m7Datapath{id: 1})
	ev := m8Event(srcIP, dstIP)
	ctl.HandleEvent(ev) // warm the cache and the pools
	return ctl, ev
}

// BenchmarkM15_Trace prices the flight recorder (PR 10) on the M8
// cache-hit path at its three operating points:
//
//   - off: no recorder configured. This is the default, and CI's
//     bench-compare job gates it at the same ≤ 2 allocs/op budget as M8 —
//     tracing must cost nothing when nobody asked for it.
//   - sampled: recorder on with 1-in-1024 retention, the recommended
//     production setting. Every decision pays the buffer checkout and the
//     per-stage event stores; 1 in 1024 pays the retention copy.
//   - always: SampleEvery 1, every decision retained — the ceiling.
func BenchmarkM15_Trace(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		ctl, ev := m15Controller(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		rec := trace.New(trace.Config{SampleEvery: 1024})
		ctl, ev := m15Controller(rec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
	})
	b.Run("always", func(b *testing.B) {
		rec := trace.New(trace.Config{SampleEvery: 1})
		ctl, ev := m15Controller(rec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctl.HandleEvent(ev)
		}
		b.StopTimer()
		if rec.Counters.Get("trace_sampled") == 0 {
			b.Fatal("no traces retained on the always path")
		}
	})
}
