package query

import (
	"net"
	"sync"
	"testing"
	"time"

	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// updateSink collects pushed updates with their host attribution.
type updateSink struct {
	mu  sync.Mutex
	got []struct {
		host netaddr.IP
		u    wire.Update
	}
}

func (s *updateSink) fn(host netaddr.IP, u wire.Update) {
	s.mu.Lock()
	s.got = append(s.got, struct {
		host netaddr.IP
		u    wire.Update
	}{host, u})
	s.mu.Unlock()
}

func (s *updateSink) snapshot() []wire.Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.Update, len(s.got))
	for i, g := range s.got {
		out[i] = g.u
	}
	return out
}

func (s *updateSink) waitLen(t *testing.T, n int) []wire.Update {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := s.snapshot()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d updates, have %+v", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolReceivesDaemonPushes runs the real stack: pool with an update
// handler against daemon.Server; a host mutation mid-connection arrives as
// an update, attributed to the right host, without disturbing the query
// FIFO.
func TestPoolReceivesDaemonPushes(t *testing.T) {
	hostIP := netaddr.MustParseIP("10.8.0.1")
	h := hostinfo.New("pc", hostIP, 1)
	alice := h.AddUser("alice", "users")
	proc := h.Exec(alice, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype"})
	d := daemon.New(h)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	five, err := h.Connect(proc.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.8.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: addr.String()}})
	defer pool.Close()
	sink := &updateSink{}
	pool.SetUpdateHandler(sink.fn)

	// The first query dials and subscribes; the hello arrives on the reader.
	resp, _, err := pool.Query(hostIP, wire.Query{Flow: five, Keys: []string{wire.KeyUserID}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
		t.Fatalf("userID = %q", v)
	}
	got := sink.waitLen(t, 1)
	if !got[0].Hello {
		t.Fatalf("first update = %+v, want hello", got[0])
	}

	// Mid-connection endpoint-state change: process exits.
	h.Kill(proc.PID)
	got = sink.waitLen(t, 2)
	u := got[1]
	if u.Flow != five {
		t.Errorf("update flow = %v, want %v", u.Flow, five)
	}
	if u.Serial != got[0].Serial+1 {
		t.Errorf("serial = %d after hello %d: not continuous", u.Serial, got[0].Serial)
	}
	sink.mu.Lock()
	attributed := sink.got[1].host
	sink.mu.Unlock()
	if attributed != hostIP {
		t.Errorf("update attributed to %v, want %v", attributed, hostIP)
	}

	// The connection still answers queries after pushes.
	if _, _, err := pool.Query(hostIP, wire.Query{Flow: five}); err != nil {
		t.Fatal(err)
	}
	if n := pool.Counters.Get("pool_update_resyncs"); n != 0 {
		t.Errorf("continuous stream produced %d resyncs", n)
	}
}

// frameScript is a hand-rolled daemon endpoint that speaks raw frames, for
// forcing protocol situations (serial gaps) a healthy daemon never
// produces.
type frameScript struct {
	t    *testing.T
	l    net.Listener
	addr string
}

func newFrameScript(t *testing.T) *frameScript {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return &frameScript{t: t, l: l, addr: l.Addr().String()}
}

// TestSerialGapForcesResync: a daemon whose update stream skips serials —
// lost pushes — must surface a synthetic resync to the handler before the
// out-of-sequence update.
func TestSerialGapForcesResync(t *testing.T) {
	hostIP := netaddr.MustParseIP("10.8.1.1")
	fs := newFrameScript(t)
	five := flow.Five{
		SrcIP: hostIP, DstIP: netaddr.MustParseIP("10.8.1.2"),
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80,
	}

	serverDone := make(chan error, 1)
	go func() {
		conn, err := fs.l.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		// Expect the subscribe, ack with hello at serial 5.
		f, err := wire.ReadFrame(conn)
		if err != nil || f.Type != wire.FrameSubscribe {
			serverDone <- err
			return
		}
		wire.WriteUpdate(conn, wire.Update{Hello: true, Serial: 5})
		// Answer the query that opened the connection.
		if _, err := wire.ReadFrame(conn); err != nil {
			serverDone <- err
			return
		}
		wire.WriteResponse(conn, wire.NewResponse(five))
		// Continuous update, then a gap: 6, then 9.
		wire.WriteUpdate(conn, wire.Update{Flow: five, Key: "userID", Serial: 6})
		wire.WriteUpdate(conn, wire.Update{Flow: five, Key: "userID", Serial: 9})
		serverDone <- nil
	}()

	pool := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: fs.addr}})
	defer pool.Close()
	sink := &updateSink{}
	pool.SetUpdateHandler(sink.fn)

	if _, _, err := pool.Query(hostIP, wire.Query{Flow: five}); err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
	// hello(5), update(6), resync, update(9).
	got := sink.waitLen(t, 4)
	if !got[0].Hello || got[0].Serial != 5 {
		t.Errorf("got[0] = %+v, want hello serial 5", got[0])
	}
	if got[1].Serial != 6 || got[1].Key != "userID" {
		t.Errorf("got[1] = %+v, want continuous update 6", got[1])
	}
	if !got[2].Resync() {
		t.Errorf("got[2] = %+v, want synthetic resync before the gap", got[2])
	}
	if got[3].Serial != 9 {
		t.Errorf("got[3] = %+v, want the real update 9 after the resync", got[3])
	}
	if n := pool.Counters.Get("pool_update_resyncs"); n != 1 {
		t.Errorf("pool_update_resyncs = %d, want 1", n)
	}
}

// TestReconnectHelloMismatchForcesResync: updates pushed while the
// connection was down are detected by the reconnect hello's serial and
// surfaced as a resync.
func TestReconnectHelloMismatchForcesResync(t *testing.T) {
	hostIP := netaddr.MustParseIP("10.8.2.1")
	fs := newFrameScript(t)
	five := flow.Five{
		SrcIP: hostIP, DstIP: netaddr.MustParseIP("10.8.2.2"),
		Proto: netaddr.ProtoTCP, SrcPort: 40001, DstPort: 80,
	}

	serve := func(helloSerial uint64) chan error {
		done := make(chan error, 1)
		go func() {
			conn, err := fs.l.Accept()
			if err != nil {
				done <- err
				return
			}
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			f, err := wire.ReadFrame(conn)
			if err != nil || f.Type != wire.FrameSubscribe {
				conn.Close()
				done <- err
				return
			}
			wire.WriteUpdate(conn, wire.Update{Hello: true, Serial: helloSerial})
			if _, err := wire.ReadFrame(conn); err != nil {
				conn.Close()
				done <- err
				return
			}
			wire.WriteResponse(conn, wire.NewResponse(five))
			// Give the reader a moment to drain the frames before the close
			// tears the connection down.
			time.Sleep(50 * time.Millisecond)
			conn.Close()
			done <- nil
		}()
		return done
	}

	pool := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: fs.addr}})
	defer pool.Close()
	sink := &updateSink{}
	pool.SetUpdateHandler(sink.fn)

	first := serve(3)
	if _, _, err := pool.Query(hostIP, wire.Query{Flow: five}); err != nil {
		t.Fatal(err)
	}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	sink.waitLen(t, 1)

	// Second connection: the daemon pushed to serial 7 while we were away.
	second := serve(7)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := pool.Query(hostIP, wire.Query{Flow: five}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reconnect never succeeded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	// hello(3), then on reconnect: resync + hello(7).
	got := sink.waitLen(t, 3)
	if !got[1].Resync() {
		t.Errorf("got[1] = %+v, want resync for the missed window", got[1])
	}
	if !got[2].Hello || got[2].Serial != 7 {
		t.Errorf("got[2] = %+v, want the reconnect hello", got[2])
	}
}
