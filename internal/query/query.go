// Package query is the controller's production query plane: it owns all
// controller→daemon communication that the paper's flow-setup pipeline
// (§2 step 3, §3.2) performs on TCP port 783.
//
// The package is two layers:
//
//   - Pool is the wire transport: one multiplexed, pipelined TCP connection
//     per end-host speaking the wire.Frame protocol against daemon.Server,
//     with request/response correlation, reconnect-with-backoff, and
//     per-request deadlines (pool.go).
//
//   - Engine sits above any core.QueryTransport-shaped lower layer (the
//     Pool for real deployments, netsim.Transport for the §5–§6
//     experiments) and adds the behavior a controller serving millions of
//     users needs on the availability-critical path: in-flight coalescing
//     so concurrent cache misses for the same (host, flow, keys) share one
//     wire query, bounded retries, a per-host circuit breaker, a TTL'd
//     negative cache so daemon-less or down hosts stop costing a connect
//     timeout per miss, and an asynchronous completion API the controller
//     uses to suspend a decision instead of parking a goroutine on the
//     round trip (engine.go).
//
// Responses delivered by the engine are owned by the engine's caller set
// as a group: a coalesced query hands the same *wire.Response to every
// waiter, so delivered responses are read-only borrows — callers must not
// mutate or pool-release them. (The controller already honors this: daemon
// responses are either stored in the shard response cache or dropped to
// the garbage collector, never returned to the pf view pool.)
package query

import (
	"errors"
	"fmt"

	"identxx/internal/netaddr"
)

// ErrDeadline is wrapped into per-request timeout failures: the request
// was written (or queued) but no response arrived in time. It reports
// Timeout() true so callers classifying with net.Error-style checks (the
// controller's query_timeouts accounting) see it as a timeout.
var ErrDeadline = deadlineError{}

type deadlineError struct{}

func (deadlineError) Error() string { return "query: deadline exceeded" }

// Timeout marks the error as a timeout for net.Error-shaped classifiers.
func (deadlineError) Timeout() bool { return true }

// ErrDial is wrapped into every connection-establishment failure. The
// engine's negative cache keys off it: a host we cannot even connect to is
// down or daemon-less at host granularity, unlike a per-request timeout on
// a live connection, which says nothing about the next request.
var ErrDial = errors.New("query: dial failed")

// ErrBreakerOpen is returned without touching the wire while a host's
// circuit breaker is open.
var ErrBreakerOpen = errors.New("query: circuit breaker open")

// ErrClosed is returned by operations on a closed Pool or Engine.
var ErrClosed = errors.New("query: closed")

// Resolver maps an end-host IP to the TCP address of its ident++ daemon.
// ok=false means the deployment knows the host runs no daemon (the §4
// incremental case): the query fails with core.ErrNoDaemon without a dial.
type Resolver interface {
	Resolve(host netaddr.IP) (addr string, ok bool)
}

// StaticResolver resolves from a fixed host→address table; hosts absent
// from the table are daemon-less.
type StaticResolver map[netaddr.IP]string

// Resolve implements Resolver.
func (r StaticResolver) Resolve(host netaddr.IP) (string, bool) {
	addr, ok := r[host]
	return addr, ok
}

// PortResolver resolves every host to host:Port — the production shape,
// where each end-host serves its own daemon on the well-known port (§2's
// TCP port 783, daemon.Port).
type PortResolver struct {
	Port int
}

// Resolve implements Resolver.
func (r PortResolver) Resolve(host netaddr.IP) (string, bool) {
	return fmt.Sprintf("%s:%d", host, r.Port), true
}

// FixedResolver resolves every host to one address — the single-daemon
// shape CLI tools use when the operator names the endpoint explicitly.
type FixedResolver string

// Resolve implements Resolver.
func (r FixedResolver) Resolve(netaddr.IP) (string, bool) {
	return string(r), true
}
