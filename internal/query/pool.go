package query

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/netaddr"
	"identxx/internal/sig"
	"identxx/internal/wire"
)

// PoolConfig parameterizes a Pool; the zero value is usable.
type PoolConfig struct {
	// Resolver maps host IPs to daemon addresses. Required.
	Resolver Resolver

	// DialTimeout bounds connection establishment (default 1s). A request
	// deadline closer than this wins.
	DialTimeout time.Duration

	// RequestTimeout is the per-request deadline Query applies when the
	// caller does not supply one via Exchange (default 2s).
	RequestTimeout time.Duration

	// MaxBackoff caps the reconnect backoff after repeated dial failures
	// (default 2s; backoff starts at 50ms and doubles).
	MaxBackoff time.Duration

	// Counters receives transport counters; a private set when nil.
	Counters *metrics.Counter

	// AuthorityKey, when set, switches the pool into credentialed mode
	// (cred.go): every per-host session must present a credential issued
	// by this authority in its hello and prove possession via the signed
	// hello transcript. Responses and updates from sessions that never
	// verified — or whose credential expired — are rejected as
	// core.IsNoDaemon failures. Zero value = insecure mode (netsim,
	// experiments): every session is trusted, as before.
	AuthorityKey sig.PublicKey
}

const (
	defaultDialTimeout    = 1 * time.Second
	defaultRequestTimeout = 2 * time.Second
	defaultMaxBackoff     = 2 * time.Second
	initialBackoff        = 50 * time.Millisecond

	// readGrace pads the reader's deadline horizon past the last request's
	// deadline, so per-request timeouts abandon their slot (keeping the
	// connection and its pipeline intact) before the reader declares the
	// whole connection hung and tears it down.
	readGrace = 500 * time.Millisecond
)

// Pool is the pooled TCP transport of the query plane: one connection per
// end-host, multiplexed and pipelined — any number of in-flight requests
// share the connection, correlated to responses by FIFO order, which is
// exactly the order daemon.Server answers one connection's queries in.
// Each response's flow tuple is checked against its request's as a desync
// guard. Pool implements core.QueryTransport.
type Pool struct {
	resolver    Resolver
	dialTimeout time.Duration
	reqTimeout  time.Duration
	maxBackoff  time.Duration
	authority   sig.PublicKey // non-zero: credentialed mode (cred.go)

	Counters *metrics.Counter
	// Conns gauges currently established connections.
	Conns metrics.Gauge

	// onUpdate receives daemon-pushed endpoint-state updates (revocation
	// plane). When set, every dialed connection subscribes; the reader
	// demuxes update frames out of the FIFO correlation path and delivers
	// them here with the daemon's host identity. See SetUpdateHandler.
	updMu    sync.RWMutex
	onUpdate func(host netaddr.IP, u wire.Update)

	mu     sync.Mutex
	hosts  map[netaddr.IP]*hostConn
	closed bool
}

// NewPool creates a pooled transport.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Resolver == nil {
		panic("query: PoolConfig.Resolver is required")
	}
	p := &Pool{
		resolver:    cfg.Resolver,
		dialTimeout: cfg.DialTimeout,
		reqTimeout:  cfg.RequestTimeout,
		maxBackoff:  cfg.MaxBackoff,
		authority:   cfg.AuthorityKey,
		Counters:    cfg.Counters,
		hosts:       make(map[netaddr.IP]*hostConn),
	}
	if p.dialTimeout <= 0 {
		p.dialTimeout = defaultDialTimeout
	}
	if p.reqTimeout <= 0 {
		p.reqTimeout = defaultRequestTimeout
	}
	if p.maxBackoff <= 0 {
		p.maxBackoff = defaultMaxBackoff
	}
	if p.Counters == nil {
		p.Counters = metrics.NewCounter()
	}
	return p
}

// SetUpdateHandler installs the sink for daemon-pushed endpoint-state
// updates. Connections dialed while a handler is installed subscribe to
// their daemon's update stream; per-host serial numbers are checked on the
// reader, and a gap — missed updates, a daemon restart, a reconnection
// that skipped over pushes — is surfaced to the handler as a synthetic
// resync update (zero flow, empty key) before the real one, so the caller
// can invalidate everything it believes about the host. The handler runs
// on the connection's reader goroutine: it must not block for long and
// must not call back into the Pool.
//
// Install the handler before the first query; already-established
// connections do not retroactively subscribe (they will on reconnect).
func (p *Pool) SetUpdateHandler(fn func(host netaddr.IP, u wire.Update)) {
	p.updMu.Lock()
	p.onUpdate = fn
	p.updMu.Unlock()
}

func (p *Pool) updateFn() func(host netaddr.IP, u wire.Update) {
	p.updMu.RLock()
	fn := p.onUpdate
	p.updMu.RUnlock()
	return fn
}

// Query implements core.QueryTransport with the pool's default deadline.
func (p *Pool) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	return p.Exchange(host, q, time.Now().Add(p.reqTimeout))
}

// Exchange performs one query/response round trip against host's daemon,
// failing with ErrDeadline once deadline passes. The reported duration is
// the caller-observed round trip (wall time).
func (p *Pool) Exchange(host netaddr.IP, q wire.Query, deadline time.Time) (*wire.Response, time.Duration, error) {
	start := time.Now()
	hc, err := p.host(host)
	if err != nil {
		return nil, time.Since(start), err
	}
	resp, err := hc.exchange(q, deadline)
	return resp, time.Since(start), err
}

// host returns (creating if needed) the connection manager for host.
func (p *Pool) host(host netaddr.IP) (*hostConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if hc, ok := p.hosts[host]; ok {
		return hc, nil
	}
	addr, ok := p.resolver.Resolve(host)
	if !ok {
		// Resolver-level knowledge: this host runs no daemon. Not cached
		// in the pool (the resolver is the cache); cheap either way.
		return nil, fmt.Errorf("query: no daemon address for %s: %w", host, core.ErrNoDaemon)
	}
	hc := &hostConn{pool: p, host: host, addr: addr}
	p.hosts[host] = hc
	return hc, nil
}

// Close tears down every connection and fails all in-flight requests.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	hosts := make([]*hostConn, 0, len(p.hosts))
	for _, hc := range p.hosts {
		hosts = append(hosts, hc)
	}
	p.mu.Unlock()
	for _, hc := range hosts {
		hc.mu.Lock()
		gen := hc.gen
		hc.mu.Unlock()
		hc.teardown(gen, ErrClosed)
	}
	return nil
}

// call is one in-flight request's slot in a connection's pipeline. Its
// lifecycle is governed by state: the reader CASes waiting→delivered and
// sends on done; an abandoning waiter (deadline) CASes waiting→abandoned
// and leaves, after which the reader recycles the slot when its (late)
// response or the teardown reaches it — correlation survives timeouts.
type call struct {
	flow  flow.Five
	state atomic.Int32
	done  chan callResult
}

type callResult struct {
	resp *wire.Response
	err  error
}

const (
	callWaiting int32 = iota
	callDelivered
	callAbandoned
)

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan callResult, 1)}
}}

func acquireCall(f flow.Five) *call {
	c := callPool.Get().(*call)
	c.flow = f
	c.state.Store(callWaiting)
	return c
}

func releaseCall(c *call) {
	// Drain a deposited-but-unreceived result so the slot is clean.
	select {
	case <-c.done:
	default:
	}
	c.flow = flow.Five{}
	callPool.Put(c)
}

// hostConn owns the single pipelined connection to one daemon.
type hostConn struct {
	pool *Pool
	host netaddr.IP
	addr string

	// sendMu serializes enqueue+write pairs so the pending queue's order
	// is exactly the wire order — the correlation invariant.
	sendMu sync.Mutex

	mu       sync.Mutex
	conn     net.Conn
	gen      uint64 // bumped by teardown; stale readers/teardowns no-op
	pending  []*call
	horizon  time.Time // read deadline currently set on conn
	dialErr  error     // last dial failure, served during backoff
	nextDial time.Time
	backoff  time.Duration

	// Update-stream serial tracking, across connections: lastSerial is the
	// serial of the last update (or hello) seen from this daemon, ever.
	// The reader compares each arrival against it; any discontinuity —
	// including a hello after reconnect whose serial says pushes happened
	// while we were away — forces a resync.
	lastSerial uint64
	haveSerial bool

	// cred is the session's credential-verification state (cred.go);
	// meaningful only in credentialed pools.
	cred credState
}

// exchange writes one query and waits for its response or the deadline.
func (hc *hostConn) exchange(q wire.Query, deadline time.Time) (*wire.Response, error) {
	c, early, err := hc.send(q, deadline)
	if err != nil {
		return nil, err
	}
	if early != nil {
		return early, nil
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case r := <-c.done:
		releaseCall(c)
		return r.resp, r.err
	case <-timer.C:
		if c.state.CompareAndSwap(callWaiting, callAbandoned) {
			// The reader recycles the slot when it reaches it; the
			// connection and the requests pipelined behind ours live on.
			hc.pool.Counters.Add("pool_timeouts", 1)
			return nil, fmt.Errorf("query: %s: %w", hc.addr, ErrDeadline)
		}
		// Delivery won the race: the result is already deposited.
		r := <-c.done
		releaseCall(c)
		return r.resp, r.err
	}
}

// send dials if needed, enqueues the call, and writes the frame. On a
// write failure the call is already resolved here: early carries a
// response the reader managed to deliver before the teardown (the write
// "failed" after the frame reached the daemon), err the failure otherwise.
func (hc *hostConn) send(q wire.Query, deadline time.Time) (c *call, early *wire.Response, err error) {
	hc.sendMu.Lock()
	defer hc.sendMu.Unlock()
	hc.mu.Lock()
	if hc.conn == nil {
		if err := hc.dialLocked(deadline); err != nil {
			hc.mu.Unlock()
			return nil, nil, err
		}
	}
	conn, gen := hc.conn, hc.gen
	c = acquireCall(q.Flow)
	hc.pending = append(hc.pending, c)
	if h := deadline.Add(readGrace); h.After(hc.horizon) {
		hc.horizon = h
		conn.SetReadDeadline(h)
	}
	hc.mu.Unlock()

	conn.SetWriteDeadline(deadline)
	if err := wire.WriteQuery(conn, q); err != nil {
		err = fmt.Errorf("query: write %s: %w", hc.addr, err)
		// teardown fails every pending call, ours included; collect our
		// own result from the channel so the slot is recycled exactly
		// once. The reader may have beaten the teardown to our slot with
		// a real response (write deadline hit after the frame was
		// kernel-buffered and answered) — that is a success, not an error.
		hc.teardown(gen, err)
		r := <-c.done
		releaseCall(c)
		if r.err == nil {
			return nil, r.resp, nil
		}
		return nil, nil, r.err
	}
	hc.pool.Counters.Add("pool_queries_sent", 1)
	return c, nil, nil
}

// dialLocked establishes the connection (hc.mu held). During backoff after
// a failure it fails fast with the cached error instead of paying the dial
// latency again.
func (hc *hostConn) dialLocked(deadline time.Time) error {
	// A closed pool must not grow fresh connections: Close tears down
	// conns after setting closed under p.mu, and this check runs with
	// hc.mu held for the whole dial, so a dial that slips past it is
	// always visible to (and closed by) Close's teardown.
	hc.pool.mu.Lock()
	closed := hc.pool.closed
	hc.pool.mu.Unlock()
	if closed {
		return ErrClosed
	}
	now := time.Now()
	if hc.dialErr != nil && now.Before(hc.nextDial) {
		hc.pool.Counters.Add("pool_dial_backoff_fastfails", 1)
		return hc.dialErr
	}
	timeout := hc.pool.dialTimeout
	if until := time.Until(deadline); until < timeout {
		timeout = until
	}
	if timeout <= 0 {
		return fmt.Errorf("query: %s: %w", hc.addr, ErrDeadline)
	}
	conn, err := net.DialTimeout("tcp", hc.addr, timeout)
	if err != nil {
		if hc.backoff == 0 {
			hc.backoff = initialBackoff
		} else if hc.backoff < hc.pool.maxBackoff {
			hc.backoff *= 2
			if hc.backoff > hc.pool.maxBackoff {
				hc.backoff = hc.pool.maxBackoff
			}
		}
		hc.nextDial = now.Add(hc.backoff)
		hc.dialErr = classifyDial(hc.addr, err)
		hc.pool.Counters.Add("pool_dial_errors", 1)
		return hc.dialErr
	}
	hc.backoff = 0
	hc.dialErr = nil
	hc.conn = conn
	hc.horizon = time.Time{}
	hc.pool.Counters.Add("pool_dials", 1)
	hc.pool.Conns.Inc()
	go hc.readLoop(conn, hc.gen)
	if hc.pool.updateFn() != nil || hc.pool.credentialed() {
		// Opt this connection into the daemon's update stream before any
		// query goes out (the caller holds sendMu, so nothing interleaves).
		// The daemon acknowledges with a hello update the reader demuxes;
		// a subscribe the daemon cannot take breaks the connection and
		// surfaces as an ordinary exchange failure. Credentialed pools
		// always subscribe even with no update handler: the hello is where
		// the session's credential arrives.
		conn.SetWriteDeadline(deadline)
		if err := wire.WriteSubscribe(conn); err != nil {
			gen := hc.gen
			hc.mu.Unlock()
			err = fmt.Errorf("query: subscribe %s: %w", hc.addr, err)
			hc.teardown(gen, err)
			hc.mu.Lock()
			return err
		}
		hc.pool.Counters.Add("pool_subscribes", 1)
	}
	return nil
}

// classifyDial separates "no daemon there" from "host unreachable". A
// connection refused means the host is up and not serving port 783 — the
// §4 daemon-less case, so the error matches core.ErrNoDaemon and the
// controller may answer on the host's behalf. Anything else (dial timeout,
// no route) is a reachability failure that must NOT be impersonated; it
// stays a plain ErrDial so the policy sees a no-info verdict.
func classifyDial(addr string, err error) error {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return fmt.Errorf("query: dial %s: %w: %w", addr, err, core.ErrNoDaemon)
	}
	// Both wrapped: ErrDial drives the negative cache, and the original
	// error keeps its net.Error shape so a dial timeout still counts as a
	// timeout (query_timeouts), not a generic query_error.
	return fmt.Errorf("query: dial %s: %w: %w", addr, err, ErrDial)
}

// readLoop is the connection's single reader: it pops the pending queue in
// FIFO order, matching daemon.Server's in-order responses. Update frames —
// which the daemon pushes unsolicited, so they carry no pipeline slot —
// are demuxed out of the correlation path and handed to the pool's update
// handler before the loop returns to the stream.
func (hc *hostConn) readLoop(conn net.Conn, gen uint64) {
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			hc.teardown(gen, fmt.Errorf("query: read %s: %w", hc.addr, err))
			return
		}
		if frame.Type == wire.FrameUpdate {
			if !hc.handleUpdate(frame) {
				hc.teardown(gen, fmt.Errorf("query: %s: malformed update", hc.addr))
				return
			}
			continue
		}
		resp, err := wire.DecodeResponse(frame.Payload, frame.SrcIP, frame.DstIP)
		if frame.Type != wire.FrameResponse || err != nil {
			hc.teardown(gen, fmt.Errorf("query: read %s: unexpected frame %#02x: %v", hc.addr, frame.Type, err))
			return
		}
		hc.mu.Lock()
		if hc.gen != gen {
			hc.mu.Unlock()
			return // torn down concurrently; teardown owned the pending queue
		}
		if len(hc.pending) == 0 {
			hc.mu.Unlock()
			hc.teardown(gen, fmt.Errorf("query: %s: unsolicited response", hc.addr))
			return
		}
		c := hc.pending[0]
		hc.pending = hc.pending[1:]
		if len(hc.pending) == 0 {
			// Nothing outstanding: an idle connection must not trip the
			// reader's hung-connection deadline.
			hc.horizon = time.Time{}
			conn.SetReadDeadline(time.Time{})
		}
		hc.mu.Unlock()
		if resp.Flow != c.flow {
			// Correlation broken — a daemon answering out of order or a
			// protocol bug. Fail everything rather than misattribute.
			deliver(c, callResult{err: fmt.Errorf("query: %s: response flow %v does not match query %v", hc.addr, resp.Flow, c.flow)})
			hc.teardown(gen, fmt.Errorf("query: %s: pipeline desync", hc.addr))
			return
		}
		if hc.pool.credentialed() {
			// Session-level authorization: daemon.Server processes one
			// connection's frames in order, so the hello (and its verify)
			// always lands before the first response. The connection
			// itself stays up — an unauthorized daemon is still a daemon,
			// just one whose word counts for nothing.
			if err := hc.authorizeResponse(resp); err != nil {
				deliver(c, callResult{err: err})
				continue
			}
		}
		deliver(c, callResult{resp: resp})
	}
}

// handleUpdate decodes and delivers one pushed update, enforcing serial
// continuity. It returns false on a decode failure (the connection is no
// longer trustworthy). Serial discontinuities do not kill the connection:
// they deliver a synthetic resync first — the receiver invalidates its
// whole view of the host — and then adopt the new serial, because the
// stream itself is intact, only our knowledge lapsed.
func (hc *hostConn) handleUpdate(frame wire.Frame) bool {
	u, err := wire.DecodeUpdateFrame(frame)
	if err != nil {
		hc.pool.Counters.Add("pool_update_decode_errors", 1)
		return false
	}
	fn := hc.pool.updateFn()

	// Credentialed pools authenticate the stream before believing it:
	// hellos carry the session's credential (verified here, once), and
	// everything from an unverified session is suppressed — including the
	// hello itself, so an unauthenticated daemon is never marked
	// push-capable, and synthetic resyncs, so a forger cannot flush the
	// controller's answer-on-behalf state for a host it doesn't own. The
	// one resync an untrusted peer *can* cause is credResync: the moment a
	// previously verified session turns untrusted, everything admitted on
	// its word is torn down — our decision, not the daemon's.
	credResync, suppress := false, false
	if hc.pool.credentialed() {
		if u.Hello {
			credResync, suppress = hc.verifyHello(u)
		} else {
			suppress = hc.filterUpdate(u)
		}
	}

	hc.mu.Lock()
	resync := false
	if u.Hello {
		// A hello re-baselines the stream. After a reconnect, a serial
		// other than the one we left off at means updates were pushed (or
		// the daemon restarted) while we were away.
		resync = hc.haveSerial && u.Serial != hc.lastSerial
	} else {
		resync = !hc.haveSerial || u.Serial != hc.lastSerial+1
	}
	hc.lastSerial, hc.haveSerial = u.Serial, true
	hc.mu.Unlock()
	if fn == nil {
		return true
	}
	if (resync && !suppress) || credResync {
		hc.pool.Counters.Add("pool_update_resyncs", 1)
		fn(hc.host, wire.Update{Serial: u.Serial})
	}
	if suppress {
		return true
	}
	hc.pool.Counters.Add("pool_updates", 1)
	fn(hc.host, u)
	return true
}

// deliver completes a call under the state protocol; abandoned slots are
// recycled here, on the reader, exactly once.
func deliver(c *call, r callResult) {
	if c.state.CompareAndSwap(callWaiting, callDelivered) {
		c.done <- r
		return
	}
	releaseCall(c)
}

// teardown closes the connection, fails every pending call, and arms the
// redial backoff. gen guards against a stale teardown (from a reader or
// writer of a previous connection) killing a fresh connection.
func (hc *hostConn) teardown(gen uint64, err error) {
	hc.mu.Lock()
	if hc.gen != gen {
		hc.mu.Unlock()
		return
	}
	hc.gen++
	conn := hc.conn
	hc.conn = nil
	failed := hc.pending
	hc.pending = nil
	hc.horizon = time.Time{}
	// Credential trust is per-session: the next connection's hello must
	// re-verify. Last-known status (present/err/expiry) survives for the
	// admin plane; no resync is emitted — if the reconnect hello verifies
	// at an unchanged serial, continuity was never broken.
	hc.cred.verified = false
	hc.stopLapseLocked()
	// The next exchange redials immediately — losing an established
	// connection says nothing about whether a fresh dial will succeed.
	// The dial backoff arms only when that dial itself fails.
	hc.dialErr = nil
	hc.mu.Unlock()
	if conn != nil {
		conn.Close()
		hc.pool.Conns.Dec()
	}
	if len(failed) > 0 {
		hc.pool.Counters.Add("pool_requests_failed", int64(len(failed)))
	}
	for _, c := range failed {
		deliver(c, callResult{err: err})
	}
}
