package query

import (
	"time"

	"identxx/internal/netaddr"
)

// credSource is the optional credential face of a Lower: transports that
// authenticate sessions (*Pool in credentialed mode) implement it. The
// Engine passes these views through unchanged — retries, coalescing, and
// the breaker sit above authorization, not instead of it.
type credSource interface {
	Credentialed() bool
	HostAuthorized(host netaddr.IP) bool
	CredentialStatus(host netaddr.IP) (CredStatus, bool)
	CredentialExpiry(host netaddr.IP) (time.Time, bool)
	CredentialSessions() []HostCredStatus
}

// Credentialed reports whether the underlying transport enforces
// credentials.
func (e *Engine) Credentialed() bool {
	cs, ok := e.lower.(credSource)
	return ok && cs.Credentialed()
}

// HostAuthorized reports whether facts from host may influence verdicts.
// Lowers without a credential face authorize everyone (insecure mode) —
// a controller that *requires* credentials must sit on a credentialed
// transport, which core.Config.RequireCredentials enforces at startup.
func (e *Engine) HostAuthorized(host netaddr.IP) bool {
	cs, ok := e.lower.(credSource)
	if !ok {
		return true
	}
	return cs.HostAuthorized(host)
}

// CredentialStatus returns host's credential status from the underlying
// transport; ok is false without a credentialed transport or before any
// contact with host.
func (e *Engine) CredentialStatus(host netaddr.IP) (CredStatus, bool) {
	cs, ok := e.lower.(credSource)
	if !ok {
		return CredStatus{}, false
	}
	return cs.CredentialStatus(host)
}

// CredentialExpiry returns the expiry of host's verified credential; ok
// is false without one.
func (e *Engine) CredentialExpiry(host netaddr.IP) (time.Time, bool) {
	cs, ok := e.lower.(credSource)
	if !ok {
		return time.Time{}, false
	}
	return cs.CredentialExpiry(host)
}

// CredentialSessions lists every known host's credential status (nil
// without a credentialed transport).
func (e *Engine) CredentialSessions() []HostCredStatus {
	cs, ok := e.lower.(credSource)
	if !ok {
		return nil
	}
	return cs.CredentialSessions()
}
