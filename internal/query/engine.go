package query

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/netaddr"
	"identxx/internal/trace"
	"identxx/internal/wire"
)

// Lower is the wire layer underneath an Engine — core.QueryTransport's
// shape, satisfied by *Pool (real TCP), netsim.Transport (the §5–§6
// simulator), and the baselines.
type Lower interface {
	Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error)
}

// deadlineLower is the optional deadline-aware face of a Lower; *Pool
// implements it, so engine deadlines reach the socket. Lowers without it
// (the simulator: instantaneous) are called plain.
type deadlineLower interface {
	Exchange(host netaddr.IP, q wire.Query, deadline time.Time) (*wire.Response, time.Duration, error)
}

// updateSource is the optional push face of a Lower: transports that can
// deliver daemon-pushed endpoint-state updates (*Pool over TCP,
// netsim.Transport in the simulator) implement it. Lowers without it are
// the honest-but-legacy case — the controller falls back to TTL leases.
type updateSource interface {
	SetUpdateHandler(fn func(host netaddr.IP, u wire.Update))
}

// Config parameterizes an Engine. The zero value of every field except
// Lower is a sensible default.
type Config struct {
	// Lower executes the actual wire exchange. Required.
	Lower Lower

	// RequestTimeout bounds each attempt (default 2s).
	RequestTimeout time.Duration

	// Retries is how many extra attempts follow a retryable transport
	// failure (default 1; negative disables retries). ErrNoDaemon and
	// breaker rejections are never retried.
	Retries int

	// NegativeTTL is how long a host-unreachable verdict (no daemon, or
	// dial failure) is served from the negative cache without touching the
	// wire (default 5s; negative disables the cache).
	NegativeTTL time.Duration

	// BreakerThreshold opens a host's circuit breaker after this many
	// consecutive failures (default 4; negative disables the breaker).
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker rejects queries before
	// letting a probe through (default 1s).
	BreakerCooldown time.Duration

	// Workers bounds the asynchronous completion pool (default
	// 8×GOMAXPROCS, capped at 64). Workers start lazily on the first
	// QueryAsync, so a blocking-only Engine spawns no goroutines.
	Workers int

	// Clock supplies time for the negative cache and breaker; defaults to
	// time.Now. The simulator passes its virtual clock.
	Clock func() time.Time

	// Counters receives engine counters; a private set when nil.
	Counters *metrics.Counter
}

// Engine is the query-plane brain. It implements core.QueryTransport
// (blocking Query) and core.AsyncQueryTransport (QueryAsync), multiplexing
// both over the same coalescing, caching, and breaker state.
type Engine struct {
	lower     Lower
	dlLower   deadlineLower // nil when lower is not deadline-aware
	timeout   time.Duration
	retries   int
	negTTL    time.Duration
	brkN      int
	brkCool   time.Duration
	workerCap int
	clock     func() time.Time

	Counters *metrics.Counter
	// InFlight gauges queries between admission and delivery, coalesced
	// waiters excluded (they ride an already-counted flight).
	InFlight metrics.Gauge

	hot struct {
		sent, coalesced, negHits, retriesC        *atomic.Int64
		breakerOpens, breakerFastfails, timeoutsC *atomic.Int64
	}

	sfMu sync.Mutex
	sf   map[sfKey]*flight

	hostMu sync.Mutex
	hosts  map[netaddr.IP]*hostState

	startWorkers sync.Once
	workerWG     sync.WaitGroup
	jobs         chan *flight
	closed       atomic.Bool
}

// sfKey identifies coalesceable work: same host, same flow, same key
// hints — one wire query serves every concurrent asker.
type sfKey struct {
	host netaddr.IP
	flow flow.Five
	keys string
}

// completion receives a delivered result; see the package comment for the
// borrow contract on resp.
type completion func(resp *wire.Response, rtt time.Duration, err error)

// qcb is one async waiter on a flight: the completion plus the waiter's
// flight-recorder buffer (nil for untraced decisions) and its endpoint
// flag. Keeping the trace context per-waiter means coalesced decisions
// each get the shared exchange's outcome recorded into their own trace.
type qcb struct {
	fn completion
	tb *trace.Buffer
	ep uint16
}

// flight is one in-flight wire query and the waiters coalesced onto it.
type flight struct {
	key      sfKey
	q        wire.Query
	resp     *wire.Response
	rtt      time.Duration
	err      error
	attempts int32         // transport attempts consumed (set by run before deliver)
	cbs      []qcb         // async waiters; invoked after delivery
	done     chan struct{} // closed at delivery; blocking waiters select on it
}

// hostState is the per-host availability record: negative cache, breaker,
// and the RTT histogram.
type hostState struct {
	mu       sync.Mutex
	negErr   error     // verdict served while the negative cache is live
	negUntil time.Time // negative-cache expiry
	fails    int       // consecutive failures feeding the breaker
	openTill time.Time // breaker-open horizon; zero when closed
	rtt      *metrics.Histogram
}

// NewEngine creates an engine over cfg.Lower.
func NewEngine(cfg Config) *Engine {
	if cfg.Lower == nil {
		panic("query: Config.Lower is required")
	}
	e := &Engine{
		lower:   cfg.Lower,
		timeout: cfg.RequestTimeout,
		retries: cfg.Retries,
		negTTL:  cfg.NegativeTTL,
		brkN:    cfg.BreakerThreshold,
		brkCool: cfg.BreakerCooldown,
		clock:   cfg.Clock,
		sf:      make(map[sfKey]*flight),
		hosts:   make(map[netaddr.IP]*hostState),
	}
	e.dlLower, _ = cfg.Lower.(deadlineLower)
	if e.timeout <= 0 {
		e.timeout = defaultRequestTimeout
	}
	if e.retries < 0 {
		e.retries = 0
	} else if cfg.Retries == 0 {
		e.retries = 1
	}
	if e.negTTL < 0 {
		e.negTTL = 0
	} else if cfg.NegativeTTL == 0 {
		e.negTTL = 5 * time.Second
	}
	if e.brkN < 0 {
		e.brkN = 0
	} else if cfg.BreakerThreshold == 0 {
		e.brkN = 4
	}
	if e.brkCool <= 0 {
		e.brkCool = time.Second
	}
	e.workerCap = cfg.Workers
	if e.workerCap <= 0 {
		e.workerCap = 8 * runtime.GOMAXPROCS(0)
		if e.workerCap > 64 {
			e.workerCap = 64
		}
	}
	if e.clock == nil {
		e.clock = time.Now
	}
	e.Counters = cfg.Counters
	if e.Counters == nil {
		e.Counters = metrics.NewCounter()
	}
	e.hot.sent = e.Counters.Cell("engine_queries_sent")
	e.hot.coalesced = e.Counters.Cell("engine_coalesce_hits")
	e.hot.negHits = e.Counters.Cell("engine_negcache_hits")
	e.hot.retriesC = e.Counters.Cell("engine_retries")
	e.hot.breakerOpens = e.Counters.Cell("engine_breaker_opens")
	e.hot.breakerFastfails = e.Counters.Cell("engine_breaker_fastfails")
	e.hot.timeoutsC = e.Counters.Cell("engine_timeouts")
	return e
}

// SetUpdateHandler threads the revocation plane's update sink through to
// the lower transport. It returns false when the lower cannot push (no
// subscription support): the caller then knows every host is lease-only.
// The handler runs on transport goroutines (the pool's connection readers,
// the simulator's event loop); it must be quick and must not re-enter the
// engine.
//
// The engine interposes on the handler: a hello from a host is proof its
// daemon is back (the subscription handshake completed), so the host's
// negative-cache entry and breaker are cleared on the spot. Without
// this, a recovered daemon kept fast-failing queries for the remainder
// of the negative TTL — the fastFail gate never re-dialed, so the cache
// could not learn of the recovery it was built to paper over.
func (e *Engine) SetUpdateHandler(fn func(host netaddr.IP, u wire.Update)) bool {
	us, ok := e.lower.(updateSource)
	if !ok {
		return false
	}
	if fn == nil {
		us.SetUpdateHandler(nil)
		return true
	}
	us.SetUpdateHandler(func(host netaddr.IP, u wire.Update) {
		if u.Hello {
			e.hostRecovered(host)
		}
		fn(host, u)
	})
	return true
}

// hostRecovered clears a host's failure state after its daemon proved
// itself alive over the push channel: the negative cache stops serving
// the stale dial error, the breaker closes, and the next query goes to
// the wire immediately instead of after the TTL.
func (e *Engine) hostRecovered(host netaddr.IP) {
	hs := e.hostState(host)
	hs.mu.Lock()
	cleared := hs.negErr != nil || !hs.openTill.IsZero() || hs.fails > 0
	hs.negErr = nil
	hs.negUntil = time.Time{}
	hs.fails = 0
	hs.openTill = time.Time{}
	hs.mu.Unlock()
	if cleared {
		e.Counters.Add("engine_host_recoveries", 1)
	}
}

// Query implements core.QueryTransport: it blocks until the result is
// available, joining an identical in-flight query instead of issuing a
// duplicate.
func (e *Engine) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	if e.closed.Load() {
		return nil, 0, ErrClosed
	}
	if err := e.fastFail(host); err != nil {
		return nil, 0, err
	}
	f, leader := e.join(host, q, qcb{})
	if leader {
		e.run(f)
	} else {
		e.hot.coalesced.Add(1)
		<-f.done
	}
	return f.resp, f.rtt, f.err
}

// QueryAsync implements core.AsyncQueryTransport: done is invoked exactly
// once — inline for fast-path rejections (negative cache, breaker,
// closed), from a completion worker otherwise, possibly sharing one wire
// exchange with other callers. done must not block for long; the
// controller's continuation (evaluate + install) is the intended scale.
func (e *Engine) QueryAsync(host netaddr.IP, q wire.Query, done func(*wire.Response, time.Duration, error)) {
	e.QueryAsyncTraced(host, q, nil, 0, done)
}

// QueryAsyncTraced is QueryAsync with a flight-recorder buffer: the engine
// records the query's enqueue (annotated with the gate that admitted or
// rejected it — coalesced onto an in-flight exchange, negative-cache hit,
// breaker fast-fail) and its completion (RTT, transport attempts, error)
// into tb. A nil tb records nothing and behaves exactly like QueryAsync.
func (e *Engine) QueryAsyncTraced(host netaddr.IP, q wire.Query, tb *trace.Buffer, ep uint16, done func(*wire.Response, time.Duration, error)) {
	if e.closed.Load() {
		tb.Rec(trace.StageQueryEnqueue, ep|trace.FlagErr, 0)
		done(nil, 0, ErrClosed)
		return
	}
	if err := e.fastFail(host); err != nil {
		if tb != nil {
			flags := ep
			if errors.Is(err, ErrBreakerOpen) {
				flags |= trace.FlagBreaker
			} else {
				flags |= trace.FlagNegCache
			}
			tb.Rec(trace.StageQueryEnqueue, flags, 0)
			tb.Rec(trace.StageQueryDone, flags|trace.FlagErr, 0)
		}
		done(nil, 0, err)
		return
	}
	f, leader := e.join(host, q, qcb{fn: done, tb: tb, ep: ep})
	if !leader {
		e.hot.coalesced.Add(1)
		return
	}
	e.startWorkers.Do(e.spawnWorkers)
	defer func() {
		if recover() != nil {
			// Close raced the enqueue and the jobs channel is gone; fail
			// the flight so no coalesced waiter hangs.
			e.deliver(f, nil, 0, ErrClosed)
		}
	}()
	e.jobs <- f
}

func (e *Engine) spawnWorkers() {
	e.jobs = make(chan *flight, 4*e.workerCap)
	e.workerWG.Add(e.workerCap)
	for i := 0; i < e.workerCap; i++ {
		go func() {
			defer e.workerWG.Done()
			for f := range e.jobs {
				e.run(f)
			}
		}()
	}
}

// Close rejects future queries, then blocks until the completion workers
// have drained every already-enqueued async flight (their waiters still
// get real results) and exited. Because Close returns only after the last
// flight has run, closing the Engine before its lower layer is safe — the
// identctl/defer idiom of eng.Close() then pool.Close() never yanks the
// transport out from under a running flight. Close must not be called
// from a completion callback (it would wait on its own worker).
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	// Ensure jobs exists so the close/drain below have a channel to work
	// with even if no QueryAsync ever ran.
	e.startWorkers.Do(e.spawnWorkers)
	close(e.jobs)
	e.workerWG.Wait()
}

// fastFail consults the negative cache and the breaker; a non-nil return
// is delivered without touching the wire.
func (e *Engine) fastFail(host netaddr.IP) error {
	hs := e.hostState(host)
	now := e.clock()
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.negErr != nil && now.Before(hs.negUntil) {
		e.hot.negHits.Add(1)
		return hs.negErr
	}
	if !hs.openTill.IsZero() && now.Before(hs.openTill) {
		e.hot.breakerFastfails.Add(1)
		return fmt.Errorf("query: %s: %w", host, ErrBreakerOpen)
	}
	return nil
}

func (e *Engine) hostState(host netaddr.IP) *hostState {
	e.hostMu.Lock()
	defer e.hostMu.Unlock()
	hs, ok := e.hosts[host]
	if !ok {
		hs = &hostState{rtt: metrics.NewHistogram(0)}
		e.hosts[host] = hs
	}
	return hs
}

// HostRTT returns the RTT histogram for host (created on first use), for
// operators and the experiment harness.
func (e *Engine) HostRTT(host netaddr.IP) *metrics.Histogram {
	return e.hostState(host).rtt
}

// HostStatus is one host's availability snapshot: query volume and RTT
// from its histogram, the breaker and negative-cache state, and the
// consecutive-failure count feeding the breaker.
type HostStatus struct {
	Host        netaddr.IP
	Queries     int64 // RTT observations (delivered exchanges)
	RTTMean     time.Duration
	RTTP99      time.Duration
	Fails       int  // consecutive failures toward the breaker threshold
	BreakerOpen bool // breaker currently rejecting queries
	NegCached   bool // negative cache currently serving a failure verdict
}

// HostStats snapshots every host the engine has ever queried, sorted by
// address — the per-host drill-down behind `identctl admin hosts` and the
// telemetry export. Quantiles read the striped reservoir, so the call is
// safe (and meaningful) under live traffic.
func (e *Engine) HostStats() []HostStatus {
	e.hostMu.Lock()
	hosts := make([]netaddr.IP, 0, len(e.hosts))
	states := make([]*hostState, 0, len(e.hosts))
	for h, hs := range e.hosts {
		hosts = append(hosts, h)
		states = append(states, hs)
	}
	e.hostMu.Unlock()
	now := e.clock()
	out := make([]HostStatus, len(hosts))
	for i, hs := range states {
		st := HostStatus{Host: hosts[i]}
		st.Queries = hs.rtt.Count()
		st.RTTMean = hs.rtt.Mean()
		st.RTTP99 = hs.rtt.Quantile(0.99)
		hs.mu.Lock()
		st.Fails = hs.fails
		st.BreakerOpen = !hs.openTill.IsZero() && now.Before(hs.openTill)
		st.NegCached = hs.negErr != nil && now.Before(hs.negUntil)
		hs.mu.Unlock()
		out[i] = st
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// join registers interest in (host, flow, keys): the first caller becomes
// the leader who must execute the flight; later callers coalesce onto it.
// The key deliberately excludes the trace ID — tracing must not defeat
// coalescing — so the leader's ID is the one a daemon sees on the wire.
func (e *Engine) join(host netaddr.IP, q wire.Query, cb qcb) (*flight, bool) {
	key := sfKey{host: host, flow: q.Flow, keys: strings.Join(q.Keys, "\n")}
	e.sfMu.Lock()
	defer e.sfMu.Unlock()
	if f, ok := e.sf[key]; ok {
		if cb.fn != nil {
			// Record the enqueue before the qcb is published: once it is
			// appended, a completion worker may deliver the flight — and the
			// caller's continuation re-pool tb — at any moment, so this is
			// the last point a write to tb cannot race deliver. The leader's
			// query is the one on the wire; this decision rides it, so the
			// daemon attributes the RTT to the leader's trace ID.
			cb.tb.Rec(trace.StageQueryEnqueue, cb.ep|trace.FlagCoalesced, 0)
			f.cbs = append(f.cbs, cb)
		}
		return f, false
	}
	f := &flight{key: key, q: q, done: make(chan struct{})}
	if cb.fn != nil {
		cb.tb.Rec(trace.StageQueryEnqueue, cb.ep, 0)
		f.cbs = append(f.cbs, cb)
	}
	e.sf[key] = f
	e.InFlight.Inc()
	return f, true
}

// run executes a flight against the lower layer (with retries) and
// delivers the result to every waiter.
func (e *Engine) run(f *flight) {
	host := f.key.host
	var resp *wire.Response
	var rtt time.Duration
	var err error
	for attempt := 0; ; attempt++ {
		e.hot.sent.Add(1)
		f.attempts = int32(attempt + 1)
		resp, rtt, err = e.exchange(host, f.q)
		if err == nil || !retryable(err) || attempt >= e.retries {
			break
		}
		e.hot.retriesC.Add(1)
	}
	e.settle(host, rtt, err)
	e.deliver(f, resp, rtt, err)
}

// deliver publishes a flight's result: fields first, then the done close
// and the callback snapshot, so blocking waiters (ordered by the channel)
// and async waiters (invoked with the values directly) both observe a
// complete result exactly once.
func (e *Engine) deliver(f *flight, resp *wire.Response, rtt time.Duration, err error) {
	f.resp, f.rtt, f.err = resp, rtt, err

	e.sfMu.Lock()
	delete(e.sf, f.key)
	cbs := f.cbs
	f.cbs = nil
	e.sfMu.Unlock()
	e.InFlight.Dec()
	close(f.done)
	for _, cb := range cbs {
		if cb.tb != nil {
			flags := cb.ep
			if err != nil {
				flags |= trace.FlagErr
			}
			cb.tb.RecAux(trace.StageQueryDone, flags, int64(rtt), f.attempts)
		}
		cb.fn(resp, rtt, err)
	}
}

// exchange performs one attempt, threading the engine deadline through to
// deadline-aware lowers.
func (e *Engine) exchange(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	if e.dlLower != nil {
		return e.dlLower.Exchange(host, q, time.Now().Add(e.timeout))
	}
	return e.lower.Query(host, q)
}

// settle updates the host's availability record from one exchange outcome.
func (e *Engine) settle(host netaddr.IP, rtt time.Duration, err error) {
	hs := e.hostState(host)
	now := e.clock()
	if err == nil {
		hs.mu.Lock()
		hs.fails = 0
		hs.openTill = time.Time{}
		hs.negErr = nil
		hs.mu.Unlock()
		hs.rtt.Observe(rtt) // histograms stripe their own locks
		return
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if isTimeout(err) {
		e.hot.timeoutsC.Add(1)
	}
	if e.negTTL > 0 && hostUnavailable(err) {
		// Host-granularity failure: no daemon there, or we cannot even
		// connect. Serve the same verdict from cache until the TTL runs
		// out, so a rack of daemon-less printers does not cost a dial
		// timeout per flow.
		hs.negErr = err
		hs.negUntil = now.Add(e.negTTL)
	}
	// An authoritative "no daemon" is the host answering, in its way —
	// connection refused means the machine is up. It must not feed the
	// breaker: an open breaker would replace ErrNoDaemon with
	// ErrBreakerOpen, and the controller's answer-on-behalf role (§3.4)
	// keys on the no-daemon classification surviving end to end.
	if e.brkN > 0 && !core.IsNoDaemon(err) {
		hs.fails++
		if hs.fails >= e.brkN && (hs.openTill.IsZero() || !now.Before(hs.openTill)) {
			hs.openTill = now.Add(e.brkCool)
			hs.fails = 0 // the post-cooldown probe restarts the count
			e.hot.breakerOpens.Add(1)
		}
	}
}

// retryable reports whether a failed attempt is worth repeating: transport
// trouble is, an authoritative "no daemon" is not.
func retryable(err error) bool {
	return !core.IsNoDaemon(err)
}

// hostUnavailable reports whether err condemns the host rather than the
// request: daemon-less (refused / resolver miss) or unreachable (dial
// failure). Per-request timeouts and resets on an established connection
// do not qualify — the next request may well succeed.
func hostUnavailable(err error) bool {
	return core.IsNoDaemon(err) || errors.Is(err, ErrDial)
}

// isTimeout mirrors the net.Error convention without importing net.
func isTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}
