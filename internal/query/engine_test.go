package query

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// fakeLower is a scriptable lower layer counting wire exchanges.
type fakeLower struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, exchanges block until it closes
	fn    func(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error)
}

func (l *fakeLower) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	l.calls.Add(1)
	if l.gate != nil {
		<-l.gate
	}
	if l.fn != nil {
		return l.fn(host, q)
	}
	r := wire.NewResponse(q.Flow)
	r.Add(wire.KeyHost, "fake")
	return r, time.Millisecond, nil
}

// fakeClock is a manually advanced clock for TTL/cooldown determinism.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var engHost = netaddr.MustParseIP("10.1.0.1")

func engQuery(port netaddr.Port) wire.Query {
	return wire.Query{Flow: testFlow(engHost, port), Keys: []string{wire.KeyName}}
}

// TestEngineCoalescing is the acceptance check: N concurrent misses for
// one (host, flow, keys) produce exactly one wire query; every waiter gets
// the same response.
func TestEngineCoalescing(t *testing.T) {
	lower := &fakeLower{gate: make(chan struct{})}
	e := NewEngine(Config{Lower: lower})
	defer e.Close()

	const n = 16
	q := engQuery(1000)
	var wg sync.WaitGroup
	resps := make([]*wire.Response, n)
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			resps[i], _, errs[i] = e.Query(engHost, q)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// All askers are queued behind one gated flight (give the laggards a
	// moment to reach join, then release).
	deadline := time.Now().Add(2 * time.Second)
	for e.Counters.Get("engine_coalesce_hits") < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(lower.gate)
	wg.Wait()

	if got := lower.calls.Load(); got != 1 {
		t.Fatalf("wire queries = %d, want exactly 1 for %d concurrent misses", got, n)
	}
	for i := 1; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if resps[i] != resps[0] {
			t.Errorf("waiter %d got a different response pointer (coalescing should share)", i)
		}
	}
	if ch := e.Counters.Get("engine_coalesce_hits"); ch != n-1 {
		t.Errorf("engine_coalesce_hits = %d, want %d", ch, n-1)
	}
	if e.InFlight.Get() != 0 {
		t.Errorf("InFlight = %d after delivery, want 0", e.InFlight.Get())
	}
}

// TestEngineKeyedByQuery: different flows must NOT coalesce — the daemon's
// answer depends on the flow it is asked about.
func TestEngineKeyedByQuery(t *testing.T) {
	lower := &fakeLower{}
	e := NewEngine(Config{Lower: lower})
	defer e.Close()
	if _, _, err := e.Query(engHost, engQuery(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(engHost, engQuery(2)); err != nil {
		t.Fatal(err)
	}
	if got := lower.calls.Load(); got != 2 {
		t.Errorf("wire queries = %d, want 2 for distinct flows", got)
	}
}

// TestEngineNegativeCache: a daemon-less host costs one wire trip, then
// negative-cache hits until the TTL expires.
func TestEngineNegativeCache(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	lower := &fakeLower{fn: func(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
		return nil, 0, core.ErrNoDaemon
	}}
	e := NewEngine(Config{Lower: lower, NegativeTTL: time.Second, Clock: clk.Now, Retries: -1})
	defer e.Close()

	for i := 0; i < 5; i++ {
		_, _, err := e.Query(engHost, engQuery(netaddr.Port(100+i)))
		if !errors.Is(err, core.ErrNoDaemon) {
			t.Fatalf("query %d: err = %v, want ErrNoDaemon", i, err)
		}
	}
	if got := lower.calls.Load(); got != 1 {
		t.Errorf("wire queries = %d, want 1 (negative cache must absorb repeats)", got)
	}
	if hits := e.Counters.Get("engine_negcache_hits"); hits != 4 {
		t.Errorf("engine_negcache_hits = %d, want 4", hits)
	}

	clk.Advance(2 * time.Second) // past the TTL: the host gets re-probed
	if _, _, err := e.Query(engHost, engQuery(200)); !errors.Is(err, core.ErrNoDaemon) {
		t.Fatalf("post-TTL query: %v", err)
	}
	if got := lower.calls.Load(); got != 2 {
		t.Errorf("wire queries after TTL expiry = %d, want 2", got)
	}
}

// TestEngineNegativeCachePreservesClassification: an unreachable (dial
// failure, not refused) host is negative-cached too, but its cached error
// must stay a transport failure — never mutate into "no daemon".
func TestEngineNegativeCachePreservesClassification(t *testing.T) {
	dialErr := &timeoutErr{}
	lower := &fakeLower{fn: func(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
		return nil, 0, wrapDial(dialErr)
	}}
	e := NewEngine(Config{Lower: lower, Retries: -1})
	defer e.Close()

	_, _, err1 := e.Query(engHost, engQuery(1))
	_, _, err2 := e.Query(engHost, engQuery(2))
	for i, err := range []error{err1, err2} {
		if errors.Is(err, core.ErrNoDaemon) {
			t.Errorf("attempt %d: down host classified as daemon-less: %v", i, err)
		}
		if !errors.Is(err, ErrDial) {
			t.Errorf("attempt %d: lost dial classification: %v", i, err)
		}
	}
	if got := lower.calls.Load(); got != 1 {
		t.Errorf("wire queries = %d, want 1 (down host negative-cached)", got)
	}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string { return "fake dial timeout" }
func (*timeoutErr) Timeout() bool { return true }

func wrapDial(err error) error {
	return errors.Join(ErrDial, err)
}

// TestEngineBreaker: consecutive per-request failures (not host-condemning,
// so the negative cache stays out of the way) trip the breaker; while open,
// queries fast-fail without wire trips; after the cooldown a probe goes
// through.
func TestEngineBreaker(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	lower := &fakeLower{fn: func(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
		return nil, 0, errors.New("connection reset mid-exchange")
	}}
	e := NewEngine(Config{
		Lower: lower, Retries: -1, NegativeTTL: -1,
		BreakerThreshold: 3, BreakerCooldown: time.Second, Clock: clk.Now,
	})
	defer e.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := e.Query(engHost, engQuery(netaddr.Port(i))); err == nil {
			t.Fatal("scripted failure succeeded")
		}
	}
	if opens := e.Counters.Get("engine_breaker_opens"); opens != 1 {
		t.Fatalf("engine_breaker_opens = %d, want 1", opens)
	}
	wireBefore := lower.calls.Load()
	for i := 0; i < 4; i++ {
		_, _, err := e.Query(engHost, engQuery(netaddr.Port(50+i)))
		if !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open-breaker query %d: err = %v, want ErrBreakerOpen", i, err)
		}
	}
	if lower.calls.Load() != wireBefore {
		t.Error("open breaker still let queries reach the wire")
	}
	if ff := e.Counters.Get("engine_breaker_fastfails"); ff != 4 {
		t.Errorf("engine_breaker_fastfails = %d, want 4", ff)
	}

	clk.Advance(2 * time.Second)
	e.Query(engHost, engQuery(99)) // post-cooldown probe reaches the wire
	if lower.calls.Load() != wireBefore+1 {
		t.Error("post-cooldown probe never reached the wire")
	}
}

// TestEngineBreakerIgnoresNoDaemon: an authoritatively daemon-less host
// (the §4 steady state) must never trip the breaker — an open breaker
// would replace ErrNoDaemon with ErrBreakerOpen and strip the
// classification the controller's answer-on-behalf role keys on.
func TestEngineBreakerIgnoresNoDaemon(t *testing.T) {
	lower := &fakeLower{fn: func(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
		return nil, 0, core.ErrNoDaemon
	}}
	e := NewEngine(Config{Lower: lower, Retries: -1, NegativeTTL: -1, BreakerThreshold: 2})
	defer e.Close()
	for i := 0; i < 10; i++ {
		_, _, err := e.Query(engHost, engQuery(netaddr.Port(i)))
		if !errors.Is(err, core.ErrNoDaemon) {
			t.Fatalf("query %d lost the no-daemon classification: %v", i, err)
		}
	}
	if opens := e.Counters.Get("engine_breaker_opens"); opens != 0 {
		t.Errorf("engine_breaker_opens = %d for a daemon-less host, want 0", opens)
	}
}

// TestEngineRetries: a transient failure is retried within the attempt
// budget; an authoritative no-daemon is not.
func TestEngineRetries(t *testing.T) {
	var n atomic.Int64
	lower := &fakeLower{fn: func(_ netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
		if n.Add(1) == 1 {
			return nil, 0, errors.New("transient reset")
		}
		return wire.NewResponse(q.Flow), 0, nil
	}}
	e := NewEngine(Config{Lower: lower}) // default: 1 retry
	defer e.Close()
	if _, _, err := e.Query(engHost, engQuery(1)); err != nil {
		t.Fatalf("retryable failure not retried: %v", err)
	}
	if r := e.Counters.Get("engine_retries"); r != 1 {
		t.Errorf("engine_retries = %d, want 1", r)
	}

	lower2 := &fakeLower{fn: func(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
		return nil, 0, core.ErrNoDaemon
	}}
	e2 := NewEngine(Config{Lower: lower2, NegativeTTL: -1})
	defer e2.Close()
	e2.Query(engHost, engQuery(2))
	if got := lower2.calls.Load(); got != 1 {
		t.Errorf("no-daemon was retried %d times; it is authoritative", got-1)
	}
}

// TestEngineQueryAsync: completions are invoked exactly once with the
// result, and concurrent async askers coalesce onto one wire query.
func TestEngineQueryAsync(t *testing.T) {
	lower := &fakeLower{gate: make(chan struct{})}
	e := NewEngine(Config{Lower: lower})
	defer e.Close()

	const n = 8
	q := engQuery(700)
	var wg sync.WaitGroup
	var delivered atomic.Int64
	resps := make([]*wire.Response, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		e.QueryAsync(engHost, q, func(resp *wire.Response, rtt time.Duration, err error) {
			if err != nil {
				t.Errorf("async completion %d: %v", i, err)
			}
			resps[i] = resp
			delivered.Add(1)
			wg.Done()
		})
	}
	close(lower.gate)
	wg.Wait()
	if got := delivered.Load(); got != n {
		t.Fatalf("completions = %d, want %d", got, n)
	}
	if got := lower.calls.Load(); got != 1 {
		t.Errorf("wire queries = %d, want 1 (async coalescing)", got)
	}
	for i := 1; i < n; i++ {
		if resps[i] != resps[0] {
			t.Errorf("async waiter %d received a different response", i)
		}
	}
}

// TestEngineRTTHistogram: successful exchanges land in the per-host RTT
// histogram.
func TestEngineRTTHistogram(t *testing.T) {
	lower := &fakeLower{}
	e := NewEngine(Config{Lower: lower})
	defer e.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := e.Query(engHost, engQuery(netaddr.Port(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.HostRTT(engHost).Count(); got != 3 {
		t.Errorf("per-host RTT samples = %d, want 3", got)
	}
}

// TestEngineClosed: a closed engine rejects blocking and async queries
// without panicking.
func TestEngineClosed(t *testing.T) {
	e := NewEngine(Config{Lower: &fakeLower{}})
	e.Close()
	if _, _, err := e.Query(engHost, engQuery(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close: %v, want ErrClosed", err)
	}
	got := make(chan error, 1)
	e.QueryAsync(engHost, engQuery(2), func(_ *wire.Response, _ time.Duration, err error) {
		got <- err
	})
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Errorf("QueryAsync after Close delivered %v, want ErrClosed", err)
	}
}
