package query_test

// End-to-end: a core.Controller in asynchronous mode drives the full
// production query plane — query.Engine over query.Pool — against real
// daemon.Server instances on loopback TCP sockets, exercising the §2
// pipeline (packet-in → two endpoint queries on port "783" → PF+=2 verdict
// → flow entries) with none of the simulator in the loop.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

// e2eDatapath is a minimal thread-safe datapath sink.
type e2eDatapath struct {
	id       uint64
	mu       sync.Mutex
	mods     []openflow.FlowMod
	released []uint32
}

func (d *e2eDatapath) DatapathID() uint64 { return d.id }
func (d *e2eDatapath) Apply(m openflow.FlowMod) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mods = append(d.mods, m)
	return nil
}
func (d *e2eDatapath) PacketOut(port uint16, frame []byte) {}
func (d *e2eDatapath) ReleaseBuffer(id uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.released = append(d.released, id)
}
func (d *e2eDatapath) modCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.mods)
}

type e2eTopo struct{ hops []core.Hop }

func (t *e2eTopo) Path(src, dst netaddr.IP) ([]core.Hop, error) { return t.hops, nil }

// e2eHost is one end-host: hostinfo + daemon + TCP server.
type e2eHost struct {
	ip   netaddr.IP
	info *hostinfo.Host
	proc *hostinfo.Process
	d    *daemon.Daemon
	srv  *daemon.Server
	addr string
}

func startHost(t *testing.T, name, ip string, app workload.App, user string) *e2eHost {
	t.Helper()
	h := &e2eHost{ip: netaddr.MustParseIP(ip)}
	h.info = hostinfo.New(name, h.ip, netaddr.MAC(1))
	u := h.info.AddUser(user, "users")
	h.proc = h.info.Exec(u, app.Exe())
	h.d = daemon.New(h.info)
	h.d.InstallConfig(&daemon.ConfigFile{Apps: []*daemon.AppConfig{{
		Path:  app.Path,
		Pairs: []wire.KV{{Key: wire.KeyName, Value: app.Name}},
	}}}, true)
	h.srv = daemon.NewServer(h.d)
	addr, err := h.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.addr = addr.String()
	t.Cleanup(func() { h.srv.Close() })
	return h
}

func packetIn(five flow.Five, swID uint64, buf uint32) openflow.PacketIn {
	return openflow.PacketIn{
		SwitchID: swID,
		BufferID: buf,
		InPort:   1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
			SrcPort: five.SrcPort, DstPort: five.DstPort,
		},
	}
}

func waitCounter(t *testing.T, c interface{ Get(string) int64 }, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Get(name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s >= %d (have %d)", name, want, c.Get(name))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2EAsyncControllerOverTCP runs the whole stack: an allowed flow
// between two daemon'd hosts, a denied flow (wrong application), and an
// answer-on-behalf flow to a daemon-less device — all decided through the
// asynchronous query plane over real sockets.
func TestE2EAsyncControllerOverTCP(t *testing.T) {
	src := startHost(t, "client", "10.2.0.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.2.0.2", workload.Skype, "bob")
	printer := netaddr.MustParseIP("10.2.0.9") // no server anywhere

	pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{
		src.ip: src.addr,
		dst.ip: dst.addr,
		// The printer is absent on purpose: the resolver itself reports it
		// daemon-less, the §4 registered-legacy-device shape.
	}})
	t.Cleanup(func() { pool.Close() })
	eng := query.NewEngine(query.Config{Lower: pool, NegativeTTL: time.Hour})
	t.Cleanup(eng.Close)

	dp := &e2eDatapath{id: 1}
	ctl := core.New(core.Config{
		Name: "e2e",
		Policy: pf.MustCompile("e2e", `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
pass from any to any port 631 with eq(@dst[type], printer)
`),
		Transport:        eng,
		Topology:         &e2eTopo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		AsyncQueries:     true,
		ResponseCacheTTL: time.Hour,
	})
	ctl.AddDatapath(dp)
	ctl.AnswerForHost(printer, wire.KV{Key: wire.KeyType, Value: "printer"})

	// Register a live flow on each daemon so name lookups resolve.
	skypeFlow := flow.Five{
		SrcIP: src.ip, DstIP: dst.ip,
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 5060,
	}
	connected, err := src.info.Connect(src.proc.PID, skypeFlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}

	// Allowed flow: both daemons report skype.
	ctl.HandleEvent(packetIn(connected, 1, 1))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	if dp.modCount() == 0 {
		t.Fatal("no entries installed for the allowed flow")
	}

	// Denied flow: same hosts, a port no registered process owns — the
	// daemons answer, the policy finds no skype, block all wins.
	other := flow.Five{
		SrcIP: src.ip, DstIP: dst.ip,
		Proto: netaddr.ProtoTCP, SrcPort: 40001, DstPort: 9999,
	}
	ctl.HandleEvent(packetIn(other, 1, 2))
	waitCounter(t, ctl.Counters, "flows_denied", 1)

	// Daemon-less device: connection refused → ErrNoDaemon → the
	// controller answers on the printer's behalf and the flow passes.
	toPrinter := flow.Five{
		SrcIP: src.ip, DstIP: printer,
		Proto: netaddr.ProtoTCP, SrcPort: 40002, DstPort: 631,
	}
	ctl.HandleEvent(packetIn(toPrinter, 1, 3))
	waitCounter(t, ctl.Counters, "flows_allowed", 2)
	if ctl.Counters.Get("answered_on_behalf") != 1 {
		t.Errorf("answered_on_behalf = %d, want 1", ctl.Counters.Get("answered_on_behalf"))
	}

	// A second flow to the printer is absorbed by the negative cache: no
	// new dial, still answered on behalf.
	dialsBefore := pool.Counters.Get("pool_dials") + pool.Counters.Get("pool_dial_errors") + pool.Counters.Get("pool_dial_backoff_fastfails")
	toPrinter2 := toPrinter
	toPrinter2.SrcPort = 40003
	ctl.HandleEvent(packetIn(toPrinter2, 1, 4))
	waitCounter(t, ctl.Counters, "flows_allowed", 3)
	if eng.Counters.Get("engine_negcache_hits") == 0 {
		t.Error("second daemon-less query never hit the negative cache")
	}
	dialsAfter := pool.Counters.Get("pool_dials") + pool.Counters.Get("pool_dial_errors") + pool.Counters.Get("pool_dial_backoff_fastfails")
	if dialsAfter != dialsBefore {
		t.Errorf("negative-cached host still touched the dialer (%d -> %d)", dialsBefore, dialsAfter)
	}

	// The wire transport multiplexed everything over one connection per
	// live host.
	if dials := pool.Counters.Get("pool_dials"); dials != 2 {
		t.Errorf("pool_dials = %d, want 2 (one per daemon'd host)", dials)
	}
}

// TestE2EConcurrentFlowsThroughQueryPlane floods the controller with many
// distinct flows between the same two hosts: every decision must land, and
// the transport must keep to its two pipelined connections.
func TestE2EConcurrentFlowsThroughQueryPlane(t *testing.T) {
	src := startHost(t, "client", "10.3.0.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.3.0.2", workload.HTTPD, "bob")

	pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{
		src.ip: src.addr,
		dst.ip: dst.addr,
	}})
	t.Cleanup(func() { pool.Close() })
	eng := query.NewEngine(query.Config{Lower: pool})
	t.Cleanup(eng.Close)

	dp := &e2eDatapath{id: 1}
	ctl := core.New(core.Config{
		Name:           "e2e-flood",
		Policy:         pf.MustCompile("e2e", "block from any to any with eq(@src[name], no-such-app)"),
		Transport:      eng,
		Topology:       &e2eTopo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries: true,
		AsyncQueries:   true,
	})
	ctl.AddDatapath(dp)

	const flows = 64
	var buf atomic.Uint32
	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := flow.Five{
				SrcIP: src.ip, DstIP: dst.ip,
				Proto: netaddr.ProtoTCP, SrcPort: netaddr.Port(10000 + i), DstPort: 80,
			}
			ctl.HandleEvent(packetIn(f, 1, buf.Add(1)))
		}(i)
	}
	wg.Wait()
	waitCounter(t, ctl.Counters, "flows_allowed", flows)
	if dials := pool.Counters.Get("pool_dials"); dials != 2 {
		t.Errorf("pool_dials = %d, want 2 (pipelining under concurrency)", dials)
	}
}
