package query_test

// End-to-end credential enforcement over real TCP: the full production
// stack (core.Controller with RequireCredentials over query.Engine over
// query.Pool against real daemon.Server instances) with an authority
// keypair issuing short-lived credentials. The untrusted-daemon
// acceptance scenarios: a forged credential, an expired credential, and
// an out-of-scope key assertion are each rejected, counted distinctly,
// and degraded to exactly the daemon-less fallback (answer-on-behalf /
// no-info) — never into a verdict. Credential expiry acts as a
// revocation event tearing dependent flows down through the revocation
// index, and rotation re-hellos keep a long-lived subscription verified
// with no resync storm.

import (
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/cred"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/sig"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

const credPolicy = `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`

// issueFor signs a credential for h's IP under priv. keys nil = wildcard.
func issueFor(t *testing.T, priv sig.PrivateKey, h *e2eHost, keys []string, ttl time.Duration) *cred.Issued {
	t.Helper()
	ic, err := cred.Issue(priv, h.ip, keys, time.Now().Add(ttl))
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

// credStack builds the credentialed production stack: pool with the
// authority's public key, engine, controller with RequireCredentials and
// the revocation plane wired, one real switch.
func credStack(t *testing.T, name string, authority sig.PublicKey, resolver query.StaticResolver) (*query.Pool, *query.Engine, *core.Controller, *openflow.Switch) {
	t.Helper()
	pool := query.NewPool(query.PoolConfig{Resolver: resolver, AuthorityKey: authority})
	t.Cleanup(func() { pool.Close() })
	eng := query.NewEngine(query.Config{Lower: pool})
	t.Cleanup(eng.Close)
	sw := openflow.NewSwitch(1, "edge", 0)
	ctl := core.New(core.Config{
		Name:               name,
		Policy:             pf.MustCompile(name, credPolicy),
		Transport:          eng,
		Topology:           &e2eTopo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:     true,
		AsyncQueries:       true,
		ResponseCacheTTL:   time.Hour,
		Revocation:         true,
		RequireCredentials: true,
	})
	ctl.AddDatapath(sw)
	if !eng.SetUpdateHandler(ctl.HandleUpdate) {
		t.Fatal("engine lower does not push updates")
	}
	return pool, eng, ctl, sw
}

// skypeFlow registers a live skype connection src→dst and returns it.
func skypeFlow(t *testing.T, src, dst *e2eHost, srcPort netaddr.Port) flow.Five {
	t.Helper()
	connected, err := src.info.Connect(src.proc.PID, flow.Five{
		SrcIP: src.ip, DstIP: dst.ip,
		Proto: netaddr.ProtoTCP, SrcPort: srcPort, DstPort: 5060,
	})
	if err != nil {
		t.Fatal(err)
	}
	return connected
}

// TestE2ECredentialedFlowAllowed: the happy path — both daemons hold
// valid wildcard credentials, the flow is admitted on their word, and no
// fallback machinery fires.
func TestE2ECredentialedFlowAllowed(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	src := startHost(t, "client", "10.8.0.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.8.0.2", workload.Skype, "bob")
	src.d.SetCredential(issueFor(t, authPriv, src, nil, time.Hour))
	dst.d.SetCredential(issueFor(t, authPriv, dst, nil, time.Hour))

	pool, eng, ctl, sw := credStack(t, "cred-ok", authPub, query.StaticResolver{
		src.ip: src.addr, dst.ip: dst.addr,
	})

	connected := skypeFlow(t, src, dst, 40000)
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	waitUntil(t, "entries installed", func() bool { return sw.Table.Len() == 2 })
	waitCounter(t, pool.Counters, "pool_cred_verified", 2)

	if n := ctl.Counters.Get("cred_unauthorized"); n != 0 {
		t.Errorf("cred_unauthorized = %d on the happy path", n)
	}
	if n := ctl.Counters.Get("answered_on_behalf"); n != 0 {
		t.Errorf("answered_on_behalf = %d with both daemons credentialed", n)
	}
	st, ok := eng.CredentialStatus(src.ip)
	if !ok || !st.Verified || !st.Wild {
		t.Errorf("src credential status = %+v, %v; want verified wildcard", st, ok)
	}
	if got := pool.VerifiedSessions(); got != 2 {
		t.Errorf("VerifiedSessions = %d, want 2", got)
	}
}

// TestE2EForgedCredentialRejected: a daemon presenting a credential
// signed by a rogue authority is rejected — its answers cannot influence
// any verdict — and the host degrades to exactly the daemon-less
// treatment: no-info (deny under this policy) without an operator
// override, answer-on-behalf with one.
func TestE2EForgedCredentialRejected(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	_, roguePriv := sig.MustGenerateKey()
	src := startHost(t, "client", "10.8.1.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.8.1.2", workload.Skype, "bob")
	src.d.SetCredential(issueFor(t, roguePriv, src, nil, time.Hour)) // forged: wrong authority
	dst.d.SetCredential(issueFor(t, authPriv, dst, nil, time.Hour))

	pool, eng, ctl, _ := credStack(t, "cred-forged", authPub, query.StaticResolver{
		src.ip: src.addr, dst.ip: dst.addr,
	})

	connected := skypeFlow(t, src, dst, 40001)
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	// The source daemon answers name=skype over the wire — but its session
	// never verifies, so the policy sees no facts for src and block all
	// wins.
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_denied", 1)
	waitCounter(t, pool.Counters, "pool_cred_forged", 1)
	waitCounter(t, ctl.Counters, "cred_unauthorized", 1)
	if n := ctl.Counters.Get("flows_allowed"); n != 0 {
		t.Fatalf("forged daemon influenced a verdict: flows_allowed = %d", n)
	}
	st, ok := eng.CredentialStatus(src.ip)
	if !ok || st.Verified || st.Err != "forged" {
		t.Errorf("src credential status = %+v, %v; want unverified/forged", st, ok)
	}

	// Same fallback as core.IsNoDaemon: with an operator-registered answer
	// for the unauthorized host, the flow passes as answered-on-behalf.
	ctl.AnswerForHost(src.ip, wire.KV{Key: wire.KeyName, Value: "skype"})
	second := skypeFlow(t, src, dst, 40002)
	ctl.HandleEvent(packetIn(second, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	waitCounter(t, ctl.Counters, "answered_on_behalf", 1)
}

// TestE2EExpiredCredentialRejected: an authority-signed credential past
// its expiry is rejected at hello, counted as expired (not forged), and
// the host degrades to no-info.
func TestE2EExpiredCredentialRejected(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	src := startHost(t, "client", "10.8.2.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.8.2.2", workload.Skype, "bob")
	src.d.SetCredential(issueFor(t, authPriv, src, nil, -time.Minute)) // already expired
	dst.d.SetCredential(issueFor(t, authPriv, dst, nil, time.Hour))

	pool, eng, ctl, _ := credStack(t, "cred-expired", authPub, query.StaticResolver{
		src.ip: src.addr, dst.ip: dst.addr,
	})

	connected := skypeFlow(t, src, dst, 40003)
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_denied", 1)
	waitCounter(t, pool.Counters, "pool_cred_expired", 1)
	waitCounter(t, ctl.Counters, "cred_unauthorized", 1)
	if n := pool.Counters.Get("pool_cred_forged"); n != 0 {
		t.Errorf("expired credential miscounted as forged (%d)", n)
	}
	if n := ctl.Counters.Get("flows_allowed"); n != 0 {
		t.Fatalf("expired daemon influenced a verdict: flows_allowed = %d", n)
	}
	st, ok := eng.CredentialStatus(src.ip)
	if !ok || st.Verified || st.Err != "expired" {
		t.Errorf("src credential status = %+v, %v; want unverified/expired", st, ok)
	}
}

// TestE2EOutOfScopeAssertionRejected: a verified session whose credential
// scopes it to userID cannot have a name assertion believed — the
// response is rejected per-answer, counted as a scope reject, and the
// verdict falls back to no-info.
func TestE2EOutOfScopeAssertionRejected(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	src := startHost(t, "client", "10.8.3.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.8.3.2", workload.Skype, "bob")
	// Valid authority, valid expiry — but scoped to a key this policy
	// never reads, so the daemon's name=skype answer exceeds its mandate.
	src.d.SetCredential(issueFor(t, authPriv, src, []string{wire.KeyUserID}, time.Hour))
	dst.d.SetCredential(issueFor(t, authPriv, dst, nil, time.Hour))

	pool, eng, ctl, _ := credStack(t, "cred-scope", authPub, query.StaticResolver{
		src.ip: src.addr, dst.ip: dst.addr,
	})

	connected := skypeFlow(t, src, dst, 40004)
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_denied", 1)
	waitCounter(t, pool.Counters, "pool_cred_scope_rejects", 1)
	waitCounter(t, ctl.Counters, "cred_unauthorized", 1)
	if n := ctl.Counters.Get("flows_allowed"); n != 0 {
		t.Fatalf("out-of-scope assertion influenced a verdict: flows_allowed = %d", n)
	}
	// The session itself verified — the hello was honest — and the scope
	// violation is recorded per-answer for the admin surface.
	st, ok := eng.CredentialStatus(src.ip)
	if !ok || !st.Verified {
		t.Fatalf("src session should stay verified, status = %+v, %v", st, ok)
	}
	if st.Err != "scope" {
		t.Errorf("credential err = %q, want scope", st.Err)
	}
}

// TestE2ECredentialExpiryRevokesFlows: expiry is a revocation event. A
// flow admitted under a short-lived credential is torn down through the
// revocation index the moment the credential lapses, O(affected flows) —
// no sweep cadence, no controller restart.
func TestE2ECredentialExpiryRevokesFlows(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	src := startHost(t, "client", "10.8.4.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.8.4.2", workload.Skype, "bob")
	// Issue truncates expiry to the second, so a 2s TTL yields 1-2s of
	// real lifetime: enough to set the flow up, short enough to lapse
	// within the test.
	src.d.SetCredential(issueFor(t, authPriv, src, nil, 2*time.Second))
	dst.d.SetCredential(issueFor(t, authPriv, dst, nil, time.Hour))

	pool, _, ctl, sw := credStack(t, "cred-lapse", authPub, query.StaticResolver{
		src.ip: src.addr, dst.ip: dst.addr,
	})

	connected := skypeFlow(t, src, dst, 40005)
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	waitUntil(t, "entries installed", func() bool { return sw.Table.Len() == 2 })

	// The lapse timer fires at expiry: session drops to unverified, a
	// synthetic resync flows through the revocation index, and the flow's
	// entries leave the switch.
	waitCounter(t, pool.Counters, "pool_cred_lapsed", 1)
	waitCounter(t, ctl.Counters, "revocations_flows", 1)
	waitUntil(t, "entries torn down at credential expiry", func() bool {
		return sw.Table.Len() == 0
	})
	if ctl.CachedFlows() != 0 {
		t.Errorf("cache entries = %d after credential lapse", ctl.CachedFlows())
	}
	waitUntil(t, "audit record", func() bool {
		revs := ctl.Audit.Revocations()
		return len(revs) >= 1 && revs[0].Flow == connected
	})
}

// TestE2ERotationSurvivesWithoutResync: the rotation regression — a
// long-lived subscription rides through two credential rotations
// (SetCredential re-hellos at the current serial) with the session
// continuously verified and zero resyncs, so rotation causes no flow
// churn and no teardown storm.
func TestE2ERotationSurvivesWithoutResync(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	src := startHost(t, "client", "10.8.5.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.8.5.2", workload.Skype, "bob")
	src.d.SetCredential(issueFor(t, authPriv, src, nil, time.Hour))
	dst.d.SetCredential(issueFor(t, authPriv, dst, nil, time.Hour))

	pool, eng, ctl, sw := credStack(t, "cred-rotate", authPub, query.StaticResolver{
		src.ip: src.addr, dst.ip: dst.addr,
	})

	connected := skypeFlow(t, src, dst, 40006)
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	waitUntil(t, "entries installed", func() bool { return sw.Table.Len() == 2 })
	waitCounter(t, pool.Counters, "pool_cred_verified", 2)

	// Two rotations, each a fresh credential re-helloed over the live
	// subscription: daemon_rehellos counts the deliveries, the pool
	// re-verifies each time.
	for i := 0; i < 2; i++ {
		src.d.SetCredential(issueFor(t, authPriv, src, nil, time.Hour))
		waitCounter(t, pool.Counters, "pool_cred_verified", int64(3+i))
	}
	waitCounter(t, src.d.Counters, "daemon_rehellos", 2)

	if n := pool.Counters.Get("pool_update_resyncs"); n != 0 {
		t.Fatalf("rotation caused %d resyncs; want 0", n)
	}
	if n := ctl.Counters.Get("revocations_resyncs"); n != 0 {
		t.Fatalf("rotation caused %d controller resyncs; want 0", n)
	}
	if n := ctl.Counters.Get("revocations_flows"); n != 0 {
		t.Fatalf("rotation revoked %d flows; want 0", n)
	}
	if sw.Table.Len() != 2 {
		t.Fatalf("entries = %d after rotations; want 2 (no churn)", sw.Table.Len())
	}
	st, ok := eng.CredentialStatus(src.ip)
	if !ok || !st.Verified {
		t.Fatalf("session unverified after rotation: %+v, %v", st, ok)
	}

	// And the rotated session still admits fresh flows.
	second := skypeFlow(t, src, dst, 40007)
	ctl.HandleEvent(packetIn(second, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 2)
	if n := ctl.Counters.Get("answered_on_behalf"); n != 0 {
		t.Errorf("rotated session fell back to answer-on-behalf (%d)", n)
	}
}
