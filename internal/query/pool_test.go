package query

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// startDaemon brings up a real daemon.Server on a loopback socket serving
// one host with a logged-in user, and returns the host IP, the bound
// address, and the server (caller closes).
func startDaemon(t testing.TB, name, ip string) (netaddr.IP, string, *daemon.Server) {
	t.Helper()
	hostIP := netaddr.MustParseIP(ip)
	h := hostinfo.New(name, hostIP, netaddr.MAC(1))
	h.AddUser("alice", "users")
	d := daemon.New(h)
	d.InstallConfig(&daemon.ConfigFile{HostPairs: []wire.KV{{Key: wire.KeyHost, Value: name}}}, true)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return hostIP, addr.String(), srv
}

func testFlow(host netaddr.IP, srcPort netaddr.Port) flow.Five {
	return flow.Five{
		SrcIP: host, DstIP: netaddr.MustParseIP("10.9.9.9"),
		Proto: netaddr.ProtoTCP, SrcPort: srcPort, DstPort: 80,
	}
}

// TestPoolPipelinedExchanges drives many concurrent exchanges for one host
// through the pool: they must all complete over one multiplexed connection
// (one dial), responses correlated back to their own flows.
func TestPoolPipelinedExchanges(t *testing.T) {
	host, addr, srv := startDaemon(t, "pc", "10.0.0.1")
	defer srv.Close()
	p := NewPool(PoolConfig{Resolver: StaticResolver{host: addr}})
	defer p.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := testFlow(host, netaddr.Port(1000+i))
			resp, _, err := p.Query(host, wire.Query{Flow: f, Keys: []string{wire.KeyHost}})
			if err != nil {
				errs <- err
				return
			}
			if resp.Flow != f {
				errs <- fmt.Errorf("response for %v answered query for %v", resp.Flow, f)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if dials := p.Counters.Get("pool_dials"); dials != 1 {
		t.Errorf("pool_dials = %d, want 1 (pipelining should share one connection)", dials)
	}
	if sent := p.Counters.Get("pool_queries_sent"); sent != n {
		t.Errorf("pool_queries_sent = %d, want %d", sent, n)
	}
	if got := p.Conns.Get(); got != 1 {
		t.Errorf("Conns gauge = %d, want 1", got)
	}
}

// TestPoolReconnectAfterServerRestart kills the daemon server mid-life and
// restarts it on the same address: the pool must fail the in-between
// request, back off, and transparently redial.
func TestPoolReconnectAfterServerRestart(t *testing.T) {
	host, addr, srv := startDaemon(t, "pc", "10.0.0.2")
	p := NewPool(PoolConfig{Resolver: StaticResolver{host: addr}, MaxBackoff: 50 * time.Millisecond})
	defer p.Close()

	f := testFlow(host, 2000)
	if _, _, err := p.Query(host, wire.Query{Flow: f}); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	srv.Close()

	// The dropped connection surfaces as an error on some subsequent
	// exchange (the teardown may race the next send); keep trying briefly.
	sawFailure := false
	for i := 0; i < 50 && !sawFailure; i++ {
		if _, _, err := p.Query(host, wire.Query{Flow: f}); err != nil {
			sawFailure = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawFailure {
		t.Fatal("no exchange failed after server shutdown")
	}

	// Restart on the same address; the pool must recover once the backoff
	// window passes.
	hostIP := netaddr.MustParseIP("10.0.0.2")
	h := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	d := daemon.New(h)
	srv2 := daemon.NewServer(d)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := p.Query(host, wire.Query{Flow: f}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never reconnected after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dials := p.Counters.Get("pool_dials"); dials < 2 {
		t.Errorf("pool_dials = %d, want >= 2 (reconnect)", dials)
	}
}

// TestPoolIdleConnDroppedByServerReadTimeout exercises daemon.Server's
// slow-reader guard from the pool's side: a connection idle past the
// server's ReadTimeout is dropped by the server, and the pool redials for
// the next exchange instead of erroring forever.
func TestPoolIdleConnDroppedByServerReadTimeout(t *testing.T) {
	hostIP := netaddr.MustParseIP("10.0.0.3")
	h := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	d := daemon.New(h)
	srv := daemon.NewServer(d)
	srv.ReadTimeout = 50 * time.Millisecond // aggressive slow-reader cutoff
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: addr.String()}, MaxBackoff: 20 * time.Millisecond})
	defer p.Close()
	f := testFlow(hostIP, 3000)
	if _, _, err := p.Query(hostIP, wire.Query{Flow: f}); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	// Let the server's read deadline expire and the connection die.
	time.Sleep(150 * time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := p.Query(hostIP, wire.Query{Flow: f}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered from server-side idle drop")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dials := p.Counters.Get("pool_dials"); dials < 2 {
		t.Errorf("pool_dials = %d, want >= 2 (idle conn was dropped)", dials)
	}
}

// TestServerRejectsOversizedFrame sends daemon.Server a frame whose header
// claims a payload beyond wire.MaxMessageSize: the server must drop the
// connection without serving it (and without allocating the claimed size).
func TestServerRejectsOversizedFrame(t *testing.T) {
	host, addr, srv := startDaemon(t, "pc", "10.0.0.4")
	defer srv.Close()
	_ = host

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hdr := make([]byte, 13)
	hdr[0] = wire.FrameQuery
	// addresses zero; length field: 16 MiB, far past MaxMessageSize
	hdr[9], hdr[10], hdr[11], hdr[12] = 0x01, 0x00, 0x00, 0x00
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered an oversized frame; want connection drop")
	}
}

// TestPoolRejectsOversizedResponse points the pool at a rogue server that
// answers with an oversized frame header: the read must fail, the
// connection be torn down, and the exchange surface an error rather than a
// giant allocation.
func TestPoolRejectsOversizedResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadQuery(conn); err != nil {
			return
		}
		hdr := make([]byte, 13)
		hdr[0] = wire.FrameResponse
		hdr[9], hdr[10], hdr[11], hdr[12] = 0x01, 0x00, 0x00, 0x00
		conn.Write(hdr)
	}()

	hostIP := netaddr.MustParseIP("10.0.0.5")
	p := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: l.Addr().String()}})
	defer p.Close()
	_, _, err = p.Query(hostIP, wire.Query{Flow: testFlow(hostIP, 4000)})
	if err == nil {
		t.Fatal("oversized response frame accepted; want error")
	}
	if p.Conns.Get() != 0 {
		t.Errorf("Conns gauge = %d after teardown, want 0", p.Conns.Get())
	}
}

// TestPoolRequestDeadline runs against a server that reads the query but
// never answers: the exchange must fail with a timeout-classified error by
// its deadline, and a daemon'd-but-slow host must never be classified as
// daemon-less.
func TestPoolRequestDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		wire.ReadQuery(conn)
		<-stop // hold the response forever
	}()

	hostIP := netaddr.MustParseIP("10.0.0.6")
	p := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: l.Addr().String()}})
	defer p.Close()
	start := time.Now()
	_, _, err = p.Exchange(hostIP, wire.Query{Flow: testFlow(hostIP, 5000)}, time.Now().Add(100*time.Millisecond))
	if err == nil {
		t.Fatal("exchange succeeded against a mute server")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
	var to interface{ Timeout() bool }
	if !errors.As(err, &to) || !to.Timeout() {
		t.Errorf("deadline error does not classify as timeout: %v", err)
	}
	if errors.Is(err, core.ErrNoDaemon) {
		t.Error("slow daemon'd host classified as daemon-less")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
	if p.Counters.Get("pool_timeouts") != 1 {
		t.Errorf("pool_timeouts = %d, want 1", p.Counters.Get("pool_timeouts"))
	}
}

// TestPoolDialClassification: a connection refused (closed port) is the
// daemon-less case and must match core.ErrNoDaemon; the resolver saying
// "no daemon" likewise, without any dial.
func TestPoolDialClassification(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	refused := netaddr.MustParseIP("10.0.0.7")
	unknown := netaddr.MustParseIP("10.0.0.8")
	p := NewPool(PoolConfig{Resolver: StaticResolver{refused: addr}})
	defer p.Close()

	_, _, err = p.Query(refused, wire.Query{Flow: testFlow(refused, 6000)})
	if !errors.Is(err, core.ErrNoDaemon) {
		t.Errorf("connection refused classified as %v, want core.ErrNoDaemon", err)
	}

	_, _, err = p.Query(unknown, wire.Query{Flow: testFlow(unknown, 6001)})
	if !errors.Is(err, core.ErrNoDaemon) {
		t.Errorf("resolver miss classified as %v, want core.ErrNoDaemon", err)
	}

	// Repeated failures are served from the backoff fast-fail, not a fresh
	// dial each time.
	for i := 0; i < 5; i++ {
		p.Query(refused, wire.Query{Flow: testFlow(refused, 6002)})
	}
	if ff := p.Counters.Get("pool_dial_backoff_fastfails"); ff == 0 {
		t.Error("repeated dial failures never hit the backoff fast-fail")
	}
}
