package query

import (
	"errors"
	"time"

	"identxx/internal/cred"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// This file is the pool's half of the credential plane (internal/cred).
// When PoolConfig.AuthorityKey is set, every per-host session must prove
// itself in its hello: the daemon's credential is checked against the
// authority (forged / expired / wrong host, each counted separately) and
// the hello transcript signature proves possession of the credential's
// session key at this session's serial baseline. All crypto happens here,
// once per session — afterwards serial continuity on the same TCP stream
// is the proof, so the steady-state query path pays a mutex-protected
// flag read and a linear scope scan, no allocations and no signatures.
//
// An unverified session is indistinguishable from a daemon-less host to
// the layers above: responses fail with an error satisfying
// core.IsNoDaemon, so the controller falls back to answer-on-behalf or
// no-info exactly as it does today for hosts that refuse the connection.
// Updates from unverified sessions are dropped entirely — an
// unauthenticated peer must not even tear state down, or a forger could
// flush the controller's view of a host at will.

// ErrUnauthorized marks responses rejected by the credential plane —
// session never verified, credential expired mid-session, or a response
// asserting keys outside the credential's scope. It satisfies
// core.IsNoDaemon: an unauthorized daemon and an absent daemon get the
// same fallback treatment.
var ErrUnauthorized = errors.New("query: daemon unauthorized")

// unauthorizedError gives each rejection a reason while matching both
// errors.Is(err, ErrUnauthorized) and core.IsNoDaemon.
type unauthorizedError struct{ reason string }

func (e *unauthorizedError) Error() string      { return "query: daemon unauthorized: " + e.reason }
func (e *unauthorizedError) NoDaemon() bool     { return true }
func (e *unauthorizedError) Unauthorized() bool { return true }
func (e *unauthorizedError) Unwrap() error      { return ErrUnauthorized }

// Preallocated rejections: the unauthorized path must not allocate per
// query either, or a rejected daemon could pressure the collector.
var (
	errSessionUnverified = &unauthorizedError{reason: "session not credential-verified"}
	errSessionExpired    = &unauthorizedError{reason: "credential expired"}
	errOutOfScope        = &unauthorizedError{reason: "response outside credential key scope"}
)

// Credential verification verdicts, also surfaced as CredStatus.Err.
const (
	credOK      = ""
	credMissing = "missing" // hello carried no credential
	credForged  = "forged"  // malformed blob, bad authority signature, or bad hello transcript
	credExpired = "expired" // authority-signed but past expiry
	credScope   = "scope"   // issued for a different host, or response exceeded key scope
)

// credState is one session's verification state, guarded by hostConn.mu.
// It survives reconnects as last-known status for operators; verified is
// cleared on teardown because trust is per-session.
type credState struct {
	present  bool        // a hello on the current/last session carried a credential
	verified bool        // current session's hello checked out and has not lapsed
	wild     bool        // scope covers every key
	keys     []string    // sorted key scope when !wild
	expiry   time.Time   // verified credential's expiry
	err      string      // last verification failure ("" when verified)
	lapse    *time.Timer // fires at expiry: expiry-as-revocation
}

// CredStatus is one host's credential status as surfaced to the engine,
// admin plane, and telemetry.
type CredStatus struct {
	Present  bool      // the daemon presented a credential at all
	Verified bool      // the live session is credential-verified
	Wild     bool      // scope is every key
	Scope    []string  // sorted key scope when !Wild
	Expiry   time.Time // expiry of the last verified credential
	Err      string    // last verification failure reason ("" if none)
}

// credentialed reports whether the pool enforces credentials; false is
// the insecure mode netsim and experiments run in.
func (p *Pool) credentialed() bool { return !p.authority.IsZero() }

// Credentialed reports whether this pool enforces credentials — the
// startup probe core.Config.RequireCredentials uses to refuse running
// atop a transport that would silently authorize everyone.
func (p *Pool) Credentialed() bool { return p.credentialed() }

// CredentialStatus returns host's credential status. ok is false when the
// pool runs insecure or has never talked to host.
func (p *Pool) CredentialStatus(host netaddr.IP) (CredStatus, bool) {
	if !p.credentialed() {
		return CredStatus{}, false
	}
	p.mu.Lock()
	hc := p.hosts[host]
	p.mu.Unlock()
	if hc == nil {
		return CredStatus{}, false
	}
	hc.mu.Lock()
	defer hc.mu.Unlock()
	st := CredStatus{
		Present:  hc.cred.present,
		Verified: hc.cred.verified && time.Now().Before(hc.cred.expiry),
		Wild:     hc.cred.wild,
		Expiry:   hc.cred.expiry,
		Err:      hc.cred.err,
	}
	if len(hc.cred.keys) > 0 {
		st.Scope = append(st.Scope, hc.cred.keys...)
	}
	return st, true
}

// HostAuthorized reports whether facts from host may influence verdicts
// right now. Insecure pools authorize everyone; credentialed pools
// authorize only live verified unexpired sessions.
func (p *Pool) HostAuthorized(host netaddr.IP) bool {
	if !p.credentialed() {
		return true
	}
	st, ok := p.CredentialStatus(host)
	return ok && st.Verified
}

// CredentialExpiry returns the expiry of host's verified credential; ok
// is false for insecure pools and unverified sessions. The controller
// clamps revocation leases to this, making expiry a revocation event even
// for facts cached past the session's death.
func (p *Pool) CredentialExpiry(host netaddr.IP) (time.Time, bool) {
	st, ok := p.CredentialStatus(host)
	if !ok || !st.Verified {
		return time.Time{}, false
	}
	return st.Expiry, true
}

// HostCredStatus pairs a host with its credential status for drill-downs.
type HostCredStatus struct {
	Host netaddr.IP
	CredStatus
}

// CredentialSessions lists every known host's credential status (nil on
// insecure pools) — the `identctl admin creds` surface.
func (p *Pool) CredentialSessions() []HostCredStatus {
	if !p.credentialed() {
		return nil
	}
	p.mu.Lock()
	hosts := make([]netaddr.IP, 0, len(p.hosts))
	for ip := range p.hosts {
		hosts = append(hosts, ip)
	}
	p.mu.Unlock()
	out := make([]HostCredStatus, 0, len(hosts))
	for _, ip := range hosts {
		if st, ok := p.CredentialStatus(ip); ok {
			out = append(out, HostCredStatus{Host: ip, CredStatus: st})
		}
	}
	return out
}

// VerifiedSessions counts hosts with a live verified session — the
// pool_creds_verified gauge.
func (p *Pool) VerifiedSessions() int64 {
	var n int64
	for _, st := range p.CredentialSessions() {
		if st.Verified {
			n++
		}
	}
	return n
}

// verifyHello checks a hello's credential and transcript and installs the
// session's verification state. It returns whether to emit a synthetic
// resync (a previously trusted session just became untrusted: everything
// admitted on its word must go) and whether to suppress the hello itself
// (an unverified peer must not be marked push-capable). Runs on the
// reader goroutine; this is the session's one signature-verification
// moment.
func (hc *hostConn) verifyHello(u wire.Update) (credResync, suppress bool) {
	p := hc.pool
	now := time.Now()
	verdict := credOK
	var c cred.Credential
	if u.Cred == "" {
		verdict = credMissing
	} else if parsed, err := cred.Parse(u.Cred); err != nil {
		verdict = credForged
	} else {
		c = parsed
		switch err := c.Verify(p.authority, now); {
		case errors.Is(err, cred.ErrExpired):
			verdict = credExpired
		case err != nil:
			verdict = credForged
		case c.Host != hc.host:
			// Valid credential, wrong host: a delegated daemon trying to
			// speak for someone else.
			verdict = credScope
		case c.VerifyHello(hc.host, u.Serial, u.CredSig) != nil:
			// No proof of possession: a replayed credential blob.
			verdict = credForged
		}
	}

	hc.mu.Lock()
	wasVerified := hc.cred.verified
	hc.cred.present = u.Cred != ""
	hc.cred.err = verdict
	if verdict == credOK {
		hc.cred.verified = true
		hc.cred.wild, hc.cred.keys = c.Wild, c.Keys
		hc.cred.expiry = c.Expiry
		hc.armLapseLocked(c.Expiry.Sub(now))
		hc.mu.Unlock()
		p.Counters.Add("pool_cred_verified", 1)
		return false, false
	}
	hc.cred.verified = false
	hc.stopLapseLocked()
	hc.mu.Unlock()
	switch verdict {
	case credMissing:
		p.Counters.Add("pool_cred_missing", 1)
	case credForged:
		p.Counters.Add("pool_cred_forged", 1)
	case credExpired:
		p.Counters.Add("pool_cred_expired", 1)
	case credScope:
		p.Counters.Add("pool_cred_scope_rejects", 1)
	}
	return wasVerified, true
}

// filterUpdate applies the session's credential state to a non-hello
// update: drop everything from unverified sessions, and drop key-named
// updates outside the verified scope. Resync and flow-scoped teardowns
// from a *verified* session always pass — they can only remove state.
func (hc *hostConn) filterUpdate(u wire.Update) (suppress bool) {
	hc.mu.Lock()
	verified := hc.cred.verified
	inScope := u.Key == "" || u.Key == wire.KeyError || hc.cred.wild || credCovers(hc.cred.keys, u.Key)
	hc.mu.Unlock()
	if !verified {
		return true
	}
	if !inScope {
		hc.pool.Counters.Add("pool_cred_scope_rejects", 1)
		return true
	}
	return false
}

// authorizeResponse gates one response delivery on the session's
// credential. Zero allocations on the accept path: flag reads plus a
// linear scan of the response's pairs against a handful of scope keys.
func (hc *hostConn) authorizeResponse(resp *wire.Response) error {
	hc.mu.Lock()
	verified := hc.cred.verified
	wild := hc.cred.wild
	keys := hc.cred.keys
	expiry := hc.cred.expiry
	hc.mu.Unlock()
	if !verified {
		hc.pool.Counters.Add("pool_cred_rejected_responses", 1)
		return errSessionUnverified
	}
	if !time.Now().Before(expiry) {
		// The lapse timer will transition the session and resync; reject
		// this response without waiting for it to fire.
		hc.pool.Counters.Add("pool_cred_rejected_responses", 1)
		return errSessionExpired
	}
	if wild {
		return nil
	}
	for si := range resp.Sections {
		for _, kv := range resp.Sections[si].Pairs {
			// error pairs assert no fact — "I don't know" is always in
			// scope and can only lead to a no-info verdict.
			if kv.Key == wire.KeyError {
				continue
			}
			if !credCovers(keys, kv.Key) {
				hc.setCredErr(credScope)
				hc.pool.Counters.Add("pool_cred_scope_rejects", 1)
				hc.pool.Counters.Add("pool_cred_rejected_responses", 1)
				return errOutOfScope
			}
		}
	}
	return nil
}

func credCovers(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// setCredErr records a verification failure reason without changing the
// session's verified bit (a scope-violating response is rejected on its
// own; the session's other answers remain individually checked).
func (hc *hostConn) setCredErr(reason string) {
	hc.mu.Lock()
	hc.cred.err = reason
	hc.mu.Unlock()
}

// armLapseLocked (re)arms the expiry timer: when the verified
// credential's lifetime runs out without a rotation re-hello, the session
// lapses and dependent flows are torn down. hc.mu held.
func (hc *hostConn) armLapseLocked(d time.Duration) {
	if hc.cred.lapse != nil {
		hc.cred.lapse.Stop()
	}
	hc.cred.lapse = time.AfterFunc(d, hc.credLapse)
}

// stopLapseLocked cancels the expiry timer. hc.mu held.
func (hc *hostConn) stopLapseLocked() {
	if hc.cred.lapse != nil {
		hc.cred.lapse.Stop()
		hc.cred.lapse = nil
	}
}

// credLapse fires at credential expiry: the paper-side contract is that
// expiry IS a revocation event, so the session drops to unverified and a
// synthetic resync tears down every dependent flow through the
// controller's revocation index, O(affected flows). A rotation re-hello
// before expiry re-arms the timer instead (see Daemon.SetCredential).
func (hc *hostConn) credLapse() {
	hc.mu.Lock()
	if !hc.cred.verified || time.Now().Before(hc.cred.expiry) {
		hc.mu.Unlock()
		return
	}
	hc.cred.verified = false
	hc.cred.err = credExpired
	serial := hc.lastSerial
	hc.mu.Unlock()
	hc.pool.Counters.Add("pool_cred_lapsed", 1)
	if fn := hc.pool.updateFn(); fn != nil {
		fn(hc.host, wire.Update{Serial: serial})
	}
}
