package query_test

// End-to-end revocation: the full production stack — core.Controller in
// asynchronous mode over query.Engine over query.Pool against real
// daemon.Server instances on loopback TCP, programming real
// openflow.Switch flow tables. A mid-flow endpoint-state change on the
// source host (the owning process exits) is pushed by the daemon, demuxed
// by the pool, and enforced by the controller: response-cache entry gone,
// flow-table entries deleted on every datapath along the installed path,
// audit record emitted — no controller restart, no policy reload, no
// idle-timeout. The ISSUE 5 acceptance scenario.

import (
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestE2ERevocationTearsDownLiveFlow(t *testing.T) {
	src := startHost(t, "client", "10.7.0.1", workload.Skype, "alice")
	dst := startHost(t, "server", "10.7.0.2", workload.Skype, "bob")

	pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{
		src.ip: src.addr,
		dst.ip: dst.addr,
	}})
	t.Cleanup(func() { pool.Close() })
	eng := query.NewEngine(query.Config{Lower: pool})
	t.Cleanup(eng.Close)

	// Real switch datapaths: the acceptance check is entries leaving real
	// flow tables, not a mock recording mods.
	sw1 := openflow.NewSwitch(1, "edge", 0)
	sw2 := openflow.NewSwitch(2, "agg", 0)

	ctl := core.New(core.Config{
		Name: "rev-e2e",
		Policy: pf.MustCompile("rev-e2e", `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`),
		Transport: eng,
		Topology: &e2eTopo{hops: []core.Hop{
			{Datapath: 1, OutPort: 2},
			{Datapath: 2, OutPort: 3},
		}},
		InstallEntries:   true,
		AsyncQueries:     true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
	})
	ctl.AddDatapath(sw1)
	ctl.AddDatapath(sw2)
	// Wire the revocation plane: daemon pushes flow through the pool into
	// the controller. Must support push (the lower is a Pool).
	if !eng.SetUpdateHandler(ctl.HandleUpdate) {
		t.Fatal("engine lower does not push updates")
	}

	// A live, daemon-known flow.
	skypeFlow := flow.Five{
		SrcIP: src.ip, DstIP: dst.ip,
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 5060,
	}
	connected, err := src.info.Connect(src.proc.PID, skypeFlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}

	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	// keep state: forward + reverse entries on both switches.
	waitUntil(t, "entries installed", func() bool {
		return sw1.Table.Len() == 2 && sw2.Table.Len() == 2
	})
	if ctl.CachedFlows() != 1 {
		t.Fatalf("cached flows = %d", ctl.CachedFlows())
	}
	// The daemons said hello through the subscribed connections.
	waitUntil(t, "hellos", func() bool {
		return ctl.Counters.Get("revocations_hellos") >= 2
	})

	// ---- The revocation moment: alice's skype exits mid-flow. ----
	src.info.Kill(src.proc.PID)

	waitUntil(t, "flow torn down from both switches", func() bool {
		return sw1.Table.Len() == 0 && sw2.Table.Len() == 0
	})
	waitUntil(t, "cache entry dropped", func() bool { return ctl.CachedFlows() == 0 })
	waitUntil(t, "audit record emitted", func() bool {
		revs := ctl.Audit.Revocations()
		return len(revs) >= 1 && revs[0].Flow == connected
	})
	if ctl.Counters.Get("policy_reloads") != 0 {
		t.Error("teardown used a policy reload")
	}

	// The next packet re-queries and is now denied: the daemon answers
	// NO-USER for the orphaned flow, the pass rule cannot match, block all
	// wins. Live policy, current facts.
	ctl.HandleEvent(packetIn(connected, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_denied", 1)
	waitUntil(t, "deny entry installed", func() bool { return sw1.Table.Len() == 1 })

	// And a fresh flow from a live process is still admitted: the plane
	// revokes facts, not hosts.
	proc2 := src.info.Exec(mustUser(t, src), workload.Skype.Exe())
	fresh, err := src.info.Connect(proc2.PID, flow.Five{
		DstIP: dst.ip, Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.HandleEvent(packetIn(fresh, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 2)
}

func mustUser(t *testing.T, h *e2eHost) *hostinfo.User {
	t.Helper()
	u, ok := h.info.UserByName("alice")
	if !ok {
		t.Fatal("alice missing")
	}
	return u
}

// TestE2ELegacyDaemonLeaseFallback: a host whose "daemon" is only
// reachable as answer-on-behalf (no push channel at all) gets lease
// semantics: the flow's state is torn down when the lease expires, forcing
// a re-query, without any update ever arriving.
func TestE2ELegacyDaemonLeaseFallback(t *testing.T) {
	src := startHost(t, "client", "10.7.1.1", workload.Skype, "alice")
	printer := netaddr.MustParseIP("10.7.1.9") // resolver-absent: no daemon

	pool := query.NewPool(query.PoolConfig{Resolver: query.StaticResolver{
		src.ip: src.addr,
	}})
	t.Cleanup(func() { pool.Close() })
	eng := query.NewEngine(query.Config{Lower: pool, NegativeTTL: time.Hour})
	t.Cleanup(eng.Close)

	sw := openflow.NewSwitch(1, "edge", 0)
	ctl := core.New(core.Config{
		Name: "lease-e2e",
		Policy: pf.MustCompile("lease-e2e", `
block all
pass from any to any port 631 with eq(@dst[type], printer)
`),
		Transport:          eng,
		Topology:           &e2eTopo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:     true,
		AsyncQueries:       true,
		ResponseCacheTTL:   time.Hour,
		Revocation:         true,
		RevocationLeaseTTL: 50 * time.Millisecond,
	})
	ctl.AddDatapath(sw)
	eng.SetUpdateHandler(ctl.HandleUpdate)
	ctl.AnswerForHost(printer, wire.KV{Key: wire.KeyType, Value: "printer"})

	toPrinter := flow.Five{
		SrcIP: src.ip, DstIP: printer,
		Proto: netaddr.ProtoTCP, SrcPort: 40002, DstPort: 631,
	}
	ctl.HandleEvent(packetIn(toPrinter, 1, openflow.BufferNone))
	waitCounter(t, ctl.Counters, "flows_allowed", 1)
	waitUntil(t, "entry installed", func() bool { return sw.Table.Len() == 1 })

	// No sweep: nothing happens before the lease runs out.
	if n := ctl.SweepLeases(); n != 0 {
		t.Fatalf("premature lease expiry: %d", n)
	}
	time.Sleep(80 * time.Millisecond)
	waitUntil(t, "lease expiry teardown", func() bool { return ctl.SweepLeases() >= 1 })
	if sw.Table.Len() != 0 {
		t.Errorf("entries = %d after lease teardown", sw.Table.Len())
	}
	if ctl.CachedFlows() != 0 {
		t.Errorf("cache entries = %d after lease teardown", ctl.CachedFlows())
	}
}
