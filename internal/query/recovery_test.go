package query

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// pushLower is a fakeLower that also supports update subscription, so a
// test can hand-deliver a hello and watch the engine's reaction.
type pushLower struct {
	fakeLower
	handler atomic.Value // func(netaddr.IP, wire.Update)
}

func (l *pushLower) SetUpdateHandler(fn func(host netaddr.IP, u wire.Update)) {
	l.handler.Store(fn)
}

func (l *pushLower) push(host netaddr.IP, u wire.Update) {
	l.handler.Load().(func(netaddr.IP, wire.Update))(host, u)
}

// TestEngineHelloClearsNegativeCache: a hello over the push channel is
// proof the daemon is back, and must clear the host's negative-cache
// entry and breaker on the spot. The seed kept serving the cached dial
// error for the rest of the negative TTL — the fast-fail gate never
// re-dialed, so the engine could not learn of the recovery.
func TestEngineHelloClearsNegativeCache(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	lower := &pushLower{}
	lower.fn = func(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
		if down.Load() {
			return nil, 0, core.ErrNoDaemon
		}
		r := wire.NewResponse(q.Flow)
		r.Add(wire.KeyHost, "pc")
		return r, 0, nil
	}
	e := NewEngine(Config{Lower: lower, NegativeTTL: time.Hour, Retries: -1, BreakerThreshold: 1})
	defer e.Close()
	var hellos atomic.Int64
	if !e.SetUpdateHandler(func(host netaddr.IP, u wire.Update) {
		if u.Hello {
			hellos.Add(1)
		}
	}) {
		t.Fatal("lower does not support updates")
	}

	// Daemon down: one wire trip, then the negative cache absorbs repeats.
	for i := 0; i < 3; i++ {
		if _, _, err := e.Query(engHost, engQuery(netaddr.Port(100+i))); !errors.Is(err, core.ErrNoDaemon) {
			t.Fatalf("down query %d: err = %v, want ErrNoDaemon", i, err)
		}
	}
	if got := lower.calls.Load(); got != 1 {
		t.Fatalf("wire queries while down = %d, want 1", got)
	}

	// The daemon comes back and its subscription handshake delivers a
	// hello. The negative TTL has an hour left; recovery must not wait it.
	down.Store(false)
	lower.push(engHost, wire.Update{Hello: true, Serial: 1})
	if hellos.Load() != 1 {
		t.Fatal("hello not forwarded to the installed handler")
	}
	if got := e.Counters.Get("engine_host_recoveries"); got != 1 {
		t.Fatalf("engine_host_recoveries = %d, want 1", got)
	}

	resp, _, err := e.Query(engHost, engQuery(200))
	if err != nil {
		t.Fatalf("post-recovery query: %v (negative cache not cleared)", err)
	}
	if resp == nil {
		t.Fatal("post-recovery query returned no response")
	}
	if got := lower.calls.Load(); got != 2 {
		t.Errorf("wire queries after recovery = %d, want 2", got)
	}

	// A hello from a never-failed host is a no-op, not a spurious count.
	lower.push(engHost, wire.Update{Hello: true, Serial: 2})
	if got := e.Counters.Get("engine_host_recoveries"); got != 1 {
		t.Errorf("engine_host_recoveries after clean hello = %d, want 1", got)
	}
}

// TestEngineRecoveryAfterServerRestart is the scripted end-to-end form:
// a real daemon.Server goes down, queries through pool+engine negative-
// cache the dial error, the server restarts on the same address, and the
// reconnect's hello un-wedges the engine immediately — with an hour of
// negative TTL still on the clock.
func TestEngineRecoveryAfterServerRestart(t *testing.T) {
	host, addr, srv := startDaemon(t, "pc", "10.0.0.77")
	srv.Close() // daemon down; the address stays reserved for the restart

	p := NewPool(PoolConfig{Resolver: StaticResolver{host: addr}, MaxBackoff: 10 * time.Millisecond})
	defer p.Close()
	e := NewEngine(Config{Lower: p, NegativeTTL: time.Hour, Retries: -1})
	defer e.Close()
	if !e.SetUpdateHandler(func(netaddr.IP, wire.Update) {}) {
		t.Fatal("pool does not support updates")
	}

	f := testFlow(host, 3000)
	for i := 0; i < 3; i++ {
		if _, _, err := e.Query(host, wire.Query{Flow: f, Keys: []string{wire.KeyHost}}); !errors.Is(err, core.ErrNoDaemon) {
			t.Fatalf("down query %d: err = %v, want ErrNoDaemon", i, err)
		}
	}
	if e.Counters.Get("engine_negcache_hits") == 0 {
		t.Fatal("negative cache never armed")
	}

	// Restart the daemon on the same address.
	hostIP := netaddr.MustParseIP("10.0.0.77")
	h := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	d := daemon.New(h)
	d.InstallConfig(&daemon.ConfigFile{HostPairs: []wire.KV{{Key: wire.KeyHost, Value: "pc"}}}, true)
	srv2 := daemon.NewServer(d)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	// A direct pool exchange (another flow's query, in a deployment)
	// reconnects and subscribes; the daemon acks with a hello the engine
	// intercepts. Wait out the pool's dial backoff.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := p.Query(host, wire.Query{Flow: f}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never reconnected after restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for e.Counters.Get("engine_host_recoveries") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hello never reached the engine")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The engine must serve the host again now — not after the TTL.
	if _, _, err := e.Query(host, wire.Query{Flow: f, Keys: []string{wire.KeyHost}}); err != nil {
		t.Fatalf("post-recovery engine query: %v", err)
	}
}
