package query

// Satellite acceptance for the flight-recorder PR: trace IDs must survive
// the query plane's failure handling. A pool reconnect (daemon restart,
// FIFO resync) re-encodes the query on the fresh connection — the trace
// line has to ride along again, not get lost with the dead connection's
// state, or the daemon-side attribution (daemon_queries_traced) would
// undercount exactly the decisions whose latency the operator is chasing.

import (
	"sync"
	"testing"
	"time"

	"identxx/internal/daemon"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/trace"
	"identxx/internal/wire"
)

// TestPoolTraceIDSurvivesReconnect kills the daemon server under a pool
// and restarts it on the same address: a traced query issued after the
// redial must still arrive at the daemon with its trace ID intact.
func TestPoolTraceIDSurvivesReconnect(t *testing.T) {
	hostIP := netaddr.MustParseIP("10.0.7.1")
	h := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	h.AddUser("alice", "users")
	d := daemon.New(h)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: addr.String()}, MaxBackoff: 50 * time.Millisecond})
	defer p.Close()

	f := testFlow(hostIP, 2100)
	q := wire.Query{Flow: f, Keys: []string{wire.KeyHost}, TraceID: 0xabcdef0123456789}
	if _, _, err := p.Query(hostIP, q); err != nil {
		t.Fatalf("first traced exchange: %v", err)
	}
	if got := d.Counters.Get("daemon_queries_traced"); got != 1 {
		t.Fatalf("daemon_queries_traced = %d after first exchange, want 1", got)
	}

	// Kill and restart the daemon on the same address. The restarted
	// daemon is a fresh process image: its counters start at zero, so any
	// traced count it accumulates can only come from post-reconnect wire
	// traffic.
	srv.Close()
	h2 := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	h2.AddUser("alice", "users")
	d2 := daemon.New(h2)
	srv2 := daemon.NewServer(d2)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	// Drive traced queries until one completes over the healed connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := p.Query(hostIP, q); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never reconnected after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d2.Counters.Get("daemon_queries_traced"); got < 1 {
		t.Errorf("daemon_queries_traced = %d after reconnect, want >= 1 (trace ID lost across redial)", got)
	}
}

// enqueueEvents extracts a retained trace's query-plane events and checks
// per-trace invariants: exactly one enqueue, recorded before the done.
func enqueueEvents(t *testing.T, tr trace.Trace) (enq, done *trace.Event) {
	t.Helper()
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Stage {
		case trace.StageQueryEnqueue:
			if enq != nil {
				t.Errorf("trace %x: duplicate StageQueryEnqueue", tr.ID)
			}
			if done != nil {
				t.Errorf("trace %x: StageQueryEnqueue recorded after StageQueryDone", tr.ID)
			}
			enq = ev
		case trace.StageQueryDone:
			done = ev
		}
	}
	if enq == nil || done == nil {
		t.Errorf("trace %x: missing enqueue/done (enq=%v done=%v)", tr.ID, enq != nil, done != nil)
	}
	return enq, done
}

// TestEngineTracedCoalesceFlags: waiters coalesced onto an in-flight
// exchange record StageQueryEnqueue with FlagCoalesced — and record it
// before the qcb is published, so the event can never land after the
// flight's delivery (or in a re-pooled buffer; see the race test below).
func TestEngineTracedCoalesceFlags(t *testing.T) {
	rec := trace.New(trace.Config{SampleEvery: 1, RingSize: 64})
	lower := &fakeLower{gate: make(chan struct{})}
	e := NewEngine(Config{Lower: lower})
	defer e.Close()

	const n = 8
	q := engQuery(4100)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		tb := rec.Begin(0)
		e.QueryAsyncTraced(engHost, q, tb, 0, func(*wire.Response, time.Duration, error) {
			rec.Finish(tb)
			wg.Done()
		})
	}
	close(lower.gate)
	wg.Wait()

	traces := rec.Traces()
	if len(traces) != n {
		t.Fatalf("retained traces = %d, want %d", len(traces), n)
	}
	leaders := 0
	for _, tr := range traces {
		enq, _ := enqueueEvents(t, tr)
		if enq != nil && enq.Flags&trace.FlagCoalesced == 0 {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leader enqueues = %d, want exactly 1 (rest coalesced)", leaders)
	}
	if got := e.Counters.Get("engine_coalesce_hits"); got != n-1 {
		t.Errorf("engine_coalesce_hits = %d, want %d", got, n-1)
	}
}

// TestEngineTracedCoalesceRace drives concurrent traced queries whose
// completions immediately Finish (re-pool) their buffers while other
// callers are still joining the same flights. Run under -race, this is
// the regression net for the coalesced-enqueue event being recorded after
// join publishes the qcb: a worker could deliver the flight and re-pool
// the buffer concurrently with (or before) the late Rec, corrupting a
// buffer already re-issued to another decision.
func TestEngineTracedCoalesceRace(t *testing.T) {
	rec := trace.New(trace.Config{SampleEvery: 1, RingSize: 64})
	lower := &fakeLower{fn: func(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
		time.Sleep(50 * time.Microsecond)
		r := wire.NewResponse(q.Flow)
		r.Add(wire.KeyHost, "fake")
		return r, time.Millisecond, nil
	}}
	e := NewEngine(Config{Lower: lower})
	defer e.Close()

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var inner sync.WaitGroup
			for i := 0; i < perG; i++ {
				// Few distinct queries → constant join/deliver contention.
				q := engQuery(netaddr.Port(5000 + i%4))
				tb := rec.Begin(0)
				inner.Add(1)
				e.QueryAsyncTraced(engHost, q, tb, 0, func(*wire.Response, time.Duration, error) {
					rec.Finish(tb)
					inner.Done()
				})
			}
			inner.Wait()
		}()
	}
	wg.Wait()
}
