package query

// Satellite acceptance for the flight-recorder PR: trace IDs must survive
// the query plane's failure handling. A pool reconnect (daemon restart,
// FIFO resync) re-encodes the query on the fresh connection — the trace
// line has to ride along again, not get lost with the dead connection's
// state, or the daemon-side attribution (daemon_queries_traced) would
// undercount exactly the decisions whose latency the operator is chasing.

import (
	"testing"
	"time"

	"identxx/internal/daemon"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// TestPoolTraceIDSurvivesReconnect kills the daemon server under a pool
// and restarts it on the same address: a traced query issued after the
// redial must still arrive at the daemon with its trace ID intact.
func TestPoolTraceIDSurvivesReconnect(t *testing.T) {
	hostIP := netaddr.MustParseIP("10.0.7.1")
	h := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	h.AddUser("alice", "users")
	d := daemon.New(h)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolConfig{Resolver: StaticResolver{hostIP: addr.String()}, MaxBackoff: 50 * time.Millisecond})
	defer p.Close()

	f := testFlow(hostIP, 2100)
	q := wire.Query{Flow: f, Keys: []string{wire.KeyHost}, TraceID: 0xabcdef0123456789}
	if _, _, err := p.Query(hostIP, q); err != nil {
		t.Fatalf("first traced exchange: %v", err)
	}
	if got := d.Counters.Get("daemon_queries_traced"); got != 1 {
		t.Fatalf("daemon_queries_traced = %d after first exchange, want 1", got)
	}

	// Kill and restart the daemon on the same address. The restarted
	// daemon is a fresh process image: its counters start at zero, so any
	// traced count it accumulates can only come from post-reconnect wire
	// traffic.
	srv.Close()
	h2 := hostinfo.New("pc", hostIP, netaddr.MAC(1))
	h2.AddUser("alice", "users")
	d2 := daemon.New(h2)
	srv2 := daemon.NewServer(d2)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	// Drive traced queries until one completes over the healed connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := p.Query(hostIP, q); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never reconnected after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d2.Counters.Get("daemon_queries_traced"); got < 1 {
		t.Errorf("daemon_queries_traced = %d after reconnect, want >= 1 (trace ID lost across redial)", got)
	}
}
