// Package cred is the credential plane for the query/update wire: a
// delegation authority (an offline Ed25519 keypair, its public half loaded
// by the controller) issues short-lived credentials scoped to one host and
// one key-set. A credential binds a *session keypair* — generated at issue
// time, held by the daemon — so the daemon proves possession by signing a
// hello transcript (host, serial) per session, and the controller pays
// signature verification exactly once per session: after the hello checks
// out, serial continuity on the already-verified TCP stream proves the
// same peer is still talking.
//
// This closes the trust gap the paper leaves open when the network
// delegates decisions to end hosts (§5 discussion of compromised hosts):
// without it, any process that can reach the controller's query socket can
// assert arbitrary facts for any host. Scoping follows the short-lived
// delegated-credential shape — no revocation round-trips are needed for
// expiry, which instead flows through the controller's existing lease
// sweep as a revocation event.
//
// The wire form is a single line with no newlines, safe to ride an
// update-frame `cred:` line past legacy decoders (which skip unknown
// lines):
//
//	v1 host=10.0.0.7 keys=name,user-id exp=1767225600 pub=<b64> sig=<b64>
//
// Unknown space-separated tokens are ignored on parse so future issuers
// can say more, mirroring the update codec's stance.
package cred

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"identxx/internal/netaddr"
	"identxx/internal/sig"
)

// Errors distinguishing why a credential was rejected; the pool counts
// each class separately so operators can tell forgery from staleness.
var (
	ErrMalformed = errors.New("cred: malformed credential")
	ErrForged    = errors.New("cred: authority signature invalid")
	ErrExpired   = errors.New("cred: credential expired")
	ErrHostScope = errors.New("cred: credential issued for a different host")
)

// Domain-separation tags: the authority signs claims, the session key
// signs hello transcripts, and neither signature can be replayed as the
// other (or as a §3.3 req-sig, which canonicalizes different fields).
const (
	claimsTag = "identxx-cred-v1"
	helloTag  = "identxx-hello-v1"
)

// Wildcard is the key-set token granting every key.
const Wildcard = "*"

// Credential is the public, wire-carried part of a delegation: claims
// plus the authority's signature over their canonical encoding.
type Credential struct {
	Host   netaddr.IP    // the one host this credential may assert facts for
	Keys   []string      // sorted asserted-key scope; nil with Wild set
	Wild   bool          // scope is every key
	Expiry time.Time     // second granularity; not valid at or after this instant
	Pub    sig.PublicKey // session public key, proven via the hello transcript
	Sig    string        // authority signature (unpadded base64)
}

// keysToken renders the key scope as the signed/encoded form.
func (c Credential) keysToken() string {
	if c.Wild {
		return Wildcard
	}
	return strings.Join(c.Keys, ",")
}

// claims returns the canonically-signed values, in order.
func (c Credential) claims() []string {
	return []string{
		claimsTag,
		c.Host.String(),
		c.keysToken(),
		strconv.FormatInt(c.Expiry.Unix(), 10),
		c.Pub.String(),
	}
}

// Covers reports whether key is inside the credential's key-set scope.
// It is allocation-free: scopes are a handful of keys, scanned linearly.
func (c Credential) Covers(key string) bool {
	if c.Wild {
		return true
	}
	for _, k := range c.Keys {
		if k == key {
			return true
		}
	}
	return false
}

// Verify checks the authority signature and then the expiry, in that
// order — a forged credential reports ErrForged even when also stale,
// because its claimed expiry is meaningless. Host scope is checked by
// the session layer (which knows which host the session is for) via
// ErrHostScope.
func (c Credential) Verify(authority sig.PublicKey, now time.Time) error {
	if err := sig.Verify(authority, c.Sig, c.claims()...); err != nil {
		return ErrForged
	}
	if !now.Before(c.Expiry) {
		return ErrExpired
	}
	return nil
}

// VerifyHello checks the session-key signature over one hello transcript
// (host, serial): possession of the credential's private half, bound to
// this session's serial baseline.
func (c Credential) VerifyHello(host netaddr.IP, serial uint64, sigB64 string) error {
	return sig.Verify(c.Pub, sigB64, helloTag, host.String(), strconv.FormatUint(serial, 10))
}

// Encode renders the single-line wire form carried on an update frame's
// `cred:` line.
func (c Credential) Encode() string {
	return fmt.Sprintf("v1 host=%s keys=%s exp=%d pub=%s sig=%s",
		c.Host, c.keysToken(), c.Expiry.Unix(), c.Pub, c.Sig)
}

// Parse decodes the Encode form. Unknown tokens are skipped; missing
// required fields are ErrMalformed. Parse does not verify — call Verify
// with the authority key.
func Parse(s string) (Credential, error) {
	var c Credential
	rest, ok := strings.CutPrefix(strings.TrimSpace(s), "v1")
	if !ok {
		return c, fmt.Errorf("%w: missing version", ErrMalformed)
	}
	var haveHost, haveKeys, haveExp, havePub, haveSig bool
	for _, tok := range strings.Fields(rest) {
		name, val, found := strings.Cut(tok, "=")
		if !found {
			return c, fmt.Errorf("%w: token %q", ErrMalformed, tok)
		}
		switch name {
		case "host":
			ip, err := netaddr.ParseIP(val)
			if err != nil {
				return c, fmt.Errorf("%w: host %q", ErrMalformed, val)
			}
			c.Host, haveHost = ip, true
		case "keys":
			if val == Wildcard {
				c.Wild, c.Keys = true, nil
			} else {
				keys, err := normalizeKeys(strings.Split(val, ","))
				if err != nil {
					return c, err
				}
				c.Keys = keys
			}
			haveKeys = val != ""
		case "exp":
			unix, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("%w: exp %q", ErrMalformed, val)
			}
			c.Expiry, haveExp = time.Unix(unix, 0).UTC(), true
		case "pub":
			pub, err := sig.ParsePublicKey(val)
			if err != nil {
				return c, fmt.Errorf("%w: pub", ErrMalformed)
			}
			c.Pub, havePub = pub, true
		case "sig":
			c.Sig, haveSig = val, val != ""
		}
	}
	if !haveHost || !haveKeys || !haveExp || !havePub || !haveSig {
		return c, fmt.Errorf("%w: missing required field", ErrMalformed)
	}
	return c, nil
}

// normalizeKeys sorts, dedupes, and validates a key-set. Keys must be
// nonempty and free of the characters the wire form reserves.
func normalizeKeys(keys []string) ([]string, error) {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		if k == "" || strings.ContainsAny(k, " ,=\n") {
			return nil, fmt.Errorf("%w: key %q", ErrMalformed, k)
		}
		out = append(out, k)
	}
	sort.Strings(out)
	out = slicesCompact(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty key-set", ErrMalformed)
	}
	return out, nil
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(s []string) []string {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

// Issued is what a daemon holds: the wire-public credential plus the
// private half of its session key, used to sign hello transcripts.
type Issued struct {
	Credential
	Priv sig.PrivateKey
}

// SignHello signs one hello transcript (host, serial) with the session
// key; the result rides the hello update's `csig:` line.
func (i *Issued) SignHello(host netaddr.IP, serial uint64) string {
	return sig.Sign(i.Priv, helloTag, host.String(), strconv.FormatUint(serial, 10))
}

// Issue mints a credential: it generates a fresh session keypair and has
// the authority's private key sign the (host, key-set, expiry, session
// pub) claims. keys may be nil or [Wildcard] for an unscoped grant.
func Issue(authority sig.PrivateKey, host netaddr.IP, keys []string, expiry time.Time) (*Issued, error) {
	if authority.IsZero() {
		return nil, fmt.Errorf("%w: zero authority key", sig.ErrBadKey)
	}
	c := Credential{Host: host, Expiry: expiry.Truncate(time.Second).UTC()}
	if len(keys) == 0 || (len(keys) == 1 && keys[0] == Wildcard) {
		c.Wild = true
	} else {
		norm, err := normalizeKeys(keys)
		if err != nil {
			return nil, err
		}
		c.Keys = norm
	}
	pub, priv, err := sig.GenerateKey()
	if err != nil {
		return nil, err
	}
	c.Pub = pub
	c.Sig = sig.Sign(authority, c.claims()...)
	return &Issued{Credential: c, Priv: priv}, nil
}

// EncodeIssued renders the credential file a daemon loads (`identd
// -cred`): the public blob on a `cred` line and the session private key
// on a `priv` line. Write it 0600.
func EncodeIssued(i *Issued) []byte {
	var b strings.Builder
	b.WriteString("# identxx delegation credential; keep private (holds the session key).\n")
	b.WriteString("cred ")
	b.WriteString(i.Credential.Encode())
	b.WriteString("\npriv ")
	b.WriteString(i.Priv.String())
	b.WriteString("\n")
	return []byte(b.String())
}

// ParseIssued decodes the EncodeIssued form. Blank lines and #-comments
// are skipped.
func ParseIssued(data []byte) (*Issued, error) {
	var out Issued
	var haveCred, havePriv bool
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			return nil, fmt.Errorf("%w: line %q", ErrMalformed, line)
		}
		switch name {
		case "cred":
			c, err := Parse(val)
			if err != nil {
				return nil, err
			}
			out.Credential, haveCred = c, true
		case "priv":
			priv, err := sig.ParsePrivateKey(strings.TrimSpace(val))
			if err != nil {
				return nil, err
			}
			out.Priv, havePriv = priv, true
		}
	}
	if !haveCred || !havePriv {
		return nil, fmt.Errorf("%w: credential file needs cred and priv lines", ErrMalformed)
	}
	if !out.Priv.Public().Equal(out.Pub) {
		return nil, fmt.Errorf("%w: priv line does not match credential's session key", ErrMalformed)
	}
	return &out, nil
}

// LoadFile reads and decodes an EncodeIssued credential file.
func LoadFile(path string) (*Issued, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseIssued(data)
}
