package cred

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"identxx/internal/netaddr"
	"identxx/internal/sig"
)

var (
	testHost = netaddr.MustParseIP("10.0.0.7")
	testNow  = time.Unix(1767225600, 0).UTC() // fixed instant; creds expire relative to it
)

func issue(t *testing.T, auth sig.PrivateKey, keys []string, ttl time.Duration) *Issued {
	t.Helper()
	ic, err := Issue(auth, testHost, keys, testNow.Add(ttl))
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestIssueVerifyRoundTrip(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	ic := issue(t, authPriv, []string{"name", "user-id"}, time.Hour)

	if err := ic.Verify(authPub, testNow); err != nil {
		t.Fatalf("fresh credential rejected: %v", err)
	}
	// Wire round trip preserves the credential exactly.
	parsed, err := Parse(ic.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, ic.Credential) {
		t.Fatalf("round trip changed credential:\n got %+v\nwant %+v", parsed, ic.Credential)
	}
	if err := parsed.Verify(authPub, testNow); err != nil {
		t.Fatalf("parsed credential rejected: %v", err)
	}
	// The hello transcript binds (host, serial) under the session key.
	hs := ic.SignHello(testHost, 42)
	if err := parsed.VerifyHello(testHost, 42, hs); err != nil {
		t.Fatalf("hello transcript rejected: %v", err)
	}
	if err := parsed.VerifyHello(testHost, 43, hs); err == nil {
		t.Fatal("hello signature replayed at a different serial verified")
	}
	if err := parsed.VerifyHello(netaddr.MustParseIP("10.0.0.8"), 42, hs); err == nil {
		t.Fatal("hello signature replayed for a different host verified")
	}
}

func TestVerifyRejections(t *testing.T) {
	authPub, authPriv := sig.MustGenerateKey()
	_, roguePriv := sig.MustGenerateKey()

	forged := issue(t, roguePriv, nil, time.Hour)
	if err := forged.Verify(authPub, testNow); !errors.Is(err, ErrForged) {
		t.Fatalf("forged credential: got %v, want ErrForged", err)
	}

	expired := issue(t, authPriv, nil, -time.Minute)
	if err := expired.Verify(authPub, testNow); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired credential: got %v, want ErrExpired", err)
	}
	// Expiry boundary is exclusive: not valid at the expiry instant.
	edge := issue(t, authPriv, nil, 0)
	if err := edge.Verify(authPub, testNow); !errors.Is(err, ErrExpired) {
		t.Fatalf("credential at expiry instant: got %v, want ErrExpired", err)
	}

	// A forged credential that is also stale reports forged: its claims,
	// expiry included, are meaningless.
	staleForged := issue(t, roguePriv, nil, -time.Minute)
	if err := staleForged.Verify(authPub, testNow); !errors.Is(err, ErrForged) {
		t.Fatalf("stale forged credential: got %v, want ErrForged", err)
	}

	// Tampering with any claim breaks the authority signature.
	tampered := issue(t, authPriv, []string{"name"}, time.Hour).Credential
	tampered.Wild, tampered.Keys = true, nil
	if err := tampered.Verify(authPub, testNow); !errors.Is(err, ErrForged) {
		t.Fatalf("scope-widened credential: got %v, want ErrForged", err)
	}
}

func TestCovers(t *testing.T) {
	_, authPriv := sig.MustGenerateKey()
	scoped := issue(t, authPriv, []string{"user-id", "name", "name"}, time.Hour)
	if got := scoped.Keys; !reflect.DeepEqual(got, []string{"name", "user-id"}) {
		t.Fatalf("keys not sorted+deduped: %v", got)
	}
	for key, want := range map[string]bool{"name": true, "user-id": true, "os-patch": false, "": false} {
		if scoped.Covers(key) != want {
			t.Fatalf("scoped.Covers(%q) = %v, want %v", key, !want, want)
		}
	}
	wild := issue(t, authPriv, nil, time.Hour)
	if !wild.Wild || !wild.Covers("anything") {
		t.Fatal("nil key-set should grant wildcard scope")
	}
	star := issue(t, authPriv, []string{Wildcard}, time.Hour)
	if !star.Wild {
		t.Fatal(`["*"] key-set should grant wildcard scope`)
	}
	if _, err := Issue(authPriv, testHost, []string{"bad key"}, testNow); !errors.Is(err, ErrMalformed) {
		t.Fatalf("key with space accepted: %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	_, authPriv := sig.MustGenerateKey()
	good := issue(t, authPriv, []string{"name"}, time.Hour).Encode()
	for _, bad := range []string{
		"",
		"v2 " + good,
		"v1",
		"v1 host=10.0.0.7 keys=name exp=123", // missing pub+sig
		"v1 host=nonsense keys=name exp=1 pub=x sig=y", // bad host
		"v1 host=10.0.0.7 keys=name exp=soon pub=x sig=y",
		"v1 host=10.0.0.7 keys= exp=1 pub=x sig=y",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	// Unknown tokens are skipped, like unknown update lines.
	withExtra := "v1 future=stuff " + good[len("v1 "):]
	if _, err := Parse(withExtra); err != nil {
		t.Fatalf("unknown token rejected: %v", err)
	}
}

func TestIssuedFileRoundTrip(t *testing.T) {
	_, authPriv := sig.MustGenerateKey()
	ic := issue(t, authPriv, []string{"name"}, time.Hour)
	path := filepath.Join(t.TempDir(), "host.cred")
	if err := os.WriteFile(path, EncodeIssued(ic), 0o600); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Credential, ic.Credential) {
		t.Fatalf("file round trip changed credential:\n got %+v\nwant %+v", back.Credential, ic.Credential)
	}
	// The reloaded private key still signs valid transcripts.
	if err := back.VerifyHello(testHost, 7, back.SignHello(testHost, 7)); err != nil {
		t.Fatal(err)
	}

	// A priv line from a different keypair is rejected — it could never
	// produce transcripts matching the credential's session key.
	other := issue(t, authPriv, []string{"name"}, time.Hour)
	mixed := &Issued{Credential: ic.Credential, Priv: other.Priv}
	if _, err := ParseIssued(EncodeIssued(mixed)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mismatched priv line accepted: %v", err)
	}
}
