package cred

import (
	"reflect"
	"testing"
	"time"

	"identxx/internal/netaddr"
	"identxx/internal/sig"
)

// FuzzParseCredential throws attacker-shaped blobs at the credential
// parser: whatever rides a hello's `cred:` line is untrusted input on a
// public socket. Properties: no panic, and accepted blobs survive an
// encode/re-parse identity (Parse∘Encode∘Parse = Parse), so the form the
// controller logs/re-displays is the form it verified.
func FuzzParseCredential(f *testing.F) {
	_, authPriv := sig.MustGenerateKey()
	ic, err := Issue(authPriv, netaddr.MustParseIP("10.0.0.7"), []string{"name", "user-id"}, time.Unix(1767225600, 0))
	if err != nil {
		f.Fatal(err)
	}
	wild, err := Issue(authPriv, netaddr.MustParseIP("10.0.0.8"), nil, time.Unix(1, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ic.Encode())
	f.Add(wild.Encode())
	f.Add("v1 host=10.0.0.7 keys=* exp=0 pub= sig=")
	f.Add("v1 future=stuff host=10.0.0.7")
	f.Add("v2 host=10.0.0.7")
	f.Add("v1 keys=,,, exp=99999999999999999999")
	f.Add("")
	f.Fuzz(func(t *testing.T, blob string) {
		c, err := Parse(blob)
		if err != nil {
			return
		}
		again, err := Parse(c.Encode())
		if err != nil {
			t.Fatalf("re-parse of encoded accepted credential failed: %v\nencoded: %q", err, c.Encode())
		}
		if !reflect.DeepEqual(again, c) {
			t.Fatalf("encode/parse identity broken:\n got %+v\nwant %+v", again, c)
		}
	})
}
