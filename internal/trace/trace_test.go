package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderAndBufferAreInert(t *testing.T) {
	var r *Recorder
	b := r.Begin(42)
	if b != nil {
		t.Fatalf("nil recorder Begin returned %v", b)
	}
	// Every instrument point must be callable on the nils the disabled
	// path holds.
	b.Rec(StageEval, 0, 0)
	b.RecAux(StageQueryDone, FlagSrc, 1, 2)
	b.SetFlow(6, 1, 2, 3, 4)
	b.SetVerdict("pass")
	if b.ID() != 0 || b.Sampled() {
		t.Fatal("nil buffer leaked state")
	}
	r.Finish(b)
	if got := r.Traces(); got != nil {
		t.Fatalf("nil recorder retained %v", got)
	}
}

func TestSampleEveryOneRetainsAll(t *testing.T) {
	r := New(Config{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		b := r.Begin(0)
		b.Rec(StageCacheProbe, FlagHit, 0)
		b.SetVerdict("pass")
		r.Finish(b)
	}
	got := r.Traces()
	if len(got) != 10 {
		t.Fatalf("retained %d traces, want 10", len(got))
	}
	if n := r.Counters.Get("trace_sampled"); n != 10 {
		t.Fatalf("trace_sampled=%d, want 10", n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("traces not seq-ordered: %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}
	// begin + probe + finish
	if len(got[0].Events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(got[0].Events), got[0].Events)
	}
	if got[0].Verdict != "pass" {
		t.Fatalf("verdict %q", got[0].Verdict)
	}
}

func TestSampleRateZeroDropsUnlessSlow(t *testing.T) {
	r := New(Config{SampleEvery: 0, SlowThreshold: 5 * time.Millisecond})
	// Fast decision: dropped.
	b := r.Begin(0)
	r.Finish(b)
	if n := r.Counters.Get("trace_dropped"); n != 1 {
		t.Fatalf("trace_dropped=%d, want 1", n)
	}
	// Slow decision: captured by the threshold despite sampling off.
	b = r.Begin(0)
	b.start = time.Now().Add(-10 * time.Millisecond) // age the trace past the threshold
	r.Finish(b)
	slow := r.Slow()
	if len(slow) != 1 || !slow[0].Slow || slow[0].Sampled {
		t.Fatalf("slow capture wrong: %+v", slow)
	}
	if n := r.Counters.Get("trace_slow_captured"); n != 1 {
		t.Fatalf("trace_slow_captured=%d, want 1", n)
	}
}

func TestSamplerIsDeterministicOnID(t *testing.T) {
	r1 := New(Config{SampleEvery: 4})
	r2 := New(Config{SampleEvery: 4})
	// Two recorders (different seeds) must agree on any given ID: the
	// forwarder and the owner keep or drop the same stitched trace.
	var kept int
	for id := uint64(1); id <= 256; id++ {
		a, b := r1.sampledID(id), r2.sampledID(id)
		if a != b {
			t.Fatalf("sampler disagrees on id %d", id)
		}
		if a {
			kept++
		}
	}
	if kept == 0 || kept == 256 {
		t.Fatalf("sampler kept %d/256 at rate 4", kept)
	}
}

func TestStitchedInheritsIDAndCounts(t *testing.T) {
	r := New(Config{SampleEvery: 1})
	b := r.Begin(0xabcdef)
	if b.ID() != 0xabcdef || !b.stitched {
		t.Fatalf("inherited id not honored: %x stitched=%v", b.ID(), b.stitched)
	}
	r.Finish(b)
	if n := r.Counters.Get("trace_stitched"); n != 1 {
		t.Fatalf("trace_stitched=%d, want 1", n)
	}
	got := r.Find(0xabcdef)
	if len(got) != 1 || !got[0].Stitched {
		t.Fatalf("Find: %+v", got)
	}
	if got[0].Events[0].Flags&FlagStitched == 0 {
		t.Fatal("begin event missing stitched flag")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 16})
	for i := 0; i < 100; i++ {
		r.Finish(r.Begin(0))
	}
	got := r.Traces()
	if len(got) != 16 {
		t.Fatalf("retained %d, want ring size 16", len(got))
	}
	// The survivors are the newest 100-16.. range (striped, so exact
	// membership varies, but nothing older than seq 100-2*stripe span
	// should survive and the max seq must be the last one).
	if got[len(got)-1].Seq != 100 {
		t.Fatalf("newest retained seq %d, want 100", got[len(got)-1].Seq)
	}
}

func TestEventOverflowDropsSilently(t *testing.T) {
	r := New(Config{SampleEvery: 1})
	b := r.Begin(0)
	for i := 0; i < 2*maxEvents; i++ {
		b.Rec(StageEval, 0, int64(i))
	}
	r.Finish(b)
	got := r.Traces()
	if len(got[0].Events) != maxEvents {
		t.Fatalf("got %d events, want capped at %d", len(got[0].Events), maxEvents)
	}
}

func TestBufferReuseResetsState(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 4})
	b := r.Begin(0)
	b.SetFlow(6, 0x0a000001, 0x0a000002, 40000, 80)
	b.SetVerdict("deny")
	for i := 0; i < maxEvents; i++ {
		b.Rec(StageEval, FlagDeny, 0)
	}
	r.Finish(b)
	// The pool has one buffer; the next Begin must not leak the old run.
	b2 := r.Begin(0)
	if n := b2.n.Load(); n != 1 { // just the begin event
		t.Fatalf("reused buffer has %d events", n)
	}
	if b2.verdict != "" || b2.srcIP != 0 {
		t.Fatalf("reused buffer leaked flow/verdict: %+v", b2)
	}
	r.Finish(b2)
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New(Config{SampleEvery: 1})
	b := r.Begin(0)
	b.SetFlow(6, 0x0a000001, 0x0a000002, 40000, 80)
	b.SetVerdict("pass")
	b.RecAux(StageQueryDone, FlagSrc|FlagCoalesced, int64(3*time.Millisecond), 2)
	r.Finish(b)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Traces()); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want one JSON line, got %q", line)
	}
	var decoded struct {
		ID     string `json:"id"`
		Flow   string `json:"flow"`
		Events []struct {
			Stage string `json:"stage"`
			Flags string `json:"flags"`
			Arg   int64  `json:"arg"`
			Aux   int32  `json:"aux"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("line not JSON: %v\n%s", err, line)
	}
	if decoded.Flow != "6 10.0.0.1:40000>10.0.0.2:80" {
		t.Fatalf("flow rendered %q", decoded.Flow)
	}
	if _, err := ParseID(decoded.ID); err != nil {
		t.Fatalf("exported id %q does not parse: %v", decoded.ID, err)
	}
	found := false
	for _, e := range decoded.Events {
		if e.Stage == "query-done" {
			found = true
			if e.Flags != "src,coalesced" || e.Arg != int64(3*time.Millisecond) || e.Aux != 2 {
				t.Fatalf("query-done event wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("query-done event missing from export")
	}
}

func TestParseIDRejectsJunk(t *testing.T) {
	for _, s := range []string{"", "0", "zz", "10000000000000000f"} {
		if _, err := ParseID(s); err == nil {
			t.Fatalf("ParseID(%q) accepted", s)
		}
	}
	id, err := ParseID(FormatID(0xdeadbeef))
	if err != nil || id != 0xdeadbeef {
		t.Fatalf("round trip: %x %v", id, err)
	}
}

func TestConcurrentRecordRetain(t *testing.T) {
	r := New(Config{SampleEvery: 2, SlowThreshold: time.Hour, RingSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := r.Begin(0)
				b.Rec(StageCacheProbe, 0, 0)
				b.Rec(StageEval, 0, 0)
				r.Finish(b)
			}
		}()
	}
	wg.Wait()
	total := r.Counters.Get("trace_sampled") + r.Counters.Get("trace_dropped") + r.Counters.Get("trace_slow_captured")
	if total != 1600 {
		t.Fatalf("conservation: sampled+dropped+slow=%d, want 1600", total)
	}
	for _, tr := range r.Traces() {
		if len(tr.Events) != 4 {
			t.Fatalf("trace has %d events, want 4", len(tr.Events))
		}
	}
}
