// Package trace is the per-decision flight recorder: a pooled, fixed-size
// span buffer rides each decision through the controller pipeline and
// records timestamped events at every stage boundary — megaflow and exact
// cache probes, the header-only pre-pass, query enqueue/completion per
// endpoint (annotated with the query engine's coalescing, retry, breaker
// and negative-cache behavior), policy eval, install fan-out, waiter
// release, and revocation voids. Completed traces land in a striped ring;
// the telemetry server exports them as JSON-lines and `identctl admin
// trace` drills into them.
//
// The recorder has three costs, kept strictly separated:
//
//   - Disabled (nil *Recorder anywhere in the pipeline): every instrument
//     point is a nil-receiver method call that returns immediately. The
//     decision path performs zero additional allocations — the ≤ 2
//     allocs/op budgets (BenchmarkM8/M12/M14) hold, enforced by
//     BenchmarkM15_Trace/off in bench-compare.
//   - Enabled, not retained: Begin takes a pooled buffer and Rec appends
//     into its fixed array; Finish returns the buffer to the pool. Two
//     time reads and a pool round-trip per decision, still allocation-free
//     in steady state.
//   - Retained (sampled, or slower than the slow threshold): the buffer is
//     copied into the ring. Only this path allocates.
//
// Sampling is deterministic on the trace ID (a bit-mix, not a per-process
// RNG), so when a forwarded packet-in carries its ID across the cluster
// link, the forwarder and the owner independently reach the same
// keep/drop verdict and the stitched halves are retained together. The
// slow-decision trigger is local and unconditional: even at sample rate 0
// a decision that crosses SlowThreshold is captured, which keeps the tail
// visible at negligible steady-state cost.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/metrics"
)

// Stage identifies one pipeline boundary a span event marks.
type Stage uint8

const (
	// StageBegin is recorded when a decision acquires its trace buffer.
	StageBegin Stage = iota
	// StageForward marks a non-owned packet-in handed to its owning
	// replica over the cluster link (recorded on the forwarder's half).
	StageForward
	// StageMegaflowProbe is the wildcard decision-cache probe.
	StageMegaflowProbe
	// StageCacheProbe is the exact response-cache probe.
	StageCacheProbe
	// StagePrepass is the header-only pre-pass.
	StagePrepass
	// StageQueryEnqueue marks one endpoint query entering the query plane.
	StageQueryEnqueue
	// StageQueryDone marks one endpoint query completing. Arg is the RTT
	// in nanoseconds, Aux the transport attempts the flight consumed.
	StageQueryDone
	// StageEval is policy evaluation.
	StageEval
	// StageInstall marks the install fan-out completing. Arg is the
	// number of datapaths modified.
	StageInstall
	// StageWaiterRelease marks parked duplicate packet-ins being
	// released. Arg is the waiter count.
	StageWaiterRelease
	// StageRevocationVoid marks the decision voided by a racing
	// revocation (the verdict was discarded, not installed).
	StageRevocationVoid
	// StageFinish closes the trace.
	StageFinish
)

var stageNames = [...]string{
	StageBegin:          "begin",
	StageForward:        "forward",
	StageMegaflowProbe:  "megaflow-probe",
	StageCacheProbe:     "cache-probe",
	StagePrepass:        "prepass",
	StageQueryEnqueue:   "query-enqueue",
	StageQueryDone:      "query-done",
	StageEval:           "eval",
	StageInstall:        "install",
	StageWaiterRelease:  "waiter-release",
	StageRevocationVoid: "revocation-void",
	StageFinish:         "finish",
}

// String returns the stage's stable wire/JSON name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage-" + strconv.Itoa(int(s))
}

// Event flags annotate a span event. Src/Dst tell the two endpoint
// queries apart; the query-plane flags carry the engine's view of how the
// flight was served.
const (
	// FlagHit marks a probe that hit (megaflow/cache) or a pre-pass that
	// decided the flow.
	FlagHit uint16 = 1 << iota
	// FlagSrc marks an event about the source endpoint.
	FlagSrc
	// FlagDst marks an event about the destination endpoint.
	FlagDst
	// FlagCoalesced marks a query that joined an already in-flight
	// flight instead of going to the wire (the leader's trace ID is the
	// one the daemon saw).
	FlagCoalesced
	// FlagNegCache marks a query answered from the engine's negative
	// cache without touching the wire.
	FlagNegCache
	// FlagBreaker marks a query fast-failed by an open circuit breaker.
	FlagBreaker
	// FlagErr marks a stage that completed with an error.
	FlagErr
	// FlagDeny marks an eval/finish whose verdict blocked the flow.
	FlagDeny
	// FlagStitched marks a begin that inherited its trace ID from
	// another replica's forward (or a retried local fallback).
	FlagStitched
	// FlagFallback marks a forward that failed and fell back to a local
	// decision.
	FlagFallback
)

var flagNames = []struct {
	bit  uint16
	name string
}{
	{FlagHit, "hit"},
	{FlagSrc, "src"},
	{FlagDst, "dst"},
	{FlagCoalesced, "coalesced"},
	{FlagNegCache, "negcache"},
	{FlagBreaker, "breaker"},
	{FlagErr, "err"},
	{FlagDeny, "deny"},
	{FlagStitched, "stitched"},
	{FlagFallback, "fallback"},
}

// FlagString renders a flag set as a stable comma-joined list.
func FlagString(f uint16) string {
	if f == 0 {
		return ""
	}
	var parts []string
	for _, fn := range flagNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, ",")
}

// Event is one recorded span event. At is the offset from the trace's
// start; Arg and Aux are stage-specific (see the Stage constants).
type Event struct {
	Stage Stage
	Flags uint16
	Aux   int32
	At    time.Duration
	Arg   int64
}

// maxEvents bounds one decision's span count. A full decision records
// roughly a dozen events; the headroom absorbs waiter bursts and future
// stages without reallocating. Overflow drops further events silently —
// the buffer is a flight recorder, not a log.
const maxEvents = 24

// Buffer is the pooled per-decision recording surface. All methods are
// nil-receiver safe so instrument points need no enabled-check of their
// own; a nil *Buffer IS the disabled state.
//
// Rec/RecAux may be called concurrently (the two endpoint-query
// completions run on independent worker goroutines); slots are reserved
// with an atomic cursor. Finish must only run once every recorder is done
// — the controller's pending-completion count provides that ordering.
type Buffer struct {
	id       uint64
	start    time.Time
	sampled  bool
	stitched bool
	n        atomic.Int32
	ev       [maxEvents]Event

	proto            uint8
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	verdict          string
}

// ID returns the trace ID (0 on a nil buffer).
func (b *Buffer) ID() uint64 {
	if b == nil {
		return 0
	}
	return b.id
}

// Sampled reports whether the deterministic sampler selected this trace.
func (b *Buffer) Sampled() bool { return b != nil && b.sampled }

// Rec appends one span event. Nil-safe; events past maxEvents are dropped.
func (b *Buffer) Rec(stage Stage, flags uint16, arg int64) {
	b.RecAux(stage, flags, arg, 0)
}

// RecAux is Rec with the auxiliary count field (e.g. transport attempts).
func (b *Buffer) RecAux(stage Stage, flags uint16, arg int64, aux int32) {
	if b == nil {
		return
	}
	i := b.n.Add(1) - 1
	if int(i) >= len(b.ev) {
		return
	}
	b.ev[i] = Event{Stage: stage, Flags: flags, Aux: aux, At: time.Since(b.start), Arg: arg}
}

// SetFlow records the decision's 5-tuple for export.
func (b *Buffer) SetFlow(proto uint8, srcIP, dstIP uint32, srcPort, dstPort uint16) {
	if b == nil {
		return
	}
	b.proto, b.srcIP, b.dstIP, b.srcPort, b.dstPort = proto, srcIP, dstIP, srcPort, dstPort
}

// SetVerdict records the decision outcome ("pass", "deny", ...). The
// string should be a constant; retained traces keep the reference.
func (b *Buffer) SetVerdict(v string) {
	if b == nil {
		return
	}
	b.verdict = v
}

// Trace is one retained (completed) trace: an immutable copy of a
// buffer's recording plus retention metadata.
type Trace struct {
	ID       uint64
	Seq      int64
	Start    time.Time
	Elapsed  time.Duration
	Sampled  bool
	Slow     bool
	Stitched bool

	Proto            uint8
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Verdict          string

	Events []Event
}

// FlowString renders the recorded 5-tuple.
func (t Trace) FlowString() string {
	return fmt.Sprintf("%d %s:%d>%s:%d", t.Proto, ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// FormatID renders a trace ID the way the JSON export, the admin channel
// and the /trace endpoint all spell it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses FormatID's rendering (leading zeros optional).
func ParseID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, fmt.Errorf("bad trace id %q", s)
	}
	return id, nil
}

// ringStripes spreads retention across independently locked rings so
// concurrent decisions retiring traces rarely share a lock, mirroring the
// audit ring's layout. Always a power of two.
const ringStripes = 8

type traceStripe struct {
	mu     sync.Mutex
	traces []Trace
	next   int
	full   bool
}

func (s *traceStripe) retain(t Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.traces) == 0 {
		return
	}
	s.traces[s.next] = t
	s.next++
	if s.next == len(s.traces) {
		s.next = 0
		s.full = true
	}
}

func (s *traceStripe) retained() []Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if s.full {
		n = len(s.traces)
	}
	out := make([]Trace, n)
	copy(out, s.traces[:n])
	return out
}

// Config parameterizes a Recorder.
type Config struct {
	// SampleEvery retains roughly 1 in N traces, selected
	// deterministically from the trace ID so stitched halves agree
	// across replicas. 1 retains every trace; 0 disables sampling
	// entirely (slow-capture still applies).
	SampleEvery int
	// SlowThreshold retains any decision that took at least this long,
	// regardless of sampling. 0 disables the slow trigger.
	SlowThreshold time.Duration
	// RingSize is the total retained-trace capacity across all stripes
	// (default 512).
	RingSize int
}

// Recorder owns the buffer pool, the sampler, and the retention ring.
// A nil *Recorder is the disabled state: Begin returns nil and Finish is
// a no-op, so components hold a possibly-nil recorder and never branch.
type Recorder struct {
	sampleEvery uint64
	slow        time.Duration

	// Counters: trace_sampled / trace_dropped / trace_slow_captured /
	// trace_stitched, exported through telemetry.RegisterTrace.
	Counters *metrics.Counter
	hot      struct {
		sampled, dropped, slowCaptured, stitched *atomic.Int64
	}

	idSeq   atomic.Uint64
	seed    uint64
	pool    sync.Pool
	stripes [ringStripes]traceStripe
	seq     atomic.Int64
}

// New creates an enabled recorder. Callers that want tracing off pass a
// nil *Recorder around instead.
func New(cfg Config) *Recorder {
	r := &Recorder{
		sampleEvery: uint64(max(cfg.SampleEvery, 0)),
		slow:        cfg.SlowThreshold,
		Counters:    metrics.NewCounter(),
		seed:        mix64(uint64(time.Now().UnixNano()) | 1),
	}
	r.hot.sampled = r.Counters.Cell("trace_sampled")
	r.hot.dropped = r.Counters.Cell("trace_dropped")
	r.hot.slowCaptured = r.Counters.Cell("trace_slow_captured")
	r.hot.stitched = r.Counters.Cell("trace_stitched")
	r.pool.New = func() any { return new(Buffer) }
	size := cfg.RingSize
	if size <= 0 {
		size = 512
	}
	per, rem := size/ringStripes, size%ringStripes
	for i := range r.stripes {
		sz := per
		if i < rem {
			sz++
		}
		r.stripes[i].traces = make([]Trace, sz)
	}
	return r
}

// mix64 is splitmix64's finalizer: a fixed, process-independent bit mix
// used for both ID generation and the deterministic sampler.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewID mints a fresh non-zero trace ID.
func (r *Recorder) NewID() uint64 {
	id := mix64(r.seed ^ r.idSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// sampledID is the deterministic sampler: pure function of the ID, so
// every replica that sees this trace reaches the same verdict.
func (r *Recorder) sampledID(id uint64) bool {
	switch r.sampleEvery {
	case 0:
		return false
	case 1:
		return true
	}
	return mix64(id)%r.sampleEvery == 0
}

// Begin takes a pooled buffer for one decision. inherited is the trace ID
// carried in on a forwarded packet-in (0 = fresh decision); a non-zero
// inherited ID stitches this trace to the forwarder's and counts
// trace_stitched. Returns nil on a nil recorder.
func (r *Recorder) Begin(inherited uint64) *Buffer {
	if r == nil {
		return nil
	}
	id := inherited
	if id == 0 {
		id = r.NewID()
	}
	b := r.pool.Get().(*Buffer)
	b.id = id
	b.start = time.Now()
	b.sampled = r.sampledID(id)
	b.stitched = inherited != 0
	b.n.Store(0)
	b.proto, b.srcIP, b.dstIP, b.srcPort, b.dstPort = 0, 0, 0, 0, 0
	b.verdict = ""
	if b.stitched {
		r.hot.stitched.Add(1)
		b.Rec(StageBegin, FlagStitched, 0)
	} else {
		b.Rec(StageBegin, 0, 0)
	}
	return b
}

// Finish retires a buffer: retained into the ring when sampled or slower
// than the threshold, dropped (and counted) otherwise. The buffer returns
// to the pool either way and must not be used afterwards. Nil-safe on
// both receiver and argument.
func (r *Recorder) Finish(b *Buffer) {
	if r == nil || b == nil {
		return
	}
	elapsed := time.Since(b.start)
	b.Rec(StageFinish, 0, 0)
	slow := r.slow > 0 && elapsed >= r.slow
	if b.sampled || slow {
		n := int(b.n.Load())
		if n > len(b.ev) {
			n = len(b.ev)
		}
		t := Trace{
			ID:       b.id,
			Seq:      r.seq.Add(1),
			Start:    b.start,
			Elapsed:  elapsed,
			Sampled:  b.sampled,
			Slow:     slow,
			Stitched: b.stitched,
			Proto:    b.proto,
			SrcIP:    b.srcIP,
			DstIP:    b.dstIP,
			SrcPort:  b.srcPort,
			DstPort:  b.dstPort,
			Verdict:  b.verdict,
			Events:   append([]Event(nil), b.ev[:n]...),
		}
		r.stripes[t.Seq&(ringStripes-1)].retain(t)
		if b.sampled {
			r.hot.sampled.Add(1)
		} else {
			r.hot.slowCaptured.Add(1)
		}
	} else {
		r.hot.dropped.Add(1)
	}
	r.pool.Put(b)
}

// Traces returns every retained trace, oldest first.
func (r *Recorder) Traces() []Trace {
	if r == nil {
		return nil
	}
	var out []Trace
	for i := range r.stripes {
		out = append(out, r.stripes[i].retained()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Slow returns the retained traces captured (or also qualifying) as slow.
func (r *Recorder) Slow() []Trace {
	all := r.Traces()
	out := all[:0]
	for _, t := range all {
		if t.Slow {
			out = append(out, t)
		}
	}
	return out
}

// Find returns every retained trace with the given ID (a stitched
// decision retained on a replica that both forwarded and decided — e.g.
// after a fallback — yields more than one).
func (r *Recorder) Find(id uint64) []Trace {
	all := r.Traces()
	out := all[:0]
	for _, t := range all {
		if t.ID == id {
			out = append(out, t)
		}
	}
	return out
}

// JSON-lines export: one object per trace, events inline, IDs and stages
// spelled exactly as the admin channel spells them.
type eventJSON struct {
	Stage string `json:"stage"`
	AtUS  int64  `json:"at_us"`
	Flags string `json:"flags,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
	Aux   int32  `json:"aux,omitempty"`
}

type traceJSON struct {
	ID        string      `json:"id"`
	Seq       int64       `json:"seq"`
	Start     string      `json:"start"`
	ElapsedUS int64       `json:"elapsed_us"`
	Sampled   bool        `json:"sampled"`
	Slow      bool        `json:"slow"`
	Stitched  bool        `json:"stitched"`
	Flow      string      `json:"flow"`
	Verdict   string      `json:"verdict,omitempty"`
	Events    []eventJSON `json:"events"`
}

// WriteJSON writes traces as JSON-lines.
func WriteJSON(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	for _, t := range traces {
		tj := traceJSON{
			ID:        FormatID(t.ID),
			Seq:       t.Seq,
			Start:     t.Start.UTC().Format(time.RFC3339Nano),
			ElapsedUS: t.Elapsed.Microseconds(),
			Sampled:   t.Sampled,
			Slow:      t.Slow,
			Stitched:  t.Stitched,
			Flow:      t.FlowString(),
			Verdict:   t.Verdict,
			Events:    make([]eventJSON, len(t.Events)),
		}
		for i, e := range t.Events {
			tj.Events[i] = eventJSON{
				Stage: e.Stage.String(),
				AtUS:  e.At.Microseconds(),
				Flags: FlagString(e.Flags),
				Arg:   e.Arg,
				Aux:   e.Aux,
			}
		}
		if err := enc.Encode(tj); err != nil {
			return err
		}
	}
	return nil
}
