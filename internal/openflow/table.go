// Package openflow implements the substrate the paper assumes (§3.1): flow
// tables in switches remotely managed by a controller. A packet that misses
// the table is sent to the controller; the controller's decision is cached
// as a flow entry with the 10-tuple match, actions, and idle/hard timeouts,
// exactly the contract ident++ relies on. The package provides the switch
// datapath, an OpenFlow-1.0-style binary message codec, and a TCP secure
// channel, plus an in-process channel for the simulator.
package openflow

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
)

// ActionType discriminates entry actions.
type ActionType int

// Action types. OFPP-style special ports are modelled as distinct action
// types rather than magic port numbers.
const (
	ActionOutput     ActionType = iota // forward on a specific port
	ActionFlood                        // forward on every port except ingress
	ActionController                   // punt to the controller
	ActionDrop                         // explicit drop
)

// Action is one forwarding action.
type Action struct {
	Type ActionType
	Port uint16 // for ActionOutput
}

// Drop is the action list meaning "drop" (an empty action list in OpenFlow
// 1.0 drops; an explicit value keeps call sites readable).
var Drop = []Action{{Type: ActionDrop}}

// outputIntern caches the canonical single-action list per port. The
// controller builds an Output list for every flow-mod it installs, and the
// switch retains the slice in its table entry, so the lists cannot come
// from per-decision scratch; interning makes them shared immutable
// constants instead of per-install garbage. The table lives in BSS and only
// the pages for ports actually used are ever faulted in.
var outputIntern [1 << 16]atomic.Pointer[[]Action]

// Output returns the single-action list forwarding on port. The returned
// slice is interned and shared: callers must treat it (like Drop) as
// immutable.
func Output(port uint16) []Action {
	if p := outputIntern[port].Load(); p != nil {
		return *p
	}
	a := []Action{{Type: ActionOutput, Port: port}}
	outputIntern[port].CompareAndSwap(nil, &a)
	return *outputIntern[port].Load()
}

// Entry is one cached flow decision.
type Entry struct {
	Match    flow.Match
	Priority int
	Actions  []Action
	Cookie   uint64

	// IdleTimeout evicts the entry after inactivity; HardTimeout evicts it
	// unconditionally. Zero disables the respective timeout.
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// Counters.
	Packets uint64
	Bytes   uint64

	installed time.Time
	lastUsed  time.Time
}

// RemovedReason says why an entry left the table.
type RemovedReason int

// Removal reasons, mirroring OFPRR_*.
const (
	RemovedIdleTimeout RemovedReason = iota
	RemovedHardTimeout
	RemovedDelete
)

// Removed reports an evicted entry to the controller (OFPT_FLOW_REMOVED).
type Removed struct {
	Entry  *Entry
	Reason RemovedReason
}

// Table is a switch's flow table: exact-match entries in a hash map, flow-
// granularity entries (the ident++ controller's 5-tuple caches, L2 fields
// wildcarded) in a second hash map keyed by the 5-tuple, and a priority-
// ordered wildcard list behind both — the standard OpenFlow 1.0 software-
// switch layout, with the dominant entry class indexed instead of scanned.
// The five map is what makes delete-by-flow O(1): revoking one flow's
// cached verdict no longer walks the whole table. All methods are safe for
// concurrent use.
type Table struct {
	mu       sync.RWMutex
	exact    map[flow.Ten]*Entry
	five     map[flow.Five]*Entry // 5-tuple-granularity entries (FiveMatch)
	wild     []*Entry             // sorted by Priority descending, stable
	capacity int
}

// NewTable creates a table. capacity bounds the number of entries (0 means
// unbounded); hardware tables are finite and E6/M5 exercise eviction.
func NewTable(capacity int) *Table {
	return &Table{
		exact:    make(map[flow.Ten]*Entry),
		five:     make(map[flow.Five]*Entry),
		capacity: capacity,
	}
}

// fiveGranular reports whether m is exactly the controller's flow-cache
// shape: all five tuple fields matched exactly, everything else
// wildcarded (flow.FiveMatch's output).
func fiveGranular(m flow.Match) (flow.Five, bool) {
	const l2Wild = flow.WInPort | flow.WMACSrc | flow.WMACDst | flow.WEthType | flow.WVLAN
	if m.Wild != l2Wild || m.SrcBits < 32 || m.DstBits < 32 {
		return flow.Five{}, false
	}
	return m.Tuple.Five(), true
}

// Len returns the number of installed entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.exact) + len(t.five) + len(t.wild)
}

// ErrTableFull is returned when inserting into a full table.
type ErrTableFull struct{ Capacity int }

func (e ErrTableFull) Error() string { return "openflow: flow table full" }

// Insert installs an entry at now. An exact-match or flow-granularity
// entry replaces any previous entry with the identical tuple; wildcard
// entries accumulate.
func (t *Table) Insert(e *Entry, now time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e.installed = now
	e.lastUsed = now
	if e.Match.IsExact() {
		if _, exists := t.exact[e.Match.Tuple]; !exists && t.full() {
			return ErrTableFull{t.capacity}
		}
		t.exact[e.Match.Tuple] = e
		return nil
	}
	if f, ok := fiveGranular(e.Match); ok {
		if _, exists := t.five[f]; !exists && t.full() {
			return ErrTableFull{t.capacity}
		}
		t.five[f] = e
		return nil
	}
	if t.full() {
		return ErrTableFull{t.capacity}
	}
	t.wild = append(t.wild, e)
	sort.SliceStable(t.wild, func(i, j int) bool { return t.wild[i].Priority > t.wild[j].Priority })
	return nil
}

func (t *Table) full() bool {
	return t.capacity > 0 && len(t.exact)+len(t.five)+len(t.wild) >= t.capacity
}

// Lookup finds the matching entry for a tuple, updating its counters and
// idle timer. It returns nil on a table miss. Match order: exact first
// (the OpenFlow convention that exact entries beat wildcards, unchanged
// from before the five index), then the flow-granularity index — unless a
// strictly higher-priority wildcard entry also covers the tuple, which
// preserves the priority semantics the scan-only table had — then the
// wildcard scan.
func (t *Table) Lookup(ten flow.Ten, size int, now time.Time) *Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.exact[ten]; ok {
		e.hit(size, now)
		return e
	}
	if e, ok := t.five[ten.Five()]; ok {
		if w := t.wildAboveLocked(e.Priority, ten); w != nil {
			w.hit(size, now)
			return w
		}
		e.hit(size, now)
		return e
	}
	for _, e := range t.wild {
		if e.Match.Covers(ten) {
			e.hit(size, now)
			return e
		}
	}
	return nil
}

// wildAboveLocked returns the first wildcard entry covering ten with
// Priority strictly above p. The wild list is priority-sorted descending,
// so the scan stops at the first entry at or below p — free when the list
// is empty (the controller-programmed common case) and cheap otherwise.
func (t *Table) wildAboveLocked(p int, ten flow.Ten) *Entry {
	for _, e := range t.wild {
		if e.Priority <= p {
			return nil
		}
		if e.Match.Covers(ten) {
			return e
		}
	}
	return nil
}

func (e *Entry) hit(size int, now time.Time) {
	e.Packets++
	e.Bytes += uint64(size)
	e.lastUsed = now
}

// Peek is Lookup without counter updates, for stats handlers.
func (t *Table) Peek(ten flow.Ten) *Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e, ok := t.exact[ten]; ok {
		return e
	}
	if e, ok := t.five[ten.Five()]; ok {
		if w := t.wildAboveLocked(e.Priority, ten); w != nil {
			return w
		}
		return e
	}
	for _, e := range t.wild {
		if e.Match.Covers(ten) {
			return e
		}
	}
	return nil
}

// Expire removes entries whose idle or hard timeout has elapsed at now and
// returns them, for FLOW_REMOVED notifications.
func (t *Table) Expire(now time.Time) []Removed {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Removed
	for k, e := range t.exact {
		if reason, expired := e.expired(now); expired {
			delete(t.exact, k)
			out = append(out, Removed{Entry: e, Reason: reason})
		}
	}
	for k, e := range t.five {
		if reason, expired := e.expired(now); expired {
			delete(t.five, k)
			out = append(out, Removed{Entry: e, Reason: reason})
		}
	}
	kept := t.wild[:0]
	for _, e := range t.wild {
		if reason, expired := e.expired(now); expired {
			out = append(out, Removed{Entry: e, Reason: reason})
			continue
		}
		kept = append(kept, e)
	}
	t.wild = kept
	return out
}

func (e *Entry) expired(now time.Time) (RemovedReason, bool) {
	if e.HardTimeout > 0 && now.Sub(e.installed) >= e.HardTimeout {
		return RemovedHardTimeout, true
	}
	if e.IdleTimeout > 0 && now.Sub(e.lastUsed) >= e.IdleTimeout {
		return RemovedIdleTimeout, true
	}
	return 0, false
}

// DeleteWhere removes entries matching pred and returns them. The
// controller uses it to revoke cached decisions when policy changes —
// the paper's "override, audit, and revoke the delegation" (§7).
func (t *Table) DeleteWhere(pred func(*Entry) bool) []Removed {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Removed
	for k, e := range t.exact {
		if pred(e) {
			delete(t.exact, k)
			out = append(out, Removed{Entry: e, Reason: RemovedDelete})
		}
	}
	for k, e := range t.five {
		if pred(e) {
			delete(t.five, k)
			out = append(out, Removed{Entry: e, Reason: RemovedDelete})
		}
	}
	kept := t.wild[:0]
	for _, e := range t.wild {
		if pred(e) {
			out = append(out, Removed{Entry: e, Reason: RemovedDelete})
			continue
		}
		kept = append(kept, e)
	}
	t.wild = kept
	return out
}

// DeleteFlow removes the flow-granularity entry for f (when cookie is
// non-zero, only if the entry carries it) in O(1) — the revocation plane's
// delete-by-flow, which must not scan a production-size table per revoked
// flow. Entries at other granularities that a FiveMatch(f) delete would
// also cover are the caller's (Switch.Apply's) concern; it scans them only
// when any exist.
func (t *Table) DeleteFlow(f flow.Five, cookie uint64) []Removed {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.five[f]
	if !ok || (cookie != 0 && e.Cookie != cookie) {
		return nil
	}
	delete(t.five, f)
	return []Removed{{Entry: e, Reason: RemovedDelete}}
}

// OtherGranularities returns how many entries live outside the five map —
// the Switch's cue that a flow-granularity delete cannot stop at the O(1)
// path.
func (t *Table) OtherGranularities() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.exact) + len(t.wild)
}

// Entries returns a snapshot of all entries (stats requests).
func (t *Table) Entries() []*Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Entry, 0, len(t.exact)+len(t.five)+len(t.wild))
	for _, e := range t.exact {
		out = append(out, e)
	}
	for _, e := range t.five {
		out = append(out, e)
	}
	out = append(out, t.wild...)
	return out
}

// FiveTuples appends the five-tuple of every flow-granularity entry to dst
// and returns it. This is the enumeration a cluster takeover sweep needs:
// after a ring rebuild, the new owner of a flow must find entries a
// departed replica installed for it, and those are exactly the
// flow-granularity entries (megaflow classes live in the wildcard tier
// and expire by TTL and timeout instead).
func (t *Table) FiveTuples(dst []flow.Five) []flow.Five {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for f := range t.five {
		dst = append(dst, f)
	}
	return dst
}
