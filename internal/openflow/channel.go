package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
)

// Datapath abstracts "a switch the controller can program": the in-process
// *Switch and the TCP-attached RemoteSwitch both implement it, so the
// ident++ controller core is transport-agnostic.
type Datapath interface {
	DatapathID() uint64
	Apply(FlowMod) error
	PacketOut(port uint16, frame []byte)
	ReleaseBuffer(bufID uint32)
}

// DatapathID implements Datapath.
func (s *Switch) DatapathID() uint64 { return s.ID }

var _ Datapath = (*Switch)(nil)

// Agent runs on the switch side of a TCP secure channel: it registers as
// the switch's Controller, relays PacketIn/FlowRemoved to the remote
// controller, and applies FlowMod/PacketOut messages it receives.
type Agent struct {
	sw   *Switch
	conn net.Conn

	mu     sync.Mutex
	closed bool
	xid    atomic.Uint32
}

// Connect dials the controller, performs the hello exchange (hello bodies
// carry the datapath id), and starts relaying. The agent installs itself as
// the switch's controller.
func Connect(sw *Switch, addr string, timeout time.Duration) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	var hello [8]byte
	binary.BigEndian.PutUint64(hello[:], sw.ID)
	if err := WriteMsg(conn, Msg{Type: MsgHello, Body: hello[:]}); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	m, err := ReadMsg(conn)
	if err != nil || m.Type != MsgHello {
		conn.Close()
		return nil, fmt.Errorf("openflow: hello exchange failed: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	a := &Agent{sw: sw, conn: conn}
	sw.SetController(a)
	go a.readLoop()
	return a, nil
}

// HandlePacketIn implements Controller by relaying the event.
func (a *Agent) HandlePacketIn(_ *Switch, ev PacketIn) {
	a.send(EncodePacketIn(ev, a.xid.Add(1)))
}

// HandleFlowRemoved implements Controller by relaying the event.
func (a *Agent) HandleFlowRemoved(_ *Switch, ev FlowRemoved) {
	a.send(EncodeFlowRemoved(ev, a.xid.Add(1)))
}

func (a *Agent) send(m Msg) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	if err := WriteMsg(a.conn, m); err != nil {
		a.closed = true
		a.conn.Close()
	}
}

func (a *Agent) readLoop() {
	for {
		m, err := ReadMsg(a.conn)
		if err != nil {
			a.Close()
			return
		}
		switch m.Type {
		case MsgFlowMod:
			mod, err := DecodeFlowMod(m)
			if err == nil {
				a.sw.Apply(mod)
			}
		case MsgPacketOut:
			po, err := DecodePacketOut(m)
			if err == nil {
				if po.BufferID != BufferNone && len(po.Frame) == 0 {
					a.sw.ReleaseBuffer(po.BufferID)
				} else {
					a.sw.PacketOut(po.Port, po.Frame)
				}
			}
		case MsgEchoRequest:
			a.send(Msg{Type: MsgEchoReply, Xid: m.Xid, Body: m.Body})
		}
	}
}

// Close tears the channel down.
func (a *Agent) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.closed {
		a.closed = true
		a.conn.Close()
	}
}

// RemoteSwitch is the controller-side handle for a TCP-attached switch.
type RemoteSwitch struct {
	id   uint64
	conn net.Conn

	mu     sync.Mutex
	closed bool
	xid    atomic.Uint32
}

// DatapathID implements Datapath.
func (r *RemoteSwitch) DatapathID() uint64 { return r.id }

// Apply implements Datapath by sending a FlowMod message.
func (r *RemoteSwitch) Apply(mod FlowMod) error {
	return r.send(EncodeFlowMod(mod, r.xid.Add(1)))
}

// PacketOut implements Datapath.
func (r *RemoteSwitch) PacketOut(port uint16, frame []byte) {
	r.send(EncodePacketOut(PacketOutMsg{BufferID: BufferNone, Port: port, Frame: frame}, r.xid.Add(1)))
}

// ReleaseBuffer implements Datapath: a PacketOut naming the buffer with no
// frame and no output releases (drops) it.
func (r *RemoteSwitch) ReleaseBuffer(bufID uint32) {
	r.send(EncodePacketOut(PacketOutMsg{BufferID: bufID}, r.xid.Add(1)))
}

func (r *RemoteSwitch) send(m Msg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("openflow: channel closed")
	}
	if err := WriteMsg(r.conn, m); err != nil {
		r.closed = true
		r.conn.Close()
		return err
	}
	return nil
}

// Close tears the channel down.
func (r *RemoteSwitch) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.closed = true
		r.conn.Close()
	}
}

// ChannelHandler receives events from TCP-attached switches.
type ChannelHandler interface {
	SwitchConnected(sw *RemoteSwitch)
	PacketIn(sw *RemoteSwitch, ev PacketIn)
	FlowRemoved(sw *RemoteSwitch, ev FlowRemoved)
	SwitchDisconnected(sw *RemoteSwitch)
}

// ChannelServer accepts switch secure-channel connections for a controller.
type ChannelServer struct {
	Handler ChannelHandler

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewChannelServer creates a server delivering events to handler.
func NewChannelServer(h ChannelHandler) *ChannelServer {
	return &ChannelServer{Handler: h}
}

// Listen binds addr and serves in the background, returning the bound
// address.
func (s *ChannelServer) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return l.Addr(), nil
}

func (s *ChannelServer) serveConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := ReadMsg(conn)
	if err != nil || m.Type != MsgHello || len(m.Body) < 8 {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if err := WriteMsg(conn, Msg{Type: MsgHello}); err != nil {
		return
	}
	rs := &RemoteSwitch{id: binary.BigEndian.Uint64(m.Body[:8]), conn: conn}
	s.Handler.SwitchConnected(rs)
	defer s.Handler.SwitchDisconnected(rs)
	for {
		m, err := ReadMsg(conn)
		if err != nil {
			return
		}
		switch m.Type {
		case MsgPacketIn:
			if ev, err := DecodePacketIn(m); err == nil {
				s.Handler.PacketIn(rs, ev)
			}
		case MsgFlowRemoved:
			if ev, err := DecodeFlowRemoved(m); err == nil {
				s.Handler.FlowRemoved(rs, ev)
			}
		case MsgEchoRequest:
			WriteMsg(conn, Msg{Type: MsgEchoReply, Xid: m.Xid, Body: m.Body})
		}
	}
}

// Close stops the server.
func (s *ChannelServer) Close() {
	s.mu.Lock()
	l := s.listener
	s.closed = true
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
}

// FlowTuples exposes the switch table's flow-granularity tuples for the
// cluster takeover sweep (see Table.FiveTuples). Only in-process switches
// are enumerable; a RemoteSwitch's table lives across the wire, and its
// orphaned entries age out by idle timeout instead.
func (s *Switch) FlowTuples(dst []flow.Five) []flow.Five {
	return s.Table.FiveTuples(dst)
}
