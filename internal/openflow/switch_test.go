package openflow

import (
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/packet"
)

var (
	macA = netaddr.MustParseMAC("02:00:00:00:00:0a")
	macB = netaddr.MustParseMAC("02:00:00:00:00:0b")
	ipA  = netaddr.MustParseIP("10.0.0.1")
	ipB  = netaddr.MustParseIP("10.0.0.2")
)

func testFrame(dp netaddr.Port) []byte {
	return packet.TCPFrame(macA, macB, flow.Five{
		SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: dp,
	}, packet.TCPSyn, nil)
}

// recorder collects switch outputs and controller events.
type recorder struct {
	mu sync.Mutex
	tx []struct {
		port  uint16
		frame []byte
	}
	packetIns []PacketIn
	removed   []FlowRemoved
}

func (r *recorder) Transmit(_ *Switch, port uint16, frame []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tx = append(r.tx, struct {
		port  uint16
		frame []byte
	}{port, frame})
}

func (r *recorder) HandlePacketIn(_ *Switch, ev PacketIn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packetIns = append(r.packetIns, ev)
}

func (r *recorder) HandleFlowRemoved(_ *Switch, ev FlowRemoved) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removed = append(r.removed, ev)
}

func (r *recorder) txCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tx)
}

func newTestSwitch(rec *recorder) *Switch {
	sw := NewSwitch(1, "s1", 0)
	sw.AddPort(1)
	sw.AddPort(2)
	sw.AddPort(3)
	sw.SetController(rec)
	sw.SetTransmitter(rec)
	return sw
}

func TestTableMissRaisesPacketIn(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	sw.Receive(1, testFrame(80))
	if len(rec.packetIns) != 1 {
		t.Fatalf("packet-ins = %d", len(rec.packetIns))
	}
	ev := rec.packetIns[0]
	if ev.InPort != 1 || ev.SwitchID != 1 || ev.Reason != ReasonNoMatch {
		t.Errorf("event = %+v", ev)
	}
	if ev.Tuple.DstPort != 80 {
		t.Errorf("tuple = %v", ev.Tuple)
	}
	if ev.BufferID == BufferNone {
		t.Error("frame should be buffered")
	}
	if sw.Stats.TableMisses.Load() != 1 || sw.Stats.PacketIns.Load() != 1 {
		t.Error("miss counters wrong")
	}
}

func TestFlowModReleasesBufferedFrame(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	sw.Receive(1, testFrame(80))
	ev := rec.packetIns[0]
	// Figure 1 steps 4-5: controller approves, installs the entry naming
	// the buffered packet, which then proceeds out port 2.
	err := sw.Apply(FlowMod{
		Match:    flow.FiveMatch(ev.Tuple.Five()),
		Priority: 10,
		Actions:  Output(2),
		BufferID: ev.BufferID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.txCount() != 1 || rec.tx[0].port != 2 {
		t.Fatalf("buffered frame not forwarded: %+v", rec.tx)
	}
	// Subsequent packets hit the table without controller involvement.
	sw.Receive(1, testFrame(80))
	if len(rec.packetIns) != 1 {
		t.Error("cached flow still punted to controller")
	}
	if rec.txCount() != 2 {
		t.Error("cached flow not forwarded")
	}
}

func TestDenyReleasesBufferWithoutForwarding(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	sw.Receive(1, testFrame(80))
	ev := rec.packetIns[0]
	sw.Apply(FlowMod{Match: flow.FiveMatch(ev.Tuple.Five()), Priority: 10, Actions: Drop})
	sw.ReleaseBuffer(ev.BufferID)
	if rec.txCount() != 0 {
		t.Error("denied packet leaked")
	}
	before := sw.Stats.PacketIns.Load()
	sw.Receive(1, testFrame(80))
	if sw.Stats.PacketIns.Load() != before {
		t.Error("drop entry not cached")
	}
	if rec.txCount() != 0 {
		t.Error("dropped flow forwarded")
	}
}

func TestFloodAction(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	sw.Apply(FlowMod{Match: flow.MatchAll(), Actions: []Action{{Type: ActionFlood}}})
	sw.Receive(1, testFrame(80))
	if rec.txCount() != 2 {
		t.Fatalf("flood tx = %d, want 2 (all ports except ingress)", rec.txCount())
	}
	for _, tx := range rec.tx {
		if tx.port == 1 {
			t.Error("flood echoed out ingress port")
		}
	}
}

func TestMalformedFrameDropped(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	frame := testFrame(80)
	frame[20] ^= 0xff // corrupt IP header
	sw.Receive(1, frame)
	if len(rec.packetIns) != 0 {
		t.Error("malformed frame reached controller")
	}
	if sw.Stats.DecodeErrs.Load() != 1 {
		t.Error("decode error not counted")
	}
}

func TestNoControllerDropsMiss(t *testing.T) {
	rec := &recorder{}
	sw := NewSwitch(1, "s1", 0)
	sw.SetTransmitter(rec)
	sw.Receive(1, testFrame(80))
	if sw.Stats.Drops.Load() != 1 {
		t.Error("miss without controller should drop")
	}
}

func TestIdleTimeoutNotifiesController(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	now := time.Now()
	clock := now
	sw.Clock = func() time.Time { return clock }
	sw.Apply(FlowMod{
		Match:         flow.FiveMatch(flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: 80}),
		Actions:       Output(2),
		IdleTimeout:   time.Second,
		NotifyRemoved: true,
		BufferID:      BufferNone,
		Cookie:        42,
	})
	clock = now.Add(2 * time.Second)
	sw.Tick()
	if len(rec.removed) != 1 {
		t.Fatalf("removed = %d", len(rec.removed))
	}
	if rec.removed[0].Cookie != 42 || rec.removed[0].Reason != RemovedIdleTimeout {
		t.Errorf("removed event = %+v", rec.removed[0])
	}
}

func TestDeleteByCookie(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	f := flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 80}
	sw.Apply(FlowMod{Match: flow.FiveMatch(f), Actions: Output(2), Cookie: 7, BufferID: BufferNone})
	sw.Apply(FlowMod{Match: flow.FiveMatch(f.Reverse()), Actions: Output(1), Cookie: 9, BufferID: BufferNone})
	sw.Apply(FlowMod{Delete: true, Cookie: 7, Match: flow.MatchAll(), NotifyRemoved: true, BufferID: BufferNone})
	if sw.Table.Len() != 1 {
		t.Errorf("table len = %d, want 1", sw.Table.Len())
	}
	if len(rec.removed) != 1 || rec.removed[0].Cookie != 7 {
		t.Errorf("removal notification wrong: %+v", rec.removed)
	}
}

func TestPacketOut(t *testing.T) {
	rec := &recorder{}
	sw := newTestSwitch(rec)
	frame := testFrame(80)
	sw.PacketOut(3, frame)
	if rec.txCount() != 1 || rec.tx[0].port != 3 {
		t.Fatalf("packet-out tx = %+v", rec.tx)
	}
}

func BenchmarkSwitchCachedForwarding(b *testing.B) {
	rec := &recorder{}
	sw := NewSwitch(1, "s1", 0)
	sw.AddPort(1)
	sw.AddPort(2)
	sw.SetTransmitter(nullTransmitter{})
	sw.SetController(rec)
	frame := testFrame(80)
	var p packet.Packet
	if err := p.DecodeInto(frame); err != nil {
		b.Fatal(err)
	}
	sw.Apply(FlowMod{Match: flow.FiveMatch(p.Five()), Actions: Output(2), BufferID: BufferNone})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw.Receive(1, frame)
	}
	if sw.Stats.PacketIns.Load() != 0 {
		b.Fatal("unexpected packet-ins")
	}
}

type nullTransmitter struct{}

func (nullTransmitter) Transmit(*Switch, uint16, []byte) {}

// TestFiveIndexRespectsWildcardPriority pins the precedence contract after
// the five-granularity index: a higher-priority wildcard entry still beats
// an indexed flow entry, a lower-priority one does not.
func TestFiveIndexRespectsWildcardPriority(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	var ten flow.Ten
	ten.EthType = flow.EthTypeIPv4
	ten.Proto = netaddr.ProtoTCP
	ten.SrcIP = netaddr.MustParseIP("10.0.0.1")
	ten.DstIP = netaddr.MustParseIP("10.0.0.2")
	ten.SrcPort, ten.DstPort = 1234, 80

	flowEntry := &Entry{Match: flow.FiveMatch(ten.Five()), Priority: 100, Actions: Output(1)}
	if err := tb.Insert(flowEntry, now); err != nil {
		t.Fatal(err)
	}
	low := &Entry{Match: flow.MatchAll(), Priority: 1, Actions: Output(2)}
	if err := tb.Insert(low, now); err != nil {
		t.Fatal(err)
	}
	if got := tb.Lookup(ten, 64, now); got != flowEntry {
		t.Fatalf("low-priority wildcard shadowed the flow entry: %+v", got)
	}
	high := &Entry{Match: flow.MatchAll(), Priority: 1 << 15, Actions: Output(3)}
	if err := tb.Insert(high, now); err != nil {
		t.Fatal(err)
	}
	if got := tb.Lookup(ten, 64, now); got != high {
		t.Fatalf("high-priority wildcard did not override the flow entry: %+v", got)
	}
	if got := tb.Peek(ten); got != high {
		t.Fatalf("Peek disagrees with Lookup: %+v", got)
	}
}
