package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// Wire protocol version, in the spirit of OpenFlow 1.0's 0x01.
const ProtoVersion = 0x01

// Message types.
const (
	MsgHello uint8 = iota
	MsgError
	MsgEchoRequest
	MsgEchoReply
	MsgFeaturesRequest
	MsgFeaturesReply
	MsgPacketIn
	MsgPacketOut
	MsgFlowMod
	MsgFlowRemoved
	MsgBarrierRequest
	MsgBarrierReply
)

// MaxMsgSize bounds any single protocol message read.
const MaxMsgSize = 9216 + 64 // jumbo frame + headers

const msgHeaderLen = 8

// Msg is one framed secure-channel message.
type Msg struct {
	Type uint8
	Xid  uint32
	Body []byte
}

// WriteMsg writes a framed message.
func WriteMsg(w io.Writer, m Msg) error {
	if msgHeaderLen+len(m.Body) > MaxMsgSize {
		return fmt.Errorf("openflow: message too large (%d bytes)", len(m.Body))
	}
	var hdr [msgHeaderLen]byte
	hdr[0] = ProtoVersion
	hdr[1] = m.Type
	binary.BigEndian.PutUint16(hdr[2:4], uint16(msgHeaderLen+len(m.Body)))
	binary.BigEndian.PutUint32(hdr[4:8], m.Xid)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Body)
	return err
}

// ReadMsg reads one framed message, bounding the allocation.
func ReadMsg(r io.Reader) (Msg, error) {
	var hdr [msgHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, err
	}
	if hdr[0] != ProtoVersion {
		return Msg{}, fmt.Errorf("openflow: unsupported version %#02x", hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < msgHeaderLen || length > MaxMsgSize {
		return Msg{}, fmt.Errorf("openflow: bad message length %d", length)
	}
	m := Msg{Type: hdr[1], Xid: binary.BigEndian.Uint32(hdr[4:8])}
	m.Body = make([]byte, length-msgHeaderLen)
	if _, err := io.ReadFull(r, m.Body); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// Match wire encoding: 4 wildcards + 2 inport + 6+6 MACs + 2 ethtype +
// 2 vlan + 4+4 IPs + 1 proto + 1 srcbits + 1 dstbits + 1 pad + 2+2 ports.
const matchLen = 38

func putMatch(b []byte, m flow.Match) {
	binary.BigEndian.PutUint32(b[0:4], uint32(m.Wild))
	binary.BigEndian.PutUint16(b[4:6], m.Tuple.InPort)
	src := m.Tuple.MACSrc.Bytes()
	dst := m.Tuple.MACDst.Bytes()
	copy(b[6:12], src[:])
	copy(b[12:18], dst[:])
	binary.BigEndian.PutUint16(b[18:20], m.Tuple.EthType)
	binary.BigEndian.PutUint16(b[20:22], m.Tuple.VLAN)
	binary.BigEndian.PutUint32(b[22:26], uint32(m.Tuple.SrcIP))
	binary.BigEndian.PutUint32(b[26:30], uint32(m.Tuple.DstIP))
	b[30] = byte(m.Tuple.Proto)
	b[31] = byte(m.SrcBits)
	b[32] = byte(m.DstBits)
	b[33] = 0
	binary.BigEndian.PutUint16(b[34:36], uint16(m.Tuple.SrcPort))
	binary.BigEndian.PutUint16(b[36:38], uint16(m.Tuple.DstPort))
}

func getMatch(b []byte) (flow.Match, error) {
	if len(b) < matchLen {
		return flow.Match{}, errors.New("openflow: truncated match")
	}
	var m flow.Match
	m.Wild = flow.Wildcard(binary.BigEndian.Uint32(b[0:4]))
	m.Tuple.InPort = binary.BigEndian.Uint16(b[4:6])
	m.Tuple.MACSrc = netaddr.MACFromBytes(b[6:12])
	m.Tuple.MACDst = netaddr.MACFromBytes(b[12:18])
	m.Tuple.EthType = binary.BigEndian.Uint16(b[18:20])
	m.Tuple.VLAN = binary.BigEndian.Uint16(b[20:22])
	m.Tuple.SrcIP = netaddr.IP(binary.BigEndian.Uint32(b[22:26]))
	m.Tuple.DstIP = netaddr.IP(binary.BigEndian.Uint32(b[26:30]))
	m.Tuple.Proto = netaddr.Proto(b[30])
	m.SrcBits = int(b[31])
	m.DstBits = int(b[32])
	m.Tuple.SrcPort = netaddr.Port(binary.BigEndian.Uint16(b[34:36]))
	m.Tuple.DstPort = netaddr.Port(binary.BigEndian.Uint16(b[36:38]))
	return m, nil
}

// Action wire encoding: type(2) + port(2).
const actionLen = 4

func putActions(b []byte, actions []Action) {
	for i, a := range actions {
		off := i * actionLen
		binary.BigEndian.PutUint16(b[off:off+2], uint16(a.Type))
		binary.BigEndian.PutUint16(b[off+2:off+4], a.Port)
	}
}

func getActions(b []byte) ([]Action, error) {
	if len(b)%actionLen != 0 {
		return nil, errors.New("openflow: ragged action list")
	}
	n := len(b) / actionLen
	if n == 0 {
		return nil, nil
	}
	out := make([]Action, n)
	for i := range out {
		off := i * actionLen
		t := ActionType(binary.BigEndian.Uint16(b[off : off+2]))
		if t < ActionOutput || t > ActionDrop {
			return nil, fmt.Errorf("openflow: unknown action type %d", t)
		}
		out[i] = Action{Type: t, Port: binary.BigEndian.Uint16(b[off+2 : off+4])}
	}
	return out, nil
}

// EncodePacketIn serializes a PacketIn event.
func EncodePacketIn(ev PacketIn, xid uint32) Msg {
	body := make([]byte, 8+4+2+1+1+len(ev.Frame))
	binary.BigEndian.PutUint64(body[0:8], ev.SwitchID)
	binary.BigEndian.PutUint32(body[8:12], ev.BufferID)
	binary.BigEndian.PutUint16(body[12:14], ev.InPort)
	body[14] = byte(ev.Reason)
	copy(body[16:], ev.Frame)
	return Msg{Type: MsgPacketIn, Xid: xid, Body: body}
}

// DecodePacketIn parses a PacketIn body. The tuple is reconstructed by the
// receiver from the frame; only transport fields travel.
func DecodePacketIn(m Msg) (PacketIn, error) {
	if m.Type != MsgPacketIn || len(m.Body) < 16 {
		return PacketIn{}, errors.New("openflow: bad packet-in")
	}
	return PacketIn{
		SwitchID: binary.BigEndian.Uint64(m.Body[0:8]),
		BufferID: binary.BigEndian.Uint32(m.Body[8:12]),
		InPort:   binary.BigEndian.Uint16(m.Body[12:14]),
		Reason:   PacketInReason(m.Body[14]),
		Frame:    append([]byte(nil), m.Body[16:]...),
	}, nil
}

// EncodeFlowMod serializes a FlowMod.
func EncodeFlowMod(mod FlowMod, xid uint32) Msg {
	body := make([]byte, matchLen+8+2+2+4+4+4+1+1+2+len(mod.Actions)*actionLen)
	putMatch(body[0:], mod.Match)
	off := matchLen
	binary.BigEndian.PutUint64(body[off:], mod.Cookie)
	off += 8
	binary.BigEndian.PutUint16(body[off:], uint16(mod.Priority))
	off += 2
	var fl uint16
	if mod.Delete {
		fl |= 1
	}
	if mod.NotifyRemoved {
		fl |= 2
	}
	binary.BigEndian.PutUint16(body[off:], fl)
	off += 2
	binary.BigEndian.PutUint32(body[off:], uint32(mod.IdleTimeout/time.Millisecond))
	off += 4
	binary.BigEndian.PutUint32(body[off:], uint32(mod.HardTimeout/time.Millisecond))
	off += 4
	binary.BigEndian.PutUint32(body[off:], mod.BufferID)
	off += 4
	off += 2 // pad
	binary.BigEndian.PutUint16(body[off:], uint16(len(mod.Actions)))
	off += 2
	putActions(body[off:], mod.Actions)
	return Msg{Type: MsgFlowMod, Xid: xid, Body: body}
}

// DecodeFlowMod parses a FlowMod body.
func DecodeFlowMod(m Msg) (FlowMod, error) {
	if m.Type != MsgFlowMod || len(m.Body) < matchLen+8+2+2+4+4+4+4 {
		return FlowMod{}, errors.New("openflow: bad flow-mod")
	}
	match, err := getMatch(m.Body)
	if err != nil {
		return FlowMod{}, err
	}
	off := matchLen
	mod := FlowMod{Match: match}
	mod.Cookie = binary.BigEndian.Uint64(m.Body[off:])
	off += 8
	mod.Priority = int(binary.BigEndian.Uint16(m.Body[off:]))
	off += 2
	fl := binary.BigEndian.Uint16(m.Body[off:])
	off += 2
	mod.Delete = fl&1 != 0
	mod.NotifyRemoved = fl&2 != 0
	mod.IdleTimeout = time.Duration(binary.BigEndian.Uint32(m.Body[off:])) * time.Millisecond
	off += 4
	mod.HardTimeout = time.Duration(binary.BigEndian.Uint32(m.Body[off:])) * time.Millisecond
	off += 4
	mod.BufferID = binary.BigEndian.Uint32(m.Body[off:])
	off += 4
	off += 2
	n := int(binary.BigEndian.Uint16(m.Body[off:]))
	off += 2
	actions, err := getActions(m.Body[off:])
	if err != nil {
		return FlowMod{}, err
	}
	if len(actions) != n {
		return FlowMod{}, errors.New("openflow: action count mismatch")
	}
	mod.Actions = actions
	return mod, nil
}

// PacketOutMsg carries a controller-sourced frame.
type PacketOutMsg struct {
	BufferID uint32
	Port     uint16
	Frame    []byte
}

// EncodePacketOut serializes a PacketOut.
func EncodePacketOut(po PacketOutMsg, xid uint32) Msg {
	body := make([]byte, 4+2+2+len(po.Frame))
	binary.BigEndian.PutUint32(body[0:4], po.BufferID)
	binary.BigEndian.PutUint16(body[4:6], po.Port)
	copy(body[8:], po.Frame)
	return Msg{Type: MsgPacketOut, Xid: xid, Body: body}
}

// DecodePacketOut parses a PacketOut body.
func DecodePacketOut(m Msg) (PacketOutMsg, error) {
	if m.Type != MsgPacketOut || len(m.Body) < 8 {
		return PacketOutMsg{}, errors.New("openflow: bad packet-out")
	}
	return PacketOutMsg{
		BufferID: binary.BigEndian.Uint32(m.Body[0:4]),
		Port:     binary.BigEndian.Uint16(m.Body[4:6]),
		Frame:    append([]byte(nil), m.Body[8:]...),
	}, nil
}

// EncodeFlowRemoved serializes a FlowRemoved event.
func EncodeFlowRemoved(ev FlowRemoved, xid uint32) Msg {
	body := make([]byte, 8+matchLen+8+1+7+8+8)
	binary.BigEndian.PutUint64(body[0:8], ev.SwitchID)
	putMatch(body[8:], ev.Match)
	off := 8 + matchLen
	binary.BigEndian.PutUint64(body[off:], ev.Cookie)
	off += 8
	body[off] = byte(ev.Reason)
	off += 8 // 1 reason + 7 pad
	binary.BigEndian.PutUint64(body[off:], ev.Packets)
	off += 8
	binary.BigEndian.PutUint64(body[off:], ev.Bytes)
	return Msg{Type: MsgFlowRemoved, Xid: xid, Body: body}
}

// DecodeFlowRemoved parses a FlowRemoved body.
func DecodeFlowRemoved(m Msg) (FlowRemoved, error) {
	want := 8 + matchLen + 8 + 8 + 8 + 8
	if m.Type != MsgFlowRemoved || len(m.Body) < want {
		return FlowRemoved{}, errors.New("openflow: bad flow-removed")
	}
	match, err := getMatch(m.Body[8:])
	if err != nil {
		return FlowRemoved{}, err
	}
	off := 8 + matchLen
	ev := FlowRemoved{
		SwitchID: binary.BigEndian.Uint64(m.Body[0:8]),
		Match:    match,
	}
	ev.Cookie = binary.BigEndian.Uint64(m.Body[off:])
	off += 8
	ev.Reason = RemovedReason(m.Body[off])
	off += 8
	ev.Packets = binary.BigEndian.Uint64(m.Body[off:])
	off += 8
	ev.Bytes = binary.BigEndian.Uint64(m.Body[off:])
	return ev, nil
}
