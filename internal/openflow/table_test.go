package openflow

import (
	"errors"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func sampleTen(dp netaddr.Port) flow.Ten {
	return flow.Ten{
		InPort: 1, MACSrc: 10, MACDst: 20, EthType: flow.EthTypeIPv4, VLAN: flow.VLANNone,
		SrcIP:   netaddr.MustParseIP("10.0.0.1"),
		DstIP:   netaddr.MustParseIP("10.0.0.2"),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 1234, DstPort: dp,
	}
}

func TestTableExactLookup(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	ten := sampleTen(80)
	e := &Entry{Match: flow.ExactMatch(ten), Actions: Output(2)}
	if err := tb.Insert(e, now); err != nil {
		t.Fatal(err)
	}
	got := tb.Lookup(ten, 100, now)
	if got != e {
		t.Fatal("exact lookup miss")
	}
	if got.Packets != 1 || got.Bytes != 100 {
		t.Errorf("counters = %d/%d", got.Packets, got.Bytes)
	}
	if tb.Lookup(sampleTen(81), 100, now) != nil {
		t.Error("lookup matched wrong tuple")
	}
}

func TestTablePriorityOrder(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	low := &Entry{Match: flow.MatchAll(), Priority: 1, Actions: Drop}
	high := &Entry{Match: flow.FiveMatch(sampleTen(80).Five()), Priority: 10, Actions: Output(3)}
	if err := tb.Insert(low, now); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(high, now); err != nil {
		t.Fatal(err)
	}
	if got := tb.Lookup(sampleTen(80), 1, now); got != high {
		t.Error("higher priority entry should win")
	}
	if got := tb.Lookup(sampleTen(99), 1, now); got != low {
		t.Error("fallback to lower priority failed")
	}
}

func TestTableExactBeatsWildcard(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	ten := sampleTen(80)
	wild := &Entry{Match: flow.MatchAll(), Priority: 100, Actions: Drop}
	exact := &Entry{Match: flow.ExactMatch(ten), Priority: 0, Actions: Output(1)}
	tb.Insert(wild, now)
	tb.Insert(exact, now)
	if got := tb.Lookup(ten, 1, now); got != exact {
		t.Error("exact-match entry should beat wildcard regardless of priority")
	}
}

func TestTableIdleTimeout(t *testing.T) {
	tb := NewTable(0)
	t0 := time.Now()
	e := &Entry{Match: flow.ExactMatch(sampleTen(80)), IdleTimeout: time.Second, Actions: Output(1)}
	tb.Insert(e, t0)
	// Activity at t0+500ms refreshes the idle timer.
	if tb.Lookup(sampleTen(80), 1, t0.Add(500*time.Millisecond)) == nil {
		t.Fatal("entry should be live")
	}
	if removed := tb.Expire(t0.Add(1200 * time.Millisecond)); len(removed) != 0 {
		t.Fatal("entry idle-expired despite activity at +500ms")
	}
	removed := tb.Expire(t0.Add(1600 * time.Millisecond))
	if len(removed) != 1 || removed[0].Reason != RemovedIdleTimeout {
		t.Fatalf("expire = %+v", removed)
	}
	if tb.Len() != 0 {
		t.Error("expired entry still present")
	}
}

func TestTableHardTimeout(t *testing.T) {
	tb := NewTable(0)
	t0 := time.Now()
	e := &Entry{Match: flow.ExactMatch(sampleTen(80)), HardTimeout: time.Second, Actions: Output(1)}
	tb.Insert(e, t0)
	// Even continuous activity cannot save a hard-timed-out entry.
	tb.Lookup(sampleTen(80), 1, t0.Add(900*time.Millisecond))
	removed := tb.Expire(t0.Add(1100 * time.Millisecond))
	if len(removed) != 1 || removed[0].Reason != RemovedHardTimeout {
		t.Fatalf("expire = %+v", removed)
	}
}

func TestTableCapacity(t *testing.T) {
	tb := NewTable(2)
	now := time.Now()
	if err := tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(1))}, now); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(2))}, now); err != nil {
		t.Fatal(err)
	}
	err := tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(3))}, now)
	var full ErrTableFull
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	// Replacing an existing exact entry is allowed at capacity.
	if err := tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(2)), Actions: Drop}, now); err != nil {
		t.Errorf("replacement rejected: %v", err)
	}
}

func TestTableDeleteWhere(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(1)), Cookie: 7}, now)
	tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(2)), Cookie: 8}, now)
	tb.Insert(&Entry{Match: flow.MatchAll(), Cookie: 7}, now)
	removed := tb.DeleteWhere(func(e *Entry) bool { return e.Cookie == 7 })
	if len(removed) != 2 {
		t.Fatalf("removed = %d, want 2", len(removed))
	}
	if tb.Len() != 1 {
		t.Errorf("remaining = %d, want 1", tb.Len())
	}
	for _, r := range removed {
		if r.Reason != RemovedDelete {
			t.Error("wrong removal reason")
		}
	}
}

func TestTableEntriesSnapshot(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(1))}, now)
	tb.Insert(&Entry{Match: flow.MatchAll()}, now)
	if got := len(tb.Entries()); got != 2 {
		t.Errorf("entries = %d", got)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	tb := NewTable(0)
	now := time.Now()
	ten := sampleTen(80)
	tb.Insert(&Entry{Match: flow.ExactMatch(ten)}, now)
	e := tb.Peek(ten)
	if e == nil || e.Packets != 0 {
		t.Error("Peek should not bump counters")
	}
}

func BenchmarkTableLookupExact(b *testing.B) {
	tb := NewTable(0)
	now := time.Now()
	for i := 0; i < 1000; i++ {
		tb.Insert(&Entry{Match: flow.ExactMatch(sampleTen(netaddr.Port(i)))}, now)
	}
	ten := sampleTen(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tb.Lookup(ten, 64, now) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableLookupWildcardScan(b *testing.B) {
	tb := NewTable(0)
	now := time.Now()
	for i := 0; i < 64; i++ {
		m := flow.FiveMatch(sampleTen(netaddr.Port(i)).Five())
		tb.Insert(&Entry{Match: m, Priority: i}, now)
	}
	ten := sampleTen(0) // matches the lowest-priority entry: full scan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tb.Lookup(ten, 64, now) == nil {
			b.Fatal("miss")
		}
	}
}
