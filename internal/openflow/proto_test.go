package openflow

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := Msg{Type: MsgEchoRequest, Xid: 42, Body: []byte("ping")}
	if err := WriteMsg(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Xid != m.Xid || !bytes.Equal(got.Body, m.Body) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestReadMsgRejects(t *testing.T) {
	// Wrong version.
	bad := []byte{0x99, 0, 0, 8, 0, 0, 0, 0}
	if _, err := ReadMsg(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}
	// Length smaller than header.
	bad2 := []byte{ProtoVersion, 0, 0, 4, 0, 0, 0, 0}
	if _, err := ReadMsg(bytes.NewReader(bad2)); err == nil {
		t.Error("short length accepted")
	}
	// Oversized.
	bad3 := []byte{ProtoVersion, 0, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadMsg(bytes.NewReader(bad3)); err == nil {
		t.Error("oversize accepted")
	}
}

func TestMatchCodecRoundTrip(t *testing.T) {
	m := flow.Match{
		Wild:    flow.WInPort | flow.WMACSrc,
		SrcBits: 24, DstBits: 32,
		Tuple: flow.Ten{
			InPort: 3, MACSrc: 0xabcdef, MACDst: 0x123456,
			EthType: flow.EthTypeIPv4, VLAN: 12,
			SrcIP:   netaddr.MustParseIP("192.168.1.0"),
			DstIP:   netaddr.MustParseIP("10.0.0.9"),
			Proto:   netaddr.ProtoUDP,
			SrcPort: 111, DstPort: 222,
		},
	}
	b := make([]byte, matchLen)
	putMatch(b, m)
	got, err := getMatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("match round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestFlowModCodecRoundTrip(t *testing.T) {
	mod := FlowMod{
		Match:         flow.FiveMatch(flow.Five{SrcIP: 1, DstIP: 2, Proto: netaddr.ProtoTCP, SrcPort: 3, DstPort: 4}),
		Priority:      7,
		Actions:       []Action{{Type: ActionOutput, Port: 9}, {Type: ActionController}},
		Cookie:        0xdeadbeef,
		IdleTimeout:   5 * time.Second,
		HardTimeout:   time.Minute,
		BufferID:      17,
		NotifyRemoved: true,
	}
	got, err := DecodeFlowMod(EncodeFlowMod(mod, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Match != mod.Match || got.Priority != mod.Priority || got.Cookie != mod.Cookie ||
		got.IdleTimeout != mod.IdleTimeout || got.HardTimeout != mod.HardTimeout ||
		got.BufferID != mod.BufferID || got.NotifyRemoved != mod.NotifyRemoved || got.Delete != mod.Delete {
		t.Errorf("flow-mod round trip:\n got %+v\nwant %+v", got, mod)
	}
	if len(got.Actions) != 2 || got.Actions[0] != mod.Actions[0] || got.Actions[1] != mod.Actions[1] {
		t.Errorf("actions = %+v", got.Actions)
	}
}

func TestFlowModDeleteRoundTrip(t *testing.T) {
	mod := FlowMod{Match: flow.MatchAll(), Delete: true, Cookie: 5, BufferID: BufferNone}
	got, err := DecodeFlowMod(EncodeFlowMod(mod, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Delete || got.Cookie != 5 {
		t.Errorf("delete round trip: %+v", got)
	}
}

func TestPacketInCodecRoundTrip(t *testing.T) {
	ev := PacketIn{
		SwitchID: 77, BufferID: 5, InPort: 3, Reason: ReasonAction,
		Frame: []byte{1, 2, 3, 4, 5},
	}
	got, err := DecodePacketIn(EncodePacketIn(ev, 9))
	if err != nil {
		t.Fatal(err)
	}
	if got.SwitchID != 77 || got.BufferID != 5 || got.InPort != 3 || got.Reason != ReasonAction ||
		!bytes.Equal(got.Frame, ev.Frame) {
		t.Errorf("packet-in round trip: %+v", got)
	}
}

func TestPacketOutCodecRoundTrip(t *testing.T) {
	po := PacketOutMsg{BufferID: BufferNone, Port: 4, Frame: []byte("frame")}
	got, err := DecodePacketOut(EncodePacketOut(po, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got.BufferID != po.BufferID || got.Port != po.Port || !bytes.Equal(got.Frame, po.Frame) {
		t.Errorf("packet-out round trip: %+v", got)
	}
}

func TestFlowRemovedCodecRoundTrip(t *testing.T) {
	ev := FlowRemoved{
		SwitchID: 3,
		Match:    flow.FiveMatch(flow.Five{SrcIP: 9, DstIP: 8, Proto: netaddr.ProtoTCP, SrcPort: 7, DstPort: 6}),
		Cookie:   11, Reason: RemovedIdleTimeout, Packets: 100, Bytes: 6400,
	}
	got, err := DecodeFlowRemoved(EncodeFlowRemoved(ev, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got != ev {
		t.Errorf("flow-removed round trip:\n got %+v\nwant %+v", got, ev)
	}
}

// chanHandler adapts ChannelHandler callbacks onto channels for tests.
type chanHandler struct {
	mu        sync.Mutex
	connected chan *RemoteSwitch
	packetIns chan PacketIn
	removed   chan FlowRemoved
}

func newChanHandler() *chanHandler {
	return &chanHandler{
		connected: make(chan *RemoteSwitch, 4),
		packetIns: make(chan PacketIn, 16),
		removed:   make(chan FlowRemoved, 16),
	}
}

func (h *chanHandler) SwitchConnected(sw *RemoteSwitch)            { h.connected <- sw }
func (h *chanHandler) PacketIn(_ *RemoteSwitch, ev PacketIn)       { h.packetIns <- ev }
func (h *chanHandler) FlowRemoved(_ *RemoteSwitch, ev FlowRemoved) { h.removed <- ev }
func (h *chanHandler) SwitchDisconnected(*RemoteSwitch)            {}

func TestSecureChannelEndToEnd(t *testing.T) {
	h := newChanHandler()
	server := NewChannelServer(h)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	rec := &recorder{}
	sw := NewSwitch(99, "s99", 0)
	sw.AddPort(1)
	sw.AddPort(2)
	sw.SetTransmitter(rec)
	agent, err := Connect(sw, addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var remote *RemoteSwitch
	select {
	case remote = <-h.connected:
	case <-time.After(2 * time.Second):
		t.Fatal("switch never connected")
	}
	if remote.DatapathID() != 99 {
		t.Fatalf("datapath id = %d", remote.DatapathID())
	}

	// Table miss at the switch surfaces as a remote PacketIn.
	sw.Receive(1, testFrame(80))
	var ev PacketIn
	select {
	case ev = <-h.packetIns:
	case <-time.After(2 * time.Second):
		t.Fatal("no packet-in over channel")
	}
	if ev.SwitchID != 99 || ev.InPort != 1 {
		t.Errorf("event = %+v", ev)
	}

	// Remote FlowMod programs the switch and releases the buffer.
	err = remote.Apply(FlowMod{
		Match:    flow.FiveMatch(flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: 80}),
		Priority: 1,
		Actions:  Output(2),
		BufferID: ev.BufferID,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rec.txCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rec.txCount() != 1 {
		t.Fatal("remote flow-mod did not forward the buffered frame")
	}

	// Remote PacketOut.
	remote.PacketOut(2, testFrame(81))
	deadline = time.Now().Add(2 * time.Second)
	for rec.txCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rec.txCount() != 2 {
		t.Fatal("remote packet-out not transmitted")
	}
}

func TestChannelServerRejectsNonHello(t *testing.T) {
	h := newChanHandler()
	server := NewChannelServer(h)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	WriteMsg(conn, Msg{Type: MsgEchoRequest})
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := ReadMsg(conn); err == nil {
		t.Error("server should hang up on a non-hello first message")
	}
	select {
	case <-h.connected:
		t.Error("non-hello connection reported as a switch")
	default:
	}
}
