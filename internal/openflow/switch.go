package openflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/packet"
)

// BufferNone means "the whole frame travelled in the PACKET_IN"; any other
// buffer id refers to a frame parked in the switch awaiting the
// controller's verdict (OFP_NO_BUFFER in OpenFlow 1.0).
const BufferNone uint32 = 0xffffffff

// PacketInReason mirrors OFPR_*.
type PacketInReason int

// Packet-in reasons.
const (
	ReasonNoMatch PacketInReason = iota // table miss
	ReasonAction                        // an entry's action said "controller"
)

// PacketIn is the event a switch raises to its controller on a table miss
// (Figure 1, step 2: "first-hop switch forwards packet to controller").
type PacketIn struct {
	SwitchID uint64
	BufferID uint32
	InPort   uint16
	Reason   PacketInReason
	Tuple    flow.Ten
	Frame    []byte

	// TraceID carries the flight-recorder trace across replica hand-offs
	// (internal/trace): set by a forwarding cluster router, consumed by
	// the owning controller's decision. 0 = untraced. Not part of the
	// OpenFlow event itself — switches never set it.
	TraceID uint64
}

// FlowRemoved is the eviction notification a switch raises when an entry
// with NotifyRemoved expires or is deleted.
type FlowRemoved struct {
	SwitchID uint64
	Match    flow.Match
	Cookie   uint64
	Reason   RemovedReason
	Packets  uint64
	Bytes    uint64
}

// Controller is what a switch speaks to. The in-process simulator
// implements it directly; the TCP secure channel adapts the binary protocol
// to it.
type Controller interface {
	HandlePacketIn(sw *Switch, ev PacketIn)
	HandleFlowRemoved(sw *Switch, ev FlowRemoved)
}

// Transmitter delivers a frame out a switch port; the network simulator
// implements it.
type Transmitter interface {
	Transmit(sw *Switch, port uint16, frame []byte)
}

// Stats counts datapath events.
type Stats struct {
	RxPackets   atomic.Uint64
	TxPackets   atomic.Uint64
	Drops       atomic.Uint64
	TableMisses atomic.Uint64
	PacketIns   atomic.Uint64
	FlowMods    atomic.Uint64
	DecodeErrs  atomic.Uint64
}

// Switch is one OpenFlow datapath.
type Switch struct {
	ID    uint64
	Name  string
	Table *Table

	// Clock supplies time for timeouts; the simulator injects its virtual
	// clock. Defaults to time.Now.
	Clock func() time.Time

	Stats Stats

	mu         sync.Mutex
	ports      map[uint16]bool // known ports
	controller Controller
	trans      Transmitter
	buffers    map[uint32]bufferedFrame
	nextBufID  uint32
	maxBuffers int
}

type bufferedFrame struct {
	inPort uint16
	frame  []byte
}

// NewSwitch creates a switch with the given datapath id and table capacity.
func NewSwitch(id uint64, name string, tableCapacity int) *Switch {
	return &Switch{
		ID:         id,
		Name:       name,
		Table:      NewTable(tableCapacity),
		Clock:      time.Now,
		ports:      make(map[uint16]bool),
		buffers:    make(map[uint32]bufferedFrame),
		maxBuffers: 256,
	}
}

// AddPort registers a port.
func (s *Switch) AddPort(port uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ports[port] = true
}

// Ports returns the registered port numbers.
func (s *Switch) Ports() []uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint16, 0, len(s.ports))
	for p := range s.ports {
		out = append(out, p)
	}
	return out
}

// SetController attaches the controller.
func (s *Switch) SetController(c Controller) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.controller = c
}

// SetTransmitter attaches the port output sink.
func (s *Switch) SetTransmitter(t Transmitter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trans = t
}

// Receive processes a frame arriving on inPort: decode, look up, apply
// actions or raise a PACKET_IN. Malformed frames are counted and dropped,
// as hardware would.
func (s *Switch) Receive(inPort uint16, frame []byte) {
	s.Stats.RxPackets.Add(1)
	var p packet.Packet
	if err := p.DecodeInto(frame); err != nil {
		s.Stats.DecodeErrs.Add(1)
		return
	}
	ten := p.Ten(inPort)
	now := s.Clock()
	if e := s.Table.Lookup(ten, len(frame), now); e != nil {
		s.apply(e.Actions, inPort, frame, ten)
		return
	}
	s.Stats.TableMisses.Add(1)
	s.punt(inPort, frame, ten, ReasonNoMatch)
}

func (s *Switch) punt(inPort uint16, frame []byte, ten flow.Ten, reason PacketInReason) {
	s.mu.Lock()
	c := s.controller
	var bufID uint32 = BufferNone
	if c != nil && len(s.buffers) < s.maxBuffers {
		bufID = s.nextBufID
		s.nextBufID++
		if s.nextBufID == BufferNone {
			s.nextBufID = 0
		}
		s.buffers[bufID] = bufferedFrame{inPort: inPort, frame: frame}
	}
	s.mu.Unlock()
	if c == nil {
		s.Stats.Drops.Add(1)
		return
	}
	s.Stats.PacketIns.Add(1)
	c.HandlePacketIn(s, PacketIn{
		SwitchID: s.ID,
		BufferID: bufID,
		InPort:   inPort,
		Reason:   reason,
		Tuple:    ten,
		Frame:    frame,
	})
}

func (s *Switch) apply(actions []Action, inPort uint16, frame []byte, ten flow.Ten) {
	if len(actions) == 0 {
		s.Stats.Drops.Add(1)
		return
	}
	for _, a := range actions {
		switch a.Type {
		case ActionDrop:
			s.Stats.Drops.Add(1)
		case ActionOutput:
			s.transmit(a.Port, frame)
		case ActionFlood:
			s.mu.Lock()
			ports := make([]uint16, 0, len(s.ports))
			for p := range s.ports {
				if p != inPort {
					ports = append(ports, p)
				}
			}
			s.mu.Unlock()
			for _, p := range ports {
				s.transmit(p, frame)
			}
		case ActionController:
			s.punt(inPort, frame, ten, ReasonAction)
		}
	}
}

func (s *Switch) transmit(port uint16, frame []byte) {
	s.mu.Lock()
	t := s.trans
	s.mu.Unlock()
	if t == nil {
		s.Stats.Drops.Add(1)
		return
	}
	s.Stats.TxPackets.Add(1)
	t.Transmit(s, port, frame)
}

// FlowMod is the controller's install/delete command.
type FlowMod struct {
	Match       flow.Match
	Priority    int
	Actions     []Action
	Cookie      uint64
	IdleTimeout time.Duration
	HardTimeout time.Duration
	// BufferID, when not BufferNone, releases the referenced buffered frame
	// through the new entry's actions — Figure 1 step 5, "packet proceeds
	// to destination".
	BufferID uint32
	// NotifyRemoved requests a FlowRemoved event on eviction.
	NotifyRemoved bool
	// Delete removes matching entries instead of adding one.
	Delete bool
}

// Apply executes a FlowMod on the switch.
func (s *Switch) Apply(mod FlowMod) error {
	s.Stats.FlowMods.Add(1)
	now := s.Clock()
	if mod.Delete {
		pred := func(e *Entry) bool {
			if mod.Cookie != 0 && e.Cookie != mod.Cookie {
				return false
			}
			return mod.Match.Covers(e.Match.Tuple) || e.Match == mod.Match
		}
		var removed []Removed
		if f, ok := fiveGranular(mod.Match); ok {
			// Delete-by-flow: the common revocation shape hits the table's
			// 5-tuple index in O(1). Entries at other granularities that the
			// match would also cover are scanned only when any exist — in a
			// controller-programmed table there are none.
			removed = s.Table.DeleteFlow(f, mod.Cookie)
			if s.Table.OtherGranularities() > 0 {
				removed = append(removed, s.Table.DeleteWhere(func(e *Entry) bool {
					if _, isFive := fiveGranular(e.Match); isFive {
						return false // the indexed path handled these
					}
					return pred(e)
				})...)
			}
		} else {
			removed = s.Table.DeleteWhere(pred)
		}
		s.notifyRemoved(removed, mod.NotifyRemoved)
		return nil
	}
	e := &Entry{
		Match:       mod.Match,
		Priority:    mod.Priority,
		Actions:     mod.Actions,
		Cookie:      mod.Cookie,
		IdleTimeout: mod.IdleTimeout,
		HardTimeout: mod.HardTimeout,
	}
	if err := s.Table.Insert(e, now); err != nil {
		return fmt.Errorf("switch %d: %w", s.ID, err)
	}
	if mod.BufferID != BufferNone {
		s.mu.Lock()
		buf, ok := s.buffers[mod.BufferID]
		delete(s.buffers, mod.BufferID)
		s.mu.Unlock()
		if ok {
			var p packet.Packet
			if err := p.DecodeInto(buf.frame); err == nil {
				s.apply(mod.Actions, buf.inPort, buf.frame, p.Ten(buf.inPort))
			}
		}
	}
	return nil
}

// PacketOut injects a frame out a port (the controller sourcing traffic,
// e.g. spoofed ident++ queries, §3.4).
func (s *Switch) PacketOut(port uint16, frame []byte) {
	s.transmit(port, frame)
}

// ReleaseBuffer drops a buffered frame without installing state (the
// controller decided to deny and the packet must not proceed).
func (s *Switch) ReleaseBuffer(bufID uint32) {
	if bufID == BufferNone {
		return
	}
	s.mu.Lock()
	_, ok := s.buffers[bufID]
	delete(s.buffers, bufID)
	s.mu.Unlock()
	if ok {
		s.Stats.Drops.Add(1)
	}
}

// Tick expires timed-out entries and delivers FlowRemoved notifications.
// The simulator calls it as virtual time advances.
func (s *Switch) Tick() {
	removed := s.Table.Expire(s.Clock())
	s.notifyRemoved(removed, true)
}

func (s *Switch) notifyRemoved(removed []Removed, notify bool) {
	if !notify || len(removed) == 0 {
		return
	}
	s.mu.Lock()
	c := s.controller
	s.mu.Unlock()
	if c == nil {
		return
	}
	for _, r := range removed {
		c.HandleFlowRemoved(s, FlowRemoved{
			SwitchID: s.ID,
			Match:    r.Entry.Match,
			Cookie:   r.Entry.Cookie,
			Reason:   r.Reason,
			Packets:  r.Entry.Packets,
			Bytes:    r.Entry.Bytes,
		})
	}
}
