// Package packet implements the frame formats the simulated network carries:
// Ethernet (with optional 802.1Q VLAN tag), IPv4, TCP, UDP and ICMP. The
// design follows the layered-decoding model popularized by gopacket — a
// packet is a stack of typed layers — but stays allocation-light: Decode
// fills a fixed Packet struct, and headers encode into caller-provided or
// grown byte slices.
//
// The checksum arithmetic (RFC 1071 internet checksum, TCP/UDP pseudo
// header) is implemented in full so that fault-injection tests can corrupt
// frames and have the substrate reject them, as a real datapath would.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadVersion  = errors.New("packet: unsupported IP version")
)

// LayerType identifies the highest layer successfully decoded.
type LayerType int

// Layer types in ascending stack order.
const (
	LayerNone LayerType = iota
	LayerEthernet
	LayerARP
	LayerIPv4
	LayerTCP
	LayerUDP
	LayerICMP
)

func (t LayerType) String() string {
	switch t {
	case LayerEthernet:
		return "ethernet"
	case LayerARP:
		return "arp"
	case LayerIPv4:
		return "ipv4"
	case LayerTCP:
		return "tcp"
	case LayerUDP:
		return "udp"
	case LayerICMP:
		return "icmp"
	}
	return "none"
}

// Ethernet is the L2 header, including the VLAN id if an 802.1Q tag was
// present (VLAN == flow.VLANNone means untagged).
type Ethernet struct {
	Dst     netaddr.MAC
	Src     netaddr.MAC
	EthType uint16
	VLAN    uint16
}

// IPv4 is the L3 header. Options are not supported (IHL is always 5), which
// matches what enterprise TCP/UDP traffic overwhelmingly carries.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol netaddr.Proto
	Src      netaddr.IP
	Dst      netaddr.IP
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is the L4 TCP header (no options; DataOffset always 5).
type TCP struct {
	SrcPort netaddr.Port
	DstPort netaddr.Port
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// UDP is the L4 UDP header.
type UDP struct {
	SrcPort netaddr.Port
	DstPort netaddr.Port
}

// ICMP is the ICMP header (echo-style: type, code, id, seq).
type ICMP struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// Packet is a decoded frame: the layer stack plus the transport payload.
type Packet struct {
	Eth     Ethernet
	IP      IPv4
	TCP     TCP
	UDP     UDP
	ICMP    ICMP
	Payload []byte
	// Top is the highest layer that was decoded.
	Top LayerType
}

// Ten projects the decoded packet onto the OpenFlow 10-tuple. The ingress
// port is not a packet property; the caller (the switch) supplies it.
func (p *Packet) Ten(inPort uint16) flow.Ten {
	t := flow.Ten{
		InPort:  inPort,
		MACSrc:  p.Eth.Src,
		MACDst:  p.Eth.Dst,
		EthType: p.Eth.EthType,
		VLAN:    p.Eth.VLAN,
	}
	if p.Top >= LayerIPv4 {
		t.SrcIP = p.IP.Src
		t.DstIP = p.IP.Dst
		t.Proto = p.IP.Protocol
	}
	switch p.Top {
	case LayerTCP:
		t.SrcPort = p.TCP.SrcPort
		t.DstPort = p.TCP.DstPort
	case LayerUDP:
		t.SrcPort = p.UDP.SrcPort
		t.DstPort = p.UDP.DstPort
	case LayerICMP:
		// OpenFlow 1.0 maps ICMP type/code onto the port fields.
		t.SrcPort = netaddr.Port(p.ICMP.Type)
		t.DstPort = netaddr.Port(p.ICMP.Code)
	}
	return t
}

// Five projects the decoded packet onto the ident++ 5-tuple.
func (p *Packet) Five() flow.Five { return p.Ten(0).Five() }

func (p *Packet) String() string {
	switch p.Top {
	case LayerTCP:
		return fmt.Sprintf("tcp %s:%d > %s:%d flags=%#x len=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort, p.TCP.Flags, len(p.Payload))
	case LayerUDP:
		return fmt.Sprintf("udp %s:%d > %s:%d len=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload))
	case LayerICMP:
		return fmt.Sprintf("icmp %s > %s type=%d code=%d",
			p.IP.Src, p.IP.Dst, p.ICMP.Type, p.ICMP.Code)
	case LayerIPv4:
		return fmt.Sprintf("ip %s > %s proto=%d", p.IP.Src, p.IP.Dst, p.IP.Protocol)
	}
	return fmt.Sprintf("eth %s > %s type=%#04x", p.Eth.Src, p.Eth.Dst, p.Eth.EthType)
}

const (
	ethHeaderLen  = 14
	vlanTagLen    = 4
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 8
)

// Decode parses a frame. Checksums are verified; a frame with a corrupt
// IPv4, TCP, UDP or ICMP checksum returns ErrBadChecksum with the layers
// below it intact, letting callers count and drop it as hardware would.
func Decode(frame []byte) (*Packet, error) {
	p := &Packet{}
	return p, p.DecodeInto(frame)
}

// DecodeInto parses frame into p, reusing p's storage. The payload slice
// aliases frame.
func (p *Packet) DecodeInto(frame []byte) error {
	*p = Packet{}
	if len(frame) < ethHeaderLen {
		return ErrTruncated
	}
	p.Eth.Dst = netaddr.MACFromBytes(frame[0:6])
	p.Eth.Src = netaddr.MACFromBytes(frame[6:12])
	p.Eth.EthType = binary.BigEndian.Uint16(frame[12:14])
	p.Eth.VLAN = flow.VLANNone
	rest := frame[ethHeaderLen:]
	if p.Eth.EthType == flow.EthTypeVLAN {
		if len(rest) < vlanTagLen {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		p.Eth.VLAN = tci & 0x0fff
		p.Eth.EthType = binary.BigEndian.Uint16(rest[2:4])
		rest = rest[vlanTagLen:]
	}
	p.Top = LayerEthernet
	switch p.Eth.EthType {
	case flow.EthTypeIPv4:
		return p.decodeIPv4(rest)
	case flow.EthTypeARP:
		p.Top = LayerARP
		p.Payload = rest
		return nil
	default:
		p.Payload = rest
		return nil
	}
}

func (p *Packet) decodeIPv4(b []byte) error {
	if len(b) < ipv4HeaderLen {
		return ErrTruncated
	}
	vihl := b[0]
	if vihl>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return ErrTruncated
	}
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	if totalLen < ihl || totalLen > len(b) {
		return ErrTruncated
	}
	if internetChecksum(b[:ihl]) != 0 {
		return ErrBadChecksum
	}
	p.IP.TOS = b[1]
	p.IP.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	p.IP.Flags = uint8(ff >> 13)
	p.IP.FragOff = ff & 0x1fff
	p.IP.TTL = b[8]
	p.IP.Protocol = netaddr.Proto(b[9])
	p.IP.Src = netaddr.IP(binary.BigEndian.Uint32(b[12:16]))
	p.IP.Dst = netaddr.IP(binary.BigEndian.Uint32(b[16:20]))
	p.Top = LayerIPv4
	seg := b[ihl:totalLen]
	switch p.IP.Protocol {
	case netaddr.ProtoTCP:
		return p.decodeTCP(seg)
	case netaddr.ProtoUDP:
		return p.decodeUDP(seg)
	case netaddr.ProtoICMP:
		return p.decodeICMP(seg)
	default:
		p.Payload = seg
		return nil
	}
}

func (p *Packet) decodeTCP(b []byte) error {
	if len(b) < tcpHeaderLen {
		return ErrTruncated
	}
	off := int(b[12]>>4) * 4
	if off < tcpHeaderLen || len(b) < off {
		return ErrTruncated
	}
	if transportChecksum(p.IP.Src, p.IP.Dst, netaddr.ProtoTCP, b) != 0 {
		return ErrBadChecksum
	}
	p.TCP.SrcPort = netaddr.Port(binary.BigEndian.Uint16(b[0:2]))
	p.TCP.DstPort = netaddr.Port(binary.BigEndian.Uint16(b[2:4]))
	p.TCP.Seq = binary.BigEndian.Uint32(b[4:8])
	p.TCP.Ack = binary.BigEndian.Uint32(b[8:12])
	p.TCP.Flags = b[13]
	p.TCP.Window = binary.BigEndian.Uint16(b[14:16])
	p.Payload = b[off:]
	p.Top = LayerTCP
	return nil
}

func (p *Packet) decodeUDP(b []byte) error {
	if len(b) < udpHeaderLen {
		return ErrTruncated
	}
	ulen := int(binary.BigEndian.Uint16(b[4:6]))
	if ulen < udpHeaderLen || ulen > len(b) {
		return ErrTruncated
	}
	if transportChecksum(p.IP.Src, p.IP.Dst, netaddr.ProtoUDP, b[:ulen]) != 0 {
		return ErrBadChecksum
	}
	p.UDP.SrcPort = netaddr.Port(binary.BigEndian.Uint16(b[0:2]))
	p.UDP.DstPort = netaddr.Port(binary.BigEndian.Uint16(b[2:4]))
	p.Payload = b[udpHeaderLen:ulen]
	p.Top = LayerUDP
	return nil
}

func (p *Packet) decodeICMP(b []byte) error {
	if len(b) < icmpHeaderLen {
		return ErrTruncated
	}
	if internetChecksum(b) != 0 {
		return ErrBadChecksum
	}
	p.ICMP.Type = b[0]
	p.ICMP.Code = b[1]
	p.ICMP.ID = binary.BigEndian.Uint16(b[4:6])
	p.ICMP.Seq = binary.BigEndian.Uint16(b[6:8])
	p.Payload = b[icmpHeaderLen:]
	p.Top = LayerICMP
	return nil
}

// internetChecksum computes the RFC 1071 one's-complement sum; over a
// buffer with a correct embedded checksum it returns 0.
func internetChecksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header; returns 0 when the embedded checksum is correct.
func transportChecksum(src, dst netaddr.IP, proto netaddr.Proto, seg []byte) uint16 {
	var ph [12]byte
	binary.BigEndian.PutUint32(ph[0:4], uint32(src))
	binary.BigEndian.PutUint32(ph[4:8], uint32(dst))
	ph[9] = byte(proto)
	binary.BigEndian.PutUint16(ph[10:12], uint16(len(seg)))
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
		if len(b) == 1 {
			sum += uint32(b[0]) << 8
		}
	}
	add(ph[:])
	add(seg)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
