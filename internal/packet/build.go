package packet

import (
	"encoding/binary"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// Builder assembles frames layer by layer and fixes up lengths and
// checksums at Bytes() time. The zero value is ready to use.
//
//	b := packet.Builder{}
//	frame := b.Eth(src, dst).IPv4(sip, dip, netaddr.ProtoTCP).
//	        TCPSegment(1234, 80, seq, ack, packet.TCPSyn, payload).Bytes()
type Builder struct {
	eth     Ethernet
	ip      IPv4
	hasIP   bool
	tcp     TCP
	hasTCP  bool
	udp     UDP
	hasUDP  bool
	icmp    ICMP
	hasICMP bool
	payload []byte
}

// Eth sets the Ethernet header. VLAN defaults to untagged; call VLAN to tag.
func (b Builder) Eth(src, dst netaddr.MAC, ethType uint16) Builder {
	b.eth = Ethernet{Src: src, Dst: dst, EthType: ethType, VLAN: flow.VLANNone}
	return b
}

// VLAN tags the frame with an 802.1Q VLAN id.
func (b Builder) VLAN(id uint16) Builder {
	b.eth.VLAN = id
	return b
}

// IPv4 sets the IP header. TTL defaults to 64.
func (b Builder) IPv4(src, dst netaddr.IP, proto netaddr.Proto) Builder {
	b.ip = IPv4{TTL: 64, Protocol: proto, Src: src, Dst: dst}
	b.hasIP = true
	b.eth.EthType = flow.EthTypeIPv4
	return b
}

// TTL overrides the IP TTL.
func (b Builder) TTL(ttl uint8) Builder {
	b.ip.TTL = ttl
	return b
}

// TCPSegment appends a TCP header and payload.
func (b Builder) TCPSegment(src, dst netaddr.Port, seq, ack uint32, flags uint8, payload []byte) Builder {
	b.tcp = TCP{SrcPort: src, DstPort: dst, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	b.hasTCP = true
	b.ip.Protocol = netaddr.ProtoTCP
	b.payload = payload
	return b
}

// UDPDatagram appends a UDP header and payload.
func (b Builder) UDPDatagram(src, dst netaddr.Port, payload []byte) Builder {
	b.udp = UDP{SrcPort: src, DstPort: dst}
	b.hasUDP = true
	b.ip.Protocol = netaddr.ProtoUDP
	b.payload = payload
	return b
}

// ICMPEcho appends an ICMP echo header and payload.
func (b Builder) ICMPEcho(typ, code uint8, id, seq uint16, payload []byte) Builder {
	b.icmp = ICMP{Type: typ, Code: code, ID: id, Seq: seq}
	b.hasICMP = true
	b.ip.Protocol = netaddr.ProtoICMP
	b.payload = payload
	return b
}

// Payload sets a raw payload for frames without a transport layer.
func (b Builder) Payload(p []byte) Builder {
	b.payload = p
	return b
}

// Bytes serializes the frame, computing lengths and checksums.
func (b Builder) Bytes() []byte {
	l4len := 0
	switch {
	case b.hasTCP:
		l4len = tcpHeaderLen + len(b.payload)
	case b.hasUDP:
		l4len = udpHeaderLen + len(b.payload)
	case b.hasICMP:
		l4len = icmpHeaderLen + len(b.payload)
	default:
		l4len = len(b.payload)
	}
	ethLen := ethHeaderLen
	if b.eth.VLAN != flow.VLANNone {
		ethLen += vlanTagLen
	}
	total := ethLen
	if b.hasIP {
		total += ipv4HeaderLen
	}
	total += l4len
	frame := make([]byte, total)

	// L2.
	dst := b.eth.Dst.Bytes()
	src := b.eth.Src.Bytes()
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	off := 12
	if b.eth.VLAN != flow.VLANNone {
		binary.BigEndian.PutUint16(frame[off:], flow.EthTypeVLAN)
		binary.BigEndian.PutUint16(frame[off+2:], b.eth.VLAN&0x0fff)
		off += 4
	}
	ethType := b.eth.EthType
	if b.hasIP {
		ethType = flow.EthTypeIPv4
	}
	binary.BigEndian.PutUint16(frame[off:], ethType)
	off += 2

	if !b.hasIP {
		copy(frame[off:], b.payload)
		return frame
	}

	// L3.
	iph := frame[off : off+ipv4HeaderLen]
	iph[0] = 0x45
	iph[1] = b.ip.TOS
	binary.BigEndian.PutUint16(iph[2:4], uint16(ipv4HeaderLen+l4len))
	binary.BigEndian.PutUint16(iph[4:6], b.ip.ID)
	binary.BigEndian.PutUint16(iph[6:8], uint16(b.ip.Flags)<<13|b.ip.FragOff&0x1fff)
	iph[8] = b.ip.TTL
	iph[9] = byte(b.ip.Protocol)
	binary.BigEndian.PutUint32(iph[12:16], uint32(b.ip.Src))
	binary.BigEndian.PutUint32(iph[16:20], uint32(b.ip.Dst))
	binary.BigEndian.PutUint16(iph[10:12], 0)
	binary.BigEndian.PutUint16(iph[10:12], internetChecksum(iph))
	off += ipv4HeaderLen

	// L4.
	seg := frame[off:]
	switch {
	case b.hasTCP:
		binary.BigEndian.PutUint16(seg[0:2], uint16(b.tcp.SrcPort))
		binary.BigEndian.PutUint16(seg[2:4], uint16(b.tcp.DstPort))
		binary.BigEndian.PutUint32(seg[4:8], b.tcp.Seq)
		binary.BigEndian.PutUint32(seg[8:12], b.tcp.Ack)
		seg[12] = 5 << 4
		seg[13] = b.tcp.Flags
		binary.BigEndian.PutUint16(seg[14:16], b.tcp.Window)
		copy(seg[tcpHeaderLen:], b.payload)
		binary.BigEndian.PutUint16(seg[16:18], 0)
		binary.BigEndian.PutUint16(seg[16:18],
			transportChecksum(b.ip.Src, b.ip.Dst, netaddr.ProtoTCP, seg[:l4len]))
	case b.hasUDP:
		binary.BigEndian.PutUint16(seg[0:2], uint16(b.udp.SrcPort))
		binary.BigEndian.PutUint16(seg[2:4], uint16(b.udp.DstPort))
		binary.BigEndian.PutUint16(seg[4:6], uint16(l4len))
		copy(seg[udpHeaderLen:], b.payload)
		binary.BigEndian.PutUint16(seg[6:8], 0)
		binary.BigEndian.PutUint16(seg[6:8],
			transportChecksum(b.ip.Src, b.ip.Dst, netaddr.ProtoUDP, seg[:l4len]))
	case b.hasICMP:
		seg[0] = b.icmp.Type
		seg[1] = b.icmp.Code
		binary.BigEndian.PutUint16(seg[4:6], b.icmp.ID)
		binary.BigEndian.PutUint16(seg[6:8], b.icmp.Seq)
		copy(seg[icmpHeaderLen:], b.payload)
		binary.BigEndian.PutUint16(seg[2:4], 0)
		binary.BigEndian.PutUint16(seg[2:4], internetChecksum(seg[:l4len]))
	default:
		copy(seg, b.payload)
	}
	return frame
}

// TCPFrame is a convenience wrapper building a complete Ethernet+IPv4+TCP
// frame from a 5-tuple. Hosts in the simulator use it for data packets.
func TCPFrame(srcMAC, dstMAC netaddr.MAC, f flow.Five, flags uint8, payload []byte) []byte {
	return Builder{}.
		Eth(srcMAC, dstMAC, flow.EthTypeIPv4).
		IPv4(f.SrcIP, f.DstIP, netaddr.ProtoTCP).
		TCPSegment(f.SrcPort, f.DstPort, 0, 0, flags, payload).
		Bytes()
}

// UDPFrame builds a complete Ethernet+IPv4+UDP frame from a 5-tuple.
func UDPFrame(srcMAC, dstMAC netaddr.MAC, f flow.Five, payload []byte) []byte {
	return Builder{}.
		Eth(srcMAC, dstMAC, flow.EthTypeIPv4).
		IPv4(f.SrcIP, f.DstIP, netaddr.ProtoUDP).
		UDPDatagram(f.SrcPort, f.DstPort, payload).
		Bytes()
}
