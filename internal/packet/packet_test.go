package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

var (
	macA = netaddr.MustParseMAC("02:00:00:00:00:0a")
	macB = netaddr.MustParseMAC("02:00:00:00:00:0b")
	ipA  = netaddr.MustParseIP("10.0.0.1")
	ipB  = netaddr.MustParseIP("10.0.0.2")
)

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.0\r\n\r\n")
	frame := Builder{}.
		Eth(macA, macB, flow.EthTypeIPv4).
		IPv4(ipA, ipB, netaddr.ProtoTCP).
		TCPSegment(43210, 80, 1000, 2000, TCPSyn|TCPAck, payload).
		Bytes()
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Top != LayerTCP {
		t.Fatalf("top layer = %v", p.Top)
	}
	if p.Eth.Src != macA || p.Eth.Dst != macB {
		t.Error("MAC mismatch")
	}
	if p.IP.Src != ipA || p.IP.Dst != ipB || p.IP.Protocol != netaddr.ProtoTCP {
		t.Error("IP mismatch")
	}
	if p.TCP.SrcPort != 43210 || p.TCP.DstPort != 80 {
		t.Error("port mismatch")
	}
	if p.TCP.Seq != 1000 || p.TCP.Ack != 2000 {
		t.Error("seq/ack mismatch")
	}
	if p.TCP.Flags != TCPSyn|TCPAck {
		t.Error("flags mismatch")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload mismatch: %q", p.Payload)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("dns query")
	frame := Builder{}.
		Eth(macA, macB, flow.EthTypeIPv4).
		IPv4(ipA, ipB, netaddr.ProtoUDP).
		UDPDatagram(5353, 53, payload).
		Bytes()
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Top != LayerUDP || p.UDP.SrcPort != 5353 || p.UDP.DstPort != 53 {
		t.Fatalf("UDP decode wrong: %+v", p.UDP)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload mismatch: %q", p.Payload)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	frame := Builder{}.
		Eth(macA, macB, flow.EthTypeIPv4).
		IPv4(ipA, ipB, netaddr.ProtoICMP).
		ICMPEcho(8, 0, 77, 3, []byte("ping")).
		Bytes()
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Top != LayerICMP || p.ICMP.Type != 8 || p.ICMP.ID != 77 || p.ICMP.Seq != 3 {
		t.Fatalf("ICMP decode wrong: %+v", p.ICMP)
	}
	// OpenFlow 1.0 maps ICMP type/code into the port fields of the tuple.
	ten := p.Ten(1)
	if ten.SrcPort != 8 || ten.DstPort != 0 {
		t.Errorf("ICMP tuple ports = %d,%d", ten.SrcPort, ten.DstPort)
	}
}

func TestVLANRoundTrip(t *testing.T) {
	frame := Builder{}.
		Eth(macA, macB, flow.EthTypeIPv4).
		VLAN(42).
		IPv4(ipA, ipB, netaddr.ProtoTCP).
		TCPSegment(1, 2, 0, 0, TCPSyn, nil).
		Bytes()
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eth.VLAN != 42 {
		t.Errorf("VLAN = %d, want 42", p.Eth.VLAN)
	}
	if p.Eth.EthType != flow.EthTypeIPv4 {
		t.Errorf("inner ethtype = %#x", p.Eth.EthType)
	}
	if p.Top != LayerTCP {
		t.Errorf("top = %v", p.Top)
	}
}

func TestUntaggedVLANIsNone(t *testing.T) {
	frame := TCPFrame(macA, macB, flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}, TCPSyn, nil)
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eth.VLAN != flow.VLANNone {
		t.Errorf("untagged frame VLAN = %d", p.Eth.VLAN)
	}
}

func TestTenProjection(t *testing.T) {
	f := flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: 80}
	p, err := Decode(TCPFrame(macA, macB, f, TCPSyn, nil))
	if err != nil {
		t.Fatal(err)
	}
	ten := p.Ten(7)
	if ten.InPort != 7 {
		t.Error("ingress port not propagated")
	}
	if ten.Five() != f {
		t.Errorf("five projection = %v, want %v", ten.Five(), f)
	}
	if p.Five() != f {
		t.Errorf("packet five = %v", p.Five())
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := TCPFrame(macA, macB, flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}, TCPSyn, []byte("x"))
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("Decode of %d-byte truncation should fail", cut)
		}
	}
}

func TestDecodeCorruptChecksums(t *testing.T) {
	frame := TCPFrame(macA, macB, flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 9, DstPort: 10}, TCPAck, []byte("data"))
	// Corrupt the IP header checksum region.
	bad := append([]byte(nil), frame...)
	bad[14+10] ^= 0xff
	if _, err := Decode(bad); err != ErrBadChecksum {
		t.Errorf("IP corruption: err = %v, want ErrBadChecksum", err)
	}
	// Corrupt the TCP payload; transport checksum must catch it.
	bad2 := append([]byte(nil), frame...)
	bad2[len(bad2)-1] ^= 0xff
	if _, err := Decode(bad2); err != ErrBadChecksum {
		t.Errorf("TCP corruption: err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	frame := TCPFrame(macA, macB, flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}, 0, nil)
	frame[14] = 0x65 // version 6
	if _, err := Decode(frame); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestNonIPFrame(t *testing.T) {
	frame := Builder{}.Eth(macA, macB, flow.EthTypeARP).Payload([]byte{1, 2, 3}).Bytes()
	p, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.Top != LayerARP {
		t.Errorf("top = %v, want arp", p.Top)
	}
	if !bytes.Equal(p.Payload, []byte{1, 2, 3}) {
		t.Error("ARP payload mismatch")
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	sum := internetChecksum(data)
	if sum != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", sum, ^uint16(0xddf2))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(sip, dip uint32, sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 1200 {
			payload = payload[:1200]
		}
		frame := Builder{}.
			Eth(macA, macB, flow.EthTypeIPv4).
			IPv4(netaddr.IP(sip), netaddr.IP(dip), netaddr.ProtoTCP).
			TCPSegment(netaddr.Port(sp), netaddr.Port(dp), seq, ack, flags, payload).
			Bytes()
		p, err := Decode(frame)
		if err != nil {
			return false
		}
		return p.IP.Src == netaddr.IP(sip) && p.IP.Dst == netaddr.IP(dip) &&
			p.TCP.SrcPort == netaddr.Port(sp) && p.TCP.DstPort == netaddr.Port(dp) &&
			p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Flags == flags &&
			bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIntoReuse(t *testing.T) {
	var p Packet
	f1 := flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	f2 := flow.Five{SrcIP: ipB, DstIP: ipA, Proto: netaddr.ProtoUDP, SrcPort: 3, DstPort: 4}
	if err := p.DecodeInto(TCPFrame(macA, macB, f1, TCPSyn, nil)); err != nil {
		t.Fatal(err)
	}
	if p.Five() != f1 {
		t.Fatalf("first decode: %v", p.Five())
	}
	if err := p.DecodeInto(UDPFrame(macB, macA, f2, nil)); err != nil {
		t.Fatal(err)
	}
	if p.Five() != f2 {
		t.Fatalf("reused decode: %v", p.Five())
	}
	if p.Top != LayerUDP {
		t.Error("stale layer info after reuse")
	}
}

func TestPacketString(t *testing.T) {
	f := flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	p, _ := Decode(TCPFrame(macA, macB, f, TCPSyn, nil))
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkEncodeTCP(b *testing.B) {
	f := flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: 80}
	payload := bytes.Repeat([]byte("x"), 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TCPFrame(macA, macB, f, TCPAck, payload)
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	f := flow.Five{SrcIP: ipA, DstIP: ipB, Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: 80}
	frame := TCPFrame(macA, macB, f, TCPAck, bytes.Repeat([]byte("x"), 512))
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeInto(frame); err != nil {
			b.Fatal(err)
		}
	}
}
