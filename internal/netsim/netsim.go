// Package netsim is the network substrate the experiments run on: a
// deterministic discrete-event simulator of hosts, OpenFlow switches and
// links. It stands in for the paper's enterprise network. Data packets
// travel the simulated links with configurable latencies; ident++ queries
// are exchanged through a transport that models the paper's spoofed-IP
// query path (§3.2) analytically — the daemon is invoked directly and the
// round-trip time is computed from the topology's link latencies — while
// still applying the interception chain of controllers whose networks the
// query would traverse (§3.4).
package netsim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/packet"
)

// Clock is the simulator's virtual clock. It starts at a fixed epoch so
// runs are reproducible.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the virtual time origin.
var Epoch = time.Date(2009, 8, 21, 0, 0, 0, 0, time.UTC) // WREN'09 day

// NewClock creates a clock at Epoch.
func NewClock() *Clock { return &Clock{now: Epoch} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *Clock) advanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// linkEnd describes where a switch port leads.
type linkEnd struct {
	toSwitch uint64 // 0 if host
	toPort   uint16
	toHost   netaddr.IP
	latency  time.Duration
}

// LinkStats counts traffic over one directed switch port.
type LinkStats struct {
	Frames uint64
	Bytes  uint64
}

// SwitchNode is a switch in the simulated topology.
type SwitchNode struct {
	SW          *openflow.Switch
	Interceptor core.Interceptor // controller owning this zone, if any

	n        *Network
	links    map[uint16]linkEnd
	stats    map[uint16]*LinkStats
	nextPort uint16
}

// Transmit implements openflow.Transmitter: frames leave the switch onto
// the attached link and arrive after its latency.
func (s *SwitchNode) Transmit(sw *openflow.Switch, port uint16, frame []byte) {
	s.n.mu.Lock()
	end, ok := s.links[port]
	if st := s.stats[port]; ok && st != nil {
		st.Frames++
		st.Bytes += uint64(len(frame))
	}
	s.n.mu.Unlock()
	if !ok {
		return
	}
	if end.toSwitch != 0 {
		peer := s.n.switches[end.toSwitch]
		s.n.Schedule(end.latency, func() { peer.SW.Receive(end.toPort, frame) })
		return
	}
	host := s.n.hosts[end.toHost]
	if host != nil {
		s.n.Schedule(end.latency, func() { host.deliver(frame) })
	}
}

// Host is a simulated end-host: OS state, an ident++ daemon, and a NIC.
type Host struct {
	Name   string
	Info   *hostinfo.Host
	Daemon *daemon.Daemon
	// DaemonEnabled gates whether the host answers ident++ queries; the §4
	// incremental-deployment experiments turn it off.
	DaemonEnabled bool

	n           *Network
	attachSW    uint64
	attachPort  uint16
	linkLatency time.Duration

	mu       sync.Mutex
	received []*packet.Packet
	onRecv   func(*packet.Packet)
}

// IP returns the host's address.
func (h *Host) IP() netaddr.IP { return h.Info.IP }

// MAC returns the host's hardware address.
func (h *Host) MAC() netaddr.MAC { return h.Info.MAC }

// OnReceive sets a delivery callback (in addition to recording).
func (h *Host) OnReceive(f func(*packet.Packet)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onRecv = f
}

func (h *Host) deliver(frame []byte) {
	p, err := packet.Decode(frame)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.received = append(h.received, p)
	cb := h.onRecv
	h.mu.Unlock()
	if cb != nil {
		cb(p)
	}
}

// ReceivedCount returns how many frames arrived.
func (h *Host) ReceivedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.received)
}

// ReceivedFlows returns the distinct 5-tuples delivered to the host.
func (h *Host) ReceivedFlows() map[flow.Five]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[flow.Five]int)
	for _, p := range h.received {
		out[p.Five()]++
	}
	return out
}

// ClearReceived resets the delivery record.
func (h *Host) ClearReceived() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.received = nil
}

// SendTCP injects a TCP frame for five into the network at this host's
// NIC. The destination MAC is resolved from the simulator's host table
// (the simulated network pre-populates ARP).
func (h *Host) SendTCP(five flow.Five, flags uint8, payload []byte) {
	dstMAC := h.n.macOf(five.DstIP)
	frame := packet.TCPFrame(h.Info.MAC, dstMAC, five, flags, payload)
	h.inject(frame)
}

// SendUDP injects a UDP frame for five.
func (h *Host) SendUDP(five flow.Five, payload []byte) {
	dstMAC := h.n.macOf(five.DstIP)
	frame := packet.UDPFrame(h.Info.MAC, dstMAC, five, payload)
	h.inject(frame)
}

func (h *Host) inject(frame []byte) {
	sw := h.n.switches[h.attachSW]
	port := h.attachPort
	h.n.Schedule(h.linkLatency, func() { sw.SW.Receive(port, frame) })
}

// StartFlow registers an outbound connection for pid on this host's OS
// (so the daemon can answer for it) and sends the first packet.
func (h *Host) StartFlow(pid int, dst netaddr.IP, dstPort netaddr.Port) (flow.Five, error) {
	five, err := h.Info.Connect(pid, flow.Five{
		DstIP: dst, Proto: netaddr.ProtoTCP, DstPort: dstPort,
	})
	if err != nil {
		return five, err
	}
	h.SendTCP(five, packet.TCPSyn, nil)
	return five, nil
}

// Network is the simulated topology plus the event queue.
type Network struct {
	Clock *Clock

	// DefaultLinkLatency applies when Connect* is called with latency 0.
	DefaultLinkLatency time.Duration
	// CtrlLatency models the switch-controller secure channel (one way).
	CtrlLatency time.Duration
	// DaemonProcessing models the daemon's handling time per query.
	DaemonProcessing time.Duration

	mu       sync.Mutex
	events   eventQueue
	seq      uint64
	hosts    map[netaddr.IP]*Host
	byName   map[string]*Host
	switches map[uint64]*SwitchNode
	nextSWID uint64
	nextMAC  uint64
}

// New creates an empty network with 100µs links, 200µs control channel and
// 150µs daemon processing — laptop-scale stand-ins for LAN constants.
func New() *Network {
	return &Network{
		Clock:              NewClock(),
		DefaultLinkLatency: 100 * time.Microsecond,
		CtrlLatency:        200 * time.Microsecond,
		DaemonProcessing:   150 * time.Microsecond,
		hosts:              make(map[netaddr.IP]*Host),
		byName:             make(map[string]*Host),
		switches:           make(map[uint64]*SwitchNode),
		nextSWID:           1,
		nextMAC:            0x020000000001,
	}
}

// Schedule queues fn to run after d of virtual time.
func (n *Network) Schedule(d time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	heap.Push(&n.events, &event{at: n.Clock.Now().Add(d), seq: n.seq, fn: fn})
}

// Run processes events until the queue is empty or maxEvents have run
// (0 means a safety default of 1<<20). It returns the number processed.
func (n *Network) Run(maxEvents int) int {
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	processed := 0
	for processed < maxEvents {
		n.mu.Lock()
		if n.events.Len() == 0 {
			n.mu.Unlock()
			break
		}
		e := heap.Pop(&n.events).(*event)
		n.mu.Unlock()
		n.Clock.advanceTo(e.at)
		e.fn()
		processed++
	}
	return processed
}

// RunFor processes events up to d of virtual time from now, then advances
// the clock to that horizon and expires switch flow entries.
func (n *Network) RunFor(d time.Duration) int {
	deadline := n.Clock.Now().Add(d)
	processed := 0
	for {
		n.mu.Lock()
		if n.events.Len() == 0 || n.events[0].at.After(deadline) {
			n.mu.Unlock()
			break
		}
		e := heap.Pop(&n.events).(*event)
		n.mu.Unlock()
		n.Clock.advanceTo(e.at)
		e.fn()
		processed++
	}
	n.Clock.advanceTo(deadline)
	n.TickSwitches()
	return processed
}

// TickSwitches runs flow-table expiry on every switch at the current
// virtual time.
func (n *Network) TickSwitches() {
	n.mu.Lock()
	sws := make([]*SwitchNode, 0, len(n.switches))
	for _, s := range n.switches {
		sws = append(sws, s)
	}
	n.mu.Unlock()
	for _, s := range sws {
		s.SW.Tick()
	}
}

// AddSwitch creates a switch with the given flow-table capacity (0 =
// unbounded) and registers it in the topology.
func (n *Network) AddSwitch(name string, tableCapacity int) *SwitchNode {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.nextSWID
	n.nextSWID++
	sw := openflow.NewSwitch(id, name, tableCapacity)
	sw.Clock = n.Clock.Now
	node := &SwitchNode{
		SW:       sw,
		n:        n,
		links:    make(map[uint16]linkEnd),
		stats:    make(map[uint16]*LinkStats),
		nextPort: 1,
	}
	sw.SetTransmitter(node)
	n.switches[id] = node
	return node
}

// AddHost creates a host with an OS view and an (enabled) ident++ daemon,
// assigning it a MAC.
func (n *Network) AddHost(name string, ip netaddr.IP) *Host {
	n.mu.Lock()
	mac := netaddr.MAC(n.nextMAC)
	n.nextMAC++
	n.mu.Unlock()
	info := hostinfo.New(name, ip, mac)
	h := &Host{
		Name:          name,
		Info:          info,
		Daemon:        daemon.New(info),
		DaemonEnabled: true,
		n:             n,
	}
	n.mu.Lock()
	n.hosts[ip] = h
	n.byName[name] = h
	n.mu.Unlock()
	return h
}

// HostByIP returns the host with the given address.
func (n *Network) HostByIP(ip netaddr.IP) (*Host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[ip]
	return h, ok
}

// HostByName returns the host with the given name.
func (n *Network) HostByName(name string) (*Host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.byName[name]
	return h, ok
}

// SwitchByName returns the switch node with the given name.
func (n *Network) SwitchByName(name string) (*SwitchNode, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.switches {
		if s.SW.Name == name {
			return s, true
		}
	}
	return nil, false
}

func (n *Network) macOf(ip netaddr.IP) netaddr.MAC {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[ip]; ok {
		return h.Info.MAC
	}
	return netaddr.MAC(0xffffffffffff) // unknown: broadcast
}

// ConnectHost attaches a host to a switch over a link with the given
// latency (0 = default).
func (n *Network) ConnectHost(h *Host, s *SwitchNode, latency time.Duration) {
	if latency == 0 {
		latency = n.DefaultLinkLatency
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	port := s.nextPort
	s.nextPort++
	s.SW.AddPort(port)
	s.links[port] = linkEnd{toHost: h.Info.IP, latency: latency}
	s.stats[port] = &LinkStats{}
	h.attachSW = s.SW.ID
	h.attachPort = port
	h.linkLatency = latency
}

// ConnectSwitches links two switches bidirectionally and returns the port
// numbers used on each side.
func (n *Network) ConnectSwitches(a, b *SwitchNode, latency time.Duration) (uint16, uint16) {
	if latency == 0 {
		latency = n.DefaultLinkLatency
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	pa := a.nextPort
	a.nextPort++
	pb := b.nextPort
	b.nextPort++
	a.SW.AddPort(pa)
	b.SW.AddPort(pb)
	a.links[pa] = linkEnd{toSwitch: b.SW.ID, toPort: pb, latency: latency}
	b.links[pb] = linkEnd{toSwitch: a.SW.ID, toPort: pa, latency: latency}
	a.stats[pa] = &LinkStats{}
	b.stats[pb] = &LinkStats{}
	return pa, pb
}

// Stats returns the traffic counters for a switch port.
func (s *SwitchNode) Stats(port uint16) LinkStats {
	s.n.mu.Lock()
	defer s.n.mu.Unlock()
	if st, ok := s.stats[port]; ok {
		return *st
	}
	return LinkStats{}
}

// Path implements core.Topology by BFS over the switch graph: the hops from
// the source host's attachment switch to the destination host's port.
func (n *Network) Path(src, dst netaddr.IP) ([]core.Hop, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hsrc, ok := n.hosts[src]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown source host %s", src)
	}
	hdst, ok := n.hosts[dst]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown destination host %s", dst)
	}
	swPath, err := n.switchPathLocked(hsrc.attachSW, hdst.attachSW)
	if err != nil {
		return nil, err
	}
	hops := make([]core.Hop, 0, len(swPath))
	for i, swID := range swPath {
		node := n.switches[swID]
		if i == len(swPath)-1 {
			hops = append(hops, core.Hop{Datapath: swID, OutPort: hdst.attachPort})
			continue
		}
		out, ok := portToward(node, swPath[i+1])
		if !ok {
			return nil, fmt.Errorf("netsim: no link %d -> %d", swID, swPath[i+1])
		}
		hops = append(hops, core.Hop{Datapath: swID, OutPort: out})
	}
	return hops, nil
}

func portToward(node *SwitchNode, nextSW uint64) (uint16, bool) {
	for port, end := range node.links {
		if end.toSwitch == nextSW {
			return port, true
		}
	}
	return 0, false
}

// switchPathLocked BFS-computes the switch id sequence from a to b.
func (n *Network) switchPathLocked(a, b uint64) ([]uint64, error) {
	if a == b {
		return []uint64{a}, nil
	}
	prev := map[uint64]uint64{a: a}
	queue := []uint64{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := n.switches[cur]
		// Deterministic neighbor order: scan ports ascending.
		for port := uint16(1); port < node.nextPort; port++ {
			end, ok := node.links[port]
			if !ok || end.toSwitch == 0 {
				continue
			}
			if _, seen := prev[end.toSwitch]; seen {
				continue
			}
			prev[end.toSwitch] = cur
			if end.toSwitch == b {
				var path []uint64
				for at := b; ; at = prev[at] {
					path = append([]uint64{at}, path...)
					if at == a {
						return path, nil
					}
				}
			}
			queue = append(queue, end.toSwitch)
		}
	}
	return nil, fmt.Errorf("netsim: no path between switches %d and %d", a, b)
}

// pathLatencyLocked sums link latencies along the switch path plus both
// host attachment links.
func (n *Network) pathLatencyLocked(src, dst netaddr.IP) (time.Duration, error) {
	hsrc, ok := n.hosts[src]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown host %s", src)
	}
	hdst, ok := n.hosts[dst]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown host %s", dst)
	}
	swPath, err := n.switchPathLocked(hsrc.attachSW, hdst.attachSW)
	if err != nil {
		return 0, err
	}
	total := hsrc.linkLatency + hdst.linkLatency
	for i := 0; i+1 < len(swPath); i++ {
		node := n.switches[swPath[i]]
		port, _ := portToward(node, swPath[i+1])
		total += node.links[port].latency
	}
	return total, nil
}
