package netsim

import (
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/packet"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// buildLine builds hostA - sw1 - sw2 - hostB with an attached controller.
func buildLine(t testing.TB, policy string) (*Network, *core.Controller, *Host, *Host) {
	t.Helper()
	n := New()
	sw1 := n.AddSwitch("sw1", 0)
	sw2 := n.AddSwitch("sw2", 0)
	n.ConnectSwitches(sw1, sw2, 0)
	ha := n.AddHost("hostA", netaddr.MustParseIP("10.0.0.1"))
	hb := n.AddHost("hostB", netaddr.MustParseIP("10.0.0.2"))
	n.ConnectHost(ha, sw1, 0)
	n.ConnectHost(hb, sw2, 0)

	ctl := core.New(core.Config{
		Name:           "main",
		Policy:         pf.MustCompile("policy", policy),
		Transport:      n.Transport(sw1, nil),
		Topology:       n,
		Latency:        n.LatencyModel(),
		InstallEntries: true,
		Clock:          n.Clock.Now,
	})
	n.AttachController(ctl, sw1, sw2)
	return n, ctl, ha, hb
}

func runSkypeFlow(t testing.TB, n *Network, ha, hb *Host) flow.Five {
	t.Helper()
	alice := ha.Info.AddUser("alice", "users")
	pa := ha.Info.Exec(alice, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210"})
	bob := hb.Info.AddUser("bob", "users")
	pb := hb.Info.Exec(bob, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210"})
	if err := hb.Info.Listen(pb.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	five, err := ha.StartFlow(pa.PID, hb.IP(), 5060)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(0)
	return five
}

func TestFigure1EndToEnd(t *testing.T) {
	n, ctl, ha, hb := buildLine(t, `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`)
	five := runSkypeFlow(t, n, ha, hb)

	// Step 5: the packet proceeded to the destination.
	if hb.ReceivedCount() != 1 {
		t.Fatalf("hostB received %d frames, want 1", hb.ReceivedCount())
	}
	if got := hb.ReceivedFlows()[five]; got != 1 {
		t.Errorf("flow deliveries = %d", got)
	}
	if ctl.Counters.Get("flows_allowed") != 1 {
		t.Errorf("counters: %s", ctl.Counters)
	}

	// Subsequent packets bypass the controller (cached entry on the path).
	before := ctl.Counters.Get("packet_ins")
	ha.SendTCP(five, packet.TCPAck, []byte("data"))
	n.Run(0)
	if ctl.Counters.Get("packet_ins") != before {
		t.Error("second packet of flow reached the controller")
	}
	if hb.ReceivedCount() != 2 {
		t.Errorf("hostB received %d, want 2", hb.ReceivedCount())
	}

	// keep state: the reply direction is pre-installed.
	hb.SendTCP(five.Reverse(), packet.TCPSyn|packet.TCPAck, nil)
	n.Run(0)
	if ctl.Counters.Get("packet_ins") != before {
		t.Error("reverse flow punted despite keep state")
	}
	if ha.ReceivedCount() != 1 {
		t.Errorf("hostA received %d, want 1 (the SYN-ACK)", ha.ReceivedCount())
	}
}

func TestDeniedFlowNeverArrives(t *testing.T) {
	n, ctl, ha, hb := buildLine(t, `
block all
pass from any to any with eq(@src[name], skype)
`)
	mallory := ha.Info.AddUser("mallory", "users")
	pa := ha.Info.Exec(mallory, hostinfo.Executable{Path: "/usr/bin/exfil", Name: "exfil", Version: "1"})
	five, err := ha.StartFlow(pa.PID, hb.IP(), 9999)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(0)
	if hb.ReceivedCount() != 0 {
		t.Fatal("denied flow delivered")
	}
	if ctl.Counters.Get("flows_denied") != 1 {
		t.Errorf("counters: %s", ctl.Counters)
	}
	// Retransmission dies in the switch, not at the controller.
	before := ctl.Counters.Get("packet_ins")
	ha.SendTCP(five, packet.TCPSyn, nil)
	n.Run(0)
	if ctl.Counters.Get("packet_ins") != before {
		t.Error("retransmission of denied flow reached controller")
	}
	if hb.ReceivedCount() != 0 {
		t.Error("denied flow leaked on retransmission")
	}
}

func TestSetupBreakdownRecorded(t *testing.T) {
	n, ctl, ha, hb := buildLine(t, `pass from any to any with eq(@src[name], skype)`)
	runSkypeFlow(t, n, ha, hb)
	if ctl.Setup.Total.Count() != 1 {
		t.Fatal("no setup breakdown recorded")
	}
	// Punt and install come from the latency model.
	if ctl.Setup.Punt.Max() != n.CtrlLatency {
		t.Errorf("punt = %v, want %v", ctl.Setup.Punt.Max(), n.CtrlLatency)
	}
	// Query RTT to hostB crosses two switch links + host link, doubled,
	// plus daemon processing: strictly greater than to hostA.
	if ctl.Setup.QueryDst.Max() <= ctl.Setup.QuerySrc.Max() {
		t.Errorf("query RTTs: src=%v dst=%v (dst is farther and must cost more)",
			ctl.Setup.QuerySrc.Max(), ctl.Setup.QueryDst.Max())
	}
	// One inter-switch link plus the host attachment link, both ways, plus
	// daemon processing.
	wantDst := 2*(n.DefaultLinkLatency+n.DefaultLinkLatency) + n.DaemonProcessing
	if ctl.Setup.QueryDst.Max() != wantDst {
		t.Errorf("dst RTT = %v, want %v", ctl.Setup.QueryDst.Max(), wantDst)
	}
}

func TestIdleTimeoutEvictsAndReinstalls(t *testing.T) {
	n := New()
	sw1 := n.AddSwitch("sw1", 0)
	ha := n.AddHost("hostA", netaddr.MustParseIP("10.0.0.1"))
	hb := n.AddHost("hostB", netaddr.MustParseIP("10.0.0.2"))
	n.ConnectHost(ha, sw1, 0)
	n.ConnectHost(hb, sw1, 0)
	ctl := core.New(core.Config{
		Name: "main", Policy: pf.MustCompile("p", `pass from any to any`),
		Transport: n.Transport(sw1, nil), Topology: n,
		InstallEntries: true, IdleTimeout: 100 * time.Millisecond,
		Clock: n.Clock.Now,
	})
	n.AttachController(ctl, sw1)
	u := ha.Info.AddUser("u")
	p := ha.Info.Exec(u, hostinfo.Executable{Path: "/bin/app", Name: "app"})
	five, err := ha.StartFlow(p.PID, hb.IP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(0)
	if sw1.SW.Table.Len() == 0 {
		t.Fatal("no entry installed")
	}
	// Idle long enough: entry evicted, controller notified.
	n.RunFor(time.Second)
	if sw1.SW.Table.Len() != 0 {
		t.Fatal("entry not evicted after idle timeout")
	}
	if ctl.Counters.Get("flow_removed") == 0 {
		t.Error("controller not notified of eviction")
	}
	// Next packet punts again.
	before := ctl.Counters.Get("packet_ins")
	ha.SendTCP(five, packet.TCPAck, nil)
	n.Run(0)
	if ctl.Counters.Get("packet_ins") != before+1 {
		t.Error("post-eviction packet did not punt")
	}
}

func TestPathAcrossThreeSwitches(t *testing.T) {
	n := New()
	s1 := n.AddSwitch("s1", 0)
	s2 := n.AddSwitch("s2", 0)
	s3 := n.AddSwitch("s3", 0)
	n.ConnectSwitches(s1, s2, 0)
	n.ConnectSwitches(s2, s3, 0)
	ha := n.AddHost("a", netaddr.MustParseIP("10.0.0.1"))
	hb := n.AddHost("b", netaddr.MustParseIP("10.0.0.2"))
	n.ConnectHost(ha, s1, 0)
	n.ConnectHost(hb, s3, 0)
	hops, err := n.Path(ha.IP(), hb.IP())
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Fatalf("hops = %v", hops)
	}
	if hops[0].Datapath != s1.SW.ID || hops[1].Datapath != s2.SW.ID || hops[2].Datapath != s3.SW.ID {
		t.Errorf("path order wrong: %v", hops)
	}
	// Same-switch path.
	hc := n.AddHost("c", netaddr.MustParseIP("10.0.0.3"))
	n.ConnectHost(hc, s1, 0)
	hops2, err := n.Path(ha.IP(), hc.IP())
	if err != nil {
		t.Fatal(err)
	}
	if len(hops2) != 1 || hops2[0].Datapath != s1.SW.ID {
		t.Errorf("same-switch path = %v", hops2)
	}
	// Unknown host.
	if _, err := n.Path(ha.IP(), netaddr.MustParseIP("9.9.9.9")); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestPreemptiveInstallCoversWholePath(t *testing.T) {
	n := New()
	s1 := n.AddSwitch("s1", 0)
	s2 := n.AddSwitch("s2", 0)
	s3 := n.AddSwitch("s3", 0)
	n.ConnectSwitches(s1, s2, 0)
	n.ConnectSwitches(s2, s3, 0)
	ha := n.AddHost("a", netaddr.MustParseIP("10.0.0.1"))
	hb := n.AddHost("b", netaddr.MustParseIP("10.0.0.2"))
	n.ConnectHost(ha, s1, 0)
	n.ConnectHost(hb, s3, 0)
	ctl := core.New(core.Config{
		Name: "main", Policy: pf.MustCompile("p", `pass from any to any`),
		Transport: n.Transport(s1, nil), Topology: n,
		InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctl, s1, s2, s3)
	u := ha.Info.AddUser("u")
	p := ha.Info.Exec(u, hostinfo.Executable{Path: "/bin/app", Name: "app"})
	if _, err := ha.StartFlow(p.PID, hb.IP(), 80); err != nil {
		t.Fatal(err)
	}
	n.Run(0)
	// Only the first switch should have punted; s2/s3 got entries
	// preemptively (§3.1).
	if ctl.Counters.Get("packet_ins") != 1 {
		t.Errorf("packet_ins = %d, want 1", ctl.Counters.Get("packet_ins"))
	}
	for _, s := range []*SwitchNode{s1, s2, s3} {
		if s.SW.Table.Len() != 1 {
			t.Errorf("%s table len = %d, want 1", s.SW.Name, s.SW.Table.Len())
		}
	}
	if hb.ReceivedCount() != 1 {
		t.Errorf("delivered = %d", hb.ReceivedCount())
	}
}

func TestDaemonDisabledHostFailsClosed(t *testing.T) {
	n, ctl, ha, hb := buildLine(t, `
block all
pass from any to any with eq(@src[name], skype)
`)
	ha.DaemonEnabled = false
	runSkypeFlow(t, n, ha, hb)
	if ctl.Counters.Get("flows_denied") != 1 {
		t.Error("flow from daemon-less host should fail closed under block all")
	}
	if ctl.Counters.Get("query_errors") == 0 {
		t.Error("query error not counted")
	}
}

func TestInterceptionAugmentsAcrossZones(t *testing.T) {
	// Two zones: controller A owns s1, controller B owns s2. A query from
	// A's controller to hostB (attached to s2) crosses B's zone and gets
	// augmented.
	n := New()
	s1 := n.AddSwitch("s1", 0)
	s2 := n.AddSwitch("s2", 0)
	n.ConnectSwitches(s1, s2, 0)
	ha := n.AddHost("a", netaddr.MustParseIP("10.1.0.1"))
	hb := n.AddHost("b", netaddr.MustParseIP("10.2.0.1"))
	n.ConnectHost(ha, s1, 0)
	n.ConnectHost(hb, s2, 0)

	ctlB := core.New(core.Config{
		Name:      "B",
		Policy:    pf.MustCompile("pB", `pass from any to any`),
		Transport: n.Transport(s2, nil),
		Topology:  n, InstallEntries: true, Clock: n.Clock.Now,
	})
	ctlB.SetAugmenter(func(q wire.Query, resp *wire.Response) {
		resp.Augment("controller:B").Add("branch-ok", "yes")
	})
	n.AttachController(ctlB, s2)

	ctlA := core.New(core.Config{
		Name: "A",
		Policy: pf.MustCompile("pA", `
block all
pass from any to any with eq(@dst[branch-ok], yes)
`),
		Transport: n.Transport(s1, nil), Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(ctlA, s1)

	u := ha.Info.AddUser("u")
	p := ha.Info.Exec(u, hostinfo.Executable{Path: "/bin/app", Name: "app"})
	bu := hb.Info.AddUser("svc")
	bp := hb.Info.Exec(bu, hostinfo.Executable{Path: "/bin/srv", Name: "srv"})
	if err := hb.Info.Listen(bp.PID, netaddr.ProtoTCP, 8080); err != nil {
		t.Fatal(err)
	}
	if _, err := ha.StartFlow(p.PID, hb.IP(), 8080); err != nil {
		t.Fatal(err)
	}
	n.Run(0)
	if ctlA.Counters.Get("flows_allowed") != 1 {
		t.Errorf("flow should pass thanks to B's augmentation; A counters: %s", ctlA.Counters)
	}
	if ctlB.Counters.Get("responses_augmented") == 0 {
		t.Error("B never augmented")
	}
	if hb.ReceivedCount() == 0 {
		t.Error("packet not delivered")
	}
}

func TestLinkStatsCount(t *testing.T) {
	n, _, ha, hb := buildLine(t, `pass from any to any`)
	five := runSkypeFlow(t, n, ha, hb)
	ha.SendTCP(five, packet.TCPAck, make([]byte, 500))
	n.Run(0)
	// Port 1 on sw1 is the inter-switch link (connected first).
	s1, _ := n.switches[1], n.switches[2]
	st := s1.Stats(1)
	if st.Frames != 2 {
		t.Errorf("inter-switch frames = %d, want 2", st.Frames)
	}
	if st.Bytes == 0 {
		t.Error("no bytes counted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int) {
		n, ctl, ha, hb := buildLine(t, `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`)
		five := runSkypeFlow(t, n, ha, hb)
		for i := 0; i < 10; i++ {
			ha.SendTCP(five, packet.TCPAck, []byte("x"))
		}
		n.Run(0)
		return ctl.Counters.Get("packet_ins"), hb.ReceivedCount()
	}
	p1, r1 := run()
	p2, r2 := run()
	if p1 != p2 || r1 != r2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", p1, r1, p2, r2)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	n, _, ha, hb := buildLine(t, `pass from any to any`)
	start := n.Clock.Now()
	runSkypeFlow(t, n, ha, hb)
	if !n.Clock.Now().After(start) {
		t.Error("virtual clock did not advance")
	}
}

func BenchmarkFlowSetupEndToEnd(b *testing.B) {
	n, _, ha, hb := buildLine(b, `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`)
	alice := ha.Info.AddUser("alice", "users")
	pa := ha.Info.Exec(alice, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210"})
	bob := hb.Info.AddUser("bob", "users")
	pb := hb.Info.Exec(bob, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210"})
	if err := hb.Info.Listen(pb.PID, netaddr.ProtoTCP, 5060); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		five, err := ha.StartFlow(pa.PID, hb.IP(), 5060)
		if err != nil {
			b.Fatal(err)
		}
		n.Run(0)
		ha.Info.Close(five)
	}
}
