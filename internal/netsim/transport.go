package netsim

import (
	"time"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/query"
	"identxx/internal/wire"
)

// Transport implements core.QueryTransport over the simulated network. The
// query itself is executed by invoking the target daemon directly; the
// round-trip latency is computed from the topology (controller home switch
// to host and back, plus daemon processing), which preserves the latency
// shape of the paper's in-band spoofed-IP queries without simulating the
// bootstrapping of the query packets through the very flow tables they
// populate. Interceptors owned by zones the query path crosses are applied
// in path order (§3.4).
type Transport struct {
	n    *Network
	home uint64           // the querying controller's home switch
	self core.Interceptor // excluded from the chain (a controller does not intercept itself)
}

// Transport creates a query transport for a controller homed at the given
// switch. self, when non-nil, is skipped in interception chains.
func (n *Network) Transport(home *SwitchNode, self core.Interceptor) *Transport {
	return &Transport{n: n, home: home.SW.ID, self: self}
}

// Query implements core.QueryTransport.
func (t *Transport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	t.n.mu.Lock()
	h, ok := t.n.hosts[host]
	var rtt time.Duration
	var chain []core.Interceptor
	if ok {
		// Path from the controller's home switch to the host.
		if swPath, err := t.n.switchPathLocked(t.home, h.attachSW); err == nil {
			var oneWay time.Duration
			seen := make(map[core.Interceptor]bool)
			for i, swID := range swPath {
				node := t.n.switches[swID]
				if ic := node.Interceptor; ic != nil && ic != t.self && !seen[ic] {
					seen[ic] = true
					chain = append(chain, ic)
				}
				if i+1 < len(swPath) {
					if port, ok := portToward(node, swPath[i+1]); ok {
						oneWay += node.links[port].latency
					}
				}
			}
			oneWay += h.linkLatency
			rtt = 2*oneWay + t.n.DaemonProcessing
		}
	}
	t.n.mu.Unlock()
	if !ok || !h.DaemonEnabled {
		// The query still travelled (and could have been intercepted by a
		// controller answering on the host's behalf).
		resp := core.InterceptChain{Outbound: chain}.Exchange(host, q, func() *wire.Response {
			return nil
		})
		if resp != nil {
			return resp, rtt, nil
		}
		return nil, rtt, core.ErrNoDaemon
	}
	resp := core.InterceptChain{Outbound: chain}.Exchange(host, q, func() *wire.Response {
		return h.Daemon.HandleQuery(q)
	})
	return resp, rtt, nil
}

// SetUpdateHandler subscribes fn to every daemon-enabled host's update
// stream, delivering each update after the one-way network latency from
// the host to the controller's home switch — the simulator's equivalent of
// the pool's demuxed update frames. Subscription is taken at call time:
// hosts added afterwards do not push (mirroring a deployment where a
// controller subscribes as it connects). Hosts with DaemonEnabled=false
// are skipped — they are the honest-but-legacy case the controller covers
// with TTL leases.
func (t *Transport) SetUpdateHandler(fn func(host netaddr.IP, u wire.Update)) {
	t.n.mu.Lock()
	hosts := make([]*Host, 0, len(t.n.hosts))
	for _, h := range t.n.hosts {
		hosts = append(hosts, h)
	}
	t.n.mu.Unlock()
	for _, h := range hosts {
		if !h.DaemonEnabled {
			continue
		}
		ip := h.Info.IP
		delay := t.oneWay(ip)
		h.Daemon.Subscribe(func(u wire.Update) {
			t.n.Schedule(delay, func() { fn(ip, u) })
		})
	}
}

// oneWay computes the host→controller-home-switch latency for update
// delivery, mirroring the Query path's RTT computation.
func (t *Transport) oneWay(host netaddr.IP) time.Duration {
	t.n.mu.Lock()
	defer t.n.mu.Unlock()
	h, ok := t.n.hosts[host]
	if !ok {
		return t.n.DefaultLinkLatency
	}
	var oneWay time.Duration
	if swPath, err := t.n.switchPathLocked(t.home, h.attachSW); err == nil {
		for i, swID := range swPath {
			if i+1 < len(swPath) {
				if port, ok := portToward(t.n.switches[swID], swPath[i+1]); ok {
					oneWay += t.n.switches[swID].links[port].latency
				}
			}
		}
	}
	return oneWay + h.linkLatency
}

// PlaneTransport wraps the simulator transport in the production
// query-plane engine (internal/query), so simulator experiments run the
// same coalescing, negative-cache, and breaker machinery as a real
// deployment: repeated queries to daemon-less hosts stop re-travelling the
// virtual network, and concurrent identical queries share one exchange.
// The engine reads the simulation's virtual clock, keeping expiry
// semantics deterministic.
func (n *Network) PlaneTransport(home *SwitchNode, self core.Interceptor) *query.Engine {
	return query.NewEngine(query.Config{
		Lower: n.Transport(home, self),
		Clock: n.Clock.Now,
	})
}

// Latency implements core.LatencyModel with the network's control-channel
// constant for every switch.
type Latency struct {
	n *Network
}

// LatencyModel returns the simulator's control-plane latency model.
func (n *Network) LatencyModel() *Latency { return &Latency{n: n} }

// PuntLatency implements core.LatencyModel.
func (l *Latency) PuntLatency(uint64) time.Duration { return l.n.CtrlLatency }

// InstallLatency implements core.LatencyModel.
func (l *Latency) InstallLatency(uint64) time.Duration { return l.n.CtrlLatency }

// AttachController wires a controller to a set of switches: the controller
// becomes each switch's OpenFlow controller, each switch is registered as a
// datapath, and each switch's zone interceptor is set to the controller so
// ident++ exchanges crossing this zone can be intercepted/augmented.
func (n *Network) AttachController(c *core.Controller, switches ...*SwitchNode) {
	for _, s := range switches {
		s.SW.SetController(c)
		c.AddDatapath(s.SW)
		n.mu.Lock()
		s.Interceptor = c
		n.mu.Unlock()
	}
}

// ControllerShim delays packet-in delivery by the control-channel latency,
// so verdict effects land at the right virtual time.
type ControllerShim struct {
	n *Network
	c *core.Controller
}

// NewControllerShim wraps a controller for latency-accurate delivery.
func (n *Network) NewControllerShim(c *core.Controller) *ControllerShim {
	return &ControllerShim{n: n, c: c}
}

// HandlePacketIn implements openflow.Controller.
func (s *ControllerShim) HandlePacketIn(sw *openflow.Switch, ev openflow.PacketIn) {
	s.n.Schedule(s.n.CtrlLatency, func() { s.c.HandleEvent(ev) })
}

// HandleFlowRemoved implements openflow.Controller.
func (s *ControllerShim) HandleFlowRemoved(sw *openflow.Switch, ev openflow.FlowRemoved) {
	s.n.Schedule(s.n.CtrlLatency, func() { s.c.HandleFlowRemoved(sw, ev) })
}

// AttachControllerDelayed is AttachController using the latency shim.
func (n *Network) AttachControllerDelayed(c *core.Controller, switches ...*SwitchNode) {
	shim := n.NewControllerShim(c)
	for _, s := range switches {
		s.SW.SetController(shim)
		c.AddDatapath(s.SW)
		n.mu.Lock()
		s.Interceptor = c
		n.mu.Unlock()
	}
}
