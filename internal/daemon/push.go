package daemon

import (
	"sort"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/wire"
)

// This file is the daemon half of the revocation plane: the daemon
// remembers what it has asserted (which facts, for which flows), watches
// its host's OS state, and pushes wire.Update messages to subscribers when
// a previously-asserted fact stops being true. The controller's verdicts
// are computed from flow-setup-time answers; without this channel a user
// logging out or a process exiting keeps its allowed flows until switch
// idle-timeout, and the response cache re-grants them without asking again.
//
// The answered-facts memo is bounded (answeredCap): a daemon on a busy
// server must not grow per-flow state without limit just because it was
// queried. Evicting a memo entry means the daemon can no longer tell
// subscribers when that flow's facts change, so eviction itself is
// published as a flow-scoped update — the controller conservatively
// revokes, the next packet re-queries, and the memo re-learns the flow.

// DefaultAnsweredCap bounds the answered-facts memo.
const DefaultAnsweredCap = 4096

// DefaultDynamicCap bounds the application-supplied flow-pair map
// (ProvideFlowPairs), which previously grew without limit unless the
// application called ClearFlowPairs.
const DefaultDynamicCap = 4096

// Subscribe registers fn to receive every future update, and synchronously
// delivers a hello update carrying the daemon's current serial before
// Subscribe returns — the subscriber's proof that this daemon pushes at
// all, and its serial baseline for gap detection. fn is invoked with the
// publication lock held: updates arrive in serial order, exactly once, and
// fn must not call back into the daemon's publication side (Subscribe,
// ProvideFlowPairs, ...). The returned cancel removes the subscription.
//
// Changes that happened while nobody was subscribed could not be
// published; they mark the stream dirty, and Subscribe burns one serial
// for them before saying hello — so a reconnecting controller's
// last-known serial no longer matches, its transport synthesizes a
// resync, and nothing that changed during the disconnect is silently
// kept.
func (d *Daemon) Subscribe(fn func(wire.Update)) (cancel func()) {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	if d.subs == nil {
		d.subs = make(map[int]func(wire.Update))
	}
	if d.dirty {
		d.serial++
		d.dirty = false
	}
	id := d.nextSub
	d.nextSub++
	d.subs[id] = fn
	d.Counters.Add("daemon_subscribes", 1)
	fn(d.helloLocked())
	return func() {
		d.pubMu.Lock()
		delete(d.subs, id)
		d.pubMu.Unlock()
	}
}

// UpdateSerial returns the serial of the most recently published update.
func (d *Daemon) UpdateSerial() uint64 {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	return d.serial
}

// AnsweredStats reports the answered-facts memo's resident entries and
// lifetime evictions (the RuleCacheStats shape).
func (d *Daemon) AnsweredStats() (entries, evictions int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.answered)), d.answeredEvicted
}

// FlowPairStats reports the dynamic flow-pair map's resident entries and
// lifetime evictions.
func (d *Daemon) FlowPairStats() (entries, evictions int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.dynamic)), d.dynamicEvicted
}

// emitLocked publishes one update to every subscriber. d.pubMu must be
// held: it owns the serial sequence and the delivery order.
func (d *Daemon) emitLocked(u wire.Update) {
	d.serial++
	u.Serial = d.serial
	if len(d.subs) > 0 {
		d.Counters.Add("daemon_updates_pushed", int64(len(d.subs)))
	}
	for _, fn := range d.subs {
		fn(u)
	}
}

// flatten reduces a response to its effective facts: for each key, the
// Latest value (§3.3's "the latest value is the most trusted").
func flatten(resp *wire.Response) map[string]string {
	facts := make(map[string]string)
	for _, s := range resp.Sections {
		for _, p := range s.Pairs {
			facts[p.Key] = p.Value
		}
	}
	return facts
}

// remember memoizes the facts just asserted for a flow, evicting (and
// returning, for publication) an arbitrary other flow when the memo is
// over capacity. Callers must not hold d.mu or d.pubMu.
func (d *Daemon) remember(f flow.Five, resp *wire.Response) {
	facts := flatten(resp)
	d.mu.Lock()
	if d.answered == nil {
		d.answered = make(map[flow.Five]map[string]string)
	}
	limit := d.answeredCap
	if limit <= 0 {
		limit = DefaultAnsweredCap
	}
	_, existed := d.answered[f]
	var evicted flow.Five
	var haveEvicted bool
	if !existed && len(d.answered) >= limit {
		for victim := range d.answered {
			if victim != f {
				delete(d.answered, victim)
				d.answeredEvicted++
				evicted, haveEvicted = victim, true
				break
			}
		}
	}
	d.answered[f] = facts
	d.mu.Unlock()
	if haveEvicted {
		d.pubMu.Lock()
		if len(d.subs) > 0 {
			// The daemon stops tracking the evicted flow: a flow-scoped
			// update with no key tells the controller to drop everything it
			// derived from this daemon's answers for that flow.
			d.emitLocked(wire.Update{Flow: evicted})
		} else {
			d.dirty = true
		}
		d.pubMu.Unlock()
	}
}

// diffFacts returns whether the fact maps differ and, if so, the first
// changed key (sorted, for determinism) with its old and new values.
func diffFacts(old, cur map[string]string) (key, oldV, newV string, changed bool) {
	var keys []string
	for k := range old {
		if cur[k] != old[k] {
			keys = append(keys, k)
		}
	}
	for k := range cur {
		if _, ok := old[k]; !ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "", "", "", false
	}
	sort.Strings(keys)
	k := keys[0]
	return k, old[k], cur[k], true
}

// onHostChange is the hostinfo change listener: it re-derives assertions
// for exactly the flows the mutation touched (connection churn, process
// exit), falling back to the full memo walk only for mutations whose
// blast radius the host cannot enumerate (listener binds, patch
// installs, configuration changes).
func (d *Daemon) onHostChange(ch hostinfo.Change) {
	if ch.All {
		d.rescan()
		return
	}
	for _, f := range ch.Flows {
		d.rescanFlow(f)
	}
}

// rescan re-derives the facts for every memoized flow and publishes an
// update for each flow whose assertion changed. It runs after changes of
// unknowable scope (see onHostChange) and configuration installs; cost is
// bounded by the memo cap. With no subscribers nothing can be published:
// the stream is marked dirty so the next Subscribe forces a resync.
func (d *Daemon) rescan() {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	d.mu.RLock()
	flows := make([]flow.Five, 0, len(d.answered))
	for f := range d.answered {
		flows = append(flows, f)
	}
	d.mu.RUnlock()
	if len(d.subs) == 0 {
		if len(flows) > 0 {
			d.dirty = true
		}
		return
	}
	for _, f := range flows {
		d.rescanFlowLocked(f)
	}
}

// rescanFlow re-derives one flow's facts and publishes if they changed.
func (d *Daemon) rescanFlow(f flow.Five) {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	if len(d.subs) == 0 {
		// Nothing can be published; if the flow was being tracked, its
		// assertion may now be stale — force a resync at next subscribe.
		d.mu.RLock()
		_, tracked := d.answered[f]
		d.mu.RUnlock()
		if tracked {
			d.dirty = true
		}
		return
	}
	d.rescanFlowLocked(f)
}

// rescanFlowLocked does the per-flow diff-and-publish. d.pubMu must be
// held; d.mu must not be.
func (d *Daemon) rescanFlowLocked(f flow.Five) {
	cur := flatten(d.buildResponse(wire.Query{Flow: f}))
	d.mu.Lock()
	old, ok := d.answered[f]
	if !ok {
		d.mu.Unlock()
		return
	}
	key, oldV, newV, changed := diffFacts(old, cur)
	if changed {
		d.answered[f] = cur
	}
	d.mu.Unlock()
	if changed {
		d.emitLocked(wire.Update{Flow: f, Key: key, Old: oldV, New: newV})
	}
}
