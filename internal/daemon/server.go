package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"identxx/internal/wire"
)

// Port is the TCP port the ident++ daemon listens on (§2): "end-hosts run
// an ident++ daemon as a server that receives queries on TCP port 783".
const Port = 783

// Server serves framed ident++ queries over TCP. One connection may carry
// any number of query/response exchanges; each read is bounded by
// ReadTimeout and the frame codec's size limit, so a slow or hostile client
// cannot pin resources indefinitely.
type Server struct {
	Daemon *Daemon

	// ReadTimeout bounds each query read; zero means DefaultReadTimeout.
	ReadTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// DefaultReadTimeout is applied when Server.ReadTimeout is zero.
const DefaultReadTimeout = 5 * time.Second

// NewServer wraps a daemon in a TCP server.
func NewServer(d *Daemon) *Server {
	return &Server{Daemon: d, conns: make(map[net.Conn]struct{})}
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serving in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil, errors.New("daemon: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = DefaultReadTimeout
	}
	for {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
		q, err := wire.ReadQuery(conn)
		if err != nil {
			return // EOF, timeout, or garbage: drop the connection
		}
		resp := s.Daemon.HandleQuery(q)
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
		if err := wire.WriteResponse(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes active connections, and waits for the
// serving goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// Query performs one ident++ exchange with the daemon at addr. It is the
// controller-side client for real-socket deployments.
func Query(ctx context.Context, addr string, q wire.Query) (*wire.Response, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}
	if err := wire.WriteQuery(conn, q); err != nil {
		return nil, fmt.Errorf("daemon: write query: %w", err)
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("daemon: connection closed before response")
		}
		return nil, fmt.Errorf("daemon: read response: %w", err)
	}
	if resp.Flow != q.Flow {
		return nil, fmt.Errorf("daemon: response flow %v does not match query %v", resp.Flow, q.Flow)
	}
	return resp, nil
}
