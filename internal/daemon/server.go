package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"identxx/internal/wire"
)

// Port is the TCP port the ident++ daemon listens on (§2): "end-hosts run
// an ident++ daemon as a server that receives queries on TCP port 783".
const Port = 783

// Server serves framed ident++ queries over TCP. One connection may carry
// any number of query/response exchanges; each read is bounded by
// ReadTimeout and the frame codec's size limit, so a slow or hostile client
// cannot pin resources indefinitely.
//
// A connection that sends a FrameSubscribe control frame additionally
// receives unsolicited FrameUpdate pushes whenever the daemon's assertions
// change (the revocation plane). Responses and pushed updates share the
// connection under a per-connection write lock; clients that never
// subscribe never see an update frame, which is the whole back-compat
// story — a legacy FIFO reader is never surprised.
type Server struct {
	Daemon *Daemon

	// ReadTimeout bounds each query read; zero means DefaultReadTimeout.
	// It also bounds each update push's write.
	ReadTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*servedConn
	closed   bool
	wg       sync.WaitGroup
}

// servedConn is the per-connection state: the write lock serializing
// responses against pushed updates, and the subscription's cancel.
type servedConn struct {
	conn    net.Conn
	writeMu sync.Mutex
	cancel  func() // non-nil once subscribed
}

// DefaultReadTimeout is applied when Server.ReadTimeout is zero.
const DefaultReadTimeout = 5 * time.Second

// NewServer wraps a daemon in a TCP server.
func NewServer(d *Daemon) *Server {
	return &Server{Daemon: d, conns: make(map[net.Conn]*servedConn)}
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serving in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil, errors.New("daemon: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		sc := &servedConn{conn: conn}
		s.conns[conn] = sc
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				if sc.cancel != nil {
					sc.cancel()
				}
				conn.Close()
			}()
			s.serveConn(sc)
		}()
	}
}

func (s *Server) serveConn(sc *servedConn) {
	conn := sc.conn
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = DefaultReadTimeout
	}
	for {
		// An unsubscribed connection is a transient client: bound each read
		// so a slow or hostile peer cannot pin the goroutine. A subscribed
		// connection is a controller's long-lived push channel — it is
		// legitimately silent between queries, so idle reads must not kill
		// it; failed pushes tear it down instead.
		deadline := time.Now().Add(timeout)
		if sc.cancel != nil {
			deadline = time.Time{}
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			return
		}
		f, err := wire.ReadFrame(conn)
		if err != nil {
			return // EOF, timeout, or garbage: drop the connection
		}
		switch f.Type {
		case wire.FrameSubscribe:
			if sc.cancel != nil {
				continue // idempotent: already subscribed
			}
			// Subscribe delivers the hello (and every later update) under
			// the daemon's publication lock, so the hello is on the wire
			// before any subsequent update and serials arrive in order.
			// Updates are pushed from the publishing goroutine; the write
			// lock keeps them whole against this goroutine's responses. A
			// push that cannot complete within the timeout abandons the
			// connection (closing it), making the client reconnect and
			// resync rather than silently miss updates.
			sc.cancel = s.Daemon.Subscribe(func(u wire.Update) {
				sc.writeMu.Lock()
				defer sc.writeMu.Unlock()
				conn.SetWriteDeadline(time.Now().Add(timeout))
				if err := wire.WriteUpdate(conn, u); err != nil {
					conn.Close()
				}
			})
		case wire.FrameQuery:
			q, err := wire.DecodeQuery(f.Payload, f.SrcIP, f.DstIP)
			if err != nil {
				return
			}
			resp := s.Daemon.HandleQuery(q)
			sc.writeMu.Lock()
			conn.SetWriteDeadline(time.Now().Add(timeout))
			err = wire.WriteResponse(conn, resp)
			sc.writeMu.Unlock()
			if err != nil {
				return
			}
		default:
			return // a client must not send response/update frames
		}
	}
}

// Close stops accepting, closes active connections, and waits for the
// serving goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// Query performs one ident++ exchange with the daemon at addr. It is the
// controller-side client for real-socket deployments.
func Query(ctx context.Context, addr string, q wire.Query) (*wire.Response, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}
	if err := wire.WriteQuery(conn, q); err != nil {
		return nil, fmt.Errorf("daemon: write query: %w", err)
	}
	resp, err := wire.ReadResponse(conn)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("daemon: connection closed before response")
		}
		return nil, fmt.Errorf("daemon: read response: %w", err)
	}
	if resp.Flow != q.Flow {
		return nil, fmt.Errorf("daemon: response flow %v does not match query %v", resp.Flow, q.Flow)
	}
	return resp, nil
}
