package daemon

import (
	"identxx/internal/cred"
	"identxx/internal/wire"
)

// This file is the daemon's half of the credential plane (internal/cred):
// holding the issued credential, attaching it to every hello, and
// re-helloing live subscriptions when the credential rotates so sessions
// never lapse into unauthorized.

// SetCredential installs (or rotates) the daemon's delegation credential.
// Hellos from now on carry it, signed with its session key over the
// (host, serial) transcript. If subscribers are live, each immediately
// receives a re-hello at the *current* serial: the controller re-verifies
// the new credential but sees no serial movement, so a rotation costs one
// signature check and zero resyncs — the "refresh before expiry" path.
// A nil ic removes the credential (hellos go back to the legacy shape).
func (d *Daemon) SetCredential(ic *cred.Issued) {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	d.credential = ic
	if len(d.subs) == 0 {
		return
	}
	u := d.helloLocked()
	d.Counters.Add("daemon_rehellos", int64(len(d.subs)))
	for _, fn := range d.subs {
		fn(u)
	}
}

// Credential returns the currently installed credential, or nil.
func (d *Daemon) Credential() *cred.Issued {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	return d.credential
}

// CredentialExpiry returns the installed credential's expiry as a unix
// timestamp, or 0 when no credential is installed — the shape the
// telemetry gauge wants.
func (d *Daemon) CredentialExpiry() int64 {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	if d.credential == nil {
		return 0
	}
	return d.credential.Expiry.Unix()
}

// helloLocked builds a hello update at the current serial, carrying the
// credential and its signed session transcript when one is installed.
// d.pubMu must be held.
func (d *Daemon) helloLocked() wire.Update {
	u := wire.Update{Hello: true, Serial: d.serial}
	if ic := d.credential; ic != nil {
		u.Cred = ic.Encode()
		u.CredSig = ic.SignHello(d.host.IP, d.serial)
	}
	return u
}
