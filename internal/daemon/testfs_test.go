package daemon

import (
	"io/fs"
	"net"
	"testing/fstest"
	"time"
)

// testFS adapts a map of file name to contents into an fs.FS for
// config-loading tests.
type testFS map[string]string

func (t testFS) Open(name string) (fs.File, error) {
	m := fstest.MapFS{}
	for k, v := range t {
		m[k] = &fstest.MapFile{Data: []byte(v)}
	}
	return m.Open(name)
}

func (t testFS) ReadDir(name string) ([]fs.DirEntry, error) {
	m := fstest.MapFS{}
	for k, v := range t {
		m[k] = &fstest.MapFile{Data: []byte(v)}
	}
	return m.ReadDir(name)
}

func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}
