package daemon

import (
	"context"
	"strings"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

const fig3Config = `
@app /usr/bin/skype {
	name : skype
	version : 210
	vendor : skype.com
	type : voip
	requirements : \
		pass from any port http \
		with eq(@src[name], skype) \
		pass from any port https \
		with eq(@src[name], skype)
	req-sig : 21oirw3eda
}
`

func newHostWithSkype(t *testing.T) (*hostinfo.Host, *Daemon, flow.Five) {
	t.Helper()
	h := hostinfo.New("pc1", netaddr.MustParseIP("10.0.0.1"), netaddr.MustParseMAC("02:00:00:00:00:01"))
	alice := h.AddUser("alice", "users", "staff")
	p := h.Exec(alice, hostinfo.Executable{
		Path: "/usr/bin/skype", Name: "skype", Version: "210", Vendor: "skype.com", Type: "voip",
	})
	f, err := h.Connect(p.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(h)
	cf, err := ParseConfig("50-skype.conf", fig3Config)
	if err != nil {
		t.Fatal(err)
	}
	d.InstallConfig(cf, true)
	return h, d, f
}

func TestParseConfigFigure3(t *testing.T) {
	cf, err := ParseConfig("fig3", fig3Config)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.Apps) != 1 {
		t.Fatalf("apps = %d", len(cf.Apps))
	}
	app := cf.Apps[0]
	if app.Path != "/usr/bin/skype" {
		t.Errorf("path = %q", app.Path)
	}
	if v, _ := app.Get("name"); v != "skype" {
		t.Errorf("name = %q", v)
	}
	if v, _ := app.Get("version"); v != "210" {
		t.Errorf("version = %q", v)
	}
	req, ok := app.Get("requirements")
	if !ok {
		t.Fatal("no requirements")
	}
	// Continuations joined into one logical value containing both rules.
	if !strings.Contains(req, "pass from any port http") ||
		!strings.Contains(req, "pass from any port https") {
		t.Errorf("requirements = %q", req)
	}
	if strings.Contains(req, "\\") || strings.Contains(req, "\n") {
		t.Errorf("continuation chars leaked: %q", req)
	}
	if v, _ := app.Get("req-sig"); v != "21oirw3eda" {
		t.Errorf("req-sig = %q", v)
	}
}

func TestParseConfigHostPairsAndComments(t *testing.T) {
	cf, err := ParseConfig("t", `
# a comment
site : bldg-4
@app /bin/x {
	name : x
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.HostPairs) != 1 || cf.HostPairs[0].Key != "site" || cf.HostPairs[0].Value != "bldg-4" {
		t.Errorf("host pairs = %v", cf.HostPairs)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"@app {",                       // missing path
		"@app /bin/x",                  // missing brace
		"@app /bin/x {\nname : x\n",    // unterminated
		"}",                            // unmatched
		"@app /bin/x {\n@app /bin/y {", // nested
		"justaword",                    // no colon
	} {
		if _, err := ParseConfig("bad", bad); err == nil {
			t.Errorf("ParseConfig(%q) should fail", bad)
		}
	}
}

func TestHandleQuerySourceRole(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	resp := d.HandleQuery(wire.Query{Flow: f, Keys: []string{wire.KeyUserID, wire.KeyName}})
	for key, want := range map[string]string{
		wire.KeyUserID:  "alice",
		wire.KeyGroupID: "users staff",
		wire.KeyName:    "skype",
		wire.KeyAppName: "skype",
		wire.KeyVersion: "210",
		wire.KeyVendor:  "skype.com",
		wire.KeyType:    "voip",
		wire.KeyHost:    "pc1",
	} {
		if v, ok := resp.Latest(key); !ok || v != want {
			t.Errorf("%s = %q (ok=%v), want %q", key, v, ok, want)
		}
	}
	// Config-only keys are present.
	if req, ok := resp.Latest(wire.KeyRequirements); !ok || !strings.Contains(req, "pass from any port http") {
		t.Errorf("requirements = %q", req)
	}
	// exe-hash is the kernel-derived hash.
	wantHash := hostinfo.Executable{Path: "/usr/bin/skype", Version: "210", Vendor: "skype.com"}.Hash()
	if v, _ := resp.Latest(wire.KeyExeHash); v != wantHash {
		t.Errorf("exe-hash = %q, want %q", v, wantHash)
	}
}

func TestHandleQueryDestinationRole(t *testing.T) {
	h := hostinfo.New("srv", netaddr.MustParseIP("192.168.1.1"), netaddr.MustParseMAC("02:00:00:00:00:02"))
	smtpUser := h.AddSystemUser("smtp")
	p := h.Exec(smtpUser, hostinfo.Executable{Path: "/usr/sbin/smtpd", Name: "smtpd", Version: "2"})
	if err := h.Listen(p.PID, netaddr.ProtoTCP, 25); err != nil {
		t.Fatal(err)
	}
	d := New(h)
	f := flow.Five{
		SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: h.IP,
		Proto: netaddr.ProtoTCP, SrcPort: 50000, DstPort: 25,
	}
	resp := d.HandleQuery(wire.Query{Flow: f})
	if v, _ := resp.Latest(wire.KeyUserID); v != "smtp" {
		t.Errorf("dst userID = %q, want smtp (Figure 2's smtp receiver check)", v)
	}
}

func TestHandleQueryUnknownFlow(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	g := f
	g.DstPort++ // no such connection
	resp := d.HandleQuery(wire.Query{Flow: g})
	if v, ok := resp.Latest(wire.KeyError); !ok || v != "NO-USER" {
		t.Errorf("error = %q (ok=%v), want NO-USER", v, ok)
	}
	if _, ok := resp.Latest(wire.KeyUserID); ok {
		t.Error("unknown flow must not leak a userID")
	}
}

func TestKernelSectionOverridesConfigLies(t *testing.T) {
	h := hostinfo.New("pc1", netaddr.MustParseIP("10.0.0.1"), netaddr.MustParseMAC("02:00:00:00:00:01"))
	mallory := h.AddUser("mallory", "users")
	p := h.Exec(mallory, hostinfo.Executable{Path: "/home/mallory/evil", Name: "evil", Version: "666"})
	f, _ := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 80})
	d := New(h)
	// Mallory writes a user config claiming the binary is skype owned by root.
	cf, err := ParseConfig("user", `
@app /home/mallory/evil {
	name : skype
	userID : root
	version : 210
}
`)
	if err != nil {
		t.Fatal(err)
	}
	d.InstallConfig(cf, false)
	resp := d.HandleQuery(wire.Query{Flow: f})
	// Latest wins, and the kernel-derived section is last: the lie loses.
	if v, _ := resp.Latest(wire.KeyUserID); v != "mallory" {
		t.Errorf("userID = %q; user config must not override kernel truth", v)
	}
	if v, _ := resp.Latest(wire.KeyName); v != "evil" {
		t.Errorf("name = %q; user config must not override kernel truth", v)
	}
	// The lie is still visible in the chain for auditing.
	if chain, _ := resp.Concat(wire.KeyName); !strings.Contains(chain, "skype") {
		t.Errorf("concat should expose the claimed name: %q", chain)
	}
}

func TestDynamicFlowPairs(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	d.ProvideFlowPairs(f, wire.KV{Key: "user-initiated", Value: "true"})
	resp := d.HandleQuery(wire.Query{Flow: f})
	if v, ok := resp.Latest("user-initiated"); !ok || v != "true" {
		t.Errorf("dynamic pair = %q (ok=%v)", v, ok)
	}
	d.ClearFlowPairs(f)
	resp2 := d.HandleQuery(wire.Query{Flow: f})
	if _, ok := resp2.Latest("user-initiated"); ok {
		t.Error("cleared dynamic pair still present")
	}
}

func TestDynamicPairsCannotOverrideKernel(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	d.ProvideFlowPairs(f, wire.KV{Key: wire.KeyUserID, Value: "root"})
	resp := d.HandleQuery(wire.Query{Flow: f})
	if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
		t.Errorf("userID = %q; application pairs must not override kernel section", v)
	}
}

func TestForgeHook(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	d.SetForge(func(q wire.Query, honest *wire.Response) *wire.Response {
		r := wire.NewResponse(q.Flow)
		r.Add(wire.KeyUserID, "root")
		r.Add(wire.KeyName, "sshd")
		return r
	})
	resp := d.HandleQuery(wire.Query{Flow: f})
	if v, _ := resp.Latest(wire.KeyUserID); v != "root" {
		t.Errorf("forged userID = %q", v)
	}
	d.SetForge(nil)
	resp2 := d.HandleQuery(wire.Query{Flow: f})
	if v, _ := resp2.Latest(wire.KeyUserID); v != "alice" {
		t.Error("removing forge hook did not restore honesty")
	}
}

func TestServerQueryOverTCP(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := Query(ctx, addr.String(), wire.Query{Flow: f, Keys: []string{wire.KeyUserID}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
		t.Errorf("TCP userID = %q", v)
	}
	if resp.Flow != f {
		t.Errorf("TCP response flow = %v", resp.Flow)
	}
}

func TestServerMultipleQueriesPerConnectionAndClients(t *testing.T) {
	_, d, f := newHostWithSkype(t)
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 4)
	for c := 0; c < 4; c++ {
		go func() {
			for i := 0; i < 10; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				resp, err := Query(ctx, addr.String(), wire.Query{Flow: f})
				cancel()
				if err != nil {
					done <- err
					return
				}
				if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
					done <- context.DeadlineExceeded
					return
				}
			}
			done <- nil
		}()
	}
	for c := 0; c < 4; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	_, d, _ := newHostWithSkype(t)
	srv := NewServer(d)
	srv.ReadTimeout = 200 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A client speaking a wrong protocol gets disconnected, and the server
	// keeps serving honest clients.
	conn, err := netDial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered a garbage request")
	}
	conn.Close()
}

func TestQueryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Query(ctx, "127.0.0.1:1", wire.Query{})
	if err == nil {
		t.Error("cancelled query should fail")
	}
}

func TestLoadConfigFSOrdering(t *testing.T) {
	fsys := testFS{
		"10-a.conf": "@app /bin/x {\n\tname : first\n}\n",
		"20-b.conf": "@app /bin/x {\n\tname : second\n}\n",
	}
	cf, err := LoadConfigFS(fsys, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.Apps) != 2 || cf.Apps[0].Get1("name") != "first" || cf.Apps[1].Get1("name") != "second" {
		t.Fatalf("apps out of order: %+v", cf.Apps)
	}
	// Later install wins for the same path.
	h := hostinfo.New("pc", netaddr.MustParseIP("10.0.0.1"), 1)
	u := h.AddUser("u")
	p := h.Exec(u, hostinfo.Executable{Path: "/bin/x"})
	f, _ := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 80})
	d := New(h)
	d.InstallConfig(cf, true)
	resp := d.HandleQuery(wire.Query{Flow: f})
	// Kernel name is path basename "x"; config "second" is in an earlier
	// section. Check the config value via Concat ordering instead.
	chain, _ := resp.Concat(wire.KeyName)
	if !strings.HasPrefix(chain, "second") {
		t.Errorf("config chain = %q, want the 20-b.conf value first", chain)
	}
}

// Get1 is a test helper: Get that drops the ok.
func (a *AppConfig) Get1(key string) string {
	v, _ := a.Get(key)
	return v
}

func BenchmarkHandleQuery(b *testing.B) {
	h := hostinfo.New("pc1", netaddr.MustParseIP("10.0.0.1"), 1)
	alice := h.AddUser("alice", "users")
	p := h.Exec(alice, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210"})
	f, _ := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060})
	d := New(h)
	cf, _ := ParseConfig("c", fig3Config)
	d.InstallConfig(cf, true)
	q := wire.Query{Flow: f}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := d.HandleQuery(q); len(resp.Sections) == 0 {
			b.Fatal("empty response")
		}
	}
}
