package daemon

import (
	"net"
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// pushHost builds a host with one user running one process that owns an
// outbound flow, plus the daemon serving it.
func pushHost(t *testing.T) (*hostinfo.Host, *Daemon, *hostinfo.Process, flow.Five) {
	t.Helper()
	h := hostinfo.New("pc", netaddr.MustParseIP("10.9.0.1"), 1)
	u := h.AddUser("alice", "staff")
	p := h.Exec(u, hostinfo.Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210"})
	d := New(h)
	five, err := h.Connect(p.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.9.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, d, p, five
}

// collector accumulates published updates.
type collector struct {
	mu   sync.Mutex
	got  []wire.Update
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) fn(u wire.Update) {
	c.mu.Lock()
	c.got = append(c.got, u)
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *collector) all() []wire.Update {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wire.Update(nil), c.got...)
}

func TestSubscribeHelloCarriesSerial(t *testing.T) {
	_, d, _, _ := pushHost(t)
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()
	got := c.all()
	if len(got) != 1 || !got[0].Hello {
		t.Fatalf("want exactly one hello, got %+v", got)
	}
	if got[0].Serial != d.UpdateSerial() {
		t.Errorf("hello serial %d != daemon serial %d", got[0].Serial, d.UpdateSerial())
	}
}

func TestProcessExitPublishesFlowUpdate(t *testing.T) {
	h, d, p, five := pushHost(t)
	// The daemon must have asserted facts for the flow first.
	resp := d.HandleQuery(wire.Query{Flow: five})
	if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
		t.Fatalf("setup: userID = %q", v)
	}
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()

	h.Kill(p.PID)

	got := c.all()
	if len(got) != 2 { // hello + the change
		t.Fatalf("updates = %+v, want hello + one change", got)
	}
	u := got[1]
	if u.Flow != five {
		t.Errorf("update flow = %v, want %v", u.Flow, five)
	}
	if u.Serial != got[0].Serial+1 {
		t.Errorf("serial %d does not follow hello %d", u.Serial, got[0].Serial)
	}
	if u.Hello || u.Key == "" {
		t.Errorf("update should name a changed key: %+v", u)
	}
}

func TestLogoutAndGroupChangePublish(t *testing.T) {
	h, d, _, five := pushHost(t)
	d.HandleQuery(wire.Query{Flow: five})
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()

	if !h.SetUserGroups("alice", "contractors") {
		t.Fatal("SetUserGroups failed")
	}
	got := c.all()
	if len(got) != 2 {
		t.Fatalf("after group change: updates = %+v", got)
	}
	if got[1].Key != wire.KeyGroupID {
		t.Errorf("changed key = %q, want groupID", got[1].Key)
	}
	if got[1].Old != "staff" || got[1].New != "contractors" {
		t.Errorf("old/new = %q/%q", got[1].Old, got[1].New)
	}

	h.Logout("alice")
	got = c.all()
	if len(got) != 3 {
		t.Fatalf("after logout: updates = %+v", got)
	}
	if got[2].Flow != five {
		t.Errorf("logout update flow = %v", got[2].Flow)
	}
}

func TestConfigInstallPublishes(t *testing.T) {
	_, d, _, five := pushHost(t)
	d.HandleQuery(wire.Query{Flow: five})
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()

	d.InstallConfig(&ConfigFile{Apps: []*AppConfig{{
		Path:  "/usr/bin/skype",
		Pairs: []wire.KV{{Key: "vendor", Value: "skype-inc"}},
	}}}, true)
	got := c.all()
	if len(got) != 2 {
		t.Fatalf("after config install: updates = %+v", got)
	}
	if got[1].Key != "vendor" || got[1].New != "skype-inc" {
		t.Errorf("update = %+v, want vendor change", got[1])
	}
}

func TestClearFlowPairsPublishes(t *testing.T) {
	_, d, _, five := pushHost(t)
	d.ProvideFlowPairs(five, wire.KV{Key: "initiated-by", Value: "user"})
	d.HandleQuery(wire.Query{Flow: five})
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()

	d.ClearFlowPairs(five)
	got := c.all()
	if len(got) != 2 {
		t.Fatalf("after ClearFlowPairs: updates = %+v", got)
	}
	if got[1].Key != "initiated-by" || got[1].Old != "user" || got[1].New != "" {
		t.Errorf("update = %+v, want initiated-by removed", got[1])
	}
}

func TestAnsweredMemoBoundedAndEvictionPublished(t *testing.T) {
	h, d, p, _ := pushHost(t)
	d.SetAnsweredCap(4)
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()

	for i := 0; i < 8; i++ {
		f, err := h.Connect(p.PID, flow.Five{
			DstIP: netaddr.MustParseIP("10.9.0.2"), Proto: netaddr.ProtoTCP,
			SrcPort: netaddr.Port(20000 + i), DstPort: 80,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.HandleQuery(wire.Query{Flow: f})
	}
	entries, evictions := d.AnsweredStats()
	if entries > 4 {
		t.Errorf("memo holds %d entries, cap is 4", entries)
	}
	if evictions != 4 {
		t.Errorf("evictions = %d, want 4", evictions)
	}
	// Each eviction is published as a flow-scoped keyless update.
	evictedUpdates := 0
	for _, u := range c.all() {
		if !u.Hello && u.FlowScoped() && u.Key == "" {
			evictedUpdates++
		}
	}
	if evictedUpdates != 4 {
		t.Errorf("eviction updates = %d, want 4", evictedUpdates)
	}
}

func TestDynamicFlowPairsBounded(t *testing.T) {
	_, d, _, _ := pushHost(t)
	d.SetDynamicCap(4)
	for i := 0; i < 10; i++ {
		f := flow.Five{
			SrcIP: netaddr.MustParseIP("10.9.0.1"), DstIP: netaddr.MustParseIP("10.9.0.2"),
			Proto: netaddr.ProtoTCP, SrcPort: netaddr.Port(30000 + i), DstPort: 80,
		}
		d.ProvideFlowPairs(f, wire.KV{Key: "k", Value: "v"})
	}
	entries, evictions := d.FlowPairStats()
	if entries > 4 {
		t.Errorf("dynamic map holds %d entries, cap is 4", entries)
	}
	if evictions != 6 {
		t.Errorf("evictions = %d, want 6", evictions)
	}
}

func TestNoUserToOwnedTransitionPublishes(t *testing.T) {
	// A flow answered NO-USER (destination not yet accepted) whose owner
	// appears later is also a fact change worth publishing.
	h := hostinfo.New("srv", netaddr.MustParseIP("10.9.1.1"), 1)
	u := h.AddSystemUser("httpd", "daemons")
	p := h.Exec(u, hostinfo.Executable{Path: "/usr/sbin/httpd", Name: "httpd"})
	d := New(h)
	five := flow.Five{
		SrcIP: netaddr.MustParseIP("10.9.1.2"), DstIP: h.IP,
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80,
	}
	resp := d.HandleQuery(wire.Query{Flow: five})
	if v, _ := resp.Latest(wire.KeyError); v != "NO-USER" {
		t.Fatalf("setup: expected NO-USER, got %v", resp.Keys())
	}
	c := newCollector()
	cancel := d.Subscribe(c.fn)
	defer cancel()

	if err := h.Listen(p.PID, netaddr.ProtoTCP, 80); err != nil {
		t.Fatal(err)
	}
	got := c.all()
	if len(got) != 2 {
		t.Fatalf("after Listen: updates = %+v", got)
	}
	if got[1].Flow != five {
		t.Errorf("update flow = %v, want %v", got[1].Flow, five)
	}
}

// TestServerPushesUpdatesOverTCP drives the full server path: subscribe,
// hello, interleaved query, then a host change pushed as an update frame.
func TestServerPushesUpdatesOverTCP(t *testing.T) {
	h, d, p, five := pushHost(t)
	d.HandleQuery(wire.Query{Flow: five})
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if err := wire.WriteSubscribe(conn); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	hello, err := wire.DecodeUpdateFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if !hello.Hello {
		t.Fatalf("first frame after subscribe = %+v, want hello", hello)
	}

	// A query on the same connection still round-trips.
	if err := wire.WriteQuery(conn, wire.Query{Flow: five, Keys: []string{wire.KeyUserID}}); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameResponse {
		t.Fatalf("expected response frame, got %#02x", f.Type)
	}

	// Mutate the host: the change must arrive as a pushed update frame.
	h.Kill(p.PID)
	f, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	u, err := wire.DecodeUpdateFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if u.Flow != five {
		t.Errorf("pushed update flow = %v, want %v", u.Flow, five)
	}
	if u.Serial != hello.Serial+1 {
		t.Errorf("pushed serial = %d, want %d", u.Serial, hello.Serial+1)
	}
}

// TestServerUnsubscribedNeverPushed pins the back-compat contract: a
// connection that never subscribes sees only response frames, whatever the
// host does.
func TestServerUnsubscribedNeverPushed(t *testing.T) {
	h, d, p, five := pushHost(t)
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A second, subscribed connection proves updates are flowing at all.
	sub, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteSubscribe(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(sub); err != nil { // hello
		t.Fatal(err)
	}

	legacy, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	legacy.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteQuery(legacy, wire.Query{Flow: five}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadResponse(legacy); err != nil {
		t.Fatal(err)
	}

	h.Kill(p.PID)
	if _, err := wire.ReadFrame(sub); err != nil { // the update, on the subscriber
		t.Fatal(err)
	}

	// The legacy connection gets exactly its response to a fresh query —
	// no update frame is interleaved ahead of it.
	if err := wire.WriteQuery(legacy, wire.Query{Flow: five}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameResponse {
		t.Fatalf("legacy connection received frame %#02x, want response only", f.Type)
	}
}

// TestChangesWhileUnsubscribedForceResync: facts changing while no one is
// subscribed cannot be published; the next Subscribe must advertise a
// serial that does not match what a previous subscriber last saw, so its
// transport synthesizes a resync instead of silently keeping stale grants.
func TestChangesWhileUnsubscribedForceResync(t *testing.T) {
	h, d, p, five := pushHost(t)
	d.HandleQuery(wire.Query{Flow: five})

	c1 := newCollector()
	cancel := d.Subscribe(c1.fn)
	before := c1.all()[0].Serial // hello

	// The subscriber goes away (connection lost), then the world changes.
	cancel()
	h.Kill(p.PID)

	// Resubscribe: the hello's serial must have moved past `before`.
	c2 := newCollector()
	cancel2 := d.Subscribe(c2.fn)
	defer cancel2()
	after := c2.all()[0].Serial
	if after == before {
		t.Fatalf("hello serial unchanged (%d) across an unsubscribed fact change: reconnecting controllers would never resync", after)
	}

	// Without any intervening change, resubscribing does not burn serials.
	cancel2()
	c3 := newCollector()
	cancel3 := d.Subscribe(c3.fn)
	defer cancel3()
	if got := c3.all()[0].Serial; got != after {
		t.Errorf("idle resubscribe moved the serial %d -> %d", after, got)
	}
}
