package daemon

import (
	"path"
	"strings"
	"sync"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/wire"
)

// ForgeFunc lets tests and the §5 security experiments model a compromised
// end-host: it receives the query and the honest response the daemon would
// have sent and returns what actually goes on the wire. "The attacker would
// gain control of the ident++ daemon and can send false ident++ responses"
// (§5.3).
type ForgeFunc func(q wire.Query, honest *wire.Response) *wire.Response

// Daemon answers ident++ queries for one host. It is safe for concurrent
// use; controllers may query while applications register flow pairs.
type Daemon struct {
	host *hostinfo.Host

	mu        sync.RWMutex
	userApps  map[string]*AppConfig // user-writable config, by exe path
	sysApps   map[string]*AppConfig // system config (/etc/identxx), by exe path
	hostPairs []wire.KV             // host-level static pairs (system)
	dynamic   map[flow.Five][]wire.KV
	forge     ForgeFunc
}

// New creates a daemon serving queries about h.
func New(h *hostinfo.Host) *Daemon {
	return &Daemon{
		host:     h,
		userApps: make(map[string]*AppConfig),
		sysApps:  make(map[string]*AppConfig),
		dynamic:  make(map[flow.Five][]wire.KV),
	}
}

// Host returns the host this daemon serves.
func (d *Daemon) Host() *hostinfo.Host { return d.host }

// InstallConfig merges a parsed configuration file. system marks files from
// the system configuration directory, "only modifiable by the local
// end-host administrator" (§3.5); their pairs are emitted after (and thus
// override) user-writable configuration.
func (d *Daemon) InstallConfig(cf *ConfigFile, system bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, app := range cf.Apps {
		if system {
			d.sysApps[app.Path] = app
		} else {
			d.userApps[app.Path] = app
		}
	}
	if system {
		d.hostPairs = append(d.hostPairs, cf.HostPairs...)
	}
}

// ProvideFlowPairs registers application-supplied pairs for a flow — the
// run-time channel the paper routes over a Unix domain socket, used e.g. by
// a browser to distinguish user-initiated flows (§3.5).
func (d *Daemon) ProvideFlowPairs(f flow.Five, pairs ...wire.KV) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dynamic[f] = append(d.dynamic[f], pairs...)
}

// ClearFlowPairs drops the dynamic pairs for a flow (connection closed).
func (d *Daemon) ClearFlowPairs(f flow.Five) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.dynamic, f)
}

// SetForge installs (or, with nil, removes) a compromise hook.
func (d *Daemon) SetForge(f ForgeFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.forge = f
}

// HandleQuery produces the response for a query. The response always has
// the daemon's kernel-derived section last, so `Latest` semantics prefer
// ground truth over application- or user-supplied values; an intercepting
// controller augmenting later still overrides everything, as §3.3 intends.
//
// Section order:
//  1. application — dynamic per-flow pairs, least trusted
//  2. user-config — pairs from user-writable configuration files
//  3. system-config — pairs from the administrator's configuration
//  4. daemon — kernel-derived ground truth (userID, exe-hash, ...)
//
// Empty sections are elided. A query about a flow the host knows nothing
// about yields a single section carrying an error pair, like the ident
// protocol's NO-USER.
func (d *Daemon) HandleQuery(q wire.Query) *wire.Response {
	honest := d.buildHonest(q)
	d.mu.RLock()
	forge := d.forge
	d.mu.RUnlock()
	if forge != nil {
		return forge(q, honest)
	}
	return honest
}

func (d *Daemon) buildHonest(q wire.Query) *wire.Response {
	resp := &wire.Response{Flow: q.Flow}

	proc, ok := d.host.OwnerOf(q.Flow, hostinfo.RoleAuto)
	if !ok {
		s := wire.Section{Source: "daemon"}
		s.Add(wire.KeyError, "NO-USER")
		s.Add(wire.KeyHost, d.host.Name)
		resp.Sections = append(resp.Sections, s)
		return resp
	}

	d.mu.RLock()
	defer d.mu.RUnlock()

	if pairs, ok := d.dynamic[q.Flow]; ok && len(pairs) > 0 {
		resp.Sections = append(resp.Sections, wire.Section{
			Source: "application",
			Pairs:  append([]wire.KV(nil), pairs...),
		})
	}
	if app, ok := d.userApps[proc.Exe.Path]; ok && len(app.Pairs) > 0 {
		resp.Sections = append(resp.Sections, wire.Section{
			Source: "user-config",
			Pairs:  append([]wire.KV(nil), app.Pairs...),
		})
	}
	sys := wire.Section{Source: "system-config", Pairs: append([]wire.KV(nil), d.hostPairs...)}
	if app, ok := d.sysApps[proc.Exe.Path]; ok {
		sys.Pairs = append(sys.Pairs, app.Pairs...)
	}
	if len(sys.Pairs) > 0 {
		resp.Sections = append(resp.Sections, sys)
	}

	ground := wire.Section{Source: "daemon"}
	ground.Add(wire.KeyUserID, proc.User.Name)
	if len(proc.User.Groups) > 0 {
		ground.Add(wire.KeyGroupID, strings.Join(proc.User.Groups, " "))
	}
	name := proc.Exe.Name
	if name == "" {
		name = path.Base(proc.Exe.Path)
	}
	ground.Add(wire.KeyName, name)
	ground.Add(wire.KeyAppName, name)
	ground.Add(wire.KeyExeHash, proc.Exe.Hash())
	if proc.Exe.Version != "" {
		ground.Add(wire.KeyVersion, proc.Exe.Version)
	}
	if proc.Exe.Vendor != "" {
		ground.Add(wire.KeyVendor, proc.Exe.Vendor)
	}
	if proc.Exe.Type != "" {
		ground.Add(wire.KeyType, proc.Exe.Type)
	}
	if patches := d.host.Patches(); patches != "" {
		ground.Add(wire.KeyOSPatch, patches)
	}
	ground.Add(wire.KeyHost, d.host.Name)
	resp.Sections = append(resp.Sections, ground)
	return resp
}
