package daemon

import (
	"path"
	"strings"
	"sync"

	"identxx/internal/cred"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/metrics"
	"identxx/internal/wire"
)

// ForgeFunc lets tests and the §5 security experiments model a compromised
// end-host: it receives the query and the honest response the daemon would
// have sent and returns what actually goes on the wire. "The attacker would
// gain control of the ident++ daemon and can send false ident++ responses"
// (§5.3).
type ForgeFunc func(q wire.Query, honest *wire.Response) *wire.Response

// Daemon answers ident++ queries for one host. It is safe for concurrent
// use; controllers may query while applications register flow pairs.
//
// Beyond answering, the daemon participates in the revocation plane (see
// push.go): it remembers the facts it asserted per answered flow (bounded
// by answeredCap), listens for its host's OS-state changes, and publishes
// wire.Update messages to subscribers when a previously-given answer stops
// being true.
type Daemon struct {
	host *hostinfo.Host

	// Counters is the daemon's observability surface (queries answered,
	// updates pushed, subscriber churn), exported by internal/telemetry's
	// daemon collector. Always non-nil after New.
	Counters *metrics.Counter

	mu              sync.RWMutex
	userApps        map[string]*AppConfig // user-writable config, by exe path
	sysApps         map[string]*AppConfig // system config (/etc/identxx), by exe path
	hostPairs       []wire.KV             // host-level static pairs (system)
	dynamic         map[flow.Five][]wire.KV
	dynamicCap      int   // bound on dynamic (0 = DefaultDynamicCap)
	dynamicEvicted  int64 // lifetime dynamic evictions
	forge           ForgeFunc
	answered        map[flow.Five]map[string]string // facts asserted per flow
	answeredCap     int                             // bound on answered (0 = DefaultAnsweredCap)
	answeredEvicted int64                           // lifetime memo evictions

	// Publication side (push.go). pubMu owns the serial sequence and the
	// subscriber set; it is never held while d.mu is taken for writing by
	// the same goroutine's caller, and subscribers run under it so updates
	// are delivered in serial order.
	pubMu   sync.Mutex
	serial  uint64
	subs    map[int]func(wire.Update)
	nextSub int
	// dirty records that assertions may have changed while nobody was
	// subscribed; the next Subscribe burns a serial so the subscriber's
	// transport detects the lapse and resyncs.
	dirty bool
	// credential, when set, rides every hello (cred.go); pubMu guards it
	// because hellos are built under pubMu.
	credential *cred.Issued
}

// New creates a daemon serving queries about h. The daemon registers
// itself as a change listener on the host, so OS-state mutations
// re-derive the facts it has asserted and publish updates to subscribers.
func New(h *hostinfo.Host) *Daemon {
	d := &Daemon{
		host:     h,
		Counters: metrics.NewCounter(),
		userApps: make(map[string]*AppConfig),
		sysApps:  make(map[string]*AppConfig),
		dynamic:  make(map[flow.Five][]wire.KV),
	}
	h.AddChangeListener(d.onHostChange)
	return d
}

// SetAnsweredCap overrides the answered-facts memo bound (0 restores the
// default). Intended for tests and small-footprint deployments.
func (d *Daemon) SetAnsweredCap(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.answeredCap = n
}

// SetDynamicCap overrides the dynamic flow-pair bound (0 restores the
// default).
func (d *Daemon) SetDynamicCap(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dynamicCap = n
}

// Host returns the host this daemon serves.
func (d *Daemon) Host() *hostinfo.Host { return d.host }

// InstallConfig merges a parsed configuration file. system marks files from
// the system configuration directory, "only modifiable by the local
// end-host administrator" (§3.5); their pairs are emitted after (and thus
// override) user-writable configuration.
func (d *Daemon) InstallConfig(cf *ConfigFile, system bool) {
	d.mu.Lock()
	for _, app := range cf.Apps {
		if system {
			d.sysApps[app.Path] = app
		} else {
			d.userApps[app.Path] = app
		}
	}
	if system {
		d.hostPairs = append(d.hostPairs, cf.HostPairs...)
	}
	d.mu.Unlock()
	// New configuration changes what the daemon asserts for flows of the
	// affected applications; re-derive and publish.
	d.rescan()
}

// ProvideFlowPairs registers application-supplied pairs for a flow — the
// run-time channel the paper routes over a Unix domain socket, used e.g. by
// a browser to distinguish user-initiated flows (§3.5). The map is bounded
// (SetDynamicCap / DefaultDynamicCap): past the cap an arbitrary other
// flow's pairs are evicted, counted in FlowPairStats, and — since eviction
// changes what the daemon would answer — published like any other change.
func (d *Daemon) ProvideFlowPairs(f flow.Five, pairs ...wire.KV) {
	d.mu.Lock()
	limit := d.dynamicCap
	if limit <= 0 {
		limit = DefaultDynamicCap
	}
	_, existed := d.dynamic[f]
	var evicted flow.Five
	haveEvicted := false
	if !existed && len(d.dynamic) >= limit {
		for victim := range d.dynamic {
			if victim != f {
				delete(d.dynamic, victim)
				d.dynamicEvicted++
				evicted, haveEvicted = victim, true
				break
			}
		}
	}
	d.dynamic[f] = append(d.dynamic[f], pairs...)
	d.mu.Unlock()
	if haveEvicted {
		d.rescanFlow(evicted)
	}
	d.rescanFlow(f)
}

// ClearFlowPairs drops the dynamic pairs for a flow (connection closed).
func (d *Daemon) ClearFlowPairs(f flow.Five) {
	d.mu.Lock()
	delete(d.dynamic, f)
	d.mu.Unlock()
	d.rescanFlow(f)
}

// SetForge installs (or, with nil, removes) a compromise hook.
func (d *Daemon) SetForge(f ForgeFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.forge = f
}

// HandleQuery produces the response for a query. The response always has
// the daemon's kernel-derived section last, so `Latest` semantics prefer
// ground truth over application- or user-supplied values; an intercepting
// controller augmenting later still overrides everything, as §3.3 intends.
//
// Section order:
//  1. application — dynamic per-flow pairs, least trusted
//  2. user-config — pairs from user-writable configuration files
//  3. system-config — pairs from the administrator's configuration
//  4. daemon — kernel-derived ground truth (userID, exe-hash, ...)
//
// Empty sections are elided. A query about a flow the host knows nothing
// about yields a single section carrying an error pair, like the ident
// protocol's NO-USER.
func (d *Daemon) HandleQuery(q wire.Query) *wire.Response {
	d.Counters.Add("daemon_queries_answered", 1)
	if q.TraceID != 0 {
		// The controller is flight-recording this decision; count the
		// daemon's share so the operator can confirm trace IDs survive the
		// query wire end to end (they otherwise only surface in traces).
		d.Counters.Add("daemon_queries_traced", 1)
	}
	resp := d.buildResponse(q)
	// Remember what was asserted (post-forge: the memo tracks what went on
	// the wire) so a later OS change can be mapped back to this flow and
	// published as an update.
	d.remember(q.Flow, resp)
	return resp
}

// buildResponse is HandleQuery without the answered-facts memo: the honest
// response, passed through the compromise hook when one is installed. The
// rescan path uses it to re-derive assertions without self-memoizing.
func (d *Daemon) buildResponse(q wire.Query) *wire.Response {
	honest := d.buildHonest(q)
	d.mu.RLock()
	forge := d.forge
	d.mu.RUnlock()
	if forge != nil {
		return forge(q, honest)
	}
	return honest
}

func (d *Daemon) buildHonest(q wire.Query) *wire.Response {
	resp := &wire.Response{Flow: q.Flow}

	proc, ok := d.host.OwnerOf(q.Flow, hostinfo.RoleAuto)
	if !ok {
		s := wire.Section{Source: "daemon"}
		s.Add(wire.KeyError, "NO-USER")
		s.Add(wire.KeyHost, d.host.Name)
		resp.Sections = append(resp.Sections, s)
		return resp
	}

	d.mu.RLock()
	defer d.mu.RUnlock()

	if pairs, ok := d.dynamic[q.Flow]; ok && len(pairs) > 0 {
		resp.Sections = append(resp.Sections, wire.Section{
			Source: "application",
			Pairs:  append([]wire.KV(nil), pairs...),
		})
	}
	if app, ok := d.userApps[proc.Exe.Path]; ok && len(app.Pairs) > 0 {
		resp.Sections = append(resp.Sections, wire.Section{
			Source: "user-config",
			Pairs:  append([]wire.KV(nil), app.Pairs...),
		})
	}
	sys := wire.Section{Source: "system-config", Pairs: append([]wire.KV(nil), d.hostPairs...)}
	if app, ok := d.sysApps[proc.Exe.Path]; ok {
		sys.Pairs = append(sys.Pairs, app.Pairs...)
	}
	if len(sys.Pairs) > 0 {
		resp.Sections = append(resp.Sections, sys)
	}

	ground := wire.Section{Source: "daemon"}
	ground.Add(wire.KeyUserID, proc.User.Name)
	if len(proc.User.Groups) > 0 {
		ground.Add(wire.KeyGroupID, strings.Join(proc.User.Groups, " "))
	}
	name := proc.Exe.Name
	if name == "" {
		name = path.Base(proc.Exe.Path)
	}
	ground.Add(wire.KeyName, name)
	ground.Add(wire.KeyAppName, name)
	ground.Add(wire.KeyExeHash, proc.Exe.Hash())
	if proc.Exe.Version != "" {
		ground.Add(wire.KeyVersion, proc.Exe.Version)
	}
	if proc.Exe.Vendor != "" {
		ground.Add(wire.KeyVendor, proc.Exe.Vendor)
	}
	if proc.Exe.Type != "" {
		ground.Add(wire.KeyType, proc.Exe.Type)
	}
	if patches := d.host.Patches(); patches != "" {
		ground.Add(wire.KeyOSPatch, patches)
	}
	ground.Add(wire.KeyHost, d.host.Name)
	resp.Sections = append(resp.Sections, ground)
	return resp
}
