// Package daemon implements the ident++ end-host daemon (§3.5): it answers
// controller queries about flows with key-value pairs assembled from three
// sources — the host's kernel-derived ground truth (the lsof-style lookup
// in internal/hostinfo), static configuration files in the Figure 3 format,
// and pairs the application provides at run time for its own flows.
//
// The daemon listens on TCP port 783 (§2) in real-socket deployments and is
// also callable in-process by the simulator.
package daemon

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"identxx/internal/wire"
)

// AppConfig is one `@app <path> { ... }` block from a daemon configuration
// file (Figure 3): the static pairs to include in responses for flows owned
// by that executable, e.g. name, version, vendor, requirements, req-sig.
type AppConfig struct {
	// Path is the executable path the block applies to.
	Path string
	// Pairs are the block's key-value pairs in file order.
	Pairs []wire.KV
	// Origin names the source file, for diagnostics.
	Origin string
}

// Get returns the last value for key in the block.
func (a *AppConfig) Get(key string) (string, bool) {
	for i := len(a.Pairs) - 1; i >= 0; i-- {
		if a.Pairs[i].Key == key {
			return a.Pairs[i].Value, true
		}
	}
	return "", false
}

// ConfigFile is a parsed daemon configuration file: optional host-level
// pairs (outside any block) plus per-application blocks.
type ConfigFile struct {
	HostPairs []wire.KV
	Apps      []*AppConfig
}

// ParseConfig parses the Figure 3 configuration format:
//
//	# comment
//	host-key : value
//	@app /usr/bin/skype {
//	    name : skype
//	    version : 210
//	    requirements : \
//	        pass from any port http \
//	        with eq(@src[name], skype)
//	    req-sig : 21oir...w3eda
//	}
//
// Values run to end of line; a trailing backslash continues the value onto
// the next line (joined with a single space), which is how multi-rule
// `requirements` values are written.
func ParseConfig(origin, src string) (*ConfigFile, error) {
	cf := &ConfigFile{}
	lines := splitLogicalLines(src)
	var cur *AppConfig
	for _, ln := range lines {
		text := strings.TrimSpace(ln.text)
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "@app"):
			if cur != nil {
				return nil, fmt.Errorf("%s:%d: nested @app block", origin, ln.line)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "@app"))
			if !strings.HasSuffix(rest, "{") {
				return nil, fmt.Errorf("%s:%d: expected '{' after @app path", origin, ln.line)
			}
			path := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
			if path == "" {
				return nil, fmt.Errorf("%s:%d: @app requires an executable path", origin, ln.line)
			}
			cur = &AppConfig{Path: path, Origin: origin}
		case text == "}":
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: unmatched '}'", origin, ln.line)
			}
			cf.Apps = append(cf.Apps, cur)
			cur = nil
		default:
			colon := strings.Index(text, ":")
			if colon <= 0 {
				return nil, fmt.Errorf("%s:%d: expected 'key : value', got %q", origin, ln.line, text)
			}
			kv := wire.KV{
				Key:   strings.TrimSpace(text[:colon]),
				Value: strings.TrimSpace(text[colon+1:]),
			}
			if cur != nil {
				cur.Pairs = append(cur.Pairs, kv)
			} else {
				cf.HostPairs = append(cf.HostPairs, kv)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: unterminated @app block for %s", origin, cur.Path)
	}
	return cf, nil
}

type logicalLine struct {
	text string
	line int // first physical line number
}

// splitLogicalLines joins backslash-continued lines and strips comments.
// A '#' starts a comment only at the beginning of a logical line, so values
// (signatures, rules) may contain '#'-free text safely; the paper's files
// only use whole-line comments.
func splitLogicalLines(src string) []logicalLine {
	physical := strings.Split(src, "\n")
	var out []logicalLine
	i := 0
	for i < len(physical) {
		start := i
		line := strings.TrimRight(physical[i], "\r")
		i++
		for strings.HasSuffix(strings.TrimRight(line, " \t"), "\\") {
			line = strings.TrimRight(strings.TrimRight(line, " \t"), "\\")
			if i >= len(physical) {
				break
			}
			next := strings.TrimSpace(strings.TrimRight(physical[i], "\r"))
			line = strings.TrimRight(line, " \t") + " " + next
			i++
		}
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		out = append(out, logicalLine{text: line, line: start + 1})
	}
	return out
}

// LoadConfigDir parses every *.conf file in dir in alphabetical order and
// returns the concatenation, mirroring the controller's .control loading
// convention for the daemon side ("/etc/identxx" in the paper).
func LoadConfigDir(dir string) (*ConfigFile, error) {
	return loadConfigFS(os.DirFS(dir), ".")
}

// LoadConfigFS is LoadConfigDir over an fs.FS.
func LoadConfigFS(fsys fs.FS, dir string) (*ConfigFile, error) {
	return loadConfigFS(fsys, dir)
}

func loadConfigFS(fsys fs.FS, dir string) (*ConfigFile, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("daemon: reading config dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".conf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	merged := &ConfigFile{}
	for _, name := range names {
		b, err := fs.ReadFile(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("daemon: reading %s: %w", name, err)
		}
		cf, err := ParseConfig(name, string(b))
		if err != nil {
			return nil, err
		}
		merged.HostPairs = append(merged.HostPairs, cf.HostPairs...)
		merged.Apps = append(merged.Apps, cf.Apps...)
	}
	return merged, nil
}
