package experiments

import (
	"io"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// fig2Sources is the controller configuration of Figure 2, verbatim in
// structure: three .control files concatenated alphabetically (§3.4).
var fig2Sources = map[string]string{
	"00-local-header.control": `
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }" # a macro of apps

# default deny
block all

# allow connections outbound
pass from <int_hosts> \
     to !<int_hosts> \
     keep state

# allow all traffic from approved apps
pass from <int_hosts> \
     to <int_hosts> \
     with member(@src[name], $allowed) \
     keep state
`,
	"50-skype.control": `
table <skype_update> { 123.123.123.0/24 }
# skype to skype allowed
pass all \
     with eq(@src[name], skype) \
     with eq(@dst[name], skype)
# skype update feature
pass from any \
     to <skype_update> port 80 \
     with eq(@src[name], skype) \
     keep state
`,
	"99-local-footer.control": `
# no really old versions of skype
block all \
     with eq(@src[name], skype) \
     with lt(@src[version], 200)
# no skype to server
block from any \
     to <server> \
     with eq(@src[name], skype)
`,
}

// fig2Net is the Figure 2 scenario network: an internal switch with two LAN
// stations and the server, an external switch with the skype-update host
// and an Internet host (daemon-less).
type fig2Net struct {
	n            *netsim.Network
	ctl          *core.Controller
	lanA, lanB   *workload.Station
	server       *workload.Station
	update, inet *netsim.Host
	updateSt     *workload.Station
}

var (
	httpApp = workload.App{Name: "http", Path: "/usr/bin/http", Version: "1", Type: "web", DstPort: 80}
	sshApp  = workload.App{Name: "ssh", Path: "/usr/bin/ssh", Version: "5.2", Type: "shell", DstPort: 22}
)

func buildFig2() *fig2Net {
	n := netsim.New()
	swInt := n.AddSwitch("internal", 0)
	swExt := n.AddSwitch("external", 0)
	n.ConnectSwitches(swInt, swExt, 0)

	f := &fig2Net{n: n}
	ha := n.AddHost("lanA", netaddr.MustParseIP("192.168.0.10"))
	hb := n.AddHost("lanB", netaddr.MustParseIP("192.168.0.20"))
	hs := n.AddHost("server", netaddr.MustParseIP("192.168.1.1"))
	hu := n.AddHost("update", netaddr.MustParseIP("123.123.123.7"))
	hi := n.AddHost("inet", netaddr.MustParseIP("8.8.8.8"))
	n.ConnectHost(ha, swInt, 0)
	n.ConnectHost(hb, swInt, 0)
	n.ConnectHost(hs, swInt, 0)
	n.ConnectHost(hu, swExt, 0)
	n.ConnectHost(hi, swExt, 0)

	f.lanA = workload.Populate(ha, "alice", []string{"users"},
		workload.Skype, workload.Firefox, workload.Dropbox, httpApp, sshApp)
	f.lanB = workload.Populate(hb, "bob", []string{"users"}, workload.Skype)
	f.server = workload.Populate(hs, "admin", []string{"wheel"}, workload.HTTPD, workload.SSHD)
	f.updateSt = workload.Populate(hu, "svc", nil, workload.HTTPD)
	f.update = hu
	f.inet = hi
	hi.DaemonEnabled = false // the Internet does not run ident++

	policy, err := pf.LoadSources(fig2Sources)
	if err != nil {
		panic(err)
	}
	f.ctl = core.New(core.Config{
		Name: "fig2", Policy: policy, Transport: n.Transport(swInt, nil),
		Topology: n, Latency: n.LatencyModel(), InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(f.ctl, swInt, swExt)
	return f
}

// skypePeerListen starts a skype listener on lanB for peer-to-peer calls.
func (f *fig2Net) skypePeerListen(port netaddr.Port) {
	p := f.lanB.Proc["skype"]
	_ = f.lanB.Host.Info.Listen(p.PID, netaddr.ProtoTCP, port)
}

// RunE2 reproduces Figure 2 through the full stack — daemons answering,
// PF+=2 evaluating the three concatenated .control files, the controller
// installing or dropping — and checks each scenario the paper's prose
// promises: skype-to-skype allowed, old skype blocked by the footer, skype
// barred from the server, the update path open on port 80, approved apps
// allowed internally, everything else defaulted closed, outbound open, and
// unsolicited inbound blocked.
func RunE2(w io.Writer) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Figure 2 policy matrix through the full stack",
		Header: []string{"scenario", "paper-expects", "measured"},
	}
	type scenario struct {
		desc     string
		expected string
		run      func(f *fig2Net) bool // true = delivered to destination
	}
	scenarios := []scenario{
		{"skype(210) lanA->lanB", "pass", func(f *fig2Net) bool {
			f.skypePeerListen(5060)
			must(f.lanA.StartFlow("skype", f.lanB.Host.IP(), 5060))
			f.n.Run(0)
			return f.lanB.Host.ReceivedCount() > 0
		}},
		{"skype(150) lanA->lanB (footer: lt version 200)", "block", func(f *fig2Net) bool {
			f.skypePeerListen(5060)
			// OldSkype shares the path label "skype" in Proc; start via its PID.
			p := f.lanA.Host.Info.Exec(f.lanA.User, workload.OldSkype.Exe())
			_, err := f.lanA.Host.StartFlow(p.PID, f.lanB.Host.IP(), 5060)
			must(err)
			f.n.Run(0)
			return f.lanB.Host.ReceivedCount() > 0
		}},
		{"skype(210) lanA->server:80 (footer: no skype to server)", "block", func(f *fig2Net) bool {
			must(f.lanA.StartFlow("skype", f.server.Host.IP(), 80))
			f.n.Run(0)
			return f.server.Host.ReceivedCount() > 0
		}},
		{"skype(210) lanA->update:80 (update feature)", "pass", func(f *fig2Net) bool {
			must(f.lanA.StartFlow("skype", f.update.IP(), 80))
			f.n.Run(0)
			return f.update.ReceivedCount() > 0
		}},
		{"app 'http' lanA->server:80 (member $allowed)", "pass", func(f *fig2Net) bool {
			must(f.lanA.StartFlow("http", f.server.Host.IP(), 80))
			f.n.Run(0)
			return f.server.Host.ReceivedCount() > 0
		}},
		{"app 'ssh' lanA->server:22 (member $allowed)", "pass", func(f *fig2Net) bool {
			must(f.lanA.StartFlow("ssh", f.server.Host.IP(), 22))
			f.n.Run(0)
			return f.server.Host.ReceivedCount() > 0
		}},
		{"dropbox lanA->server:17500 (unapproved app)", "block", func(f *fig2Net) bool {
			must(f.lanA.StartFlow("dropbox", f.server.Host.IP(), 17500))
			f.n.Run(0)
			return f.server.Host.ReceivedCount() > 0
		}},
		{"firefox lanA->inet:443 (outbound keep state)", "pass", func(f *fig2Net) bool {
			must(f.lanA.StartFlow("firefox", f.inet.IP(), 443))
			f.n.Run(0)
			return f.inet.ReceivedCount() > 0
		}},
		{"inet->lanA:22 (unsolicited inbound)", "block", func(f *fig2Net) bool {
			five, err := f.inet.Info.Connect(
				f.inet.Info.Exec(f.inet.Info.AddUser("evil"), workload.SSH.Exe()).PID,
				flowTo(f.lanA.Host.IP(), 22))
			must(err)
			f.inet.SendTCP(five, synFlag, nil)
			f.n.Run(0)
			return f.lanA.Host.ReceivedCount() > 0
		}},
	}
	var ck checker
	for _, s := range scenarios {
		f := buildFig2()
		delivered := s.run(f)
		got := "block"
		if delivered {
			got = "pass"
		}
		t.AddRow(s.desc, s.expected, ck.cell(s.expected, got))
	}
	t.Note("%d/%d scenarios match the paper's prose.", len(scenarios)-ck.failures, len(scenarios))
	t.Fprint(w)
	return t
}
