package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunE1(t *testing.T) {
	var buf bytes.Buffer
	tab := RunE1(&buf)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRunE2(t *testing.T)  { checkNoMismatch(t, RunE2) }
func TestRunE3(t *testing.T)  { checkNoMismatch(t, RunE3) }
func TestRunE4(t *testing.T)  { checkNoMismatch(t, RunE4) }
func TestRunE5(t *testing.T)  { checkNoMismatch(t, RunE5) }
func TestRunE9(t *testing.T)  { checkNoMismatch(t, RunE9) }
func TestRunE10(t *testing.T) { checkNoMismatch(t, RunE10) }

func checkNoMismatch(t *testing.T, run func(w io.Writer) *Table) {
	t.Helper()
	var buf bytes.Buffer
	tab := run(&buf)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		for _, c := range row {
			if strings.Contains(c, "MISMATCH") {
				t.Errorf("mismatch row: %v", row)
			}
		}
	}
	if !strings.Contains(buf.String(), tab.ID) {
		t.Error("table not printed")
	}
}

func TestRunE6Matrix(t *testing.T) {
	var buf bytes.Buffer
	tab := RunE6(&buf)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(row, col int) string { return tab.Rows[row][col] }
	// Honest network: ident++ admits nothing; vanilla/dist admit the
	// port-masquerade attacks.
	if get(0, 1) != "0/3" {
		t.Errorf("honest identxx = %s, want 0/3", get(0, 1))
	}
	if get(0, 2) != "2/3" {
		t.Errorf("honest vanilla = %s, want 2/3", get(0, 2))
	}
	// §5: ident++ never admits more than the vanilla firewall in any row.
	for i := range tab.Rows {
		id := get(i, 1)[0] - '0'
		va := get(i, 2)[0] - '0'
		if id > va {
			t.Errorf("row %q: identxx %d > vanilla %d", get(i, 0), id, va)
		}
	}
	// §5.4: user-app compromise is strictly narrower than daemon compromise.
	if !(get(2, 1)[0]-'0' < get(1, 1)[0]-'0') {
		t.Errorf("user-app (%s) should admit less than daemon compromise (%s)", get(2, 1), get(1, 1))
	}
	// §5.1: controller compromise is total everywhere.
	for col := 1; col <= 4; col++ {
		if get(4, col) != "3/3" {
			t.Errorf("controller compromise col %d = %s, want 3/3", col, get(4, col))
		}
	}
	// §6: distributed firewalls lose everything with the victim host;
	// ident++ does not.
	if get(5, 4) != "3/3" {
		t.Errorf("victim-compromise distributed = %s, want 3/3", get(5, 4))
	}
	if get(5, 1) == "3/3" {
		t.Errorf("victim-compromise identxx = %s, should not be total", get(5, 1))
	}
}

func TestRunE7(t *testing.T) {
	var buf bytes.Buffer
	tab := RunE7(&buf)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "UNEXPECTED") {
			t.Errorf("E7 shape violated: %s", n)
		}
	}
}

func TestRunE8(t *testing.T) { checkNoMismatch(t, RunE8) }
