package experiments

import (
	"fmt"
	"io"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

// researchRequirements is Figure 4's rule set: "research-apps only talk to
// each other".
const researchRequirements = `block all pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)`

// buildResearchDaemonConfig renders the Figure 4 daemon configuration for
// the research application, with a live signature over the tuple Figure 5's
// verify call checks: (exe-hash, app-name, requirements).
func buildResearchDaemonConfig(priv sig.PrivateKey, requirements string) string {
	hash := workload.ResearchApp.Exe().Hash()
	signature := sig.Sign(priv, hash, "research-app", requirements)
	return fmt.Sprintf(`
@app /usr/bin/research-app {
	name : research-app
	# research-apps only talk to each other
	requirements : %s
	req-sig : %s
}
`, requirements, signature)
}

// fig5Policy renders Figure 5's controller rule with the real public key.
func fig5Policy(pub sig.PublicKey) string {
	return fmt.Sprintf(`
table <research-machines> { 10.1.0.0/16 }
table <production-machines> { 10.2.0.0/16 }
dict <pubkeys> { \
	research : %s \
}
block all
# Allow only researchers to run applications
# and only access their own machines.
# Let researchers specify what their apps need.
pass from <research-machines> \
     with member(@src[groupID], research) \
     to !<production-machines> \
     with member(@dst[groupID], research) \
     with allowed(@dst[requirements]) \
     with verify(@dst[req-sig], \
                 @pubkeys[research], \
                 @dst[exe-hash], \
                 @dst[app-name], \
                 @dst[requirements])
`, pub)
}

type researchNet struct {
	n           *netsim.Network
	ctl         *core.Controller
	r1, r2      *workload.Station
	prod        *workload.Station
	researchPub sig.PublicKey
}

func buildResearch(requirements string, tamper func(cfg string) string) *researchNet {
	pub, priv := sig.MustGenerateKey()
	n := netsim.New()
	sw := n.AddSwitch("lab", 0)

	h1 := n.AddHost("r1", netaddr.MustParseIP("10.1.0.1"))
	h2 := n.AddHost("r2", netaddr.MustParseIP("10.1.0.2"))
	hp := n.AddHost("prod", netaddr.MustParseIP("10.2.0.1"))
	n.ConnectHost(h1, sw, 0)
	n.ConnectHost(h2, sw, 0)
	n.ConnectHost(hp, sw, 0)

	rn := &researchNet{n: n, researchPub: pub}
	rn.r1 = workload.Populate(h1, "ryan", []string{"research"}, workload.ResearchApp)
	rn.r2 = workload.Populate(h2, "jad", []string{"research"}, workload.ResearchApp)
	// Production also runs the research binary (e.g. someone copied it), but
	// its user is not in the research group and the machine is in the
	// production table.
	rn.prod = workload.Populate(hp, "ops", []string{"production"}, workload.ResearchApp)

	cfgText := buildResearchDaemonConfig(priv, requirements)
	if tamper != nil {
		cfgText = tamper(cfgText)
	}
	for _, st := range []*workload.Station{rn.r1, rn.r2, rn.prod} {
		cf, err := daemon.ParseConfig("research-app.conf", cfgText)
		must(err)
		st.Host.Daemon.InstallConfig(cf, false) // user-writable config (§3.5)
	}
	// The research app listens on its port on every machine.
	for _, st := range []*workload.Station{rn.r1, rn.r2, rn.prod} {
		must(st.Host.Info.Listen(st.Proc["research-app"].PID, netaddr.ProtoTCP, workload.ResearchApp.DstPort))
	}

	policy, err := pf.LoadSources(map[string]string{"30-research.control": fig5Policy(pub)})
	must(err)
	rn.ctl = core.New(core.Config{
		Name: "research", Policy: policy, Transport: n.Transport(sw, nil),
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(rn.ctl, sw)
	return rn
}

func (rn *researchNet) try(src, dst *workload.Station) bool {
	dst.Host.ClearReceived()
	must(src.StartFlow("research-app", dst.Host.IP(), workload.ResearchApp.DstPort))
	rn.n.Run(0)
	return dst.Host.ReceivedCount() > 0
}

// RunE3 reproduces Figures 3-5: delegation to users. A researcher signs her
// application's network requirements; the controller checks the signature
// (verify) and the requirements themselves (allowed) without the
// administrator ever writing an application-specific rule. Tampered
// requirements, unsigned binaries, wrong groups, production targets, and
// revoked keys must all fail closed.
func RunE3(w io.Writer) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Figures 3-5: delegation to users via signed application requirements",
		Header: []string{"scenario", "paper-expects", "measured"},
	}
	var ck checker
	row := func(desc, expected string, delivered bool) {
		got := "block"
		if delivered {
			got = "pass"
		}
		t.AddRow(desc, expected, ck.cell(expected, got))
	}

	// Honest setup: research-app between researchers passes.
	rn := buildResearch(researchRequirements, nil)
	row("research-app r1->r2 (signed, both researchers)", "pass", rn.try(rn.r1, rn.r2))
	// Production machine is excluded by the to !<production-machines> clause.
	row("research-app r1->prod (production excluded)", "block", rn.try(rn.r1, rn.prod))

	// Requirements tampered after signing: verify fails.
	rnTampered := buildResearch(researchRequirements, func(cfg string) string {
		return replaceOnce(cfg, "block all pass all", "pass all pass all")
	})
	row("tampered requirements (signature mismatch)", "block", rnTampered.try(rnTampered.r1, rnTampered.r2))

	// Requirements that do not admit the flow: allowed() fails even though
	// the signature is valid.
	rnNarrow := buildResearch(`block all pass all with eq(@src[name], other-app)`, nil)
	row("valid signature but requirements deny the flow", "block", rnNarrow.try(rnNarrow.r1, rnNarrow.r2))

	// Revocation: the administrator replaces the policy with an empty
	// pubkeys dictionary; existing cached flows are flushed too.
	rnRevoked := buildResearch(researchRequirements, nil)
	if !rnRevoked.try(rnRevoked.r1, rnRevoked.r2) {
		t.Note("revocation precondition failed: honest flow did not pass")
	}
	otherPub, _ := sig.MustGenerateKey()
	newPolicy, err := pf.LoadSources(map[string]string{"30-research.control": fig5Policy(otherPub)})
	must(err)
	rnRevoked.ctl.SetPolicy(newPolicy)
	row("after key revocation (policy reload + table flush)", "block", rnRevoked.try(rnRevoked.r1, rnRevoked.r2))

	t.Note("%d/%d scenarios match; the administrator's policy names no application — the researcher's signed requirements carry that.", len(t.Rows)-ck.failures, len(t.Rows))
	t.Fprint(w)
	return t
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	panic("experiments: replaceOnce pattern not found")
}
