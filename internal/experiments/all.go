package experiments

import (
	"io"

	"identxx/internal/flow"
	"identxx/internal/wire"
)

// Runner is one experiment driver.
type Runner struct {
	ID  string
	Run func(w io.Writer) *Table
}

// All lists the figure/section experiments in order.
var All = []Runner{
	{"E1", RunE1},
	{"E2", RunE2},
	{"E3", RunE3},
	{"E4", RunE4},
	{"E5", RunE5},
	{"E6", RunE6},
	{"E7", RunE7},
	{"E8", RunE8},
	{"E9", RunE9},
	{"E10", RunE10},
}

// RunAll executes every experiment, printing tables to w, and returns them.
func RunAll(w io.Writer) []*Table {
	tables := make([]*Table, 0, len(All))
	for _, r := range All {
		tables = append(tables, r.Run(w))
	}
	return tables
}

// respWith builds a single-section response from a map (test/bench helper).
func respWith(f flow.Five, kv map[string]string) *wire.Response {
	r := wire.NewResponse(f)
	// Deterministic order is irrelevant to evaluation; insert directly.
	for k, v := range kv {
		r.Add(k, v)
	}
	return r
}
