package experiments

import (
	"fmt"
	"io"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/packet"
	"identxx/internal/pf"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

// RunE7 reproduces §4 "Network Collaboration": two branches of one
// enterprise joined by a bottleneck link. Branch B's controller augments
// ident++ responses crossing its network with the rules B is willing to
// accept; branch A's controller checks them with allowed() and filters
// doomed traffic *before* it crosses the bottleneck. We measure bytes over
// the bottleneck with and without collaboration — the paper's claim is
// that collaboration "can be used to minimize traffic between the branches
// if the link is a bottleneck".
func RunE7(w io.Writer) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "§4 network collaboration: bottleneck-link bytes, filter-at-source vs filter-at-destination",
		Header: []string{"configuration", "flows-attempted", "flows-delivered", "bottleneck-bytes", "doomed-bytes-crossing"},
	}
	type result struct {
		delivered int
		bytes     uint64
		doomed    uint64
	}
	run := func(collaborate bool) result {
		n := netsim.New()
		swA := n.AddSwitch("branchA", 0)
		swB := n.AddSwitch("branchB", 0)
		// The bottleneck: a slow WAN link between branches.
		portA, _ := n.ConnectSwitches(swA, swB, 0)

		a1 := n.AddHost("a1", netaddr.MustParseIP("10.1.0.1"))
		b1 := n.AddHost("b1", netaddr.MustParseIP("10.2.0.1"))
		n.ConnectHost(a1, swA, 0)
		n.ConnectHost(b1, swB, 0)
		stA := workload.Populate(a1, "alice", []string{"users"}, workload.Firefox,
			workload.App{Name: "bulk", Path: "/usr/bin/bulk", Version: "1", DstPort: 9999})
		workload.Populate(b1, "bsvc", nil, workload.HTTPD)

		// Branch B: accepts only web traffic, and advertises that.
		ctlB := core.New(core.Config{
			Name: "B",
			Policy: pf.MustCompile("pB", `
block all
pass from any to any port 80
`),
			Transport: n.Transport(swB, nil), Topology: n,
			InstallEntries: true, Clock: n.Clock.Now,
		})
		ctlB.SetAugmenter(func(q wire.Query, resp *wire.Response) {
			resp.Augment("controller:B").Add("branch-rules",
				"block all pass from any to any port 80")
		})
		n.AttachController(ctlB, swB)

		// Branch A: with collaboration it defers to B's advertised rules;
		// without, it passes everything and lets B drop at its ingress.
		policyA := `pass from any to any`
		if collaborate {
			policyA = `
block all
pass from any to any with allowed(@dst[branch-rules])
`
		}
		ctlA := core.New(core.Config{
			Name: "A", Policy: pf.MustCompile("pA", policyA),
			Transport: n.Transport(swA, nil), Topology: n,
			InstallEntries: true, Clock: n.Clock.Now,
		})
		n.AttachController(ctlA, swA)

		// 10 web flows (B accepts) and 10 bulk flows (B rejects), each a
		// SYN plus a 1000-byte payload packet.
		payload := make([]byte, 1000)
		for i := 0; i < 10; i++ {
			five, err := stA.Open("firefox", b1.IP(), 80)
			must(err)
			n.Run(0)
			a1.SendTCP(five, packet.TCPAck, payload)
			n.Run(0)
		}
		doomedBefore := swA.Stats(portA).Bytes
		for i := 0; i < 10; i++ {
			five, err := stA.Open("bulk", b1.IP(), 9999)
			must(err)
			n.Run(0)
			a1.SendTCP(five, packet.TCPAck, payload)
			n.Run(0)
		}
		st := swA.Stats(portA)
		return result{
			delivered: len(b1.ReceivedFlows()),
			bytes:     st.Bytes,
			doomed:    st.Bytes - doomedBefore,
		}
	}

	with := run(true)
	without := run(false)
	t.AddRow("no collaboration (filter at B's ingress)", "20",
		fmt.Sprintf("%d", without.delivered),
		fmt.Sprintf("%d", without.bytes),
		fmt.Sprintf("%d", without.doomed))
	t.AddRow("collaboration (B's rules enforced at A)", "20",
		fmt.Sprintf("%d", with.delivered),
		fmt.Sprintf("%d", with.bytes),
		fmt.Sprintf("%d", with.doomed))
	if with.doomed == 0 && without.doomed > 0 && with.delivered == without.delivered {
		t.Note("collaboration removed all %d bytes of doomed traffic from the bottleneck without affecting delivered flows (%.0f%% link-byte reduction).",
			without.doomed, 100*float64(without.bytes-with.bytes)/float64(without.bytes))
	} else {
		t.Note("UNEXPECTED: doomed bytes with=%d without=%d delivered %d vs %d",
			with.doomed, without.doomed, with.delivered, without.delivered)
	}
	t.Fprint(w)
	return t
}
