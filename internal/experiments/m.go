package experiments

import (
	"fmt"
	"strings"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

// This file provides the scenario builders behind the M-series
// microbenchmarks (bench_test.go at the repository root). They are exported
// as constructors so benches measure only the hot path.

// SyntheticPolicy generates a PF+=2 policy with ruleCount rules: a default
// deny, (ruleCount-2) non-matching app-specific rules, and a final matching
// rule. With quick=true the matching rule is first and carries `quick`,
// ablating last-match-wins scan cost (M2).
func SyntheticPolicy(ruleCount int, quick bool) *pf.Policy {
	if ruleCount < 2 {
		ruleCount = 2
	}
	var b strings.Builder
	b.WriteString("block all\n")
	match := "pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state\n"
	if quick {
		b.WriteString(strings.Replace(match, "pass ", "pass quick ", 1))
	}
	for i := 0; i < ruleCount-2; i++ {
		fmt.Fprintf(&b, "pass from any to any port %d with eq(@src[name], app%d)\n",
			10000+i%5000, i)
	}
	if !quick {
		b.WriteString(match)
	}
	return pf.MustCompile(fmt.Sprintf("synthetic-%d", ruleCount), b.String())
}

// SetupBench is a ready-to-drive flow-setup scenario (M1): a linear chain
// of diameter switches with a skype client and server at the ends.
type SetupBench struct {
	Net    *netsim.Network
	Ctl    *core.Controller
	Client *workload.Station
	Server *workload.Station
}

// NewSetupBench builds the M1 scenario.
func NewSetupBench(diameter, ruleCount int) *SetupBench {
	if diameter < 1 {
		diameter = 1
	}
	n := netsim.New()
	var chain []*netsim.SwitchNode
	for i := 0; i < diameter; i++ {
		sw := n.AddSwitch(fmt.Sprintf("s%d", i), 0)
		if i > 0 {
			n.ConnectSwitches(chain[i-1], sw, 0)
		}
		chain = append(chain, sw)
	}
	ha := n.AddHost("client", netaddr.MustParseIP("10.0.0.1"))
	hb := n.AddHost("server", netaddr.MustParseIP("10.0.0.2"))
	n.ConnectHost(ha, chain[0], 0)
	n.ConnectHost(hb, chain[len(chain)-1], 0)
	sb := &SetupBench{Net: n}
	sb.Client = workload.Populate(ha, "alice", []string{"users"}, workload.Skype)
	sb.Server = workload.Populate(hb, "bob", []string{"users"}, workload.Skype)
	must(hb.Info.Listen(sb.Server.Proc["skype"].PID, netaddr.ProtoTCP, 5060))

	sb.Ctl = core.New(core.Config{
		Name:      "m1",
		Policy:    SyntheticPolicy(ruleCount, false),
		Transport: n.PlaneTransport(chain[0], nil), Topology: n,
		Latency: n.LatencyModel(), InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachControllerDelayed(sb.Ctl, chain...)
	return sb
}

// NewSetupBenchNoCache is NewSetupBench with verdict caching disabled —
// the M5 ablation: every packet of every flow punts to the controller.
func NewSetupBenchNoCache(diameter, ruleCount int) *SetupBench {
	sb := NewSetupBench(diameter, ruleCount)
	n := sb.Net
	chain := allSwitchesOf(sb)
	sb.Ctl = core.New(core.Config{
		Name:      "m5-ablation",
		Policy:    SyntheticPolicy(ruleCount, false),
		Transport: n.PlaneTransport(chain[0], nil), Topology: n,
		Latency: n.LatencyModel(), InstallEntries: false, Clock: n.Clock.Now,
	})
	n.AttachControllerDelayed(sb.Ctl, chain...)
	return sb
}

func allSwitchesOf(sb *SetupBench) []*netsim.SwitchNode {
	var out []*netsim.SwitchNode
	for i := 0; ; i++ {
		sw, ok := sb.Net.SwitchByName(fmt.Sprintf("s%d", i))
		if !ok {
			return out
		}
		out = append(out, sw)
	}
}

// OneFlow opens one flow through the scenario and drains the simulator.
func (sb *SetupBench) OneFlow() error {
	five, err := sb.Client.Open("skype", sb.Server.Host.IP(), 5060)
	if err != nil {
		return err
	}
	sb.Net.Run(0)
	sb.Client.Host.Info.Close(five)
	return nil
}

// PacketTrain opens a flow and sends count follow-up packets, draining the
// simulator after each, then closes the flow.
func (sb *SetupBench) PacketTrain(count int) error {
	five, err := sb.Client.Open("skype", sb.Server.Host.IP(), 5060)
	if err != nil {
		return err
	}
	sb.Net.Run(0)
	for i := 0; i < count-1; i++ {
		sb.Client.Host.SendTCP(five, 0x10 /* ACK */, nil)
		sb.Net.Run(0)
	}
	sb.Client.Host.Info.Close(five)
	return nil
}

// VerifyPolicy builds the M6 pair: an app-check policy with and without a
// signature verification in the decision path, plus a matching input.
func VerifyPolicy(withVerify bool) (*pf.Policy, pf.Input) {
	pub, priv := sig.MustGenerateKey()
	reqs := "block all pass all with eq(@src[name], research-app)"
	hash := workload.ResearchApp.Exe().Hash()
	signature := sig.Sign(priv, hash, "research-app", reqs)

	src := fmt.Sprintf(`
dict <pubkeys> { research : %s }
block all
pass from any to any \
    with eq(@src[name], research-app) \
    %s
`, pub, map[bool]string{
		true:  `with allowed(@src[requirements]) with verify(@src[req-sig], @pubkeys[research], @src[exe-hash], @src[app-name], @src[requirements])`,
		false: ``,
	}[withVerify])
	policy := pf.MustCompile("m6", src)

	f := flowTo(netaddr.MustParseIP("10.0.0.2"), 7777)
	f.SrcIP = netaddr.MustParseIP("10.0.0.1")
	f.SrcPort = 40000
	in := pf.Input{Flow: f, Src: respWith(f, map[string]string{
		"name": "research-app", "app-name": "research-app",
		"exe-hash": hash, "requirements": reqs, "req-sig": signature,
	})}
	return policy, in
}
