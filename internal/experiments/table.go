// Package experiments contains one driver per evaluation artifact of the
// paper: the figures (E1-E8 reproduce Figures 1-8 and the §4/§5 scenarios
// as executable experiments) and the implied quantitative microbenchmarks
// (M1-M6). Each driver builds its scenario from scratch, runs it, prints a
// table, and returns it for the bench harness and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cols ...string) {
	t.Rows = append(t.Rows, cols)
}

// Note appends a free-form note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub markdown (for EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// check formats an expected/got comparison cell and tracks mismatches.
type checker struct {
	failures int
}

func (c *checker) cell(expected, got string) string {
	if expected == got {
		return got + " ok"
	}
	c.failures++
	return fmt.Sprintf("%s (want %s) MISMATCH", got, expected)
}
