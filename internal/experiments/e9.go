package experiments

import (
	"fmt"
	"io"
	"time"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// RunE9 measures the revocation plane (PR 5): with N live flows installed
// for one user's process, the process exits — the scenario the paper's
// setup-time-only verdicts cannot handle, since nothing ever re-checks the
// facts a flow was admitted on. The daemon pushes one endpoint-state
// update per asserted flow; the controller's fact-dependency index
// resolves each to the affected flow and tears it down live: response
// cache dropped, flow-table entries deleted on every switch along the
// path. The table sweeps flow count and reports the virtual revocation
// latency (state change to last flow-table delete) and the residue, which
// must be zero — no idle-timeout, no policy reload, no restart.
func RunE9(w io.Writer) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Revocation plane: live teardown latency vs flow count (2-switch path)",
		Header: []string{"flows", "entries-before", "updates-pushed", "flows-torn", "entries-after", "virtual-latency", "verdict"},
	}
	var ck checker
	for _, flows := range []int{4, 32, 128} {
		n := netsim.New()
		s1 := n.AddSwitch("s1", 0)
		s2 := n.AddSwitch("s2", 0)
		n.ConnectSwitches(s1, s2, 0)
		client := n.AddHost("client", netaddr.MustParseIP("10.0.0.1"))
		server := n.AddHost("server", netaddr.MustParseIP("10.0.0.2"))
		n.ConnectHost(client, s1, 0)
		n.ConnectHost(server, s2, 0)
		st := workload.Populate(client, "alice", []string{"users"}, workload.Skype)
		srv := workload.Populate(server, "bob", []string{"users"}, workload.HTTPD)
		_ = srv

		eng := n.PlaneTransport(s1, nil)
		ctl := core.New(core.Config{
			Name: "e9",
			Policy: pf.MustCompile("e9", `
block all
pass from any to any with eq(@src[name], skype)
`),
			Transport: eng, Topology: n,
			Latency: n.LatencyModel(), InstallEntries: true,
			ResponseCacheTTL: time.Hour,
			Revocation:       true,
			Clock:            n.Clock.Now,
		})
		// Close the loop: daemon-pushed updates (simulated transport) drive
		// the controller's teardown pipeline, as the TCP pool does in a
		// real deployment.
		eng.SetUpdateHandler(ctl.HandleUpdate)
		n.AttachController(ctl, s1, s2)

		for i := 0; i < flows; i++ {
			must(st.StartFlow("skype", server.IP(), 80))
			n.Run(0)
		}
		entriesBefore := s1.SW.Table.Len() + s2.SW.Table.Len()

		// The revocation moment, in virtual time.
		t0 := n.Clock.Now()
		client.Info.Kill(st.Proc["skype"].PID)
		n.Run(0)
		latency := n.Clock.Now().Sub(t0)

		entriesAfter := s1.SW.Table.Len() + s2.SW.Table.Len()
		torn := ctl.Counters.Get("revocations_flows")
		verdict := "torn-down"
		if entriesAfter != 0 || int(torn) != flows || ctl.CachedFlows() != 0 {
			verdict = fmt.Sprintf("residue: %d entries, %d torn, %d cached",
				entriesAfter, torn, ctl.CachedFlows())
		}
		t.AddRow(
			fmt.Sprintf("%d", flows),
			fmt.Sprintf("%d", entriesBefore),
			fmt.Sprintf("%d", ctl.Counters.Get("revocations_updates")),
			fmt.Sprintf("%d", torn),
			fmt.Sprintf("%d", entriesAfter),
			latency.Round(time.Microsecond).String(),
			ck.cell("torn-down", verdict),
		)
	}
	t.Note("teardown is event-driven: latency is one daemon→controller propagation plus per-flow O(affected) index work, independent of table size — no scan, no timeout, no reload. The response cache would otherwise re-grant for its whole TTL (1h here).")
	t.Fprint(w)
	return t
}
