package experiments

import (
	"io"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// fig8Policy is Figure 8 verbatim: only the System user may reach the
// Server service inside the LAN, and only when the destination OS carries
// the MS08-067 patch — the Conficker mitigation.
const fig8Policy = `
table <lan> { 192.168.0.0/24 }
# default block everything
block all
# only allow "system" users in the LAN
pass from <lan> \
     with eq(@src[userID], system) \
     to <lan> \
     with eq(@dst[userID], system) \
     with eq(@dst[name], Server) \
     with includes(@dst[os-patch], MS08-067)
`

var serverService = workload.App{
	Name: "Server", Path: "/windows/system32/services.exe",
	Version: "6.0", Vendor: "microsoft.com", Type: "smb", DstPort: 445, Server: true,
}

// RunE5 reproduces Figure 8: user- and patch-conditioned access to the
// Windows Server service, the rule the paper offers as a Conficker stopgap.
// The destination's patch level is a first-class policy input — something
// neither a port-based firewall nor Ethane can express.
func RunE5(w io.Writer) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Figure 8: System-user + MS08-067 patch gate for the Server service",
		Header: []string{"scenario", "paper-expects", "measured"},
	}
	build := func(patched bool) (*netsim.Network, *workload.Station, *workload.Station, *netsim.Host) {
		n := netsim.New()
		sw := n.AddSwitch("lan", 0)
		hc := n.AddHost("ws1", netaddr.MustParseIP("192.168.0.10"))
		hs := n.AddHost("ws2", netaddr.MustParseIP("192.168.0.20"))
		hi := n.AddHost("inet", netaddr.MustParseIP("8.8.8.8"))
		n.ConnectHost(hc, sw, 0)
		n.ConnectHost(hs, sw, 0)
		n.ConnectHost(hi, sw, 0)
		hi.DaemonEnabled = false

		// Both workstations run the Server service as the "system" user.
		cs := populateWindows(hc)
		ss := populateWindows(hs)
		if patched {
			hs.Info.InstallPatch("MS08-001")
			hs.Info.InstallPatch("MS08-067")
		} else {
			hs.Info.InstallPatch("MS08-001")
		}
		policy, err := pf.LoadSources(map[string]string{"10-user-rules.control": fig8Policy})
		must(err)
		ctl := core.New(core.Config{
			Name: "fig8", Policy: policy, Transport: n.Transport(sw, nil),
			Topology: n, InstallEntries: true, Clock: n.Clock.Now,
		})
		n.AttachController(ctl, sw)
		return n, cs, ss, hi
	}

	var ck checker
	row := func(desc, expected string, delivered bool) {
		got := "block"
		if delivered {
			got = "pass"
		}
		t.AddRow(desc, expected, ck.cell(expected, got))
	}

	// System -> patched Server: pass.
	n1, c1, s1, _ := build(true)
	row("system user -> Server on patched host", "pass", tryFlow(n1, c1, "Server", s1, 445))

	// System -> unpatched Server: block (the Conficker gate).
	n2, c2, s2, _ := build(false)
	row("system user -> Server on UNPATCHED host", "block", tryFlow(n2, c2, "Server", s2, 445))

	// Non-system user on the source: block.
	n3, c3, s3, _ := build(true)
	row("regular user -> Server on patched host", "block", tryFlow(n3, c3, "malware", s3, 445))

	// Internet at large: block (no daemon, fails closed).
	n4, _, s4, inet := build(true)
	evil := inet.Info.AddUser("evil")
	p := inet.Info.Exec(evil, workload.App{Name: "worm", Path: "/tmp/worm", Version: "1"}.Exe())
	five, err := inet.Info.Connect(p.PID, flowTo(s4.Host.IP(), 445))
	must(err)
	s4.Host.ClearReceived()
	inet.SendTCP(five, synFlag, nil)
	n4.Run(0)
	row("Internet -> Server service", "block", s4.Host.ReceivedCount() > 0)

	t.Note("%d/%d scenarios match; the MS08-067 predicate consults end-host patch state the network alone cannot see.", len(t.Rows)-ck.failures, len(t.Rows))
	t.Fprint(w)
	return t
}

// populateWindows sets up a host with a "system" service account running
// the Server service and a regular user running a non-privileged tool.
func populateWindows(h *netsim.Host) *workload.Station {
	st := workload.Populate(h, "carol", []string{"users"},
		workload.App{Name: "malware", Path: "/tmp/malware", Version: "1", DstPort: 445})
	system := h.Info.AddSystemUser("system")
	p := h.Info.Exec(system, serverService.Exe())
	must(h.Info.Listen(p.PID, netaddr.ProtoTCP, serverService.DstPort))
	st.Proc["Server"] = p
	return st
}

func tryFlow(n *netsim.Network, src *workload.Station, app string, dst *workload.Station, port netaddr.Port) bool {
	dst.Host.ClearReceived()
	must(src.StartFlow(app, dst.Host.IP(), port))
	n.Run(0)
	return dst.Host.ReceivedCount() > 0
}
