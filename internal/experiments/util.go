package experiments

import (
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/packet"
)

const synFlag = packet.TCPSyn

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// flowTo builds a destination spec for hostinfo.Connect.
func flowTo(dst netaddr.IP, port netaddr.Port) flow.Five {
	return flow.Five{DstIP: dst, Proto: netaddr.ProtoTCP, DstPort: port}
}
