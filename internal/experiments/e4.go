package experiments

import (
	"fmt"
	"io"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/sig"
	"identxx/internal/workload"
)

// thunderbirdRequirements is Figure 6's rule set, supplied by the
// third-party security company "Secur": thunderbird may only talk to
// email servers.
const thunderbirdRequirements = `block all pass from any with eq(@src[name], thunderbird) to any with eq(@dst[type], email-server)`

// fig6Config renders the Figure 6 daemon configuration with Secur's live
// signature. Note the signed tuple matches Figure 7's verify call:
// (exe-hash, app-name, requirements).
func fig6Config(securPriv sig.PrivateKey, requirements string) string {
	hash := workload.Thunderbird.Exe().Hash()
	signature := sig.Sign(securPriv, hash, "thunderbird", requirements)
	return fmt.Sprintf(`
@app /usr/bin/thunderbird {
	name : thunderbird
	type : email-client
	rule-maker : Secur
	requirements : %s
	req-sig : %s
}
`, requirements, signature)
}

// fig7Policy renders Figure 7's controller rule with Secur's public key:
// any application approved by Secur may run, under Secur's rules.
func fig7Policy(securPub sig.PublicKey) string {
	return fmt.Sprintf(`
dict <pubkeys> { \
	Secur : %s \
}
block all
# Allow users to run any applications approved
# by Secur and following rules Secur provides
pass from any \
     with eq(@src[rule-maker], Secur) \
     with allowed(@src[requirements]) \
     with verify(@src[req-sig], \
                 @pubkeys[Secur], \
                 @src[exe-hash], \
                 @src[app-name], \
                 @src[requirements]) \
     to any
`, securPub)
}

// RunE4 reproduces Figures 6-7: trust delegation to a third party. The
// administrator trusts Secur's signing key; Secur publishes per-application
// firewall rules; users run whatever Secur has vetted. Rules are enforced
// (thunderbird reaches only email servers), signatures gate the delegation,
// and a self-proclaimed rule-maker without Secur's signature gets nothing.
func RunE4(w io.Writer) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Figures 6-7: trust delegation to a third party (Secur)",
		Header: []string{"scenario", "paper-expects", "measured"},
	}
	securPub, securPriv := sig.MustGenerateKey()

	build := func(cfgText string) (*netsim.Network, *core.Controller, *workload.Station, *workload.Station, *workload.Station) {
		n := netsim.New()
		sw := n.AddSwitch("office", 0)
		hc := n.AddHost("desktop", netaddr.MustParseIP("10.0.0.10"))
		hm := n.AddHost("mail", netaddr.MustParseIP("10.0.0.25"))
		hw := n.AddHost("web", netaddr.MustParseIP("10.0.0.80"))
		n.ConnectHost(hc, sw, 0)
		n.ConnectHost(hm, sw, 0)
		n.ConnectHost(hw, sw, 0)
		client := workload.Populate(hc, "carol", []string{"users"}, workload.Thunderbird)
		mail := workload.Populate(hm, "postmaster", nil, workload.SMTPD)
		web := workload.Populate(hw, "webmaster", nil, workload.HTTPD)
		cf, err := daemon.ParseConfig("thunderbird.conf", cfgText)
		must(err)
		hc.Daemon.InstallConfig(cf, true) // distributed via the system config dir
		policy, err := pf.LoadSources(map[string]string{"30-secur.control": fig7Policy(securPub)})
		must(err)
		ctl := core.New(core.Config{
			Name: "secur", Policy: policy, Transport: n.Transport(sw, nil),
			Topology: n, InstallEntries: true, Clock: n.Clock.Now,
		})
		n.AttachController(ctl, sw)
		return n, ctl, client, mail, web
	}
	try := func(n *netsim.Network, src *workload.Station, dst *workload.Station, port netaddr.Port) bool {
		dst.Host.ClearReceived()
		must(src.StartFlow("thunderbird", dst.Host.IP(), port))
		n.Run(0)
		return dst.Host.ReceivedCount() > 0
	}

	var ck checker
	row := func(desc, expected string, delivered bool) {
		got := "block"
		if delivered {
			got = "pass"
		}
		t.AddRow(desc, expected, ck.cell(expected, got))
	}

	// Honest: Secur-approved thunderbird reaches the email server but not
	// the web server — Secur's rules, not the administrator's, say so.
	n1, _, client, mail, web := build(fig6Config(securPriv, thunderbirdRequirements))
	row("thunderbird -> smtpd (email-server type)", "pass", try(n1, client, mail, 25))
	n2, _, client2, _, web2 := build(fig6Config(securPriv, thunderbirdRequirements))
	_ = web
	row("thunderbird -> httpd (not an email server)", "block", try(n2, client2, web2, 80))

	// An attacker claims rule-maker: Secur with self-made rules but cannot
	// produce Secur's signature.
	_, fakePriv := sig.MustGenerateKey()
	n3, _, client3, mail3, _ := build(fig6Config(fakePriv, `block all pass all`))
	row("forged Secur approval (wrong key)", "block", try(n3, client3, mail3, 25))

	// The binary was replaced after Secur signed: the kernel-derived
	// exe-hash no longer matches the signed tuple. Model by signing a hash
	// of a different version.
	tamperedCfg := fmt.Sprintf(`
@app /usr/bin/thunderbird {
	name : thunderbird
	rule-maker : Secur
	requirements : %s
	req-sig : %s
}
`, thunderbirdRequirements,
		sig.Sign(securPriv, "0000deadbeef0000", "thunderbird", thunderbirdRequirements))
	n4, _, client4, mail4, _ := build(tamperedCfg)
	row("binary replaced after signing (exe-hash mismatch)", "block", try(n4, client4, mail4, 25))

	t.Note("%d/%d scenarios match; the admin's only trust decision is Secur's key in dict <pubkeys>.", len(t.Rows)-ck.failures, len(t.Rows))
	t.Fprint(w)
	return t
}
