package experiments

import (
	"fmt"
	"io"
	"time"

	"identxx/internal/baseline"
	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// RunE1 reproduces Figure 1 as a measured experiment: the five-step flow
// setup (packet -> switch -> controller -> ident++ queries to both ends ->
// decision -> install -> packet proceeds), reporting the per-stage latency
// breakdown over many flows, against a vanilla firewall on the same
// substrate (which skips step 3 entirely). The paper's claim is
// architectural — ident++ adds one query round-trip to flow setup and
// nothing to subsequent packets; the table quantifies both.
func RunE1(w io.Writer) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Figure 1 walkthrough: flow-setup latency breakdown (2-switch path, 100 flows)",
		Header: []string{"system", "punt", "query-src", "query-dst", "eval", "install", "total(p50)", "per-packet-after"},
	}
	for _, sys := range []string{"identxx", "vanilla"} {
		n := netsim.New()
		s1 := n.AddSwitch("s1", 0)
		s2 := n.AddSwitch("s2", 0)
		n.ConnectSwitches(s1, s2, 0)
		ha := n.AddHost("client", netaddr.MustParseIP("10.0.0.1"))
		hb := n.AddHost("server", netaddr.MustParseIP("10.0.0.2"))
		n.ConnectHost(ha, s1, 0)
		n.ConnectHost(hb, s2, 0)
		stA := workload.Populate(ha, "alice", []string{"users"}, workload.Skype)
		workload.Populate(hb, "bob", []string{"users"}, workload.HTTPD)

		var tr core.QueryTransport = n.Transport(s1, nil)
		policy := pf.MustCompile("e1", `
block all
pass from any to any with eq(@src[name], skype) keep state
`)
		if sys == "vanilla" {
			tr = baseline.NullTransport{}
			policy = pf.MustCompile("e1v", `
block all
pass from any to any port 80 keep state
`)
		}
		ctl := core.New(core.Config{
			Name: sys, Policy: policy, Transport: tr, Topology: n,
			Latency: n.LatencyModel(), InstallEntries: true, Clock: n.Clock.Now,
		})
		n.AttachController(ctl, s1, s2)

		for i := 0; i < 100; i++ {
			if err := stA.StartFlow("skype", hb.IP(), 80); err != nil {
				panic(err)
			}
			n.Run(0)
		}
		// Per-packet cost after setup: cached entries, zero controller work.
		before := ctl.Counters.Get("packet_ins")
		perPacket := "switch-local (0 punts)"
		if before != 100 {
			perPacket = fmt.Sprintf("UNEXPECTED %d punts", before)
		}
		t.AddRow(sys,
			ctl.Setup.Punt.Quantile(0.5).Round(time.Microsecond).String(),
			ctl.Setup.QuerySrc.Quantile(0.5).Round(time.Microsecond).String(),
			ctl.Setup.QueryDst.Quantile(0.5).Round(time.Microsecond).String(),
			ctl.Setup.Eval.Quantile(0.5).Round(time.Microsecond).String(),
			ctl.Setup.Install.Quantile(0.5).Round(time.Microsecond).String(),
			ctl.Setup.Total.Quantile(0.5).Round(time.Microsecond).String(),
			perPacket,
		)
	}
	t.Note("ident++ pays one daemon RTT (max of the two concurrent queries) per flow setup; vanilla pays none. Subsequent packets are identical: both systems forward from the switch flow table.")
	t.Fprint(w)
	return t
}
