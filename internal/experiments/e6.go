package experiments

import (
	"fmt"
	"io"

	"identxx/internal/baseline"
	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

// E6 reproduces the §5 security analysis as a measured compromise matrix:
// for each protection system (ident++, vanilla firewall, Ethane-style,
// distributed firewalls) and each compromised component (§5.1-§5.4), an
// attacker runs a fixed attack suite and we count how many attacks land.
//
// Attack suite (attacker is the user "mallory" on host atk, edge switch 0):
//
//	A1  exfil tool -> server:80   (masquerade as web traffic, the §1 dilemma)
//	A2  exfil tool -> server:22   (usurp the admin-only ssh rule)
//	A3  exfil tool -> peer:9999   (lateral movement to a same-switch peer)
type e6Net struct {
	n              *netsim.Network
	ctl            *core.Controller
	edge0, root    *netsim.SwitchNode
	attacker, peer *workload.Station
	server         *workload.Station
	exfil          workload.App
}

const (
	e6IdentPolicy = `
table <net> { 10.0.0.0/8 }
table <servers> { 10.200.0.1 }
block all
pass from <net> to <net> with eq(@src[name], skype) with eq(@dst[name], skype)
pass from <net> to <servers> port 80 with eq(@src[name], firefox) keep state
pass from <net> to <servers> port 22 with eq(@src[userID], admin)
`
	// What the same administrator can write without end-host information:
	// ports and addresses only (§1's "coarse network security policies").
	e6VanillaPolicy = `
table <net> { 10.0.0.0/8 }
table <servers> { 10.200.0.1 }
block all
pass from <net> to <servers> port 80 keep state
pass from <net> to <servers> port 22
`
	// Ethane sees authenticated users and groups but no applications (§6).
	e6EthanePolicy = `
table <net> { 10.0.0.0/8 }
table <servers> { 10.200.0.1 }
block all
pass from <net> to <servers> port 80 with member(@src[groupID], users) keep state
pass from <net> to <servers> port 22 with eq(@src[userID], admin)
`
)

func buildE6(system string) *e6Net {
	n := netsim.New()
	root := n.AddSwitch("root", 0)
	edge0 := n.AddSwitch("edge0", 0)
	edge1 := n.AddSwitch("edge1", 0)
	n.ConnectSwitches(root, edge0, 0)
	n.ConnectSwitches(root, edge1, 0)

	hAtk := n.AddHost("atk", netaddr.MustParseIP("10.0.0.66"))
	hPeer := n.AddHost("peer", netaddr.MustParseIP("10.0.0.77"))
	hAdm := n.AddHost("adm", netaddr.MustParseIP("10.1.0.10"))
	hSrv := n.AddHost("srv", netaddr.MustParseIP("10.200.0.1"))
	n.ConnectHost(hAtk, edge0, 0)
	n.ConnectHost(hPeer, edge0, 0)
	n.ConnectHost(hAdm, edge1, 0)
	n.ConnectHost(hSrv, root, 0)

	e := &e6Net{n: n, edge0: edge0, root: root}
	e.exfil = workload.App{Name: "exfil", Path: "/home/mallory/exfil", Version: "1", DstPort: 80}
	e.attacker = workload.Populate(hAtk, "mallory", []string{"users"},
		e.exfil, workload.Firefox, workload.Skype)
	e.peer = workload.Populate(hPeer, "pat", []string{"users"}, workload.Skype)
	workload.Populate(hAdm, "admin", []string{"wheel", "users"}, workload.SSH)
	e.server = workload.Populate(hSrv, "root", nil, workload.HTTPD, workload.SSHD)

	var policySrc string
	var tr core.QueryTransport
	switch system {
	case "identxx":
		policySrc = e6IdentPolicy
		tr = n.Transport(root, nil)
	case "vanilla":
		policySrc = e6VanillaPolicy
		tr = baseline.NullTransport{}
	case "ethane":
		policySrc = e6EthanePolicy
		et := baseline.NewEthaneTransport()
		et.Bind(hAtk.IP(), "mallory", "users")
		et.Bind(hPeer.IP(), "pat", "users")
		et.Bind(hAdm.IP(), "admin", "wheel", "users")
		et.Bind(hSrv.IP(), "root")
		tr = et
	default:
		panic("unknown system " + system)
	}
	e.ctl = core.New(core.Config{
		Name: system, Policy: pf.MustCompile(system, policySrc), Transport: tr,
		Topology: n, InstallEntries: true, Clock: n.Clock.Now,
	})
	n.AttachController(e.ctl, root, edge0, edge1)
	return e
}

// attack launches one attack flow and reports whether it was delivered.
func (e *e6Net) attack(app string, dst *workload.Station, port netaddr.Port) bool {
	dst.Host.ClearReceived()
	must(e.attacker.StartFlow(app, dst.Host.IP(), port))
	e.n.Run(0)
	return dst.Host.ReceivedCount() > 0
}

// runAttacks executes the suite and returns the number admitted (0-3).
func (e *e6Net) runAttacks(appA1, appA2, appA3 string) int {
	admitted := 0
	if e.attack(appA1, e.server, 80) {
		admitted++
	}
	if e.attack(appA2, e.server, 22) {
		admitted++
	}
	if e.attack(appA3, e.peer, 9999) {
		admitted++
	}
	return admitted
}

// compromiseDaemon makes the attacker's daemon forge per-flow optimal
// responses (§5.3: "the attacker would gain control of the ident++ daemon
// and can send false ident++ responses").
func (e *e6Net) compromiseDaemon() {
	e.attacker.Host.Daemon.SetForge(func(q wire.Query, honest *wire.Response) *wire.Response {
		r := wire.NewResponse(q.Flow)
		switch q.Flow.DstPort {
		case 22:
			r.Add(wire.KeyUserID, "admin") // claim the admin's identity
			r.Add(wire.KeyName, "ssh")
		default:
			r.Add(wire.KeyUserID, "mallory")
			r.Add(wire.KeyName, "firefox") // claim the approved browser
			r.Add(wire.KeyVersion, "3.5")
		}
		return r
	})
}

// compromiseSwitch turns edge0 into an unregulated forwarder (§5.2): every
// frame floods, no packet ever punts to the controller from this switch.
func (e *e6Net) compromiseSwitch() {
	must(e.edge0.SW.Apply(openflow.FlowMod{
		Match:    flow.MatchAll(),
		Priority: 1 << 15,
		Actions:  []openflow.Action{{Type: openflow.ActionFlood}},
		BufferID: openflow.BufferNone,
	}))
}

// compromiseController replaces the policy with pass-all (§5.1: "an
// attacker can disable all protection in the network").
func (e *e6Net) compromiseController() {
	e.ctl.SetPolicy(pf.MustCompile("owned", `pass from any to any`))
}

// distributedAdmitted evaluates the suite under the distributed-firewalls
// baseline (§6): enforcement only at the receiving host, port-based (an
// inbound host firewall cannot verify the remote application or user).
func distributedAdmitted(scenario string) int {
	serverFW := baseline.NewHostFirewall(pf.MustCompile("srv", `
block all
pass from any to any port 80
pass from any to any port 22
`))
	peerFW := baseline.NewHostFirewall(pf.MustCompile("peer", `block all`))
	switch scenario {
	case "victim host compromised":
		peerFW.SetCompromised(true)
	case "controller compromised":
		// The policy-distribution point is the analogue: every host now
		// runs pass-all.
		serverFW.SetPolicy(pf.MustCompile("owned", `pass from any to any`))
		peerFW.SetPolicy(pf.MustCompile("owned", `pass from any to any`))
	}
	atk := netaddr.MustParseIP("10.0.0.66")
	srv := netaddr.MustParseIP("10.200.0.1")
	peer := netaddr.MustParseIP("10.0.0.77")
	admitted := 0
	if serverFW.Admit(flow.Five{SrcIP: atk, DstIP: srv, Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80}, nil) {
		admitted++
	}
	if serverFW.Admit(flow.Five{SrcIP: atk, DstIP: srv, Proto: netaddr.ProtoTCP, SrcPort: 40001, DstPort: 22}, nil) {
		admitted++
	}
	if peerFW.Admit(flow.Five{SrcIP: atk, DstIP: peer, Proto: netaddr.ProtoTCP, SrcPort: 40002, DstPort: 9999}, nil) {
		admitted++
	}
	return admitted
}

// RunE6 runs the full matrix.
func RunE6(w io.Writer) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "§5 compromise matrix: attacks admitted out of 3 (A1 app-masquerade:80, A2 user-usurp:22, A3 lateral:9999)",
		Header: []string{"compromised component", "identxx", "vanilla-fw", "ethane", "distributed-fw"},
	}
	scenarios := []string{
		"none (honest network)",
		"attacker end-host daemon",
		"attacker user application",
		"attacker edge switch",
		"controller compromised",
		"victim host compromised",
	}
	results := make(map[string]map[string]int)
	for _, system := range []string{"identxx", "vanilla", "ethane"} {
		results[system] = make(map[string]int)
		for _, sc := range scenarios {
			e := buildE6(system)
			appA1, appA2, appA3 := "exfil", "exfil", "exfil"
			switch sc {
			case "attacker end-host daemon":
				e.compromiseDaemon()
			case "attacker user application":
				// §5.4: a compromised app can masquerade as any app the
				// same user runs (exec+ptrace), but not as another user.
				appA1, appA2, appA3 = "firefox", "firefox", "skype"
			case "attacker edge switch":
				e.compromiseSwitch()
			case "controller compromised":
				e.compromiseController()
			case "victim host compromised":
				e.peer.Host.Daemon.SetForge(func(q wire.Query, _ *wire.Response) *wire.Response {
					r := wire.NewResponse(q.Flow)
					r.Add(wire.KeyName, "skype") // victim claims everything is skype
					return r
				})
			}
			results[system][sc] = e.runAttacks(appA1, appA2, appA3)
		}
	}
	for _, sc := range scenarios {
		t.AddRow(sc,
			fmt.Sprintf("%d/3", results["identxx"][sc]),
			fmt.Sprintf("%d/3", results["vanilla"][sc]),
			fmt.Sprintf("%d/3", results["ethane"][sc]),
			fmt.Sprintf("%d/3", distributedAdmitted(sc)),
		)
	}
	t.Note("paper's claims: ident++ dominates or ties the vanilla firewall in every row (§5); compromising one user does not grant other users' privileges (§5.4, row 3 col 1 < row 2 col 1); a single compromised switch only unprotects its own segment (§5.2); controller compromise is total for all centralized systems (§5.1); distributed firewalls lose everything with the victim host (§6).")
	t.Fprint(w)
	return t
}
