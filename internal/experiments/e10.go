package experiments

import (
	"fmt"
	"io"
	"time"

	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/workload"
)

// RunE10 measures the megaflow wildcard cache (PR 6) on the workload it
// exists for: many clients of one service under a policy that reads
// endpoint state from the destination only. The field-use trace masks
// the source address and port out of the verdict's key, so every client
// falls into one traffic equivalence class — the first flow pays the
// full decision (query, traced evaluation, widen), and every later
// client resolves from the class table without a query, an evaluation,
// or an exact-cache line of its own. The table compares decision misses
// (full query-plane round trips) with the layer off and on; the paper's
// per-tuple caching scales misses with the client count, the megaflow
// cache holds them at one per class.
func RunE10(w io.Writer) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Megaflow cache: clients of one service, decision misses off vs on",
		Header: []string{"clients", "misses-off", "misses-on", "mega-hits", "classes", "reduction", "verdict"},
	}
	const policy = `
block all
pass from any to any port 80 with eq(@dst[name], httpd)
`
	var ck checker
	for _, clients := range []int{16, 64} {
		misses := [2]int64{} // [0]=megaflow off, [1]=on
		var hits, live int64
		for mode := 0; mode < 2; mode++ {
			n := netsim.New()
			s1 := n.AddSwitch("s1", 0)
			s2 := n.AddSwitch("s2", 0)
			n.ConnectSwitches(s1, s2, 0)
			server := n.AddHost("server", netaddr.MustParseIP("10.1.0.1"))
			n.ConnectHost(server, s2, 0)
			workload.Populate(server, "admin", []string{"wheel"}, workload.HTTPD)

			stations := make([]*workload.Station, clients)
			for i := 0; i < clients; i++ {
				h := n.AddHost(fmt.Sprintf("c%d", i), netaddr.IPv4(10, 0, byte(i/250), byte(1+i%250)))
				n.ConnectHost(h, s1, 0)
				stations[i] = workload.Populate(h, fmt.Sprintf("u%d", i), []string{"users"}, workload.Firefox)
			}

			eng := n.PlaneTransport(s1, nil)
			ctl := core.New(core.Config{
				Name:      "e10",
				Policy:    pf.MustCompile("e10", policy),
				Transport: eng, Topology: n,
				Latency: n.LatencyModel(), InstallEntries: true,
				ResponseCacheTTL: time.Hour,
				Revocation:       true,
				Megaflow:         mode == 1,
				Clock:            n.Clock.Now,
			})
			eng.SetUpdateHandler(ctl.HandleUpdate)
			n.AttachController(ctl, s1, s2)

			for _, st := range stations {
				must(st.StartFlow("firefox", server.IP(), 80))
				n.Run(0)
			}

			snap := ctl.Counters.Snapshot()
			decided := snap["flows_allowed"] + snap["flows_denied"]
			served := snap["response_cache_hits"] + snap["megaflow_hits"] + snap["decisions_headeronly"]
			misses[mode] = decided - served
			if mode == 1 {
				var l int
				l, hits, _, _ = ctl.MegaflowStats()
				live = int64(l)
			}
		}
		reduction := float64(misses[0]) / float64(misses[1])
		verdict := "one-per-class"
		if misses[1] != 1 || reduction < 10 {
			verdict = fmt.Sprintf("misses-on=%d reduction=%.1fx", misses[1], reduction)
		}
		t.AddRow(
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", misses[0]),
			fmt.Sprintf("%d", misses[1]),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%d", live),
			fmt.Sprintf("%.0fx", reduction),
			ck.cell("one-per-class", verdict),
		)
	}
	t.Note("the policy's matched path reads only the destination's facts plus the destination port, so the trace-derived mask collapses every client tuple into one class: decision misses stay at 1 per service while per-tuple caching pays one full decision per client. Revocation stays O(affected): the class registers its facts once in the wide index, and one daemon update tears down every member's entries.")
	t.Fprint(w)
	return t
}
