package experiments

import (
	"context"

	"io"
	"time"

	"identxx/internal/baseline"
	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
	"identxx/internal/pf"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

// RunE8 reproduces §4 "Incremental Benefit": ident++ is useful before the
// whole network supports it.
//
// (a) End-hosts only: a server distinguishes two users sharing one client
// machine (the NAT/multi-user case) by querying the client's ident++ daemon
// over a real TCP socket — no controllers anywhere; enforcement is a local
// host firewall consulting the response.
//
// (b) Controllers only: hosts run no daemons; the controller answers
// queries on their behalf from administrator-registered facts, so
// identity-based policy still works for legacy devices.
func RunE8(w io.Writer) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "§4 incremental benefit: partial deployments",
		Header: []string{"deployment", "scenario", "paper-expects", "measured"},
	}
	var ck checker
	row := func(mode, desc, expected string, admitted bool) {
		got := "block"
		if admitted {
			got = "pass"
		}
		t.AddRow(mode, desc, expected, ck.cell(expected, got))
	}

	// --- (a) End-hosts only, over real TCP ---------------------------------
	clientIP := netaddr.MustParseIP("192.168.7.7") // one IP, two users
	serverIP := netaddr.MustParseIP("203.0.113.10")
	client := hostinfo.New("shared-pc", clientIP, netaddr.MustParseMAC("02:00:00:00:07:07"))
	alice := client.AddUser("alice", "staff")
	bob := client.AddUser("bob", "guests")
	aProc := client.Exec(alice, workload.Firefox.Exe())
	bProc := client.Exec(bob, workload.Firefox.Exe())

	d := daemon.New(client)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	must(err)
	defer srv.Close()

	// The server-side policy: staff may connect, guests may not. The server
	// is an ident++-aware application using a host firewall — no network
	// support needed.
	serverPolicy := pf.MustCompile("srv", `
block all
pass from any to any with member(@src[groupID], staff)
`)
	fw := baseline.NewHostFirewall(serverPolicy)
	admitViaIdent := func(proc *hostinfo.Process) bool {
		five, err := client.Connect(proc.PID, flow.Five{
			DstIP: serverIP, Proto: netaddr.ProtoTCP, DstPort: 443,
		})
		must(err)
		defer client.Close(five)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		resp, err := daemon.Query(ctx, addr.String(), wire.Query{
			Flow: five, Keys: []string{wire.KeyUserID, wire.KeyGroupID},
		})
		if err != nil {
			resp = nil
		}
		return fw.Admit(five, resp)
	}
	row("(a) end-hosts only", "alice (staff) from shared IP", "pass", admitViaIdent(aProc))
	row("(a) end-hosts only", "bob (guests) from same IP", "block", admitViaIdent(bProc))
	t.Note("(a) both flows share source IP %s; only the ident++ response tells them apart — RFC 1413's original use case, enriched.", clientIP)

	// --- (b) Controllers only ----------------------------------------------
	n := netsim.New()
	sw := n.AddSwitch("office", 0)
	legacy := n.AddHost("legacy-pc", netaddr.MustParseIP("10.0.0.5"))
	printer := n.AddHost("printer", netaddr.MustParseIP("10.0.0.9"))
	fileSrv := n.AddHost("files", netaddr.MustParseIP("10.0.0.12"))
	n.ConnectHost(legacy, sw, 0)
	n.ConnectHost(printer, sw, 0)
	n.ConnectHost(fileSrv, sw, 0)
	// Nobody runs a daemon in this deployment.
	legacy.DaemonEnabled = false
	printer.DaemonEnabled = false
	fileSrv.DaemonEnabled = false
	st := workload.Populate(legacy, "lee", []string{"users"},
		workload.App{Name: "lpr", Path: "/usr/bin/lpr", Version: "1", DstPort: 631})

	ctl := core.New(core.Config{
		Name: "office",
		Policy: pf.MustCompile("p", `
block all
pass from any to any with eq(@dst[device-type], printer)
`),
		// The production query plane over the simulated network: repeated
		// queries for these daemon-less devices hit the engine's negative
		// cache instead of re-crossing the office network per flow.
		Transport: n.PlaneTransport(sw, nil), Topology: n,
		InstallEntries: true, Clock: n.Clock.Now,
	})
	// The administrator registers what the network knows about its devices;
	// the controller answers queries on their behalf (§3.4).
	ctl.AnswerForHost(printer.IP(), wire.KV{Key: "device-type", Value: "printer"})
	ctl.AnswerForHost(fileSrv.IP(), wire.KV{Key: "device-type", Value: "file-server"})
	n.AttachController(ctl, sw)

	tryB := func(dst *netsim.Host, port netaddr.Port) bool {
		dst.ClearReceived()
		must(st.StartFlow("lpr", dst.IP(), port))
		n.Run(0)
		return dst.ReceivedCount() > 0
	}
	row("(b) controllers only", "print job to registered printer", "pass", tryB(printer, 631))
	row("(b) controllers only", "same app to the file server", "block", tryB(fileSrv, 631))
	t.Note("(b) queries answered by the controller on the devices' behalf: %d.",
		ctl.Counters.Get("queries_intercepted")+ctl.Counters.Get("answered_on_behalf"))

	t.Note("%d/%d scenarios match.", len(t.Rows)-ck.failures, len(t.Rows))
	t.Fprint(w)
	return t
}
