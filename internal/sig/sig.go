// Package sig implements the authenticated-delegation primitive the paper's
// `verify` PF+=2 function needs (§3.3, Figures 5 and 7): a user or a trusted
// third party signs an application's (exe-hash, app-name, requirements)
// tuple, the ident++ daemon ships the signature as the `req-sig` key, and
// the controller verifies it against a public key from a `dict <pubkeys>`.
//
// The paper does not pin a signature scheme (its examples show truncated
// base64-ish blobs); we use Ed25519 from the standard library. What policy
// correctness depends on — existential unforgeability and a stable canonical
// encoding of the signed tuple — is provided here.
package sig

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by verification and keyring operations.
var (
	ErrBadSignature  = errors.New("sig: signature verification failed")
	ErrBadKey        = errors.New("sig: malformed key")
	ErrUnknownSigner = errors.New("sig: unknown signer")
)

// PublicKey is an encodable Ed25519 public key.
type PublicKey struct {
	k ed25519.PublicKey
}

// PrivateKey is an Ed25519 private key with its public half.
type PrivateKey struct {
	k ed25519.PrivateKey
}

// GenerateKey creates a fresh key pair using crypto/rand.
func GenerateKey() (PublicKey, PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return PublicKey{}, PrivateKey{}, err
	}
	return PublicKey{pub}, PrivateKey{priv}, nil
}

// MustGenerateKey is GenerateKey that panics on error (crypto/rand failure
// is unrecoverable); for tests and example setup code.
func MustGenerateKey() (PublicKey, PrivateKey) {
	pub, priv, err := GenerateKey()
	if err != nil {
		panic(err)
	}
	return pub, priv
}

// Public returns the public half of the key.
func (p PrivateKey) Public() PublicKey {
	return PublicKey{p.k.Public().(ed25519.PublicKey)}
}

// String encodes the public key in the form policy files carry
// (unpadded base64, as the paper's `sk3ajf...fa932` literals suggest).
func (p PublicKey) String() string {
	return base64.RawStdEncoding.EncodeToString(p.k)
}

// IsZero reports whether the key is unset.
func (p PublicKey) IsZero() bool { return len(p.k) == 0 }

// Equal reports whether two public keys are the same key.
func (p PublicKey) Equal(q PublicKey) bool {
	return string(p.k) == string(q.k)
}

// ParsePublicKey decodes the String form.
func ParsePublicKey(s string) (PublicKey, error) {
	b, err := base64.RawStdEncoding.DecodeString(s)
	if err != nil || len(b) != ed25519.PublicKeySize {
		return PublicKey{}, fmt.Errorf("%w: %q", ErrBadKey, s)
	}
	return PublicKey{ed25519.PublicKey(b)}, nil
}

// IsZero reports whether the private key is unset.
func (p PrivateKey) IsZero() bool { return len(p.k) == 0 }

// String encodes the private key (seed plus public half, the stdlib's
// native layout) as unpadded base64 for key files. Treat the result like
// the key material it is: 0600 files, never on the wire.
func (p PrivateKey) String() string {
	return base64.RawStdEncoding.EncodeToString(p.k)
}

// ParsePrivateKey decodes the PrivateKey String form.
func ParsePrivateKey(s string) (PrivateKey, error) {
	b, err := base64.RawStdEncoding.DecodeString(s)
	if err != nil || len(b) != ed25519.PrivateKeySize {
		return PrivateKey{}, fmt.Errorf("%w: private key", ErrBadKey)
	}
	return PrivateKey{ed25519.PrivateKey(b)}, nil
}

// canonical produces an injective byte encoding of the signed values:
// a count followed by length-prefixed items. Injectivity matters — without
// length prefixes, ("ab","c") and ("a","bc") would sign identically and a
// malicious daemon could shift bytes between the app-name and requirements
// fields of Figure 5's verify call.
func canonical(values []string) []byte {
	n := 4
	for _, v := range values {
		n += 4 + len(v)
	}
	out := make([]byte, 0, n)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(values)))
	out = append(out, hdr[:]...)
	for _, v := range values {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(v)))
		out = append(out, hdr[:]...)
		out = append(out, v...)
	}
	return out
}

// Sign signs the canonical encoding of values and returns the unpadded
// base64 signature that goes into a `req-sig` key-value pair.
func Sign(priv PrivateKey, values ...string) string {
	sig := ed25519.Sign(priv.k, canonical(values))
	return base64.RawStdEncoding.EncodeToString(sig)
}

// Verify checks a base64 signature over the canonical encoding of values.
func Verify(pub PublicKey, sigB64 string, values ...string) error {
	if pub.IsZero() {
		return ErrBadKey
	}
	sig, err := base64.RawStdEncoding.DecodeString(sigB64)
	if err != nil || len(sig) != ed25519.SignatureSize {
		return fmt.Errorf("%w: undecodable signature", ErrBadSignature)
	}
	if !ed25519.Verify(pub.k, canonical(values), sig) {
		return ErrBadSignature
	}
	return nil
}

// Keyring maps signer names (the keys of a PF+=2 `dict <pubkeys>`, e.g.
// "research", "Secur", "admin") to public keys. It is safe for concurrent
// use: the controller reads it on every flow-setup while an administrator
// may rotate keys.
type Keyring struct {
	mu   sync.RWMutex
	keys map[string]PublicKey
}

// NewKeyring builds an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string]PublicKey)}
}

// Add registers (or replaces) a signer's key.
func (r *Keyring) Add(name string, pub PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[name] = pub
}

// Remove deletes a signer — the revocation path the paper's delegation
// story requires (§1: "revoke the delegation if needed").
func (r *Keyring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.keys, name)
}

// Lookup returns the key for a signer.
func (r *Keyring) Lookup(name string) (PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.keys[name]
	if !ok {
		return PublicKey{}, fmt.Errorf("%w: %q", ErrUnknownSigner, name)
	}
	return k, nil
}

// Names returns the registered signer names, sorted.
func (r *Keyring) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.keys))
	for n := range r.keys {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VerifyAs verifies a signature attributed to a named signer.
func (r *Keyring) VerifyAs(name, sigB64 string, values ...string) error {
	pub, err := r.Lookup(name)
	if err != nil {
		return err
	}
	return Verify(pub, sigB64, values...)
}
