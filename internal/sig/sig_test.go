package sig

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	pub, priv := MustGenerateKey()
	s := Sign(priv, "exehash123", "skype", "pass all")
	if err := Verify(pub, s, "exehash123", "skype", "pass all"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	pub, priv := MustGenerateKey()
	s := Sign(priv, "exehash123", "skype", "pass all")
	cases := [][]string{
		{"exehash999", "skype", "pass all"},     // changed hash
		{"exehash123", "skype", "pass none"},    // changed rules
		{"exehash123", "skype"},                 // dropped field
		{"exehash123", "skype", "pass all", ""}, // extra field
	}
	for i, vals := range cases {
		if err := Verify(pub, s, vals...); !errors.Is(err, ErrBadSignature) {
			t.Errorf("case %d: err = %v, want ErrBadSignature", i, err)
		}
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	_, priv := MustGenerateKey()
	otherPub, _ := MustGenerateKey()
	s := Sign(priv, "data")
	if err := Verify(otherPub, s, "data"); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsGarbageSignature(t *testing.T) {
	pub, _ := MustGenerateKey()
	for _, bad := range []string{"", "not base64 !!!", "QUJD"} {
		if err := Verify(pub, bad, "data"); !errors.Is(err, ErrBadSignature) {
			t.Errorf("sig %q: err = %v, want ErrBadSignature", bad, err)
		}
	}
}

func TestVerifyZeroKey(t *testing.T) {
	_, priv := MustGenerateKey()
	s := Sign(priv, "x")
	if err := Verify(PublicKey{}, s, "x"); !errors.Is(err, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", err)
	}
}

func TestCanonicalInjective(t *testing.T) {
	// The classic splice attack: moving bytes across field boundaries must
	// change the canonical encoding.
	a := canonical([]string{"ab", "c"})
	b := canonical([]string{"a", "bc"})
	if string(a) == string(b) {
		t.Fatal("canonical encoding is not injective across field boundaries")
	}
	if string(canonical([]string{"abc"})) == string(canonical([]string{"abc", ""})) {
		t.Fatal("canonical encoding ignores empty trailing fields")
	}
}

func TestCanonicalInjectiveProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		same := a1 == b1 && a2 == b2
		enc1 := string(canonical([]string{a1, a2}))
		enc2 := string(canonical([]string{b1, b2}))
		return (enc1 == enc2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	pub, _ := MustGenerateKey()
	s := pub.String()
	if strings.ContainsAny(s, "=\n ") {
		t.Errorf("key encoding should be unpadded single-line: %q", s)
	}
	back, err := ParsePublicKey(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s {
		t.Error("round trip changed the key")
	}
}

func TestParsePublicKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "%%%", "QUJD"} {
		if _, err := ParsePublicKey(bad); !errors.Is(err, ErrBadKey) {
			t.Errorf("ParsePublicKey(%q) err = %v, want ErrBadKey", bad, err)
		}
	}
}

func TestKeyring(t *testing.T) {
	r := NewKeyring()
	pubR, privR := MustGenerateKey()
	pubS, _ := MustGenerateKey()
	r.Add("research", pubR)
	r.Add("Secur", pubS)

	if got := r.Names(); len(got) != 2 || got[0] != "Secur" || got[1] != "research" {
		t.Errorf("Names = %v", got)
	}

	s := Sign(privR, "hash", "app", "rules")
	if err := r.VerifyAs("research", s, "hash", "app", "rules"); err != nil {
		t.Errorf("VerifyAs research: %v", err)
	}
	// The same signature must not verify under another registered name.
	if err := r.VerifyAs("Secur", s, "hash", "app", "rules"); !errors.Is(err, ErrBadSignature) {
		t.Errorf("VerifyAs Secur err = %v, want ErrBadSignature", err)
	}
	if err := r.VerifyAs("nobody", s, "hash"); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("unknown signer err = %v", err)
	}

	// Revocation: after Remove, delegation stops validating.
	r.Remove("research")
	if err := r.VerifyAs("research", s, "hash", "app", "rules"); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("revoked signer err = %v, want ErrUnknownSigner", err)
	}
}

func TestKeyringConcurrent(t *testing.T) {
	r := NewKeyring()
	pub, priv := MustGenerateKey()
	r.Add("u", pub)
	s := Sign(priv, "v")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.Add("u", pub)
			r.Lookup("u")
		}
	}()
	for i := 0; i < 500; i++ {
		if err := r.VerifyAs("u", s, "v"); err != nil {
			t.Fatalf("concurrent verify: %v", err)
		}
	}
	<-done
}

func TestSignDeterministic(t *testing.T) {
	_, priv := MustGenerateKey()
	if Sign(priv, "a", "b") != Sign(priv, "a", "b") {
		t.Error("Ed25519 signing should be deterministic")
	}
}

func BenchmarkSign(b *testing.B) {
	_, priv := MustGenerateKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Sign(priv, "exehash", "appname", "block all\npass all with eq(@src[name], app)")
	}
}

func BenchmarkVerify(b *testing.B) {
	pub, priv := MustGenerateKey()
	s := Sign(priv, "exehash", "appname", "block all\npass all with eq(@src[name], app)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(pub, s, "exehash", "appname", "block all\npass all with eq(@src[name], app)"); err != nil {
			b.Fatal(err)
		}
	}
}
