package baseline

import (
	"testing"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

var (
	hostA = netaddr.MustParseIP("10.0.0.1")
	hostB = netaddr.MustParseIP("10.0.0.2")
)

func tcp(sp, dp netaddr.Port) flow.Five {
	return flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: sp, DstPort: dp}
}

// lineTopo is a trivial topology for controller-driven tests.
type lineTopo struct{}

func (lineTopo) Path(src, dst netaddr.IP) ([]core.Hop, error) {
	return []core.Hop{{Datapath: 1, OutPort: 2}}, nil
}

type countingDP struct{ id uint64 }

func (d *countingDP) DatapathID() uint64           { return d.id }
func (d *countingDP) Apply(openflow.FlowMod) error { return nil }
func (d *countingDP) PacketOut(uint16, []byte)     {}
func (d *countingDP) ReleaseBuffer(uint32)         {}

func event(f flow.Five) openflow.PacketIn {
	return openflow.PacketIn{
		SwitchID: 1, BufferID: openflow.BufferNone,
		Tuple: flow.Ten{EthType: flow.EthTypeIPv4, SrcIP: f.SrcIP, DstIP: f.DstIP,
			Proto: f.Proto, SrcPort: f.SrcPort, DstPort: f.DstPort},
	}
}

func TestNullTransportMakesVanillaFirewall(t *testing.T) {
	// The paper's port-80 dilemma (§1): a vanilla firewall cannot tell
	// Skype from Web on destination port 80, so an app-aware policy fails
	// closed for both.
	ctl := core.New(core.Config{
		Name: "vanilla",
		Policy: pf.MustCompile("p", `
block all
pass from any to any port 80 with eq(@src[name], firefox)
`),
		Transport: NullTransport{}, Topology: lineTopo{}, InstallEntries: true,
	})
	ctl.AddDatapath(&countingDP{id: 1})
	ctl.HandleEvent(event(tcp(1000, 80)))
	if ctl.Counters.Get("flows_denied") != 1 {
		t.Error("vanilla firewall should fail closed on app predicates")
	}
	// A port-only policy works identically with and without ident++.
	ctl2 := core.New(core.Config{
		Name: "vanilla",
		Policy: pf.MustCompile("p", `
block all
pass from any to any port 80
`),
		Transport: NullTransport{}, Topology: lineTopo{}, InstallEntries: true,
	})
	ctl2.AddDatapath(&countingDP{id: 1})
	ctl2.HandleEvent(event(tcp(1000, 80)))
	ctl2.HandleEvent(event(tcp(1000, 443)))
	if ctl2.Counters.Get("flows_allowed") != 1 || ctl2.Counters.Get("flows_denied") != 1 {
		t.Errorf("port policy wrong: %s", ctl2.Counters)
	}
}

func TestEthaneTransportSuppliesOnlyBindings(t *testing.T) {
	et := NewEthaneTransport()
	et.Bind(hostA, "alice", "users", "research")

	resp, _, err := et.Query(hostA, wire.Query{Flow: tcp(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resp.Latest(wire.KeyUserID); v != "alice" {
		t.Errorf("userID = %q", v)
	}
	if v, _ := resp.Latest(wire.KeyGroupID); v != "users research" {
		t.Errorf("groupID = %q", v)
	}
	// No application-level keys, ever.
	for _, k := range []string{wire.KeyName, wire.KeyExeHash, wire.KeyVersion, wire.KeyRequirements} {
		if _, ok := resp.Latest(k); ok {
			t.Errorf("Ethane response leaked %s", k)
		}
	}
	if _, _, err := et.Query(hostB, wire.Query{Flow: tcp(1, 2)}); err == nil {
		t.Error("unbound host should not answer")
	}
	et.Unbind(hostA)
	if _, _, err := et.Query(hostA, wire.Query{Flow: tcp(1, 2)}); err == nil {
		t.Error("unbound (logged-out) host should not answer")
	}
}

func TestEthaneCannotEnforceAppPolicy(t *testing.T) {
	// A user-level rule works under Ethane; an app-level rule fails closed
	// — the paper's motivating gap.
	et := NewEthaneTransport()
	et.Bind(hostA, "alice", "users")
	et.Bind(hostB, "smtp")

	userPolicy := pf.MustCompile("p", `
block all
pass from any to any with member(@src[groupID], users)
`)
	appPolicy := pf.MustCompile("p", `
block all
pass from any to any with eq(@src[name], skype)
`)
	mk := func(p *pf.Policy) *core.Controller {
		c := core.New(core.Config{Name: "ethane", Policy: p, Transport: et,
			Topology: lineTopo{}, InstallEntries: true})
		c.AddDatapath(&countingDP{id: 1})
		return c
	}
	cu := mk(userPolicy)
	cu.HandleEvent(event(tcp(1, 25)))
	if cu.Counters.Get("flows_allowed") != 1 {
		t.Error("Ethane should enforce user-level policy")
	}
	ca := mk(appPolicy)
	ca.HandleEvent(event(tcp(1, 25)))
	if ca.Counters.Get("flows_denied") != 1 {
		t.Error("Ethane must fail closed on app-level policy (it lacks the information)")
	}
}

func TestHostFirewallEnforcesLocally(t *testing.T) {
	p := pf.MustCompile("p", `
block all
pass from any to any port 22
`)
	fw := NewHostFirewall(p)
	if !fw.Admit(tcp(1000, 22), nil) {
		t.Error("ssh should be admitted")
	}
	if fw.Admit(tcp(1000, 23), nil) {
		t.Error("telnet should be denied")
	}
	if fw.Allowed != 1 || fw.Denied != 1 {
		t.Errorf("counters = %d/%d", fw.Allowed, fw.Denied)
	}
}

func TestCompromisedHostFirewallAdmitsEverything(t *testing.T) {
	// §6: with distributed firewalls, compromising the end-host bypasses
	// the central policy entirely.
	fw := NewHostFirewall(pf.MustCompile("p", `block all`))
	if fw.Admit(tcp(1, 9999), nil) {
		t.Fatal("sanity: block all should deny")
	}
	fw.SetCompromised(true)
	if !fw.Admit(tcp(1, 9999), nil) {
		t.Error("compromised host firewall should admit everything")
	}
	fw.SetCompromised(false)
	if fw.Admit(tcp(1, 9999), nil) {
		t.Error("recovery should restore filtering")
	}
}

func TestHostFirewallPolicySwap(t *testing.T) {
	fw := NewHostFirewall(pf.MustCompile("p", `block all`))
	fw.SetPolicy(pf.MustCompile("p2", `pass from any to any`))
	if !fw.Admit(tcp(1, 1), nil) {
		t.Error("policy swap had no effect")
	}
}
