// Package baseline implements the comparison points the paper argues
// against (§5, §6), sharing the enforcement substrate so differences are
// attributable to information, not implementation:
//
//   - Vanilla firewall: the same controller and switches, but no ident++ —
//     policy sees only the 5-tuple (NullTransport). This is "a network
//     protected by vanilla firewalls" in §5's comparisons.
//   - Ethane-style controller: policy sees user/group bindings the network
//     learned at authentication time, but no application-level information
//     (§6: Ethane "forces the administrator to make security decisions
//     based on the source and destination's physical switch ports and
//     network primitives, and not on any application-level information").
//   - Distributed firewall: enforcement at the receiving end-host (§6,
//     Ioannidis et al.); the network forwards everything, and a compromised
//     end-host has no protection at all.
package baseline

import (
	"sync"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// NullTransport answers no queries: composing it with the ident++
// controller yields a vanilla firewall — identical enforcement, zero
// end-host information.
type NullTransport struct{}

// Query implements core.QueryTransport by never answering. It returns a
// zero RTT: a vanilla firewall spends nothing gathering information.
func (NullTransport) Query(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
	return nil, 0, errNoDaemon
}

// errNoDaemon mirrors core.ErrNoDaemon without importing core (baseline is
// imported by core's tests). The controller classifies errors now — only
// the daemon-less case may be answered on behalf of — so nullErr declares
// itself via the NoDaemon marker method core.IsNoDaemon looks for.
var errNoDaemon = nullErr{}

type nullErr struct{}

func (nullErr) Error() string { return "baseline: vanilla firewall performs no queries" }

// NoDaemon marks the error as the daemon-less case for core.IsNoDaemon.
func (nullErr) NoDaemon() bool { return true }

// Binding is Ethane's authentication-time knowledge about a host: which
// user is logged in and their groups. Ethane knows who and where, but not
// which application is speaking.
type Binding struct {
	User   string
	Groups []string
}

// EthaneTransport synthesizes ident++-shaped responses from a binding
// table, so the same PF+=2 policies run with exactly the information an
// Ethane controller would have: userID and groupID, never name/exe-hash/
// version/requirements.
type EthaneTransport struct {
	mu       sync.RWMutex
	bindings map[netaddr.IP]Binding
	// RTT models the (local) binding-table lookup; zero by default.
	RTT time.Duration
}

// NewEthaneTransport creates an empty binding table.
func NewEthaneTransport() *EthaneTransport {
	return &EthaneTransport{bindings: make(map[netaddr.IP]Binding)}
}

// Bind records the user authenticated on a host.
func (t *EthaneTransport) Bind(ip netaddr.IP, user string, groups ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bindings[ip] = Binding{User: user, Groups: groups}
}

// Unbind removes a host's binding (user logged out).
func (t *EthaneTransport) Unbind(ip netaddr.IP) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.bindings, ip)
}

// Query implements core.QueryTransport from the binding table.
func (t *EthaneTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	t.mu.RLock()
	b, ok := t.bindings[host]
	t.mu.RUnlock()
	if !ok {
		return nil, t.RTT, errNoDaemon
	}
	r := wire.NewResponse(q.Flow)
	r.Add(wire.KeyUserID, b.User)
	if len(b.Groups) > 0 {
		r.Add(wire.KeyGroupID, joinGroups(b.Groups))
	}
	return r, t.RTT, nil
}

func joinGroups(gs []string) string {
	out := ""
	for i, g := range gs {
		if i > 0 {
			out += " "
		}
		out += g
	}
	return out
}

// HostFirewall is the distributed-firewalls baseline: each host filters its
// own inbound traffic with a local policy; there is no network enforcement.
// A compromised host simply stops filtering (§6: "a compromised end-host
// effectively has no protection. The central administrator's policies are
// completely bypassed").
type HostFirewall struct {
	mu          sync.RWMutex
	policy      *pf.Policy
	compromised bool

	Allowed int64
	Denied  int64
}

// NewHostFirewall creates a host firewall enforcing policy.
func NewHostFirewall(policy *pf.Policy) *HostFirewall {
	return &HostFirewall{policy: policy}
}

// SetCompromised marks the host as attacker-controlled: filtering stops.
func (h *HostFirewall) SetCompromised(c bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.compromised = c
}

// SetPolicy replaces the local policy (central policy distribution).
func (h *HostFirewall) SetPolicy(p *pf.Policy) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.policy = p
}

// Admit decides an inbound flow. src may carry sender-supplied information
// (distributed firewalls can consult local context); nil is the common
// case.
func (h *HostFirewall) Admit(f flow.Five, src *wire.Response) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.compromised {
		h.Allowed++
		return true
	}
	d := h.policy.Evaluate(pf.Input{Flow: f, Src: src})
	if d.Action == pf.Pass {
		h.Allowed++
		return true
	}
	h.Denied++
	return false
}
