package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBuckets are the histogram bucket upper bounds, in seconds. The
// range spans sub-microsecond cache hits through multi-second daemon
// timeouts — the full spread of the paper's flow-setup latencies.
var defaultBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// writePrometheus renders families in text exposition format 0.0.4:
// https://prometheus.io/docs/instrumenting/exposition_formats/
func writePrometheus(w io.Writer, fams []*family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		switch f.kind {
		case counterKind:
			writeHeader(bw, f.name, f.help, "counter")
			writeSample(bw, f.name, f.labels, "", float64(f.value()))
		case gaugeKind:
			writeHeader(bw, f.name, f.help, "gauge")
			writeSample(bw, f.name, f.labels, "", float64(f.value()))
		case histogramKind:
			writeHistogram(bw, f)
		case counterSetKind:
			writeCounterSet(bw, f)
		}
	}
	return bw.Flush()
}

// writeCounterSet emits one family per raw name: declared names first
// (sorted, always present), then any undeclared names found live (sorted,
// flagged undocumented in HELP).
func writeCounterSet(bw *bufio.Writer, f *family) {
	snap := f.set.Snapshot()
	declared := make([]string, 0, len(f.declared))
	for raw := range f.declared {
		declared = append(declared, raw)
	}
	sort.Strings(declared)
	for _, raw := range declared {
		name := counterName(raw)
		writeHeader(bw, name, f.declared[raw], "counter")
		writeSample(bw, name, f.labels, "", float64(snap[raw]))
		delete(snap, raw)
	}
	extras := make([]string, 0, len(snap))
	for raw := range snap {
		extras = append(extras, raw)
	}
	sort.Strings(extras)
	for _, raw := range extras {
		name := counterName(raw)
		writeHeader(bw, name, "UNDOCUMENTED counter (absent from the declared set; add it to the wiring table and docs/metrics.md)", "counter")
		writeSample(bw, name, f.labels, "", float64(snap[raw]))
	}
}

// writeHistogram emits _bucket/_sum/_count. Bucket counts are computed
// from the reservoir's retained samples; since retained ≤ Count(), every
// finite cumulative bucket is ≤ the +Inf bucket (which carries the true
// count), preserving the monotonicity the format requires. _sum is the
// true sum, so sum/count is the exact mean.
func writeHistogram(bw *bufio.Writer, f *family) {
	writeHeader(bw, f.name, f.help, "histogram")
	samples := f.hist.Samples()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	count := f.hist.Count()
	sum := f.hist.Sum()

	idx := 0
	cumulative := int64(0)
	for _, le := range defaultBuckets {
		bound := time.Duration(le * float64(time.Second))
		for idx < len(samples) && samples[idx] <= bound {
			idx++
		}
		cumulative = int64(idx)
		writeSample(bw, f.name+"_bucket", f.labels, formatLe(le), float64(cumulative))
	}
	writeSample(bw, f.name+"_bucket", f.labels, "+Inf", float64(count))
	writeSample(bw, f.name+"_sum", f.labels, "", sum.Seconds())
	writeSample(bw, f.name+"_count", f.labels, "", float64(count))
}

func writeHeader(bw *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
}

// writeSample renders one series line. le, when non-empty, is appended as
// the bucket boundary label.
func writeSample(bw *bufio.Writer, name string, labels []Label, le string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(sanitizeName(l.Key))
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus clients expect:
// integral values without an exponent where possible.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound; Prometheus treats le values as opaque
// strings but conventionally uses shortest-form floats.
func formatLe(le float64) string {
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// sanitizeName maps an arbitrary string onto the metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become '_' and a leading digit
// gets a '_' prefix.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote, and newline, the three
// escapes the text format defines for label values.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline (double quotes are legal in
// HELP text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
