package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"identxx/internal/trace"
)

// Server bundles a Registry and a Health set behind one HTTP listener:
//
//	GET /metrics      — Prometheus text exposition
//	GET /healthz      — liveness
//	GET /readyz       — readiness
//	GET /trace        — flight-recorder JSON-lines (after MountTrace)
//	GET /debug/pprof/ — Go profiling (after EnablePprof)
//
// Both identctl (controller role) and identd (daemon role) mount one; the
// wiring helpers decide what gets registered.
type Server struct {
	Registry *Registry
	Health   *Health

	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewServer creates a server with a fresh registry and health set. Call
// Start to listen on an address, or use Handler directly (tests).
func NewServer() *Server {
	s := &Server{
		Registry: NewRegistry(),
		Health:   NewHealth(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/healthz", s.Health.LiveHandler)
	mux.HandleFunc("/readyz", s.Health.ReadyHandler)
	s.mux = mux
	s.srv = &http.Server{
		Handler: mux,
		// Scrapes are small and local; generous-but-bounded timeouts keep a
		// stuck scraper from pinning goroutines.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	return s
}

func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Errors past the header are connection failures; nothing to do.
	_ = s.Registry.WritePrometheus(w)
}

// MountTrace exposes the flight recorder's retained traces as JSON-lines
// on GET /trace:
//
//	/trace             — every retained trace, oldest first
//	/trace?slow=1      — slow-threshold captures only
//	/trace?id=<hex id> — every retained trace with that ID
//
// The export is a snapshot copy; scraping never blocks the decision path.
func (s *Server) MountTrace(rec *trace.Recorder) {
	s.mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		var traces []trace.Trace
		q := req.URL.Query()
		switch {
		case q.Get("id") != "":
			id, err := trace.ParseID(q.Get("id"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			traces = rec.Find(id)
		case q.Get("slow") != "":
			traces = rec.Slow()
		default:
			traces = rec.Traces()
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSON(w, traces)
	})
}

// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ on this
// server's mux (never on http.DefaultServeMux). Gated behind a flag in
// both binaries — see the operations guide for the safety trade-offs.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the mux, for tests and embedding.
func (s *Server) Handler() http.Handler {
	return s.srv.Handler
}

// Start listens on addr and serves in a background goroutine. The returned
// address carries the resolved port (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go func() {
		// ErrServerClosed after Close; anything else means the listener
		// died, which the next scrape will notice.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	return s.srv.Close()
}
