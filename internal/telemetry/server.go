package telemetry

import (
	"net"
	"net/http"
	"time"
)

// Server bundles a Registry and a Health set behind one HTTP listener:
//
//	GET /metrics  — Prometheus text exposition
//	GET /healthz  — liveness
//	GET /readyz   — readiness
//
// Both identctl (controller role) and identd (daemon role) mount one; the
// wiring helpers decide what gets registered.
type Server struct {
	Registry *Registry
	Health   *Health

	srv *http.Server
	ln  net.Listener
}

// NewServer creates a server with a fresh registry and health set. Call
// Start to listen on an address, or use Handler directly (tests).
func NewServer() *Server {
	s := &Server{
		Registry: NewRegistry(),
		Health:   NewHealth(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/healthz", s.Health.LiveHandler)
	mux.HandleFunc("/readyz", s.Health.ReadyHandler)
	s.srv = &http.Server{
		Handler: mux,
		// Scrapes are small and local; generous-but-bounded timeouts keep a
		// stuck scraper from pinning goroutines.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	return s
}

func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Errors past the header are connection failures; nothing to do.
	_ = s.Registry.WritePrometheus(w)
}

// Handler returns the mux, for tests and embedding.
func (s *Server) Handler() http.Handler {
	return s.srv.Handler
}

// Start listens on addr and serves in a background goroutine. The returned
// address carries the resolved port (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go func() {
		// ErrServerClosed after Close; anything else means the listener
		// died, which the next scrape will notice.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	return s.srv.Close()
}
