// Package telemetry is the export layer over internal/metrics: it walks a
// registry of counters, gauges, and histograms and serves them as
// Prometheus text exposition over HTTP, alongside liveness/readiness
// endpoints wired to real process signals and a structured (JSON-lines)
// audit stream tapped off the controller's audit ring.
//
// The package deliberately sits outside the decision path. Counters and
// gauges are read with atomic loads at scrape time; histograms snapshot
// their reservoirs under per-stripe locks that writers hold for nanoseconds.
// Nothing here is ever called from HandleEvent or finishDecision except the
// audit tap, which is a single non-blocking channel send (audit.go).
//
// Wiring helpers in wiring.go register each component's full metric surface
// (controller, query engine, query pool, daemon) with declared name→help
// tables; docs/metrics.md mirrors those tables and a drift test keeps the
// two in lockstep.
package telemetry

import (
	"io"
	"sort"
	"sync"

	"identxx/internal/metrics"
)

// Namespace prefixes every exposition name, so identxx metrics never
// collide with another exporter's on a shared Prometheus.
const Namespace = "identxx"

// Label is one constant label attached at registration (e.g. the component
// role, the daemon's host IP). Values are escaped at write time.
type Label struct {
	Key   string
	Value string
}

// kind discriminates the exposition TYPE of a family.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
	counterSetKind
)

// family is one registered metric family: a single counter/gauge closure, a
// histogram, or a whole metrics.Counter set with declared names.
type family struct {
	name   string // exposition name, fully qualified, suffix included
	help   string
	kind   kind
	labels []Label

	value func() int64       // counterKind, gaugeKind
	hist  *metrics.Histogram // histogramKind

	// counterSetKind: the live set plus declared raw-name → help. Declared
	// names are always exported (zero when the cell was never touched);
	// undeclared names that show up in the snapshot are exported too, with
	// a help line that names them as undocumented — the drift test turns
	// that into a CI failure instead of a silent gap.
	set      *metrics.Counter
	declared map[string]string
	prefix   string // prepended to raw names, e.g. "" or "daemon-side" sets
}

// Registry holds registered families and renders them (prometheus.go). All
// methods are safe for concurrent use; registration order is preserved in
// the exposition output so scrapes are stable and diffable.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// RegisterCounterFunc registers a monotone counter read through fn at
// scrape time. name is the raw name; the exposition name becomes
// identxx_<name>_total.
func (r *Registry) RegisterCounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.add(&family{
		name:   counterName(name),
		help:   help,
		kind:   counterKind,
		labels: labels,
		value:  fn,
	})
}

// RegisterGaugeFunc registers an instantaneous level read through fn at
// scrape time. The exposition name becomes identxx_<name>.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.add(&family{
		name:   gaugeName(name),
		help:   help,
		kind:   gaugeKind,
		labels: labels,
		value:  fn,
	})
}

// RegisterGauge registers a metrics.Gauge. Equivalent to RegisterGaugeFunc
// over g.Get.
func (r *Registry) RegisterGauge(name, help string, g *metrics.Gauge, labels ...Label) {
	r.RegisterGaugeFunc(name, help, g.Get, labels...)
}

// RegisterHistogram registers a duration histogram, exported in seconds as
// identxx_<name>_seconds with _bucket/_sum/_count series. Bucket counts
// come from the reservoir's retained samples; the +Inf bucket and _count
// carry the true observation count, and _sum the true sum, so rate() and
// mean latency stay exact even after the reservoir saturates.
func (r *Registry) RegisterHistogram(name, help string, h *metrics.Histogram, labels ...Label) {
	r.add(&family{
		name:   histogramName(name),
		help:   help,
		kind:   histogramKind,
		labels: labels,
		hist:   h,
	})
}

// RegisterCounterSet registers a whole metrics.Counter. declared maps each
// expected raw counter name to its help text; every declared name is
// exported on every scrape (zero before first increment), and any
// undeclared name found in the live set is exported with an "undocumented"
// help marker so it cannot hide. Each raw name n becomes
// identxx_<n>_total.
func (r *Registry) RegisterCounterSet(set *metrics.Counter, declared map[string]string, labels ...Label) {
	r.add(&family{
		kind:     counterSetKind,
		labels:   labels,
		set:      set,
		declared: declared,
	})
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fams = append(r.fams, f)
}

// snapshot returns the family list for rendering.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.fams))
	copy(out, r.fams)
	return out
}

// Names returns every exposition family name the registry would emit for
// its declared surface, sorted and deduplicated (series suffixes like
// _bucket are not included; a histogram contributes its base name). The
// docs drift test diffs this against docs/metrics.md.
func (r *Registry) Names() []string {
	seen := make(map[string]struct{})
	for _, f := range r.snapshot() {
		switch f.kind {
		case counterSetKind:
			for raw := range f.declared {
				seen[counterName(raw)] = struct{}{}
			}
		default:
			seen[f.name] = struct{}{}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4). See prometheus.go for the renderer.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.snapshot())
}

func counterName(raw string) string {
	return Namespace + "_" + sanitizeName(raw) + "_total"
}

func gaugeName(raw string) string {
	return Namespace + "_" + sanitizeName(raw)
}

func histogramName(raw string) string {
	return Namespace + "_" + sanitizeName(raw) + "_seconds"
}
