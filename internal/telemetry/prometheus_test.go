package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/wire"
)

// --- fixtures -----------------------------------------------------------

type okTransport struct{}

func (okTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	r := wire.NewResponse(q.Flow)
	r.Add(wire.KeyName, "skype")
	return r, time.Millisecond, nil
}

type lineTopo struct{}

func (lineTopo) Path(src, dst netaddr.IP) ([]core.Hop, error) {
	return []core.Hop{{Datapath: 1, OutPort: 2}}, nil
}

type nullDatapath struct{ id uint64 }

func (d *nullDatapath) DatapathID() uint64                  { return d.id }
func (d *nullDatapath) Apply(openflow.FlowMod) error        { return nil }
func (d *nullDatapath) PacketOut(port uint16, frame []byte) {}
func (d *nullDatapath) ReleaseBuffer(id uint32)             {}

func newTestController(t *testing.T) *core.Controller {
	t.Helper()
	ctl := core.New(core.Config{
		Name:             "telemetry-test",
		Policy:           pf.MustCompile("p", "block all\npass from any to any with eq(@src[name], skype)"),
		Transport:        okTransport{},
		Topology:         lineTopo{},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Megaflow:         true,
	})
	ctl.AddDatapath(&nullDatapath{id: 1})
	return ctl
}

func driveFlow(ctl *core.Controller, srcPort netaddr.Port) {
	ctl.HandleEvent(openflow.PacketIn{
		SwitchID: 1, BufferID: openflow.BufferNone, InPort: 1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   netaddr.MustParseIP("10.0.0.1"),
			DstIP:   netaddr.MustParseIP("10.0.0.2"),
			Proto:   netaddr.ProtoTCP, SrcPort: srcPort, DstPort: 80,
		},
	})
}

// --- exposition-format validation --------------------------------------

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^{}]*)\})? (NaN|[+-]Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"$`)
)

// parseExposition validates the text format line by line and returns
// name -> value for unlabeled samples plus the TYPE of every family.
func parseExposition(t *testing.T, out string) (values map[string]float64, types map[string]string) {
	t.Helper()
	values = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			if !helpRe.MatchString(line) {
				t.Fatalf("malformed HELP line %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("duplicate TYPE for %s", m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name, labels, value := m[1], m[3], m[4]
		if labels != "" {
			for _, lv := range splitLabels(labels) {
				if !labelRe.MatchString(lv) {
					t.Fatalf("malformed label %q in line %q", lv, line)
				}
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typ, ok := types[strings.TrimSuffix(name, suffix)]; ok && typ == "histogram" && strings.HasSuffix(name, suffix) {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		if labels == "" {
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			values[name] = v
		}
	}
	return values, types
}

// splitLabels splits k="v" pairs on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// --- tests ---------------------------------------------------------------

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounterFunc("things_done", "Things done.", func() int64 { return 42 })
	r.RegisterGaugeFunc("level", "A level.", func() int64 { return -7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	values, types := parseExposition(t, b.String())
	if types["identxx_things_done_total"] != "counter" {
		t.Errorf("counter TYPE missing: %v", types)
	}
	if values["identxx_things_done_total"] != 42 {
		t.Errorf("counter value = %v", values["identxx_things_done_total"])
	}
	if types["identxx_level"] != "gauge" || values["identxx_level"] != -7 {
		t.Errorf("gauge = %v %v", types["identxx_level"], values["identxx_level"])
	}
}

func TestNameSanitizationAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.RegisterGaugeFunc("bad-name.with chars", "g", func() int64 { return 1 },
		Label{Key: "role", Value: `quo"te\slash` + "\nnewline"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "identxx_bad_name_with_chars{") {
		t.Errorf("name not sanitized:\n%s", out)
	}
	want := `role="quo\"te\\slash\nnewline"`
	if !strings.Contains(out, want) {
		t.Errorf("label not escaped, want %s in:\n%s", want, out)
	}
	parseExposition(t, out)

	if got := sanitizeName("0day"); got != "_0day" {
		t.Errorf("leading digit: %q", got)
	}
	if got := sanitizeName(""); got != "_" {
		t.Errorf("empty name: %q", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := metrics.NewHistogram(0)
	for _, d := range []time.Duration{
		500 * time.Nanosecond, 50 * time.Microsecond, 2 * time.Millisecond,
		30 * time.Millisecond, 700 * time.Millisecond, 20 * time.Second,
	} {
		h.Observe(d)
	}
	r := NewRegistry()
	r.RegisterHistogram("lat", "Latency.", h)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	parseExposition(t, out)

	// Collect bucket counts in emission order; they must be
	// non-decreasing and end at the true count.
	var counts []float64
	var infCount, count float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "identxx_lat_seconds_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(line, `le="+Inf"`) {
				infCount = v
			} else {
				counts = append(counts, v)
			}
		}
		if strings.HasPrefix(line, "identxx_lat_seconds_count ") {
			count, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
	}
	if len(counts) != len(defaultBuckets) {
		t.Fatalf("bucket lines = %d, want %d", len(counts), len(defaultBuckets))
	}
	prev := float64(0)
	for i, c := range counts {
		if c < prev {
			t.Errorf("bucket %d count %v < previous %v (not cumulative)", i, c, prev)
		}
		prev = c
	}
	if infCount != 6 || count != 6 {
		t.Errorf("inf=%v count=%v, want 6", infCount, count)
	}
	// 20s exceeds the largest finite bound, so the last finite bucket
	// must hold 5, not 6.
	if counts[len(counts)-1] != 5 {
		t.Errorf("last finite bucket = %v, want 5", counts[len(counts)-1])
	}
}

func TestUndeclaredCounterIsFlagged(t *testing.T) {
	set := metrics.NewCounter()
	set.Add("declared_one", 3)
	set.Add("sneaky", 9)
	r := NewRegistry()
	r.RegisterCounterSet(set, map[string]string{
		"declared_one": "A declared counter.",
		"never_hit":    "Declared but never incremented.",
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	values, _ := parseExposition(t, out)
	if values["identxx_declared_one_total"] != 3 {
		t.Errorf("declared_one = %v", values["identxx_declared_one_total"])
	}
	if v, ok := values["identxx_never_hit_total"]; !ok || v != 0 {
		t.Errorf("declared-but-untouched counter absent or nonzero: %v %v", v, ok)
	}
	if !strings.Contains(out, "identxx_sneaky_total") || !strings.Contains(out, "UNDOCUMENTED") {
		t.Errorf("undeclared counter not flagged:\n%s", out)
	}
}

// TestControllerParseBack registers a real controller + engine, drives
// traffic, and parses the entire scrape back — the acceptance check that
// GET /metrics emits valid exposition.
func TestControllerParseBack(t *testing.T) {
	ctl := newTestController(t)
	for p := netaddr.Port(1000); p < 1010; p++ {
		driveFlow(ctl, p)
	}
	eng := query.NewEngine(query.Config{Lower: okTransport{}})
	defer eng.Close()

	r := NewRegistry()
	RegisterController(r, ctl)
	RegisterEngine(r, eng)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	values, types := parseExposition(t, b.String())

	if values["identxx_packet_ins_total"] != 10 {
		t.Errorf("packet_ins = %v", values["identxx_packet_ins_total"])
	}
	if values["identxx_flows_allowed_total"] != 10 {
		t.Errorf("flows_allowed = %v", values["identxx_flows_allowed_total"])
	}
	if values["identxx_policy_epoch"] != 0 {
		t.Errorf("policy_epoch = %v", values["identxx_policy_epoch"])
	}
	if values["identxx_datapaths"] != 1 {
		t.Errorf("datapaths = %v", values["identxx_datapaths"])
	}
	if types["identxx_setup_total_seconds"] != "histogram" {
		t.Errorf("setup histogram TYPE missing")
	}
	if values["identxx_setup_total_seconds_count"] != 10 {
		t.Errorf("setup count = %v", values["identxx_setup_total_seconds_count"])
	}
	// Every declared controller counter must appear even if untouched.
	for raw := range ControllerCounters {
		if _, ok := values[counterName(raw)]; !ok {
			t.Errorf("declared counter %s missing from scrape", raw)
		}
	}
	// Nothing the controller actually incremented may be undocumented.
	if strings.Contains(b.String(), "UNDOCUMENTED") {
		t.Errorf("scrape contains undocumented counters:\n%s", b.String())
	}
}

// TestScrapeDuringSetPolicy races scrapes against policy-epoch swaps and
// live traffic; run under -race this is the concurrent-scrape acceptance
// test.
func TestScrapeDuringSetPolicy(t *testing.T) {
	ctl := newTestController(t)
	r := NewRegistry()
	RegisterController(r, ctl)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctl.SetPolicy(pf.MustCompile("p", "pass all"))
			driveFlow(ctl, netaddr.Port(2000+i%100))
		}
	}()
	go func() {
		defer wg.Done()
		for p := netaddr.Port(0); ; p++ {
			select {
			case <-stop:
				return
			default:
			}
			driveFlow(ctl, 10000+p%500)
		}
	}()
	deadline := time.After(200 * time.Millisecond)
	for {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		parseExposition(t, b.String())
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
		}
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounterFunc("a", "a.", func() int64 { return 0 })
	r.RegisterGaugeFunc("b", "b.", func() int64 { return 0 })
	h := metrics.NewHistogram(0)
	r.RegisterHistogram("c", "c.", h)
	r.RegisterCounterSet(metrics.NewCounter(), map[string]string{"d": "d."})
	want := []string{"identxx_a_total", "identxx_b", "identxx_c_seconds", "identxx_d_total"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
