package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"identxx/internal/cluster"
	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/query"
	"identxx/internal/trace"
)

// This file is the single source of truth for what each component exports:
// a declared raw-name → help table per counter set, plus the gauges,
// histograms, and health probes derived from the component's snapshot
// surfaces. docs/metrics.md mirrors these tables; the drift test
// (docs_drift_test.go) fails CI when either side changes alone.

// ControllerCounters documents every counter the controller increments.
var ControllerCounters = map[string]string{
	"packet_ins":                     "Packet-in events admitted to the decision path.",
	"response_cache_hits":            "Flow setups resolved from the exact response cache without daemon queries.",
	"duplicate_packet_ins":           "Packet-ins for a flow whose decision was already in flight.",
	"waiters_resolved":               "Parked duplicate packet-ins resolved by the first verdict.",
	"waiters_forwarded":              "Packets forwarded on behalf of resolved waiters.",
	"flows_allowed":                  "Flow setups whose verdict was Allow.",
	"flows_denied":                   "Flow setups whose verdict was Block.",
	"eval_diags":                     "Policy evaluations that emitted diagnostics (missing keys, signature failures).",
	"entries_installed":              "Flow-table entries installed across all datapaths.",
	"install_errors":                 "Flow-mod installs rejected by a datapath.",
	"query_errors":                   "Endpoint queries that failed for reasons other than timeout.",
	"query_timeouts":                 "Endpoint queries that timed out.",
	"answered_on_behalf":             "Queries the controller answered for daemon-less hosts (§4 incremental benefit).",
	"decisions_headeronly":           "Decisions resolved by the header-only pre-pass without querying either end.",
	"policy_reloads":                 "SetPolicy snapshot swaps (each bumps the policy epoch).",
	"flow_removed":                   "Flow-removed notifications from datapaths (idle/hard timeout expiries).",
	"unknown_datapath":               "Packet-ins from datapaths absent from the current snapshot.",
	"non_ip_dropped":                 "Packet-ins dropped because the frame was not parseable IP.",
	"waiters_overflowed":             "Duplicate packet-ins dropped because the shard's waiter list was full.",
	"path_errors":                    "Topology path lookups that failed during install or teardown.",
	"queries_intercepted":            "ident++ queries the controller intercepted and answered itself (§3.4).",
	"responses_augmented":            "Transit responses the controller augmented with its own observations (§3.4).",
	"megaflow_hits":                  "Flow setups resolved by the megaflow wildcard cache.",
	"megaflow_installs":              "Wildcard entries installed into the megaflow cache.",
	"megaflow_teardowns":             "Wildcard entries torn down by revocation or policy change.",
	"megaflow_expired":               "Wildcard entries dropped by TTL expiry.",
	"megaflow_hit_raced":             "Megaflow hits that raced a concurrent teardown and fell through to a full decision.",
	"flows_revoked":                  "Installed flows torn down live by the revocation plane.",
	"revocations_updates":            "Daemon-pushed endpoint-state updates received.",
	"revocations_flows":              "Flows matched by revocation updates (teardown initiated).",
	"revocations_inflight":           "Revocations that cancelled a decision still in flight.",
	"revocations_raced":              "Revocations that raced a concurrent cache store and re-ran teardown.",
	"revocations_hellos":             "Daemon hello updates (subscription handshakes) processed.",
	"revocations_resyncs":            "Full resyncs forced by serial gaps in a daemon's update stream.",
	"revocations_noop":               "Updates that matched no registered fact (nothing to tear down).",
	"revocations_entries":            "Fact dependencies registered in the revocation index.",
	"revocations_lease_expired":      "Flows torn down by lease expiry (daemons that never push).",
	"revocations_wide_lease_expired": "Megaflow classes torn down by lease expiry.",
	"cred_unauthorized":              "Daemon answers excluded from verdicts by credential enforcement (unverified, expired, or out-of-scope sessions).",
}

// EngineCounters documents the query engine's counters.
var EngineCounters = map[string]string{
	"engine_queries_sent":      "Queries the engine passed to the lower transport (post-coalescing).",
	"engine_coalesce_hits":     "Queries coalesced onto an identical in-flight exchange.",
	"engine_negcache_hits":     "Queries served a cached host-unreachable verdict without touching the wire.",
	"engine_retries":           "Extra attempts after retryable transport failures.",
	"engine_breaker_opens":     "Circuit breakers opened by consecutive host failures.",
	"engine_breaker_fastfails": "Queries rejected while a host's breaker was open.",
	"engine_timeouts":          "Query attempts that exceeded the request timeout.",
	"engine_host_recoveries":   "Hosts whose breaker and negative cache were cleared by a subscription hello.",
}

// PoolCounters documents the TCP connection pool's counters.
var PoolCounters = map[string]string{
	"pool_queries_sent":            "Query exchanges written to daemon connections.",
	"pool_requests_failed":         "In-flight exchanges failed by connection death.",
	"pool_timeouts":                "Exchanges that hit their deadline on the wire.",
	"pool_dials":                   "Daemon connections established.",
	"pool_dial_errors":             "Daemon dial attempts that failed.",
	"pool_dial_backoff_fastfails":  "Exchanges rejected during dial backoff without an attempt.",
	"pool_subscribes":              "Update subscriptions established on daemon connections.",
	"pool_updates":                 "Daemon-pushed updates decoded and delivered.",
	"pool_update_decode_errors":    "Pushed updates dropped because they failed to decode.",
	"pool_update_resyncs":          "Resyncs synthesized after serial gaps or reconnects.",
	"pool_cred_verified":           "Session hellos whose credential and transcript signature verified.",
	"pool_cred_missing":            "Session hellos rejected for presenting no credential.",
	"pool_cred_forged":             "Session hellos rejected for a bad authority or transcript signature.",
	"pool_cred_expired":            "Session hellos rejected for an expired credential.",
	"pool_cred_scope_rejects":      "Updates or answer pairs rejected for asserting keys outside the credential's scope.",
	"pool_cred_lapsed":             "Verified sessions invalidated live by credential expiry (lapse timer).",
	"pool_cred_rejected_responses": "Query responses withheld from the engine because the session was unverified, expired, or out of scope.",
}

// DaemonCounters documents the daemon's counters.
var DaemonCounters = map[string]string{
	"daemon_queries_answered": "ident++ queries answered (HandleQuery calls).",
	"daemon_queries_traced":   "Answered queries that carried a flight-recorder trace ID from the controller.",
	"daemon_subscribes":       "Update subscriptions accepted.",
	"daemon_updates_pushed":   "Update deliveries to subscribers (one per subscriber per update).",
	"daemon_rehellos":         "Hello re-deliveries triggered by credential rotation (one per subscriber per SetCredential).",
}

// TraceCounters documents the flight recorder's counters.
var TraceCounters = map[string]string{
	"trace_sampled":       "Decision traces retained by the deterministic sampler.",
	"trace_dropped":       "Decision traces recorded but not retained (neither sampled nor slow).",
	"trace_slow_captured": "Decision traces retained by the slow-decision threshold despite not being sampled.",
	"trace_stitched":      "Traces that inherited their ID from another replica's forward (cross-replica stitching).",
}

// ClusterCounters documents the replica router's counters.
var ClusterCounters = map[string]string{
	"cluster_events_owned":      "Packet-ins owned by this replica and decided locally.",
	"cluster_events_forwarded":  "Packet-ins forwarded to their owning replica.",
	"cluster_events_received":   "Forwarded packet-ins received from peer replicas and decided here.",
	"cluster_forward_fallbacks": "Forwards that failed and fell back to a local decision (nonzero means a peer or link is down).",
	"cluster_ring_rebuilds":     "Ownership ring rebuilds (SetMembers / RemoveMember calls).",
	"cluster_takeover_swept":    "Orphaned switch entries deleted by takeover sweeps after ring rebuilds.",
	"cluster_snapshots_pushed":  "Config snapshots accepted by peers.",
	"cluster_snapshots_fenced":  "Config snapshot pushes rejected by peers already holding a newer epoch (the fence working, not an error).",
	"cluster_push_errors":       "Config snapshot pushes that failed in transport or application.",
	"cluster_snapshots_applied": "Peer config snapshots applied locally.",
	"cluster_snapshots_stale":   "Peer config snapshots rejected locally for a stale epoch.",
	"cluster_snapshot_errors":   "Peer config snapshots rejected locally for decode or policy-compile failure.",
}

// AuditSinkCounters documents the audit sink's counters.
var AuditSinkCounters = map[string]string{
	"audit_sink_emitted": "Audit entries written to the structured sink.",
	"audit_sink_dropped": "Audit entries dropped because the sink's buffer was full (never blocks the decision path).",
}

// RegisterController exports the controller's whole surface: its counter
// set, the setup-latency histograms, and gauges over the snapshot/cache/
// revocation state. Safe to call once per controller.
func RegisterController(r *Registry, ctl *core.Controller, labels ...Label) {
	r.RegisterCounterSet(ctl.Counters, ControllerCounters, labels...)

	r.RegisterGaugeFunc("policy_epoch", "Current policy epoch (bumped by every SetPolicy snapshot swap).",
		func() int64 { return int64(ctl.Epoch()) }, labels...)
	r.RegisterGaugeFunc("datapaths", "Switches registered in the current snapshot.",
		func() int64 { return int64(ctl.DatapathCount()) }, labels...)
	r.RegisterGaugeFunc("flow_shards", "Flow-state shard count (fixed at construction).",
		func() int64 { return int64(ctl.Shards()) }, labels...)
	r.RegisterGaugeFunc("flows_cached", "Live (unexpired, current-epoch) response-cache entries.",
		func() int64 { return int64(ctl.CachedFlows()) }, labels...)
	r.RegisterGaugeFunc("decisions_pending", "Decisions in flight across all shards.",
		func() int64 {
			var n int64
			for _, s := range ctl.ShardStats() {
				n += int64(s.Pending)
			}
			return n
		}, labels...)
	r.RegisterGaugeFunc("waiters_parked", "Duplicate packet-ins parked on in-flight decisions.",
		func() int64 {
			var n int64
			for _, s := range ctl.ShardStats() {
				n += int64(s.Waiters)
			}
			return n
		}, labels...)

	r.RegisterGaugeFunc("megaflow_live", "Live wildcard entries in the megaflow cache.",
		func() int64 { live, _, _, _ := ctl.MegaflowStats(); return int64(live) }, labels...)
	r.RegisterGaugeFunc("revocation_index_live", "Fact dependencies resident in the revocation index.",
		func() int64 { live, _, _ := ctl.RevocationIndexStats(); return int64(live) }, labels...)
	r.RegisterCounterFunc("revocation_index_dropped", "Fact registrations dropped by the index's bounds.",
		func() int64 { _, _, dropped := ctl.RevocationIndexStats(); return dropped }, labels...)
	r.RegisterGaugeFunc("revocation_wide_live", "Megaflow-class registrations resident in the revocation index.",
		func() int64 { live, _, _ := ctl.WideStats(); return int64(live) }, labels...)
	r.RegisterCounterFunc("revocation_wide_registered", "Lifetime megaflow-class registrations in the revocation index.",
		func() int64 { _, registered, _ := ctl.WideStats(); return registered }, labels...)
	r.RegisterCounterFunc("revocation_wide_dropped", "Megaflow-class registrations dropped by the index's bounds.",
		func() int64 { _, _, dropped := ctl.WideStats(); return dropped }, labels...)
	r.RegisterGaugeFunc("rule_cache_entries", "Resident entries in the policy's embedded-rules memo.",
		func() int64 { entries, _ := ctl.PolicyRuleCacheStats(); return entries }, labels...)
	r.RegisterCounterFunc("rule_cache_evictions", "Lifetime evictions from the policy's embedded-rules memo.",
		func() int64 { _, evictions := ctl.PolicyRuleCacheStats(); return evictions }, labels...)

	r.RegisterCounterFunc("audit_records", "Audit entries ever recorded (ring sequence number).",
		ctl.Audit.Total, labels...)

	busyWorkers := func() int64 { busy, _ := core.InstallBacklog(); return busy }
	r.RegisterGaugeFunc("install_workers_busy", "Install fan-out workers currently applying flow-mods.",
		busyWorkers, labels...)
	r.RegisterGaugeFunc("install_workers", "Install fan-out worker pool size (0 until first multi-switch install).",
		func() int64 { _, workers := core.InstallBacklog(); return int64(workers) }, labels...)

	r.RegisterHistogram("setup_total", "End-to-end flow-setup latency (Figure 1: punt + max(queries) + eval + install).", ctl.Setup.Total, labels...)
	r.RegisterHistogram("setup_punt", "Switch-to-controller punt latency.", ctl.Setup.Punt, labels...)
	r.RegisterHistogram("setup_query_src", "ident++ round trip to the source daemon.", ctl.Setup.QuerySrc, labels...)
	r.RegisterHistogram("setup_query_dst", "ident++ round trip to the destination daemon.", ctl.Setup.QueryDst, labels...)
	r.RegisterHistogram("setup_eval", "PF+=2 policy evaluation latency.", ctl.Setup.Eval, labels...)
	r.RegisterHistogram("setup_install", "Flow-entry install latency along the path.", ctl.Setup.Install, labels...)
}

// RegisterControllerHealth wires the controller's readiness to real
// signals: switches registered (a controller with no datapaths enforces
// nothing) and the install fan-out not saturated. Liveness stays the HTTP
// baseline — a wedged process stops answering.
func RegisterControllerHealth(h *Health, ctl *core.Controller) {
	h.AddReadiness("datapaths", func() error {
		if ctl.DatapathCount() == 0 {
			return fmt.Errorf("%w: no datapaths registered", errNotReady)
		}
		return nil
	})
	h.AddReadiness("install-workers", func() error {
		busy, workers := core.InstallBacklog()
		if workers > 0 && busy >= int64(workers) {
			return fmt.Errorf("%w: install fan-out saturated (%d/%d busy)", errNotReady, busy, workers)
		}
		return nil
	})
}

// RegisterEngine exports the query engine's counters and gauges.
func RegisterEngine(r *Registry, eng *query.Engine, labels ...Label) {
	r.RegisterCounterSet(eng.Counters, EngineCounters, labels...)
	r.RegisterGauge("engine_inflight", "Queries between admission and delivery (coalesced waiters excluded).",
		&eng.InFlight, labels...)
	r.RegisterGaugeFunc("engine_hosts", "Hosts with per-host engine state (negative cache, breaker, RTT histogram).",
		func() int64 { return int64(len(eng.HostStats())) }, labels...)
}

// RegisterPool exports the TCP pool's counters. When the pool shares its
// Counter with the engine, register only one of the two sets.
func RegisterPool(r *Registry, pool *query.Pool, labels ...Label) {
	r.RegisterCounterSet(pool.Counters, PoolCounters, labels...)
	r.RegisterGaugeFunc("pool_creds_verified", "Sessions currently holding a verified, unexpired credential.",
		func() int64 { return int64(pool.VerifiedSessions()) }, labels...)
}

// RegisterPoolHealth wires readiness to pool connectivity: not ready while
// the pool has only ever failed to dial (it has proven it cannot reach any
// daemon). A pool that has not dialed yet — no traffic — is ready.
func RegisterPoolHealth(h *Health, pool *query.Pool) {
	h.AddReadiness("query-pool", func() error {
		dials := pool.Counters.Get("pool_dials")
		dialErrors := pool.Counters.Get("pool_dial_errors")
		if dials == 0 && dialErrors > 0 {
			return fmt.Errorf("%w: query pool has never reached a daemon (%d dial errors)", errNotReady, dialErrors)
		}
		return nil
	})
}

// RegisterDaemon exports the daemon's counters plus its memo and
// publication state.
func RegisterDaemon(r *Registry, d *daemon.Daemon, labels ...Label) {
	r.RegisterCounterSet(d.Counters, DaemonCounters, labels...)
	r.RegisterGaugeFunc("daemon_answered_entries", "Flows resident in the answered-facts memo.",
		func() int64 { entries, _ := d.AnsweredStats(); return entries }, labels...)
	r.RegisterCounterFunc("daemon_answered_evictions", "Lifetime evictions from the answered-facts memo.",
		func() int64 { _, evictions := d.AnsweredStats(); return evictions }, labels...)
	r.RegisterGaugeFunc("daemon_flowpair_entries", "Flows with application-supplied pairs resident.",
		func() int64 { entries, _ := d.FlowPairStats(); return entries }, labels...)
	r.RegisterCounterFunc("daemon_flowpair_evictions", "Lifetime evictions from the application flow-pair map.",
		func() int64 { _, evictions := d.FlowPairStats(); return evictions }, labels...)
	r.RegisterCounterFunc("daemon_update_serial", "Serial of the most recently published update.",
		func() int64 { return int64(d.UpdateSerial()) }, labels...)
	r.RegisterGaugeFunc("daemon_cred_expiry_timestamp_seconds", "Unix expiry of the daemon's loaded credential (0 when none).",
		d.CredentialExpiry, labels...)
}

// RegisterRouter exports the replica router's counters and ring state.
// The wrapped controller is registered separately via RegisterController.
func RegisterRouter(r *Registry, rt *cluster.Router, labels ...Label) {
	r.RegisterCounterSet(rt.Counters, ClusterCounters, labels...)
	r.RegisterGaugeFunc("cluster_members", "Replicas in the current ownership ring (1 = single-replica).",
		func() int64 { return int64(len(rt.Members())) }, labels...)
	r.RegisterGaugeFunc("cluster_config_epoch", "Applied replicated-config epoch (0 until the first cluster config write).",
		func() int64 { e, _ := rt.Epoch(); return int64(e) }, labels...)
}

// RegisterTrace exports the flight recorder's retention counters. Call it
// only when tracing is enabled (a nil recorder has no counters to export).
func RegisterTrace(r *Registry, rec *trace.Recorder, labels ...Label) {
	r.RegisterCounterSet(rec.Counters, TraceCounters, labels...)
}

// RegisterBuildInfo exports the identxx_build_info gauge: constant 1, with
// the binary's identity carried in labels (the node_exporter convention),
// so release rollouts are visible per instance in one scrape.
func RegisterBuildInfo(r *Registry, labels ...Label) {
	version, commit := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
			}
		}
	}
	labels = append([]Label{
		{Key: "version", Value: version},
		{Key: "goversion", Value: runtime.Version()},
		{Key: "commit", Value: commit},
	}, labels...)
	r.RegisterGaugeFunc("build_info", "Always 1; the version, goversion and commit labels identify the running build.",
		func() int64 { return 1 }, labels...)
}

// RegisterAuditSink exports the sink's emit/drop counters.
func RegisterAuditSink(r *Registry, s *AuditSink, labels ...Label) {
	r.RegisterCounterFunc("audit_sink_emitted", AuditSinkCounters["audit_sink_emitted"], s.Emitted, labels...)
	r.RegisterCounterFunc("audit_sink_dropped", AuditSinkCounters["audit_sink_dropped"], s.Dropped, labels...)
}
