package telemetry

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"io"

	"identxx/internal/cluster"
	"identxx/internal/daemon"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/query"
	"identxx/internal/trace"
)

// This file is the anti-drift mechanism behind docs/metrics.md: the doc's
// metric table must list exactly the names the full wired registry
// exports, and every counter literal incremented anywhere in non-test
// source must be declared in one of the wiring tables. Adding a counter
// without documenting it — or documenting one that no longer exists —
// fails CI.

type nullResolver struct{}

func (nullResolver) Resolve(host netaddr.IP) (string, bool) { return "", false }

// fullRegistry wires every component the way the binaries do.
func fullRegistry(t *testing.T) *Registry {
	t.Helper()
	ctl := newTestController(t)
	eng := query.NewEngine(query.Config{Lower: okTransport{}})
	t.Cleanup(func() { eng.Close() })
	pool := query.NewPool(query.PoolConfig{Resolver: nullResolver{}})
	t.Cleanup(func() { pool.Close() })
	d := daemon.New(hostinfo.New("drift", netaddr.MustParseIP("10.9.9.9"), netaddr.MAC(9)))
	sink := NewAuditSink(io.Discard, 1)
	t.Cleanup(sink.Close)

	rt := cluster.NewRouter(newTestController(t), cluster.Member{ID: "drift"}, cluster.Options{})

	r := NewRegistry()
	RegisterController(r, ctl)
	RegisterRouter(r, rt)
	RegisterEngine(r, eng)
	RegisterPool(r, pool)
	RegisterDaemon(r, d)
	RegisterAuditSink(r, sink)
	RegisterTrace(r, trace.New(trace.Config{SampleEvery: 1}))
	RegisterBuildInfo(r)
	return r
}

var docMetricRe = regexp.MustCompile("`(identxx_[a-zA-Z0-9_:]+)`")

// docNames extracts the metric names documented in docs/metrics.md's
// tables (rows whose first cell is a backticked identxx_* name).
func docNames(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "metrics.md"))
	if err != nil {
		t.Fatalf("docs/metrics.md unreadable (every exported metric must be documented there): %v", err)
	}
	names := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "| `identxx_") {
			continue
		}
		if m := docMetricRe.FindStringSubmatch(line); m != nil {
			names[m[1]] = true
		}
	}
	return names
}

func TestMetricsDocMatchesRegistry(t *testing.T) {
	registry := fullRegistry(t).Names()
	doc := docNames(t)

	var missing, stale []string
	for _, n := range registry {
		if !doc[n] {
			missing = append(missing, n)
		}
	}
	seen := make(map[string]bool, len(registry))
	for _, n := range registry {
		seen[n] = true
	}
	for n := range doc {
		if !seen[n] {
			stale = append(stale, n)
		}
	}
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("exported metrics missing from docs/metrics.md (add a table row for each):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(stale) > 0 {
		t.Errorf("docs/metrics.md documents metrics the registry no longer exports (delete the rows):\n  %s",
			strings.Join(stale, "\n  "))
	}
}

var counterLiteralRe = regexp.MustCompile(`\.(?:Add|Cell)\("([a-z][a-z0-9_]*)"`)

// sourceCounterNames scans non-test Go source under internal/ and cmd/
// for counter-name literals.
func sourceCounterNames(t *testing.T) map[string][]string {
	t.Helper()
	found := make(map[string][]string) // name -> files
	for _, root := range []string{filepath.Join("..", ".."), filepath.Join("..", "..", "cmd")} {
		root := root
		err := filepath.Walk(filepath.Join(root), func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				base := info.Name()
				if base == ".git" || base == "testdata" || base == "docs" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range counterLiteralRe.FindAllStringSubmatch(string(src), -1) {
				found[m[1]] = append(found[m[1]], path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		break // first root already covers everything
	}
	return found
}

func TestSourceCountersAreDeclared(t *testing.T) {
	declared := make(map[string]bool)
	for _, table := range []map[string]string{
		ControllerCounters, ClusterCounters, EngineCounters, PoolCounters, DaemonCounters, AuditSinkCounters, TraceCounters,
	} {
		for name := range table {
			declared[name] = true
		}
	}
	found := sourceCounterNames(t)
	var undeclared []string
	for name, files := range found {
		if !declared[name] {
			undeclared = append(undeclared, name+" ("+files[0]+")")
		}
	}
	sort.Strings(undeclared)
	if len(undeclared) > 0 {
		t.Errorf("counters incremented in source but absent from the telemetry wiring tables (declare them in wiring.go and document them in docs/metrics.md):\n  %s",
			strings.Join(undeclared, "\n  "))
	}

	// The reverse: every declared counter-set name must still be
	// incremented somewhere (audit_sink_* are closures, not Counter
	// cells, so they are exempt).
	var stale []string
	for _, table := range []map[string]string{
		ControllerCounters, ClusterCounters, EngineCounters, PoolCounters, DaemonCounters, TraceCounters,
	} {
		for name := range table {
			if len(found[name]) == 0 {
				stale = append(stale, name)
			}
		}
	}
	sort.Strings(stale)
	if len(stale) > 0 {
		t.Errorf("wiring tables declare counters no source increments (delete the declarations and doc rows):\n  %s",
			strings.Join(stale, "\n  "))
	}
}

var registerKindRe = regexp.MustCompile(`Register(GaugeFunc|Gauge|Histogram)\("([a-z][a-z0-9_]*)"`)

// docTypes extracts (full metric name -> documented type cell) from
// docs/metrics.md's table rows.
func docTypes(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "metrics.md"))
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]string)
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "| `identxx_") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 3 {
			continue
		}
		m := docMetricRe.FindStringSubmatch(cells[1])
		if m == nil {
			continue
		}
		types[m[1]] = strings.TrimSpace(cells[2])
	}
	return types
}

// TestGaugesAndHistogramsAreDocumented pins gauge and histogram names the
// same way counters are pinned: every Register{Gauge,GaugeFunc,Histogram}
// literal in non-test source must have a docs/metrics.md row whose type
// cell matches, and every row the doc types as gauge or histogram must
// correspond to a registration literal.
func TestGaugesAndHistogramsAreDocumented(t *testing.T) {
	wantType := make(map[string]string) // full exported name -> gauge|histogram
	for _, root := range []string{filepath.Join("..", "..")} {
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				base := info.Name()
				if base == ".git" || base == "testdata" || base == "docs" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range registerKindRe.FindAllStringSubmatch(string(src), -1) {
				switch m[1] {
				case "Gauge", "GaugeFunc":
					wantType["identxx_"+m[2]] = "gauge"
				case "Histogram":
					wantType["identxx_"+m[2]+"_seconds"] = "histogram"
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	doc := docTypes(t)

	var missing, mistyped []string
	for name, kind := range wantType {
		switch got, ok := doc[name], doc[name] != ""; {
		case !ok:
			missing = append(missing, name+" ("+kind+")")
		case got != kind:
			mistyped = append(mistyped, name+": documented as "+got+", registered as "+kind)
		}
	}
	sort.Strings(missing)
	sort.Strings(mistyped)
	if len(missing) > 0 {
		t.Errorf("registered gauges/histograms missing from docs/metrics.md (add a table row for each):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(mistyped) > 0 {
		t.Errorf("docs/metrics.md type cells disagree with the registrations:\n  %s",
			strings.Join(mistyped, "\n  "))
	}

	// The reverse: every doc row typed gauge or histogram must come from a
	// registration literal somewhere in source.
	var stale []string
	for name, kind := range doc {
		if kind != "gauge" && kind != "histogram" {
			continue
		}
		if wantType[name] == "" {
			stale = append(stale, name+" ("+kind+")")
		}
	}
	sort.Strings(stale)
	if len(stale) > 0 {
		t.Errorf("docs/metrics.md documents gauges/histograms nothing registers (delete the rows):\n  %s",
			strings.Join(stale, "\n  "))
	}
}
