package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHealthHandlers(t *testing.T) {
	s := NewServer()
	s.Registry.RegisterGaugeFunc("x", "x.", func() int64 { return 1 })
	ok := true
	s.Health.AddReadiness("gate", func() error {
		if !ok {
			return fmt.Errorf("gate closed")
		}
		return nil
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr.String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ok gate") {
		t.Errorf("readyz = %d %q", code, body)
	}
	ok = false
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "fail gate: gate closed") {
		t.Errorf("readyz after failure = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(body, "identxx_x 1") {
		t.Errorf("metrics body missing gauge:\n%s", body)
	}
	parseExposition(t, body)
}
