package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
)

func testEntry(rule string, action pf.Action) core.AuditEntry {
	return core.AuditEntry{
		Time: time.Unix(1700000000, 123456789),
		Flow: flow.Five{
			SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
			Proto: netaddr.ProtoTCP, SrcPort: 1234, DstPort: 80,
		},
		Action:  action,
		Rule:    rule,
		Matched: true,
	}
}

// TestAuditSinkJSON drives entries through a real AuditLog tap and checks
// every emitted line decodes with the documented fields.
func TestAuditSinkJSON(t *testing.T) {
	var buf syncBuffer
	sink := NewAuditSink(&buf, 16)
	log := core.NewAuditLog(64)
	log.SetStream(sink.Record)

	log.Record(testEntry("pass skype", pf.Pass))
	log.Record(testEntry("block all", pf.Block))
	rev := testEntry("fact-changed name", pf.Block)
	rev.Revoked = true
	log.Record(rev)

	log.SetStream(nil)
	sink.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d lines, want 3:\n%s", len(lines), buf.String())
	}
	type rec struct {
		Seq     int64  `json:"seq"`
		Time    string `json:"time"`
		Flow    string `json:"flow"`
		Action  string `json:"action"`
		Rule    string `json:"rule"`
		Matched bool   `json:"matched"`
		Revoked bool   `json:"revoked"`
	}
	var decoded []rec
	for _, ln := range lines {
		var r rec
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		decoded = append(decoded, r)
	}
	if decoded[0].Seq != 1 || decoded[1].Seq != 2 || decoded[2].Seq != 3 {
		t.Errorf("seqs = %d %d %d", decoded[0].Seq, decoded[1].Seq, decoded[2].Seq)
	}
	if decoded[0].Rule != "pass skype" || decoded[0].Action != "pass" {
		t.Errorf("first record = %+v", decoded[0])
	}
	if !decoded[2].Revoked {
		t.Errorf("revocation record not marked: %+v", decoded[2])
	}
	if !strings.Contains(decoded[0].Flow, "10.0.0.1") {
		t.Errorf("flow = %q", decoded[0].Flow)
	}
	if _, err := time.Parse(time.RFC3339Nano, decoded[0].Time); err != nil {
		t.Errorf("time %q: %v", decoded[0].Time, err)
	}
	if sink.Emitted() != 3 || sink.Dropped() != 0 {
		t.Errorf("emitted=%d dropped=%d", sink.Emitted(), sink.Dropped())
	}
}

// slowWriter simulates a consumer that cannot keep up (a wedged pipe or
// saturated disk): every write stalls.
type slowWriter struct {
	mu    sync.Mutex
	delay time.Duration
	n     int
}

func (w *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	w.mu.Lock()
	w.n += len(p)
	w.mu.Unlock()
	return len(p), nil
}

// TestAuditSinkStormNeverBlocks is the revocation-storm acceptance test:
// many goroutines hammer Record through the AuditLog tap while the
// consumer is pathologically slow. The storm must complete in bounded
// time (Record never blocks), entries must be dropped and counted, and
// accounting must add up.
func TestAuditSinkStormNeverBlocks(t *testing.T) {
	w := &slowWriter{delay: 5 * time.Millisecond}
	sink := NewAuditSink(w, 8)
	log := core.NewAuditLog(128)
	log.SetStream(sink.Record)

	const goroutines = 8
	const perG = 500
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			e := testEntry("revocation storm", pf.Block)
			e.Revoked = true
			for i := 0; i < perG; i++ {
				log.Record(e)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// 4000 records against a writer that needs 5ms each would take 20s
	// if Record ever waited on it; a non-blocking tap finishes the storm
	// in milliseconds.
	if elapsed > 2*time.Second {
		t.Fatalf("storm took %v; Record is blocking on the sink", elapsed)
	}
	log.SetStream(nil)
	sink.Close()

	total := int64(goroutines * perG)
	if log.Total() != total {
		t.Fatalf("audit ring recorded %d, want %d", log.Total(), total)
	}
	if sink.Dropped() == 0 {
		t.Error("expected drops under a storm with a slow consumer")
	}
	if got := sink.Emitted() + sink.Dropped(); got != total {
		t.Errorf("emitted(%d) + dropped(%d) = %d, want %d",
			sink.Emitted(), sink.Dropped(), got, total)
	}
}

// TestAuditSinkCloseDrains checks buffered entries are flushed by Close.
func TestAuditSinkCloseDrains(t *testing.T) {
	var buf syncBuffer
	sink := NewAuditSink(&buf, 256)
	for i := 0; i < 100; i++ {
		sink.Record(testEntry("r", pf.Pass))
	}
	sink.Close()
	if n := strings.Count(buf.String(), "\n"); n != int(sink.Emitted()) {
		t.Errorf("lines=%d emitted=%d", n, sink.Emitted())
	}
	if sink.Emitted()+sink.Dropped() != 100 {
		t.Errorf("emitted=%d dropped=%d, want sum 100", sink.Emitted(), sink.Dropped())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the sink writes from its
// goroutine while tests read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var _ io.Writer = (*syncBuffer)(nil)
