package telemetry

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// Probe is one named health check. Check returns nil when healthy; the
// error text is surfaced verbatim in the endpoint body.
type Probe struct {
	Name  string
	Check func() error
}

// Health is the probe set behind /healthz (liveness) and /readyz
// (readiness). Liveness means "the process is making progress and should
// not be restarted"; readiness means "the process can do useful work right
// now and should receive traffic". A controller that is up but has no
// policy yet is live but not ready.
type Health struct {
	mu    sync.Mutex
	live  []Probe
	ready []Probe
}

// NewHealth creates an empty probe set. With no probes registered both
// endpoints report healthy — answering the HTTP request at all is the
// baseline liveness signal.
func NewHealth() *Health {
	return &Health{}
}

// AddLiveness registers a liveness probe.
func (h *Health) AddLiveness(name string, check func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live = append(h.live, Probe{Name: name, Check: check})
}

// AddReadiness registers a readiness probe.
func (h *Health) AddReadiness(name string, check func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ready = append(h.ready, Probe{Name: name, Check: check})
}

func (h *Health) snapshot(ready bool) []Probe {
	h.mu.Lock()
	defer h.mu.Unlock()
	src := h.live
	if ready {
		src = h.ready
	}
	out := make([]Probe, len(src))
	copy(out, src)
	return out
}

// run executes the probes and writes a plain-text report: one
// "ok <name>" / "fail <name>: <err>" line per probe, status 200 when all
// pass and 503 otherwise.
func (h *Health) run(w http.ResponseWriter, probes []Probe) {
	type result struct {
		name string
		err  error
	}
	results := make([]result, len(probes))
	failed := false
	for i, p := range probes {
		results[i] = result{name: p.Name, err: p.Check()}
		if results[i].err != nil {
			failed = true
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if failed {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	for _, res := range results {
		if res.err != nil {
			fmt.Fprintf(w, "fail %s: %s\n", res.name, res.err)
		} else {
			fmt.Fprintf(w, "ok %s\n", res.name)
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(w, "ok")
	}
}

// LiveHandler serves /healthz.
func (h *Health) LiveHandler(w http.ResponseWriter, _ *http.Request) {
	h.run(w, h.snapshot(false))
}

// ReadyHandler serves /readyz.
func (h *Health) ReadyHandler(w http.ResponseWriter, _ *http.Request) {
	h.run(w, h.snapshot(true))
}

// errNotReady is the base error for the canned probes in wiring.go.
var errNotReady = errors.New("not ready")
