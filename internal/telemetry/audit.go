package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/core"
)

// DefaultAuditDepth is the sink's channel depth when NewAuditSink gets 0.
const DefaultAuditDepth = 1024

// AuditSink streams audit entries as JSON lines to a writer, decoupled
// from the decision path by a bounded channel: Record is a non-blocking
// send, and when the consumer (disk, pipe, log shipper) cannot keep up the
// sink drops entries and counts them rather than ever stalling
// finishDecision. The striped audit ring remains the authoritative
// bounded history; the sink is a best-effort live feed.
//
// Attach it with core.AuditLog.SetStream(sink.Record); detach (SetStream
// nil) before Close.
type AuditSink struct {
	ch      chan core.AuditEntry
	done    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	emitted atomic.Int64
	dropped atomic.Int64
}

// auditRecord is the wire shape of one JSON line. Field names are stable:
// they are part of the operational surface (docs/operations.md).
type auditRecord struct {
	Seq       int64    `json:"seq"`
	Time      string   `json:"time"`
	Flow      string   `json:"flow"`
	Action    string   `json:"action"`
	Rule      string   `json:"rule"`
	Matched   bool     `json:"matched"`
	KeepState bool     `json:"keep_state,omitempty"`
	Revoked   bool     `json:"revoked,omitempty"`
	SetupUs   int64    `json:"setup_us,omitempty"`
	Diags     []string `json:"diags,omitempty"`
}

// NewAuditSink starts a sink writing to w with the given channel depth
// (DefaultAuditDepth when <= 0). The writer goroutine owns w exclusively
// until Close returns.
func NewAuditSink(w io.Writer, depth int) *AuditSink {
	if depth <= 0 {
		depth = DefaultAuditDepth
	}
	s := &AuditSink{
		ch:   make(chan core.AuditEntry, depth),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop(w)
	return s
}

// Record enqueues an entry without ever blocking: when the channel is
// full the entry is dropped and counted. Safe to pass directly to
// core.AuditLog.SetStream.
func (s *AuditSink) Record(e core.AuditEntry) {
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
	}
}

// Emitted returns how many entries were written out.
func (s *AuditSink) Emitted() int64 { return s.emitted.Load() }

// Dropped returns how many entries were discarded because the channel was
// full — the backpressure signal (identxx_audit_sink_dropped_total).
func (s *AuditSink) Dropped() int64 { return s.dropped.Load() }

// Close drains whatever is already buffered, flushes, and stops the
// writer. Detach the sink from the audit log first; entries Recorded
// concurrently with Close may be silently discarded, never deadlocked on.
func (s *AuditSink) Close() {
	s.closing.Do(func() { close(s.done) })
	s.wg.Wait()
}

func (s *AuditSink) loop(w io.Writer) {
	defer s.wg.Done()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	write := func(e core.AuditEntry) {
		rec := auditRecord{
			Seq:       e.Seq(),
			Time:      e.Time.UTC().Format(time.RFC3339Nano),
			Flow:      e.Flow.String(),
			Action:    e.Action.String(),
			Rule:      e.Rule,
			Matched:   e.Matched,
			KeepState: e.KeepState,
			Revoked:   e.Revoked,
			SetupUs:   e.Setup.Total().Microseconds(),
			Diags:     e.Diags,
		}
		// Encode cannot fail on this shape; a write error means the
		// destination is gone, and the next entries will fail the same way
		// — nothing useful to do but keep counting emissions attempted.
		_ = enc.Encode(rec)
		s.emitted.Add(1)
	}
	for {
		select {
		case e := <-s.ch:
			write(e)
		default:
			// Channel momentarily empty: push buffered lines out so a tail
			// -f reader sees entries promptly, then block for more work.
			bw.Flush()
			select {
			case e := <-s.ch:
				write(e)
			case <-s.done:
				for {
					select {
					case e := <-s.ch:
						write(e)
					default:
						bw.Flush()
						return
					}
				}
			}
		}
	}
}
