package hostinfo

import (
	"sync/atomic"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func TestChangeListenerFiresOnMutations(t *testing.T) {
	h := newTestHost()
	var fired atomic.Int64
	var lastScope atomic.Value
	h.AddChangeListener(func(ch Change) {
		fired.Add(1)
		lastScope.Store(ch)
	})

	alice := h.AddUser("alice", "users") // no notification: no flow can resolve to a fresh account
	p := h.Exec(alice, skypeExe)         // likewise
	base := fired.Load()

	f, err := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060})
	if err != nil {
		t.Fatal(err)
	}
	if fired.Load() != base+1 {
		t.Errorf("Connect: fired = %d, want %d", fired.Load(), base+1)
	}
	if ch := lastScope.Load().(Change); ch.All || len(ch.Flows) != 1 || ch.Flows[0] != f {
		t.Errorf("Connect scope = %+v, want exactly the new flow", ch)
	}
	h.Close(f)
	if fired.Load() != base+2 {
		t.Errorf("Close: fired = %d, want %d", fired.Load(), base+2)
	}
	h.Kill(p.PID)
	if fired.Load() != base+3 {
		t.Errorf("Kill: fired = %d, want %d", fired.Load(), base+3)
	}
	h.InstallPatch("MS08-067")
	if fired.Load() != base+4 {
		t.Errorf("InstallPatch: fired = %d, want %d", fired.Load(), base+4)
	}
	if ch := lastScope.Load().(Change); !ch.All {
		t.Errorf("InstallPatch scope = %+v, want All", ch)
	}
	h.InstallPatch("MS08-067") // idempotent re-install: no change, no event
	if fired.Load() != base+4 {
		t.Errorf("repeat InstallPatch fired a change event")
	}
}

func TestLogoutKillsUserProcesses(t *testing.T) {
	h := newTestHost()
	alice := h.AddUser("alice", "users")
	bob := h.AddUser("bob", "users")
	pa := h.Exec(alice, skypeExe)
	pb := h.Exec(bob, skypeExe)
	fa, err := h.Connect(pa.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := h.Connect(pb.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060})
	if err != nil {
		t.Fatal(err)
	}

	h.Logout("alice")
	if _, ok := h.OwnerOf(fa, RoleAuto); ok {
		t.Error("alice's flow still resolves after logout")
	}
	if owner, ok := h.OwnerOf(fb, RoleAuto); !ok || owner.User.Name != "bob" {
		t.Error("bob's flow lost in alice's logout")
	}
	if _, ok := h.UserByName("alice"); !ok {
		t.Error("logout removed the account; it should only end the session")
	}
}

func TestSetUserGroupsCopyOnWrite(t *testing.T) {
	h := newTestHost()
	alice := h.AddUser("alice", "staff")
	p := h.Exec(alice, skypeExe)
	f, err := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060})
	if err != nil {
		t.Fatal(err)
	}
	before, ok := h.OwnerOf(f, RoleAuto)
	if !ok {
		t.Fatal("flow did not resolve")
	}

	if !h.SetUserGroups("alice", "contractors") {
		t.Fatal("SetUserGroups failed")
	}
	if h.SetUserGroups("nobody", "x") {
		t.Error("SetUserGroups invented an account")
	}

	after, ok := h.OwnerOf(f, RoleAuto)
	if !ok {
		t.Fatal("flow stopped resolving after group change")
	}
	if !after.User.InGroup("contractors") || after.User.InGroup("staff") {
		t.Errorf("new groups = %v", after.User.Groups)
	}
	// The pre-change view is immutable: copy-on-write, not mutation.
	if !before.User.InGroup("staff") {
		t.Errorf("old process view mutated: %v", before.User.Groups)
	}
	if u, _ := h.UserByName("alice"); u.UID != after.User.UID {
		t.Errorf("UID changed across group change")
	}
}
