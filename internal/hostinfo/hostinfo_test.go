package hostinfo

import (
	"errors"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func newTestHost() *Host {
	return New("pc1", netaddr.MustParseIP("10.0.0.1"), netaddr.MustParseMAC("02:00:00:00:00:01"))
}

var skypeExe = Executable{Path: "/usr/bin/skype", Name: "skype", Version: "210", Vendor: "skype.com", Type: "voip"}

func TestExecAndOwnerOfSource(t *testing.T) {
	h := newTestHost()
	alice := h.AddUser("alice", "users", "research")
	p := h.Exec(alice, skypeExe)

	f := flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060}
	f, err := h.Connect(p.PID, f)
	if err != nil {
		t.Fatal(err)
	}
	if f.SrcIP != h.IP || f.SrcPort == 0 {
		t.Fatalf("Connect did not fill source endpoint: %v", f)
	}
	owner, ok := h.OwnerOf(f, RoleAuto)
	if !ok || owner.PID != p.PID || owner.User.Name != "alice" {
		t.Fatalf("OwnerOf = %+v, %v", owner, ok)
	}
}

func TestOwnerOfDestinationListener(t *testing.T) {
	h := newTestHost()
	smtp := h.AddSystemUser("smtp")
	p := h.Exec(smtp, Executable{Path: "/usr/sbin/sendmail", Name: "sendmail", Version: "8"})
	if err := h.Listen(p.PID, netaddr.ProtoTCP, 25); err != nil {
		t.Fatal(err)
	}
	// A flow the host has not accepted yet still resolves via the listener:
	// "a destination that has yet to accept a connection" (§3.5).
	f := flow.Five{
		SrcIP: netaddr.MustParseIP("10.0.0.9"), DstIP: h.IP,
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 25,
	}
	owner, ok := h.OwnerOf(f, RoleAuto)
	if !ok || owner.User.Name != "smtp" {
		t.Fatalf("listener lookup failed: %+v %v", owner, ok)
	}
	// After Accept, the exact connection resolves too.
	if err := h.Accept(f); err != nil {
		t.Fatal(err)
	}
	owner2, ok := h.OwnerOf(f, RoleDestination)
	if !ok || owner2.PID != p.PID {
		t.Fatal("accepted flow lookup failed")
	}
}

func TestOwnerOfUnknownFlow(t *testing.T) {
	h := newTestHost()
	f := flow.Five{SrcIP: h.IP, DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	if _, ok := h.OwnerOf(f, RoleAuto); ok {
		t.Error("unknown flow should not resolve")
	}
	// Flow not involving this host at all.
	g := flow.Five{SrcIP: netaddr.MustParseIP("9.9.9.9"), DstIP: netaddr.MustParseIP("8.8.8.8")}
	if _, ok := h.OwnerOf(g, RoleAuto); ok {
		t.Error("foreign flow should not resolve")
	}
}

func TestPrivilegedPortRequiresSystemUser(t *testing.T) {
	h := newTestHost()
	alice := h.AddUser("alice", "users")
	pa := h.Exec(alice, Executable{Path: "/home/alice/srv", Name: "srv"})
	if err := h.Listen(pa.PID, netaddr.ProtoTCP, 80); err == nil {
		t.Error("unprivileged user bound port 80")
	}
	root := h.AddSystemUser("root", "wheel")
	pr := h.Exec(root, Executable{Path: "/usr/sbin/httpd", Name: "httpd"})
	if err := h.Listen(pr.PID, netaddr.ProtoTCP, 80); err != nil {
		t.Errorf("system user failed to bind port 80: %v", err)
	}
	if err := h.Listen(pa.PID, netaddr.ProtoTCP, 8080); err != nil {
		t.Errorf("unprivileged high port bind failed: %v", err)
	}
}

func TestListenConflict(t *testing.T) {
	h := newTestHost()
	u := h.AddUser("u")
	p1 := h.Exec(u, Executable{Path: "/bin/a", Name: "a"})
	p2 := h.Exec(u, Executable{Path: "/bin/b", Name: "b"})
	if err := h.Listen(p1.PID, netaddr.ProtoTCP, 8080); err != nil {
		t.Fatal(err)
	}
	if err := h.Listen(p2.PID, netaddr.ProtoTCP, 8080); !errors.Is(err, ErrPortInUse) {
		t.Errorf("conflict err = %v, want ErrPortInUse", err)
	}
	// UDP on the same port number is a distinct namespace.
	if err := h.Listen(p2.PID, netaddr.ProtoUDP, 8080); err != nil {
		t.Errorf("udp bind on tcp-used port failed: %v", err)
	}
}

func TestKillReleasesResources(t *testing.T) {
	h := newTestHost()
	u := h.AddUser("u")
	p := h.Exec(u, Executable{Path: "/bin/a", Name: "a"})
	if err := h.Listen(p.PID, netaddr.ProtoTCP, 9000); err != nil {
		t.Fatal(err)
	}
	f, err := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 80})
	if err != nil {
		t.Fatal(err)
	}
	h.Kill(p.PID)
	if _, ok := h.OwnerOf(f, RoleSource); ok {
		t.Error("killed process still owns flow")
	}
	p2 := h.Exec(u, Executable{Path: "/bin/b", Name: "b"})
	if err := h.Listen(p2.PID, netaddr.ProtoTCP, 9000); err != nil {
		t.Errorf("port not released after kill: %v", err)
	}
}

func TestExecutableHashChangesWithVersion(t *testing.T) {
	v1 := Executable{Path: "/usr/bin/skype", Version: "200"}
	v2 := Executable{Path: "/usr/bin/skype", Version: "210"}
	if v1.Hash() == v2.Hash() {
		t.Error("hash should change across versions")
	}
	if v1.Hash() != v1.Hash() {
		t.Error("hash should be deterministic")
	}
	if len(v1.Hash()) != 32 {
		t.Errorf("hash length = %d", len(v1.Hash()))
	}
}

func TestPatches(t *testing.T) {
	h := newTestHost()
	h.InstallPatch("MS08-067")
	h.InstallPatch("MS08-001")
	h.InstallPatch("MS08-067") // duplicate
	if got := h.Patches(); got != "MS08-001 MS08-067" {
		t.Errorf("patches = %q", got)
	}
}

func TestUserGroups(t *testing.T) {
	h := newTestHost()
	u := h.AddUser("alice", "users", "research")
	if !u.InGroup("research") || u.InGroup("wheel") {
		t.Error("group membership wrong")
	}
	got, ok := h.UserByName("alice")
	if !ok || got != u {
		t.Error("UserByName failed")
	}
	if _, ok := h.UserByName("bob"); ok {
		t.Error("nonexistent user resolved")
	}
}

func TestUIDAllocation(t *testing.T) {
	h := newTestHost()
	sys := h.AddSystemUser("daemon")
	usr := h.AddUser("alice")
	if sys.UID >= 1000 {
		t.Errorf("system UID = %d, want < 1000", sys.UID)
	}
	if usr.UID < 1000 {
		t.Errorf("user UID = %d, want >= 1000", usr.UID)
	}
}

func TestConnectExplicitSourcePort(t *testing.T) {
	h := newTestHost()
	u := h.AddUser("u")
	p := h.Exec(u, Executable{Path: "/bin/a", Name: "a"})
	f, err := h.Connect(p.PID, flow.Five{
		DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP,
		SrcPort: 12345, DstPort: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.SrcPort != 12345 {
		t.Errorf("explicit source port not preserved: %v", f)
	}
}

func TestConnectUnknownPID(t *testing.T) {
	h := newTestHost()
	if _, err := h.Connect(9999, flow.Five{}); err == nil {
		t.Error("Connect with unknown pid should fail")
	}
	if err := h.Listen(9999, netaddr.ProtoTCP, 8080); err == nil {
		t.Error("Listen with unknown pid should fail")
	}
}

func TestAcceptWithoutListener(t *testing.T) {
	h := newTestHost()
	f := flow.Five{SrcIP: netaddr.MustParseIP("1.1.1.1"), DstIP: h.IP, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	if err := h.Accept(f); err == nil {
		t.Error("Accept without listener should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	h := newTestHost()
	u := h.AddUser("u")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			p := h.Exec(u, Executable{Path: "/bin/x", Name: "x"})
			f, _ := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 80})
			h.OwnerOf(f, RoleAuto)
			h.Kill(p.PID)
		}
	}()
	for i := 0; i < 200; i++ {
		h.AllocPort()
		h.Patches()
		h.Snapshot()
	}
	<-done
}

func BenchmarkOwnerOf(b *testing.B) {
	h := newTestHost()
	u := h.AddUser("alice", "users")
	p := h.Exec(u, skypeExe)
	f, err := h.Connect(p.PID, flow.Five{DstIP: netaddr.MustParseIP("10.0.0.2"), Proto: netaddr.ProtoTCP, DstPort: 5060})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := h.OwnerOf(f, RoleAuto); !ok {
			b.Fatal("miss")
		}
	}
}
