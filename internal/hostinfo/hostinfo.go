// Package hostinfo simulates the end-host operating system state the
// ident++ daemon reads: users and their groups, running processes and the
// executables behind them, listening sockets, and active connections. The
// paper's daemon "uses the 5-tuple in the query packet to find the process
// ID and user ID associated with the flow using techniques similar to lsof"
// (§3.5); OwnerOf is that lookup.
//
// This is the substitution for real enterprise hosts: the observable
// surface (what an lsof walk plus /etc state would yield) is preserved, and
// tests can construct any configuration of it, including adversarial ones.
package hostinfo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// User is an account on a host.
type User struct {
	Name   string
	UID    int
	Groups []string
}

// InGroup reports whether the user belongs to the named group.
func (u *User) InGroup(g string) bool {
	for _, x := range u.Groups {
		if x == g {
			return true
		}
	}
	return false
}

// Executable describes an on-disk program image. Hash stands in for the
// "hash of the executable" key the paper ships to controllers.
type Executable struct {
	Path    string
	Name    string
	Version string
	Vendor  string
	Type    string
}

// Hash returns a deterministic content hash for the executable; in the
// simulation the image content is a function of path+version+vendor, so
// upgrading an executable changes its hash as it would on a real disk.
func (e Executable) Hash() string {
	h := sha256.Sum256([]byte(e.Path + "\x00" + e.Version + "\x00" + e.Vendor))
	return hex.EncodeToString(h[:16])
}

// Process is a running instance of an executable owned by a user.
type Process struct {
	PID  int
	User *User
	Exe  Executable
}

// ErrPortInUse is returned by Listen for an already-bound port.
var ErrPortInUse = fmt.Errorf("hostinfo: port in use")

type sockKey struct {
	proto netaddr.Proto
	port  netaddr.Port
}

// Host is one end-host's OS view. All methods are safe for concurrent use.
type Host struct {
	Name string
	IP   netaddr.IP
	MAC  netaddr.MAC

	mu        sync.RWMutex
	users     map[string]*User
	procs     map[int]*Process
	listeners map[sockKey]int   // bound port -> pid
	conns     map[flow.Five]int // active outbound/accepted flows -> pid
	patches   []string          // installed OS patches (Figure 8)
	nextPID   int
	nextUID   int
	nextPort  netaddr.Port
}

// New creates a host with the given name and addresses.
func New(name string, ip netaddr.IP, mac netaddr.MAC) *Host {
	return &Host{
		Name:      name,
		IP:        ip,
		MAC:       mac,
		users:     make(map[string]*User),
		procs:     make(map[int]*Process),
		listeners: make(map[sockKey]int),
		conns:     make(map[flow.Five]int),
		nextPID:   100,
		nextUID:   1000,
		nextPort:  32768,
	}
}

// AddUser creates an account. The first group, if any, is the primary group.
func (h *Host) AddUser(name string, groups ...string) *User {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := &User{Name: name, UID: h.nextUID, Groups: groups}
	h.nextUID++
	h.users[name] = u
	return u
}

// AddSystemUser creates a privileged account with UID below 1000 —
// the paper's "it is more difficult to gain access as a super-user" hosts
// distinguish these.
func (h *Host) AddSystemUser(name string, groups ...string) *User {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := &User{Name: name, UID: len(h.users), Groups: groups}
	h.users[name] = u
	return u
}

// UserByName returns a user account.
func (h *Host) UserByName(name string) (*User, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	u, ok := h.users[name]
	return u, ok
}

// Exec starts a process running exe as user.
func (h *Host) Exec(user *User, exe Executable) *Process {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := &Process{PID: h.nextPID, User: user, Exe: exe}
	h.nextPID++
	h.procs[p.PID] = p
	return p
}

// Kill terminates a process, releasing its sockets and connections.
func (h *Host) Kill(pid int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.procs, pid)
	for k, owner := range h.listeners {
		if owner == pid {
			delete(h.listeners, k)
		}
	}
	for k, owner := range h.conns {
		if owner == pid {
			delete(h.conns, k)
		}
	}
}

// Listen binds a process to a local port. Binding below 1024 requires a
// UID < 1000, mirroring the superuser-endorsement convention §5.4 discusses.
func (h *Host) Listen(pid int, proto netaddr.Proto, port netaddr.Port) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.procs[pid]
	if !ok {
		return fmt.Errorf("hostinfo: no such process %d", pid)
	}
	if port < 1024 && p.User.UID >= 1000 {
		return fmt.Errorf("hostinfo: pid %d (uid %d) may not bind privileged port %d",
			pid, p.User.UID, port)
	}
	k := sockKey{proto, port}
	if _, busy := h.listeners[k]; busy {
		return fmt.Errorf("%w: %s/%d", ErrPortInUse, proto, port)
	}
	h.listeners[k] = pid
	return nil
}

// Connect registers an outbound flow owned by a process and returns the
// flow with an allocated ephemeral source port. The supplied five-tuple's
// SrcPort is used when non-zero.
func (h *Host) Connect(pid int, f flow.Five) (flow.Five, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.procs[pid]; !ok {
		return f, fmt.Errorf("hostinfo: no such process %d", pid)
	}
	if f.SrcPort == 0 {
		f.SrcPort = h.allocPortLocked()
	}
	f.SrcIP = h.IP
	h.conns[f] = pid
	return f, nil
}

// Accept registers an inbound flow as owned by the listener's process,
// modelling a completed accept().
func (h *Host) Accept(f flow.Five) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	pid, ok := h.listeners[sockKey{f.Proto, f.DstPort}]
	if !ok {
		return fmt.Errorf("hostinfo: no listener on %s/%d", f.Proto, f.DstPort)
	}
	h.conns[f] = pid
	return nil
}

// Close removes a registered flow.
func (h *Host) Close(f flow.Five) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, f)
}

func (h *Host) allocPortLocked() netaddr.Port {
	for {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 32768
		}
		if _, busy := h.listeners[sockKey{netaddr.ProtoTCP, p}]; !busy {
			return p
		}
	}
}

// AllocPort returns a fresh ephemeral port.
func (h *Host) AllocPort() netaddr.Port {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocPortLocked()
}

// Role distinguishes which end of a flow this host is when resolving
// ownership.
type Role int

// Roles for OwnerOf.
const (
	// RoleAuto infers the role from the flow's addresses.
	RoleAuto Role = iota
	RoleSource
	RoleDestination
)

// OwnerOf resolves the process responsible for a flow, the daemon's
// lsof-style lookup (§3.5). For the source end it matches a registered
// connection exactly; for the destination end it falls back to the listener
// on the flow's destination port, covering "a destination that has yet to
// accept a connection".
func (h *Host) OwnerOf(f flow.Five, role Role) (*Process, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if role == RoleAuto {
		switch h.IP {
		case f.SrcIP:
			role = RoleSource
		case f.DstIP:
			role = RoleDestination
		default:
			return nil, false
		}
	}
	if role == RoleSource {
		if pid, ok := h.conns[f]; ok {
			return h.procs[pid], true
		}
		return nil, false
	}
	// Destination: an accepted connection is tracked under the flow as the
	// sender names it; otherwise consult the listener table.
	if pid, ok := h.conns[f]; ok {
		return h.procs[pid], true
	}
	if pid, ok := h.listeners[sockKey{f.Proto, f.DstPort}]; ok {
		return h.procs[pid], true
	}
	return nil, false
}

// InstallPatch records an installed OS patch id (e.g. "MS08-067").
func (h *Host) InstallPatch(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.patches {
		if p == id {
			return
		}
	}
	h.patches = append(h.patches, id)
	sort.Strings(h.patches)
}

// Patches returns the installed patch ids as the space-joined token list
// the `includes` predicate consumes.
func (h *Host) Patches() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return strings.Join(h.patches, " ")
}

// Snapshot summarizes the host for debugging.
func (h *Host) Snapshot() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "host %s (%s)\n", h.Name, h.IP)
	fmt.Fprintf(&b, "  users: %d, procs: %d, listeners: %d, conns: %d\n",
		len(h.users), len(h.procs), len(h.listeners), len(h.conns))
	return b.String()
}
