// Package hostinfo simulates the end-host operating system state the
// ident++ daemon reads: users and their groups, running processes and the
// executables behind them, listening sockets, and active connections. The
// paper's daemon "uses the 5-tuple in the query packet to find the process
// ID and user ID associated with the flow using techniques similar to lsof"
// (§3.5); OwnerOf is that lookup.
//
// This is the substitution for real enterprise hosts: the observable
// surface (what an lsof walk plus /etc state would yield) is preserved, and
// tests can construct any configuration of it, including adversarial ones.
package hostinfo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// User is an account on a host.
type User struct {
	Name   string
	UID    int
	Groups []string
}

// InGroup reports whether the user belongs to the named group.
func (u *User) InGroup(g string) bool {
	for _, x := range u.Groups {
		if x == g {
			return true
		}
	}
	return false
}

// Executable describes an on-disk program image. Hash stands in for the
// "hash of the executable" key the paper ships to controllers.
type Executable struct {
	Path    string
	Name    string
	Version string
	Vendor  string
	Type    string
}

// Hash returns a deterministic content hash for the executable; in the
// simulation the image content is a function of path+version+vendor, so
// upgrading an executable changes its hash as it would on a real disk.
func (e Executable) Hash() string {
	h := sha256.Sum256([]byte(e.Path + "\x00" + e.Version + "\x00" + e.Vendor))
	return hex.EncodeToString(h[:16])
}

// Process is a running instance of an executable owned by a user.
type Process struct {
	PID  int
	User *User
	Exe  Executable
}

// ErrPortInUse is returned by Listen for an already-bound port.
var ErrPortInUse = fmt.Errorf("hostinfo: port in use")

type sockKey struct {
	proto netaddr.Proto
	port  netaddr.Port
}

// Host is one end-host's OS view. All methods are safe for concurrent use.
type Host struct {
	Name string
	IP   netaddr.IP
	MAC  netaddr.MAC

	mu        sync.RWMutex
	users     map[string]*User
	procs     map[int]*Process
	listeners map[sockKey]int   // bound port -> pid
	conns     map[flow.Five]int // active outbound/accepted flows -> pid
	patches   []string          // installed OS patches (Figure 8)
	watchers  []func(Change)    // change listeners (AddChangeListener)
	nextPID   int
	nextUID   int
	nextPort  netaddr.Port
}

// New creates a host with the given name and addresses.
func New(name string, ip netaddr.IP, mac netaddr.MAC) *Host {
	return &Host{
		Name:      name,
		IP:        ip,
		MAC:       mac,
		users:     make(map[string]*User),
		procs:     make(map[int]*Process),
		listeners: make(map[sockKey]int),
		conns:     make(map[flow.Five]int),
		nextPID:   100,
		nextUID:   1000,
		nextPort:  32768,
	}
}

// Change scopes one OS-state mutation for change listeners. Flows names
// the flows whose query answers can have changed; All marks mutations
// whose blast radius the host cannot enumerate (a listener binding or
// dying changes the answer for destination-side flows the host never
// tracked in conns; a patch install changes every answer) — the listener
// must then re-derive everything it has asserted. The scope keeps the
// common churn (connections opening and closing, processes exiting)
// O(affected) on the daemon side instead of O(everything-remembered).
type Change struct {
	Flows []flow.Five
	All   bool
}

// AddChangeListener registers fn to be called — outside the host's lock,
// on the mutating goroutine — after any OS-state change that can alter
// the answer to a flow-ownership or fact query: a process exiting, a flow
// opening or closing, a listener binding, a user logging out or changing
// groups, a patch installing. Listeners must not mutate the host
// synchronously from the callback.
func (h *Host) AddChangeListener(fn func(Change)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.watchers = append(h.watchers, fn)
}

// notify invokes the registered change listeners. Callers must NOT hold
// h.mu: listeners re-enter the host's read side (OwnerOf) to re-derive
// facts.
func (h *Host) notify(ch Change) {
	h.mu.RLock()
	ws := h.watchers
	h.mu.RUnlock()
	for _, fn := range ws {
		fn(ch)
	}
}

// scopeOfPIDLocked collects the change scope of removing pid: its tracked
// flows, escalating to All when the pid owns a listener (listener-resolved
// destination flows are not in conns, so their extent is unknowable).
func (h *Host) scopeOfPIDLocked(pid int, ch Change) Change {
	if ch.All {
		return ch
	}
	for _, owner := range h.listeners {
		if owner == pid {
			return Change{All: true}
		}
	}
	for f, owner := range h.conns {
		if owner == pid {
			ch.Flows = append(ch.Flows, f)
		}
	}
	return ch
}

// AddUser creates an account. The first group, if any, is the primary group.
func (h *Host) AddUser(name string, groups ...string) *User {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := &User{Name: name, UID: h.nextUID, Groups: groups}
	h.nextUID++
	h.users[name] = u
	return u
}

// AddSystemUser creates a privileged account with UID below 1000 —
// the paper's "it is more difficult to gain access as a super-user" hosts
// distinguish these.
func (h *Host) AddSystemUser(name string, groups ...string) *User {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := &User{Name: name, UID: len(h.users), Groups: groups}
	h.users[name] = u
	return u
}

// UserByName returns a user account.
func (h *Host) UserByName(name string) (*User, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	u, ok := h.users[name]
	return u, ok
}

// Exec starts a process running exe as user.
func (h *Host) Exec(user *User, exe Executable) *Process {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := &Process{PID: h.nextPID, User: user, Exe: exe}
	h.nextPID++
	h.procs[p.PID] = p
	return p
}

// Kill terminates a process, releasing its sockets and connections.
func (h *Host) Kill(pid int) {
	h.mu.Lock()
	ch := h.scopeOfPIDLocked(pid, Change{})
	h.killLocked(pid)
	h.mu.Unlock()
	h.notify(ch)
}

func (h *Host) killLocked(pid int) {
	delete(h.procs, pid)
	for k, owner := range h.listeners {
		if owner == pid {
			delete(h.listeners, k)
		}
	}
	for k, owner := range h.conns {
		if owner == pid {
			delete(h.conns, k)
		}
	}
}

// Logout terminates every process the named user owns — the session
// ending. The account itself survives (logging out is not deprovisioning);
// what changes is that no flow can resolve to this user any more, which is
// exactly the fact the revocation plane must propagate.
func (h *Host) Logout(name string) {
	h.mu.Lock()
	u := h.users[name]
	var ch Change
	if u != nil {
		for pid, p := range h.procs {
			if p.User == u || p.User.Name == name {
				ch = h.scopeOfPIDLocked(pid, ch)
				h.killLocked(pid)
			}
		}
	}
	h.mu.Unlock()
	if u != nil {
		h.notify(ch)
	}
}

// SetUserGroups replaces the named user's group memberships — an
// administrator moving an account between roles. The user and the
// processes referring to it are replaced copy-on-write, never mutated:
// readers that resolved a process before the change keep a consistent
// (stale) view, and the change listeners propagate the new one.
func (h *Host) SetUserGroups(name string, groups ...string) bool {
	h.mu.Lock()
	old, ok := h.users[name]
	if !ok {
		h.mu.Unlock()
		return false
	}
	nu := &User{Name: old.Name, UID: old.UID, Groups: groups}
	h.users[name] = nu
	var ch Change
	for pid, p := range h.procs {
		if p.User == old {
			ch = h.scopeOfPIDLocked(pid, ch)
			h.procs[pid] = &Process{PID: p.PID, User: nu, Exe: p.Exe}
		}
	}
	h.mu.Unlock()
	h.notify(ch)
	return true
}

// Listen binds a process to a local port. Binding below 1024 requires a
// UID < 1000, mirroring the superuser-endorsement convention §5.4 discusses.
func (h *Host) Listen(pid int, proto netaddr.Proto, port netaddr.Port) error {
	h.mu.Lock()
	p, ok := h.procs[pid]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("hostinfo: no such process %d", pid)
	}
	if port < 1024 && p.User.UID >= 1000 {
		h.mu.Unlock()
		return fmt.Errorf("hostinfo: pid %d (uid %d) may not bind privileged port %d",
			pid, p.User.UID, port)
	}
	k := sockKey{proto, port}
	if _, busy := h.listeners[k]; busy {
		h.mu.Unlock()
		return fmt.Errorf("%w: %s/%d", ErrPortInUse, proto, port)
	}
	h.listeners[k] = pid
	h.mu.Unlock()
	// A fresh listener changes the answer for destination-side flows the
	// host was never tracking (the OwnerOf listener fallback): scope
	// unknowable, re-derive everything.
	h.notify(Change{All: true})
	return nil
}

// Connect registers an outbound flow owned by a process and returns the
// flow with an allocated ephemeral source port. The supplied five-tuple's
// SrcPort is used when non-zero.
func (h *Host) Connect(pid int, f flow.Five) (flow.Five, error) {
	h.mu.Lock()
	if _, ok := h.procs[pid]; !ok {
		h.mu.Unlock()
		return f, fmt.Errorf("hostinfo: no such process %d", pid)
	}
	if f.SrcPort == 0 {
		f.SrcPort = h.allocPortLocked()
	}
	f.SrcIP = h.IP
	h.conns[f] = pid
	h.mu.Unlock()
	h.notify(Change{Flows: []flow.Five{f}})
	return f, nil
}

// Accept registers an inbound flow as owned by the listener's process,
// modelling a completed accept().
func (h *Host) Accept(f flow.Five) error {
	h.mu.Lock()
	pid, ok := h.listeners[sockKey{f.Proto, f.DstPort}]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("hostinfo: no listener on %s/%d", f.Proto, f.DstPort)
	}
	h.conns[f] = pid
	h.mu.Unlock()
	h.notify(Change{Flows: []flow.Five{f}})
	return nil
}

// Close removes a registered flow.
func (h *Host) Close(f flow.Five) {
	h.mu.Lock()
	delete(h.conns, f)
	h.mu.Unlock()
	h.notify(Change{Flows: []flow.Five{f}})
}

func (h *Host) allocPortLocked() netaddr.Port {
	for {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 32768
		}
		if _, busy := h.listeners[sockKey{netaddr.ProtoTCP, p}]; !busy {
			return p
		}
	}
}

// AllocPort returns a fresh ephemeral port.
func (h *Host) AllocPort() netaddr.Port {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocPortLocked()
}

// Role distinguishes which end of a flow this host is when resolving
// ownership.
type Role int

// Roles for OwnerOf.
const (
	// RoleAuto infers the role from the flow's addresses.
	RoleAuto Role = iota
	RoleSource
	RoleDestination
)

// OwnerOf resolves the process responsible for a flow, the daemon's
// lsof-style lookup (§3.5). For the source end it matches a registered
// connection exactly; for the destination end it falls back to the listener
// on the flow's destination port, covering "a destination that has yet to
// accept a connection".
func (h *Host) OwnerOf(f flow.Five, role Role) (*Process, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if role == RoleAuto {
		switch h.IP {
		case f.SrcIP:
			role = RoleSource
		case f.DstIP:
			role = RoleDestination
		default:
			return nil, false
		}
	}
	if role == RoleSource {
		if pid, ok := h.conns[f]; ok {
			return h.procs[pid], true
		}
		return nil, false
	}
	// Destination: an accepted connection is tracked under the flow as the
	// sender names it; otherwise consult the listener table.
	if pid, ok := h.conns[f]; ok {
		return h.procs[pid], true
	}
	if pid, ok := h.listeners[sockKey{f.Proto, f.DstPort}]; ok {
		return h.procs[pid], true
	}
	return nil, false
}

// InstallPatch records an installed OS patch id (e.g. "MS08-067").
func (h *Host) InstallPatch(id string) {
	h.mu.Lock()
	for _, p := range h.patches {
		if p == id {
			h.mu.Unlock()
			return
		}
	}
	h.patches = append(h.patches, id)
	sort.Strings(h.patches)
	h.mu.Unlock()
	h.notify(Change{All: true})
}

// Patches returns the installed patch ids as the space-joined token list
// the `includes` predicate consumes.
func (h *Host) Patches() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return strings.Join(h.patches, " ")
}

// Snapshot summarizes the host for debugging.
func (h *Host) Snapshot() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "host %s (%s)\n", h.Name, h.IP)
	fmt.Fprintf(&b, "  users: %d, procs: %d, listeners: %d, conns: %d\n",
		len(h.users), len(h.procs), len(h.listeners), len(h.conns))
	return b.String()
}
