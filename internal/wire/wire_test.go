package wire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func sampleFlow() flow.Five {
	return flow.Five{
		SrcIP:   netaddr.MustParseIP("192.168.0.5"),
		DstIP:   netaddr.MustParseIP("192.168.1.1"),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 43210,
		DstPort: 80,
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := Query{Flow: sampleFlow(), Keys: []string{KeyUserID, KeyName, KeyExeHash}}
	payload := EncodeQuery(q)
	// First line must be "<PROTO> <SRC PORT> <DST PORT>" per §3.2.
	first := strings.SplitN(string(payload), "\n", 2)[0]
	if first != "6 43210 80" {
		t.Errorf("tuple line = %q", first)
	}
	got, err := DecodeQuery(payload, q.Flow.SrcIP, q.Flow.DstIP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != q.Flow {
		t.Errorf("flow = %v, want %v", got.Flow, q.Flow)
	}
	if len(got.Keys) != 3 || got.Keys[0] != KeyUserID || got.Keys[2] != KeyExeHash {
		t.Errorf("keys = %v", got.Keys)
	}
}

func TestQueryNoKeys(t *testing.T) {
	q := Query{Flow: sampleFlow()}
	got, err := DecodeQuery(EncodeQuery(q), q.Flow.SrcIP, q.Flow.DstIP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 0 {
		t.Errorf("keys = %v, want none", got.Keys)
	}
}

// TestQueryTraceIDRoundTrip: the flight-recorder trace ID rides the query
// as a `trace:<hex>` line after the key hints and survives a round trip;
// an untraced query carries no trace line at all.
func TestQueryTraceIDRoundTrip(t *testing.T) {
	q := Query{Flow: sampleFlow(), Keys: []string{KeyUserID}, TraceID: 0xdeadbeefcafe0001}
	payload := EncodeQuery(q)
	if !strings.Contains(string(payload), "trace:deadbeefcafe0001\n") {
		t.Fatalf("payload missing trace line:\n%s", payload)
	}
	got, err := DecodeQuery(payload, q.Flow.SrcIP, q.Flow.DstIP)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != q.TraceID {
		t.Errorf("TraceID = %x, want %x", got.TraceID, q.TraceID)
	}
	if len(got.Keys) != 1 || got.Keys[0] != KeyUserID {
		t.Errorf("keys = %v, want [%s] (trace line must not surface as a hint)", got.Keys, KeyUserID)
	}

	plain := EncodeQuery(Query{Flow: sampleFlow(), Keys: []string{KeyUserID}})
	if strings.Contains(string(plain), "trace:") {
		t.Errorf("untraced query grew a trace line:\n%s", plain)
	}
}

// TestQueryTraceLineLegacyTolerance: a malformed trace line must degrade
// to an ordinary key hint instead of failing the query — hints are
// advisory, and a legacy peer emitting something trace-shaped still gets
// an answer.
func TestQueryTraceLineLegacyTolerance(t *testing.T) {
	// Only the exact EncodeQuery shape (%016x, nonzero) is a trace line:
	// short hex — a legitimate hint that merely resembles a trace — must
	// reach the daemon as a hint, not be silently consumed.
	for _, line := range []string{"trace:", "trace:zzzz", "trace:0", "trace:abcd", "trace:deadbeefcafe00011", "trace:0000000000000000"} {
		payload := []byte("6 43210 80\n" + KeyUserID + "\n" + line + "\n")
		got, err := DecodeQuery(payload, 0, 0)
		if err != nil {
			t.Fatalf("DecodeQuery with %q: %v", line, err)
		}
		if got.TraceID != 0 {
			t.Errorf("line %q parsed as TraceID %x, want 0", line, got.TraceID)
		}
		if len(got.Keys) != 2 || got.Keys[1] != line {
			t.Errorf("line %q: keys = %v, want it preserved as a hint", line, got.Keys)
		}
	}
}

// TestQueryTraceLineFirstWins: with two trace-shaped lines in one payload,
// the first sets the trace ID and the second degrades to a hint — a later
// line must not overwrite the ID the querier attributed the RTT to.
func TestQueryTraceLineFirstWins(t *testing.T) {
	payload := []byte("6 43210 80\ntrace:deadbeefcafe0001\ntrace:deadbeefcafe0002\n")
	got, err := DecodeQuery(payload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0xdeadbeefcafe0001 {
		t.Errorf("TraceID = %x, want first line's deadbeefcafe0001", got.TraceID)
	}
	if len(got.Keys) != 1 || got.Keys[0] != "trace:deadbeefcafe0002" {
		t.Errorf("keys = %v, want the second trace line preserved as a hint", got.Keys)
	}
}

func TestDecodeQueryErrors(t *testing.T) {
	for _, bad := range []string{"", "6 80", "x 1 2", "6 x 2", "6 1 x", "6 1 999999"} {
		if _, err := DecodeQuery([]byte(bad), 0, 0); err == nil {
			t.Errorf("DecodeQuery(%q) should fail", bad)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := NewResponse(sampleFlow())
	r.Add(KeyUserID, "alice")
	r.Add(KeyName, "skype")
	r.Add(KeyVersion, "210")
	sec := r.Augment("controller-B")
	sec.Add("netpath", "branchB")
	sec.Add(KeyUserID, "alice@B")

	payload := EncodeResponse(r)
	got, err := DecodeResponse(payload, r.Flow.SrcIP, r.Flow.DstIP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != r.Flow {
		t.Errorf("flow = %v", got.Flow)
	}
	if len(got.Sections) != 2 {
		t.Fatalf("sections = %d, want 2: %q", len(got.Sections), payload)
	}
	if v, _ := got.Latest(KeyName); v != "skype" {
		t.Errorf("name = %q", v)
	}
	// Latest wins across sections.
	if v, _ := got.Latest(KeyUserID); v != "alice@B" {
		t.Errorf("latest userID = %q, want alice@B", v)
	}
	// Concat exposes the full chain.
	if v, _ := got.Concat(KeyUserID); v != "alice"+ConcatSeparator+"alice@B" {
		t.Errorf("concat userID = %q", v)
	}
}

func TestResponseWireFormatShape(t *testing.T) {
	r := NewResponse(sampleFlow())
	r.Add("a", "1")
	r.Augment("x").Add("b", "2")
	text := string(EncodeResponse(r))
	want := "6 43210 80\na: 1\n\nb: 2\n"
	if text != want {
		t.Errorf("wire text = %q, want %q", text, want)
	}
}

func TestLatestWithinSection(t *testing.T) {
	r := NewResponse(sampleFlow())
	r.Add("k", "old")
	r.Add("k", "new")
	if v, _ := r.Latest("k"); v != "new" {
		t.Errorf("latest = %q, want new (last pair in section wins)", v)
	}
}

func TestLatestMissing(t *testing.T) {
	r := NewResponse(sampleFlow())
	if _, ok := r.Latest("nope"); ok {
		t.Error("Latest on missing key should report !ok")
	}
	if _, ok := r.Concat("nope"); ok {
		t.Error("Concat on missing key should report !ok")
	}
}

func TestValueSanitization(t *testing.T) {
	r := NewResponse(sampleFlow())
	r.Add("rules", "block all\npass all")
	got, err := DecodeResponse(EncodeResponse(r), r.Flow.SrcIP, r.Flow.DstIP)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := got.Latest("rules")
	if strings.Contains(v, "\n") {
		t.Errorf("newline leaked into wire value: %q", v)
	}
	if v != "block all pass all" {
		t.Errorf("sanitized value = %q", v)
	}
	// Injection attempt: a value carrying an empty line + fake pair must not
	// create a forged section.
	r2 := NewResponse(sampleFlow())
	r2.Add("x", "1\n\nuserID: root")
	got2, err := DecodeResponse(EncodeResponse(r2), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Sections) != 1 {
		t.Errorf("value injection created %d sections", len(got2.Sections))
	}
	if _, ok := got2.Latest(KeyUserID); ok {
		t.Error("value injection forged a userID pair")
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"6 1",
		"6 1 2\nno-colon-line\n",
		"6 1 2\n: novalue\n",
	} {
		if _, err := DecodeResponse([]byte(bad), 0, 0); err == nil {
			t.Errorf("DecodeResponse(%q) should fail", bad)
		}
	}
}

func TestDecodeResponseOversize(t *testing.T) {
	big := make([]byte, MaxMessageSize+1)
	if _, err := DecodeResponse(big, 0, 0); err == nil {
		t.Error("oversized response should fail")
	}
}

func TestResponseClone(t *testing.T) {
	r := NewResponse(sampleFlow())
	r.Add("k", "v")
	c := r.Clone()
	c.Augment("x").Add("k", "v2")
	if len(r.Sections) != 1 {
		t.Error("Clone aliases the original sections")
	}
	if v, _ := r.Latest("k"); v != "v" {
		t.Error("mutating clone changed original")
	}
}

func TestResponseKeys(t *testing.T) {
	r := NewResponse(sampleFlow())
	r.Add("b", "1")
	r.Add("a", "2")
	r.Augment("x").Add("b", "3")
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "a" {
		t.Errorf("keys = %v", keys)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	// Any response assembled from printable single-line pairs survives a
	// wire round trip with sections and order intact.
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r < 32 || r == 127 || r == ':' {
				return -1
			}
			return r
		}, s)
		s = strings.TrimSpace(s)
		if s == "" {
			return "k"
		}
		return s
	}
	f := func(keys []string, vals []string, split uint8) bool {
		if len(keys) == 0 {
			return true
		}
		if len(vals) < len(keys) {
			return true
		}
		r := NewResponse(sampleFlow())
		cut := int(split) % (len(keys) + 1)
		for i, k := range keys {
			if i == cut {
				r.Augment("mid")
			}
			v := strings.TrimSpace(strings.Map(func(c rune) rune {
				if c < 32 || c == 127 {
					return ' '
				}
				return c
			}, vals[i]))
			r.Add(clean(k), v)
		}
		got, err := DecodeResponse(EncodeResponse(r), r.Flow.SrcIP, r.Flow.DstIP)
		if err != nil {
			return false
		}
		for _, k := range r.Keys() {
			wantV, _ := r.Latest(k)
			gotV, ok := got.Latest(k)
			if !ok || gotV != strings.Join(strings.Fields(wantV), " ") {
				// Encoding collapses embedded control chars to spaces; compare
				// with whitespace normalized.
				if !ok || strings.Join(strings.Fields(gotV), " ") != strings.Join(strings.Fields(wantV), " ") {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFramedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	q := Query{Flow: sampleFlow(), Keys: []string{KeyUserID}}
	if err := WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	r := NewResponse(sampleFlow())
	r.Add(KeyUserID, "bob")
	if err := WriteResponse(&buf, r); err != nil {
		t.Fatal(err)
	}

	gotQ, err := ReadQuery(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ.Flow != q.Flow || len(gotQ.Keys) != 1 {
		t.Errorf("query = %+v", gotQ)
	}
	gotR, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := gotR.Latest(KeyUserID); v != "bob" {
		t.Errorf("framed response userID = %q", v)
	}
}

func TestFramedTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	r := NewResponse(sampleFlow())
	if err := WriteResponse(&buf, r); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadQuery(&buf); err == nil {
		t.Error("ReadQuery on a response frame should fail")
	}
}

func TestFramedRejectsOversize(t *testing.T) {
	// A forged header advertising a huge payload must be rejected before
	// allocation.
	hdr := []byte{FrameQuery, 0, 0, 0, 1, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized frame header accepted")
	}
}

func TestFramedRejectsUnknownType(t *testing.T) {
	hdr := []byte{'Z', 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestFramedTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQuery(&buf, Query{Flow: sampleFlow()}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := 1; cut < len(b); cut += 2 {
		if _, err := ReadFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncated frame (%d bytes) accepted", cut)
		}
	}
}

func BenchmarkEncodeResponse(b *testing.B) {
	r := NewResponse(sampleFlow())
	r.Add(KeyUserID, "alice")
	r.Add(KeyName, "skype")
	r.Add(KeyVersion, "210")
	r.Add(KeyExeHash, strings.Repeat("ab", 32))
	r.Add(KeyRequirements, "block all pass all with eq(@src[name], skype)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeResponse(r)
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	r := NewResponse(sampleFlow())
	r.Add(KeyUserID, "alice")
	r.Add(KeyName, "skype")
	r.Augment("ctrl").Add("netpath", "branchB")
	payload := EncodeResponse(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResponse(payload, r.Flow.SrcIP, r.Flow.DstIP); err != nil {
			b.Fatal(err)
		}
	}
}
