package wire

import (
	"bytes"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

func updFlow() flow.Five {
	return flow.Five{
		SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 5060,
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	cases := []Update{
		{Flow: updFlow(), Key: "userID", Old: "alice", New: "", Serial: 7},
		{Flow: updFlow(), Key: "name", Old: "skype", New: "notskype", Serial: 8},
		{Key: "userID", Serial: 9},    // key-scoped, no flow
		{Serial: 10},                  // resync
		{Hello: true, Serial: 11},     // subscription ack
		{Flow: updFlow(), Serial: 12}, // flow-scoped, no key
		{Flow: updFlow(), Key: "v", Old: "a b", New: "c\nd", Serial: 13}, // newline sanitized
	}
	for i, u := range cases {
		payload := EncodeUpdate(u)
		got, err := DecodeUpdate(payload, u.Flow.SrcIP, u.Flow.DstIP)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want := u
		want.New = sanitizeValue(want.New)
		want.Old = sanitizeValue(want.Old)
		if got != want {
			t.Errorf("case %d: round trip %+v != %+v", i, got, want)
		}
	}
}

func TestUpdateScopePredicates(t *testing.T) {
	if !(Update{Flow: updFlow(), Serial: 1}).FlowScoped() {
		t.Error("flow-scoped update not recognized")
	}
	if (Update{Key: "k", Serial: 1}).FlowScoped() {
		t.Error("key-scoped update claims a flow")
	}
	if !(Update{Serial: 1}).Resync() {
		t.Error("bare update should be a resync")
	}
	if (Update{Hello: true, Serial: 1}).Resync() {
		t.Error("hello is not a resync")
	}
	if (Update{Key: "k", Serial: 1}).Resync() {
		t.Error("key-scoped update is not a resync")
	}
}

func TestUpdateDecodeErrors(t *testing.T) {
	if _, err := DecodeUpdate([]byte("6 1 2\nkey: x\n"), 0, 0); err == nil {
		t.Error("update without serial accepted")
	}
	if _, err := DecodeUpdate(nil, 0, 0); err == nil {
		t.Error("empty update accepted")
	}
	if _, err := DecodeUpdate([]byte("6 1 2\nserial: banana\n"), 0, 0); err == nil {
		t.Error("bad serial accepted")
	}
	if _, err := DecodeUpdate([]byte("6 1 2\ngarbage\n"), 0, 0); err == nil {
		t.Error("line without colon accepted")
	}
}

func TestUpdateFrameRoundTrip(t *testing.T) {
	u := Update{Flow: updFlow(), Key: "userID", Old: "alice", Serial: 3}
	var buf bytes.Buffer
	if err := WriteUpdate(&buf, u); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdateFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("frame round trip: %+v != %+v", got, u)
	}
}

func TestSubscribeFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSubscribe(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameSubscribe {
		t.Fatalf("type = %#02x, want subscribe", f.Type)
	}
	if len(f.Payload) != 0 {
		t.Errorf("subscribe payload = %q, want empty", f.Payload)
	}
}
