package wire

import (
	"fmt"
	"strconv"
	"strings"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// This file defines the revocation plane's wire message: the unsolicited
// Update a daemon pushes when an endpoint fact it previously asserted stops
// being true (a process exited, a user logged out, new configuration was
// installed). The paper's verdicts are computed from facts that are only
// checked at flow-setup time; updates close that loop, making delegated
// decisions revocable instead of merely expirable (the delegation
// literature's requirement that revocation propagate promptly).
//
// An update payload reuses the line-oriented §3.2 text format:
//
//	<PROTO> <SRC PORT> <DST PORT>
//	serial: <n>
//	[hello: 1]
//	[key: <key>]
//	[old: <value>]
//	[new: <value>]
//	[cred: <credential blob>]
//	[csig: <hello transcript signature>]
//
// The tuple line is all zeros (and the frame envelope's addresses are
// zero) when the update is not scoped to one flow. Which daemon the update
// is about is implicit in the connection it arrives on — exactly as with
// responses, host identity belongs to the transport, not the payload.

// Update is one daemon-pushed endpoint-state change.
//
// Scoping, most to least specific:
//
//   - Flow set (non-zero): the facts the daemon asserted for exactly that
//     flow changed (or stopped being tracked). Key/Old/New name the first
//     changed fact for the audit trail; the controller revokes the flow
//     whatever the key.
//   - Flow zero, Key set: every flow whose verdict read Key from this host
//     is affected (operator-initiated revocations use this shape).
//   - Flow zero, Key empty: resync — everything the controller believes
//     about this host is suspect (serial gap, reconnection, daemon
//     restart). Transports also synthesize this form locally.
//
// Serial is the daemon's per-host monotonically increasing update number;
// a receiver seeing a gap knows it missed updates and must resync. Hello
// marks the subscription acknowledgement: it carries the daemon's current
// serial and asserts nothing, but its arrival proves the daemon pushes
// updates at all (hosts that never say hello fall back to TTL leases on
// the controller).
// Hellos may additionally carry the daemon's delegation credential: Cred
// is the credential blob (internal/cred wire form) and CredSig the
// session-key signature over this hello's (host, serial) transcript.
// Both ride optional `cred:`/`csig:` lines, so legacy peers on either
// side interoperate — old daemons send hellos without them (a
// credential-requiring controller then counts the session unverified),
// and old controllers skip them as unknown lines.
type Update struct {
	Flow    flow.Five
	Key     string
	Old     string
	New     string
	Serial  uint64
	Hello   bool
	Cred    string
	CredSig string
}

// FlowScoped reports whether the update names one flow.
func (u Update) FlowScoped() bool { return u.Flow != (flow.Five{}) }

// Resync reports whether the update invalidates everything known about the
// host: not a hello, no flow, no key.
func (u Update) Resync() bool { return !u.Hello && !u.FlowScoped() && u.Key == "" }

// EncodeUpdate renders the update payload.
func EncodeUpdate(u Update) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %d\n", u.Flow.Proto, u.Flow.SrcPort, u.Flow.DstPort)
	fmt.Fprintf(&b, "serial: %d\n", u.Serial)
	if u.Hello {
		b.WriteString("hello: 1\n")
	}
	if u.Key != "" {
		b.WriteString("key: ")
		b.WriteString(sanitizeValue(strings.TrimSpace(u.Key)))
		b.WriteByte('\n')
	}
	if u.Old != "" {
		b.WriteString("old: ")
		b.WriteString(sanitizeValue(u.Old))
		b.WriteByte('\n')
	}
	if u.New != "" {
		b.WriteString("new: ")
		b.WriteString(sanitizeValue(u.New))
		b.WriteByte('\n')
	}
	if u.Cred != "" {
		b.WriteString("cred: ")
		b.WriteString(sanitizeValue(u.Cred))
		b.WriteByte('\n')
	}
	if u.CredSig != "" {
		b.WriteString("csig: ")
		b.WriteString(sanitizeValue(u.CredSig))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DecodeUpdate parses an update payload. As with queries and responses, the
// flow's IP addresses come from the transport envelope.
func DecodeUpdate(payload []byte, srcIP, dstIP netaddr.IP) (Update, error) {
	if len(payload) > MaxMessageSize {
		return Update{}, fmt.Errorf("wire: update exceeds %d bytes", MaxMessageSize)
	}
	lines := strings.Split(string(payload), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return Update{}, fmt.Errorf("wire: empty update")
	}
	f, err := parseTupleLine(lines[0])
	if err != nil {
		return Update{}, err
	}
	f.SrcIP, f.DstIP = srcIP, dstIP
	u := Update{Flow: f}
	sawSerial := false
	for _, l := range lines[1:] {
		trimmed := strings.TrimSpace(strings.TrimRight(l, "\r"))
		if trimmed == "" {
			continue
		}
		colon := strings.Index(trimmed, ":")
		if colon < 0 {
			return Update{}, fmt.Errorf("wire: malformed update line %q", trimmed)
		}
		key := strings.TrimSpace(trimmed[:colon])
		val := strings.TrimSpace(trimmed[colon+1:])
		switch key {
		case "serial":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Update{}, fmt.Errorf("wire: bad update serial %q", val)
			}
			u.Serial = n
			sawSerial = true
		case "hello":
			u.Hello = val == "1"
		case "key":
			u.Key = val
		case "old":
			u.Old = val
		case "new":
			u.New = val
		case "cred":
			u.Cred = val
		case "csig":
			u.CredSig = val
		default:
			// Unknown lines are skipped: future daemons may say more.
		}
	}
	if !sawSerial {
		return Update{}, fmt.Errorf("wire: update without serial")
	}
	return u, nil
}
