// Package wire implements the ident++ query and response formats of §3.2 of
// the paper, the section semantics of §2/§3.4 (intercepting controllers
// append an empty-line-delimited section), and the @src/@dst dictionary view
// PF+=2 indexes (§3.3): plain lookup returns the latest value, `*`-lookup
// returns the concatenation across sections.
//
// A query payload is:
//
//	<PROTO> <SRC PORT> <DST PORT>
//	<key 0>
//	<key 1>
//	...
//
// and a response payload is:
//
//	<PROTO> <SRC PORT> <DST PORT>
//	<key 0>: <value 0>
//	...
//	<newline>
//	<key n>: <value n>
//	...
//
// The flow's IP addresses are not in the payload: the paper has the
// controller spoof the flow's destination IP as the query's source IP so the
// daemon recovers both addresses from the IP header (§3.2). The in-simulator
// transport does exactly that; for real TCP sockets (which cannot spoof)
// the Framed codec carries the two addresses in a fixed binary envelope.
package wire

import (
	"fmt"
	"strconv"
	"strings"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// Well-known keys (§2, §3.3 and the paper's figures). The list is open:
// "ident++ does not limit the types of key-value pairs possible".
const (
	KeyUserID       = "userID"
	KeyGroupID      = "groupID"
	KeyName         = "name"     // application name as set in daemon config
	KeyAppName      = "app-name" // alias used by verify() calls in Figures 5 and 7
	KeyExeHash      = "exe-hash"
	KeyVersion      = "version"
	KeyVendor       = "vendor"
	KeyType         = "type"
	KeyRequirements = "requirements"
	KeyReqSig       = "req-sig"
	KeyRuleMaker    = "rule-maker"
	KeyOSPatch      = "os-patch"
	KeyPID          = "pid"
	KeyHost         = "host"
	KeyError        = "error"
)

// MaxMessageSize bounds any single ident++ message. A daemon is reachable
// from the whole network; unbounded reads would be a trivial memory DoS.
const MaxMessageSize = 64 * 1024

// Query asks the ident++ daemon at one end of Flow for information. Keys
// are hints: "The list of keys in the query packet only provide a hint for
// what the controller needs. The response may contain additional unsolicited
// key-value pairs." (§3.2)
type Query struct {
	Flow flow.Five
	Keys []string

	// TraceID stitches the query to the controller decision that issued
	// it (internal/trace). 0 = untraced. On the wire it rides as a
	// `trace:<hex>` line after the key hints; a legacy decoder sees that
	// line as just another key hint — and since keys are only hints a
	// daemon is free to ignore (§3.2), old daemons interoperate untouched.
	TraceID uint64
}

// KV is one key-value pair in a response section. Keys may repeat within
// and across sections.
type KV struct {
	Key   string
	Value string
}

// Section is a run of key-value pairs from one source (user, application,
// local administrator, or an augmenting controller on the path). Sections
// are separated by empty lines on the wire; Source is local bookkeeping and
// never serialized.
type Section struct {
	Source string
	Pairs  []KV
}

// Get returns the last value for key within the section.
func (s *Section) Get(key string) (string, bool) {
	for i := len(s.Pairs) - 1; i >= 0; i-- {
		if s.Pairs[i].Key == key {
			return s.Pairs[i].Value, true
		}
	}
	return "", false
}

// Add appends a pair to the section.
func (s *Section) Add(key, value string) {
	s.Pairs = append(s.Pairs, KV{key, value})
}

// Response is an ident++ response: the flow it answers for and one or more
// sections of key-value pairs.
type Response struct {
	Flow     flow.Five
	Sections []Section
}

// NewResponse builds a response with one initial (possibly empty) section.
func NewResponse(f flow.Five) *Response {
	return &Response{Flow: f, Sections: []Section{{}}}
}

// Add appends a pair to the final section.
func (r *Response) Add(key, value string) {
	if len(r.Sections) == 0 {
		r.addSection("")
	}
	r.Sections[len(r.Sections)-1].Add(key, value)
}

// addSection appends an empty section, recycling a slot (and its Pairs
// backing array) left behind by Reset when one is available, so a pooled
// response rebuilds its sections without reallocating them.
func (r *Response) addSection(source string) *Section {
	if n := len(r.Sections); n < cap(r.Sections) {
		r.Sections = r.Sections[:n+1]
		s := &r.Sections[n]
		s.Source = source
		s.Pairs = s.Pairs[:0]
		return s
	}
	r.Sections = append(r.Sections, Section{Source: source})
	return &r.Sections[len(r.Sections)-1]
}

// Augment starts a new section, modelling an intercepting controller that
// "adds an empty line to delineate the information it has added from that
// supplied by upstream firewalls" (§2). It returns the new section for
// population.
func (r *Response) Augment(source string) *Section {
	return r.addSection(source)
}

// Reset clears the response for reuse while keeping the section and pair
// capacity it has grown, so a recycled response populates without
// reallocating. Pair values are zeroed first: a pooled response must not
// pin the strings of the flow it last described.
func (r *Response) Reset(f flow.Five) {
	full := r.Sections[:cap(r.Sections)]
	for i := range full {
		s := &full[i]
		s.Source = ""
		kept := s.Pairs[:cap(s.Pairs)]
		for j := range kept {
			kept[j] = KV{}
		}
		s.Pairs = s.Pairs[:0]
	}
	r.Sections = r.Sections[:0]
	r.Flow = f
}

// Latest returns the most recent value for key: sections are scanned from
// last to first. "indexing the dictionaries will give the latest value
// added to the response. The latest value is the most trusted (though not
// necessarily the most trustworthy)" (§3.3).
func (r *Response) Latest(key string) (string, bool) {
	for i := len(r.Sections) - 1; i >= 0; i-- {
		if v, ok := r.Sections[i].Get(key); ok {
			return v, true
		}
	}
	return "", false
}

// ConcatSeparator joins values in Concat. A comma cannot appear in a single
// endorsement token by convention, so equality checks over the joined chain
// are unambiguous.
const ConcatSeparator = ","

// Concat returns every value recorded for key in section order, joined with
// ConcatSeparator. This backs the `*@src[key]` accessor: "returns a
// concatenation of the values in all sections of the response packet" used
// to check endorsement chains (§3.3).
func (r *Response) Concat(key string) (string, bool) {
	var vals []string
	for _, s := range r.Sections {
		for _, p := range s.Pairs {
			if p.Key == key {
				vals = append(vals, p.Value)
			}
		}
	}
	if len(vals) == 0 {
		return "", false
	}
	return strings.Join(vals, ConcatSeparator), true
}

// Keys returns the distinct keys present anywhere in the response, in first-
// appearance order.
func (r *Response) Keys() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range r.Sections {
		for _, p := range s.Pairs {
			if !seen[p.Key] {
				seen[p.Key] = true
				out = append(out, p.Key)
			}
		}
	}
	return out
}

// Clone deep-copies the response so an intercepting controller can augment
// without aliasing the cached original.
func (r *Response) Clone() *Response {
	c := &Response{Flow: r.Flow, Sections: make([]Section, len(r.Sections))}
	for i, s := range r.Sections {
		c.Sections[i] = Section{Source: s.Source, Pairs: append([]KV(nil), s.Pairs...)}
	}
	return c
}

// sanitizeValue strips bytes that would corrupt the line-oriented format.
// Values are single logical lines; daemon config files join continuation
// lines before the value ever reaches the wire.
func sanitizeValue(v string) string {
	if !strings.ContainsAny(v, "\r\n") {
		return v
	}
	v = strings.ReplaceAll(v, "\r\n", " ")
	v = strings.ReplaceAll(v, "\n", " ")
	return strings.ReplaceAll(v, "\r", " ")
}

// traceLinePrefix marks the query line carrying the decision trace ID.
// It is deliberately shaped like a key hint so legacy decoders pass it
// through harmlessly (see Query.TraceID).
const traceLinePrefix = "trace:"

// EncodeQuery renders the §3.2 query payload.
func EncodeQuery(q Query) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %d\n", q.Flow.Proto, q.Flow.SrcPort, q.Flow.DstPort)
	for _, k := range q.Keys {
		b.WriteString(strings.TrimSpace(k))
		b.WriteByte('\n')
	}
	if q.TraceID != 0 {
		fmt.Fprintf(&b, "%s%016x\n", traceLinePrefix, q.TraceID)
	}
	return []byte(b.String())
}

// DecodeQuery parses a query payload. The flow's IP addresses come from the
// transport (the IP header in the simulator, the framed envelope over TCP).
func DecodeQuery(payload []byte, srcIP, dstIP netaddr.IP) (Query, error) {
	lines := strings.Split(string(payload), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return Query{}, fmt.Errorf("wire: empty query")
	}
	f, err := parseTupleLine(lines[0])
	if err != nil {
		return Query{}, err
	}
	f.SrcIP, f.DstIP = srcIP, dstIP
	q := Query{Flow: f}
	for _, l := range lines[1:] {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(l, traceLinePrefix); ok && q.TraceID == 0 && len(rest) == 16 {
			// Only the exact shape EncodeQuery emits (%016x) is a trace
			// line, and only the first one counts; anything else — shorter
			// hex, a second trace line — degrades to a key hint rather than
			// failing the query, so a legitimate hint that merely resembles
			// a trace still reaches the daemon.
			if id, err := strconv.ParseUint(rest, 16, 64); err == nil && id != 0 {
				q.TraceID = id
				continue
			}
		}
		q.Keys = append(q.Keys, l)
	}
	return q, nil
}

// EncodeResponse renders the §3.2 response payload with empty lines between
// sections. Leading/trailing empty sections are preserved structurally by
// emitting their separators, except that a single empty section encodes as a
// bare tuple line (a daemon with nothing to say).
func EncodeResponse(r *Response) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %d\n", r.Flow.Proto, r.Flow.SrcPort, r.Flow.DstPort)
	for i, s := range r.Sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		for _, p := range s.Pairs {
			b.WriteString(strings.TrimSpace(p.Key))
			b.WriteString(": ")
			b.WriteString(sanitizeValue(p.Value))
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// DecodeResponse parses a response payload. IP addresses come from the
// transport, as with DecodeQuery.
func DecodeResponse(payload []byte, srcIP, dstIP netaddr.IP) (*Response, error) {
	if len(payload) > MaxMessageSize {
		return nil, fmt.Errorf("wire: response exceeds %d bytes", MaxMessageSize)
	}
	lines := strings.Split(string(payload), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("wire: empty response")
	}
	f, err := parseTupleLine(lines[0])
	if err != nil {
		return nil, err
	}
	f.SrcIP, f.DstIP = srcIP, dstIP
	r := &Response{Flow: f, Sections: []Section{{}}}
	cur := &r.Sections[0]
	for _, l := range lines[1:] {
		trimmed := strings.TrimRight(l, "\r")
		if strings.TrimSpace(trimmed) == "" {
			// Empty line: new section. Collapse a run of empty lines at the
			// very end of the payload (trailing newline artifacts).
			if cur == &r.Sections[len(r.Sections)-1] && len(cur.Pairs) == 0 && len(r.Sections) > 1 {
				continue
			}
			r.Sections = append(r.Sections, Section{})
			cur = &r.Sections[len(r.Sections)-1]
			continue
		}
		colon := strings.Index(trimmed, ":")
		if colon < 0 {
			return nil, fmt.Errorf("wire: malformed pair %q", trimmed)
		}
		key := strings.TrimSpace(trimmed[:colon])
		// Canonicalize on the way in, exactly as EncodeResponse does on the
		// way out, so decode∘encode is stable: an embedded CR would
		// otherwise decode verbatim but re-encode as a space.
		val := sanitizeValue(strings.TrimSpace(trimmed[colon+1:]))
		if key == "" {
			return nil, fmt.Errorf("wire: empty key in %q", trimmed)
		}
		cur.Add(key, val)
	}
	// Drop a trailing empty section created by a final newline.
	if n := len(r.Sections); n > 1 && len(r.Sections[n-1].Pairs) == 0 {
		r.Sections = r.Sections[:n-1]
	}
	return r, nil
}

func parseTupleLine(line string) (flow.Five, error) {
	var f flow.Five
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return f, fmt.Errorf("wire: malformed tuple line %q", line)
	}
	proto, err := strconv.ParseUint(fields[0], 10, 8)
	if err != nil {
		return f, fmt.Errorf("wire: bad protocol in %q", line)
	}
	sp, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return f, fmt.Errorf("wire: bad src port in %q", line)
	}
	dp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return f, fmt.Errorf("wire: bad dst port in %q", line)
	}
	f.Proto = netaddr.Proto(proto)
	f.SrcPort = netaddr.Port(sp)
	f.DstPort = netaddr.Port(dp)
	return f, nil
}
