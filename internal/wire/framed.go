package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"identxx/internal/netaddr"
)

// Framed message kinds. The kind byte discriminates the three message
// shapes of the protocol — request, response, and the revocation plane's
// unsolicited update — plus the subscription control frame that opts a
// connection into updates.
//
// Back-compat: peers predating the revocation plane ("untagged" peers in
// the sense that they tag only the original two kinds) interoperate
// unchanged — their Q/R frames decode exactly as before, and a daemon
// never pushes FrameUpdate at a connection that has not sent
// FrameSubscribe, so a legacy reader's FIFO correlation is never broken
// by a frame kind it does not know.
const (
	FrameQuery    byte = 'Q'
	FrameResponse byte = 'R'
	// FrameUpdate is an unsolicited daemon→controller endpoint-state
	// update (see Update). It is only ever sent on connections that
	// subscribed.
	FrameUpdate byte = 'U'
	// FrameSubscribe is a client→daemon control frame with an empty
	// payload: "push me updates on this connection". The daemon
	// acknowledges with a hello update carrying its current serial.
	FrameSubscribe byte = 'S'
	// FrameEvent is a controller→controller forwarded packet-in: the
	// cluster router's hand-off of a non-owned flow's event to the replica
	// the ring assigns it to. The payload is internal/cluster's binary
	// event encoding; Src/DstIP mirror the flow for symmetry with Q/R.
	FrameEvent byte = 'E'
	// FrameEventTraced is FrameEvent with an 8-byte big-endian trace ID
	// prefixed to the event payload: the forwarder's flight-recorder
	// trace stitches to the owner's decision (internal/trace). Following
	// the FrameSubscribe precedent, the kind is only ever sent to peers
	// the operator has opted in — tracing is off by default and enabled
	// ring-wide after every replica understands it — so a legacy ring
	// never sees a kind it cannot decode.
	FrameEventTraced byte = 'T'
	// FrameSnapshot is a controller→controller epoch-fenced config
	// snapshot push (policy source, answers, datapath set). 'C' for
	// config; 'S' was taken.
	FrameSnapshot byte = 'C'
	// FrameAck is the controller→controller reply to FrameEvent and
	// FrameSnapshot. Inter-controller links are pipelined FIFO streams
	// exactly like the query plane, so every request kind needs a
	// response kind to correlate against; the one-byte payload is a
	// status code (see internal/cluster).
	FrameAck byte = 'A'
)

// frameHeaderLen is: 1 type byte, 4+4 IP addresses, 4 payload length.
const frameHeaderLen = 13

// Frame is one length-delimited ident++ message on a stream transport.
// Real TCP sockets cannot spoof the flow's destination IP the way §3.2
// assumes, so the envelope carries the two flow addresses explicitly; the
// payload is the unchanged §3.2 text format.
type Frame struct {
	Type    byte
	SrcIP   netaddr.IP
	DstIP   netaddr.IP
	Payload []byte
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxMessageSize {
		return fmt.Errorf("wire: frame payload %d exceeds limit", len(f.Payload))
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = f.Type
	binary.BigEndian.PutUint32(hdr[1:5], uint32(f.SrcIP))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(f.DstIP))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame from r, rejecting oversized payloads before
// allocating for them.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f := Frame{
		Type:  hdr[0],
		SrcIP: netaddr.IP(binary.BigEndian.Uint32(hdr[1:5])),
		DstIP: netaddr.IP(binary.BigEndian.Uint32(hdr[5:9])),
	}
	switch f.Type {
	case FrameQuery, FrameResponse, FrameUpdate, FrameSubscribe,
		FrameEvent, FrameEventTraced, FrameSnapshot, FrameAck:
	default:
		return Frame{}, fmt.Errorf("wire: unknown frame type %#02x", f.Type)
	}
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > MaxMessageSize {
		return Frame{}, fmt.Errorf("wire: frame payload %d exceeds limit", n)
	}
	f.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// WriteQuery frames and writes a query.
func WriteQuery(w io.Writer, q Query) error {
	return WriteFrame(w, Frame{
		Type:    FrameQuery,
		SrcIP:   q.Flow.SrcIP,
		DstIP:   q.Flow.DstIP,
		Payload: EncodeQuery(q),
	})
}

// ReadQuery reads and decodes a framed query.
func ReadQuery(r io.Reader) (Query, error) {
	f, err := ReadFrame(r)
	if err != nil {
		return Query{}, err
	}
	if f.Type != FrameQuery {
		return Query{}, fmt.Errorf("wire: expected query frame, got %#02x", f.Type)
	}
	return DecodeQuery(f.Payload, f.SrcIP, f.DstIP)
}

// WriteResponse frames and writes a response.
func WriteResponse(w io.Writer, resp *Response) error {
	return WriteFrame(w, Frame{
		Type:    FrameResponse,
		SrcIP:   resp.Flow.SrcIP,
		DstIP:   resp.Flow.DstIP,
		Payload: EncodeResponse(resp),
	})
}

// WriteUpdate frames and writes an unsolicited endpoint-state update.
func WriteUpdate(w io.Writer, u Update) error {
	return WriteFrame(w, Frame{
		Type:    FrameUpdate,
		SrcIP:   u.Flow.SrcIP,
		DstIP:   u.Flow.DstIP,
		Payload: EncodeUpdate(u),
	})
}

// WriteSubscribe writes the empty subscription control frame.
func WriteSubscribe(w io.Writer) error {
	return WriteFrame(w, Frame{Type: FrameSubscribe})
}

// DecodeUpdateFrame decodes an already-read FrameUpdate.
func DecodeUpdateFrame(f Frame) (Update, error) {
	if f.Type != FrameUpdate {
		return Update{}, fmt.Errorf("wire: expected update frame, got %#02x", f.Type)
	}
	return DecodeUpdate(f.Payload, f.SrcIP, f.DstIP)
}

// ReadResponse reads and decodes a framed response.
func ReadResponse(r io.Reader) (*Response, error) {
	f, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	if f.Type != FrameResponse {
		return nil, fmt.Errorf("wire: expected response frame, got %#02x", f.Type)
	}
	return DecodeResponse(f.Payload, f.SrcIP, f.DstIP)
}
