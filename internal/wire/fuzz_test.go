package wire

import (
	"reflect"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

var (
	fuzzSrc = netaddr.MustParseIP("10.0.0.1")
	fuzzDst = netaddr.MustParseIP("10.0.0.2")
)

// FuzzDecodeQuery checks the §3.2 query codec: any payload DecodeQuery
// accepts must re-encode and re-decode to the same query (decode∘encode is
// the identity on decoded values), and no input may panic the decoder.
func FuzzDecodeQuery(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("6 234 80\n"),
		[]byte("6 234 80\nname\nuserID\n"),
		[]byte("17 53 53\nos-patch\n\nversion\n"),
		EncodeQuery(Query{Keys: []string{KeyUserID, KeyName, KeyExeHash}}),
		[]byte("6 234\n"),       // malformed: short tuple line
		[]byte("x y z\nname\n"), // malformed: non-numeric tuple
		[]byte(""),
		[]byte("\n\n\n"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		q, err := DecodeQuery(payload, fuzzSrc, fuzzDst)
		if err != nil {
			return
		}
		if q.Flow.SrcIP != fuzzSrc || q.Flow.DstIP != fuzzDst {
			t.Fatalf("decoded flow lost transport addresses: %+v", q.Flow)
		}
		again, err := DecodeQuery(EncodeQuery(q), fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("re-encoded query is undecodable: %v", err)
		}
		if again.Flow != q.Flow || !reflect.DeepEqual(again.Keys, q.Keys) {
			t.Fatalf("query round trip diverged:\n  first:  %+v\n  second: %+v", q, again)
		}
	})
}

// FuzzDecodeResponse checks the response codec the same way, including the
// §2 section semantics (empty-line-delimited augmentation sections) and
// the Latest/Concat accessors PF+=2 indexes with.
func FuzzDecodeResponse(f *testing.F) {
	multi := NewResponse(flow.Five{})
	multi.Add(KeyName, "skype")
	multi.Add(KeyUserID, "alice")
	sec := multi.Augment("controller:branch")
	sec.Add("netpath", "branchB")
	sec.Add(KeyName, "skype-relay")
	for _, seed := range [][]byte{
		[]byte("6 234 80\n"),
		[]byte("6 234 80\nname: skype\nuserID: alice\n"),
		[]byte("6 234 80\nname: skype\n\nnetpath: branchB\n"),
		[]byte("17 1 2\n\nname: late\n"), // leading empty section
		EncodeResponse(multi),
		[]byte("6 234 80\nno-colon-line\n"), // malformed pair
		[]byte("6 234 80\n: novalue\n"),     // malformed: empty key
		[]byte(""),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeResponse(payload, fuzzSrc, fuzzDst)
		if err != nil {
			return
		}
		again, err := DecodeResponse(EncodeResponse(r), fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("re-encoded response is undecodable: %v", err)
		}
		if again.Flow != r.Flow || !reflect.DeepEqual(again.Sections, r.Sections) {
			t.Fatalf("response round trip diverged:\n  first:  %+v\n  second: %+v", r, again)
		}
		// The dictionary views must agree on every key however sections
		// were split, and Clone must be observationally identical.
		clone := r.Clone()
		for _, k := range r.Keys() {
			lv, lok := r.Latest(k)
			cv, cok := r.Concat(k)
			if !lok || !cok {
				t.Fatalf("key %q listed but not readable (latest %v concat %v)", k, lok, cok)
			}
			if gv, _ := clone.Latest(k); gv != lv {
				t.Fatalf("clone diverged on %q: %q vs %q", k, gv, lv)
			}
			_ = cv
		}
	})
}
