package wire

import (
	"reflect"
	"strings"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

var (
	fuzzSrc = netaddr.MustParseIP("10.0.0.1")
	fuzzDst = netaddr.MustParseIP("10.0.0.2")
)

// FuzzDecodeQuery checks the §3.2 query codec: any payload DecodeQuery
// accepts must re-encode and re-decode to the same query (decode∘encode is
// the identity on decoded values), and no input may panic the decoder.
func FuzzDecodeQuery(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("6 234 80\n"),
		[]byte("6 234 80\nname\nuserID\n"),
		[]byte("17 53 53\nos-patch\n\nversion\n"),
		EncodeQuery(Query{Keys: []string{KeyUserID, KeyName, KeyExeHash}}),
		[]byte("6 234\n"),       // malformed: short tuple line
		[]byte("x y z\nname\n"), // malformed: non-numeric tuple
		[]byte(""),
		[]byte("\n\n\n"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		q, err := DecodeQuery(payload, fuzzSrc, fuzzDst)
		if err != nil {
			return
		}
		if q.Flow.SrcIP != fuzzSrc || q.Flow.DstIP != fuzzDst {
			t.Fatalf("decoded flow lost transport addresses: %+v", q.Flow)
		}
		again, err := DecodeQuery(EncodeQuery(q), fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("re-encoded query is undecodable: %v", err)
		}
		if again.Flow != q.Flow || !reflect.DeepEqual(again.Keys, q.Keys) {
			t.Fatalf("query round trip diverged:\n  first:  %+v\n  second: %+v", q, again)
		}
	})
}

// FuzzDecodeResponse checks the response codec the same way, including the
// §2 section semantics (empty-line-delimited augmentation sections) and
// the Latest/Concat accessors PF+=2 indexes with.
func FuzzDecodeResponse(f *testing.F) {
	multi := NewResponse(flow.Five{})
	multi.Add(KeyName, "skype")
	multi.Add(KeyUserID, "alice")
	sec := multi.Augment("controller:branch")
	sec.Add("netpath", "branchB")
	sec.Add(KeyName, "skype-relay")
	for _, seed := range [][]byte{
		[]byte("6 234 80\n"),
		[]byte("6 234 80\nname: skype\nuserID: alice\n"),
		[]byte("6 234 80\nname: skype\n\nnetpath: branchB\n"),
		[]byte("17 1 2\n\nname: late\n"), // leading empty section
		EncodeResponse(multi),
		[]byte("6 234 80\nno-colon-line\n"), // malformed pair
		[]byte("6 234 80\n: novalue\n"),     // malformed: empty key
		[]byte(""),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeResponse(payload, fuzzSrc, fuzzDst)
		if err != nil {
			return
		}
		again, err := DecodeResponse(EncodeResponse(r), fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("re-encoded response is undecodable: %v", err)
		}
		if again.Flow != r.Flow || !reflect.DeepEqual(again.Sections, r.Sections) {
			t.Fatalf("response round trip diverged:\n  first:  %+v\n  second: %+v", r, again)
		}
		// The dictionary views must agree on every key however sections
		// were split, and Clone must be observationally identical.
		clone := r.Clone()
		for _, k := range r.Keys() {
			lv, lok := r.Latest(k)
			cv, cok := r.Concat(k)
			if !lok || !cok {
				t.Fatalf("key %q listed but not readable (latest %v concat %v)", k, lok, cok)
			}
			if gv, _ := clone.Latest(k); gv != lv {
				t.Fatalf("clone diverged on %q: %q vs %q", k, gv, lv)
			}
			_ = cv
		}
	})
}

// FuzzDecodeHello checks the update codec with the hello path's
// credential extension: the `cred:`/`csig:` lines are attacker-controlled
// input on a public socket, so no payload may panic the decoder, and one
// encode/decode round trip must be a fixed point — the form the pool
// verifies signatures over is the form that survives relay. (Exact
// first-decode identity is asserted unless a value carried an interior
// CR, which sanitizeValue canonicalizes to a space on re-encode.)
func FuzzDecodeHello(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("0 0 0\nserial: 7\nhello: 1\n"),
		[]byte("0 0 0\nserial: 7\nhello: 1\ncred: v1 host=10.0.0.1 keys=* exp=1767225600 pub=AAAA sig=BBBB\ncsig: CCCC\n"),
		EncodeUpdate(Update{Serial: 1, Hello: true, Cred: "v1 host=10.0.0.1 keys=name,user-id exp=2 pub=x sig=y", CredSig: "z"}),
		EncodeUpdate(Update{Flow: flow.Five{Proto: 6, SrcPort: 234, DstPort: 80}, Serial: 3, Key: KeyName, Old: "skype", New: ""}),
		[]byte("0 0 0\nserial: 7\ncred: \n"),           // empty blob collapses to absent
		[]byte("0 0 0\nserial: 7\ncsig: a b c\n"),      // spaces inside values survive
		[]byte("0 0 0\nhello: 1\ncred: x\n"),           // malformed: no serial
		[]byte("0 0 0\nserial: 9\ncred no-colon\n"),    // malformed line
		[]byte("0 0 0\nserial: 1\nunknown: ignored\n"), // unknown lines skipped
		[]byte(""),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		u, err := DecodeUpdate(payload, fuzzSrc, fuzzDst)
		if err != nil {
			return
		}
		again, err := DecodeUpdate(EncodeUpdate(u), fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("re-encoded update is undecodable: %v", err)
		}
		crFree := !strings.ContainsRune(u.Key+u.Old+u.New+u.Cred+u.CredSig, '\r')
		if crFree && again != u {
			t.Fatalf("update round trip diverged:\n  first:  %+v\n  second: %+v", u, again)
		}
		third, err := DecodeUpdate(EncodeUpdate(again), fuzzSrc, fuzzDst)
		if err != nil {
			t.Fatalf("second re-encode is undecodable: %v", err)
		}
		if third != again {
			t.Fatalf("round trip has no fixed point:\n  second: %+v\n  third:  %+v", again, third)
		}
	})
}
