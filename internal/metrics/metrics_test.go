package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*time.Millisecond || mean > 51*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if h.Quantile(0) != time.Millisecond {
		t.Errorf("p0 = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 100*time.Millisecond {
		t.Errorf("p100 = %v", h.Quantile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	if !strings.Contains(h.Summary(), "n=0") {
		t.Errorf("summary = %q", h.Summary())
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Errorf("count = %d", h.Count())
	}
	if n := len(h.retained()); n != 64 {
		t.Errorf("retained samples = %d, want 64", n)
	}
	// Quantiles remain in range.
	if q := h.Quantile(0.5); q < 0 || q > 10000*time.Microsecond {
		t.Errorf("p50 = %v out of range", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			h.Observe(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		h.Observe(2 * time.Millisecond)
	}
	<-done
	if h.Count() != 2000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("allow", 3)
	c.Add("deny", 1)
	c.Add("allow", 2)
	if c.Get("allow") != 5 || c.Get("deny") != 1 || c.Get("other") != 0 {
		t.Errorf("counter values wrong: %v", c.Snapshot())
	}
	if s := c.String(); s != "allow=5 deny=1" {
		t.Errorf("String = %q", s)
	}
	snap := c.Snapshot()
	snap["allow"] = 99
	if c.Get("allow") != 5 {
		t.Error("snapshot aliases live map")
	}
}

func TestSetupBreakdownTotalUsesSlowerQuery(t *testing.T) {
	b := SetupBreakdown{
		Punt:     1 * time.Millisecond,
		QuerySrc: 5 * time.Millisecond,
		QueryDst: 9 * time.Millisecond,
		Eval:     100 * time.Microsecond,
		Install:  1 * time.Millisecond,
	}
	want := 1*time.Millisecond + 9*time.Millisecond + 100*time.Microsecond + 1*time.Millisecond
	if b.Total() != want {
		t.Errorf("total = %v, want %v", b.Total(), want)
	}
}

func TestSetupRecorder(t *testing.T) {
	r := NewSetupRecorder()
	r.Observe(SetupBreakdown{Punt: time.Millisecond, QuerySrc: 2 * time.Millisecond})
	r.Observe(SetupBreakdown{Punt: 3 * time.Millisecond, QueryDst: 4 * time.Millisecond})
	if r.Punt.Count() != 2 || r.Total.Count() != 2 {
		t.Error("recorder did not observe all stages")
	}
	if r.Total.Max() != 7*time.Millisecond {
		t.Errorf("total max = %v", r.Total.Max())
	}
}
