// Package metrics provides the counters and latency histograms the
// experiment harness reports: flow-setup latency breakdowns (the standard
// evaluation metric of the Ethane/NOX lineage the paper builds on),
// decision counts, and cache statistics.
//
// Everything here sits on the controller's packet-in hot path, so nothing
// takes a global lock: counters are atomics behind a sync.Map, and
// histograms are striped across per-stripe mutexes with stripe selection
// from a per-P cursor (sync.Pool), so concurrent writers rarely touch the
// same stripe.
package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// stripeCursor hands each P (roughly, each OS thread running goroutines) a
// private round-robin cursor for picking stripes. sync.Pool's fast path is
// per-P, so Get/Put almost never contend; the cursor's walk spreads a
// single P's writes across stripes too.
var stripeCursor = sync.Pool{New: func() any { return new(uint64) }}

func nextStripe(n int) int {
	c := stripeCursor.Get().(*uint64)
	*c++
	i := int(*c & uint64(n-1))
	stripeCursor.Put(c)
	return i
}

// histStripes is the histogram stripe count: enough to keep GOMAXPROCS
// writers apart, fixed per process, always a power of two.
var histStripes = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return n
}()

// histStripe is one lock domain of a Histogram.
type histStripe struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
	cap     int
	rng     uint64
}

func (s *histStripe) observe(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += d
	if d > s.max {
		s.max = d
	}
	if d < s.min {
		s.min = d
	}
	if len(s.samples) < s.cap {
		s.samples = append(s.samples, d)
		return
	}
	// xorshift64* reservoir replacement.
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	idx := s.rng % uint64(s.count)
	if idx < uint64(s.cap) {
		s.samples[idx] = d
	}
}

// Histogram records duration samples and reports quantiles. It keeps all
// samples up to a cap, then switches to uniform reservoir sampling, so
// quantiles stay meaningful on long runs without unbounded memory. Samples
// are striped across independently locked reservoirs; readers merge the
// stripes, writers touch exactly one.
type Histogram struct {
	stripes []histStripe
}

// NewHistogram creates a histogram retaining up to capSamples samples
// (default 4096 when 0).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 4096
	}
	n := histStripes
	if capSamples < n {
		n = 1
	}
	per, rem := capSamples/n, capSamples%n
	h := &Histogram{stripes: make([]histStripe, n)}
	for i := range h.stripes {
		sz := per
		if i < rem {
			sz++ // distribute the remainder so total capacity is exact
		}
		h.stripes[i] = histStripe{cap: sz, rng: 0x9e3779b97f4a7c15 + uint64(i)<<1, min: math.MaxInt64}
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.stripes[nextStripe(len(h.stripes))].observe(d)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	return n
}

// Mean returns the mean of all observations.
func (h *Histogram) Mean() time.Duration {
	var n int64
	var sum time.Duration
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		n += s.count
		sum += s.sum
		s.mu.Unlock()
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	var max time.Duration
	seen := false
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		if s.count > 0 {
			seen = true
			if s.max > max {
				max = s.max
			}
		}
		s.mu.Unlock()
	}
	if !seen {
		return 0
	}
	return max
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	min := time.Duration(math.MaxInt64)
	seen := false
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		if s.count > 0 {
			seen = true
			if s.min < min {
				min = s.min
			}
		}
		s.mu.Unlock()
	}
	if !seen {
		return 0
	}
	return min
}

// Sum returns the sum of all observations (exact, not sampled: stripes
// accumulate the running sum even after the reservoir starts evicting).
func (h *Histogram) Sum() time.Duration {
	var sum time.Duration
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		sum += s.sum
		s.mu.Unlock()
	}
	return sum
}

// Samples returns a copy of the retained (reservoir) samples, unordered.
// Exporters bucket these; the retained set is a uniform sample of the full
// stream once the reservoir is saturated, so bucket counts derived from it
// understate true counts but never exceed Count().
func (h *Histogram) Samples() []time.Duration {
	return h.retained()
}

// retained returns a merged copy of every stripe's samples.
func (h *Histogram) retained() []time.Duration {
	var out []time.Duration
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		out = append(out, s.samples...)
		s.mu.Unlock()
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	sorted := h.retained()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary renders count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Counter is a named monotonically increasing counter set. Increments are
// a sync.Map load plus one atomic add — no shared lock, so hot-path
// counters scale with cores instead of convoying.
type Counter struct {
	m sync.Map // string -> *atomic.Int64
}

// NewCounter creates an empty counter set.
func NewCounter() *Counter {
	return &Counter{}
}

func (c *Counter) cell(name string) *atomic.Int64 {
	if v, ok := c.m.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := c.m.LoadOrStore(name, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// Add increments name by delta.
func (c *Counter) Add(name string, delta int64) {
	c.cell(name).Add(delta)
}

// Cell returns the addend cell behind name, for callers hot enough that
// even the lock-free map lookup per Add is measurable. The cell may be
// retained for the life of the Counter and incremented directly; it is the
// same cell Add and Get use, so reads stay coherent.
func (c *Counter) Cell(name string) *atomic.Int64 {
	return c.cell(name)
}

// Get returns the value of name.
func (c *Counter) Get(name string) int64 {
	if v, ok := c.m.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// Snapshot returns a copy of all counters.
func (c *Counter) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	c.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// String renders the counters sorted by name.
func (c *Counter) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}

// Gauge is an instantaneous level — in-flight queries, open connections —
// as opposed to Counter's monotone totals. It is a bare atomic so Inc/Dec
// pairs are cheap enough for per-request bracketing on hot paths.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the gauge by delta (negative to lower).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Get returns the current level.
func (g *Gauge) Get() int64 { return g.v.Load() }

// SetupBreakdown decomposes one flow-setup into the stages of Figure 1:
// punt to controller (2), ident++ queries to both ends (3), policy
// evaluation, and entry installation along the path (4).
type SetupBreakdown struct {
	Punt     time.Duration // switch -> controller
	QuerySrc time.Duration // ident++ RTT to source daemon
	QueryDst time.Duration // ident++ RTT to destination daemon
	Eval     time.Duration // PF+=2 evaluation
	Install  time.Duration // controller -> switches flow-mod
}

// Total returns the end-to-end setup latency. Queries to the two ends are
// issued concurrently (§2 queries "both the source and the destination"),
// so the slower of the two dominates.
func (b SetupBreakdown) Total() time.Duration {
	q := b.QuerySrc
	if b.QueryDst > q {
		q = b.QueryDst
	}
	return b.Punt + q + b.Eval + b.Install
}

// SetupRecorder aggregates breakdowns stage by stage.
type SetupRecorder struct {
	Punt, QuerySrc, QueryDst, Eval, Install, Total *Histogram
}

// NewSetupRecorder creates a recorder.
func NewSetupRecorder() *SetupRecorder {
	return &SetupRecorder{
		Punt:     NewHistogram(0),
		QuerySrc: NewHistogram(0),
		QueryDst: NewHistogram(0),
		Eval:     NewHistogram(0),
		Install:  NewHistogram(0),
		Total:    NewHistogram(0),
	}
}

// Observe records one breakdown.
func (r *SetupRecorder) Observe(b SetupBreakdown) {
	r.Punt.Observe(b.Punt)
	r.QuerySrc.Observe(b.QuerySrc)
	r.QueryDst.Observe(b.QueryDst)
	r.Eval.Observe(b.Eval)
	r.Install.Observe(b.Install)
	r.Total.Observe(b.Total())
}
