// Package metrics provides the counters and latency histograms the
// experiment harness reports: flow-setup latency breakdowns (the standard
// evaluation metric of the Ethane/NOX lineage the paper builds on),
// decision counts, and cache statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records duration samples and reports quantiles. It keeps all
// samples up to a cap, then switches to uniform reservoir sampling, so
// quantiles stay meaningful on long runs without unbounded memory.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
	cap     int
	rng     uint64
}

// NewHistogram creates a histogram retaining up to capSamples samples
// (default 4096 when 0).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 4096
	}
	return &Histogram{cap: capSamples, rng: 0x9e3779b97f4a7c15, min: math.MaxInt64}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.min = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// xorshift64* reservoir replacement.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	idx := h.rng % uint64(h.count)
	if idx < uint64(h.cap) {
		h.samples[idx] = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of all observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary renders count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Counter is a named monotonically increasing counter set.
type Counter struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounter creates an empty counter set.
func NewCounter() *Counter {
	return &Counter{m: make(map[string]int64)}
}

// Add increments name by delta.
func (c *Counter) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] += delta
}

// Get returns the value of name.
func (c *Counter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by name.
func (c *Counter) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}

// SetupBreakdown decomposes one flow-setup into the stages of Figure 1:
// punt to controller (2), ident++ queries to both ends (3), policy
// evaluation, and entry installation along the path (4).
type SetupBreakdown struct {
	Punt     time.Duration // switch -> controller
	QuerySrc time.Duration // ident++ RTT to source daemon
	QueryDst time.Duration // ident++ RTT to destination daemon
	Eval     time.Duration // PF+=2 evaluation
	Install  time.Duration // controller -> switches flow-mod
}

// Total returns the end-to-end setup latency. Queries to the two ends are
// issued concurrently (§2 queries "both the source and the destination"),
// so the slower of the two dominates.
func (b SetupBreakdown) Total() time.Duration {
	q := b.QuerySrc
	if b.QueryDst > q {
		q = b.QueryDst
	}
	return b.Punt + q + b.Eval + b.Install
}

// SetupRecorder aggregates breakdowns stage by stage.
type SetupRecorder struct {
	Punt, QuerySrc, QueryDst, Eval, Install, Total *Histogram
}

// NewSetupRecorder creates a recorder.
func NewSetupRecorder() *SetupRecorder {
	return &SetupRecorder{
		Punt:     NewHistogram(0),
		QuerySrc: NewHistogram(0),
		QueryDst: NewHistogram(0),
		Eval:     NewHistogram(0),
		Install:  NewHistogram(0),
		Total:    NewHistogram(0),
	}
}

// Observe records one breakdown.
func (r *SetupRecorder) Observe(b SetupBreakdown) {
	r.Punt.Observe(b.Punt)
	r.QuerySrc.Observe(b.QuerySrc)
	r.QueryDst.Observe(b.QueryDst)
	r.Eval.Observe(b.Eval)
	r.Install.Observe(b.Install)
	r.Total.Observe(b.Total())
}
