package core

import (
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/trace"
	"identxx/internal/wire"
)

// decisionScratch is the reusable working set of one HandleEvent decision:
// the latency breakdown, the flow-mod batches installPath builds, the path
// an ablation verdict resolved (reused by the waiter resolver), the
// two-ended query fan-out state, and — since the asynchronous query plane —
// the decision's continuation context (shard, datapath, event), because a
// cache-missing decision now survives its originating goroutine and is
// finished by whichever query-plane completion arrives last. One scratch is
// checked out of a pool per packet-in and returned when the decision
// completes, so the steady-state decision path allocates nothing — the
// budget BenchmarkM8_AllocProfile and TestAllocBudget enforce. (The audit
// entry is not here: it is a value type handed to AuditLog.Record by copy
// and never escapes the stack.)
type decisionScratch struct {
	bd   metrics.SetupBreakdown
	dps  []openflow.Datapath
	mods []openflow.FlowMod
	hops []Hop

	// pathIDs collects the datapath IDs this decision installed entries on
	// (forward and reverse, deduplicated), for the revocation plane's
	// dependency registration: teardown later deletes along exactly this
	// path. Only populated when revocation is enabled.
	pathIDs []uint64

	// revSeq is the flow's shard revocation sequence captured when the
	// decision claimed the flow; finishDecision re-checks it before
	// publishing (see shard.rev).
	revSeq uint64

	// cookie, when non-zero, overrides the exact per-flow cookie on
	// installed entries: megaflow member installs carry their class's
	// cookie so one wildcard delete tears the whole class down.
	cookie uint64

	// srcKeys/dstKeys are the per-flow key-hint scratch the pre-pass
	// appends into: the program's per-rule key sets for the rules this
	// flow could still match, per end. The strings are interned in the
	// compiled program; only the slice capacity belongs to the scratch.
	srcKeys, dstKeys []string

	// Continuation context: everything finishDecision needs, captured
	// before the decision suspends on the query plane.
	sh   *shard
	dp   openflow.Datapath
	ev   openflow.PacketIn
	five flow.Five

	// installWG pairs the pooled flow-mod fan-out (applyMods) without a
	// per-install allocation.
	installWG sync.WaitGroup

	// tb is the decision's flight-recorder buffer (internal/trace); nil
	// when tracing is disabled. Owned by the recorder's pool, not the
	// scratch: finishDecision hands it back via Recorder.Finish before the
	// scratch is released.
	tb *trace.Buffer

	gather gatherState
}

var scratchPool sync.Pool

// The pool's New is bound in init: the prebound method values reference
// finishDecision, which releases back into the pool — a package-level
// initializer would be an initialization cycle.
func init() {
	scratchPool.New = func() any {
		s := new(decisionScratch)
		s.gather.owner = s
		// Bind the entry points once: `go fn()` / QueryAsync on a prebound
		// func value runs without wrapping a fresh closure per decision.
		s.gather.dstFn = s.gather.runDst
		s.gather.srcDoneFn = s.gather.srcDone
		s.gather.dstDoneFn = s.gather.dstDone
		return s
	}
}

func acquireScratch() *decisionScratch {
	return scratchPool.Get().(*decisionScratch)
}

// release clears everything that points outside the scratch — datapaths,
// responses, config snapshots, the packet-in's frame — so a pooled scratch
// never extends their lifetime, then returns it to the pool. Slice capacity
// is kept.
func (s *decisionScratch) release() {
	s.bd = metrics.SetupBreakdown{}
	s.hops = nil // owned by the topology, not scratch capacity
	for i := range s.dps {
		s.dps[i] = nil
	}
	s.dps = s.dps[:0]
	for i := range s.mods {
		s.mods[i] = openflow.FlowMod{}
	}
	s.mods = s.mods[:0]
	s.pathIDs = s.pathIDs[:0]
	s.revSeq = 0
	s.cookie = 0
	s.sh = nil
	s.dp = nil
	s.ev = openflow.PacketIn{}
	s.five = flow.Five{}
	// Truncate the hint scratch but do not zero it: a transport may have
	// captured the slice (wire.Query borrows Keys for the duration of the
	// call, and test doubles legitimately record it), and the residual
	// elements are short interned key strings — retaining them in pooled
	// capacity costs bytes, never correctness.
	s.srcKeys = s.srcKeys[:0]
	s.dstKeys = s.dstKeys[:0]
	s.tb = nil // recorder-owned; Finish already returned it to its pool
	s.gather.reset()
	scratchPool.Put(s)
}

// gatherState carries one decision's concurrent two-ended query (§2 step 3:
// the controller queries "both the source and the destination"). On the
// blocking path the source query runs on the deciding goroutine and the
// destination query on a goroutine started through the prebound dstFn, with
// wg pairing the two. On the asynchronous path both ends are enqueued with
// the query plane through the prebound completion funcs, pending counts the
// outstanding ends, and the completion that drops it to zero finishes the
// decision on its own goroutine.
type gatherState struct {
	wg sync.WaitGroup
	c  *Controller
	st *ctlState
	// qs/qd are the two endpoint queries. They differ only in key hints:
	// each end is asked for the keys the per-rule analysis says some
	// still-matching rule could read from that end.
	qs, qd wire.Query

	src, dst                   *wire.Response
	qsrc, qdst                 time.Duration
	srcBuilt, dstBuilt         bool // response built by the controller (answer-on-behalf), not a daemon
	srcTransient, dstTransient bool // end lost to transport trouble; decision must not be cached
	fromCache                  bool // responses borrowed from the shard cache; do not re-store

	// pre is the header-only pre-pass verdict; when preDecided is set the
	// decision needed no endpoint information and finishDecision installs
	// it without evaluating again.
	pre        pf.Decision
	preDecided bool

	// mega is the megaflow entry a class hit resolved to; finishDecision
	// takes its verdict and publishes the member's installed paths to it.
	mega *megaEntry

	// cacheLife is the exact-cache entry's view refcount, retained by the
	// hit lookup; released when the borrowing decision finishes.
	cacheLife *entryLife

	owner   *decisionScratch
	pending atomic.Int32 // outstanding async ends; 2 → 0

	// selfTraced means the controller records the query-plane span events
	// itself (blocking transports and async transports without a traced
	// face). When the transport implements TracedAsyncQueryTransport the
	// engine records richer events (coalescing, breaker, attempts) and this
	// stays false so nothing is double-recorded.
	selfTraced bool

	dstFn                func()
	srcDoneFn, dstDoneFn func(*wire.Response, time.Duration, error)
}

func (g *gatherState) runDst() {
	resp, rtt, err := g.c.transport.Query(g.qd.Flow.DstIP, g.qd)
	g.recQueryDone(trace.FlagDst, rtt, err)
	g.dst, g.qdst, g.dstBuilt, g.dstTransient = g.c.resolveResponse(g.st, g.qd.Flow, g.qd.Flow.DstIP, resp, rtt, err)
	g.wg.Done()
}

// recQueryDone records one endpoint query's completion when the controller
// is the one tracing the query plane (see selfTraced).
func (g *gatherState) recQueryDone(epFlag uint16, rtt time.Duration, err error) {
	if !g.selfTraced {
		return
	}
	if err != nil {
		epFlag |= trace.FlagErr
	}
	g.owner.tb.Rec(trace.StageQueryDone, epFlag, int64(rtt))
}

// srcDone and dstDone are the query plane's completion entry points. The
// response they receive is a read-only borrow shared with any coalesced
// waiters (see internal/query's borrow contract); resolveResponse never
// mutates it, and downstream it is either cached or dropped, never pooled.
func (g *gatherState) srcDone(resp *wire.Response, rtt time.Duration, err error) {
	g.recQueryDone(trace.FlagSrc, rtt, err)
	g.src, g.qsrc, g.srcBuilt, g.srcTransient = g.c.resolveResponse(g.st, g.qs.Flow, g.qs.Flow.SrcIP, resp, rtt, err)
	if g.pending.Add(-1) == 0 {
		g.c.finishDecision(g.owner)
	}
}

func (g *gatherState) dstDone(resp *wire.Response, rtt time.Duration, err error) {
	g.recQueryDone(trace.FlagDst, rtt, err)
	g.dst, g.qdst, g.dstBuilt, g.dstTransient = g.c.resolveResponse(g.st, g.qd.Flow, g.qd.Flow.DstIP, resp, rtt, err)
	if g.pending.Add(-1) == 0 {
		g.c.finishDecision(g.owner)
	}
}

func (g *gatherState) reset() {
	g.c = nil
	g.st = nil
	g.qs, g.qd = wire.Query{}, wire.Query{}
	g.src, g.dst = nil, nil
	g.qsrc, g.qdst = 0, 0
	g.srcBuilt, g.dstBuilt = false, false
	g.srcTransient, g.dstTransient = false, false
	g.fromCache = false
	g.pre, g.preDecided = pf.Decision{}, false
	g.mega = nil
	g.cacheLife = nil
	g.pending.Store(0)
	g.selfTraced = false
}

// releaseBuilt returns the controller-built response views to the pf pool
// once the decision that borrowed them is finished. Responses stored into
// the shard cache are owned by the cache (finishDecision clears the built
// flags when it stores), and daemon-returned responses are owned by the
// transport or the garbage collector; neither is touched here.
func (g *gatherState) releaseBuilt() {
	if g.srcBuilt {
		pf.ReleaseResponse(g.src)
		g.srcBuilt = false
	}
	if g.dstBuilt {
		pf.ReleaseResponse(g.dst)
		g.dstBuilt = false
	}
	if g.cacheLife != nil {
		// End the borrow the cache-hit lookup retained; if the entry was
		// evicted while this decision ran, this is the release that pools
		// its views.
		g.cacheLife.release()
		g.cacheLife = nil
	}
}
