package core

import (
	"sync"
	"time"

	"identxx/internal/metrics"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// decisionScratch is the reusable working set of one HandleEvent decision:
// the latency breakdown, the flow-mod batches installPath builds, the path
// an ablation verdict resolved (reused by the waiter resolver), and the
// two-ended query fan-out state. One scratch is checked out of a pool per
// packet-in and returned when the decision completes, so the steady-state
// decision path allocates nothing — the budget BenchmarkM8_AllocProfile
// and TestAllocBudget enforce. (The audit entry is not here: it is a value
// type handed to AuditLog.Record by copy and never escapes the stack.)
type decisionScratch struct {
	bd     metrics.SetupBreakdown
	dps    []openflow.Datapath
	mods   []openflow.FlowMod
	hops   []Hop
	gather gatherState
}

var scratchPool = sync.Pool{New: func() any {
	s := new(decisionScratch)
	// Bind the dst-query entry point once: `go fn()` on a prebound func
	// value starts the goroutine without wrapping a fresh closure per call.
	s.gather.dstFn = s.gather.runDst
	return s
}}

func acquireScratch() *decisionScratch {
	return scratchPool.Get().(*decisionScratch)
}

// release clears everything that points outside the scratch — datapaths,
// responses, config snapshots — so a pooled scratch never extends their
// lifetime, then returns it to the pool. Slice capacity is kept.
func (s *decisionScratch) release() {
	s.bd = metrics.SetupBreakdown{}
	s.hops = nil // owned by the topology, not scratch capacity
	for i := range s.dps {
		s.dps[i] = nil
	}
	s.dps = s.dps[:0]
	for i := range s.mods {
		s.mods[i] = openflow.FlowMod{}
	}
	s.mods = s.mods[:0]
	s.gather.reset()
	scratchPool.Put(s)
}

// gatherState carries one decision's concurrent two-ended query (§2 step 3:
// the controller queries "both the source and the destination"). The source
// query runs on the deciding goroutine; the destination query runs on a
// goroutine started through the prebound dstFn, with wg pairing the two.
type gatherState struct {
	wg sync.WaitGroup
	c  *Controller
	st *ctlState
	q  wire.Query

	src, dst           *wire.Response
	qsrc, qdst         time.Duration
	srcBuilt, dstBuilt bool // response built by the controller (answer-on-behalf), not a daemon

	dstFn func()
}

func (g *gatherState) runDst() {
	g.dst, g.qdst, g.dstBuilt = g.c.queryOne(g.st, g.q.Flow.DstIP, g.q)
	g.wg.Done()
}

func (g *gatherState) reset() {
	g.c = nil
	g.st = nil
	g.q = wire.Query{}
	g.src, g.dst = nil, nil
	g.qsrc, g.qdst = 0, 0
	g.srcBuilt, g.dstBuilt = false, false
}

// releaseBuilt returns the controller-built response views to the pf pool
// once the decision that borrowed them is finished. Responses stored into
// the shard cache are owned by the cache (gatherResponses clears the built
// flags when it stores), and daemon-returned responses are owned by the
// transport; neither is touched here.
func (g *gatherState) releaseBuilt() {
	if g.srcBuilt {
		pf.ReleaseResponse(g.src)
		g.srcBuilt = false
	}
	if g.dstBuilt {
		pf.ReleaseResponse(g.dst)
		g.dstBuilt = false
	}
}
