package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/pf"
)

// AuditEntry records one flow decision. The audit trail is what lets an
// administrator "override, audit, and revoke the delegation when necessary"
// (§7): every decision names the deciding rule and carries the evaluation
// diagnostics.
type AuditEntry struct {
	Time      time.Time
	Flow      flow.Five
	Action    pf.Action
	Rule      string
	Matched   bool
	KeepState bool
	Diags     []string
	Setup     metrics.SetupBreakdown
}

func (e AuditEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s -> %s (rule: %s)",
		e.Time.Format(time.RFC3339), e.Flow, e.Action, e.Rule)
	if len(e.Diags) > 0 {
		fmt.Fprintf(&b, " diags=%d", len(e.Diags))
	}
	return b.String()
}

// AuditLog is a bounded ring buffer of decisions.
type AuditLog struct {
	mu      sync.Mutex
	entries []AuditEntry
	next    int
	full    bool
	total   int64
}

// NewAuditLog creates a log holding up to capEntries (default 4096).
func NewAuditLog(capEntries int) *AuditLog {
	if capEntries <= 0 {
		capEntries = 4096
	}
	return &AuditLog{entries: make([]AuditEntry, capEntries)}
}

// Record appends an entry.
func (l *AuditLog) Record(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = e
	l.next++
	l.total++
	if l.next == len(l.entries) {
		l.next = 0
		l.full = true
	}
}

// Total returns the number of entries ever recorded.
func (l *AuditLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries, oldest first.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]AuditEntry, l.next)
		copy(out, l.entries[:l.next])
		return out
	}
	out := make([]AuditEntry, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Denials returns the retained entries that denied a flow.
func (l *AuditLog) Denials() []AuditEntry {
	var out []AuditEntry
	for _, e := range l.Entries() {
		if e.Action == pf.Block {
			out = append(out, e)
		}
	}
	return out
}
