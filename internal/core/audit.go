package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/pf"
)

// AuditEntry records one flow decision. The audit trail is what lets an
// administrator "override, audit, and revoke the delegation when necessary"
// (§7): every decision names the deciding rule and carries the evaluation
// diagnostics.
type AuditEntry struct {
	Time      time.Time
	Flow      flow.Five
	Action    pf.Action
	Rule      string
	Matched   bool
	KeepState bool
	Diags     []string
	Setup     metrics.SetupBreakdown

	// Revoked marks a revocation-plane teardown record: not a flow-setup
	// decision but the live withdrawal of one (Rule carries the reason).
	Revoked bool

	// seq totally orders entries across stripes; assigned by Record.
	seq int64
}

// Seq returns the entry's global sequence number (1-based, assigned by
// Record); exported for streaming sinks that need a stable cursor.
func (e AuditEntry) Seq() int64 { return e.seq }

func (e AuditEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s -> %s (rule: %s)",
		e.Time.Format(time.RFC3339), e.Flow, e.Action, e.Rule)
	if len(e.Diags) > 0 {
		fmt.Fprintf(&b, " diags=%d", len(e.Diags))
	}
	return b.String()
}

// auditStripe is one independently locked ring buffer.
type auditStripe struct {
	mu      sync.Mutex
	entries []AuditEntry
	next    int
	full    bool
}

func (s *auditStripe) record(e AuditEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[s.next] = e
	s.next++
	if s.next == len(s.entries) {
		s.next = 0
		s.full = true
	}
}

func (s *auditStripe) retained() []AuditEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]AuditEntry, s.next)
		copy(out, s.entries[:s.next])
		return out
	}
	out := make([]AuditEntry, 0, len(s.entries))
	out = append(out, s.entries[s.next:]...)
	out = append(out, s.entries[:s.next]...)
	return out
}

// AuditLog is a bounded ring buffer of decisions. Internally it is striped
// across independently locked rings so Record — which runs on every flow
// decision — never serializes concurrent decisions behind one lock; a
// global sequence number restores total order on read and doubles as the
// total-recorded count.
type AuditLog struct {
	stripes []auditStripe
	seq     atomic.Int64

	// stream is the optional live tap (SetStream): a decision-path-safe
	// callback invoked once per recorded entry, after the ring write. It is
	// an atomic pointer so the common case — no sink attached — costs one
	// load per Record, and attaching costs no lock anywhere.
	stream atomic.Pointer[func(AuditEntry)]
}

// auditStripes is fixed: enough to keep concurrent deciders apart without
// fragmenting small logs.
const auditStripes = 8

// NewAuditLog creates a log holding up to capEntries (default 4096).
func NewAuditLog(capEntries int) *AuditLog {
	if capEntries <= 0 {
		capEntries = 4096
	}
	n := auditStripes
	if capEntries < n {
		n = 1
	}
	per, rem := capEntries/n, capEntries%n
	l := &AuditLog{stripes: make([]auditStripe, n)}
	for i := range l.stripes {
		size := per
		if i < rem {
			size++ // distribute the remainder so capacity is exact
		}
		l.stripes[i].entries = make([]AuditEntry, size)
	}
	return l
}

// Record appends an entry. Stripes are picked round-robin off the global
// sequence number, so retained capacity stays ~capEntries even when one
// flow dominates the traffic (hash striping would pin such a workload to
// one ring and quietly shrink retention 8x).
func (l *AuditLog) Record(e AuditEntry) {
	e.seq = l.seq.Add(1)
	l.stripes[e.seq%int64(len(l.stripes))].record(e)
	if fn := l.stream.Load(); fn != nil {
		(*fn)(e)
	}
}

// SetStream attaches (or with nil detaches) a live tap invoked once per
// recorded entry with the sequence number already assigned. Record runs on
// the decision path, so fn MUST NOT block: sinks buffer and drop (see
// internal/telemetry.AuditSink), they do not apply backpressure here.
func (l *AuditLog) SetStream(fn func(AuditEntry)) {
	if fn == nil {
		l.stream.Store(nil)
		return
	}
	l.stream.Store(&fn)
}

// Total returns the number of entries ever recorded.
func (l *AuditLog) Total() int64 {
	return l.seq.Load()
}

// Entries returns the retained entries, oldest first.
func (l *AuditLog) Entries() []AuditEntry {
	var out []AuditEntry
	for i := range l.stripes {
		out = append(out, l.stripes[i].retained()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Denials returns the retained entries that denied a flow at setup.
// Revocation records are not denials — the flow was admitted, then
// withdrawn — so they are excluded; see Revocations.
func (l *AuditLog) Denials() []AuditEntry {
	var out []AuditEntry
	for _, e := range l.Entries() {
		if e.Action == pf.Block && !e.Revoked {
			out = append(out, e)
		}
	}
	return out
}

// Revocations returns the retained revocation-plane teardown records.
func (l *AuditLog) Revocations() []AuditEntry {
	var out []AuditEntry
	for _, e := range l.Entries() {
		if e.Revoked {
			out = append(out, e)
		}
	}
	return out
}

// RuleCount aggregates the retained audit entries that named one policy
// rule: how often it decided, how many of those decisions denied, and how
// many were revocation teardowns. This is the per-policy-rule drill-down
// behind `identctl admin rules` — counts cover the audit ring's retention
// window, not process lifetime.
type RuleCount struct {
	Rule                   string
	Total, Denied, Revoked int64
}

// RuleCounts aggregates the retained entries by deciding rule, sorted by
// descending Total then rule string (deterministic for the admin protocol).
func (l *AuditLog) RuleCounts() []RuleCount {
	agg := make(map[string]*RuleCount)
	for _, e := range l.Entries() {
		rc := agg[e.Rule]
		if rc == nil {
			rc = &RuleCount{Rule: e.Rule}
			agg[e.Rule] = rc
		}
		rc.Total++
		if e.Revoked {
			rc.Revoked++
		} else if e.Action == pf.Block {
			rc.Denied++
		}
	}
	out := make([]RuleCount, 0, len(agg))
	for _, rc := range agg {
		out = append(out, *rc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}
