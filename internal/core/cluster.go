package core

import (
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/wire"
)

// This file is the controller's side of multi-replica operation
// (internal/cluster): the takeover sweep that reclaims switch state after
// an ownership change, and the replace-form config setters snapshot
// replication needs to be idempotent.

// FlowEnumerator is the optional Datapath capability the takeover sweep
// uses: switches that can list their flow-granularity entries. The
// in-process openflow.Switch implements it; remote datapaths do not, and
// their orphaned entries age out by idle timeout instead of being swept.
type FlowEnumerator interface {
	FlowTuples(dst []flow.Five) []flow.Five
}

// TakeoverSweep deletes, at every enumerable datapath, the entries of
// flows that owned() claims for this replica but that this controller
// holds no decision state for — no response-cache entry and no
// revocation-index registration in either direction. After a cluster ring
// rebuild those are exactly the entries installed by a replica that no
// longer owns the flow (typically a dead one): left alone they would keep
// forwarding under the departed owner's verdict, unreachable by this
// replica's revocation plane. Deleting them makes the flow's next packet
// punt here and re-decide under current endpoint state — the cluster's
// "failover = resubscribe" invariant. Returns the number of entries
// deleted.
//
// Deletes are issued without a cookie: replicas derive flow-mod cookies
// from a per-process hash seed, so the departed owner's cookies are
// unknowable here, and the flows swept are by construction ones this
// replica has no competing entries for.
func (c *Controller) TakeoverSweep(owned func(flow.Five) bool) int {
	st := c.state.Load()
	var tuples []flow.Five
	swept := 0
	for _, dp := range st.datapaths {
		en, ok := dp.(FlowEnumerator)
		if !ok {
			continue
		}
		tuples = en.FlowTuples(tuples[:0])
		for _, f := range tuples {
			if !owned(f) {
				continue
			}
			rev := f.Reverse()
			if c.flows.shardFor(f).has(f) || c.flows.shardFor(rev).has(rev) {
				continue
			}
			if c.revoker != nil && (c.revoker.Registered(f) || c.revoker.Registered(rev)) {
				continue
			}
			if err := dp.Apply(openflow.FlowMod{
				Delete:   true,
				Match:    flow.FiveMatch(f),
				BufferID: openflow.BufferNone,
			}); err != nil {
				c.hot.installErrors.Add(1)
				continue
			}
			swept++
		}
	}
	return swept
}

// ReplaceAnswers swaps the entire answer-on-behalf table in one snapshot
// edit. AnswerForHost merges and so cannot be replayed; cluster snapshot
// application needs the replace form to converge on exactly the pushed
// state no matter how many times or in what order snapshots arrive.
func (c *Controller) ReplaceAnswers(answers map[netaddr.IP][]wire.KV) {
	c.mutate(func(st *ctlState) {
		m := make(map[netaddr.IP][]wire.KV, len(answers))
		for ip, kvs := range answers {
			m[ip] = append([]wire.KV(nil), kvs...)
		}
		st.answers = m
	})
}
