// Package core implements the ident++ controller, the paper's primary
// contribution (§3.4): an OpenFlow controller that, on a flow's first
// packet, queries the ident++ daemons at both ends for additional
// information, evaluates the administrator's PF+=2 policy over the flow's
// 5-tuple plus the returned key-value dictionaries, and caches the verdict
// as flow entries along the path (Figure 1). It also implements the
// interception roles of §3.4: answering queries on behalf of hosts and
// augmenting responses that transit its network.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// ErrNoDaemon is returned by a QueryTransport when the target host does not
// run an ident++ daemon — the §4 "Incremental Benefit" case. The controller
// proceeds with a nil response (or its own answer-on-behalf data) and lets
// the policy fail closed or open as written.
var ErrNoDaemon = errors.New("core: host has no ident++ daemon")

// QueryTransport delivers an ident++ query to a host's daemon and returns
// its response plus the round-trip latency (virtual in simulation, wall on
// TCP).
type QueryTransport interface {
	Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error)
}

// Hop is one switch traversal on a flow's path.
type Hop struct {
	Datapath uint64
	OutPort  uint16
}

// Topology answers path queries so the controller can "insert entries in
// switches across the network preemptively" (§3.1).
type Topology interface {
	Path(src, dst netaddr.IP) ([]Hop, error)
}

// LatencyModel supplies the control-channel latencies the controller cannot
// observe itself; the simulator implements it with its virtual link delays.
// A nil model contributes zero punt/install time to breakdowns.
type LatencyModel interface {
	PuntLatency(datapath uint64) time.Duration
	InstallLatency(datapath uint64) time.Duration
}

// Config parameterizes a Controller.
type Config struct {
	Name      string
	Policy    *pf.Policy
	Transport QueryTransport
	Topology  Topology
	Latency   LatencyModel

	// QueryKeys overrides the key hints sent in queries; when nil the
	// controller derives them from the policy's referenced keys.
	QueryKeys []string

	// IdleTimeout/HardTimeout are applied to installed entries. Defaults:
	// 60s idle, no hard timeout (Ethane-style).
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// InstallEntries caches verdicts in switch flow tables. Disabling it is
	// the M5 ablation: every packet of every flow punts to the controller.
	InstallEntries bool

	// ResponseCacheTTL caches (flow -> responses) so retransmissions during
	// slow installs and repeated short flows skip daemon queries. Zero
	// disables the cache.
	ResponseCacheTTL time.Duration

	// AuditCap bounds the audit ring buffer (default 4096).
	AuditCap int

	// Clock for cache expiry; defaults to time.Now.
	Clock func() time.Time
}

// Controller is an ident++-enabled OpenFlow controller.
type Controller struct {
	name      string
	transport QueryTransport
	topo      Topology
	latency   LatencyModel
	idle      time.Duration
	hard      time.Duration
	install   bool
	cacheTTL  time.Duration
	clock     func() time.Time

	mu        sync.RWMutex
	policy    *pf.Policy
	queryKeys []string
	datapaths map[uint64]openflow.Datapath
	answers   map[netaddr.IP][]wire.KV // answer-on-behalf data (§3.4, §4)
	augment   func(q wire.Query, resp *wire.Response)
	respCache map[flow.Five]cacheEntry
	pending   map[flow.Five]bool

	// Counters and latency recorder are exported for the harness.
	Counters *metrics.Counter
	Setup    *metrics.SetupRecorder
	Audit    *AuditLog
}

type cacheEntry struct {
	src, dst *wire.Response
	expires  time.Time
}

// New creates a controller. Config.Policy, Transport and Topology are
// required; the rest default sensibly.
func New(cfg Config) *Controller {
	if cfg.Policy == nil {
		panic("core: Config.Policy is required")
	}
	if cfg.Transport == nil {
		panic("core: Config.Transport is required")
	}
	if cfg.Topology == nil {
		panic("core: Config.Topology is required")
	}
	idle := cfg.IdleTimeout
	if idle == 0 {
		idle = 60 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	keys := cfg.QueryKeys
	if keys == nil {
		keys = cfg.Policy.ReferencedKeys()
	}
	c := &Controller{
		name:      cfg.Name,
		transport: cfg.Transport,
		topo:      cfg.Topology,
		latency:   cfg.Latency,
		idle:      idle,
		hard:      cfg.HardTimeout,
		install:   cfg.InstallEntries,
		cacheTTL:  cfg.ResponseCacheTTL,
		clock:     clock,
		policy:    cfg.Policy,
		queryKeys: keys,
		datapaths: make(map[uint64]openflow.Datapath),
		answers:   make(map[netaddr.IP][]wire.KV),
		respCache: make(map[flow.Five]cacheEntry),
		pending:   make(map[flow.Five]bool),
		Counters:  metrics.NewCounter(),
		Setup:     metrics.NewSetupRecorder(),
		Audit:     NewAuditLog(cfg.AuditCap),
	}
	return c
}

// Name returns the controller's name (used in augmentation sections).
func (c *Controller) Name() string { return c.name }

// AddDatapath registers a switch the controller programs.
func (c *Controller) AddDatapath(dp openflow.Datapath) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.datapaths[dp.DatapathID()] = dp
}

// SetPolicy atomically replaces the policy and flushes every cached verdict
// from the switches — the revocation path: a delegation withdrawn in the
// policy takes effect for the next packet of every flow.
func (c *Controller) SetPolicy(p *pf.Policy) {
	c.mu.Lock()
	c.policy = p
	c.queryKeys = p.ReferencedKeys()
	c.respCache = make(map[flow.Five]cacheEntry)
	dps := make([]openflow.Datapath, 0, len(c.datapaths))
	for _, dp := range c.datapaths {
		dps = append(dps, dp)
	}
	c.mu.Unlock()
	for _, dp := range dps {
		dp.Apply(openflow.FlowMod{Delete: true, Match: flow.MatchAll(), BufferID: openflow.BufferNone})
	}
	c.Counters.Add("policy_reloads", 1)
}

// AnswerForHost registers static pairs the controller serves on behalf of a
// host without a daemon (§3.4 "the controller spoofs the IP address of the
// end-host, sends a response itself"; §4 incremental deployment).
func (c *Controller) AnswerForHost(ip netaddr.IP, pairs ...wire.KV) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.answers[ip] = append(c.answers[ip], pairs...)
}

// SetAugmenter installs the response-augmentation hook used when this
// controller intercepts ident++ responses transiting its network (§3.4).
func (c *Controller) SetAugmenter(f func(q wire.Query, resp *wire.Response)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.augment = f
}

// HandlePacketIn implements openflow.Controller for in-process switches.
func (c *Controller) HandlePacketIn(sw *openflow.Switch, ev openflow.PacketIn) {
	c.HandleEvent(ev)
}

// HandleFlowRemoved implements openflow.Controller.
func (c *Controller) HandleFlowRemoved(sw *openflow.Switch, ev openflow.FlowRemoved) {
	c.Counters.Add("flow_removed", 1)
}

// PacketInFromRemote adapts ChannelServer events (TCP-attached switches).
func (c *Controller) PacketInFromRemote(sw *openflow.RemoteSwitch, ev openflow.PacketIn) {
	c.HandleEvent(ev)
}

// HandleEvent is the Figure 1 pipeline. It is safe for concurrent calls.
func (c *Controller) HandleEvent(ev openflow.PacketIn) {
	c.Counters.Add("packet_ins", 1)
	c.mu.RLock()
	dp := c.datapaths[ev.SwitchID]
	c.mu.RUnlock()
	if dp == nil {
		c.Counters.Add("unknown_datapath", 1)
		return
	}
	if ev.Tuple.EthType != flow.EthTypeIPv4 {
		// Policy is written over IP flows; other ether types are dropped at
		// the edge (a deployment would run a learning-switch app besides).
		dp.ReleaseBuffer(ev.BufferID)
		c.Counters.Add("non_ip_dropped", 1)
		return
	}
	five := ev.Tuple.Five()

	// Collapse duplicate packet-ins for a flow whose verdict is being
	// computed: the first packet's install resolves them.
	c.mu.Lock()
	if c.pending[five] {
		c.mu.Unlock()
		dp.ReleaseBuffer(ev.BufferID)
		c.Counters.Add("duplicate_packet_ins", 1)
		return
	}
	c.pending[five] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, five)
		c.mu.Unlock()
	}()

	var bd metrics.SetupBreakdown
	if c.latency != nil {
		bd.Punt = c.latency.PuntLatency(ev.SwitchID)
		bd.Install = c.latency.InstallLatency(ev.SwitchID)
	}

	src, dst, qsrc, qdst := c.gatherResponses(five)
	bd.QuerySrc, bd.QueryDst = qsrc, qdst

	evalStart := time.Now()
	c.mu.RLock()
	policy := c.policy
	c.mu.RUnlock()
	d := policy.Evaluate(pf.Input{Flow: five, Src: src, Dst: dst})
	bd.Eval = time.Since(evalStart)

	c.Setup.Observe(bd)
	c.Audit.Record(AuditEntry{
		Time:      c.clock(),
		Flow:      five,
		Action:    d.Action,
		Rule:      ruleString(d.Rule),
		Matched:   d.Matched,
		KeepState: d.KeepState,
		Diags:     d.Diags,
		Setup:     bd,
	})

	if d.Action == pf.Pass {
		c.Counters.Add("flows_allowed", 1)
		c.installPath(dp, ev, five, d.KeepState)
	} else {
		c.Counters.Add("flows_denied", 1)
		c.installDrop(dp, ev, five)
	}
	if len(d.Diags) > 0 {
		c.Counters.Add("eval_diags", int64(len(d.Diags)))
	}
}

// gatherResponses queries both ends concurrently (§2 step 3) with the
// response cache in front.
func (c *Controller) gatherResponses(five flow.Five) (src, dst *wire.Response, qsrc, qdst time.Duration) {
	now := c.clock()
	if c.cacheTTL > 0 {
		c.mu.RLock()
		if e, ok := c.respCache[five]; ok && now.Before(e.expires) {
			c.mu.RUnlock()
			c.Counters.Add("response_cache_hits", 1)
			return e.src, e.dst, 0, 0
		}
		c.mu.RUnlock()
	}
	c.mu.RLock()
	keys := c.queryKeys
	c.mu.RUnlock()
	q := wire.Query{Flow: five, Keys: keys}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		src, qsrc = c.queryOne(five.SrcIP, q)
	}()
	go func() {
		defer wg.Done()
		dst, qdst = c.queryOne(five.DstIP, q)
	}()
	wg.Wait()

	if c.cacheTTL > 0 {
		c.mu.Lock()
		c.respCache[five] = cacheEntry{src: src, dst: dst, expires: now.Add(c.cacheTTL)}
		c.mu.Unlock()
	}
	return src, dst, qsrc, qdst
}

func (c *Controller) queryOne(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration) {
	resp, rtt, err := c.transport.Query(host, q)
	if err == nil {
		return resp, rtt
	}
	c.Counters.Add("query_errors", 1)
	// Answer on behalf of daemon-less hosts from local configuration.
	c.mu.RLock()
	pairs := c.answers[host]
	name := c.name
	c.mu.RUnlock()
	if len(pairs) == 0 {
		return nil, rtt
	}
	c.Counters.Add("answered_on_behalf", 1)
	r := &wire.Response{Flow: q.Flow}
	sec := r.Augment("controller:" + name)
	sec.Pairs = append(sec.Pairs, pairs...)
	return r, rtt
}

// installPath caches a pass verdict as exact-granularity entries along the
// whole path, releasing the buffered first packet at the ingress switch
// (Figure 1 steps 4-5), plus the reverse path under `keep state`.
func (c *Controller) installPath(ingress openflow.Datapath, ev openflow.PacketIn, five flow.Five, keepState bool) {
	if !c.install {
		// Ablation mode: forward this one packet, cache nothing.
		hops, err := c.topo.Path(five.SrcIP, five.DstIP)
		if err == nil {
			for _, h := range hops {
				if h.Datapath == ev.SwitchID {
					c.packetOutOrRelease(ingress, ev, h.OutPort)
					return
				}
			}
		}
		ingress.ReleaseBuffer(ev.BufferID)
		return
	}
	hops, err := c.topo.Path(five.SrcIP, five.DstIP)
	if err != nil {
		c.Counters.Add("path_errors", 1)
		ingress.ReleaseBuffer(ev.BufferID)
		return
	}
	cookie := five.Hash() | 1 // non-zero so delete-by-cookie can target it
	for _, h := range hops {
		c.mu.RLock()
		dp := c.datapaths[h.Datapath]
		c.mu.RUnlock()
		if dp == nil {
			continue
		}
		mod := openflow.FlowMod{
			Match:       flow.FiveMatch(five),
			Priority:    100,
			Actions:     openflow.Output(h.OutPort),
			Cookie:      cookie,
			IdleTimeout: c.idle,
			HardTimeout: c.hard,
			BufferID:    openflow.BufferNone,
		}
		if h.Datapath == ev.SwitchID {
			mod.BufferID = ev.BufferID
			mod.NotifyRemoved = true
		}
		if err := dp.Apply(mod); err != nil {
			c.Counters.Add("install_errors", 1)
		}
	}
	c.Counters.Add("entries_installed", int64(len(hops)))
	if keepState {
		rev := five.Reverse()
		rhops, err := c.topo.Path(rev.SrcIP, rev.DstIP)
		if err != nil {
			c.Counters.Add("path_errors", 1)
			return
		}
		for _, h := range rhops {
			c.mu.RLock()
			dp := c.datapaths[h.Datapath]
			c.mu.RUnlock()
			if dp == nil {
				continue
			}
			mod := openflow.FlowMod{
				Match:       flow.FiveMatch(rev),
				Priority:    100,
				Actions:     openflow.Output(h.OutPort),
				Cookie:      cookie,
				IdleTimeout: c.idle,
				HardTimeout: c.hard,
				BufferID:    openflow.BufferNone,
			}
			if err := dp.Apply(mod); err != nil {
				c.Counters.Add("install_errors", 1)
			}
		}
		c.Counters.Add("entries_installed", int64(len(rhops)))
	}
}

func (c *Controller) packetOutOrRelease(dp openflow.Datapath, ev openflow.PacketIn, outPort uint16) {
	if len(ev.Frame) > 0 {
		dp.ReleaseBuffer(ev.BufferID)
		dp.PacketOut(outPort, ev.Frame)
		return
	}
	dp.ReleaseBuffer(ev.BufferID)
}

// installDrop caches a deny verdict at the ingress switch so subsequent
// packets of the flow die in hardware, and discards the buffered packet.
func (c *Controller) installDrop(dp openflow.Datapath, ev openflow.PacketIn, five flow.Five) {
	dp.ReleaseBuffer(ev.BufferID)
	if !c.install {
		return
	}
	mod := openflow.FlowMod{
		Match:       flow.FiveMatch(five),
		Priority:    100,
		Actions:     openflow.Drop,
		Cookie:      five.Hash() | 1,
		IdleTimeout: c.idle,
		HardTimeout: c.hard,
		BufferID:    openflow.BufferNone,
	}
	if err := dp.Apply(mod); err != nil {
		c.Counters.Add("install_errors", 1)
	}
}

// RevokeFlow deletes the cached entries for a flow everywhere, forcing the
// next packet back to the controller — per-flow revocation.
func (c *Controller) RevokeFlow(five flow.Five) {
	cookie := five.Hash() | 1
	c.mu.RLock()
	dps := make([]openflow.Datapath, 0, len(c.datapaths))
	for _, dp := range c.datapaths {
		dps = append(dps, dp)
	}
	c.mu.RUnlock()
	for _, dp := range dps {
		dp.Apply(openflow.FlowMod{Delete: true, Cookie: cookie, Match: flow.MatchAll(), BufferID: openflow.BufferNone})
	}
	c.mu.Lock()
	delete(c.respCache, five)
	c.mu.Unlock()
	c.Counters.Add("flows_revoked", 1)
}

func ruleString(r *pf.Rule) string {
	if r == nil {
		return "(default)"
	}
	return fmt.Sprintf("%s @ %s", r, r.Pos)
}
