// Package core implements the ident++ controller, the paper's primary
// contribution (§3.4): an OpenFlow controller that, on a flow's first
// packet, queries the ident++ daemons at both ends for additional
// information, evaluates the administrator's PF+=2 policy over the flow's
// 5-tuple plus the returned key-value dictionaries, and caches the verdict
// as flow entries along the path (Figure 1). It also implements the
// interception roles of §3.4: answering queries on behalf of hosts and
// augmenting responses that transit its network.
//
// Concurrency model: the packet-in fast path takes zero global locks.
// Read-mostly configuration (policy, query keys, datapaths, answer-on-
// behalf table, augmenter) lives in an immutable snapshot behind an
// atomic.Pointer; mutators copy-on-write and swap. Per-flow state (the
// response cache and the pending set) is sharded by the flow's maphash
// (see shard.go), so packet-ins for different flows contend only when
// they hash to the same shard. Duplicate packet-ins for an in-flight flow
// park on the shard's waiter list and are resolved by the first verdict
// instead of being dropped and re-punted.
package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/revoke"
	"identxx/internal/trace"
	"identxx/internal/wire"
)

// ErrNoDaemon is returned by a QueryTransport when the target host does not
// run an ident++ daemon — the §4 "Incremental Benefit" case. The controller
// proceeds with a nil response (or its own answer-on-behalf data) and lets
// the policy fail closed or open as written.
var ErrNoDaemon = errors.New("core: host has no ident++ daemon")

// noDaemonError lets transports outside core (the baselines, which core's
// tests import) mark their errors as the daemon-less case without
// importing this package.
type noDaemonError interface{ NoDaemon() bool }

// IsNoDaemon reports whether err means the queried host authoritatively
// runs no ident++ daemon — ErrNoDaemon anywhere in the chain, or an error
// self-identifying through NoDaemon() bool. This is the only failure mode
// in which the controller may answer on the host's behalf (§3.4, §4);
// timeouts and resets against a host that does run a daemon are transport
// trouble, not an invitation to impersonate it.
func IsNoDaemon(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNoDaemon) {
		return true
	}
	var nd noDaemonError
	return errors.As(err, &nd) && nd.NoDaemon()
}

// isTimeout mirrors the net.Error convention without importing net:
// deadline-style failures (context.DeadlineExceeded, net timeouts, the
// query plane's ErrDeadline) all report Timeout() true.
func isTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// unauthorizedErr marks query failures caused by the credential plane
// (internal/query's session verification) without importing it: the
// daemon answered, but its credential was forged, expired, missing, or
// its answer exceeded the credential's key scope. Such errors also
// satisfy IsNoDaemon — an unauthorized daemon gets the daemon-less
// fallback — but are counted apart (cred_unauthorized vs query_errors)
// so operators can tell "daemon down" from "daemon unauthorized".
type unauthorizedErr interface{ Unauthorized() bool }

// isUnauthorized walks the Unwrap chain by hand: errors.As would heap-
// allocate its target on every call, and this sits on the miss path of
// every daemon-less flow setup (the M8 zero-alloc budget).
func isUnauthorized(err error) bool {
	for err != nil {
		if ue, ok := err.(unauthorizedErr); ok {
			return ue.Unauthorized()
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// CredentialChecker is the credential face a transport must expose when
// Config.RequireCredentials is set (internal/query.Engine over a
// credentialed Pool implements it). HostAuthorized gates fact ingestion;
// CredentialExpiry lets the revocation plane lease facts no further than
// the asserting credential's lifetime — expiry as a revocation event.
type CredentialChecker interface {
	Credentialed() bool
	HostAuthorized(host netaddr.IP) bool
	CredentialExpiry(host netaddr.IP) (time.Time, bool)
}

// QueryTransport delivers an ident++ query to a host's daemon and returns
// its response plus the round-trip latency (virtual in simulation, wall on
// TCP).
type QueryTransport interface {
	Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error)
}

// AsyncQueryTransport is a QueryTransport that can additionally deliver
// the result to a completion callback instead of blocking the caller —
// the query plane's face (internal/query.Engine implements it). done is
// invoked exactly once, possibly inline (fast-path failures, caches) and
// possibly on a transport goroutine; the response it delivers may be
// shared with coalesced waiters and must be treated as a read-only borrow.
type AsyncQueryTransport interface {
	QueryTransport
	QueryAsync(host netaddr.IP, q wire.Query, done func(resp *wire.Response, rtt time.Duration, err error))
}

// TracedAsyncQueryTransport is an AsyncQueryTransport that can additionally
// annotate a decision's flight-recorder buffer with per-exchange query-plane
// events: the enqueue (with the gate that admitted or rejected it —
// coalesced, negative-cache, breaker) and the completion (RTT, transport
// attempts). internal/query.Engine implements it. epFlag identifies the
// endpoint (trace.FlagSrc or trace.FlagDst) and is OR'd into every event the
// transport records; a nil tb must behave exactly like QueryAsync.
type TracedAsyncQueryTransport interface {
	AsyncQueryTransport
	QueryAsyncTraced(host netaddr.IP, q wire.Query, tb *trace.Buffer, epFlag uint16, done func(resp *wire.Response, rtt time.Duration, err error))
}

// Hop is one switch traversal on a flow's path.
type Hop struct {
	Datapath uint64
	OutPort  uint16
}

// Topology answers path queries so the controller can "insert entries in
// switches across the network preemptively" (§3.1).
type Topology interface {
	Path(src, dst netaddr.IP) ([]Hop, error)
}

// LatencyModel supplies the control-channel latencies the controller cannot
// observe itself; the simulator implements it with its virtual link delays.
// A nil model contributes zero punt/install time to breakdowns.
type LatencyModel interface {
	PuntLatency(datapath uint64) time.Duration
	InstallLatency(datapath uint64) time.Duration
}

// Config parameterizes a Controller.
type Config struct {
	Name      string
	Policy    *pf.Policy
	Transport QueryTransport
	Topology  Topology
	Latency   LatencyModel

	// QueryKeys overrides the key hints sent in queries. When nil (the
	// default) the controller derives hints per flow from the compiled
	// policy's per-rule key analysis: each end is asked only for the keys
	// some still-matching rule could read for that flow (§3.2's "list of
	// keys that the controller is interested in", sharpened per flow).
	// The override applies until the next SetPolicy.
	QueryKeys []string

	// IdleTimeout/HardTimeout are applied to installed entries. Defaults:
	// 60s idle, no hard timeout (Ethane-style).
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// InstallEntries caches verdicts in switch flow tables. Disabling it is
	// the M5 ablation: every packet of every flow punts to the controller.
	InstallEntries bool

	// AsyncQueries suspends cache-missing decisions on the query plane
	// instead of parking a goroutine per decision on the daemon round
	// trip: HandleEvent returns once both endpoint queries are enqueued,
	// and the completion that delivers the second response finishes the
	// decision (evaluation, install, waiter resolution) on its own
	// goroutine. Requires Transport to implement AsyncQueryTransport.
	AsyncQueries bool

	// ResponseCacheTTL caches (flow -> responses) so retransmissions during
	// slow installs and repeated short flows skip daemon queries. Zero
	// disables the cache.
	ResponseCacheTTL time.Duration

	// Megaflow adds the wildcard decision cache in front of the exact
	// response cache (megaflow.go): each full decision runs under the
	// field-use trace and its verdict is widened to the traffic
	// equivalence class that shares the header fields the decision
	// actually consumed, so a new flow in a decided class resolves in one
	// table probe — no query, no evaluation. Requires ResponseCacheTTL
	// (widened entries live for the same TTL under the same epoch pin).
	Megaflow bool

	// Revocation enables the revocation plane: every cache-missing decision
	// registers the (host, key) facts its verdict read in a fact-dependency
	// index, and HandleUpdate — fed daemon-pushed endpoint-state updates by
	// the query plane — tears affected flows down live (cache entry dropped,
	// flow-table entries deleted along the installed path, audit record
	// emitted). The cache-hit fast path is untouched: it neither registers
	// nor consults the index.
	Revocation bool

	// RevocationLeaseTTL is the fallback for daemons that never push (the
	// honest-but-legacy case): facts from hosts that have not said hello
	// are leased for this long, and SweepLeases tears expired flows down,
	// forcing a fresh query — short-lived credentials where no revocation
	// channel exists. Zero disables leases. Requires Revocation.
	RevocationLeaseTTL time.Duration

	// RequireCredentials turns on the credential plane's controller half:
	// the Transport must implement CredentialChecker and actually enforce
	// credentials (a credentialed query plane — see internal/cred), facts
	// from unauthorized hosts are refused at ingestion and fall back to
	// answer-on-behalf/no-info, and registered facts are leased no longer
	// than the asserting credential's remaining lifetime, so credential
	// expiry tears dependent flows down through the revocation index.
	// Leave false for netsim and experiments: the insecure mode.
	RequireCredentials bool

	// Shards sets the number of flow-state shards, rounded up to a power
	// of two. Zero picks a hardware-sized default (≥ GOMAXPROCS).
	Shards int

	// AuditCap bounds the audit ring buffer (default 4096).
	AuditCap int

	// Clock for cache expiry; defaults to time.Now.
	Clock func() time.Time

	// Trace is the per-decision flight recorder (internal/trace). Nil — the
	// default — disables tracing entirely: every instrument point on the
	// decision path degenerates to a nil-receiver call and the ≤2 allocs/op
	// budgets hold unchanged. When set, each decision records stage-boundary
	// span events into a pooled buffer, sampled/slow traces are retained in
	// the recorder's ring, and the trace ID propagates on the query wire
	// (and, via the cluster router, across replica hand-offs).
	Trace *trace.Recorder
}

// ctlState is the immutable configuration snapshot the fast path reads.
// Mutators never modify a published snapshot: they clone, edit the clone,
// and atomically swap it in under writeMu.
type ctlState struct {
	epoch  uint64 // bumped by SetPolicy; pins cache entries to a policy
	policy *pf.Policy
	// prog is the policy's compiled decision program, captured in the
	// snapshot so the fast path reaches the header-only pre-pass and the
	// per-rule key analysis without re-deriving anything per event.
	prog *pf.Program
	// queryKeys is the operator's static hint override (Config.QueryKeys).
	// nil — the default — means hints are derived per flow from the
	// compiled program's per-rule key sets.
	queryKeys []string
	datapaths map[uint64]openflow.Datapath
	answers   map[netaddr.IP][]wire.KV // answer-on-behalf data (§3.4, §4)
	augment   func(q wire.Query, resp *wire.Response)
}

// clone copies the snapshot's maps so the edit never aliases a published
// state. Slice values (answers) are replaced wholesale by mutators, never
// appended to in place, so sharing them here is safe.
func (st *ctlState) clone() *ctlState {
	c := *st
	c.datapaths = make(map[uint64]openflow.Datapath, len(st.datapaths)+1)
	for k, v := range st.datapaths {
		c.datapaths[k] = v
	}
	c.answers = make(map[netaddr.IP][]wire.KV, len(st.answers)+1)
	for k, v := range st.answers {
		c.answers[k] = v
	}
	return &c
}

// Controller is an ident++-enabled OpenFlow controller.
type Controller struct {
	name      string
	sourceTag string // "controller:<name>", the §3.4 augmentation source, built once
	transport QueryTransport
	asyncTr   AsyncQueryTransport // non-nil iff Config.AsyncQueries
	// asyncTraced is the transport's trace-aware face (nil when the
	// transport has none); consulted only when a decision holds a trace
	// buffer, so a plain AsyncQueryTransport keeps working untraced.
	asyncTraced TracedAsyncQueryTransport
	// tr is the flight recorder; nil = tracing disabled (the common case).
	tr       *trace.Recorder
	topo     Topology
	latency  LatencyModel
	idle     time.Duration
	hard     time.Duration
	install  bool
	cacheTTL time.Duration
	clock    func() time.Time

	state   atomic.Pointer[ctlState] // read-mostly snapshot; fast path loads once
	writeMu sync.Mutex               // serializes snapshot writers only
	flows   *shardTable              // sharded per-flow state (shard.go)
	mega    *megaTable               // wildcard decision cache (nil unless Config.Megaflow)

	// revoker is the revocation plane's fact-dependency index (nil unless
	// Config.Revocation); leaseTTL the legacy-daemon lease fallback.
	revoker  *revoke.Index
	leaseTTL time.Duration

	// credTr is the transport's credential face (nil unless
	// Config.RequireCredentials): consulted at fact ingestion and when
	// leasing registered facts.
	credTr CredentialChecker

	// Counters and latency recorder are exported for the harness.
	Counters *metrics.Counter
	Setup    *metrics.SetupRecorder
	Audit    *AuditLog

	// hot caches the counter cells the decision path bumps on every event,
	// so the fast path pays one atomic add per counter instead of a map
	// lookup plus the add.
	hot struct {
		packetIns, cacheHits, dupPacketIns  *atomic.Int64
		waitersResolved, waitersForwarded   *atomic.Int64
		flowsAllowed, flowsDenied, installs *atomic.Int64
		evalDiags, installErrors            *atomic.Int64
		queryErrors, queryTimeouts          *atomic.Int64
		credUnauthorized                    *atomic.Int64
		answeredOnBehalf, headerOnly        *atomic.Int64
		revUpdates, revFlows, revInflight   *atomic.Int64
		megaHits, megaInstalls              *atomic.Int64
		megaTeardowns                       *atomic.Int64
	}
}

// New creates a controller. Config.Policy, Transport and Topology are
// required; the rest default sensibly.
func New(cfg Config) *Controller {
	if cfg.Policy == nil {
		panic("core: Config.Policy is required")
	}
	if cfg.Transport == nil {
		panic("core: Config.Transport is required")
	}
	if cfg.Topology == nil {
		panic("core: Config.Topology is required")
	}
	idle := cfg.IdleTimeout
	if idle == 0 {
		idle = 60 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards()
	}
	var asyncTr AsyncQueryTransport
	if cfg.AsyncQueries {
		at, ok := cfg.Transport.(AsyncQueryTransport)
		if !ok {
			panic("core: Config.AsyncQueries requires a Transport implementing AsyncQueryTransport")
		}
		asyncTr = at
	}
	var asyncTraced TracedAsyncQueryTransport
	if asyncTr != nil {
		if tt, ok := cfg.Transport.(TracedAsyncQueryTransport); ok {
			asyncTraced = tt
		}
	}
	var credTr CredentialChecker
	if cfg.RequireCredentials {
		ct, ok := cfg.Transport.(CredentialChecker)
		if !ok || !ct.Credentialed() {
			// Refusing to start beats silently authorizing everyone: a
			// transport without credential enforcement would make
			// RequireCredentials a no-op.
			panic("core: Config.RequireCredentials requires a credential-enforcing Transport (query plane with an authority key); netsim/experiments run with it off")
		}
		credTr = ct
	}
	c := &Controller{
		name:        cfg.Name,
		sourceTag:   "controller:" + cfg.Name,
		transport:   cfg.Transport,
		asyncTr:     asyncTr,
		asyncTraced: asyncTraced,
		tr:          cfg.Trace,
		topo:        cfg.Topology,
		latency:     cfg.Latency,
		idle:        idle,
		hard:        cfg.HardTimeout,
		install:     cfg.InstallEntries,
		cacheTTL:    cfg.ResponseCacheTTL,
		clock:       clock,
		flows:       newShardTable(shards),
		Counters:    metrics.NewCounter(),
		Setup:       metrics.NewSetupRecorder(),
		Audit:       NewAuditLog(cfg.AuditCap),
	}
	c.hot.packetIns = c.Counters.Cell("packet_ins")
	c.hot.cacheHits = c.Counters.Cell("response_cache_hits")
	c.hot.dupPacketIns = c.Counters.Cell("duplicate_packet_ins")
	c.hot.waitersResolved = c.Counters.Cell("waiters_resolved")
	c.hot.waitersForwarded = c.Counters.Cell("waiters_forwarded")
	c.hot.flowsAllowed = c.Counters.Cell("flows_allowed")
	c.hot.flowsDenied = c.Counters.Cell("flows_denied")
	c.hot.installs = c.Counters.Cell("entries_installed")
	c.hot.evalDiags = c.Counters.Cell("eval_diags")
	c.hot.installErrors = c.Counters.Cell("install_errors")
	c.hot.queryErrors = c.Counters.Cell("query_errors")
	c.hot.queryTimeouts = c.Counters.Cell("query_timeouts")
	c.hot.credUnauthorized = c.Counters.Cell("cred_unauthorized")
	c.hot.answeredOnBehalf = c.Counters.Cell("answered_on_behalf")
	c.hot.headerOnly = c.Counters.Cell("decisions_headeronly")
	c.hot.revUpdates = c.Counters.Cell("revocations_updates")
	c.hot.revFlows = c.Counters.Cell("revocations_flows")
	c.hot.revInflight = c.Counters.Cell("revocations_inflight")
	c.hot.megaHits = c.Counters.Cell("megaflow_hits")
	c.hot.megaInstalls = c.Counters.Cell("megaflow_installs")
	c.hot.megaTeardowns = c.Counters.Cell("megaflow_teardowns")
	if cfg.Megaflow {
		if cfg.ResponseCacheTTL <= 0 {
			panic("core: Config.Megaflow requires ResponseCacheTTL > 0 (widened entries share the cache TTL)")
		}
		c.mega = newMegaTable(shards)
	}
	if cfg.Revocation {
		c.revoker = revoke.NewIndex(shards)
		c.leaseTTL = cfg.RevocationLeaseTTL
	}
	c.credTr = credTr
	c.state.Store(&ctlState{
		policy:    cfg.Policy,
		prog:      cfg.Policy.Program(),
		queryKeys: cfg.QueryKeys,
		datapaths: make(map[uint64]openflow.Datapath),
		answers:   make(map[netaddr.IP][]wire.KV),
	})
	return c
}

// Name returns the controller's name (used in augmentation sections).
func (c *Controller) Name() string { return c.name }

// Shards returns the shard count of the flow-state table.
func (c *Controller) Shards() int { return len(c.flows.shards) }

// CachedFlows counts live response-cache entries across all shards.
func (c *Controller) CachedFlows() int {
	st := c.state.Load()
	return c.flows.cachedFlows(c.clock(), st.epoch)
}

// Epoch returns the current policy epoch: 0 at construction, bumped by
// every SetPolicy. Exported as a gauge so operators can confirm a policy
// push actually swapped the snapshot (the health/metrics surface's
// "epoch advancing" signal).
func (c *Controller) Epoch() uint64 {
	return c.state.Load().epoch
}

// DatapathCount returns the number of registered switches in the current
// snapshot — the readiness signal a controller with no network should
// report before claiming it can enforce anything.
func (c *Controller) DatapathCount() int {
	return len(c.state.Load().datapaths)
}

// ShardStat is one flow-state shard's occupancy snapshot: live (unexpired,
// current-epoch) cache entries, in-flight decisions, parked duplicate
// packet-ins across them, and the shard's revocation sequence.
type ShardStat struct {
	Cached  int
	Pending int
	Waiters int
	RevSeq  uint64
}

// ShardStats snapshots every shard for the per-shard drill-down
// (`identctl admin shards`). Each shard is locked briefly in turn; the
// result is a consistent per-shard view, not a cross-shard atomic one.
func (c *Controller) ShardStats() []ShardStat {
	st := c.state.Load()
	now := c.clock()
	out := make([]ShardStat, len(c.flows.shards))
	for i := range c.flows.shards {
		s := &c.flows.shards[i]
		s.mu.Lock()
		stat := ShardStat{Pending: len(s.pending), RevSeq: s.rev.Load()}
		for _, waiters := range s.pending {
			stat.Waiters += len(waiters)
		}
		for _, e := range s.respCache {
			if e.epoch == st.epoch && now.Before(e.expires) {
				stat.Cached++
			}
		}
		s.mu.Unlock()
		out[i] = stat
	}
	return out
}

// WideStats reports the revocation index's wide (megaflow-class)
// registrations: resident count plus lifetime register/drop totals. Zeros
// when revocation is disabled.
func (c *Controller) WideStats() (live int, registered, dropped int64) {
	if c.revoker == nil {
		return 0, 0, 0
	}
	return c.revoker.WideStats()
}

// PolicyRuleCacheStats reports the current policy's embedded-rules memo
// occupancy and lifetime evictions (pf.Policy.RuleCacheStats, surfaced
// here so operators reach it through the same snapshot the fast path
// reads).
func (c *Controller) PolicyRuleCacheStats() (entries, evictions int64) {
	return c.state.Load().policy.RuleCacheStats()
}

// HostDependencies snapshots the revocation index's per-host view (flows
// and megaflow classes depending on each host's facts, push-capability) —
// the per-host drill-down. Nil when revocation is disabled.
func (c *Controller) HostDependencies() []revoke.HostStat {
	if c.revoker == nil {
		return nil
	}
	return c.revoker.Hosts(nil)
}

// mutate applies edit to a private clone of the current snapshot and
// publishes the result. Concurrent readers see either the old or the new
// snapshot, never a partial edit.
func (c *Controller) mutate(edit func(st *ctlState)) *ctlState {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	st := c.state.Load().clone()
	edit(st)
	c.state.Store(st)
	return st
}

// AddDatapath registers a switch the controller programs.
func (c *Controller) AddDatapath(dp openflow.Datapath) {
	c.mutate(func(st *ctlState) {
		st.datapaths[dp.DatapathID()] = dp
	})
}

// SetPolicy atomically replaces the policy and flushes every cached verdict
// from the switches — the revocation path: a delegation withdrawn in the
// policy takes effect for the next packet of every flow. The snapshot swap
// bumps the policy epoch, so response-cache entries written by decisions
// racing this call are stale-on-arrival; the shard caches are then dropped
// and the per-switch table flushes issued concurrently, so revocation
// latency is the slowest single switch, not their sum behind one lock.
func (c *Controller) SetPolicy(p *pf.Policy) {
	st := c.mutate(func(st *ctlState) {
		st.epoch++
		st.policy = p
		st.prog = p.Program()
		// Any construction-time hint override belonged to the old policy;
		// hints for the new one derive from its own key analysis.
		st.queryKeys = nil
	})

	c.flows.flushAll()
	if c.mega != nil {
		// Widened verdicts are old-policy decisions too; flushing also
		// kills each entry so member hits in flight self-clean instead of
		// appending paths to an unreachable entry.
		c.mega.flushAll()
	}
	if c.revoker != nil {
		// Every registration described a decision of the old policy; the
		// table flush below removes the entries wholesale.
		c.revoker.FlushAll()
	}
	var wg sync.WaitGroup
	for _, dp := range st.datapaths {
		wg.Add(1)
		go func(dp openflow.Datapath) {
			defer wg.Done()
			dp.Apply(openflow.FlowMod{Delete: true, Match: flow.MatchAll(), BufferID: openflow.BufferNone})
		}(dp)
	}
	wg.Wait()
	c.Counters.Add("policy_reloads", 1)
}

// AnswerForHost registers static pairs the controller serves on behalf of a
// host without a daemon (§3.4 "the controller spoofs the IP address of the
// end-host, sends a response itself"; §4 incremental deployment).
func (c *Controller) AnswerForHost(ip netaddr.IP, pairs ...wire.KV) {
	c.mutate(func(st *ctlState) {
		// Replace, don't append in place: the old slice may be shared with
		// published snapshots still being read.
		merged := make([]wire.KV, 0, len(st.answers[ip])+len(pairs))
		merged = append(merged, st.answers[ip]...)
		merged = append(merged, pairs...)
		st.answers[ip] = merged
	})
}

// SetAugmenter installs the response-augmentation hook used when this
// controller intercepts ident++ responses transiting its network (§3.4).
func (c *Controller) SetAugmenter(f func(q wire.Query, resp *wire.Response)) {
	c.mutate(func(st *ctlState) {
		st.augment = f
	})
}

// HandlePacketIn implements openflow.Controller for in-process switches.
func (c *Controller) HandlePacketIn(sw *openflow.Switch, ev openflow.PacketIn) {
	c.HandleEvent(ev)
}

// HandleFlowRemoved implements openflow.Controller. The ingress entry is
// the only one installed with NotifyRemoved, so its eviction means the
// flow's forward path is gone from the network's point of view: the flow's
// response-cache entry is dropped with it — previously it survived, so a
// flow that idle-timed-out was re-admitted from cache without re-querying
// even though the daemon might now answer differently (stale-grant-on-
// reuse) — and, when the revocation plane is on, the dependency links are
// unregistered and any remaining entries along the installed path deleted
// so no orphan state lingers on non-ingress switches.
func (c *Controller) HandleFlowRemoved(sw *openflow.Switch, ev openflow.FlowRemoved) {
	c.Counters.Add("flow_removed", 1)
	five := ev.Match.Tuple.Five()
	c.flows.shardFor(five).drop(five)
	if c.revoker == nil {
		return
	}
	reg, ok := c.revoker.Drop(five)
	if !ok {
		return
	}
	// The notifying switch is included on purpose: only the flow's forward
	// entry was evicted there — a keep-state reverse entry at the same
	// switch must go too (deleting the already-gone forward entry is a
	// no-op).
	st := c.state.Load()
	b := getTeardownBatch()
	b.appendDeletes(st, five, reg.Paths)
	c.flushTeardown(b)
}

// PacketInFromRemote adapts ChannelServer events (TCP-attached switches).
func (c *Controller) PacketInFromRemote(sw *openflow.RemoteSwitch, ev openflow.PacketIn) {
	c.HandleEvent(ev)
}

// HandleEvent is the Figure 1 pipeline. It is safe for concurrent calls and
// takes no global locks: configuration comes from one atomic snapshot load,
// per-flow state from the flow's shard, and the decision's working set from
// a pooled scratch — the steady-state path allocates nothing (see
// decisionScratch and the M8 allocation budget).
//
// On a response-cache hit the decision completes synchronously. On a miss
// the two endpoint queries are issued and the decision is finished by
// finishDecision — on this goroutine for a blocking transport, or on a
// query-plane completion goroutine when AsyncQueries is enabled, in which
// case HandleEvent returns as soon as both queries are enqueued and the
// event loop is free for the next packet-in.
func (c *Controller) HandleEvent(ev openflow.PacketIn) {
	c.hot.packetIns.Add(1)
	st := c.state.Load()
	dp := st.datapaths[ev.SwitchID]
	if dp == nil {
		c.Counters.Add("unknown_datapath", 1)
		return
	}
	if ev.Tuple.EthType != flow.EthTypeIPv4 {
		// Policy is written over IP flows; other ether types are dropped at
		// the edge (a deployment would run a learning-switch app besides).
		dp.ReleaseBuffer(ev.BufferID)
		c.Counters.Add("non_ip_dropped", 1)
		return
	}
	five := ev.Tuple.Five()
	sh := c.flows.shardFor(five)

	// Duplicate packet-ins for a flow whose verdict is being computed park
	// on the shard's waiter list; the first packet's verdict resolves them.
	// A full waiter list (slow verdict at line rate) degrades to the
	// release-now path so one flow cannot pin unbounded switch buffers.
	first, parkedOK := sh.begin(five, dp, ev)
	if !first {
		c.hot.dupPacketIns.Add(1)
		if !parkedOK {
			dp.ReleaseBuffer(ev.BufferID)
			c.Counters.Add("waiters_overflowed", 1)
		}
		return
	}

	// The decision owns the flow from here until finishDecision resolves
	// it; capture the continuation context in the scratch so a suspended
	// decision survives this goroutine. The shard's revocation sequence is
	// captured before the cache probe: a revocation between here and the
	// decision's publication voids it (see shard.rev).
	s := acquireScratch()
	s.sh, s.dp, s.ev, s.five = sh, dp, ev, five
	s.revSeq = sh.rev.Load()
	// Flight recorder: a nil recorder returns a nil buffer and every Rec
	// below is a nil-receiver no-op — the disabled path stays within the
	// M8 allocation budget. A forwarded packet-in carries the forwarder's
	// trace ID and stitches here.
	s.tb = c.tr.Begin(ev.TraceID)
	s.tb.SetFlow(uint8(five.Proto), uint32(five.SrcIP), uint32(five.DstIP), uint16(five.SrcPort), uint16(five.DstPort))
	if c.latency != nil {
		s.bd.Punt = c.latency.PuntLatency(ev.SwitchID)
		s.bd.Install = c.latency.InstallLatency(ev.SwitchID)
	}
	g := &s.gather
	g.c, g.st = c, st

	// Megaflow probe first: a flow inside an already-decided traffic
	// equivalence class takes that class's verdict directly — no query,
	// no evaluation, no exact-cache line of its own. The exact cache is
	// consulted second so class-mates never accrete per-tuple entries.
	if c.mega != nil {
		if e := c.mega.lookup(five, c.clock(), st.epoch); e != nil {
			c.hot.megaHits.Add(1)
			s.tb.Rec(trace.StageMegaflowProbe, trace.FlagHit, 0)
			g.mega = e
			c.finishDecision(s)
			return
		}
		s.tb.Rec(trace.StageMegaflowProbe, 0, 0)
	}

	// Cache probe first: for a cached key-dependent flow the decision is
	// one shard lookup away, and header-only flows never store entries
	// (see below), so the probe can never return a verdict the pre-pass
	// would have overridden.
	if c.cacheTTL > 0 {
		if e, ok := sh.lookup(five, c.clock(), st.epoch); ok {
			c.hot.cacheHits.Add(1)
			s.tb.Rec(trace.StageCacheProbe, trace.FlagHit, 0)
			g.src, g.dst = e.src, e.dst
			// The lookup retained the entry's view refcount; the deferred
			// cleanup in finishDecision releases the borrow.
			g.cacheLife = e.life
			g.fromCache = true
			c.finishDecision(s)
			return
		}
		s.tb.Rec(trace.StageCacheProbe, 0, 0)
	}

	// Header-only pre-pass: when the compiled program admits it at all,
	// scan the per-rule static key sets against this flow's header. A
	// flow none of whose possibly-matching rules can read endpoint
	// information is decided and installed right here — no cache entry,
	// no query, no suspension; a whole workload class that never touches
	// the query plane. The same scan yields the per-flow key hints a
	// cache-missing decision sends instead of the global key list.
	hintsDone := false
	if st.prog.MaybeHeaderOnly() {
		evalStart := time.Now()
		var d pf.Decision
		var decided bool
		d, decided, s.srcKeys, s.dstKeys = st.prog.Prepass(five, s.srcKeys[:0], s.dstKeys[:0])
		s.bd.Eval = time.Since(evalStart)
		if decided {
			c.hot.headerOnly.Add(1)
			s.tb.Rec(trace.StagePrepass, trace.FlagHit, int64(s.bd.Eval))
			g.pre, g.preDecided = d, true
			c.finishDecision(s)
			return
		}
		s.tb.Rec(trace.StagePrepass, 0, int64(s.bd.Eval))
		hintsDone = true
	}

	srcHints, dstHints := st.queryKeys, st.queryKeys
	if st.queryKeys == nil {
		if !hintsDone {
			s.srcKeys, s.dstKeys = st.prog.Hints(five, s.srcKeys[:0], s.dstKeys[:0])
		}
		srcHints, dstHints = s.srcKeys, s.dstKeys
	}
	// The trace ID rides each endpoint query as a legacy-tolerant wire
	// line, so the daemon-side view of this exchange attributes to this
	// decision. ID() is 0 on a nil buffer and EncodeQuery omits it.
	g.qs = wire.Query{Flow: five, Keys: srcHints, TraceID: s.tb.ID()}
	g.qd = wire.Query{Flow: five, Keys: dstHints, TraceID: s.tb.ID()}
	if c.asyncTr != nil {
		// Non-blocking pipeline: hand both endpoint queries to the query
		// plane and return — no goroutine parks on the round trip. pending
		// is armed before the first enqueue because a completion may run
		// inline (negative-cache hit, open breaker); whichever completion
		// drops it to zero finishes the decision.
		g.pending.Store(2)
		if c.asyncTraced != nil && s.tb != nil {
			// The query plane records its own span events (coalescing,
			// breaker, negative cache, attempts) — richer than the
			// controller could reconstruct from the completion alone.
			c.asyncTraced.QueryAsyncTraced(five.SrcIP, g.qs, s.tb, trace.FlagSrc, g.srcDoneFn)
			c.asyncTraced.QueryAsyncTraced(five.DstIP, g.qd, s.tb, trace.FlagDst, g.dstDoneFn)
			return
		}
		if s.tb != nil {
			g.selfTraced = true
			s.tb.Rec(trace.StageQueryEnqueue, trace.FlagSrc, 0)
			s.tb.Rec(trace.StageQueryEnqueue, trace.FlagDst, 0)
		}
		c.asyncTr.QueryAsync(five.SrcIP, g.qs, g.srcDoneFn)
		c.asyncTr.QueryAsync(five.DstIP, g.qd, g.dstDoneFn)
		return
	}

	// Blocking transport: query both ends concurrently (§2 step 3), the
	// destination on a goroutine started through the prebound entry point.
	if s.tb != nil {
		g.selfTraced = true
		s.tb.Rec(trace.StageQueryEnqueue, trace.FlagSrc|trace.FlagDst, 0)
	}
	g.wg.Add(1)
	go g.dstFn()
	resp, rtt, err := c.transport.Query(five.SrcIP, g.qs)
	g.recQueryDone(trace.FlagSrc, rtt, err)
	g.src, g.qsrc, g.srcBuilt, g.srcTransient = c.resolveResponse(st, five, five.SrcIP, resp, rtt, err)
	g.wg.Wait()
	c.finishDecision(s)
}

// finishDecision is the back half of the Figure 1 pipeline: cache the
// gathered responses, evaluate the policy, record the audit entry, install
// the verdict, and resolve the parked duplicates. It runs on the
// packet-in goroutine for cache hits and blocking transports, and on a
// query-plane completion goroutine for suspended asynchronous decisions;
// everything it touches is either scratch-owned or independently
// synchronized, so the two arrivals share one code path.
func (c *Controller) finishDecision(s *decisionScratch) {
	st, sh, five := s.gather.st, s.sh, s.five
	pass := false
	defer func() {
		// Resolve after the verdict's entries are installed: released
		// buffers then hit the fresh table entry instead of re-punting. On
		// ablation runs there is no table entry, so passed waiters are
		// packet-out'd along the path instead of silently dropped.
		if waiters := sh.resolve(five); len(waiters) > 0 {
			s.tb.Rec(trace.StageWaiterRelease, 0, int64(len(waiters)))
			c.resolveWaiters(waiters, pass, s.hops)
			c.hot.waitersResolved.Add(int64(len(waiters)))
		}
		// The decision is fully published (audit, metrics, installs); the
		// scratch — including controller-built response views nothing else
		// took ownership of — can go back to its pools. The trace buffer
		// goes first: Finish retires it into the recorder's ring (or drops
		// it) and re-pools it, so release() only nils the reference.
		s.gather.releaseBuilt()
		c.tr.Finish(s.tb)
		s.release()
	}()

	g := &s.gather
	if sh.rev.Load() != s.revSeq {
		// A revocation touched this shard after the decision claimed its
		// flow: the responses it gathered (or the cache line it read) may
		// predate the endpoint-state change that caused the revocation.
		// Publishing would re-install possibly-stale state right behind the
		// teardown, so the decision voids itself — buffer released, nothing
		// cached, nothing installed; the packet's retransmission re-decides
		// under current facts. (Same-shard neighbors occasionally void too;
		// one spurious re-decision, never a wrong verdict.)
		c.hot.revInflight.Add(1)
		s.tb.Rec(trace.StageRevocationVoid, 0, 0)
		s.tb.SetVerdict("voided")
		s.dp.ReleaseBuffer(s.ev.BufferID)
		return
	}
	if !g.fromCache && !g.preDecided && g.mega == nil && c.cacheTTL > 0 && !g.srcTransient && !g.dstTransient {
		// Cache only decisions whose information is as good as it gets: a
		// verdict shaped by a transient transport failure (timeout, reset,
		// open breaker) must not pin its no-info view of the host for the
		// whole TTL — the daemon may answer again for the next packet.
		// Header-only decisions gathered nothing and re-decide from the
		// header alone per packet, cheaper than a cache probe would be.
		// The store itself re-checks the revocation sequence under the
		// shard lock (a revocation racing past the check above must not be
		// outrun by this write); on refusal the responses simply stay
		// decision-owned and the post-publication re-check below settles
		// the rest.
		now := c.clock()
		// Controller-built views get a refcounted life: the cache holds
		// one reference, each concurrent borrower (lookup) another, and
		// the last release — on any eviction path or the final borrower's
		// finish — returns the views to the pf pool. Daemon-returned
		// responses are GC-owned and need no life.
		var life *entryLife
		if g.srcBuilt || g.dstBuilt {
			life = &entryLife{}
			if g.srcBuilt {
				life.src = g.src
			}
			if g.dstBuilt {
				life.dst = g.dst
			}
			life.refs.Store(1)
		}
		if sh.store(five, cacheEntry{src: g.src, dst: g.dst, expires: now.Add(c.cacheTTL), epoch: st.epoch, life: life}, now, c.cacheTTL, s.revSeq) {
			// The cache owns the responses now (decisions across goroutines
			// may borrow them until eviction); the shard releases the life
			// when the entry leaves.
			g.srcBuilt, g.dstBuilt = false, false
		}
	}

	bd := &s.bd
	bd.QuerySrc, bd.QueryDst = g.qsrc, g.qdst

	var d pf.Decision
	var tr pf.Trace
	traced := false
	switch {
	case g.preDecided:
		// The header-only pre-pass already decided (and timed itself into
		// bd.Eval); evaluating again would just re-derive it.
		d = g.pre
	case g.mega != nil:
		// Megaflow hit: the class verdict is the flow's verdict. Installs
		// below carry the class cookie so one wildcard delete tears every
		// member's entries down with the class.
		d = pf.Decision{Action: g.mega.action, Rule: g.mega.rule, Matched: g.mega.matched, KeepState: g.mega.keepState}
		s.cookie = g.mega.cookie
	case c.mega != nil && !g.fromCache:
		evalStart := time.Now()
		d, tr = st.policy.EvaluateTraced(pf.Input{Flow: five, Src: g.src, Dst: g.dst})
		bd.Eval = time.Since(evalStart)
		traced = true
	default:
		evalStart := time.Now()
		d = st.policy.Evaluate(pf.Input{Flow: five, Src: g.src, Dst: g.dst})
		bd.Eval = time.Since(evalStart)
	}

	if s.tb != nil {
		var evalFlags uint16
		if d.Action != pf.Pass {
			evalFlags = trace.FlagDeny
		}
		s.tb.Rec(trace.StageEval, evalFlags, int64(bd.Eval))
	}

	c.Setup.Observe(*bd)
	c.Audit.Record(AuditEntry{
		Time:      c.clock(),
		Flow:      five,
		Action:    d.Action,
		Rule:      ruleString(d.Rule),
		Matched:   d.Matched,
		KeepState: d.KeepState,
		Diags:     d.Diags,
		Setup:     *bd,
	})

	if d.Action == pf.Pass {
		pass = true
		s.tb.SetVerdict("pass")
		c.hot.flowsAllowed.Add(1)
		c.installPath(st, s.dp, s.ev, five, d.KeepState, s)
		s.tb.Rec(trace.StageInstall, 0, int64(len(s.mods)))
	} else {
		s.tb.SetVerdict("deny")
		c.hot.flowsDenied.Add(1)
		c.installDrop(s.dp, s.ev, five, s)
		s.tb.Rec(trace.StageInstall, trace.FlagDeny, int64(len(s.mods)))
	}
	if len(d.Diags) > 0 {
		c.hot.evalDiags.Add(int64(len(d.Diags)))
	}

	if g.mega != nil {
		// Publish this member's installed datapaths to the class's
		// teardown set. Refusal means the class was torn down while this
		// hit was installing: its entries postdate the teardown's path
		// snapshot, so the hit deletes its own installs — the self-clean
		// half of the teardown handshake (megaflow.go).
		if !g.mega.addPaths(s.pathIDs) {
			c.deleteMegaAt(st, g.mega.cookie, s.pathIDs)
			c.Counters.Add("megaflow_hit_raced", 1)
		}
	} else if traced && !g.preDecided && !g.srcTransient && !g.dstTransient && !tr.CoversAllFields() {
		// Widen the verdict to its traffic equivalence class. Skipped when
		// the trace consumed every field (the class is one flow — the
		// exact cache already covers it) and for transient-trouble
		// decisions (same reason they are not cached). Insertion happens
		// before the publication re-check below, closing the race with a
		// concurrent fact update (see megaInstall).
		c.megaInstall(s, st, d, tr)
	}

	// Revocation plane: record which endpoint facts this verdict read, so
	// a daemon-pushed update resolves straight to this flow. Cache hits
	// keep the registration their original miss created, and header-only
	// decisions read no endpoint facts at all; neither touches the index —
	// the hot paths stay exactly as fast as without revocation.
	if c.revoker != nil && !g.fromCache && !g.preDecided && g.mega == nil && (c.install || c.cacheTTL > 0) {
		c.registerDeps(s)
		// Publication re-check: a revocation that landed after the entry
		// check at the top resolved to nothing (neither the cache entry
		// nor the registration existed yet) — its state is gone, but ours
		// just went live on pre-revocation facts. The registration is in
		// place now, so tearing ourselves down reaches everything this
		// decision installed; the next packet re-decides under current
		// facts. One extra atomic load on the miss path, nothing on hits.
		if sh.rev.Load() != s.revSeq {
			c.Counters.Add("revocations_raced", 1)
			c.revokeResolved(five, "raced-decision", false)
		}
	}
}

// resolveWaiters disposes of the parked duplicate packet-ins after the
// verdict. With entries installed, releasing the buffer forwards (or drops)
// the packet through the fresh table entry. On ablation runs of a pass
// verdict there is no entry, so each waiter's frame is packet-out'd along
// hops — the path installPath already resolved for the owner's packet
// (empty on deny, install mode, or path error: fall back to release-only).
// Previously these duplicates were released into a table miss and lost,
// under-counting delivered packets in the M5 ablation.
func (c *Controller) resolveWaiters(waiters []parked, pass bool, hops []Hop) {
	if !pass || c.install {
		hops = nil
	}
	for i := range waiters {
		w := &waiters[i]
		w.dp.ReleaseBuffer(w.bufferID)
		if len(w.frame) == 0 {
			continue
		}
		for _, h := range hops {
			if h.Datapath == w.switchID {
				w.dp.PacketOut(h.OutPort, w.frame)
				c.hot.waitersForwarded.Add(1)
				break
			}
		}
	}
}

// resolveResponse turns one end's query outcome into the response the
// policy will see: the daemon's answer when it has one, the controller's
// answer-on-behalf data (§3.4, §4) when the host authoritatively runs no
// daemon, and nothing at all otherwise. Transport trouble against a
// daemon'd host — a timeout, a reset, an open circuit breaker — must not
// be laundered into the controller impersonating the host: those fall
// through with a nil response so the policy renders its no-info verdict,
// and are counted apart (query_timeouts vs query_errors) so operators can
// tell a down daemon from a daemon-less one. built reports that the
// response is a controller-built view from the pf pool, owned by the
// caller until released or handed to the cache; transient reports exactly
// the transport-trouble case, so the decision it feeds is not cached —
// the daemon may be answering again for the very next packet.
func (c *Controller) resolveResponse(st *ctlState, five flow.Five, host netaddr.IP, resp *wire.Response, rtt time.Duration, err error) (_ *wire.Response, _ time.Duration, built, transient bool) {
	if err == nil {
		// RequireCredentials: the credentialed query plane already rejects
		// unauthorized responses, but ingestion is the trust boundary —
		// re-check here so no transport composition can slip facts from an
		// unauthorized host into a verdict. Refused answers fall through
		// to answer-on-behalf/no-info like any unauthorized session.
		if c.credTr == nil || c.credTr.HostAuthorized(host) {
			return resp, rtt, false, false
		}
		c.hot.credUnauthorized.Add(1)
	} else if !IsNoDaemon(err) {
		if isTimeout(err) {
			c.hot.queryTimeouts.Add(1)
		} else {
			c.hot.queryErrors.Add(1)
		}
		return nil, rtt, false, true
	} else if isUnauthorized(err) {
		// The credential plane rejected the daemon's word (forged,
		// expired, out-of-scope): counted apart from transport trouble so
		// operators can tell "daemon down" from "daemon unauthorized".
		c.hot.credUnauthorized.Add(1)
	} else {
		c.hot.queryErrors.Add(1)
	}
	// Answer on behalf of daemon-less hosts from local configuration.
	pairs := st.answers[host]
	if len(pairs) == 0 {
		return nil, rtt, false, false
	}
	c.hot.answeredOnBehalf.Add(1)
	r := pf.AcquireResponse(five)
	sec := r.Augment(c.sourceTag)
	sec.Pairs = append(sec.Pairs, pairs...)
	return r, rtt, true, false
}

// installJob is one datapath's flow-mod application, dispatched to the
// shared fan-out workers. A batched teardown sets mods instead of mod: the
// worker applies the whole slice against the one datapath, so a fan-in
// revocation tearing N flows hands each switch one job, not 2N.
type installJob struct {
	dp   openflow.Datapath
	mod  openflow.FlowMod
	mods []openflow.FlowMod
	wg   *sync.WaitGroup
	errs *atomic.Int64
}

// installFanout is the process-wide pool of install workers, shared by
// every controller and started on the first multi-switch install. A fixed
// worker set replaces the goroutine-per-datapath spawn (and its closure
// allocation) the multi-hop path used to pay, extending the zero-alloc
// property to long paths; jobs are plain values on a buffered channel.
var installFanout struct {
	once sync.Once
	ch   chan installJob
	// busy counts workers currently applying a mod — the install-worker
	// backlog signal health checks report. Touched only on the multi-switch
	// hand-off path, never on the single-hop fast path.
	busy atomic.Int64
	n    int
}

// InstallBacklog reports how many shared install workers are applying a
// flow-mod right now, and how many exist in total. All workers busy for a
// sustained period means installs are degrading to sequential behind slow
// switches — the signal the readiness surface exposes.
func InstallBacklog() (busy int64, workers int) {
	return installFanout.busy.Load(), installFanout.n
}

func installCh() chan installJob {
	installFanout.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 4 {
			n = 4
		}
		if n > 16 {
			n = 16
		}
		// Unbuffered on purpose: a job is handed over only when a worker
		// is ready to run it now. Were jobs buffered, a path's installs
		// could sit in the queue behind every worker being wedged on a
		// dead switch, and the owning decision would wait on switches it
		// never touches.
		installFanout.ch = make(chan installJob)
		installFanout.n = n
		for i := 0; i < n; i++ {
			go func() {
				for j := range installFanout.ch {
					installFanout.busy.Add(1)
					if j.mods != nil {
						for _, m := range j.mods {
							if err := j.dp.Apply(m); err != nil {
								j.errs.Add(1)
							}
						}
					} else if err := j.dp.Apply(j.mod); err != nil {
						j.errs.Add(1)
					}
					installFanout.busy.Add(-1)
					j.wg.Done()
				}
			}()
		}
	})
	return installFanout.ch
}

// applyMods issues one flow-mod per datapath, through the shared fan-out
// workers when the path crosses more than one switch, so install latency
// along a path tends to the slowest single switch rather than the sum of
// all of them. Handoffs never block: a mod is given to a worker only if
// one is free this instant, and runs on the calling goroutine otherwise —
// so worker starvation (every worker wedged on an unresponsive switch)
// degrades multi-hop installs to sequential rather than stalling healthy
// decisions behind other decisions' dead switches. The single-hop fast
// path never touches the pool at all.
func (c *Controller) applyMods(s *decisionScratch, dps []openflow.Datapath, mods []openflow.FlowMod) {
	last := len(dps) - 1
	if last < 0 {
		return
	}
	handedOff := false
	if last > 0 {
		ch := installCh()
		for i := 0; i < last; i++ {
			s.installWG.Add(1)
			select {
			case ch <- installJob{dp: dps[i], mod: mods[i], wg: &s.installWG, errs: c.hot.installErrors}:
				handedOff = true
			default:
				if err := dps[i].Apply(mods[i]); err != nil {
					c.hot.installErrors.Add(1)
				}
				s.installWG.Done()
			}
		}
	}
	if err := dps[last].Apply(mods[last]); err != nil {
		c.hot.installErrors.Add(1)
	}
	if handedOff {
		s.installWG.Wait()
	}
}

// pathMods builds the per-hop flow-mods for one direction of a flow,
// appending into the scratch slices passed in (callers hand in length-zero
// slices whose capacity is recycled across decisions). hasIngress
// distinguishes "no ingress on this path" (reverse direction) from a
// legitimate ingress datapath ID of 0.
func (c *Controller) pathMods(st *ctlState, hops []Hop, five flow.Five, cookie uint64, hasIngress bool, ingress uint64, bufferID uint32, dps []openflow.Datapath, mods []openflow.FlowMod) ([]openflow.Datapath, []openflow.FlowMod) {
	for _, h := range hops {
		dp := st.datapaths[h.Datapath]
		if dp == nil {
			continue
		}
		mod := openflow.FlowMod{
			Match:       flow.FiveMatch(five),
			Priority:    100,
			Actions:     openflow.Output(h.OutPort),
			Cookie:      cookie,
			IdleTimeout: c.idle,
			HardTimeout: c.hard,
			BufferID:    openflow.BufferNone,
		}
		if hasIngress && h.Datapath == ingress {
			mod.BufferID = bufferID
			mod.NotifyRemoved = true
		}
		dps = append(dps, dp)
		mods = append(mods, mod)
	}
	return dps, mods
}

// installPath caches a pass verdict as exact-granularity entries along the
// whole path, releasing the buffered first packet at the ingress switch
// (Figure 1 steps 4-5), plus the reverse path under `keep state`. Entries
// along a path are installed concurrently, one goroutine per switch; the
// forward direction completes before the reverse is issued so the buffered
// packet is released against a fully programmed forward path. The flow-mod
// batches are built in the decision's scratch.
func (c *Controller) installPath(st *ctlState, ingress openflow.Datapath, ev openflow.PacketIn, five flow.Five, keepState bool, s *decisionScratch) {
	if !c.install {
		// Ablation mode: forward this one packet, cache nothing. The path
		// is stashed so the deferred waiter resolution can forward parked
		// duplicates over it without a second topology lookup.
		hops, err := c.topo.Path(five.SrcIP, five.DstIP)
		if err == nil {
			s.hops = hops
			for _, h := range hops {
				if h.Datapath == ev.SwitchID {
					c.packetOutOrRelease(ingress, ev, h.OutPort)
					return
				}
			}
		}
		ingress.ReleaseBuffer(ev.BufferID)
		return
	}
	hops, err := c.topo.Path(five.SrcIP, five.DstIP)
	if err != nil {
		c.Counters.Add("path_errors", 1)
		ingress.ReleaseBuffer(ev.BufferID)
		return
	}
	cookie := five.Hash() | 1 // non-zero (odd) so delete-by-cookie can target it
	if s.cookie != 0 {
		// Megaflow member: entries carry the class cookie (even, disjoint
		// from the exact space) so one wildcard delete tears the class down.
		cookie = s.cookie
	}
	s.dps, s.mods = c.pathMods(st, hops, five, cookie, true, ev.SwitchID, ev.BufferID, s.dps[:0], s.mods[:0])
	c.applyMods(s, s.dps, s.mods)
	c.hot.installs.Add(int64(len(hops)))
	c.collectPathIDs(s)
	if keepState {
		rev := five.Reverse()
		rhops, err := c.topo.Path(rev.SrcIP, rev.DstIP)
		if err != nil {
			c.Counters.Add("path_errors", 1)
			return
		}
		// No ingress buffer on the reverse path: the reply's first packet
		// has not arrived yet.
		s.dps, s.mods = c.pathMods(st, rhops, rev, cookie, false, 0, openflow.BufferNone, s.dps[:0], s.mods[:0])
		c.applyMods(s, s.dps, s.mods)
		c.hot.installs.Add(int64(len(rhops)))
		c.collectPathIDs(s)
	}
}

// collectPathIDs records the datapaths the just-applied batch touched,
// for the revocation plane's teardown-along-path and the megaflow
// layer's per-class path set. Skipped entirely when both are off: the
// hot path pays two nil checks.
func (c *Controller) collectPathIDs(s *decisionScratch) {
	if c.revoker == nil && c.mega == nil {
		return
	}
	for _, dp := range s.dps {
		s.pathIDs = appendPathID(s.pathIDs, dp.DatapathID())
	}
}

func (c *Controller) packetOutOrRelease(dp openflow.Datapath, ev openflow.PacketIn, outPort uint16) {
	if len(ev.Frame) > 0 {
		dp.ReleaseBuffer(ev.BufferID)
		dp.PacketOut(outPort, ev.Frame)
		return
	}
	dp.ReleaseBuffer(ev.BufferID)
}

// installDrop caches a deny verdict at the ingress switch so subsequent
// packets of the flow die in hardware, and discards the buffered packet.
func (c *Controller) installDrop(dp openflow.Datapath, ev openflow.PacketIn, five flow.Five, s *decisionScratch) {
	dp.ReleaseBuffer(ev.BufferID)
	if !c.install {
		return
	}
	cookie := five.Hash() | 1
	if s.cookie != 0 {
		cookie = s.cookie
	}
	mod := openflow.FlowMod{
		Match:       flow.FiveMatch(five),
		Priority:    100,
		Actions:     openflow.Drop,
		Cookie:      cookie,
		IdleTimeout: c.idle,
		HardTimeout: c.hard,
		BufferID:    openflow.BufferNone,
	}
	if err := dp.Apply(mod); err != nil {
		c.hot.installErrors.Add(1)
	}
	if c.revoker != nil || c.mega != nil {
		// A deny entry is as revocable as a pass entry: a fact change can
		// flip the verdict, and the drop entry must not outlive its facts.
		s.pathIDs = appendPathID(s.pathIDs, ev.SwitchID)
	}
}

// RevokeFlow deletes the cached entries for a flow, forcing the next
// packet back to the controller — per-flow revocation. With the dependency
// index on, deletes go to the flow's installed path; otherwise (or for an
// unknown flow) they broadcast to every datapath, the pre-index contract.
func (c *Controller) RevokeFlow(five flow.Five) {
	c.revokeResolved(five, "revoke-flow", true)
	c.Counters.Add("flows_revoked", 1)
}

// ruleString names the deciding rule for the audit trail. The rendering is
// memoized on the rule itself (rules are immutable after compile), so audit
// recording costs a pointer load per decision, not a format.
func ruleString(r *pf.Rule) string {
	if r == nil {
		return "(default)"
	}
	return r.AuditString()
}
