package core

import (
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// TestStressConcurrentPipeline hammers HandleEvent from many goroutines
// while every mutator — SetPolicy, AnswerForHost, AddDatapath, RevokeFlow,
// SetAugmenter — runs concurrently, plus readers of the exported metrics.
// It is the race-detector workout for the sharded fast path and the
// copy-on-write snapshot; correctness is asserted by conservation laws
// over the counters, which must hold no matter how the schedules
// interleave.
func TestStressConcurrentPipeline(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}, {Datapath: 2, OutPort: 3}}}
	dp1 := &fakeDatapath{id: 1}
	dp2 := &fakeDatapath{id: 2}
	c := New(Config{
		Name:             "stress",
		Policy:           pf.MustCompile("p", `pass from any to any`),
		Transport:        tr,
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: time.Minute,
		Shards:           8,
	})
	c.AddDatapath(dp1)
	c.AddDatapath(dp2)

	const (
		workers       = 8
		eventsPerW    = 400
		distinctFlows = 64
	)
	policies := []*pf.Policy{
		pf.MustCompile("allow", `pass from any to any`),
		pf.MustCompile("deny", `block all`),
		pf.MustCompile("cond", "block all\npass from any to any with eq(@src[name], skype)"),
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Mutators: policy swaps (the revocation path), registry growth,
	// answer-on-behalf updates, per-flow revocation, augmenter swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.SetPolicy(policies[i%len(policies)])
			c.AnswerForHost(hostB, wire.KV{Key: "type", Value: "printer"})
			c.AddDatapath(&fakeDatapath{id: uint64(100 + i%7)})
			c.RevokeFlow(flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
				SrcPort: netaddr.Port(i % distinctFlows), DstPort: 80})
			c.SetAugmenter(func(q wire.Query, resp *wire.Response) {})
			i++
		}
	}()

	// Readers: exported surfaces a harness would poll mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Counters.Snapshot()
			_ = c.Setup.Total.Summary()
			_ = c.Audit.Entries()
			_ = c.CachedFlows()
			c.InterceptQuery(hostB, wire.Query{})
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < eventsPerW; i++ {
				n := (w*eventsPerW + i) % distinctFlows
				five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
					SrcPort: netaddr.Port(1000 + n), DstPort: 80}
				c.HandleEvent(sampleEvent(five, 1+uint64(n%2)))
			}
		}(w)
	}

	// Wait for the event workers, then stop the background churn.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		// Workers are the first to finish; the churn goroutines only exit
		// via stop, so close it once all events are in.
		for c.Counters.Get("packet_ins") < workers*eventsPerW {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress run wedged")
	}

	// Conservation: every packet-in was decided, parked behind a decision,
	// or voided by a revocation racing its shard (the packet is released
	// for retransmission rather than decided from possibly-stale facts);
	// nothing is lost or double-counted.
	snap := c.Counters.Snapshot()
	decided := snap["flows_allowed"] + snap["flows_denied"]
	if decided+snap["duplicate_packet_ins"]+snap["revocations_inflight"] != workers*eventsPerW {
		t.Errorf("decided=%d duplicates=%d voided=%d, want sum %d; counters: %s",
			decided, snap["duplicate_packet_ins"], snap["revocations_inflight"],
			workers*eventsPerW, c.Counters)
	}
	if c.Audit.Total() != decided {
		t.Errorf("audit total = %d, want %d (one entry per decision)", c.Audit.Total(), decided)
	}
	// Every parked duplicate must have been resolved by a verdict (or
	// counted as an overflow release when the waiter list was full).
	if snap["waiters_resolved"]+snap["waiters_overflowed"] != snap["duplicate_packet_ins"] {
		t.Errorf("waiters_resolved = %d + overflowed = %d != duplicate_packet_ins = %d; parked events leaked",
			snap["waiters_resolved"], snap["waiters_overflowed"], snap["duplicate_packet_ins"])
	}
	// Quiescent: no flow still marked in flight.
	for i := range c.flows.shards {
		sh := &c.flows.shards[i]
		sh.mu.Lock()
		n := len(sh.pending)
		sh.mu.Unlock()
		if n != 0 {
			t.Errorf("shard %d still has %d pending flows after quiescence", i, n)
		}
	}
}

// TestStressMegaflowRevocation hammers the megaflow layer's racy seams:
// workers decide flows of one traffic equivalence class (plus bystander
// classes) while a churn goroutine pushes fact updates for the traced
// end — every update must void or tear down the widened entries its
// facts reached, including entries whose install is racing the update.
// Correctness is conservation over the counters: no packet lost, every
// audit entry accounted, and after a final resync every install is
// matched by a teardown or an expiry — no widened entry leaks past the
// facts it read.
func TestStressMegaflowRevocation(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}, {Datapath: 2, OutPort: 3}}}
	dp1 := &fakeDatapath{id: 1}
	dp2 := &fakeDatapath{id: 2}
	c := New(Config{
		Name:             "mega-stress",
		Policy:           pf.MustCompile("p", megaPolicy),
		Transport:        tr,
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: time.Minute,
		Revocation:       true,
		Megaflow:         true,
		Shards:           8,
	})
	c.AddDatapath(dp1)
	c.AddDatapath(dp2)

	const (
		workers    = 8
		eventsPerW = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churn: fact updates for the destination end (the end every widened
	// verdict traced), flow-scoped updates naming class members, and
	// lease sweeps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				c.HandleUpdate(hostB, wire.Update{Key: "name", Old: "skype", New: "skype", Serial: uint64(i)})
			case 1:
				c.HandleUpdate(hostA, wire.Update{
					Flow: flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
						SrcPort: netaddr.Port(1000 + i%32), DstPort: 5060},
					Key: "name", Serial: uint64(i),
				})
			case 2:
				c.SweepLeases()
			}
			i++
			time.Sleep(time.Microsecond)
		}
	}()

	// Readers of the new exported surfaces.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.MegaflowStats()
			_ = c.Counters.Snapshot()
			_ = c.CachedFlows()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < eventsPerW; i++ {
				n := w*eventsPerW + i
				// Mostly one big class (same dst service, varied src), a
				// few bystander classes on other ports the pre-pass denies.
				five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
					SrcPort: netaddr.Port(1000 + n%32), DstPort: 5060}
				if n%7 == 0 {
					five.DstPort = netaddr.Port(6000 + n%4)
				}
				c.HandleEvent(sampleEvent(five, 1+uint64(n%2)))
			}
		}(w)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		for c.Counters.Get("packet_ins") < workers*eventsPerW {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("megaflow stress run wedged")
	}

	// A final resync for the traced end tears down every widened entry
	// still registered; with that, installs must balance teardowns and
	// displacement expiries exactly — a leaked entry (torn from the index
	// but resident, or resident but unregistered) breaks the equation.
	c.HandleUpdate(hostB, wire.Update{Serial: 1 << 30})

	snap := c.Counters.Snapshot()
	decided := snap["flows_allowed"] + snap["flows_denied"]
	if decided+snap["duplicate_packet_ins"]+snap["revocations_inflight"] != workers*eventsPerW {
		t.Errorf("decided=%d duplicates=%d voided=%d, want sum %d; counters: %s",
			decided, snap["duplicate_packet_ins"], snap["revocations_inflight"],
			workers*eventsPerW, c.Counters)
	}
	if snap["waiters_resolved"]+snap["waiters_overflowed"] != snap["duplicate_packet_ins"] {
		t.Errorf("waiters %d+%d != duplicates %d",
			snap["waiters_resolved"], snap["waiters_overflowed"], snap["duplicate_packet_ins"])
	}
	// One audit entry per decision plus one per plane-driven teardown
	// (exact and megaflow alike).
	revoked := int64(len(c.Audit.Revocations()))
	if c.Audit.Total() != decided+revoked {
		t.Errorf("audit total = %d, want %d decisions + %d revocations",
			c.Audit.Total(), decided, revoked)
	}
	live, hits, installs, teardowns := c.MegaflowStats()
	if live != 0 {
		t.Errorf("megaflow entries still live after final resync: %d", live)
	}
	if installs != teardowns+snap["megaflow_expired"] {
		t.Errorf("megaflow conservation: installs=%d != teardowns=%d + expired=%d",
			installs, teardowns, snap["megaflow_expired"])
	}
	if hits+installs == 0 {
		t.Error("stress run never exercised the megaflow layer")
	}
	if wlive, _, _ := c.revoker.WideStats(); wlive != 0 {
		t.Errorf("wide index still holds %d registrations after final resync", wlive)
	}
	for i := range c.flows.shards {
		sh := &c.flows.shards[i]
		sh.mu.Lock()
		n := len(sh.pending)
		sh.mu.Unlock()
		if n != 0 {
			t.Errorf("shard %d still has %d pending flows after quiescence", i, n)
		}
	}
}

// TestPolicySwapInvalidatesInFlightCacheWrite pins down the race the
// cache-entry epoch exists for: a decision that started under the old
// policy is still gathering responses when SetPolicy flushes the shards;
// its cache write lands *after* the flush. Without epoch pinning that
// stale entry would serve cache hits under the new policy for a full TTL.
func TestPolicySwapInvalidatesInFlightCacheWrite(t *testing.T) {
	block := make(chan struct{})
	slow := &slowTransport{unblock: block}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "swap",
		Policy:           pf.MustCompile("p1", `pass from any to any with eq(@src[name], skype)`),
		Transport:        slow,
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Shards:           4,
	})
	c.AddDatapath(dp)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 9, DstPort: 443}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.HandleEvent(sampleEvent(five, 1)) // parks in the slow transport
	}()
	slow.waitUntilQuerying()

	// The swap completes while the first decision is mid-query.
	c.SetPolicy(pf.MustCompile("p2", `pass from any to any with eq(@src[name], skype)`))

	close(block) // first decision finishes and writes the cache — stale epoch
	wg.Wait()

	if n := c.CachedFlows(); n != 0 {
		t.Fatalf("CachedFlows = %d after policy swap, want 0 (stale-epoch write must not count)", n)
	}
	c.HandleEvent(sampleEvent(five, 1))
	if hits := c.Counters.Get("response_cache_hits"); hits != 0 {
		t.Fatalf("cache hits = %d, want 0: decision under new policy used responses gathered for the old one", hits)
	}
}
