package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

const revPolicy = "block all\npass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)"

// newRevController builds a revocation-enabled controller with a two-hop
// path and the canned skype transport.
func newRevController(t *testing.T, leaseTTL time.Duration, clock func() time.Time) (*Controller, *fakeTransport, *fakeDatapath, *fakeDatapath) {
	t.Helper()
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	dp1 := &fakeDatapath{id: 1}
	dp2 := &fakeDatapath{id: 2}
	c := New(Config{
		Name:               "rev",
		Policy:             pf.MustCompile("rev", revPolicy),
		Transport:          tr,
		Topology:           &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}, {Datapath: 2, OutPort: 3}}},
		InstallEntries:     true,
		ResponseCacheTTL:   time.Hour,
		Revocation:         true,
		RevocationLeaseTTL: leaseTTL,
		Clock:              clock,
	})
	c.AddDatapath(dp1)
	c.AddDatapath(dp2)
	return c, tr, dp1, dp2
}

func revFlow(sp int) flow.Five {
	return flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
		SrcPort: netaddr.Port(sp), DstPort: 5060}
}

func (d *fakeDatapath) deleteMods() []openflow.FlowMod {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []openflow.FlowMod
	for _, m := range d.mods {
		if m.Delete {
			out = append(out, m)
		}
	}
	return out
}

// TestUpdateTearsDownFlow is the plane's core contract with a fake
// transport: a flow-scoped update drops the cache entry, deletes entries
// along the whole installed path, audits, and the next packet re-queries.
func TestUpdateTearsDownFlow(t *testing.T) {
	c, tr, dp1, dp2 := newRevController(t, 0, nil)
	five := revFlow(40000)
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_allowed") != 1 {
		t.Fatalf("setup: flow not allowed; %s", c.Counters)
	}
	if live, _, _ := c.RevocationIndexStats(); live != 1 {
		t.Fatalf("setup: index live = %d, want 1", live)
	}
	if c.CachedFlows() != 1 {
		t.Fatalf("setup: cached flows = %d", c.CachedFlows())
	}
	queriesBefore := func() int { tr.mu.Lock(); defer tr.mu.Unlock(); return tr.queries }()

	c.HandleUpdate(hostA, wire.Update{Flow: five, Key: "name", Old: "skype", New: "", Serial: 1})

	if c.CachedFlows() != 0 {
		t.Error("cache entry survived the update")
	}
	if live, _, _ := c.RevocationIndexStats(); live != 0 {
		t.Error("index registration survived the update")
	}
	// Deletes along the full installed path: both datapaths, both
	// directions, flow granularity.
	for i, dp := range []*fakeDatapath{dp1, dp2} {
		dels := dp.deleteMods()
		if len(dels) != 2 {
			t.Fatalf("dp%d delete mods = %d, want 2 (fwd+rev)", i+1, len(dels))
		}
		for _, m := range dels {
			if m.Cookie != five.Hash()|1 {
				t.Errorf("dp%d delete cookie = %d", i+1, m.Cookie)
			}
		}
	}
	if got := c.Audit.Revocations(); len(got) != 1 || got[0].Flow != five {
		t.Errorf("revocation audit records = %+v", got)
	}
	if c.Counters.Get("revocations_flows") != 1 {
		t.Errorf("revocations_flows = %d", c.Counters.Get("revocations_flows"))
	}

	// Next packet of the same flow re-queries and re-decides.
	c.HandleEvent(sampleEvent(five, 1))
	queriesAfter := func() int { tr.mu.Lock(); defer tr.mu.Unlock(); return tr.queries }()
	if queriesAfter <= queriesBefore {
		t.Error("re-admission did not re-query the daemons")
	}
	if c.Counters.Get("flows_allowed") != 2 {
		t.Errorf("flow not re-admitted: %s", c.Counters)
	}
}

// TestKeyScopedUpdateFanOut: a key-scoped update (no flow) tears down
// every flow whose verdict read that key from that host, and nothing else.
func TestKeyScopedUpdateFanOut(t *testing.T) {
	c, _, _, _ := newRevController(t, 0, nil)
	for i := 0; i < 8; i++ {
		c.HandleEvent(sampleEvent(revFlow(41000+i), 1))
	}
	if c.CachedFlows() != 8 {
		t.Fatalf("setup: cached = %d", c.CachedFlows())
	}

	// A key nothing read: no effect.
	c.HandleUpdate(hostA, wire.Update{Key: "os-patch", Serial: 1})
	if c.CachedFlows() != 8 {
		t.Errorf("unrelated key tore down flows: cached = %d", c.CachedFlows())
	}

	// The key every verdict read at the src end.
	c.HandleUpdate(hostA, wire.Update{Key: "name", Serial: 2})
	if c.CachedFlows() != 0 {
		t.Errorf("cached = %d after key-scoped revocation, want 0", c.CachedFlows())
	}
	if got := c.Counters.Get("revocations_flows"); got != 8 {
		t.Errorf("revocations_flows = %d, want 8", got)
	}
}

// TestResyncTearsDownHost: a bare update (serial-gap resync) invalidates
// everything depending on the host.
func TestResyncTearsDownHost(t *testing.T) {
	c, _, _, _ := newRevController(t, 0, nil)
	for i := 0; i < 4; i++ {
		c.HandleEvent(sampleEvent(revFlow(42000+i), 1))
	}
	c.HandleUpdate(hostB, wire.Update{Serial: 9})
	if c.CachedFlows() != 0 {
		t.Errorf("cached = %d after resync, want 0", c.CachedFlows())
	}
	if c.Counters.Get("revocations_resyncs") != 1 {
		t.Errorf("revocations_resyncs = %d", c.Counters.Get("revocations_resyncs"))
	}
}

// TestFlowRemovedDropsCacheEntry is the stale-grant-on-reuse regression:
// before the fix, a flow whose switch entry idle-timed-out was re-admitted
// from the response cache without consulting the daemons again.
func TestFlowRemovedDropsCacheEntry(t *testing.T) {
	// Revocation deliberately off: the fix must hold for every controller.
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	c := New(Config{
		Name:             "removed",
		Policy:           pf.MustCompile("removed", revPolicy),
		Transport:        tr,
		Topology:         &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
	})
	c.AddDatapath(&fakeDatapath{id: 1})
	five := revFlow(43000)
	c.HandleEvent(sampleEvent(five, 1))
	if c.CachedFlows() != 1 {
		t.Fatalf("setup: cached = %d", c.CachedFlows())
	}
	q1 := func() int { tr.mu.Lock(); defer tr.mu.Unlock(); return tr.queries }()

	c.HandleFlowRemoved(nil, openflow.FlowRemoved{
		SwitchID: 1,
		Match:    flow.FiveMatch(five),
		Cookie:   five.Hash() | 1,
		Reason:   openflow.RemovedIdleTimeout,
	})
	if c.CachedFlows() != 0 {
		t.Fatal("cache entry survived FlowRemoved: stale-grant-on-reuse")
	}

	c.HandleEvent(sampleEvent(five, 1))
	q2 := func() int { tr.mu.Lock(); defer tr.mu.Unlock(); return tr.queries }()
	if q2 <= q1 {
		t.Error("re-used flow was re-admitted without re-querying")
	}
}

// TestFlowRemovedCleansRemainingPath: with the index on, the ingress
// entry's eviction also deletes the flow's entries on the rest of the
// path, so no orphan state lingers on non-ingress switches.
func TestFlowRemovedCleansRemainingPath(t *testing.T) {
	c, _, dp1, dp2 := newRevController(t, 0, nil)
	five := revFlow(43500)
	c.HandleEvent(sampleEvent(five, 1))
	c.HandleFlowRemoved(nil, openflow.FlowRemoved{
		SwitchID: 1, Match: flow.FiveMatch(five), Cookie: five.Hash() | 1,
		Reason: openflow.RemovedIdleTimeout,
	})
	// The notifying switch gets deletes too: only its forward entry was
	// evicted, and a keep-state reverse entry could remain there.
	if n := len(dp1.deleteMods()); n != 2 {
		t.Errorf("notifying switch got %d deletes, want 2 (fwd+rev)", n)
	}
	if n := len(dp2.deleteMods()); n != 2 {
		t.Errorf("downstream switch got %d deletes, want 2 (fwd+rev)", n)
	}
	if live, _, _ := c.RevocationIndexStats(); live != 0 {
		t.Error("index registration survived FlowRemoved")
	}
}

// TestLeaseFallback: facts from hosts that never said hello expire on the
// lease; push-capable hosts are exempt.
func TestLeaseFallback(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c, _, _, _ := newRevController(t, time.Minute, clock)

	// Flow 1: neither end push-capable — leased.
	leased := revFlow(44000)
	c.HandleEvent(sampleEvent(leased, 1))

	if n := c.SweepLeases(); n != 0 {
		t.Fatalf("lease expired immediately: %d", n)
	}
	advance(2 * time.Minute)

	// Both hosts say hello before the next decision: exempt from leases.
	c.HandleUpdate(hostA, wire.Update{Hello: true, Serial: 1})
	c.HandleUpdate(hostB, wire.Update{Hello: true, Serial: 1})
	pushed := revFlow(44001)
	c.HandleEvent(sampleEvent(pushed, 1))

	if n := c.SweepLeases(); n != 1 {
		t.Fatalf("SweepLeases tore down %d flows, want 1 (the leased one)", n)
	}
	if c.Counters.Get("revocations_lease_expired") != 1 {
		t.Errorf("revocations_lease_expired = %d", c.Counters.Get("revocations_lease_expired"))
	}
	if live, _, _ := c.RevocationIndexStats(); live != 1 {
		t.Errorf("index live = %d, want the push-exempt flow only", live)
	}
	advance(2 * time.Minute)
	if n := c.SweepLeases(); n != 0 {
		t.Errorf("push-capable hosts' flow was lease-revoked (%d)", n)
	}
}

// TestRevokeHostOperator: the identctl-facing entry point.
func TestRevokeHostOperator(t *testing.T) {
	c, _, _, _ := newRevController(t, 0, nil)
	for i := 0; i < 3; i++ {
		c.HandleEvent(sampleEvent(revFlow(45000+i), 1))
	}
	if n := c.RevokeHost(hostA, "name"); n != 3 {
		t.Errorf("RevokeHost = %d, want 3", n)
	}
	if c.CachedFlows() != 0 {
		t.Errorf("cached = %d after operator revocation", c.CachedFlows())
	}
	if n := c.RevokeHost(hostA, "name"); n != 0 {
		t.Errorf("second RevokeHost = %d, want 0", n)
	}
}

// TestRevocationStorm flaps endpoint state while packet-ins hammer the
// same shard: race-clean, conservation holds, and the system quiesces into
// a decidable state. This is the revocation analogue of the PR 1 stress
// suite.
func TestRevocationStorm(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "storm",
		Policy:           pf.MustCompile("storm", revPolicy),
		Transport:        tr,
		Topology:         &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Shards:           1, // force every flow and every revocation into one shard
	})
	c.AddDatapath(dp1)

	const (
		workers    = 4
		eventsPerW = 300
		flows      = 16
	)
	var total atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Revoker: flow-scoped, key-scoped, resync, and lease sweeps, flat out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				c.HandleUpdate(hostA, wire.Update{Flow: revFlow(46000 + i%flows), Key: "name", Serial: uint64(i)})
			case 1:
				c.HandleUpdate(hostA, wire.Update{Key: "name", Serial: uint64(i)})
			case 2:
				c.HandleUpdate(hostB, wire.Update{Serial: uint64(i)})
			}
			c.SweepLeases()
			i++
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < eventsPerW; i++ {
				c.HandleEvent(sampleEvent(revFlow(46000+(w*eventsPerW+i)%flows), 1))
				total.Add(1)
			}
		}(w)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		for c.Counters.Get("packet_ins") < workers*eventsPerW {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("storm wedged")
	}

	snap := c.Counters.Snapshot()
	decided := snap["flows_allowed"] + snap["flows_denied"]
	if decided+snap["duplicate_packet_ins"]+snap["revocations_inflight"] != workers*eventsPerW {
		t.Errorf("conservation: decided=%d dup=%d voided=%d, want sum %d; %s",
			decided, snap["duplicate_packet_ins"], snap["revocations_inflight"],
			workers*eventsPerW, c.Counters)
	}
	// Quiescence: with updates stopped, a fresh decision lands and stays.
	quiet := revFlow(47000)
	c.HandleEvent(sampleEvent(quiet, 1))
	if !c.flows.shardFor(quiet).has(quiet) {
		t.Error("post-storm decision did not cache")
	}
	// Nothing pending.
	for i := range c.flows.shards {
		sh := &c.flows.shards[i]
		sh.mu.Lock()
		n := len(sh.pending)
		sh.mu.Unlock()
		if n != 0 {
			t.Errorf("shard %d still has %d pending flows", i, n)
		}
	}
}

// TestInFlightRevocationVoidsDecision pins the shard-sequence mechanism
// directly: a revocation between a decision's claim and its publication
// voids it (no cache entry, no installs beyond the teardown).
func TestInFlightRevocationVoidsDecision(t *testing.T) {
	gate := make(chan struct{})
	tr := &gatedTransport{gate: gate, inner: &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}}
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "void",
		Policy:           pf.MustCompile("void", revPolicy),
		Transport:        tr,
		Topology:         &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
	})
	c.AddDatapath(dp1)
	five := revFlow(48000)

	decided := make(chan struct{})
	go func() {
		c.HandleEvent(sampleEvent(five, 1))
		close(decided)
	}()
	tr.waitBlocked(t) // the decision is mid-gather
	c.HandleUpdate(hostA, wire.Update{Flow: five, Key: "name", Serial: 1})
	close(gate) // release the gathered responses
	<-decided

	if c.Counters.Get("revocations_inflight") != 1 {
		t.Errorf("revocations_inflight = %d, want 1", c.Counters.Get("revocations_inflight"))
	}
	if c.CachedFlows() != 0 {
		t.Error("voided decision cached its responses")
	}
	if c.Counters.Get("flows_allowed") != 0 {
		t.Error("voided decision still published a verdict")
	}
}

// gatedTransport blocks the first query until its gate opens, so a test
// can interleave a revocation mid-gather.
type gatedTransport struct {
	gate    chan struct{}
	inner   *fakeTransport
	blocked atomic.Bool
}

func (t *gatedTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	t.blocked.Store(true)
	<-t.gate
	return t.inner.Query(host, q)
}

func (t *gatedTransport) waitBlocked(tt *testing.T) {
	tt.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !t.blocked.Load() {
		if time.Now().After(deadline) {
			tt.Fatal("transport never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
