package core

import (
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// Interceptor is the role a controller plays for ident++ traffic crossing
// its network (§2, §3.4): it may answer a query on behalf of an end-host
// (spoofing the host, without forwarding the query) or augment a response
// with an additional empty-line-delimited section. "Intercepted queries are
// not allowed to cause new queries" — InterceptQuery never queries.
type Interceptor interface {
	// InterceptQuery may answer q for host on the controller's own
	// authority. ok=false passes the query through unanswered.
	InterceptQuery(host netaddr.IP, q wire.Query) (resp *wire.Response, ok bool)
	// AugmentResponse may append a section to a response in transit.
	AugmentResponse(q wire.Query, resp *wire.Response)
}

// InterceptQuery implements Interceptor using the controller's
// answer-on-behalf table.
func (c *Controller) InterceptQuery(host netaddr.IP, q wire.Query) (*wire.Response, bool) {
	st := c.state.Load()
	pairs := st.answers[host]
	if len(pairs) == 0 {
		return nil, false
	}
	c.Counters.Add("queries_intercepted", 1)
	// Unlike the decision path's answer-on-behalf views, an intercepted
	// response leaves the controller (ownership passes to the caller and
	// from there to the querier), so it cannot come from the pf pool.
	r := &wire.Response{Flow: q.Flow}
	sec := r.Augment(c.sourceTag)
	sec.Pairs = append(sec.Pairs, pairs...)
	return r, true
}

// AugmentResponse implements Interceptor: it appends a new section produced
// by the configured augmenter, the "empty line followed by the key-value
// pairs it wishes to add" of §3.4.
func (c *Controller) AugmentResponse(q wire.Query, resp *wire.Response) {
	aug := c.state.Load().augment
	if aug == nil || resp == nil {
		return
	}
	aug(q, resp)
	c.Counters.Add("responses_augmented", 1)
}

// InterceptChain applies a sequence of interceptors to a query/response
// exchange the way a path of ident++-enabled networks would (§2): the first
// interceptor willing to answer the query does so and the query stops
// travelling; otherwise the authoritative responder answers and every
// interceptor augments the response on the way back, in reverse path order.
type InterceptChain struct {
	// Outbound lists the interceptors between the querier and the host, in
	// path order.
	Outbound []Interceptor
}

// Exchange runs the chain around an authoritative responder function.
func (ch InterceptChain) Exchange(host netaddr.IP, q wire.Query,
	respond func() *wire.Response) *wire.Response {
	for _, ic := range ch.Outbound {
		if resp, ok := ic.InterceptQuery(host, q); ok {
			return resp
		}
	}
	resp := respond()
	for i := len(ch.Outbound) - 1; i >= 0; i-- {
		ch.Outbound[i].AugmentResponse(q, resp)
	}
	return resp
}
