package core

import (
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// fakeTransport serves canned responses per host.
type fakeTransport struct {
	mu         sync.Mutex
	responses  map[netaddr.IP]map[string]string // host -> kv
	rtt        time.Duration
	queries    int
	keysByHost map[netaddr.IP][]string // copied: q.Keys is borrowed scratch
}

func (t *fakeTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queries++
	if t.keysByHost == nil {
		t.keysByHost = make(map[netaddr.IP][]string)
	}
	t.keysByHost[host] = append([]string(nil), q.Keys...)
	kv, ok := t.responses[host]
	if !ok {
		return nil, t.rtt, ErrNoDaemon
	}
	r := wire.NewResponse(q.Flow)
	for k, v := range kv {
		r.Add(k, v)
	}
	return r, t.rtt, nil
}

// fakeTopo returns a fixed two-hop path for every flow.
type fakeTopo struct {
	hops []Hop
	err  error
}

func (t *fakeTopo) Path(src, dst netaddr.IP) ([]Hop, error) { return t.hops, t.err }

// fakeDatapath records applied mods.
type fakeDatapath struct {
	id        uint64
	mu        sync.Mutex
	mods      []openflow.FlowMod
	released  []uint32
	outs      []uint16
	outFrames [][]byte
}

func (d *fakeDatapath) DatapathID() uint64 { return d.id }
func (d *fakeDatapath) Apply(m openflow.FlowMod) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mods = append(d.mods, m)
	return nil
}
func (d *fakeDatapath) PacketOut(port uint16, frame []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.outs = append(d.outs, port)
	d.outFrames = append(d.outFrames, frame)
}
func (d *fakeDatapath) ReleaseBuffer(id uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.released = append(d.released, id)
}
func (d *fakeDatapath) modCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.mods)
}

var (
	hostA = netaddr.MustParseIP("10.0.0.1")
	hostB = netaddr.MustParseIP("10.0.0.2")
)

func sampleEvent(five flow.Five, swID uint64) openflow.PacketIn {
	return openflow.PacketIn{
		SwitchID: swID,
		BufferID: 7,
		InPort:   1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
			SrcPort: five.SrcPort, DstPort: five.DstPort,
		},
	}
}

func newTestController(policySrc string, tr QueryTransport, topo Topology) (*Controller, *fakeDatapath, *fakeDatapath) {
	dp1 := &fakeDatapath{id: 1}
	dp2 := &fakeDatapath{id: 2}
	c := New(Config{
		Name:           "ctl",
		Policy:         pf.MustCompile("policy", policySrc),
		Transport:      tr,
		Topology:       topo,
		InstallEntries: true,
	})
	c.AddDatapath(dp1)
	c.AddDatapath(dp2)
	return c, dp1, dp2
}

func TestPassInstallsAlongPathAndReleasesBuffer(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}, {Datapath: 2, OutPort: 3}}}
	c, dp1, dp2 := newTestController(`
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
`, tr, topo)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))

	if dp1.modCount() != 1 || dp2.modCount() != 1 {
		t.Fatalf("mods: dp1=%d dp2=%d, want 1 each (preemptive path install)", dp1.modCount(), dp2.modCount())
	}
	// Ingress switch's mod carries the buffer id so the packet proceeds.
	if dp1.mods[0].BufferID != 7 {
		t.Errorf("ingress mod buffer = %d, want 7", dp1.mods[0].BufferID)
	}
	if dp2.mods[0].BufferID != openflow.BufferNone {
		t.Errorf("downstream mod must not reference the buffer")
	}
	if dp1.mods[0].Actions[0] != (openflow.Action{Type: openflow.ActionOutput, Port: 2}) {
		t.Errorf("ingress action = %+v", dp1.mods[0].Actions)
	}
	if dp2.mods[0].Actions[0].Port != 3 {
		t.Errorf("downstream action = %+v", dp2.mods[0].Actions)
	}
	if c.Counters.Get("flows_allowed") != 1 {
		t.Error("allow counter not bumped")
	}
	if c.Audit.Total() != 1 {
		t.Error("no audit entry")
	}
}

func TestBlockInstallsDropAndReleases(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "dropbox"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`
block all
pass from any to any with eq(@src[name], skype)
`, tr, topo)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))

	if len(dp1.released) != 1 || dp1.released[0] != 7 {
		t.Error("buffered packet of denied flow must be released (dropped)")
	}
	if dp1.modCount() != 1 || dp1.mods[0].Actions[0].Type != openflow.ActionDrop {
		t.Fatalf("expected one drop entry, got %+v", dp1.mods)
	}
	if c.Counters.Get("flows_denied") != 1 {
		t.Error("deny counter not bumped")
	}
}

func TestKeepStateInstallsReversePath(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "firefox"}, hostB: {"name": "httpd"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`
block all
pass from any to any keep state
`, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))
	if dp1.modCount() != 2 {
		t.Fatalf("mods = %d, want forward + reverse", dp1.modCount())
	}
	fwd := dp1.mods[0].Match.Tuple
	rev := dp1.mods[1].Match.Tuple
	if fwd.SrcIP != five.SrcIP || rev.SrcIP != five.DstIP || rev.DstPort != five.SrcPort {
		t.Errorf("reverse entry wrong: fwd=%v rev=%v", fwd, rev)
	}
}

func TestNoDaemonFailsClosedUnderDefaultDeny(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{}} // nobody answers
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`
block all
pass from any to any with eq(@src[name], skype)
`, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_denied") != 1 {
		t.Error("flow without responses should be denied by block all")
	}
	if c.Counters.Get("query_errors") != 2 {
		t.Errorf("query_errors = %d, want 2", c.Counters.Get("query_errors"))
	}
	if dp1.mods[0].Actions[0].Type != openflow.ActionDrop {
		t.Error("expected drop entry")
	}
}

func TestAnswerOnBehalf(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "backup-agent"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`
block all
pass from any to any with eq(@dst[type], printer)
`, tr, topo)
	// hostB is a printer with no daemon; the administrator registers its
	// identity with the controller (§4 incremental benefit).
	c.AnswerForHost(hostB, wire.KV{Key: wire.KeyType, Value: "printer"})
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 631}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_allowed") != 1 {
		t.Errorf("printer flow should pass via answer-on-behalf; counters: %s", c.Counters)
	}
	if c.Counters.Get("answered_on_behalf") != 1 {
		t.Error("answered_on_behalf not counted")
	}
}

func TestQueryKeysDerivedFromPolicy(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{hostA: {"name": "x"}}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`
block all
pass from any to any with eq(@src[name], skype) with lt(@src[version], 200) with includes(@dst[os-patch], MS08-067)
`, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	c.HandleEvent(sampleEvent(five, 1))
	tr.mu.Lock()
	srcKeys := tr.keysByHost[hostA]
	dstKeys := tr.keysByHost[hostB]
	tr.mu.Unlock()
	// Hints are per end since the compiler's key analysis: each daemon is
	// asked only for the keys a rule could read from its side of the flow.
	wantEq := func(got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("keys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("keys = %v, want %v", got, want)
			}
		}
	}
	wantEq(srcKeys, []string{"name", "version"})
	wantEq(dstKeys, []string{"os-patch"})
}

// TestQueryKeysDifferPerFlow: the per-rule key sets narrow hints to the
// rules a given flow could still match — two flows under one policy ask
// for different keys.
func TestQueryKeysDifferPerFlow(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{hostA: {"name": "x"}}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`
block all
pass from any to any port 80 with eq(@src[name], web)
pass from any to any port 22 with eq(@src[userID], root)
`, tr, topo)
	web := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 80}
	c.HandleEvent(sampleEvent(web, 1))
	tr.mu.Lock()
	got := append([]string(nil), tr.keysByHost[hostA]...)
	tr.mu.Unlock()
	if len(got) != 1 || got[0] != "name" {
		t.Errorf("port-80 flow src hints = %v, want [name]", got)
	}
	ssh := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 22}
	c.HandleEvent(sampleEvent(ssh, 1))
	tr.mu.Lock()
	got = append([]string(nil), tr.keysByHost[hostA]...)
	tr.mu.Unlock()
	if len(got) != 1 || got[0] != "userID" {
		t.Errorf("port-22 flow src hints = %v, want [userID]", got)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	block := make(chan struct{})
	slow := &slowTransport{unblock: block}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	// The rule must read an endpoint key: a pure header rule would be
	// decided by the pre-pass without ever touching the (slow) transport.
	c, dp1, _ := newTestController(`pass from any to any with eq(@src[name], skype)`, slow, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.HandleEvent(sampleEvent(five, 1)) // slow first packet
	}()
	slow.waitUntilQuerying()
	// Second packet of the same flow arrives while the first is deciding.
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("duplicate_packet_ins") != 1 {
		t.Error("duplicate packet-in not suppressed")
	}
	close(block)
	wg.Wait()
	if dp1.modCount() != 1 {
		t.Errorf("mods = %d, want 1", dp1.modCount())
	}
}

type slowTransport struct {
	unblock  chan struct{}
	mu       sync.Mutex
	querying chan struct{}
	once     sync.Once
}

func (s *slowTransport) waitUntilQuerying() {
	s.mu.Lock()
	if s.querying == nil {
		s.querying = make(chan struct{})
	}
	ch := s.querying
	s.mu.Unlock()
	<-ch
}

func (s *slowTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	s.mu.Lock()
	if s.querying == nil {
		s.querying = make(chan struct{})
	}
	ch := s.querying
	s.mu.Unlock()
	s.once.Do(func() { close(ch) })
	<-s.unblock
	return wire.NewResponse(q.Flow), 0, nil
}

func TestResponseCache(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"}, hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp := &fakeDatapath{id: 1}
	c := New(Config{
		Name: "ctl", Policy: pf.MustCompile("p", `pass from any to any with eq(@src[name], skype)`),
		Transport: tr, Topology: topo, InstallEntries: true,
		ResponseCacheTTL: time.Minute,
	})
	c.AddDatapath(dp)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	c.HandleEvent(sampleEvent(five, 1))
	c.HandleEvent(sampleEvent(five, 1))
	if tr.queries != 2 {
		t.Errorf("queries = %d, want 2 (second event served from cache)", tr.queries)
	}
	if c.Counters.Get("response_cache_hits") != 1 {
		t.Error("cache hit not counted")
	}
}

func TestSetPolicyFlushesAndRevokes(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"}, hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`pass from any to any`, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	c.HandleEvent(sampleEvent(five, 1))
	c.SetPolicy(pf.MustCompile("p2", `block all`))
	// The flush is a delete-all FlowMod.
	dp1.mu.Lock()
	last := dp1.mods[len(dp1.mods)-1]
	dp1.mu.Unlock()
	if !last.Delete {
		t.Error("SetPolicy should flush switch tables")
	}
	// New flows evaluate under the new policy.
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_denied") != 1 {
		t.Error("new policy not applied")
	}
}

func TestRevokeFlow(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{hostA: {"name": "x"}, hostB: {"name": "x"}}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, dp2 := newTestController(`pass from any to any`, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	c.HandleEvent(sampleEvent(five, 1))
	c.RevokeFlow(five)
	for _, dp := range []*fakeDatapath{dp1, dp2} {
		dp.mu.Lock()
		last := dp.mods[len(dp.mods)-1]
		dp.mu.Unlock()
		if !last.Delete || last.Cookie != five.Hash()|1 {
			t.Errorf("dp%d: revoke mod = %+v", dp.id, last)
		}
	}
}

func TestNonIPDropped(t *testing.T) {
	tr := &fakeTransport{}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`pass from any to any`, tr, topo)
	ev := openflow.PacketIn{SwitchID: 1, BufferID: 3, Tuple: flow.Ten{EthType: flow.EthTypeARP}}
	c.HandleEvent(ev)
	if len(dp1.released) != 1 {
		t.Error("non-IP buffer not released")
	}
	if c.Counters.Get("non_ip_dropped") != 1 {
		t.Error("non-IP counter not bumped")
	}
}

func TestInstallEntriesAblation(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{hostA: {"name": "x"}, hostB: {"name": "x"}}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp := &fakeDatapath{id: 1}
	c := New(Config{
		Name: "ctl", Policy: pf.MustCompile("p", `pass from any to any`),
		Transport: tr, Topology: topo, InstallEntries: false,
	})
	c.AddDatapath(dp)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	ev := sampleEvent(five, 1)
	ev.Frame = []byte{1} // non-empty so the controller can packet-out
	c.HandleEvent(ev)
	if dp.modCount() != 0 {
		t.Error("ablation mode must not install entries")
	}
	if len(dp.outs) != 1 || dp.outs[0] != 2 {
		t.Errorf("packet should still be forwarded once: %v", dp.outs)
	}
}

func TestAuditEntriesAndDenials(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{hostA: {"name": "dropbox"}}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`
block all
pass from any to any with eq(@src[name], skype)
`, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	c.HandleEvent(sampleEvent(five, 1))
	entries := c.Audit.Entries()
	if len(entries) != 1 {
		t.Fatalf("audit entries = %d", len(entries))
	}
	if entries[0].Action != pf.Block || entries[0].Flow != five {
		t.Errorf("audit entry = %+v", entries[0])
	}
	if len(c.Audit.Denials()) != 1 {
		t.Error("denials not found")
	}
	if entries[0].String() == "" {
		t.Error("empty audit string")
	}
}

func TestInterceptChainAnswersAndAugments(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	cA, _, _ := newTestController(`pass from any to any`, tr, topo)
	cB, _, _ := newTestController(`pass from any to any`, tr, topo)
	cB.SetAugmenter(func(q wire.Query, resp *wire.Response) {
		resp.Augment("controller:B").Add("netpath", "branchB")
	})

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	q := wire.Query{Flow: five}

	// Augmentation: the authoritative answer passes through B.
	resp := InterceptChain{Outbound: []Interceptor{cB}}.Exchange(hostB, q, func() *wire.Response {
		r := wire.NewResponse(five)
		r.Add("name", "httpd")
		return r
	})
	if v, _ := resp.Latest("netpath"); v != "branchB" {
		t.Errorf("augmented netpath = %q", v)
	}
	if len(resp.Sections) != 2 {
		t.Errorf("sections = %d, want 2", len(resp.Sections))
	}

	// Interception: A answers on behalf of the host; the chain stops.
	cA.AnswerForHost(hostB, wire.KV{Key: "type", Value: "printer"})
	called := false
	resp2 := InterceptChain{Outbound: []Interceptor{cA, cB}}.Exchange(hostB, q, func() *wire.Response {
		called = true
		return nil
	})
	if called {
		t.Error("intercepted query must not reach the daemon")
	}
	if v, _ := resp2.Latest("type"); v != "printer" {
		t.Errorf("intercepted answer = %q", v)
	}
}

func TestConcurrentHandleEvent(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{hostA: {"name": "x"}, hostB: {"name": "x"}}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`pass from any to any`, tr, topo)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
				SrcPort: netaddr.Port(1000 + i), DstPort: 80}
			c.HandleEvent(sampleEvent(five, 1))
		}(i)
	}
	wg.Wait()
	if got := c.Counters.Get("flows_allowed"); got != 16 {
		t.Errorf("flows_allowed = %d, want 16", got)
	}
	if c.Audit.Total() != 16 {
		t.Errorf("audit total = %d", c.Audit.Total())
	}
}

func BenchmarkHandleEventCachedPolicy(b *testing.B) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype", "version": "210"},
		hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
`, tr, topo)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
			SrcPort: netaddr.Port(i), DstPort: 80}
		c.HandleEvent(sampleEvent(five, 1))
	}
}
