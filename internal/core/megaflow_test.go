package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// megaPolicy reads endpoint state from the destination only: the matched
// path consumes DstIP (key read pins the queried end) and DstPort (the
// port guard), so every source talking to the same service is one traffic
// equivalence class.
const megaPolicy = "block all\npass from any to any port 5060 with eq(@dst[name], skype)"

func newMegaController(t *testing.T, policy string, leaseTTL time.Duration, clock func() time.Time) (*Controller, *fakeTransport, *fakeDatapath, *fakeDatapath) {
	t.Helper()
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	dp1 := &fakeDatapath{id: 1}
	dp2 := &fakeDatapath{id: 2}
	c := New(Config{
		Name:               "mega",
		Policy:             pf.MustCompile("mega", policy),
		Transport:          tr,
		Topology:           &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}, {Datapath: 2, OutPort: 3}}},
		InstallEntries:     true,
		ResponseCacheTTL:   time.Hour,
		Revocation:         true,
		RevocationLeaseTTL: leaseTTL,
		Megaflow:           true,
		Clock:              clock,
	})
	c.AddDatapath(dp1)
	c.AddDatapath(dp2)
	return c, tr, dp1, dp2
}

func megaFlow(src netaddr.IP, sp int) flow.Five {
	return flow.Five{SrcIP: src, DstIP: hostB, Proto: netaddr.ProtoTCP,
		SrcPort: netaddr.Port(sp), DstPort: 5060}
}

func (t *fakeTransport) queryCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queries
}

// TestMegaflowClassHit is the tentpole's core contract: the first flow of
// a class decides and widens; every later flow agreeing on the traced
// fields resolves from the megaflow table — no query, no evaluation, no
// exact-cache line of its own — and its installs carry the class cookie.
func TestMegaflowClassHit(t *testing.T) {
	c, tr, dp1, _ := newMegaController(t, megaPolicy, 0, nil)

	founder := megaFlow(hostA, 40000)
	c.HandleEvent(sampleEvent(founder, 1))
	if got := c.Counters.Get("flows_allowed"); got != 1 {
		t.Fatalf("founder not allowed; %s", c.Counters)
	}
	live, hits, installs, _ := c.MegaflowStats()
	if live != 1 || installs != 1 || hits != 0 {
		t.Fatalf("after founder: live=%d hits=%d installs=%d, want 1/0/1", live, hits, installs)
	}
	if c.CachedFlows() != 1 {
		t.Fatalf("founder exact entry missing: cached=%d", c.CachedFlows())
	}
	queriesAfterFounder := tr.queryCount()
	modsAfterFounder := dp1.modCount()

	// Members: same destination service, different source port and even a
	// different (daemon-less) source host — all inside the founder's class.
	hostC := netaddr.MustParseIP("10.0.0.3")
	members := []flow.Five{megaFlow(hostA, 40001), megaFlow(hostC, 12345)}
	for _, f := range members {
		c.HandleEvent(sampleEvent(f, 1))
	}
	if got := c.Counters.Get("flows_allowed"); got != 3 {
		t.Fatalf("members not allowed; %s", c.Counters)
	}
	if got := tr.queryCount(); got != queriesAfterFounder {
		t.Errorf("members queried daemons: %d -> %d queries", queriesAfterFounder, got)
	}
	_, hits, installs, _ = c.MegaflowStats()
	if hits != 2 || installs != 1 {
		t.Errorf("after members: hits=%d installs=%d, want 2/1", hits, installs)
	}
	if c.CachedFlows() != 1 {
		t.Errorf("members accreted exact entries: cached=%d, want 1", c.CachedFlows())
	}

	// Member installs carry the even class cookie; the founder's carry its
	// odd exact cookie. One wildcard delete per datapath can therefore
	// tear the whole class without touching the founder's exact entries.
	founderCookie := founder.Hash() | 1
	dp1.mu.Lock()
	memberMods := dp1.mods[modsAfterFounder:]
	var classCookie uint64
	for _, m := range memberMods {
		if m.Cookie == founderCookie {
			t.Errorf("member install reused the founder's exact cookie %#x", m.Cookie)
		}
		if m.Cookie&1 != 0 {
			t.Errorf("member install cookie %#x is odd; class cookies are even", m.Cookie)
		}
		if classCookie == 0 {
			classCookie = m.Cookie
		} else if m.Cookie != classCookie {
			t.Errorf("member installs disagree on class cookie: %#x vs %#x", m.Cookie, classCookie)
		}
	}
	if len(memberMods) == 0 {
		t.Error("member hits installed no entries")
	}
	dp1.mu.Unlock()
}

// TestMegaflowFactUpdateTearsDownClass: revoking a fact the widened
// verdict read tears down the megaflow entry and deletes every member's
// installed entries with one cookie-scoped wildcard per datapath.
func TestMegaflowFactUpdateTearsDownClass(t *testing.T) {
	c, tr, dp1, dp2 := newMegaController(t, megaPolicy, 0, nil)

	c.HandleEvent(sampleEvent(megaFlow(hostA, 40000), 1)) // founder
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40001), 1)) // member
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40002), 1)) // member
	_, hits, _, _ := c.MegaflowStats()
	if hits != 2 {
		t.Fatalf("setup: member hits = %d, want 2", hits)
	}

	c.HandleUpdate(hostB, wire.Update{Key: "name", Old: "skype", New: "", Serial: 1})

	live, _, _, teardowns := c.MegaflowStats()
	if live != 0 || teardowns != 1 {
		t.Fatalf("after update: live=%d teardowns=%d, want 0/1", live, teardowns)
	}
	for _, dp := range []*fakeDatapath{dp1, dp2} {
		found := false
		for _, m := range dp.deleteMods() {
			if m.Cookie&1 == 0 && m.Match == flow.MatchAll() {
				found = true
			}
		}
		if !found {
			t.Errorf("dp%d: no cookie-scoped wildcard delete for the class", dp.id)
		}
	}

	// The next member packet finds no class and re-decides from scratch:
	// daemons re-queried, a fresh widened entry installed.
	before := tr.queryCount()
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40003), 1))
	if got := tr.queryCount(); got == before {
		t.Error("post-teardown member did not re-query")
	}
	live, _, installs, _ := c.MegaflowStats()
	if live != 1 || installs != 2 {
		t.Errorf("post-teardown re-widen: live=%d installs=%d, want 1/2", live, installs)
	}
}

// TestMegaflowSetPolicyFlush: a policy swap empties the class table the
// same way it flushes the exact cache; stale verdicts never survive into
// the new epoch.
func TestMegaflowSetPolicyFlush(t *testing.T) {
	c, tr, _, _ := newMegaController(t, megaPolicy, 0, nil)
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40000), 1))
	if live, _, _, _ := c.MegaflowStats(); live != 1 {
		t.Fatalf("setup: live = %d", live)
	}

	c.SetPolicy(pf.MustCompile("mega2", megaPolicy))
	if live, _, _, _ := c.MegaflowStats(); live != 0 {
		t.Fatalf("after SetPolicy: live = %d, want 0", live)
	}

	before := tr.queryCount()
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40001), 1))
	if tr.queryCount() == before {
		t.Error("post-swap flow did not re-query")
	}
	_, hits, installs, _ := c.MegaflowStats()
	if hits != 0 || installs != 2 {
		t.Errorf("post-swap: hits=%d installs=%d, want 0/2", hits, installs)
	}
}

// TestMegaflowTTLExpiry: widened entries share the response-cache TTL. An
// expired class stops serving hits, and the displacing re-decision counts
// it as expired without issuing deletes — switch entries idle out, exactly
// like the exact cache's expiry semantics.
func TestMegaflowTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	c, tr, dp1, _ := newMegaController(t, megaPolicy, 0, clock)

	c.HandleEvent(sampleEvent(megaFlow(hostA, 40000), 1))
	deletesBefore := len(dp1.deleteMods())

	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()

	before := tr.queryCount()
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40001), 1))
	if tr.queryCount() == before {
		t.Error("expired class still served a hit")
	}
	if got := c.Counters.Get("megaflow_expired"); got != 1 {
		t.Errorf("megaflow_expired = %d, want 1", got)
	}
	if got := len(dp1.deleteMods()); got != deletesBefore {
		t.Errorf("expiry issued deletes: %d -> %d; entries should idle out", deletesBefore, got)
	}
	live, _, installs, _ := c.MegaflowStats()
	if live != 1 || installs != 2 {
		t.Errorf("post-expiry: live=%d installs=%d, want 1/2", live, installs)
	}
}

// TestMegaflowRevokeFlowMemberTearsClass: revoking one member tears down
// the whole class — the member's installed entries carry the class
// cookie, unreachable by exact-cookie deletes, so conservative class
// teardown is the only correct answer.
func TestMegaflowRevokeFlowMemberTearsClass(t *testing.T) {
	c, _, dp1, _ := newMegaController(t, megaPolicy, 0, nil)
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40000), 1)) // founder
	member := megaFlow(hostA, 40001)
	c.HandleEvent(sampleEvent(member, 1))

	c.RevokeFlow(member)

	live, _, _, teardowns := c.MegaflowStats()
	if live != 0 || teardowns != 1 {
		t.Fatalf("after RevokeFlow(member): live=%d teardowns=%d, want 0/1", live, teardowns)
	}
	found := false
	for _, m := range dp1.deleteMods() {
		if m.Cookie&1 == 0 && m.Match == flow.MatchAll() {
			found = true
		}
	}
	if !found {
		t.Error("class entries not deleted after member revocation")
	}
}

// TestMegaflowFullMaskNotWidened: a policy whose matched path reads both
// ends consumes all four header fields, so the class is a single flow and
// no megaflow entry is installed — the exact cache already covers it.
func TestMegaflowFullMaskNotWidened(t *testing.T) {
	c, _, _, _ := newMegaController(t, revPolicy, 0, nil)
	c.HandleEvent(sampleEvent(megaFlow(hostA, 40000), 1))
	if got := c.Counters.Get("flows_allowed"); got != 1 {
		t.Fatalf("flow not allowed; %s", c.Counters)
	}
	live, _, installs, _ := c.MegaflowStats()
	if live != 0 || installs != 0 {
		t.Errorf("full-mask verdict was widened: live=%d installs=%d", live, installs)
	}
}

// TestMegaflowUpdateRacingInstallVoidsDecision: a fact update arriving
// while the founder is mid-gather bumps the shard's revocation sequence;
// the decision voids itself and no widened entry is ever published on the
// pre-update facts.
func TestMegaflowUpdateRacingInstallVoidsDecision(t *testing.T) {
	gate := make(chan struct{})
	tr := &gatedTransport{gate: gate, inner: &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}}
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "mega-race",
		Policy:           pf.MustCompile("mega", megaPolicy),
		Transport:        tr,
		Topology:         &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Megaflow:         true,
	})
	c.AddDatapath(dp1)

	five := megaFlow(hostA, 40000)
	decided := make(chan struct{})
	go func() {
		c.HandleEvent(sampleEvent(five, 1))
		close(decided)
	}()
	tr.waitBlocked(t) // founder is mid-gather
	c.HandleUpdate(hostB, wire.Update{Flow: five, Key: "name", Old: "skype", New: "", Serial: 1})
	close(gate)
	<-decided

	if got := c.Counters.Get("revocations_inflight"); got != 1 {
		t.Errorf("revocations_inflight = %d, want 1", got)
	}
	live, _, installs, _ := c.MegaflowStats()
	if live != 0 || installs != 0 {
		t.Errorf("voided decision published a megaflow: live=%d installs=%d", live, installs)
	}
	if dp1.modCount() != 0 {
		t.Errorf("voided decision installed %d mods", dp1.modCount())
	}
}

// gatedInstallDatapath wedges non-delete Apply calls once armed, so a
// test can interleave a class teardown with a member hit that is mid-
// install. Deletes pass through: the teardown side must stay live.
type gatedInstallDatapath struct {
	*fakeDatapath
	armed   atomic.Bool
	blocked atomic.Bool
	gate    chan struct{}
}

func (d *gatedInstallDatapath) Apply(m openflow.FlowMod) error {
	if !m.Delete && d.armed.Load() {
		d.blocked.Store(true)
		<-d.gate
	}
	return d.fakeDatapath.Apply(m)
}

func (d *gatedInstallDatapath) waitBlocked(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !d.blocked.Load() {
		if time.Now().After(deadline) {
			t.Fatal("datapath never blocked")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMegaflowHitRacingTeardownSelfCleans exercises the dead-flag half of
// the teardown handshake: a member hit that is installing entries when
// the class is torn down finds addPaths refused and deletes its own
// installs, so no switch entry survives unaccounted.
func TestMegaflowHitRacingTeardownSelfCleans(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	dp1 := &gatedInstallDatapath{fakeDatapath: &fakeDatapath{id: 1}, gate: make(chan struct{})}
	c := New(Config{
		Name:             "mega-selfclean",
		Policy:           pf.MustCompile("mega", megaPolicy),
		Transport:        tr,
		Topology:         &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Megaflow:         true,
	})
	c.AddDatapath(dp1)

	c.HandleEvent(sampleEvent(megaFlow(hostA, 40000), 1)) // founder widens
	if live, _, _, _ := c.MegaflowStats(); live != 1 {
		t.Fatalf("setup: live = %d", live)
	}

	dp1.armed.Store(true)
	memberDone := make(chan struct{})
	go func() {
		c.HandleEvent(sampleEvent(megaFlow(hostA, 40001), 1)) // member hit
		close(memberDone)
	}()
	dp1.waitBlocked(t) // member is mid-install, paths not yet published

	// Tear the class down while the member's installs are in flight. The
	// teardown's path snapshot cannot include the member's datapath (it
	// has not called addPaths yet), so the member must clean up itself.
	c.HandleUpdate(hostB, wire.Update{Key: "name", Old: "skype", New: "", Serial: 1})
	if _, _, _, teardowns := c.MegaflowStats(); teardowns != 1 {
		t.Fatalf("teardowns = %d, want 1", teardowns)
	}

	close(dp1.gate)
	<-memberDone

	if got := c.Counters.Get("megaflow_hit_raced"); got != 1 {
		t.Fatalf("megaflow_hit_raced = %d, want 1", got)
	}
	found := false
	for _, m := range dp1.deleteMods() {
		if m.Cookie&1 == 0 && m.Match == flow.MatchAll() {
			found = true
		}
	}
	if !found {
		t.Error("raced member hit did not delete its own installs")
	}
}

// TestMegaflowRequiresCacheTTL: the megaflow layer leans on the response
// cache's TTL for its own expiry; enabling it without one is a config
// error caught at construction.
func TestMegaflowRequiresCacheTTL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Megaflow without ResponseCacheTTL) did not panic")
		}
	}()
	New(Config{
		Name:      "bad",
		Policy:    pf.MustCompile("p", "block all"),
		Transport: &fakeTransport{},
		Megaflow:  true,
	})
}
