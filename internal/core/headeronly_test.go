package core

import (
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// headerOnlyPolicy mixes pure header rules with key-dependent ones: flows
// on ports 80/8080 from 10/8 are decidable from the header alone; port
// 443 needs @src[name].
const headerOnlyPolicy = `
block all
pass from 10.0.0.0/8 to any port { 80, 8080 } keep state
pass from any to any port 443 with eq(@src[name], web)
`

// forbiddenTransport fails the test if the controller queries at all.
type forbiddenTransport struct{ t *testing.T }

func (tr forbiddenTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	tr.t.Errorf("header-only flow queried %s (keys %v)", host, q.Keys)
	return nil, 0, ErrNoDaemon
}

func TestHeaderOnlyFlowDecidesWithoutQueries(t *testing.T) {
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "ho",
		Policy:           pf.MustCompile("ho", headerOnlyPolicy),
		Transport:        forbiddenTransport{t},
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: time.Minute,
	})
	c.AddDatapath(dp)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80}
	c.HandleEvent(sampleEvent(five, 1))

	if got := c.Counters.Get("decisions_headeronly"); got != 1 {
		t.Errorf("decisions_headeronly = %d, want 1", got)
	}
	if c.Counters.Get("flows_allowed") != 1 {
		t.Errorf("flow should pass on the header rule; counters: %s", c.Counters)
	}
	// keep state: forward + reverse entries installed like any verdict.
	if dp.modCount() != 2 {
		t.Errorf("mods = %d, want forward + reverse", dp.modCount())
	}
	// Header-only decisions gather nothing; the response cache must not
	// hold an entry for them.
	if n := c.CachedFlows(); n != 0 {
		t.Errorf("CachedFlows = %d, want 0 (nothing was gathered)", n)
	}
	if c.Audit.Total() != 1 {
		t.Error("header-only decision must still be audited")
	}

	// A denied header-only flow (port outside every pass rule).
	denied := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 25}
	c.HandleEvent(sampleEvent(denied, 1))
	if got := c.Counters.Get("decisions_headeronly"); got != 2 {
		t.Errorf("decisions_headeronly = %d, want 2", got)
	}
	if c.Counters.Get("flows_denied") != 1 {
		t.Error("port-25 flow should be denied from the header")
	}
}

func TestKeyDependentFlowStillQueries(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "web"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(headerOnlyPolicy, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 443}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("decisions_headeronly") != 0 {
		t.Error("port-443 flow must not be header-only")
	}
	if tr.queries != 2 {
		t.Errorf("queries = %d, want 2", tr.queries)
	}
	if c.Counters.Get("flows_allowed") != 1 {
		t.Errorf("eq(@src[name], web) should pass; counters: %s", c.Counters)
	}
	// The src query's hints name only the keys that still matter.
	tr.mu.Lock()
	srcKeys := tr.keysByHost[hostA]
	tr.mu.Unlock()
	if len(srcKeys) != 1 || srcKeys[0] != "name" {
		t.Errorf("src hints = %v, want [name]", srcKeys)
	}
}

// TestHeaderOnlyResolvesParkedDuplicates: waiter resolution is part of
// finishDecision, which header-only decisions share; a duplicate arriving
// between begin and resolve is released, not leaked. The decision is
// synchronous so the window is closed by the time HandleEvent returns —
// the test drives the shard directly to stage the duplicate.
func TestHeaderOnlyDuplicateAccounting(t *testing.T) {
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp := &fakeDatapath{id: 1}
	c := New(Config{
		Name:           "ho-dup",
		Policy:         pf.MustCompile("ho", headerOnlyPolicy),
		Transport:      forbiddenTransport{t},
		Topology:       topo,
		InstallEntries: true,
	})
	c.AddDatapath(dp)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 80}
	// Stage a parked duplicate as if a second packet-in raced the first.
	sh := c.flows.shardFor(five)
	if first, _ := sh.begin(five, dp, sampleEvent(five, 1)); !first {
		t.Fatal("staging owner failed")
	}
	ev2 := sampleEvent(five, 1)
	ev2.BufferID = 99
	if first, parked := sh.begin(five, dp, ev2); first || !parked {
		t.Fatal("duplicate did not park")
	}
	// Resolve through the real decision path: the owner's verdict must
	// release the parked buffer.
	s := acquireScratch()
	s.sh, s.dp, s.ev, s.five = sh, dp, sampleEvent(five, 1), five
	g := &s.gather
	g.c, g.st = c, c.state.Load()
	d, ok, _, _ := g.st.prog.Prepass(five, nil, nil)
	if !ok {
		t.Fatal("flow should be header-only decidable")
	}
	g.pre, g.preDecided = d, true
	c.finishDecision(s)
	if c.Counters.Get("waiters_resolved") != 1 {
		t.Errorf("waiters_resolved = %d, want 1", c.Counters.Get("waiters_resolved"))
	}
	found := false
	dp.mu.Lock()
	for _, id := range dp.released {
		if id == 99 {
			found = true
		}
	}
	dp.mu.Unlock()
	if !found {
		t.Error("parked duplicate's buffer not released")
	}
}

// TestHeaderOnlySurvivesPolicySwap: SetPolicy replaces the compiled
// program in the snapshot; flows decidable under the old program but not
// the new one must start querying again (and vice versa).
func TestHeaderOnlyPolicySwap(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(headerOnlyPolicy, tr, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 80}
	c.HandleEvent(sampleEvent(five, 1))
	if tr.queries != 0 {
		t.Fatalf("queries = %d before swap, want 0", tr.queries)
	}
	c.SetPolicy(pf.MustCompile("v2", `
block all
pass from any to any with eq(@src[name], anything)
`))
	c.HandleEvent(sampleEvent(five, 1))
	if tr.queries != 2 {
		t.Errorf("queries = %d after swap, want 2 (new policy needs keys)", tr.queries)
	}
	if c.Counters.Get("decisions_headeronly") != 1 {
		t.Errorf("decisions_headeronly = %d, want 1 (only the pre-swap event)", c.Counters.Get("decisions_headeronly"))
	}
}
