package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/revoke"
)

// The megaflow layer caches one verdict per traffic equivalence class
// instead of one per exact 5-tuple — the Open vSwitch megaflow insight
// applied to the paper's controller. A full decision run under the
// field-use trace (pf.EvaluateTraced) reports which header fields the
// matched path actually consumed; every flow agreeing with the decided
// flow on exactly those fields takes the same path through the program
// and gets the same verdict, so finishDecision installs one widened
// entry keyed by the masked tuple and every member of the class resolves
// in a single table probe — no query, no evaluation, no exact-cache
// line per member.
//
// Correctness leans on three invariants:
//
//   - Entries are pinned to the policy epoch and the response-cache TTL,
//     exactly like exact entries, so SetPolicy and expiry invalidate them
//     identically.
//   - Entries whose verdict read endpoint facts register those facts in
//     the revocation index's wide side (one entry ↔ many installed
//     paths), so a daemon-pushed update tears the whole class down in
//     O(affected). The trace forces a queried end's IP and port into the
//     mask, so every member of a class shares the traced end — the facts
//     of one member are the facts of all.
//   - A teardown racing a member's in-flight hit is settled by the dead
//     flag: the teardown's path snapshot is taken under the entry lock,
//     and a hit that installed entries after the snapshot finds
//     addPaths refused and deletes its own installs (the hit self-
//     cleans). Either the teardown saw the paths or the hit cleans up;
//     no switch entry survives unaccounted.

// megaKey identifies one equivalence class: the founder's tuple with
// untraced fields zeroed, plus the mask itself (the same masked bytes
// under different masks are different classes).
type megaKey struct {
	masked flow.Five
	mask   uint8
}

// megaEntry is one widened verdict. The verdict fields are copies — no
// response views are retained, so the entry never pins pooled memory.
type megaEntry struct {
	id      uint64
	cookie  uint64 // id<<1: even, disjoint from exact cookies (hash|1, odd)
	founder flow.Five
	masked  flow.Five
	mask    uint8
	epoch   uint64
	expires time.Time

	action    pf.Action
	rule      *pf.Rule
	matched   bool
	keepState bool

	hits atomic.Int64

	// dead flips exactly once, under mu, when the entry is retired;
	// lookup reads it lock-free (a stale read is settled by addPaths).
	// paths accumulates every datapath a member's install touched, so
	// teardown deletes everywhere the class left state.
	dead  atomic.Bool
	mu    sync.Mutex
	paths []uint64
}

// addPaths merges a member decision's installed datapaths into the
// entry's teardown set. ok=false means the entry was retired first: the
// member's installs postdate the teardown's path snapshot and the
// caller must delete them itself.
func (e *megaEntry) addPaths(ids []uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead.Load() {
		return false
	}
	for _, id := range ids {
		e.paths = appendPathID(e.paths, id)
	}
	return true
}

// kill retires the entry, returning its path snapshot. ok=false means
// another retirer won; exactly one caller performs the teardown.
func (e *megaEntry) kill() ([]uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead.Load() {
		return nil, false
	}
	e.dead.Store(true)
	return e.paths, true
}

// megaShard is one lock domain of the class table.
type megaShard struct {
	mu        sync.Mutex
	entries   map[megaKey]*megaEntry
	lastSweep time.Time
}

// megaTable is the sharded megaflow cache. Lookup probes one map per
// active mask: the mask census (maskCounts/active) tracks which of the
// 16 possible field masks have resident entries, so a probe costs
// popcount(active) map reads — in practice one or two, since a policy
// produces few distinct masks — instead of 16.
type megaTable struct {
	shards []megaShard
	mask   uint64
	nextID atomic.Uint64

	byIDMu sync.Mutex
	byID   map[uint64]*megaEntry

	maskMu     sync.Mutex
	maskCounts [16]int
	active     atomic.Uint32 // bitset over masks with resident entries
}

func newMegaTable(n int) *megaTable {
	n = ceilPow2(n)
	t := &megaTable{
		shards: make([]megaShard, n),
		mask:   uint64(n - 1),
		byID:   make(map[uint64]*megaEntry),
	}
	for i := range t.shards {
		t.shards[i].entries = make(map[megaKey]*megaEntry)
	}
	return t
}

func (t *megaTable) shardFor(k megaKey) *megaShard {
	h := k.masked.Hash() ^ (uint64(k.mask) * 0x9e3779b97f4a7c15)
	return &t.shards[h&t.mask]
}

func (t *megaTable) maskAcquire(m uint8) {
	t.maskMu.Lock()
	t.maskCounts[m]++
	if t.maskCounts[m] == 1 {
		t.active.Store(t.active.Load() | 1<<m)
	}
	t.maskMu.Unlock()
}

func (t *megaTable) maskRelease(m uint8) {
	t.maskMu.Lock()
	t.maskCounts[m]--
	if t.maskCounts[m] == 0 {
		t.active.Store(t.active.Load() &^ (1 << m))
	}
	t.maskMu.Unlock()
}

// lookup probes the active masks for a live, current-epoch, unexpired
// entry covering f. The winning entry's hit counter is bumped here so
// the caller's fast path stays load-only.
func (t *megaTable) lookup(f flow.Five, now time.Time, epoch uint64) *megaEntry {
	active := t.active.Load()
	for active != 0 {
		m := uint8(bits.TrailingZeros32(active))
		active &= active - 1
		k := megaKey{masked: pf.Trace{Fields: m}.Mask(f), mask: m}
		sh := t.shardFor(k)
		sh.mu.Lock()
		e := sh.entries[k]
		sh.mu.Unlock()
		if e != nil && e.epoch == epoch && now.Before(e.expires) && !e.dead.Load() {
			e.hits.Add(1)
			return e
		}
	}
	return nil
}

// insert publishes e unless a live entry for the same class is already
// resident (a founder race: the caller keeps its own verdict and skips
// the wide registration). A stale resident (dead, expired, old epoch) is
// displaced and returned in swept, along with anything the opportunistic
// per-shard TTL sweep collected; the caller retires swept entries and
// drops their wide registrations. resident is nil when e went in.
func (t *megaTable) insert(e *megaEntry, now time.Time, ttl time.Duration) (resident *megaEntry, swept []*megaEntry) {
	k := megaKey{masked: e.masked, mask: e.mask}
	sh := t.shardFor(k)
	sh.mu.Lock()
	if sh.lastSweep.IsZero() {
		sh.lastSweep = now
	} else if now.Sub(sh.lastSweep) >= ttl {
		for ok, old := range sh.entries {
			if ok != k && !now.Before(old.expires) {
				delete(sh.entries, ok)
				swept = append(swept, old)
			}
		}
		sh.lastSweep = now
	}
	if res, ok := sh.entries[k]; ok {
		if res.epoch == e.epoch && now.Before(res.expires) && !res.dead.Load() {
			sh.mu.Unlock()
			return res, swept
		}
		swept = append(swept, res)
	}
	sh.entries[k] = e
	sh.mu.Unlock()
	t.byIDMu.Lock()
	t.byID[e.id] = e
	t.byIDMu.Unlock()
	t.maskAcquire(e.mask)
	return nil, swept
}

// get resolves a wide-registration id back to its entry.
func (t *megaTable) get(id uint64) *megaEntry {
	t.byIDMu.Lock()
	e := t.byID[id]
	t.byIDMu.Unlock()
	return e
}

// retire kills e and unlinks it from the id map and the mask census,
// returning its installed-path snapshot. Exactly one caller gets
// ok=true per entry; the shard-map removal is separate (remove) because
// sweep paths have already unmapped the entry.
func (t *megaTable) retire(e *megaEntry) ([]uint64, bool) {
	paths, ok := e.kill()
	if !ok {
		return nil, false
	}
	t.byIDMu.Lock()
	delete(t.byID, e.id)
	t.byIDMu.Unlock()
	t.maskRelease(e.mask)
	return paths, true
}

// remove unmaps e from its class slot if it is still the resident entry.
func (t *megaTable) remove(e *megaEntry) {
	k := megaKey{masked: e.masked, mask: e.mask}
	sh := t.shardFor(k)
	sh.mu.Lock()
	if sh.entries[k] == e {
		delete(sh.entries, k)
	}
	sh.mu.Unlock()
}

// covering returns the live entries whose class contains f, across all
// active masks — the teardown-side dual of lookup, indifferent to epoch
// and expiry (a stale covering entry must still be torn down: its
// switch entries are live until someone deletes them).
func (t *megaTable) covering(f flow.Five, dst []*megaEntry) []*megaEntry {
	active := t.active.Load()
	for active != 0 {
		m := uint8(bits.TrailingZeros32(active))
		active &= active - 1
		k := megaKey{masked: pf.Trace{Fields: m}.Mask(f), mask: m}
		sh := t.shardFor(k)
		sh.mu.Lock()
		e := sh.entries[k]
		sh.mu.Unlock()
		if e != nil && !e.dead.Load() {
			dst = append(dst, e)
		}
	}
	return dst
}

// flushAll empties the table and kills every resident entry, so member
// hits in flight across a policy swap find addPaths refused and clean
// up after themselves instead of appending to an unreachable entry.
func (t *megaTable) flushAll() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		old := sh.entries
		sh.entries = make(map[megaKey]*megaEntry)
		sh.lastSweep = time.Time{}
		sh.mu.Unlock()
		for _, e := range old {
			e.kill()
		}
	}
	t.byIDMu.Lock()
	t.byID = make(map[uint64]*megaEntry)
	t.byIDMu.Unlock()
	t.maskMu.Lock()
	t.maskCounts = [16]int{}
	t.active.Store(0)
	t.maskMu.Unlock()
}

// live counts resident entries; a diagnostics helper.
func (t *megaTable) live() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// megaInstall widens a freshly decided verdict into the class table and
// registers its fact dependencies in the revocation index's wide side.
// Runs on the decision path after install, before the publication
// re-check: a fact update racing this insert either finds the entry
// (its covering probe runs after its rev bump, which the re-check
// observes) or the re-check fires and tears the entry straight back
// down — in neither interleaving does a widened verdict survive facts
// it predates.
func (c *Controller) megaInstall(s *decisionScratch, st *ctlState, d pf.Decision, tr pf.Trace) {
	g := &s.gather
	now := c.clock()
	e := &megaEntry{
		id:        c.mega.nextID.Add(1),
		founder:   s.five,
		masked:    tr.Mask(s.five),
		mask:      tr.Fields,
		epoch:     st.epoch,
		expires:   now.Add(c.cacheTTL),
		action:    d.Action,
		rule:      d.Rule,
		matched:   d.Matched,
		keepState: d.KeepState,
	}
	e.cookie = e.id << 1
	resident, swept := c.mega.insert(e, now, c.cacheTTL)
	for _, old := range swept {
		if _, ok := c.mega.retire(old); ok {
			if c.revoker != nil {
				c.revoker.DropWide(old.id)
			}
			c.Counters.Add("megaflow_expired", 1)
		}
	}
	if resident != nil {
		// Founder race: another decision widened this class first. Our
		// own installs carry the exact cookie and our exact registration
		// covers them; nothing to merge.
		return
	}
	c.hot.megaInstalls.Add(1)
	if c.revoker == nil {
		return
	}
	facts := make([]revoke.Fact, 0, 2+len(g.qs.Keys)+len(g.qd.Keys))
	leased := false
	if tr.SrcRead {
		facts = append(facts, revoke.Fact{Host: s.five.SrcIP})
		for _, k := range g.qs.Keys {
			facts = append(facts, revoke.Fact{Host: s.five.SrcIP, Key: k})
		}
		leased = leased || !c.revoker.PushCapable(s.five.SrcIP)
	}
	if tr.DstRead {
		facts = append(facts, revoke.Fact{Host: s.five.DstIP})
		for _, k := range g.qd.Keys {
			facts = append(facts, revoke.Fact{Host: s.five.DstIP, Key: k})
		}
		leased = leased || !c.revoker.PushCapable(s.five.DstIP)
	}
	var lease time.Time
	if c.leaseTTL > 0 && leased && len(facts) > 0 {
		lease = now.Add(c.leaseTTL)
	}
	c.revoker.RegisterWide(e.id, facts, lease)
}

// teardownMega retires one widened entry and deletes the class's
// installed entries at every datapath its members touched, by the
// entry's cookie under an all-fields wildcard — one delete mod per
// datapath covers every member tuple. deleteEntries=false is the TTL-
// expiry case: switch entries idle out on their own, matching the exact
// cache's expiry semantics.
func (c *Controller) teardownMega(st *ctlState, e *megaEntry, reason string, deleteEntries bool) bool {
	paths, ok := c.mega.retire(e)
	if !ok {
		return false
	}
	c.mega.remove(e)
	if c.revoker != nil {
		c.revoker.DropWide(e.id)
	}
	if deleteEntries {
		c.deleteMegaAt(st, e.cookie, paths)
	}
	c.hot.megaTeardowns.Add(1)
	c.Audit.Record(AuditEntry{
		Time:    c.clock(),
		Flow:    e.founder,
		Action:  pf.Block,
		Rule:    "(megaflow revoked: " + reason + ")",
		Revoked: true,
	})
	return true
}

// deleteMegaAt issues one cookie-scoped wildcard delete per datapath,
// through the shared install fan-out as installs and exact teardowns do.
func (c *Controller) deleteMegaAt(st *ctlState, cookie uint64, paths []uint64) {
	if len(paths) == 0 {
		return
	}
	var wg sync.WaitGroup
	ch := installCh()
	for _, id := range paths {
		dp := st.datapaths[id]
		if dp == nil {
			continue
		}
		m := openflow.FlowMod{Delete: true, Cookie: cookie, Match: flow.MatchAll(), BufferID: openflow.BufferNone}
		wg.Add(1)
		select {
		case ch <- installJob{dp: dp, mod: m, wg: &wg, errs: c.hot.installErrors}:
		default:
			if err := dp.Apply(m); err != nil {
				c.hot.installErrors.Add(1)
			}
			wg.Done()
		}
	}
	wg.Wait()
}

// MegaflowStats reports the class table's occupancy and lifetime
// hit/install/teardown totals. Zeros when the megaflow layer is off.
func (c *Controller) MegaflowStats() (live int, hits, installs, teardowns int64) {
	if c.mega == nil {
		return 0, 0, 0, 0
	}
	return c.mega.live(), c.hot.megaHits.Load(), c.hot.megaInstalls.Load(), c.hot.megaTeardowns.Load()
}
