package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// fakeAsyncTransport implements AsyncQueryTransport over fakeTransport.
// With a gate set, completions are held until the gate closes, so tests
// can observe a suspended decision; inline delivers completions on the
// QueryAsync caller's goroutine (the query plane's fast-fail shape).
type fakeAsyncTransport struct {
	fakeTransport
	gate   chan struct{}
	inline bool
}

func (t *fakeAsyncTransport) QueryAsync(host netaddr.IP, q wire.Query, done func(*wire.Response, time.Duration, error)) {
	if t.inline {
		resp, rtt, err := t.Query(host, q)
		done(resp, rtt, err)
		return
	}
	gate := t.gate
	go func() {
		if gate != nil {
			<-gate
		}
		resp, rtt, err := t.Query(host, q)
		done(resp, rtt, err)
	}()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

const asyncPolicy = `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
`

func newAsyncController(tr AsyncQueryTransport, topo Topology) (*Controller, *fakeDatapath) {
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:           "async",
		Policy:         pf.MustCompile("policy", asyncPolicy),
		Transport:      tr,
		Topology:       topo,
		InstallEntries: true,
		AsyncQueries:   true,
	})
	c.AddDatapath(dp1)
	return c, dp1
}

// TestAsyncDecisionSuspendsAndFinishes: with completions gated, HandleEvent
// returns with no verdict rendered — the decision is parked on the query
// plane, not on a goroutine — and the verdict lands (entries installed,
// buffer released) once both completions deliver.
func TestAsyncDecisionSuspendsAndFinishes(t *testing.T) {
	tr := &fakeAsyncTransport{
		fakeTransport: fakeTransport{responses: map[netaddr.IP]map[string]string{
			hostA: {"name": "skype"},
			hostB: {"name": "skype"},
		}},
		gate: make(chan struct{}),
	}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1 := newAsyncController(tr, topo)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))

	if got := c.Counters.Get("flows_allowed") + c.Counters.Get("flows_denied"); got != 0 {
		t.Fatalf("verdict rendered before completions delivered (decided=%d)", got)
	}
	if dp1.modCount() != 0 {
		t.Fatal("entries installed before the decision finished")
	}

	close(tr.gate)
	waitFor(t, "async verdict", func() bool { return c.Counters.Get("flows_allowed") == 1 })
	waitFor(t, "install", func() bool { return dp1.modCount() == 1 })
}

// TestAsyncDuplicatesParkAndResolve: packet-ins arriving while the decision
// is suspended park on the shard waiter list and are resolved by the
// completion-side finish, exactly as on the blocking path.
func TestAsyncDuplicatesParkAndResolve(t *testing.T) {
	tr := &fakeAsyncTransport{
		fakeTransport: fakeTransport{responses: map[netaddr.IP]map[string]string{
			hostA: {"name": "skype"},
			hostB: {"name": "skype"},
		}},
		gate: make(chan struct{}),
	}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1 := newAsyncController(tr, topo)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 101, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))
	for i := 0; i < 3; i++ {
		c.HandleEvent(sampleEvent(five, 1)) // duplicates of the suspended flow
	}
	if got := c.Counters.Get("duplicate_packet_ins"); got != 3 {
		t.Fatalf("duplicate_packet_ins = %d, want 3", got)
	}
	if got := len(dp1.released); got != 0 {
		t.Fatalf("%d buffers released while suspended, want 0 (parked)", got)
	}

	close(tr.gate)
	waitFor(t, "waiters resolved", func() bool { return c.Counters.Get("waiters_resolved") == 3 })
	waitFor(t, "buffers released", func() bool {
		dp1.mu.Lock()
		defer dp1.mu.Unlock()
		// The owner's buffer rides the ingress flow-mod's BufferID; the
		// three parked duplicates are released explicitly.
		return len(dp1.released) == 3
	})
}

// TestAsyncInlineCompletion: a transport that completes inline (negative
// cache, breaker fast-fail) finishes the decision before HandleEvent
// returns — no goroutine handoff, no deadlock on the pending counter.
func TestAsyncInlineCompletion(t *testing.T) {
	tr := &fakeAsyncTransport{
		fakeTransport: fakeTransport{responses: map[netaddr.IP]map[string]string{
			hostA: {"name": "skype"},
			hostB: {"name": "skype"},
		}},
		inline: true,
	}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1 := newAsyncController(tr, topo)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 102, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_allowed") != 1 {
		t.Fatal("inline completion did not finish the decision synchronously")
	}
	if dp1.modCount() != 1 {
		t.Fatal("no entry installed")
	}
}

// TestAsyncCacheHitStaysSynchronous: with a warm response cache the async
// pipeline is never entered — the hit path decides on the packet-in
// goroutine, preserving the allocation budget's fast path.
func TestAsyncCacheHitStaysSynchronous(t *testing.T) {
	tr := &fakeAsyncTransport{
		fakeTransport: fakeTransport{responses: map[netaddr.IP]map[string]string{
			hostA: {"name": "skype"},
			hostB: {"name": "skype"},
		}},
		inline: true,
	}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "async",
		Policy:           pf.MustCompile("policy", asyncPolicy),
		Transport:        tr,
		Topology:         topo,
		InstallEntries:   true,
		AsyncQueries:     true,
		ResponseCacheTTL: time.Hour,
	})
	c.AddDatapath(dp1)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 103, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1)) // warm the cache
	queriesAfterWarm := func() int {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		return tr.queries
	}()

	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("response_cache_hits") != 1 {
		t.Fatal("second packet-in missed the response cache")
	}
	if got := func() int {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		return tr.queries
	}(); got != queriesAfterWarm {
		t.Errorf("cache hit still queried the transport (%d -> %d)", queriesAfterWarm, got)
	}
	if c.Counters.Get("flows_allowed") != 2 {
		t.Fatalf("flows_allowed = %d, want 2", c.Counters.Get("flows_allowed"))
	}
}

// timeoutTransport fails every query with a timeout-classified error, the
// shape of a daemon'd host that is slow or unreachable mid-connection.
type timeoutTransport struct{}

type fakeTimeoutErr struct{}

func (fakeTimeoutErr) Error() string { return "fake: i/o timeout" }
func (fakeTimeoutErr) Timeout() bool { return true }

func (timeoutTransport) Query(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
	return nil, 50 * time.Millisecond, fakeTimeoutErr{}
}

// TestTimeoutDoesNotImpersonateHost pins the classification fix: a timeout
// against a host the controller has answer-on-behalf data for must NOT be
// answered on the host's behalf — §3.4 impersonation applies only to
// daemon-less hosts, and a timed-out daemon'd host falls through to the
// policy's no-info verdict, counted as query_timeouts.
func TestTimeoutDoesNotImpersonateHost(t *testing.T) {
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`
block all
pass from any to any with eq(@dst[type], printer)
`, timeoutTransport{}, topo)
	c.AnswerForHost(hostB, wire.KV{Key: wire.KeyType, Value: "printer"})

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 631}
	c.HandleEvent(sampleEvent(five, 1))

	if got := c.Counters.Get("answered_on_behalf"); got != 0 {
		t.Errorf("answered_on_behalf = %d on a timeout; impersonated a live host", got)
	}
	if got := c.Counters.Get("query_timeouts"); got != 2 {
		t.Errorf("query_timeouts = %d, want 2 (both ends timed out)", got)
	}
	if got := c.Counters.Get("query_errors"); got != 0 {
		t.Errorf("query_errors = %d, want 0 (timeouts counted separately)", got)
	}
	if c.Counters.Get("flows_denied") != 1 {
		t.Error("timed-out queries must yield the policy's no-info verdict (deny here)")
	}
	if dp1.mods[0].Actions[0].Type != openflow.ActionDrop {
		t.Error("expected drop entry")
	}
}

// flakyTransport times out its first round of queries, then serves real
// responses — a daemon recovering from a brief stall.
type flakyTransport struct {
	mu       sync.Mutex
	failures int // queries to fail before recovering
	good     map[netaddr.IP]map[string]string
}

func (t *flakyTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	t.mu.Lock()
	if t.failures > 0 {
		t.failures--
		t.mu.Unlock()
		return nil, 0, fakeTimeoutErr{}
	}
	kv := t.good[host]
	t.mu.Unlock()
	if kv == nil {
		return nil, 0, ErrNoDaemon
	}
	r := wire.NewResponse(q.Flow)
	for k, v := range kv {
		r.Add(k, v)
	}
	return r, 0, nil
}

// TestTransientFailureNotCached: a verdict shaped by a transport timeout
// must not be pinned in the response cache for the TTL — once the daemon
// answers again, the very next packet of the flow gets the real verdict.
func TestTransientFailureNotCached(t *testing.T) {
	tr := &flakyTransport{
		failures: 2, // both ends of the first decision time out
		good: map[netaddr.IP]map[string]string{
			hostA: {"name": "skype"},
			hostB: {"name": "skype"},
		},
	}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "flaky",
		Policy:           pf.MustCompile("policy", asyncPolicy),
		Transport:        tr,
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
	})
	c.AddDatapath(dp1)

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 105, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_denied") != 1 {
		t.Fatal("timed-out decision should deny under block all")
	}

	// The daemons are back; the flow's next packet must re-query and pass
	// instead of hitting a cached no-info verdict.
	c.HandleEvent(sampleEvent(five, 1))
	if got := c.Counters.Get("response_cache_hits"); got != 0 {
		t.Errorf("response_cache_hits = %d; transient-failure decision was cached", got)
	}
	if c.Counters.Get("flows_allowed") != 1 {
		t.Errorf("recovered daemon's verdict not applied; counters: %s", c.Counters)
	}

	// The healthy decision IS cached: a third packet hits.
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("response_cache_hits") != 1 {
		t.Error("healthy decision was not cached")
	}
}

// markerNoDaemonErr carries the NoDaemon marker without wrapping
// core.ErrNoDaemon — the baselines' shape.
type markerNoDaemonErr struct{}

func (markerNoDaemonErr) Error() string  { return "marker: no daemon" }
func (markerNoDaemonErr) NoDaemon() bool { return true }

type markerTransport struct{}

func (markerTransport) Query(netaddr.IP, wire.Query) (*wire.Response, time.Duration, error) {
	return nil, 0, markerNoDaemonErr{}
}

// TestNoDaemonMarkerAllowsAnswerOnBehalf: transports outside core (the
// baselines) mark daemon-lessness via the NoDaemon() method; the
// controller's answer-on-behalf path must honor the marker exactly like
// ErrNoDaemon.
func TestNoDaemonMarkerAllowsAnswerOnBehalf(t *testing.T) {
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, _, _ := newTestController(`
block all
pass from any to any with eq(@dst[type], printer)
`, markerTransport{}, topo)
	c.AnswerForHost(hostB, wire.KV{Key: wire.KeyType, Value: "printer"})

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 2, DstPort: 631}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("answered_on_behalf") != 1 {
		t.Error("NoDaemon-marked error did not take the answer-on-behalf path")
	}
	if c.Counters.Get("flows_allowed") != 1 {
		t.Error("printer flow should pass via answer-on-behalf")
	}
}

// TestIsNoDaemonClassification covers the classifier directly.
func TestIsNoDaemonClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrNoDaemon, true},
		{errors.New("wrapped: " + ErrNoDaemon.Error()), false}, // string match is not classification
		{markerNoDaemonErr{}, true},
		{fakeTimeoutErr{}, false},
	}
	for i, tc := range cases {
		if got := IsNoDaemon(tc.err); got != tc.want {
			t.Errorf("case %d (%v): IsNoDaemon = %v, want %v", i, tc.err, got, tc.want)
		}
	}
}

// TestApplyModsPooledFanout: a pass verdict across a many-switch path is
// installed on every datapath through the shared install workers (no
// goroutine-per-datapath), including under keep-state's reverse pass.
func TestApplyModsPooledFanout(t *testing.T) {
	const nDatapaths = 6
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"},
		hostB: {"name": "skype"},
	}}
	hops := make([]Hop, nDatapaths)
	for i := range hops {
		hops[i] = Hop{Datapath: uint64(i + 1), OutPort: uint16(i + 2)}
	}
	topo := &fakeTopo{hops: hops}
	dps := make([]*fakeDatapath, nDatapaths)
	c := New(Config{
		Name: "fanout",
		Policy: pf.MustCompile("policy", `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`),
		Transport:      tr,
		Topology:       topo,
		InstallEntries: true,
	})
	for i := range dps {
		dps[i] = &fakeDatapath{id: uint64(i + 1)}
		c.AddDatapath(dps[i])
	}

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 104, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))
	if c.Counters.Get("flows_allowed") != 1 {
		t.Fatalf("flow not allowed; counters: %s", c.Counters)
	}
	for i, dp := range dps {
		if got := dp.modCount(); got != 2 { // forward + reverse (keep state)
			t.Errorf("datapath %d: mods = %d, want 2", i+1, got)
		}
	}
	if c.Counters.Get("entries_installed") != 2*nDatapaths {
		t.Errorf("entries_installed = %d, want %d", c.Counters.Get("entries_installed"), 2*nDatapaths)
	}
}
