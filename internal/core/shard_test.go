package core

import (
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
)

// fakeClock is a hand-advanced clock for deterministic expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (fc *fakeClock) Now() time.Time {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.now
}

func (fc *fakeClock) Advance(d time.Duration) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.now = fc.now.Add(d)
}

func stressFlow(n int) flow.Five {
	return flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
		SrcPort: netaddr.Port(3000 + n), DstPort: 80}
}

// TestShardedCacheExpiryDeterministicClock drives the response cache with
// a hand-advanced clock: entries must serve hits inside the TTL, stop
// counting once expired, and the per-shard sweep must only ever touch the
// shard it runs in — storing into one shard cannot evict another shard's
// entries, expired or not.
func TestShardedCacheExpiryDeterministicClock(t *testing.T) {
	const ttl = 10 * time.Second
	fc := &fakeClock{now: time.Unix(1000, 0)}
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{
		hostA: {"name": "skype"}, hostB: {"name": "skype"},
	}}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp := &fakeDatapath{id: 1}
	c := New(Config{
		Name:             "clock",
		Policy:           pf.MustCompile("p", `pass from any to any with eq(@src[name], skype)`),
		Transport:        tr,
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: ttl,
		Shards:           4,
		Clock:            fc.Now,
	})
	c.AddDatapath(dp)

	const flows = 32
	for i := 0; i < flows; i++ {
		c.HandleEvent(sampleEvent(stressFlow(i), 1))
	}
	if got := c.CachedFlows(); got != flows {
		t.Fatalf("CachedFlows = %d, want %d", got, flows)
	}
	// Entries should be spread over all four shards — otherwise the
	// "per shard" claims below test nothing.
	for i := range c.flows.shards {
		sh := &c.flows.shards[i]
		sh.mu.Lock()
		n := len(sh.respCache)
		sh.mu.Unlock()
		if n == 0 {
			t.Fatalf("shard %d got no entries out of %d flows; hash badly skewed", i, flows)
		}
	}

	// Inside the TTL: hits, no new queries.
	fc.Advance(ttl / 2)
	before := tr.queries
	c.HandleEvent(sampleEvent(stressFlow(0), 1))
	if tr.queries != before {
		t.Errorf("in-TTL event queried daemons (%d -> %d queries)", before, tr.queries)
	}
	if c.Counters.Get("response_cache_hits") != 1 {
		t.Errorf("response_cache_hits = %d, want 1", c.Counters.Get("response_cache_hits"))
	}

	// Past the TTL: nothing counts as live, and a re-decision re-queries.
	fc.Advance(ttl)
	if got := c.CachedFlows(); got != 0 {
		t.Fatalf("CachedFlows = %d after expiry, want 0", got)
	}
	before = tr.queries
	c.HandleEvent(sampleEvent(stressFlow(1), 1))
	if tr.queries != before+2 {
		t.Errorf("expired entry did not force re-query (%d -> %d)", before, tr.queries)
	}

	// That re-decision stored into exactly one shard and its sweep ran
	// there: the owning shard holds only the fresh entry, while the other
	// shards still hold their expired tombstones (sweeps are per shard and
	// lazy; no cross-shard eviction).
	owner := c.flows.shardFor(stressFlow(1))
	ownerIdx := -1
	staleElsewhere := 0
	for i := range c.flows.shards {
		sh := &c.flows.shards[i]
		sh.mu.Lock()
		n := len(sh.respCache)
		sh.mu.Unlock()
		if sh == owner {
			ownerIdx = i
			if n != 1 {
				t.Errorf("owning shard %d holds %d entries after sweep, want 1 (the fresh one)", i, n)
			}
			continue
		}
		staleElsewhere += n
	}
	if ownerIdx < 0 {
		t.Fatal("owning shard not found in table")
	}
	if staleElsewhere == 0 {
		t.Error("expired entries vanished from shards that never swept: cross-shard eviction happened")
	}

	// The stale tombstones still never serve: a hit on an unswept shard's
	// expired entry must re-query.
	var other flow.Five
	for i := 2; i < flows; i++ {
		if c.flows.shardFor(stressFlow(i)) != owner {
			other = stressFlow(i)
			break
		}
	}
	before = tr.queries
	c.HandleEvent(sampleEvent(other, 1))
	if tr.queries != before+2 {
		t.Errorf("expired entry on unswept shard served a hit (%d -> %d)", before, tr.queries)
	}
}

// TestShardIndexStableAndBounded checks the exported flow.ShardIndex
// contract the shard table relies on: deterministic per flow, within
// bounds, and consistent with the table's own placement.
func TestShardIndexStableAndBounded(t *testing.T) {
	tbl := newShardTable(8)
	for i := 0; i < 256; i++ {
		f := stressFlow(i)
		idx := f.ShardIndex(8)
		if idx < 0 || idx >= 8 {
			t.Fatalf("ShardIndex(8) = %d out of range", idx)
		}
		if idx != f.ShardIndex(8) {
			t.Fatal("ShardIndex not deterministic")
		}
		if tbl.shardFor(f) != &tbl.shards[idx] {
			t.Fatal("shardFor disagrees with ShardIndex")
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 16: 16, 17: 32}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
	if n := defaultShards(); n < 1 || n&(n-1) != 0 {
		t.Errorf("defaultShards() = %d, want a positive power of two", n)
	}
}

// TestAblationParkedDuplicatesArePacketOut covers the InstallEntries=false
// ablation (the M5 "every packet punts" mode): with no table entry to
// forward through, duplicates parked during a slow pass decision must be
// packet-out'd along the flow's path when the verdict resolves them, not
// silently dropped with their buffers — the ablation models extra latency,
// not extra loss.
func TestAblationParkedDuplicatesArePacketOut(t *testing.T) {
	block := make(chan struct{})
	slow := &slowTransport{unblock: block}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	dp1 := &fakeDatapath{id: 1}
	c := New(Config{
		Name:           "ablate",
		Policy:         pf.MustCompile("p", `pass from any to any with eq(@src[name], skype)`),
		Transport:      slow,
		Topology:       topo,
		InstallEntries: false, // the ablation under test
	})
	c.AddDatapath(dp1)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 9, DstPort: 80}

	first := sampleEvent(five, 1)
	first.Frame = []byte("frame-first")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.HandleEvent(first)
	}()
	slow.waitUntilQuerying()

	const dups = 3
	for i := 0; i < dups; i++ {
		ev := sampleEvent(five, 1)
		ev.BufferID = uint32(200 + i)
		ev.Frame = []byte("frame-dup")
		c.HandleEvent(ev)
	}
	close(block)
	wg.Wait()

	if got := c.Counters.Get("waiters_forwarded"); got != dups {
		t.Errorf("waiters_forwarded = %d, want %d", got, dups)
	}
	dp1.mu.Lock()
	outs := append([]uint16(nil), dp1.outs...)
	frames := len(dp1.outFrames)
	released := append([]uint32(nil), dp1.released...)
	dp1.mu.Unlock()
	// Owner's own packet plus every parked duplicate goes out the path's
	// egress port; every duplicate's buffer is still released.
	if len(outs) != dups+1 {
		t.Fatalf("packet-outs = %d, want %d (owner + %d parked)", len(outs), dups+1, dups)
	}
	for _, p := range outs {
		if p != 2 {
			t.Errorf("packet-out port = %d, want 2 (the path hop)", p)
		}
	}
	if frames != dups+1 {
		t.Errorf("forwarded frames = %d, want %d", frames, dups+1)
	}
	want := map[uint32]bool{7: true, 200: true, 201: true, 202: true}
	for _, id := range released {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("buffers never released: %v", want)
	}
	if got := dp1.modCount(); got != 0 {
		t.Errorf("mods = %d, want 0 (ablation installs nothing)", got)
	}
}

// TestWaiterResolutionReleasesAllParkedBuffers checks the fan-out
// batching: every duplicate packet-in parked during a slow decision gets
// its buffer released exactly once, after the verdict.
func TestWaiterResolutionReleasesAllParkedBuffers(t *testing.T) {
	block := make(chan struct{})
	slow := &slowTransport{unblock: block}
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}}
	c, dp1, _ := newTestController(`pass from any to any with eq(@src[name], skype)`, slow, topo)
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.HandleEvent(sampleEvent(five, 1))
	}()
	slow.waitUntilQuerying()

	const dups = 5
	for i := 0; i < dups; i++ {
		ev := sampleEvent(five, 1)
		ev.BufferID = uint32(100 + i)
		c.HandleEvent(ev) // parks; must not block
	}
	if got := c.Counters.Get("duplicate_packet_ins"); got != dups {
		t.Fatalf("duplicate_packet_ins = %d, want %d", got, dups)
	}
	dp1.mu.Lock()
	parkedReleases := len(dp1.released)
	dp1.mu.Unlock()
	if parkedReleases != 0 {
		t.Fatalf("%d buffers released before the verdict; parked events must wait", parkedReleases)
	}

	close(block)
	wg.Wait()

	if got := c.Counters.Get("waiters_resolved"); got != dups {
		t.Errorf("waiters_resolved = %d, want %d", got, dups)
	}
	dp1.mu.Lock()
	released := append([]uint32(nil), dp1.released...)
	dp1.mu.Unlock()
	want := map[uint32]bool{100: true, 101: true, 102: true, 103: true, 104: true}
	for _, id := range released {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("parked buffers never released: %v (released %v)", want, released)
	}
	if dp1.modCount() != 1 {
		t.Errorf("mods = %d, want 1 (one install resolves all duplicates)", dp1.modCount())
	}
}
