package core

import (
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
	"identxx/internal/trace"
	"identxx/internal/wire"
)

// delayTransport answers like fakeTransport but stalls each query,
// making every decision "slow" by the recorder's threshold.
type delayTransport struct {
	delay time.Duration
	inner fakeTransport
}

func (d *delayTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	time.Sleep(d.delay)
	return d.inner.Query(host, q)
}

// TestSlowDecisionCapturedAtRateZero: with sampling fully off
// (SampleEvery 0) the recorder must still retain any decision that
// crosses the slow threshold — the tail stays visible even when the
// operator traces nothing else.
func TestSlowDecisionCapturedAtRateZero(t *testing.T) {
	tr := &delayTransport{
		delay: 5 * time.Millisecond,
		inner: fakeTransport{responses: map[netaddr.IP]map[string]string{
			hostA: {"name": "skype"},
			hostB: {"name": "skype"},
		}},
	}
	rec := trace.New(trace.Config{SampleEvery: 0, SlowThreshold: time.Millisecond})
	c := New(Config{
		Name: "slowcap",
		Policy: pf.MustCompile("policy", `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
`),
		Transport:      tr,
		Topology:       &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries: true,
		Trace:          rec,
	})
	c.AddDatapath(&fakeDatapath{id: 1})

	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 100, DstPort: 200}
	c.HandleEvent(sampleEvent(five, 1))

	slow := rec.Slow()
	if len(slow) != 1 {
		t.Fatalf("Slow() returned %d traces, want 1", len(slow))
	}
	got := slow[0]
	if !got.Slow || got.Sampled {
		t.Errorf("trace slow=%t sampled=%t, want slow=true sampled=false", got.Slow, got.Sampled)
	}
	if got.Verdict != "pass" {
		t.Errorf("verdict = %q, want pass", got.Verdict)
	}
	if got.Elapsed < 5*time.Millisecond {
		t.Errorf("elapsed = %v, want >= the 5ms query delay", got.Elapsed)
	}
	var sawQuery, sawEval, sawInstall bool
	for _, e := range got.Events {
		switch e.Stage {
		case trace.StageQueryDone:
			sawQuery = true
		case trace.StageEval:
			sawEval = true
		case trace.StageInstall:
			sawInstall = true
		}
	}
	if !sawQuery || !sawEval || !sawInstall {
		t.Errorf("slow trace missing stages (query=%t eval=%t install=%t): %+v",
			sawQuery, sawEval, sawInstall, got.Events)
	}

	if got := rec.Counters.Get("trace_slow_captured"); got != 1 {
		t.Errorf("trace_slow_captured = %d, want 1", got)
	}
	if got := rec.Counters.Get("trace_sampled"); got != 0 {
		t.Errorf("trace_sampled = %d, want 0 at sample rate 0", got)
	}
}
