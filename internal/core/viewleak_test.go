package core

import (
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// These tests pin the response-view lifecycle: every controller-built
// (pooled) view stored in the shard cache must be released back to the
// pf pool on every eviction path — drop, overwrite, TTL sweep, flushAll —
// exactly once, and never while a concurrent borrower still holds it.
// The seed leaked on all three eviction paths; pf.ResponseViewStats is
// the regression oracle.

// builtTestEntry fabricates a cache entry whose views are pool-owned,
// the way answer-on-behalf decisions produce them.
func builtTestEntry(five flow.Five, epoch uint64, expires time.Time) cacheEntry {
	src := pf.AcquireResponse(five)
	dst := pf.AcquireResponse(five)
	life := &entryLife{src: src, dst: dst}
	life.refs.Store(1)
	return cacheEntry{src: src, dst: dst, expires: expires, epoch: epoch, life: life}
}

func viewDelta(t *testing.T, f func()) (acquired, released int64) {
	t.Helper()
	a0, r0 := pf.ResponseViewStats()
	f()
	a1, r1 := pf.ResponseViewStats()
	return a1 - a0, r1 - r0
}

func TestShardEvictionReleasesViews(t *testing.T) {
	now := time.Unix(1000, 0)
	ttl := time.Minute
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}

	t.Run("drop", func(t *testing.T) {
		tab := newShardTable(1)
		acq, rel := viewDelta(t, func() {
			sh := tab.shardFor(five)
			sh.store(five, builtTestEntry(five, 1, now.Add(ttl)), now, ttl, 0)
			sh.drop(five)
		})
		if acq != 2 || rel != 2 {
			t.Errorf("drop: acquired=%d released=%d, want 2/2", acq, rel)
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		tab := newShardTable(1)
		acq, rel := viewDelta(t, func() {
			sh := tab.shardFor(five)
			sh.store(five, builtTestEntry(five, 1, now.Add(ttl)), now, ttl, 0)
			// Same flow stored again: the resident entry is evicted.
			sh.store(five, builtTestEntry(five, 1, now.Add(ttl)), now, ttl, 0)
			sh.drop(five)
		})
		if acq != 4 || rel != 4 {
			t.Errorf("overwrite: acquired=%d released=%d, want 4/4", acq, rel)
		}
	})

	t.Run("sweep", func(t *testing.T) {
		tab := newShardTable(1)
		other := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 9, DstPort: 2}
		acq, rel := viewDelta(t, func() {
			sh := tab.shardFor(five)
			// An entry that will be expired by the time the sweep runs.
			sh.store(other, builtTestEntry(other, 1, now.Add(ttl)), now, ttl, 0)
			// A store one TTL later triggers the opportunistic sweep.
			later := now.Add(2 * ttl)
			sh.store(five, builtTestEntry(five, 1, later.Add(ttl)), later, ttl, 0)
			sh.drop(five)
		})
		if acq != 4 || rel != 4 {
			t.Errorf("sweep: acquired=%d released=%d, want 4/4", acq, rel)
		}
	})

	t.Run("flushAll", func(t *testing.T) {
		tab := newShardTable(4)
		acq, rel := viewDelta(t, func() {
			for i := 0; i < 16; i++ {
				f := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP,
					SrcPort: netaddr.Port(1000 + i), DstPort: 2}
				tab.shardFor(f).store(f, builtTestEntry(f, 1, now.Add(ttl)), now, ttl, 0)
			}
			tab.flushAll()
		})
		if acq != 32 || rel != 32 {
			t.Errorf("flushAll: acquired=%d released=%d, want 32/32", acq, rel)
		}
	})
}

// TestShardEvictionWaitsForBorrower: eviction must not pool views a
// concurrent decision is still reading — the refcount defers the pool
// return to the final release, whichever side that is.
func TestShardEvictionWaitsForBorrower(t *testing.T) {
	now := time.Unix(1000, 0)
	ttl := time.Minute
	five := flow.Five{SrcIP: hostA, DstIP: hostB, Proto: netaddr.ProtoTCP, SrcPort: 1, DstPort: 2}
	tab := newShardTable(1)
	sh := tab.shardFor(five)
	sh.store(five, builtTestEntry(five, 1, now.Add(ttl)), now, ttl, 0)

	e, ok := sh.lookup(five, now, 1)
	if !ok {
		t.Fatal("lookup missed a fresh entry")
	}
	_, rel := viewDelta(t, func() { sh.drop(five) })
	if rel != 0 {
		t.Fatalf("eviction pooled views under an active borrow: released=%d", rel)
	}
	_, rel = viewDelta(t, func() { e.life.release() })
	if rel != 2 {
		t.Fatalf("final borrower release pooled %d views, want 2", rel)
	}
}

// TestControllerEvictionReleasesBuiltViews drives the lifecycle through
// the real decision path: answer-on-behalf responses are built from the
// pool, cached, borrowed by cache hits, and must all come home across
// per-flow revocation and a full policy-swap flush.
func TestControllerEvictionReleasesBuiltViews(t *testing.T) {
	tr := &fakeTransport{responses: map[netaddr.IP]map[string]string{}} // no daemons anywhere
	topo := &fakeTopo{hops: []Hop{{Datapath: 1, OutPort: 2}, {Datapath: 2, OutPort: 3}}}
	c := New(Config{
		Name:             "leak",
		Policy:           pf.MustCompile("leak", revPolicy),
		Transport:        tr,
		Topology:         topo,
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
	})
	dp1 := &fakeDatapath{id: 1}
	dp2 := &fakeDatapath{id: 2}
	c.AddDatapath(dp1)
	c.AddDatapath(dp2)
	c.AnswerForHost(hostA, wire.KV{Key: "name", Value: "skype"})
	c.AnswerForHost(hostB, wire.KV{Key: "name", Value: "skype"})

	acq, rel := viewDelta(t, func() {
		for i := 0; i < 8; i++ {
			c.HandleEvent(sampleEvent(revFlow(40000+i), 1))
		}
		// Cache hits borrow the stored views and must release the borrow.
		for i := 0; i < 8; i++ {
			c.HandleEvent(sampleEvent(revFlow(40000+i), 1))
		}
		// Half the flows leave through per-flow revocation (drop path)…
		for i := 0; i < 4; i++ {
			c.RevokeFlow(revFlow(40000 + i))
		}
		// …the rest through the policy-swap flush.
		c.SetPolicy(pf.MustCompile("leak2", revPolicy))
	})
	if acq == 0 {
		t.Fatal("test built no views; answer-on-behalf path not exercised")
	}
	if acq != rel {
		t.Fatalf("view leak: acquired %d, released %d", acq, rel)
	}
}
