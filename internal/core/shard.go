package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// The controller's per-flow state (verdict/response cache, in-flight
// pending set, parked duplicate packet-ins) is split across N power-of-two
// shards keyed by flow.Five.ShardIndex, so concurrent packet-ins for
// different flows never contend on one lock. Each shard owns its own
// mutex, maps, and expiry sweep; nothing in a shard is touched without
// that shard's lock.

// entryLife refcounts a cache entry's controller-built response views.
// The cache holds one reference for the entry's residency; each lookup
// retains one for the borrowing decision (under the shard lock, so a
// borrow can never race the entry's eviction) and releases it when the
// decision finishes. The last release — eviction or final borrower,
// whichever is later — returns the views to the pf pool. Entries whose
// responses are all daemon-returned (GC-owned) carry no life at all, so
// the common path pays one nil check.
type entryLife struct {
	src, dst *wire.Response
	refs     atomic.Int32
}

func (l *entryLife) retain() {
	if l != nil {
		l.refs.Add(1)
	}
}

func (l *entryLife) release() {
	if l == nil {
		return
	}
	if l.refs.Add(-1) == 0 {
		pf.ReleaseResponse(l.src)
		pf.ReleaseResponse(l.dst)
	}
}

// cacheEntry caches the responses gathered for one flow. epoch pins the
// entry to the policy snapshot it was computed under: SetPolicy bumps the
// controller epoch, so entries cached by in-flight decisions racing a
// policy swap can never satisfy a lookup under the new policy, even if
// they land after the flush. life is non-nil when some of the responses
// are controller-built pool views; every path that removes the entry
// from the map must release it, or the views leak from the pool.
type cacheEntry struct {
	src, dst *wire.Response
	expires  time.Time
	epoch    uint64
	life     *entryLife
}

// parked is a duplicate packet-in waiting for the first packet's verdict.
// Releasing its buffer after the verdict's entries are installed lets the
// switch forward (or drop) it from its own table instead of re-punting.
// switchID and frame are kept so ablation runs (InstallEntries=false, no
// table entry to forward through) can packet-out the parked frame along
// the path instead of silently dropping it with the buffer.
type parked struct {
	dp       openflow.Datapath
	switchID uint64
	bufferID uint32
	frame    []byte
}

// shard is one lock domain of the flow-decision fast path.
type shard struct {
	mu        sync.Mutex
	respCache map[flow.Five]cacheEntry
	pending   map[flow.Five][]parked
	lastSweep time.Time

	// rev counts revocations that touched this shard. A decision captures
	// the value when it claims its flow and re-checks before publishing
	// (cache store + install): a bump in between means an endpoint-state
	// update raced the decision, whose gathered responses may predate the
	// change — the decision voids itself instead of installing possibly
	// stale state, and the packet's retransmission re-decides under current
	// facts. Per-shard granularity means an unrelated same-shard revocation
	// occasionally voids a healthy decision; that costs one re-decision,
	// never correctness.
	rev atomic.Uint64
}

// shardTable is the full sharded state. Size is fixed at construction, so
// lookups need no lock at all: shard selection is pure hashing.
type shardTable struct {
	shards []shard
	mask   uint64
}

func newShardTable(n int) *shardTable {
	n = ceilPow2(n)
	t := &shardTable{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].respCache = make(map[flow.Five]cacheEntry)
		t.shards[i].pending = make(map[flow.Five][]parked)
	}
	return t
}

func (t *shardTable) shardFor(five flow.Five) *shard {
	return &t.shards[five.Hash()&t.mask]
}

// maxParked bounds the waiter list per in-flight flow. Parked events hold
// switch buffer slots until the verdict, so a slow daemon must not let one
// flow pin unbounded buffers: past the cap, duplicates fall back to the
// old drop-and-re-punt behavior (buffer released immediately).
const maxParked = 64

// begin claims the flow for the calling decision. The first caller for a
// flow gets first=true and owns resolving it; later callers' events are
// parked on the waiter list (parked=true) and resolved by the owner's
// verdict, unless the list is full (parked=false: caller releases now).
func (s *shard) begin(five flow.Five, dp openflow.Datapath, ev openflow.PacketIn) (first, parkedOK bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if waiters, inFlight := s.pending[five]; inFlight {
		if len(waiters) >= maxParked {
			return false, false
		}
		s.pending[five] = append(waiters, parked{
			dp: dp, switchID: ev.SwitchID, bufferID: ev.BufferID, frame: ev.Frame,
		})
		return false, true
	}
	s.pending[five] = nil // in flight, no waiters yet
	return true, false
}

// resolve ends the flow's in-flight window and returns the parked
// duplicates for the owner to release now that the verdict is installed.
func (s *shard) resolve(five flow.Five) []parked {
	s.mu.Lock()
	defer s.mu.Unlock()
	waiters := s.pending[five]
	delete(s.pending, five)
	return waiters
}

// lookup returns the cached responses for five if present, unexpired, and
// from the current policy epoch.
func (s *shard) lookup(five flow.Five, now time.Time, epoch uint64) (cacheEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.respCache[five]
	if !ok || e.epoch != epoch || !now.Before(e.expires) {
		return cacheEntry{}, false
	}
	// Retain under the shard lock: eviction also runs under it, so the
	// borrow is pinned before any eviction path can issue the cache's
	// release.
	e.life.retain()
	return e, true
}

// store caches the responses for five and opportunistically sweeps the
// shard: at most once per TTL it walks its own map and drops expired
// entries, so expiry cost is bounded, per shard, and off every other
// shard's lock.
//
// revSeq is the revocation sequence the storing decision captured at
// claim time; the write is refused (ok=false) if a revocation has touched
// the shard since. The check happens under the shard lock, and teardown
// bumps rev before taking that lock to drop: so either this store sees
// the bump and refuses, or the store commits strictly before the
// teardown's drop, which then removes it. In neither interleaving can a
// pre-revocation response survive in the cache.
func (s *shard) store(five flow.Five, e cacheEntry, now time.Time, ttl time.Duration, revSeq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rev.Load() != revSeq {
		return false
	}
	if s.lastSweep.IsZero() {
		s.lastSweep = now
	} else if now.Sub(s.lastSweep) >= ttl {
		for f, old := range s.respCache {
			if !now.Before(old.expires) {
				delete(s.respCache, f)
				old.life.release()
			}
		}
		s.lastSweep = now
	}
	if old, ok := s.respCache[five]; ok {
		// Overwrite is an eviction of the previous entry.
		old.life.release()
	}
	s.respCache[five] = e
	return true
}

// drop removes one flow's cached responses (per-flow revocation),
// reporting whether an entry was present.
func (s *shard) drop(five flow.Five) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.respCache[five]
	delete(s.respCache, five)
	if ok {
		e.life.release()
	}
	return ok
}

// has reports whether a cache entry (of any epoch/expiry) exists for five;
// a diagnostics helper.
func (s *shard) has(five flow.Five) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.respCache[five]
	return ok
}

// flushAll clears every shard's cache. Sequential on purpose: dropping a
// map pointer under a briefly held lock costs nanoseconds per shard, far
// less than goroutine spawn would — and correctness never depended on the
// flush anyway (the epoch bump already invalidated every entry).
func (t *shardTable) flushAll() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		old := s.respCache
		s.respCache = make(map[flow.Five]cacheEntry)
		s.lastSweep = time.Time{}
		s.mu.Unlock()
		for _, e := range old {
			e.life.release()
		}
	}
}

// cachedFlows counts live (unexpired, current-epoch) entries across all
// shards; a diagnostics helper for tests and operators.
func (t *shardTable) cachedFlows(now time.Time, epoch uint64) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.respCache {
			if e.epoch == epoch && now.Before(e.expires) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// defaultShards sizes the table to the hardware: the next power of two at
// or above GOMAXPROCS, clamped to [1, 256].
func defaultShards() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > 256 {
		n = 256
	}
	return n
}
