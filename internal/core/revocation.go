package core

import (
	"sync"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/revoke"
	"identxx/internal/wire"
)

// This file is the controller half of the revocation plane: endpoint-state
// updates pushed by daemons (or synthesized by the transport on serial
// gaps) resolve through the fact-dependency index to the exact flows whose
// verdicts depended on the changed facts, and each is torn down live —
// response-cache entry dropped, flow-table entries deleted along the full
// installed path through the shared install worker pool, audit record
// emitted. The next packet of a torn-down flow punts, re-queries, and
// re-decides under current endpoint state; no controller restart, policy
// reload, or switch idle-timeout is involved.

// HandleUpdate consumes one daemon-pushed endpoint-state update for host.
// It is the intended sink for query.Engine.SetUpdateHandler and is safe
// for concurrent use. With revocation disabled it is a no-op.
//
// Scope resolution (see wire.Update): a hello marks the host push-capable
// (its facts need no lease); a flow-scoped update revokes that flow; a
// key-scoped update revokes every flow whose verdict read (host, key); a
// bare update is a resync and revokes everything depending on the host.
func (c *Controller) HandleUpdate(host netaddr.IP, u wire.Update) {
	if c.revoker == nil {
		return
	}
	if u.Hello {
		c.revoker.MarkPush(host)
		c.Counters.Add("revocations_hellos", 1)
		return
	}
	c.hot.revUpdates.Add(1)
	if u.FlowScoped() {
		// Revoke unconditionally rather than checking registration first:
		// even when no decision state exists yet, bumping the shard's
		// revocation sequence voids a decision in flight for this flow,
		// whose gathered responses predate the change.
		c.revokeResolved(u.Flow, "update:"+updateKeyLabel(u), false)
		return
	}
	if u.Resync() {
		c.Counters.Add("revocations_resyncs", 1)
	}
	c.revokeHostFact(host, u.Key, "update:"+updateKeyLabel(u))
}

func updateKeyLabel(u wire.Update) string {
	if u.Key != "" {
		return u.Key
	}
	if u.Resync() {
		return "resync"
	}
	return "flow"
}

// RevokeHost is the operator-initiated form (identctl revoke): it tears
// down every flow whose verdict depended on the named fact — or, with an
// empty key, on any fact — of host, and returns how many flows were torn
// down. It requires Config.Revocation.
func (c *Controller) RevokeHost(host netaddr.IP, key string) int {
	if c.revoker == nil {
		return 0
	}
	return c.revokeHostFact(host, key, "operator:"+host.String())
}

func (c *Controller) revokeHostFact(host netaddr.IP, key, reason string) int {
	flows := c.revoker.ResolveFact(host, key, nil)
	n := len(flows)
	if n > 0 {
		// One batch for the whole fan-in: the audit rule string is built
		// once, and each datapath on any torn flow's path receives a single
		// batched delete job at flush rather than per-flow handoffs.
		st := c.state.Load()
		rule := "(revoked: " + reason + ")"
		b := getTeardownBatch()
		for _, f := range flows {
			c.revokeFlowInto(b, st, f, reason, rule, false)
		}
		c.flushTeardown(b)
	}
	if c.mega != nil {
		// Wide side: every megaflow whose verdict read the fact goes too —
		// one teardown deletes the entries of every member of the class.
		st := c.state.Load()
		for _, id := range c.revoker.ResolveFactWide(host, key, nil) {
			if e := c.mega.get(id); e != nil && c.teardownMega(st, e, reason, true) {
				n++
			}
		}
	}
	return n
}

// SweepLeases tears down every flow whose lease has expired — the fallback
// revocation for hosts whose daemons never push. Callers own the cadence
// (identctl runs it on a ticker; the simulator in virtual time; tests
// directly): the controller spawns no goroutine of its own. Returns the
// number of flows torn down.
func (c *Controller) SweepLeases() int {
	if c.revoker == nil {
		return 0
	}
	expired := c.revoker.ExpiredLeases(c.clock(), nil)
	n := len(expired)
	if n > 0 {
		st := c.state.Load()
		b := getTeardownBatch()
		for _, f := range expired {
			c.revokeFlowInto(b, st, f, "lease-expired", "(revoked: lease-expired)", false)
		}
		c.flushTeardown(b)
	}
	if n > 0 {
		c.Counters.Add("revocations_lease_expired", int64(n))
	}
	if c.mega != nil {
		st := c.state.Load()
		wide := 0
		for _, id := range c.revoker.ExpiredWideLeases(c.clock(), nil) {
			if e := c.mega.get(id); e != nil && c.teardownMega(st, e, "lease-expired", true) {
				wide++
			}
		}
		if wide > 0 {
			c.Counters.Add("revocations_wide_lease_expired", int64(wide))
			n += wide
		}
	}
	return n
}

// revokeResolved tears one flow down. broadcast controls the no-
// registration fallback: RevokeFlow (which predates the index and promises
// "everywhere") deletes at every datapath when the flow is unknown, while
// update-driven teardown trusts the index — an unregistered flow has no
// entries to delete. broadcast also suppresses the audit record: RevokeFlow
// kept its pre-plane contract (counter only), whereas plane-driven
// teardowns are audited with their reason.
func (c *Controller) revokeResolved(five flow.Five, reason string, broadcast bool) {
	b := getTeardownBatch()
	c.revokeFlowInto(b, c.state.Load(), five, reason, "(revoked: "+reason+")", broadcast)
	c.flushTeardown(b)
}

// revokeFlowInto is the per-flow half of a teardown: sequence bump, cache
// drop, covering-megaflow teardown, dependency-index drop, audit record —
// everything except the switch deletes, which accumulate in b (grouped per
// datapath) for one batched flush. rule is the pre-decorated audit string
// ("(revoked: <reason>)"), built once by the caller so a fan-in tearing N
// flows does not concatenate it N times.
func (c *Controller) revokeFlowInto(b *teardownBatch, st *ctlState, five flow.Five, reason, rule string, broadcast bool) {
	sh := c.flows.shardFor(five)
	// Order matters: bump the sequence before dropping the cache, so a
	// decision that read the cache (or gathered responses) before the bump
	// cannot publish after the drop without noticing.
	sh.rev.Add(1)
	dropped := sh.drop(five)
	megaTorn := 0
	if c.mega != nil {
		// Any megaflow covering this flow falls with it: the class verdict
		// may rest on the same facts this revocation invalidates (a daemon
		// flow-scoped update names a member, not the class), and the
		// member's installed entries carry the class cookie, unreachable
		// by the exact-cookie deletes below. Tearing the whole class down
		// is conservative and correct — members re-decide and re-widen.
		// The probe runs after the rev bump above, completing the install
		// handshake: a widened entry inserted before this probe is found
		// here; one inserted after will see the bump at its publication
		// re-check and tear itself down.
		for _, e := range c.mega.covering(five, nil) {
			if c.teardownMega(st, e, reason, true) {
				megaTorn++
			}
		}
	}
	var paths []uint64
	haveReg := false
	if c.revoker != nil {
		var reg revoke.Registration
		if reg, haveReg = c.revoker.Drop(five); haveReg {
			paths = reg.Paths
		}
	}
	if !haveReg && broadcast {
		for id := range st.datapaths {
			paths = append(paths, id)
		}
	}
	if !haveReg && !broadcast && !dropped {
		// Nothing known about this flow: no cache entry, no registration.
		// The sequence bump above still voids any in-flight decision.
		if megaTorn == 0 {
			c.Counters.Add("revocations_noop", 1)
		}
		return
	}
	b.appendDeletes(st, five, paths)
	c.hot.revFlows.Add(1)
	if !broadcast {
		c.Audit.Record(AuditEntry{
			Time:    c.clock(),
			Flow:    five,
			Action:  pf.Block,
			Rule:    rule,
			Revoked: true,
		})
	}
}

// teardownLane is one datapath's accumulated delete mods within a batch.
type teardownLane struct {
	id   uint64
	dp   openflow.Datapath
	mods []openflow.FlowMod
}

// teardownBatch accumulates cookie-scoped delete flow-mods per datapath
// across a revocation, so tearing N flows costs one handoff per datapath
// touched instead of 2N single-mod handoffs (and one WaitGroup total
// instead of one per flow). Batches are pooled; lane mod slices keep
// their capacity across uses.
type teardownBatch struct {
	lanes  []teardownLane
	wg     sync.WaitGroup
	issued int
}

var teardownPool = sync.Pool{New: func() any { return new(teardownBatch) }}

func getTeardownBatch() *teardownBatch {
	return teardownPool.Get().(*teardownBatch)
}

// laneFor returns the batch lane for datapath id, creating it if the batch
// has not touched that datapath yet. Paths are short, so the linear scan
// wins over a map (and allocates nothing).
func (b *teardownBatch) laneFor(st *ctlState, id uint64) *teardownLane {
	for i := range b.lanes {
		if b.lanes[i].id == id {
			return &b.lanes[i]
		}
	}
	dp := st.datapaths[id]
	if dp == nil {
		return nil
	}
	if len(b.lanes) < cap(b.lanes) {
		// Reuse a retired lane's mods capacity.
		b.lanes = b.lanes[:len(b.lanes)+1]
	} else {
		b.lanes = append(b.lanes, teardownLane{})
	}
	l := &b.lanes[len(b.lanes)-1]
	l.id, l.dp, l.mods = id, dp, l.mods[:0]
	return l
}

// appendDeletes queues delete-by-flow mods (both directions, cookie-
// scoped) for every datapath in paths.
func (b *teardownBatch) appendDeletes(st *ctlState, five flow.Five, paths []uint64) {
	if len(paths) == 0 {
		return
	}
	cookie := five.Hash() | 1
	fwd := flow.FiveMatch(five)
	rev := flow.FiveMatch(five.Reverse())
	for _, id := range paths {
		l := b.laneFor(st, id)
		if l == nil {
			continue
		}
		l.mods = append(l.mods,
			openflow.FlowMod{Delete: true, Cookie: cookie, Match: fwd, BufferID: openflow.BufferNone},
			openflow.FlowMod{Delete: true, Cookie: cookie, Match: rev, BufferID: openflow.BufferNone})
		b.issued += 2
	}
}

// flushTeardown fans the batch's per-datapath delete lanes out through the
// shared install worker pool exactly as installs do, so teardown latency
// across datapaths tends to the slowest switch, not the sum. The last lane
// always runs on the calling goroutine — a single-datapath teardown (the
// common case) therefore pays no handoff and no wait at all. Waits for
// every delete to land, bumps the entries counter, and returns the batch
// to the pool.
func (c *Controller) flushTeardown(b *teardownBatch) {
	if last := len(b.lanes) - 1; last >= 0 {
		if last > 0 {
			ch := installCh()
			for i := 0; i < last; i++ {
				l := &b.lanes[i]
				b.wg.Add(1)
				select {
				case ch <- installJob{dp: l.dp, mods: l.mods, wg: &b.wg, errs: c.hot.installErrors}:
				default:
					// No worker free this instant: run inline rather than
					// queue behind other teardowns' wedged switches.
					for _, m := range l.mods {
						if err := l.dp.Apply(m); err != nil {
							c.hot.installErrors.Add(1)
						}
					}
					b.wg.Done()
				}
			}
		}
		l := &b.lanes[last]
		for _, m := range l.mods {
			if err := l.dp.Apply(m); err != nil {
				c.hot.installErrors.Add(1)
			}
		}
		if last > 0 {
			b.wg.Wait()
		}
	}
	if b.issued > 0 {
		c.Counters.Add("revocations_entries", int64(b.issued))
	}
	for i := range b.lanes {
		b.lanes[i].dp = nil
		b.lanes[i].mods = b.lanes[i].mods[:0]
	}
	b.lanes = b.lanes[:0]
	b.issued = 0
	teardownPool.Put(b)
}

// registerDeps records the decision's fact dependencies in the index: the
// host-scope markers for both ends plus each key the verdict could have
// read at each end (the query hints — the compiled policy's per-flow
// static key analysis). Facts from hosts that have not proven they push
// updates carry a lease when leases are configured.
func (c *Controller) registerDeps(s *decisionScratch) {
	five := s.five
	g := &s.gather
	facts := make([]revoke.Fact, 0, 2+len(g.qs.Keys)+len(g.qd.Keys))
	facts = append(facts, revoke.Fact{Host: five.SrcIP}, revoke.Fact{Host: five.DstIP})
	for _, k := range g.qs.Keys {
		facts = append(facts, revoke.Fact{Host: five.SrcIP, Key: k})
	}
	for _, k := range g.qd.Keys {
		facts = append(facts, revoke.Fact{Host: five.DstIP, Key: k})
	}
	var lease time.Time
	if c.leaseTTL > 0 && (!c.revoker.PushCapable(five.SrcIP) || !c.revoker.PushCapable(five.DstIP)) {
		lease = c.clock().Add(c.leaseTTL)
	}
	if c.credTr != nil {
		// Expiry-as-lease: facts admitted under a credential are leased no
		// longer than that credential's remaining lifetime, so even if the
		// live lapse-resync were missed the lease sweep still tears the
		// flow down at expiry. A rotation refreshes subsequent decisions;
		// existing registrations keep the expiry they were admitted under.
		for _, h := range [2]netaddr.IP{five.SrcIP, five.DstIP} {
			if exp, ok := c.credTr.CredentialExpiry(h); ok && (lease.IsZero() || exp.Before(lease)) {
				lease = exp
			}
		}
	}
	c.revoker.Register(revoke.Registration{
		Flow:  five,
		Facts: facts,
		Paths: append([]uint64(nil), s.pathIDs...),
		Lease: lease,
	})
}

// RevocationIndexStats exposes the index's occupancy for operators and
// tests: live registrations plus lifetime register/drop totals. Zeros when
// revocation is disabled.
func (c *Controller) RevocationIndexStats() (live int, registered, dropped int64) {
	if c.revoker == nil {
		return 0, 0, 0
	}
	return c.revoker.Stats()
}

// appendPathID appends id if absent (paths are short; linear scan wins).
func appendPathID(ids []uint64, id uint64) []uint64 {
	for _, x := range ids {
		if x == id {
			return ids
		}
	}
	return append(ids, id)
}
