package revoke

import (
	"sync"
	"time"

	"identxx/internal/netaddr"
)

// Wide entries are the megaflow side of the dependency index: one widened
// (masked-tuple) cache entry covers many concrete flows and many installed
// paths, so it registers here under an opaque id rather than a five-tuple.
// The contract mirrors the exact side — a fact update resolves to the ids
// whose verdicts read it in O(affected) — but the id space is the
// controller's megaflow table, which owns the entry's paths and performs
// the teardown. Keeping the two sides separate (rather than inventing a
// sentinel flow per wide entry) keeps ResolveFact's exact-flow semantics
// intact for existing callers.

// wideEntry is the per-id record held by the id-sharded side.
type wideEntry struct {
	facts []Fact
	lease time.Time
}

// wideShard is one lock domain of the id→facts side.
type wideShard struct {
	mu      sync.Mutex
	entries map[uint64]wideEntry
}

// RegisterWide records a wide entry's fact dependencies, replacing any
// previous registration for the same id.
func (ix *Index) RegisterWide(id uint64, facts []Fact, lease time.Time) {
	ix.dropWide(id, false)
	ws := &ix.wideShards[id&ix.mask]
	ws.mu.Lock()
	ws.entries[id] = wideEntry{facts: facts, lease: lease}
	ws.mu.Unlock()
	for _, fact := range facts {
		sh := ix.factShard(fact)
		sh.mu.Lock()
		set := sh.wide[fact]
		if set == nil {
			set = make(map[uint64]struct{})
			sh.wide[fact] = set
		}
		set[id] = struct{}{}
		sh.mu.Unlock()
	}
	ix.wideRegistered.Add(1)
}

// DropWide removes a wide entry's registration and unlinks its fact
// dependencies. ok is false when the id was not registered — concurrent
// teardowns race benignly; exactly one caller gets true.
func (ix *Index) DropWide(id uint64) bool {
	return ix.dropWide(id, true)
}

func (ix *Index) dropWide(id uint64, count bool) bool {
	ws := &ix.wideShards[id&ix.mask]
	ws.mu.Lock()
	e, ok := ws.entries[id]
	if ok {
		delete(ws.entries, id)
	}
	ws.mu.Unlock()
	if !ok {
		return false
	}
	for _, fact := range e.facts {
		sh := ix.factShard(fact)
		sh.mu.Lock()
		if set := sh.wide[fact]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(sh.wide, fact)
			}
		}
		sh.mu.Unlock()
	}
	if count {
		ix.wideDropped.Add(1)
	}
	return true
}

// ResolveFactWide returns the wide-entry ids depending on (host, key),
// appended to dst. Key "" resolves the host-scope marker.
func (ix *Index) ResolveFactWide(host netaddr.IP, key string, dst []uint64) []uint64 {
	fact := Fact{Host: host, Key: key}
	sh := ix.factShard(fact)
	sh.mu.Lock()
	for id := range sh.wide[fact] {
		dst = append(dst, id)
	}
	sh.mu.Unlock()
	return dst
}

// ResolveHostWide returns every wide-entry id with any dependency on the
// host.
func (ix *Index) ResolveHostWide(host netaddr.IP, dst []uint64) []uint64 {
	return ix.ResolveFactWide(host, "", dst)
}

// ExpiredWideLeases returns wide-entry ids whose lease deadline has
// passed at now, appended to dst.
func (ix *Index) ExpiredWideLeases(now time.Time, dst []uint64) []uint64 {
	for i := range ix.wideShards {
		ws := &ix.wideShards[i]
		ws.mu.Lock()
		for id, e := range ws.entries {
			if !e.lease.IsZero() && now.After(e.lease) {
				dst = append(dst, id)
			}
		}
		ws.mu.Unlock()
	}
	return dst
}

// WideStats reports resident wide registrations and lifetime
// register/drop counts.
func (ix *Index) WideStats() (live int, registered, dropped int64) {
	for i := range ix.wideShards {
		ws := &ix.wideShards[i]
		ws.mu.Lock()
		live += len(ws.entries)
		ws.mu.Unlock()
	}
	return live, ix.wideRegistered.Load(), ix.wideDropped.Load()
}
