// Package revoke implements the controller side of the revocation plane's
// bookkeeping: a sharded fact-dependency index mapping endpoint facts —
// (host, key) pairs a verdict actually read — to the flows whose cached
// decisions and installed entries depend on them.
//
// The controller registers a dependency record when it installs or caches
// a decision; the facts come from the compiled policy's per-flow static
// key analysis (the same analysis behind query-key hints and the
// header-only pre-pass), so an endpoint-state update resolves to the exact
// set of affected flows in O(affected) — never a table scan across every
// cached flow.
//
// Hosts whose daemons never push updates (the honest-but-legacy case) get
// no revocation channel; their registrations carry a lease deadline
// instead, and the controller periodically tears down expired leases —
// the short-lived-credential workaround the delegation literature reaches
// for when no revocation channel exists, honored by the same index and
// the same teardown pipeline.
package revoke

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// Fact names one endpoint fact a decision depended on. Key "" is the
// host-scope marker every registration carries for each end: it resolves
// host-wide invalidations (serial-gap resyncs, daemon restarts, operator
// "revoke everything about this host") without a separate host table.
type Fact struct {
	Host netaddr.IP
	Key  string
}

// Registration records one flow's dependencies: the facts its verdict
// read, the datapaths its entries were installed on (so teardown deletes
// along the installed path only), and an optional lease deadline for
// facts served by non-pushing daemons (zero = no lease).
type Registration struct {
	Flow  flow.Five
	Facts []Fact
	Paths []uint64
	Lease time.Time
}

// flowEntry is the per-flow record held by the flow-sharded side.
type flowEntry struct {
	facts []Fact
	paths []uint64
	lease time.Time
}

// factShard is one lock domain of the fact→flows side. wide is the
// parallel fact→wide-entry-ids map (wide.go): both resolve under the one
// lock so a fact update reads a consistent shard snapshot of everything
// depending on it.
type factShard struct {
	mu    sync.Mutex
	flows map[Fact]map[flow.Five]struct{}
	wide  map[Fact]map[uint64]struct{}
}

// flowShard is one lock domain of the flow→facts side.
type flowShard struct {
	mu    sync.Mutex
	flows map[flow.Five]flowEntry
}

// Index is the sharded fact-dependency index. All methods are safe for
// concurrent use. The two sides (fact→flows, flow→facts) are sharded and
// locked independently; no operation holds two shard locks at once, so
// cross-shard operations are lock-ordering-free. The consequence is a
// benign asymmetry under races: a Resolve may name a flow whose
// registration a concurrent Drop already removed — the caller's teardown
// of an unregistered flow is a no-op.
type Index struct {
	factShards []factShard
	flowShards []flowShard
	wideShards []wideShard
	mask       uint64

	registered atomic.Int64 // lifetime registrations
	dropped    atomic.Int64 // lifetime drops

	wideRegistered atomic.Int64 // lifetime wide registrations
	wideDropped    atomic.Int64 // lifetime wide drops

	pushMu sync.RWMutex
	push   map[netaddr.IP]bool // hosts whose daemons push updates
}

// NewIndex creates an index with n shards per side (rounded up to a power
// of two; n <= 0 picks 16).
func NewIndex(n int) *Index {
	if n <= 0 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	ix := &Index{
		factShards: make([]factShard, p),
		flowShards: make([]flowShard, p),
		wideShards: make([]wideShard, p),
		mask:       uint64(p - 1),
		push:       make(map[netaddr.IP]bool),
	}
	for i := range ix.factShards {
		ix.factShards[i].flows = make(map[Fact]map[flow.Five]struct{})
		ix.factShards[i].wide = make(map[Fact]map[uint64]struct{})
	}
	for i := range ix.flowShards {
		ix.flowShards[i].flows = make(map[flow.Five]flowEntry)
	}
	for i := range ix.wideShards {
		ix.wideShards[i].entries = make(map[uint64]wideEntry)
	}
	return ix
}

func (ix *Index) factShard(f Fact) *factShard {
	h := uint64(f.Host)
	for i := 0; i < len(f.Key); i++ {
		h = h*131 + uint64(f.Key[i])
	}
	return &ix.factShards[h&ix.mask]
}

func (ix *Index) flowShard(f flow.Five) *flowShard {
	return &ix.flowShards[f.Hash()&ix.mask]
}

// Register records a flow's dependencies, replacing any previous
// registration for the same flow (re-decided flows re-register; the old
// fact links are unlinked first so the index never accretes).
func (ix *Index) Register(r Registration) {
	ix.drop(r.Flow, false)
	fs := ix.flowShard(r.Flow)
	fs.mu.Lock()
	fs.flows[r.Flow] = flowEntry{facts: r.Facts, paths: r.Paths, lease: r.Lease}
	fs.mu.Unlock()
	for _, fact := range r.Facts {
		sh := ix.factShard(fact)
		sh.mu.Lock()
		set := sh.flows[fact]
		if set == nil {
			set = make(map[flow.Five]struct{})
			sh.flows[fact] = set
		}
		set[r.Flow] = struct{}{}
		sh.mu.Unlock()
	}
	ix.registered.Add(1)
}

// Drop removes a flow's registration and unlinks its fact dependencies,
// returning the registration for the caller's teardown (the installed
// paths, chiefly). ok is false when the flow was not registered.
func (ix *Index) Drop(f flow.Five) (Registration, bool) {
	return ix.drop(f, true)
}

func (ix *Index) drop(f flow.Five, count bool) (Registration, bool) {
	fs := ix.flowShard(f)
	fs.mu.Lock()
	e, ok := fs.flows[f]
	if ok {
		delete(fs.flows, f)
	}
	fs.mu.Unlock()
	if !ok {
		return Registration{}, false
	}
	for _, fact := range e.facts {
		sh := ix.factShard(fact)
		sh.mu.Lock()
		if set := sh.flows[fact]; set != nil {
			delete(set, f)
			if len(set) == 0 {
				delete(sh.flows, fact)
			}
		}
		sh.mu.Unlock()
	}
	if count {
		ix.dropped.Add(1)
	}
	return Registration{Flow: f, Facts: e.facts, Paths: e.paths, Lease: e.lease}, true
}

// Registered reports whether the flow has a live registration.
func (ix *Index) Registered(f flow.Five) bool {
	fs := ix.flowShard(f)
	fs.mu.Lock()
	_, ok := fs.flows[f]
	fs.mu.Unlock()
	return ok
}

// ResolveFact returns the flows depending on (host, key), appended to dst.
// Key "" resolves the host-scope marker: every flow with any dependency on
// the host.
func (ix *Index) ResolveFact(host netaddr.IP, key string, dst []flow.Five) []flow.Five {
	fact := Fact{Host: host, Key: key}
	sh := ix.factShard(fact)
	sh.mu.Lock()
	for f := range sh.flows[fact] {
		dst = append(dst, f)
	}
	sh.mu.Unlock()
	return dst
}

// ResolveHost returns every flow with any dependency on the host.
func (ix *Index) ResolveHost(host netaddr.IP, dst []flow.Five) []flow.Five {
	return ix.ResolveFact(host, "", dst)
}

// ExpiredLeases returns flows whose lease deadline has passed at now,
// appended to dst. The walk is per-shard under that shard's lock only;
// callers tear the returned flows down through the normal pipeline (which
// Drops them).
func (ix *Index) ExpiredLeases(now time.Time, dst []flow.Five) []flow.Five {
	for i := range ix.flowShards {
		fs := &ix.flowShards[i]
		fs.mu.Lock()
		for f, e := range fs.flows {
			if !e.lease.IsZero() && now.After(e.lease) {
				dst = append(dst, f)
			}
		}
		fs.mu.Unlock()
	}
	return dst
}

// MarkPush records that host's daemon pushes updates (its hello arrived):
// future registrations touching only pushing hosts need no lease.
func (ix *Index) MarkPush(host netaddr.IP) {
	ix.pushMu.Lock()
	ix.push[host] = true
	ix.pushMu.Unlock()
}

// PushCapable reports whether host's daemon has said hello.
func (ix *Index) PushCapable(host netaddr.IP) bool {
	ix.pushMu.RLock()
	ok := ix.push[host]
	ix.pushMu.RUnlock()
	return ok
}

// FlushAll drops every registration (policy swap: the flows' entries and
// cache lines are being flushed wholesale anyway). Push-capability marks
// survive — they describe daemons, not decisions.
func (ix *Index) FlushAll() {
	for i := range ix.flowShards {
		fs := &ix.flowShards[i]
		fs.mu.Lock()
		fs.flows = make(map[flow.Five]flowEntry)
		fs.mu.Unlock()
	}
	for i := range ix.factShards {
		sh := &ix.factShards[i]
		sh.mu.Lock()
		sh.flows = make(map[Fact]map[flow.Five]struct{})
		sh.wide = make(map[Fact]map[uint64]struct{})
		sh.mu.Unlock()
	}
	for i := range ix.wideShards {
		ws := &ix.wideShards[i]
		ws.mu.Lock()
		ws.entries = make(map[uint64]wideEntry)
		ws.mu.Unlock()
	}
}

// HostStat is one host's dependency footprint: how many live flows and
// wide (megaflow-class) registrations read facts from it, and whether its
// daemon has proven it pushes updates (facts lease-free).
type HostStat struct {
	Host  netaddr.IP
	Flows int
	Wide  int
	Push  bool
}

// Hosts snapshots the per-host dependency view, appended to dst and sorted
// by host address. It walks the fact shards' host-scope marker entries
// (Key ""), which every registration carries for each end, so the count is
// exact without a flow-side scan. Shards are locked one at a time; the
// result is per-shard consistent.
func (ix *Index) Hosts(dst []HostStat) []HostStat {
	flows := make(map[netaddr.IP]int)
	wide := make(map[netaddr.IP]int)
	for i := range ix.factShards {
		sh := &ix.factShards[i]
		sh.mu.Lock()
		for fact, set := range sh.flows {
			if fact.Key == "" {
				flows[fact.Host] += len(set)
			}
		}
		for fact, set := range sh.wide {
			if fact.Key == "" {
				wide[fact.Host] += len(set)
			}
		}
		sh.mu.Unlock()
	}
	for h := range wide {
		if _, ok := flows[h]; !ok {
			flows[h] = 0
		}
	}
	ix.pushMu.RLock()
	for h, n := range flows {
		dst = append(dst, HostStat{Host: h, Flows: n, Wide: wide[h], Push: ix.push[h]})
	}
	ix.pushMu.RUnlock()
	sort.Slice(dst, func(i, j int) bool { return dst[i].Host < dst[j].Host })
	return dst
}

// Stats reports resident registrations and lifetime register/drop counts.
func (ix *Index) Stats() (live int, registered, dropped int64) {
	for i := range ix.flowShards {
		fs := &ix.flowShards[i]
		fs.mu.Lock()
		live += len(fs.flows)
		fs.mu.Unlock()
	}
	return live, ix.registered.Load(), ix.dropped.Load()
}
