package revoke

import (
	"sync"
	"testing"
	"time"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

var (
	hostA = netaddr.MustParseIP("10.0.0.1")
	hostB = netaddr.MustParseIP("10.0.0.2")
)

func mkFlow(sp int) flow.Five {
	return flow.Five{
		SrcIP: hostA, DstIP: hostB,
		Proto: netaddr.ProtoTCP, SrcPort: netaddr.Port(sp), DstPort: 80,
	}
}

// reg builds the registration shape the controller uses: per-end key facts
// plus the host-scope markers.
func reg(f flow.Five, srcKeys, dstKeys []string, paths ...uint64) Registration {
	facts := []Fact{{Host: f.SrcIP}, {Host: f.DstIP}}
	for _, k := range srcKeys {
		facts = append(facts, Fact{Host: f.SrcIP, Key: k})
	}
	for _, k := range dstKeys {
		facts = append(facts, Fact{Host: f.DstIP, Key: k})
	}
	return Registration{Flow: f, Facts: facts, Paths: paths}
}

func TestResolveFactExact(t *testing.T) {
	ix := NewIndex(8)
	f1, f2, f3 := mkFlow(1), mkFlow(2), mkFlow(3)
	ix.Register(reg(f1, []string{"userID"}, []string{"name"}, 1, 2))
	ix.Register(reg(f2, []string{"userID"}, nil, 1))
	ix.Register(reg(f3, nil, []string{"name"}, 1))

	got := ix.ResolveFact(hostA, "userID", nil)
	if len(got) != 2 {
		t.Fatalf("ResolveFact(A, userID) = %v, want f1+f2", got)
	}
	got = ix.ResolveFact(hostB, "name", nil)
	if len(got) != 2 {
		t.Fatalf("ResolveFact(B, name) = %v, want f1+f3", got)
	}
	if got := ix.ResolveFact(hostA, "name", nil); len(got) != 0 {
		t.Fatalf("ResolveFact(A, name) = %v, want none", got)
	}
	if got := ix.ResolveHost(hostA, nil); len(got) != 3 {
		t.Fatalf("ResolveHost(A) = %v, want all three", got)
	}
}

func TestDropUnlinksFacts(t *testing.T) {
	ix := NewIndex(8)
	f1 := mkFlow(1)
	ix.Register(reg(f1, []string{"userID"}, nil, 1, 2, 3))
	r, ok := ix.Drop(f1)
	if !ok {
		t.Fatal("Drop missed a registered flow")
	}
	if len(r.Paths) != 3 {
		t.Errorf("paths = %v", r.Paths)
	}
	if ix.Registered(f1) {
		t.Error("flow still registered after Drop")
	}
	if got := ix.ResolveFact(hostA, "userID", nil); len(got) != 0 {
		t.Errorf("fact link survived Drop: %v", got)
	}
	if got := ix.ResolveHost(hostA, nil); len(got) != 0 {
		t.Errorf("host link survived Drop: %v", got)
	}
	if _, ok := ix.Drop(f1); ok {
		t.Error("second Drop succeeded")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	ix := NewIndex(8)
	f1 := mkFlow(1)
	ix.Register(reg(f1, []string{"userID"}, nil, 1))
	ix.Register(reg(f1, []string{"name"}, nil, 2))
	if got := ix.ResolveFact(hostA, "userID", nil); len(got) != 0 {
		t.Errorf("stale fact link survived re-registration: %v", got)
	}
	if got := ix.ResolveFact(hostA, "name", nil); len(got) != 1 {
		t.Errorf("fresh fact link missing: %v", got)
	}
	r, _ := ix.Drop(f1)
	if len(r.Paths) != 1 || r.Paths[0] != 2 {
		t.Errorf("paths = %v, want the re-registration's", r.Paths)
	}
	live, registered, dropped := ix.Stats()
	if live != 0 || registered != 2 || dropped != 1 {
		t.Errorf("stats = %d/%d/%d", live, registered, dropped)
	}
}

func TestLeases(t *testing.T) {
	ix := NewIndex(8)
	now := time.Now()
	f1, f2 := mkFlow(1), mkFlow(2)
	r1 := reg(f1, []string{"userID"}, nil, 1)
	r1.Lease = now.Add(time.Second)
	ix.Register(r1)
	ix.Register(reg(f2, []string{"userID"}, nil, 1)) // no lease

	if got := ix.ExpiredLeases(now, nil); len(got) != 0 {
		t.Errorf("leases expired early: %v", got)
	}
	got := ix.ExpiredLeases(now.Add(2*time.Second), nil)
	if len(got) != 1 || got[0] != f1 {
		t.Errorf("ExpiredLeases = %v, want f1 only", got)
	}
}

func TestPushCapable(t *testing.T) {
	ix := NewIndex(8)
	if ix.PushCapable(hostA) {
		t.Error("unknown host claims push capability")
	}
	ix.MarkPush(hostA)
	if !ix.PushCapable(hostA) {
		t.Error("MarkPush not visible")
	}
	ix.FlushAll()
	if !ix.PushCapable(hostA) {
		t.Error("FlushAll dropped push-capability marks")
	}
}

func TestFlushAll(t *testing.T) {
	ix := NewIndex(8)
	for i := 0; i < 32; i++ {
		ix.Register(reg(mkFlow(i), []string{"userID"}, nil, 1))
	}
	ix.FlushAll()
	live, _, _ := ix.Stats()
	if live != 0 {
		t.Errorf("live = %d after FlushAll", live)
	}
	if got := ix.ResolveHost(hostA, nil); len(got) != 0 {
		t.Errorf("fact side survived FlushAll: %v", got)
	}
}

// TestConcurrentChurn exercises register/drop/resolve races under the race
// detector; correctness here is "no crash, no race, index drains to empty".
func TestConcurrentChurn(t *testing.T) {
	ix := NewIndex(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f := mkFlow(g*1000 + i%37)
				ix.Register(reg(f, []string{"userID", "name"}, []string{"name"}, 1, 2))
				ix.ResolveFact(hostA, "userID", nil)
				ix.ResolveHost(hostB, nil)
				ix.Drop(f)
			}
		}(g)
	}
	wg.Wait()
	// Flows are shared across goroutines (i%37 collides), so concurrent
	// Register/Drop for the same flow can legitimately leave a few
	// registrations; drop them all and verify the fact side drains too.
	for g := 0; g < 8; g++ {
		for i := 0; i < 37; i++ {
			ix.Drop(mkFlow(g*1000 + i))
		}
	}
	if live, _, _ := ix.Stats(); live != 0 {
		t.Errorf("live = %d after drain", live)
	}
	if got := ix.ResolveHost(hostA, nil); len(got) != 0 {
		t.Errorf("fact side retains %v after drain", got)
	}
}
