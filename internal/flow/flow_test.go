package flow

import (
	"testing"
	"testing/quick"

	"identxx/internal/netaddr"
)

func tcpFlow(src string, sp netaddr.Port, dst string, dp netaddr.Port) Five {
	return Five{
		SrcIP:   netaddr.MustParseIP(src),
		DstIP:   netaddr.MustParseIP(dst),
		Proto:   netaddr.ProtoTCP,
		SrcPort: sp,
		DstPort: dp,
	}
}

func TestFiveReverse(t *testing.T) {
	f := tcpFlow("10.0.0.1", 1234, "10.0.0.2", 80)
	r := f.Reverse()
	if r.SrcIP != f.DstIP || r.DstIP != f.SrcIP || r.SrcPort != f.DstPort || r.DstPort != f.SrcPort {
		t.Errorf("Reverse wrong: %v", r)
	}
	if r.Reverse() != f {
		t.Error("double reverse is not identity")
	}
}

func TestFiveStringParseRoundTrip(t *testing.T) {
	f := tcpFlow("192.168.1.9", 50000, "8.8.8.8", 53)
	back, err := ParseFive(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Errorf("round trip: got %v want %v", back, f)
	}
}

func TestParseFiveErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"tcp 1.2.3.4:1 1.2.3.4:2",
		"tcp 1.2.3.4:1 > 1.2.3.4",
		"bogus 1.2.3.4:1 > 1.2.3.4:2",
		"tcp 1.2.3:1 > 1.2.3.4:2",
		"tcp 1.2.3.4:99999 > 1.2.3.4:2",
	} {
		if _, err := ParseFive(bad); err == nil {
			t.Errorf("ParseFive(%q) should fail", bad)
		}
	}
}

func TestFiveHashStable(t *testing.T) {
	f := tcpFlow("10.0.0.1", 1234, "10.0.0.2", 80)
	if f.Hash() != f.Hash() {
		t.Error("hash not deterministic")
	}
	g := tcpFlow("10.0.0.1", 1234, "10.0.0.2", 81)
	if f.Hash() == g.Hash() {
		t.Error("distinct flows hash equal (possible but vanishingly unlikely)")
	}
}

func TestTenFiveProjection(t *testing.T) {
	ten := Ten{
		InPort: 3, MACSrc: 1, MACDst: 2, EthType: EthTypeIPv4, VLAN: VLANNone,
		SrcIP:   netaddr.MustParseIP("10.0.0.1"),
		DstIP:   netaddr.MustParseIP("10.0.0.2"),
		Proto:   netaddr.ProtoUDP,
		SrcPort: 111, DstPort: 222,
	}
	f := ten.Five()
	if f.SrcIP != ten.SrcIP || f.DstIP != ten.DstIP || f.Proto != ten.Proto ||
		f.SrcPort != ten.SrcPort || f.DstPort != ten.DstPort {
		t.Errorf("projection wrong: %v", f)
	}
}

func TestTenReverse(t *testing.T) {
	ten := Ten{
		InPort: 3, MACSrc: 1, MACDst: 2, EthType: EthTypeIPv4,
		SrcIP:   netaddr.MustParseIP("10.0.0.1"),
		DstIP:   netaddr.MustParseIP("10.0.0.2"),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 111, DstPort: 222,
	}
	r := ten.Reverse()
	if r.InPort != 0 {
		t.Error("reverse should clear ingress port")
	}
	if r.MACSrc != ten.MACDst || r.MACDst != ten.MACSrc {
		t.Error("reverse should swap MACs")
	}
	if r.Five() != ten.Five().Reverse() {
		t.Error("Ten.Reverse and Five.Reverse disagree")
	}
}

func TestExactMatch(t *testing.T) {
	ten := Ten{
		InPort: 1, MACSrc: 10, MACDst: 20, EthType: EthTypeIPv4, VLAN: VLANNone,
		SrcIP:   netaddr.MustParseIP("10.0.0.1"),
		DstIP:   netaddr.MustParseIP("10.0.0.2"),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 111, DstPort: 222,
	}
	m := ExactMatch(ten)
	if !m.Covers(ten) {
		t.Fatal("exact match must cover its own tuple")
	}
	if !m.IsExact() {
		t.Error("ExactMatch not IsExact")
	}
	// Perturb each field; the match must reject.
	perturbed := []Ten{}
	p := ten
	p.InPort = 9
	perturbed = append(perturbed, p)
	p = ten
	p.MACSrc = 99
	perturbed = append(perturbed, p)
	p = ten
	p.MACDst = 99
	perturbed = append(perturbed, p)
	p = ten
	p.EthType = EthTypeARP
	perturbed = append(perturbed, p)
	p = ten
	p.VLAN = 5
	perturbed = append(perturbed, p)
	p = ten
	p.SrcIP++
	perturbed = append(perturbed, p)
	p = ten
	p.DstIP++
	perturbed = append(perturbed, p)
	p = ten
	p.Proto = netaddr.ProtoUDP
	perturbed = append(perturbed, p)
	p = ten
	p.SrcPort++
	perturbed = append(perturbed, p)
	p = ten
	p.DstPort++
	perturbed = append(perturbed, p)
	for i, q := range perturbed {
		if m.Covers(q) {
			t.Errorf("exact match covered perturbed tuple %d: %v", i, q)
		}
	}
}

func TestMatchAllCoversEverything(t *testing.T) {
	m := MatchAll()
	f := func(in uint16, ms, md uint64, et, vl uint16, s, d uint32, pr uint8, sp, dp uint16) bool {
		return m.Covers(Ten{
			InPort: in, MACSrc: netaddr.MAC(ms), MACDst: netaddr.MAC(md),
			EthType: et, VLAN: vl,
			SrcIP: netaddr.IP(s), DstIP: netaddr.IP(d),
			Proto:   netaddr.Proto(pr),
			SrcPort: netaddr.Port(sp), DstPort: netaddr.Port(dp),
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFiveMatchIgnoresL2(t *testing.T) {
	five := tcpFlow("10.0.0.1", 1234, "10.0.0.2", 80)
	m := FiveMatch(five)
	ten := Ten{
		InPort: 7, MACSrc: 42, MACDst: 43, EthType: EthTypeIPv4, VLAN: 12,
		SrcIP: five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
		SrcPort: five.SrcPort, DstPort: five.DstPort,
	}
	if !m.Covers(ten) {
		t.Error("FiveMatch should ignore L2 fields")
	}
	ten.DstPort = 81
	if m.Covers(ten) {
		t.Error("FiveMatch must still check ports")
	}
}

func TestMatchCIDR(t *testing.T) {
	m := Match{
		Wild:    WAll &^ (WSrcIP | WDstIP),
		SrcBits: 24,
		DstBits: 8,
		Tuple: Ten{
			SrcIP: netaddr.MustParseIP("192.168.1.0"),
			DstIP: netaddr.MustParseIP("10.0.0.0"),
		},
	}
	in := Ten{SrcIP: netaddr.MustParseIP("192.168.1.200"), DstIP: netaddr.MustParseIP("10.99.1.1")}
	if !m.Covers(in) {
		t.Error("CIDR match should cover in-prefix tuple")
	}
	out := in
	out.SrcIP = netaddr.MustParseIP("192.168.2.1")
	if m.Covers(out) {
		t.Error("CIDR match should reject out-of-prefix source")
	}
}

func TestSpecificityOrdering(t *testing.T) {
	exact := ExactMatch(Ten{})
	five := FiveMatch(Five{})
	all := MatchAll()
	if !(exact.Specificity() > five.Specificity() && five.Specificity() > all.Specificity()) {
		t.Errorf("specificity ordering wrong: %d %d %d",
			exact.Specificity(), five.Specificity(), all.Specificity())
	}
	if all.Specificity() != 0 {
		t.Errorf("MatchAll specificity = %d", all.Specificity())
	}
	if exact.Specificity() != 10 {
		t.Errorf("exact specificity = %d", exact.Specificity())
	}
}

func TestMatchCoversProperty(t *testing.T) {
	// An exact match built from a tuple always covers that tuple, and
	// widening any wildcard bit preserves coverage.
	f := func(s, d uint32, pr uint8, sp, dp uint16, bits uint16) bool {
		ten := Ten{
			EthType: EthTypeIPv4,
			SrcIP:   netaddr.IP(s), DstIP: netaddr.IP(d),
			Proto:   netaddr.Proto(pr),
			SrcPort: netaddr.Port(sp), DstPort: netaddr.Port(dp),
		}
		m := ExactMatch(ten)
		if !m.Covers(ten) {
			return false
		}
		m.Wild |= Wildcard(bits) & WAll
		return m.Covers(ten)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchString(t *testing.T) {
	if MatchAll().String() != "match(*)" {
		t.Errorf("MatchAll string = %q", MatchAll().String())
	}
	m := FiveMatch(tcpFlow("10.0.0.1", 1, "10.0.0.2", 2))
	s := m.String()
	if s == "" || s == "match(*)" {
		t.Errorf("FiveMatch string = %q", s)
	}
}

func BenchmarkMatchCoversExact(b *testing.B) {
	ten := Ten{
		InPort: 1, MACSrc: 10, MACDst: 20, EthType: EthTypeIPv4, VLAN: VLANNone,
		SrcIP:   netaddr.MustParseIP("10.0.0.1"),
		DstIP:   netaddr.MustParseIP("10.0.0.2"),
		Proto:   netaddr.ProtoTCP,
		SrcPort: 111, DstPort: 222,
	}
	m := ExactMatch(ten)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !m.Covers(ten) {
			b.Fatal("miss")
		}
	}
}

func BenchmarkFiveHash(b *testing.B) {
	f := tcpFlow("10.0.0.1", 1234, "10.0.0.2", 80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Hash()
	}
}
