// Package flow defines the two flow abstractions the paper uses: the
// ident++ 5-tuple (§2) that names a flow in queries and policy, and the
// OpenFlow 10-tuple (§3.1) that switches match on. The 10-tuple is a strict
// superset of the 5-tuple; Ten.Five projects one onto the other.
package flow

import (
	"fmt"
	"hash/maphash"
	"strings"

	"identxx/internal/netaddr"
)

// Five is the ident++ definition of a flow: {IP destination and source
// addresses, IP protocol, TCP or UDP destination and source ports} (§2).
type Five struct {
	SrcIP   netaddr.IP
	DstIP   netaddr.IP
	Proto   netaddr.Proto
	SrcPort netaddr.Port
	DstPort netaddr.Port
}

// Reverse returns the flow with endpoints swapped — the reply direction.
// `keep state` rules install both f and f.Reverse().
func (f Five) Reverse() Five {
	return Five{
		SrcIP: f.DstIP, DstIP: f.SrcIP,
		Proto:   f.Proto,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
	}
}

func (f Five) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d",
		f.Proto, f.SrcIP, f.SrcPort, f.DstIP, f.DstPort)
}

// ParseFive parses the String form: "tcp 10.0.0.1:234 > 10.0.0.2:80".
func ParseFive(s string) (Five, error) {
	var f Five
	fields := strings.Fields(s)
	if len(fields) != 4 || fields[2] != ">" {
		return f, fmt.Errorf("flow: invalid five-tuple %q", s)
	}
	proto, err := netaddr.ParseProto(fields[0])
	if err != nil {
		return f, err
	}
	src, sp, err := splitHostPort(fields[1])
	if err != nil {
		return f, err
	}
	dst, dp, err := splitHostPort(fields[3])
	if err != nil {
		return f, err
	}
	return Five{SrcIP: src, DstIP: dst, Proto: proto, SrcPort: sp, DstPort: dp}, nil
}

func splitHostPort(s string) (netaddr.IP, netaddr.Port, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("flow: missing port in %q", s)
	}
	ip, err := netaddr.ParseIP(s[:i])
	if err != nil {
		return 0, 0, err
	}
	p, err := netaddr.ParsePort(s[i+1:])
	if err != nil {
		return 0, 0, err
	}
	return ip, p, nil
}

var hashSeed = maphash.MakeSeed()

// Hash returns a 64-bit hash of the tuple, suitable for flow tables and
// response caches. The seed is fixed per process. maphash.Comparable hashes
// the tuple's fixed-size memory directly — no intermediate buffer, no
// allocation, nothing escaping — which matters because shard selection and
// flow-mod cookies hash on every packet-in.
func (f Five) Hash() uint64 {
	return maphash.Comparable(hashSeed, f)
}

// ShardIndex maps the flow onto one of shards buckets using the same
// per-process maphash as Hash. shards must be a power of two; both
// directions of a flow generally land in different shards (sharding is a
// concurrency device, not a semantic grouping). Concurrent flow-state
// tables (the controller's verdict cache, pending sets) key their shards
// with this so a flow's state always lives in exactly one shard.
func (f Five) ShardIndex(shards int) int {
	return int(f.Hash() & uint64(shards-1))
}

// Ten is the OpenFlow 10-tuple (§3.1): {ingress port, MAC src/dst, Ethernet
// type, VLAN id, IP src/dst, IP protocol, transport src/dst ports}.
type Ten struct {
	InPort  uint16
	MACSrc  netaddr.MAC
	MACDst  netaddr.MAC
	EthType uint16
	VLAN    uint16
	SrcIP   netaddr.IP
	DstIP   netaddr.IP
	Proto   netaddr.Proto
	SrcPort netaddr.Port
	DstPort netaddr.Port
}

// EtherType values used by the substrate.
const (
	EthTypeIPv4 = 0x0800
	EthTypeARP  = 0x0806
	EthTypeVLAN = 0x8100
)

// VLANNone is the "no VLAN tag" marker, as in OpenFlow 1.0 (OFP_VLAN_NONE).
const VLANNone = 0xffff

// Five projects the 10-tuple onto the ident++ 5-tuple (§3.1 notes the
// 10-tuple is a superset of the 5-tuple).
func (t Ten) Five() Five {
	return Five{
		SrcIP: t.SrcIP, DstIP: t.DstIP, Proto: t.Proto,
		SrcPort: t.SrcPort, DstPort: t.DstPort,
	}
}

// Reverse swaps the endpoint-identifying fields for the reply direction.
// The ingress port is cleared: the reply enters elsewhere.
func (t Ten) Reverse() Ten {
	return Ten{
		InPort: 0,
		MACSrc: t.MACDst, MACDst: t.MACSrc,
		EthType: t.EthType, VLAN: t.VLAN,
		SrcIP: t.DstIP, DstIP: t.SrcIP,
		Proto:   t.Proto,
		SrcPort: t.DstPort, DstPort: t.SrcPort,
	}
}

func (t Ten) String() string {
	return fmt.Sprintf("in:%d %s>%s eth:%#04x vlan:%d %s %s:%d > %s:%d",
		t.InPort, t.MACSrc, t.MACDst, t.EthType, t.VLAN,
		t.Proto, t.SrcIP, t.SrcPort, t.DstIP, t.DstPort)
}

// Wildcard selects which fields of a Ten participate in a Match. A set bit
// means the field is wildcarded (ignored), mirroring OFPFW_* in OpenFlow 1.0.
type Wildcard uint32

// Wildcard bits, one per 10-tuple field.
const (
	WInPort Wildcard = 1 << iota
	WMACSrc
	WMACDst
	WEthType
	WVLAN
	WSrcIP
	WDstIP
	WProto
	WSrcPort
	WDstPort

	// WAll wildcards every field: the match admits any packet.
	WAll Wildcard = 1<<10 - 1
	// WNone wildcards nothing: the match is exact.
	WNone Wildcard = 0
)

// Match is a possibly-wildcarded predicate over 10-tuples, with CIDR masks
// on the IP fields (OpenFlow 1.0 models IP wildcarding as a prefix length).
// SrcBits/DstBits give the number of significant prefix bits when the
// corresponding W*IP bit is clear; 32 means exact-match.
type Match struct {
	Wild    Wildcard
	SrcBits int
	DstBits int
	Tuple   Ten
}

// ExactMatch returns a Match that admits exactly t.
func ExactMatch(t Ten) Match {
	return Match{Wild: WNone, SrcBits: 32, DstBits: 32, Tuple: t}
}

// FiveMatch returns a Match on the 5-tuple fields only, wildcarding the
// L2/ingress fields. This is the granularity the ident++ controller caches
// decisions at.
func FiveMatch(f Five) Match {
	return Match{
		Wild:    WInPort | WMACSrc | WMACDst | WEthType | WVLAN,
		SrcBits: 32,
		DstBits: 32,
		Tuple: Ten{
			SrcIP: f.SrcIP, DstIP: f.DstIP, Proto: f.Proto,
			SrcPort: f.SrcPort, DstPort: f.DstPort,
		},
	}
}

// MatchAll admits every packet.
func MatchAll() Match { return Match{Wild: WAll} }

// Covers reports whether the match admits t.
func (m Match) Covers(t Ten) bool {
	w := m.Wild
	if w&WInPort == 0 && m.Tuple.InPort != t.InPort {
		return false
	}
	if w&WMACSrc == 0 && m.Tuple.MACSrc != t.MACSrc {
		return false
	}
	if w&WMACDst == 0 && m.Tuple.MACDst != t.MACDst {
		return false
	}
	if w&WEthType == 0 && m.Tuple.EthType != t.EthType {
		return false
	}
	if w&WVLAN == 0 && m.Tuple.VLAN != t.VLAN {
		return false
	}
	if w&WSrcIP == 0 && t.SrcIP.Mask(m.SrcBits) != m.Tuple.SrcIP.Mask(m.SrcBits) {
		return false
	}
	if w&WDstIP == 0 && t.DstIP.Mask(m.DstBits) != m.Tuple.DstIP.Mask(m.DstBits) {
		return false
	}
	if w&WProto == 0 && m.Tuple.Proto != t.Proto {
		return false
	}
	if w&WSrcPort == 0 && m.Tuple.SrcPort != t.SrcPort {
		return false
	}
	if w&WDstPort == 0 && m.Tuple.DstPort != t.DstPort {
		return false
	}
	return true
}

// IsExact reports whether the match admits exactly one 10-tuple.
func (m Match) IsExact() bool {
	return m.Wild == WNone && m.SrcBits >= 32 && m.DstBits >= 32
}

// Specificity counts non-wildcarded fields; higher is more specific. The
// switch uses it as the default priority for overlapping entries, matching
// the OpenFlow convention that exact entries beat wildcard entries.
func (m Match) Specificity() int {
	n := 0
	for b := Wildcard(1); b < 1<<10; b <<= 1 {
		if m.Wild&b == 0 {
			n++
		}
	}
	return n
}

func (m Match) String() string {
	if m.Wild == WAll {
		return "match(*)"
	}
	var parts []string
	add := func(bit Wildcard, s string) {
		if m.Wild&bit == 0 {
			parts = append(parts, s)
		}
	}
	add(WInPort, fmt.Sprintf("in=%d", m.Tuple.InPort))
	add(WMACSrc, "macsrc="+m.Tuple.MACSrc.String())
	add(WMACDst, "macdst="+m.Tuple.MACDst.String())
	add(WEthType, fmt.Sprintf("eth=%#04x", m.Tuple.EthType))
	add(WVLAN, fmt.Sprintf("vlan=%d", m.Tuple.VLAN))
	add(WSrcIP, fmt.Sprintf("src=%s/%d", m.Tuple.SrcIP, m.SrcBits))
	add(WDstIP, fmt.Sprintf("dst=%s/%d", m.Tuple.DstIP, m.DstBits))
	add(WProto, "proto="+m.Tuple.Proto.String())
	add(WSrcPort, fmt.Sprintf("sport=%d", m.Tuple.SrcPort))
	add(WDstPort, fmt.Sprintf("dport=%d", m.Tuple.DstPort))
	return "match(" + strings.Join(parts, " ") + ")"
}
