package flow

import (
	"testing"
)

// FuzzParseFive checks that every string ParseFive accepts round-trips:
// the parsed tuple's String form must reparse to the identical tuple and
// be a fixed point of the formatter, and the tuple must hash and shard
// without panicking. Malformed inputs must be rejected with an error, not
// a crash.
func FuzzParseFive(f *testing.F) {
	for _, seed := range []string{
		"tcp 10.0.0.1:234 > 10.0.0.2:80",
		"udp 192.168.1.1:53 > 8.8.8.8:53",
		"icmp 0.0.0.0:0 > 255.255.255.255:65535",
		"17 1.2.3.4:1 > 5.6.7.8:2",
		"TCP 10.0.0.1:00234 > 10.0.0.2:080", // non-canonical but valid
		"tcp 10.0.0.1:234>10.0.0.2:80",      // malformed: no spaces
		"tcp 10.0.0.1 > 10.0.0.2",           // malformed: no ports
		"tcp 10.0.0.256:1 > 10.0.0.2:2",     // malformed: octet overflow
		"",
		"tcp",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		five, err := ParseFive(s)
		if err != nil {
			return
		}
		canon := five.String()
		again, err := ParseFive(canon)
		if err != nil {
			t.Fatalf("String() of parsed %q is unparseable: %q: %v", s, canon, err)
		}
		if again != five {
			t.Fatalf("round trip changed tuple: %q -> %+v -> %q -> %+v", s, five, canon, again)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q vs %q", again.String(), canon)
		}
		if rev := five.Reverse().Reverse(); rev != five {
			t.Fatalf("Reverse not an involution: %+v", rev)
		}
		if five.Hash() != five.Hash() {
			t.Fatal("Hash not deterministic")
		}
		for _, n := range []int{1, 2, 8, 256} {
			if idx := five.ShardIndex(n); idx < 0 || idx >= n {
				t.Fatalf("ShardIndex(%d) = %d out of range", n, idx)
			}
		}
	})
}
