// Package netaddr provides compact value types for IPv4 addresses, CIDR
// prefixes, MAC addresses, transport ports, and port ranges.
//
// The ident++ datapath (internal/openflow, internal/netsim) performs millions
// of header matches per simulated second, so the types here are fixed-size
// integers rather than heap-allocated net.IP slices. Conversions to and from
// the standard library types are provided for the edges of the system (real
// TCP transports, CLI flags).
package netaddr

import (
	"fmt"
	"net"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The zero value is 0.0.0.0,
// which the package treats as "unspecified".
type IP uint32

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
		}
		parts[i] = v
	}
	return IP(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseIP is ParseIP that panics on error; intended for tests and
// package-level configuration literals.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// IPv4 assembles an IP from four octets.
func IPv4(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// FromStdIP converts a net.IP. It returns false if ip is not IPv4.
func FromStdIP(ip net.IP) (IP, bool) {
	v4 := ip.To4()
	if v4 == nil {
		return 0, false
	}
	return IPv4(v4[0], v4[1], v4[2], v4[3]), true
}

// Std returns the address as a net.IP.
func (ip IP) Std() net.IP {
	return net.IPv4(byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)).To4()
}

// Octets returns the four octets of the address.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// IsUnspecified reports whether ip is 0.0.0.0.
func (ip IP) IsUnspecified() bool { return ip == 0 }

// IsLoopback reports whether ip is in 127.0.0.0/8.
func (ip IP) IsLoopback() bool { return ip>>24 == 127 }

// IsMulticast reports whether ip is in 224.0.0.0/4.
func (ip IP) IsMulticast() bool { return ip>>28 == 0xe }

// IsBroadcast reports whether ip is 255.255.255.255.
func (ip IP) IsBroadcast() bool { return ip == 0xffffffff }

// IsPrivate reports whether ip is in an RFC 1918 block.
func (ip IP) IsPrivate() bool {
	return ip>>24 == 10 ||
		ip>>20 == 0xac1 || // 172.16.0.0/12
		ip>>16 == 0xc0a8 // 192.168.0.0/16
}

func (ip IP) String() string {
	a, b, c, d := ip.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr IP
	Bits int // prefix length, 0..32
}

// ParsePrefix parses "a.b.c.d/len". A bare address parses as a /32.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		ip, err := ParseIP(s)
		if err != nil {
			return Prefix{}, err
		}
		return Prefix{Addr: ip, Bits: 32}, nil
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length in %q", s)
	}
	return Prefix{Addr: ip.Mask(bits), Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask zeroes the host bits of ip for a prefix of the given length.
func (ip IP) Mask(bits int) IP {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ip
	}
	return ip & (^IP(0) << (32 - bits))
}

// Contains reports whether the prefix contains ip.
func (p Prefix) Contains(ip IP) bool {
	return ip.Mask(p.Bits) == p.Addr.Mask(p.Bits)
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits > q.Bits {
		p, q = q, p
	}
	return q.Addr.Mask(p.Bits) == p.Addr.Mask(p.Bits)
}

// IsSingleIP reports whether the prefix is a /32.
func (p Prefix) IsSingleIP() bool { return p.Bits == 32 }

func (p Prefix) String() string {
	if p.Bits == 32 {
		return p.Addr.String()
	}
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}

// MAC is a 48-bit Ethernet address stored in the low bits.
type MAC uint64

// ParseMAC parses the colon-separated form aa:bb:cc:dd:ee:ff.
func ParseMAC(s string) (MAC, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return 0, fmt.Errorf("netaddr: invalid MAC %q", s)
	}
	var m MAC
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: invalid MAC %q", s)
		}
		m = m<<8 | MAC(v)
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// MACFromBytes assembles a MAC from a 6-byte slice.
func MACFromBytes(b []byte) MAC {
	var m MAC
	for i := 0; i < 6 && i < len(b); i++ {
		m = m<<8 | MAC(b[i])
	}
	return m
}

// Bytes writes the MAC into a 6-byte array.
func (m MAC) Bytes() [6]byte {
	var b [6]byte
	for i := 5; i >= 0; i-- {
		b[i] = byte(m)
		m >>= 8
	}
	return b
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool { return m == 0xffffffffffff }

// IsMulticast reports whether the group bit of the MAC is set.
func (m MAC) IsMulticast() bool { return m>>40&1 == 1 }

func (m MAC) String() string {
	b := m.Bytes()
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1], b[2], b[3], b[4], b[5])
}

// Port is a TCP or UDP port number.
type Port uint16

// ParsePort parses a numeric port or a well-known service name
// (see Services).
func ParsePort(s string) (Port, error) {
	if p, ok := Services[strings.ToLower(s)]; ok {
		return p, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("netaddr: invalid port %q", s)
	}
	return Port(v), nil
}

// MustParsePort is ParsePort that panics on error.
func MustParsePort(s string) Port {
	p, err := ParsePort(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Port) String() string { return strconv.Itoa(int(p)) }

// ServiceName returns the well-known name for p if one exists, else its
// decimal form.
func (p Port) ServiceName() string {
	if n, ok := serviceNames[p]; ok {
		return n
	}
	return p.String()
}

// Services maps the service names PF rule files may use to port numbers.
// The set matches the names used in the paper's examples plus the common
// /etc/services entries an enterprise policy would reference.
var Services = map[string]Port{
	"ftp":      21,
	"ssh":      22,
	"telnet":   23,
	"smtp":     25,
	"domain":   53,
	"dns":      53,
	"http":     80,
	"www":      80,
	"pop3":     110,
	"auth":     113,
	"ident":    113,
	"ntp":      123,
	"imap":     143,
	"snmp":     161,
	"ldap":     389,
	"https":    443,
	"smb":      445,
	"syslog":   514,
	"identxx":  783, // the ident++ daemon port (§2)
	"imaps":    993,
	"pop3s":    995,
	"openflow": 6633,
	"rdp":      3389,
}

var serviceNames = func() map[Port]string {
	m := make(map[Port]string, len(Services))
	// Prefer the canonical name when several aliases share a port.
	order := []string{"ftp", "ssh", "telnet", "smtp", "domain", "http", "pop3",
		"auth", "ntp", "imap", "snmp", "ldap", "https", "smb", "syslog",
		"identxx", "imaps", "pop3s", "openflow", "rdp"}
	for _, name := range order {
		p := Services[name]
		if _, dup := m[p]; !dup {
			m[p] = name
		}
	}
	return m
}()

// PortRange is an inclusive range of ports. Lo == Hi denotes a single port;
// the zero value (0,0) is treated by callers as "any" when used in matches.
type PortRange struct {
	Lo, Hi Port
}

// SinglePort returns a range covering exactly p.
func SinglePort(p Port) PortRange { return PortRange{p, p} }

// AnyPort matches all ports.
var AnyPort = PortRange{0, 65535}

// ParsePortRange parses "80", "http", "1024-65535", or "1024:65535".
func ParsePortRange(s string) (PortRange, error) {
	sep := strings.IndexAny(s, "-:")
	if sep < 0 {
		p, err := ParsePort(s)
		if err != nil {
			return PortRange{}, err
		}
		return SinglePort(p), nil
	}
	lo, err := ParsePort(s[:sep])
	if err != nil {
		return PortRange{}, err
	}
	hi, err := ParsePort(s[sep+1:])
	if err != nil {
		return PortRange{}, err
	}
	if hi < lo {
		return PortRange{}, fmt.Errorf("netaddr: inverted port range %q", s)
	}
	return PortRange{lo, hi}, nil
}

// Contains reports whether the range includes p.
func (r PortRange) Contains(p Port) bool { return p >= r.Lo && p <= r.Hi }

// IsSingle reports whether the range covers exactly one port.
func (r PortRange) IsSingle() bool { return r.Lo == r.Hi }

// IsAny reports whether the range covers the whole port space.
func (r PortRange) IsAny() bool { return r.Lo == 0 && r.Hi == 65535 }

func (r PortRange) String() string {
	if r.IsSingle() {
		return r.Lo.String()
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// Proto is an IP protocol number. Only TCP, UDP and ICMP are given names;
// any other value is printed numerically.
type Proto uint8

// IP protocol numbers used throughout the system.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// ParseProto parses "tcp", "udp", "icmp" or a protocol number.
func ParseProto(s string) (Proto, error) {
	switch strings.ToLower(s) {
	case "tcp":
		return ProtoTCP, nil
	case "udp":
		return ProtoUDP, nil
	case "icmp":
		return ProtoICMP, nil
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("netaddr: invalid protocol %q", s)
	}
	return Proto(v), nil
}

func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return strconv.Itoa(int(p))
}

// IPSet is an ordered collection of prefixes with membership testing. It
// backs PF tables (`table <lan> { ... }`): a handful of prefixes scanned
// linearly, which profiles faster than a trie below ~64 entries — the regime
// enterprise PF tables live in.
type IPSet struct {
	prefixes []Prefix
}

// NewIPSet builds a set from prefixes.
func NewIPSet(prefixes ...Prefix) *IPSet {
	s := &IPSet{}
	for _, p := range prefixes {
		s.Add(p)
	}
	return s
}

// Add inserts a prefix. Duplicate and covered prefixes are kept; Contains is
// unaffected and PF table semantics do not require canonicalization.
func (s *IPSet) Add(p Prefix) { s.prefixes = append(s.prefixes, p) }

// AddIP inserts a /32.
func (s *IPSet) AddIP(ip IP) { s.Add(Prefix{Addr: ip, Bits: 32}) }

// AddSet inserts every prefix of t (PF allows tables to reference tables).
func (s *IPSet) AddSet(t *IPSet) { s.prefixes = append(s.prefixes, t.prefixes...) }

// Contains reports whether any prefix in the set covers ip.
func (s *IPSet) Contains(ip IP) bool {
	for _, p := range s.prefixes {
		if p.Contains(ip) {
			return true
		}
	}
	return false
}

// Len returns the number of prefixes in the set.
func (s *IPSet) Len() int { return len(s.prefixes) }

// Prefixes returns a copy of the set's prefixes.
func (s *IPSet) Prefixes() []Prefix {
	out := make([]Prefix, len(s.prefixes))
	copy(out, s.prefixes)
	return out
}

func (s *IPSet) String() string {
	parts := make([]string, len(s.prefixes))
	for i, p := range s.prefixes {
		parts[i] = p.String()
	}
	return "{ " + strings.Join(parts, " ") + " }"
}
