package netaddr

import (
	"net"
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		in   string
		want IP
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.168.42.32", IPv4(192, 168, 42, 32), true},
		{"10.0.0.1", IPv4(10, 0, 0, 1), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.1.1.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIP(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseIP(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseIP(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPStdRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, ok := FromStdIP(ip.Std())
		return ok && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromStdIPRejectsV6(t *testing.T) {
	if _, ok := FromStdIP(net.ParseIP("2001:db8::1")); ok {
		t.Error("FromStdIP accepted an IPv6 address")
	}
}

func TestIPClassifiers(t *testing.T) {
	if !MustParseIP("127.0.0.1").IsLoopback() {
		t.Error("127.0.0.1 not loopback")
	}
	if MustParseIP("128.0.0.1").IsLoopback() {
		t.Error("128.0.0.1 loopback")
	}
	if !MustParseIP("224.0.0.1").IsMulticast() {
		t.Error("224.0.0.1 not multicast")
	}
	if !MustParseIP("10.1.2.3").IsPrivate() || !MustParseIP("172.16.0.1").IsPrivate() ||
		!MustParseIP("192.168.0.1").IsPrivate() {
		t.Error("RFC1918 address not private")
	}
	if MustParseIP("172.32.0.1").IsPrivate() {
		t.Error("172.32.0.1 wrongly private")
	}
	if !IP(0xffffffff).IsBroadcast() {
		t.Error("255.255.255.255 not broadcast")
	}
	if !IP(0).IsUnspecified() {
		t.Error("0.0.0.0 not unspecified")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/24")
	if !p.Contains(MustParseIP("192.168.0.255")) {
		t.Error("prefix should contain .255")
	}
	if p.Contains(MustParseIP("192.168.1.0")) {
		t.Error("prefix should not contain 192.168.1.0")
	}
	// Host bits are masked off at parse time.
	q := MustParsePrefix("192.168.0.77/24")
	if q.Addr != MustParseIP("192.168.0.0") {
		t.Errorf("host bits not masked: %v", q)
	}
	// Bare address is a /32.
	r := MustParsePrefix("10.0.0.1")
	if !r.IsSingleIP() || !r.Contains(MustParseIP("10.0.0.1")) || r.Contains(MustParseIP("10.0.0.2")) {
		t.Errorf("bare address parse wrong: %v", r)
	}
	for _, bad := range []string{"10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "300.0.0.0/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixZeroBitsContainsAll(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	f := func(v uint32) bool { return p.Contains(IP(v)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix should overlap itself")
	}
}

func TestMACRoundTrip(t *testing.T) {
	m := MustParseMAC("00:1b:21:aa:bb:cc")
	if got := m.String(); got != "00:1b:21:aa:bb:cc" {
		t.Errorf("MAC string = %q", got)
	}
	back, err := ParseMAC(m.String())
	if err != nil || back != m {
		t.Errorf("MAC round trip failed: %v %v", back, err)
	}
	b := m.Bytes()
	if MACFromBytes(b[:]) != m {
		t.Error("MACFromBytes round trip failed")
	}
	for _, bad := range []string{"00:11:22:33:44", "00:11:22:33:44:55:66", "zz:11:22:33:44:55", ""} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) should fail", bad)
		}
	}
}

func TestMACStringRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		m := MAC(v & 0xffffffffffff)
		back, err := ParseMAC(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACClassifiers(t *testing.T) {
	if !MAC(0xffffffffffff).IsBroadcast() {
		t.Error("broadcast MAC not detected")
	}
	if !MustParseMAC("01:00:5e:00:00:01").IsMulticast() {
		t.Error("multicast MAC not detected")
	}
	if MustParseMAC("00:00:5e:00:00:01").IsMulticast() {
		t.Error("unicast MAC wrongly multicast")
	}
}

func TestParsePort(t *testing.T) {
	cases := []struct {
		in   string
		want Port
		ok   bool
	}{
		{"80", 80, true},
		{"http", 80, true},
		{"HTTP", 80, true},
		{"https", 443, true},
		{"smtp", 25, true},
		{"identxx", 783, true},
		{"0", 0, true},
		{"65535", 65535, true},
		{"65536", 0, false},
		{"-1", 0, false},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePort(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePort(%q) err=%v want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePort(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestServiceName(t *testing.T) {
	if Port(80).ServiceName() != "http" {
		t.Errorf("port 80 = %q", Port(80).ServiceName())
	}
	if Port(12345).ServiceName() != "12345" {
		t.Errorf("port 12345 = %q", Port(12345).ServiceName())
	}
}

func TestParsePortRange(t *testing.T) {
	r, err := ParsePortRange("1024-2048")
	if err != nil || r.Lo != 1024 || r.Hi != 2048 {
		t.Fatalf("ParsePortRange: %v %v", r, err)
	}
	if !r.Contains(1024) || !r.Contains(2048) || r.Contains(1023) || r.Contains(2049) {
		t.Error("range containment wrong")
	}
	single, err := ParsePortRange("ssh")
	if err != nil || !single.IsSingle() || single.Lo != 22 {
		t.Fatalf("single service range: %v %v", single, err)
	}
	if _, err := ParsePortRange("2048-1024"); err == nil {
		t.Error("inverted range should fail")
	}
	colon, err := ParsePortRange("10:20")
	if err != nil || colon.Lo != 10 || colon.Hi != 20 {
		t.Fatalf("colon range: %v %v", colon, err)
	}
	if !AnyPort.IsAny() || !AnyPort.Contains(0) || !AnyPort.Contains(65535) {
		t.Error("AnyPort wrong")
	}
}

func TestParseProto(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Proto
	}{{"tcp", ProtoTCP}, {"TCP", ProtoTCP}, {"udp", ProtoUDP}, {"icmp", ProtoICMP}, {"47", Proto(47)}} {
		got, err := ParseProto(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseProto(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseProto("bogus"); err == nil {
		t.Error("ParseProto(bogus) should fail")
	}
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" || Proto(89).String() != "89" {
		t.Error("Proto.String wrong")
	}
}

func TestIPSet(t *testing.T) {
	s := NewIPSet(MustParsePrefix("192.168.0.0/24"), MustParsePrefix("10.0.0.5"))
	if !s.Contains(MustParseIP("192.168.0.200")) {
		t.Error("set should contain 192.168.0.200")
	}
	if !s.Contains(MustParseIP("10.0.0.5")) {
		t.Error("set should contain 10.0.0.5")
	}
	if s.Contains(MustParseIP("10.0.0.6")) {
		t.Error("set should not contain 10.0.0.6")
	}
	s.AddIP(MustParseIP("10.0.0.6"))
	if !s.Contains(MustParseIP("10.0.0.6")) {
		t.Error("AddIP had no effect")
	}
	// Sets can include other sets, as PF tables can reference tables.
	t2 := NewIPSet(MustParsePrefix("172.16.0.0/12"))
	s.AddSet(t2)
	if !s.Contains(MustParseIP("172.20.1.1")) {
		t.Error("AddSet had no effect")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if got := len(s.Prefixes()); got != 4 {
		t.Errorf("Prefixes len = %d", got)
	}
}

func TestIPMaskProperty(t *testing.T) {
	// Masking is idempotent and monotone in prefix length.
	f := func(v uint32, bits uint8) bool {
		b := int(bits % 33)
		ip := IP(v)
		m := ip.Mask(b)
		return m.Mask(b) == m && Prefix{Addr: m, Bits: b}.Contains(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkIPSetContains(b *testing.B) {
	s := NewIPSet()
	for i := 0; i < 16; i++ {
		s.Add(Prefix{Addr: IPv4(10, byte(i), 0, 0), Bits: 16})
	}
	ip := MustParseIP("10.15.3.4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Contains(ip) {
			b.Fatal("miss")
		}
	}
}
